// Figure 6: nuttcp UDP throughput through the network driver domain
// (paper: ≈7 Gbps with <1.5% loss for both Linux and Kite; 4 MB window,
// 8 KB buffers).
#include "bench/common.h"
#include "src/workloads/netbench.h"

int main() {
  using namespace kite;
  PrintHeader("Figure 6", "nuttcp UDP throughput (8 KB datagrams, offered 7.4 Gbps)");
  PrintNote("duration scaled to 300 ms simulated (paper runs longer; rates are "
            "steady-state)");
  BenchReport report("fig06", "nuttcp UDP throughput through the network driver domain");
  report.Param("duration_ms", 300);
  report.Param("datagram_bytes", 8192);
  // Numbers from the commit before the latency-span layer landed; the
  // bench-smoke CI job diffs against these to confirm disabled tracing stays
  // within noise.
  report.Param("pre_span_goodput_gbps_linux", 7.40);
  report.Param("pre_span_goodput_gbps_kite", 7.40);
  report.Param("pre_span_loss_percent_linux", 0.00);
  report.Param("pre_span_loss_percent_kite", 0.00);
  std::printf("%-8s %14s %10s %16s\n", "domain", "goodput", "loss", "paper");
  for (OsKind os : {OsKind::kUbuntuLinux, OsKind::kKiteRumprun}) {
    NetTopology topo = MakeNetTopology(os);
    NuttcpConfig config;
    config.duration = Millis(300);
    NuttcpUdp nuttcp(topo.client_stack(), topo.guest_stack(), kGuestIp, config);
    bool done = false;
    NuttcpResult result;
    nuttcp.Run([&](const NuttcpResult& r) {
      done = true;
      result = r;
    });
    topo.sys->WaitUntil([&] { return done; }, Seconds(30));
    std::printf("%-8s %10.2f Gbps %8.2f%% %16s\n", Pers(os), result.goodput_gbps,
                result.loss_percent, "~7 Gbps, <1.5%");
    report.Value("goodput_gbps", PersLabel(os), result.goodput_gbps);
    report.Value("loss_percent", PersLabel(os), result.loss_percent);
    report.Counters(PersLabel(os), topo.sys.get());
  }
  return report.Write() ? 0 : 1;
}
