// Figure 10: MySQL through the network driver domain — (a) sysbench
// read-only throughput vs thread count (memory-bound dataset), (b) DomU CPU
// utilization during the run.
#include "bench/common.h"
#include "src/workloads/mysql.h"

namespace kite {
namespace {

struct Fig10Point {
  double tps = 0;
  double qps = 0;
  double cpu_percent = 0;
};

Fig10Point RunMysql(OsKind os, int threads) {
  NetTopology topo = MakeNetTopology(os);
  // Memory-bound (paper: "all data fits in memory... no storage I/O").
  MysqlServer mysql(topo.guest_stack(), 3306, /*storage=*/nullptr);
  SysbenchOltpConfig config;
  config.threads = threads;
  config.duration = Millis(400);
  SysbenchOltp sysbench(topo.client_stack(), kGuestIp, 3306, config);

  // Windowed busy sampling via CpuUsageSample (DESIGN.md §16) instead of
  // hand-diffing busy_total().
  CpuUsageSample domu_cpu(topo.guest->domain()->vcpu(0));

  Fig10Point out;
  bool done = false;
  sysbench.Run([&](const SysbenchOltpResult& r) {
    done = true;
    out.tps = r.transactions_per_sec;
    out.qps = r.queries_per_sec;
  });
  topo.sys->WaitUntil([&] { return done; }, Seconds(600));
  out.cpu_percent = 100.0 * domu_cpu.utilization();
  return out;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Figure 10a", "MySQL (network domain): sysbench read-only ops vs threads");
  PrintNote("paper: throughput plateaus with threads; Linux ≈ Kite (RSD 0.0167% / "
            "0.0496%)");
  std::printf("%-8s %12s %12s %12s %12s\n", "threads", "Linux tps", "Kite tps",
              "Linux qps", "Kite qps");
  double linux_cpu[8] = {0};
  double kite_cpu[8] = {0};
  const int thread_counts[] = {5, 10, 20, 40, 60};
  int idx = 0;
  for (int threads : thread_counts) {
    const Fig10Point linux = RunMysql(OsKind::kUbuntuLinux, threads);
    const Fig10Point kite = RunMysql(OsKind::kKiteRumprun, threads);
    linux_cpu[idx] = linux.cpu_percent;
    kite_cpu[idx] = kite.cpu_percent;
    ++idx;
    std::printf("%-8d %12.0f %12.0f %12.0f %12.0f\n", threads, linux.tps, kite.tps,
                linux.qps, kite.qps);
  }

  PrintHeader("Figure 10b", "DomU CPU utilization during the MySQL run");
  std::printf("%-8s %12s %12s\n", "threads", "Linux CPU%", "Kite CPU%");
  idx = 0;
  for (int threads : thread_counts) {
    std::printf("%-8d %12.1f %12.1f\n", threads, linux_cpu[idx], kite_cpu[idx]);
    ++idx;
  }
  PrintNote("paper: DomU CPU utilization is very similar for Linux and Kite");
  return 0;
}
