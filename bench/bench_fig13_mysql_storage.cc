// Figure 13: MySQL on the storage driver domain — sysbench complex queries
// against a dataset far larger than the buffer pool (paper: 100 tables × 1M
// rows ≈ 20 GB; results identical for Linux and Kite).
#include "bench/common.h"
#include "src/workloads/mysql.h"

namespace kite {
namespace {

double RunMysqlStorage(OsKind os, int threads) {
  // Storage topology + a network path for the sysbench client.
  StorTopology topo = MakeStorTopology(os, /*disk_bytes=*/24LL << 30);
  NetworkDomain* netdom = topo.sys->CreateNetworkDomain();  // Kite net path (fixed).
  const Ipv4Addr guest_ip = Ipv4Addr::FromOctets(10, 0, 0, 40);
  topo.sys->AttachVif(topo.guest, netdom, guest_ip);
  topo.sys->WaitConnected(topo.guest);

  MysqlServerParams params;
  params.buffer_pool_hit_ratio = 0.25;  // Dataset ≫ buffer pool.
  params.data_region_bytes = 20LL << 30;
  MysqlServer mysql(topo.guest->stack(), 3306, topo.fs.get(), params);

  SysbenchOltpConfig config;
  config.threads = threads;
  config.duration = Millis(300);
  config.updates_per_txn = 4;  // "complex SQL queries": read-write mix.
  SysbenchOltp sysbench(topo.sys->client()->stack(), guest_ip, 3306, config);
  double qps = 0;
  bool done = false;
  sysbench.Run([&](const SysbenchOltpResult& r) {
    done = true;
    qps = r.queries_per_sec;
  });
  topo.sys->WaitUntil([&] { return done; }, Seconds(600));
  return qps;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Figure 13", "MySQL (storage domain): sysbench complex queries vs threads");
  PrintNote("the network path is a fixed Kite domain for both rows; only the "
            "storage domain personality varies (the measured variable)");
  std::printf("%-8s %14s %14s\n", "threads", "Linux (qps)", "Kite (qps)");
  for (int threads : {1, 5, 10, 20, 40, 60, 80, 100}) {
    std::printf("%-8d %14.0f %14.0f\n", threads,
                RunMysqlStorage(OsKind::kUbuntuLinux, threads),
                RunMysqlStorage(OsKind::kKiteRumprun, threads));
  }
  std::printf("paper: curves for Linux and Kite are identical\n");
  return 0;
}
