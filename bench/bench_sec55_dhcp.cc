// §5.5: daemon service VM — the unikernelized OpenDHCP server measured with
// perfdhcp (paper: Discover→Offer ≈0.78 ms, Request→Ack ≈0.7 ms; rumprun ≈
// Linux).
#include "bench/common.h"
#include "src/services/dhcp.h"

namespace kite {
namespace {

PerfDhcpResult RunDhcp(OsKind os) {
  NetTopology topo = MakeNetTopology(os);
  // The daemon VM is a separate guest running only the DHCP server.
  GuestVm* daemon = topo.sys->CreateGuest("dhcp-daemon", /*vcpus=*/1, /*memory_mb=*/256);
  topo.sys->AttachVif(daemon, topo.netdom, Ipv4Addr::FromOctets(10, 0, 0, 5));
  topo.sys->WaitConnected(daemon);
  DhcpServer server(daemon->stack());
  PerfDhcp perf(topo.client_stack(), /*count=*/100, /*spacing=*/Millis(5));
  PerfDhcpResult out;
  bool done = false;
  perf.Run([&](const PerfDhcpResult& r) {
    done = true;
    out = r;
  });
  topo.sys->WaitUntil([&] { return done; }, Seconds(60));
  return out;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Section 5.5", "DHCP daemon VM: perfdhcp handshake latency (100 clients)");
  const PerfDhcpResult linux = RunDhcp(OsKind::kUbuntuLinux);
  const PerfDhcpResult kite = RunDhcp(OsKind::kKiteRumprun);
  std::printf("%-10s %22s %20s %10s\n", "domain", "Discover-Offer (ms)",
              "Request-Ack (ms)", "completed");
  std::printf("%-10s %22.2f %20.2f %10d\n", "Linux", linux.discover_offer_ms.Mean(),
              linux.request_ack_ms.Mean(), linux.completed);
  std::printf("%-10s %22.2f %20.2f %10d\n", "Kite", kite.discover_offer_ms.Mean(),
              kite.request_ack_ms.Mean(), kite.completed);
  std::printf("paper: ≈0.78 ms and ≈0.7 ms; rumprun ≈ Linux\n");
  return 0;
}
