// Google-benchmark micro-benchmarks of the hypervisor substrate: shared-ring
// operations, grant table, grant copy, xenstore, and event channels. These
// measure the *simulator's* real-time cost (how fast experiments run), not
// simulated time.
#include <benchmark/benchmark.h>

#include "src/base/bytes.h"
#include "src/hv/hypervisor.h"
#include "src/hv/ring.h"

namespace kite {
namespace {

struct Req {
  uint64_t id;
};
struct Rsp {
  uint64_t id;
};

void BM_RingRoundTrip(benchmark::State& state) {
  SharedRing<Req, Rsp> shared(32);
  FrontRing<Req, Rsp> front(&shared);
  BackRing<Req, Rsp> back(&shared);
  uint64_t i = 0;
  for (auto _ : state) {
    front.ProduceRequest(Req{i});
    benchmark::DoNotOptimize(front.PushRequests());
    Req r = back.ConsumeRequest();
    back.ProduceResponse(Rsp{r.id});
    benchmark::DoNotOptimize(back.PushResponses());
    benchmark::DoNotOptimize(front.ConsumeResponse());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingRoundTrip);

void BM_GrantAccessEnd(benchmark::State& state) {
  GrantTable table(1);
  PageRef page = AllocPage();
  for (auto _ : state) {
    GrantRef ref = table.GrantAccess(2, page, false);
    benchmark::DoNotOptimize(table.EndAccess(ref));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GrantAccessEnd);

void BM_GrantCopy(benchmark::State& state) {
  Executor ex;
  Hypervisor hv(&ex);
  Domain* owner = hv.CreateDomain("owner", 1, 512);
  Domain* peer = hv.CreateDomain("peer", 1, 512);
  PageRef page = AllocPage();
  GrantRef ref = owner->grant_table().GrantAccess(peer->id(), page, false);
  Buffer data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hv.GrantCopyToGranted(peer, owner->id(), ref, 0, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GrantCopy)->Arg(64)->Arg(1500)->Arg(4096);

void BM_XenstoreWriteRead(benchmark::State& state) {
  Executor ex;
  Hypervisor hv(&ex);
  Domain* dom = hv.CreateDomain("d", 1, 512);
  const std::string path = dom->store_home() + "/bench/key";
  int i = 0;
  for (auto _ : state) {
    dom->StoreWriteInt(path, i++);
    benchmark::DoNotOptimize(dom->StoreReadInt(path));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XenstoreWriteRead);

void BM_EventChannelSendDeliver(benchmark::State& state) {
  Executor ex;
  Hypervisor hv(&ex);
  Domain* a = hv.CreateDomain("a", 1, 512);
  Domain* b = hv.CreateDomain("b", 1, 512);
  EvtPort pa = hv.EventAllocUnbound(a, b->id());
  EvtPort pb = hv.EventBindInterdomain(b, a->id(), pa);
  uint64_t delivered = 0;
  hv.EventSetHandler(b, pb, [&delivered] { ++delivered; });
  for (auto _ : state) {
    hv.EventSend(a, pa);
    ex.RunUntilIdle();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventChannelSendDeliver);

void BM_ExecutorPostRun(benchmark::State& state) {
  Executor ex;
  for (auto _ : state) {
    ex.PostAfter(Micros(1), [] {});
    ex.RunUntilIdle();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutorPostRun);

}  // namespace
}  // namespace kite
