// Figure 4: (a) system-call counts, (b) image size, (c) boot time — Kite vs
// an Ubuntu driver domain. Boot time is *measured* by booting simulated
// domains through their full boot-phase sequence.
#include "bench/common.h"
#include "src/security/syscalls.h"

namespace kite {
namespace {

double MeasureBootSeconds(OsKind os, bool storage) {
  KiteSystem::Params params;
  params.instant_boot = false;
  KiteSystem sys(params);
  DriverDomainConfig config;
  config.os = os;
  if (storage) {
    StorageDomain* sd = sys.CreateStorageDomain(config);
    sys.WaitUntil([&] { return sd->booted(); }, Seconds(300));
    return sd->boot_completed_at().seconds();
  }
  NetworkDomain* nd = sys.CreateNetworkDomain(config);
  sys.WaitUntil([&] { return nd->booted(); }, Seconds(300));
  return nd->boot_completed_at().seconds();
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;

  PrintHeader("Figure 4a", "System call count (used set)");
  std::printf("%-22s %10s %10s\n", "domain", "measured", "paper");
  std::printf("%-22s %10d %10s\n", "Kite (network)",
              AnalyzeSyscalls(KiteNetworkProfile()).used, "14");
  std::printf("%-22s %10d %10s\n", "Kite (storage)",
              AnalyzeSyscalls(KiteStorageProfile()).used, "18");
  std::printf("%-22s %10d %10s\n", "Ubuntu driver domain",
              AnalyzeSyscalls(UbuntuDriverDomainProfile()).used, "171");
  std::printf("reduction factor: %.1fx (paper: ~10x)\n",
              SyscallReductionFactor(KiteNetworkProfile(), UbuntuDriverDomainProfile()));

  PrintHeader("Figure 4b", "Image size (kernel+modules for Linux; whole VM for Kite)");
  const double kite_mb = KiteNetworkProfile().ImageBytes() / 1048576.0;
  const double ubuntu_mb = UbuntuDriverDomainProfile().ImageBytes() / 1048576.0;
  std::printf("%-22s %9.1f MB\n", "Kite", kite_mb);
  std::printf("%-22s %9.1f MB\n", "Ubuntu", ubuntu_mb);
  std::printf("ratio: %.1fx (paper: ~10x)\n", ubuntu_mb / kite_mb);

  PrintHeader("Figure 4c", "Boot time (measured by booting simulated domains)");
  std::printf("%-22s %10s %10s\n", "domain", "measured", "paper");
  std::printf("%-22s %8.1f s %9s\n", "Kite (network)",
              MeasureBootSeconds(OsKind::kKiteRumprun, false), "7 s");
  std::printf("%-22s %8.1f s %9s\n", "Kite (storage)",
              MeasureBootSeconds(OsKind::kKiteRumprun, true), "~7 s");
  std::printf("%-22s %8.1f s %9s\n", "Ubuntu (network)",
              MeasureBootSeconds(OsKind::kUbuntuLinux, false), "75 s");
  return 0;
}
