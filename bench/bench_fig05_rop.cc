// Figures 1b and 5: ROP gadget totals and per-category breakdown across
// Kite, default-config Linux, CentOS 8, Fedora 2020.05, Debian 10.4, and
// Ubuntu 18.04 — produced by scanning synthetic images (real x86-64
// encodings, real scanner; sizes/mixes from the OS profiles).
#include "bench/common.h"
#include "src/security/rop.h"

int main() {
  using namespace kite;
  const OsProfile* profiles[] = {
      &KiteNetworkProfile(), &DefaultLinuxProfile(), &CentOsProfile(),
      &FedoraProfile(),      &DebianProfile(),       &UbuntuDriverDomainProfile(),
  };
  const double scale = 0.03;  // Scan 3% of each image; counts scaled back.

  GadgetCounts results[6];
  for (int i = 0; i < 6; ++i) {
    results[i] = AnalyzeProfile(*profiles[i], scale);
  }

  PrintHeader("Figure 1b", "Total ROP gadgets");
  std::printf("%-18s %14s\n", "image", "gadgets");
  for (int i = 0; i < 6; ++i) {
    std::printf("%-18s %14llu\n", profiles[i]->name.c_str(),
                static_cast<unsigned long long>(results[i].total));
  }
  std::printf("default-Linux/Kite ratio: %.1fx (paper: ~4x)\n",
              static_cast<double>(results[1].total) / results[0].total);

  PrintHeader("Figure 5", "ROP gadgets by category");
  std::printf("%-16s", "category");
  for (int i = 0; i < 6; ++i) {
    std::printf(" %12s", profiles[i]->name.substr(0, 12).c_str());
  }
  std::printf("\n");
  for (int c = 0; c < kInsnClassCount; ++c) {
    std::printf("%-16s", InsnClassName(static_cast<InsnClass>(c)));
    for (int i = 0; i < 6; ++i) {
      std::printf(" %12llu", static_cast<unsigned long long>(results[i].by_class[c]));
    }
    std::printf("\n");
  }
  PrintNote("shape target: Kite lowest in every category; gadget count tracks "
            "kernel+module code size");
  return 0;
}
