// Ablations of Kite's design choices (DESIGN.md §4):
//   1. persistent grants on/off      — grant map/unmap hypercalls on the block path;
//   2. indirect segments on/off      — 44 KB direct cap vs 128 KB requests;
//   3. segment batching on/off       — consecutive-segment coalescing into device ops;
//   4. dedicated threads vs in-handler processing — the pusher/soft_start design;
//   5. hypervisor-copy vs map/unmap per packet    — netback data movement.
#include "bench/common.h"
#include "src/workloads/netbench.h"
#include "src/workloads/storagebench.h"

namespace kite {
namespace {

struct BlkAblResult {
  double mbps = 0;
  uint64_t grant_maps = 0;
  uint64_t grant_unmaps = 0;
  uint64_t device_ops = 0;
};

BlkAblResult RunBlk(BlkbackParams params) {
  StorTopology topo = MakeStorTopology(OsKind::kKiteRumprun, 8LL << 30, params);
  DdConfig config;
  config.total_bytes = 256LL * 1024 * 1024;
  config.inflight = 8;
  DdBench dd(topo.guest->blkfront(), config);
  BlkAblResult out;
  bool done = false;
  dd.Run([&](const DdResult& r) {
    done = true;
    out.mbps = r.mbytes_per_sec;
  });
  topo.sys->WaitUntil([&] { return done; }, Seconds(600));
  out.grant_maps = topo.sys->hv().grant_maps();
  out.grant_unmaps = topo.sys->hv().grant_unmaps();
  auto* inst = topo.stordom->driver()->instance(topo.guest->domain()->id(), 51712);
  out.device_ops = inst != nullptr ? inst->device_ops() : 0;
  return out;
}

struct NetAblResult {
  double goodput_gbps = 0;
  double rr_latency_ms = 0;
  uint64_t grant_maps = 0;
};

NetAblResult RunNet(NetbackParams params) {
  NetAblResult out;
  {
    NetTopology topo = MakeNetTopology(OsKind::kKiteRumprun, params);
    NuttcpConfig config;
    config.duration = Millis(150);
    // Single-fragment datagrams: goodput degrades proportionally to backend
    // capacity instead of collapsing via fragment-loss amplification.
    config.datagram_bytes = 1472;
    NuttcpUdp nuttcp(topo.client_stack(), topo.guest_stack(), kGuestIp, config);
    bool done = false;
    nuttcp.Run([&](const NuttcpResult& r) {
      done = true;
      out.goodput_gbps = r.goodput_gbps;
    });
    topo.sys->WaitUntil([&] { return done; }, Seconds(60));
    out.grant_maps = topo.sys->hv().grant_maps();
  }
  {
    NetTopology topo = MakeNetTopology(OsKind::kKiteRumprun, params);
    NetperfRrConfig config;
    config.requests = 300;
    config.interval = Micros(500);
    NetperfRr rr(topo.client_stack(), topo.guest_stack(), kGuestIp, config);
    bool done = false;
    rr.Run([&](const NetperfRrResult& r) {
      done = true;
      out.rr_latency_ms = r.latency_ms.Mean();
    });
    topo.sys->WaitUntil([&] { return done; }, Seconds(60));
  }
  return out;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;

  PrintHeader("Ablation 1", "Persistent grants (dd 256 MB sequential read)");
  BlkbackParams no_persist;
  no_persist.persistent_grants = false;
  const BlkAblResult with_pg = RunBlk(BlkbackParams{});
  const BlkAblResult without_pg = RunBlk(no_persist);
  std::printf("%-22s %10s %14s %14s\n", "config", "MB/s", "grant maps", "grant unmaps");
  std::printf("%-22s %10.0f %14llu %14llu\n", "persistent grants", with_pg.mbps,
              (unsigned long long)with_pg.grant_maps,
              (unsigned long long)with_pg.grant_unmaps);
  std::printf("%-22s %10.0f %14llu %14llu\n", "map/unmap per req", without_pg.mbps,
              (unsigned long long)without_pg.grant_maps,
              (unsigned long long)without_pg.grant_unmaps);

  PrintHeader("Ablation 2", "Indirect segments (44 KB cap vs 128 KB requests)");
  BlkbackParams no_indirect;
  no_indirect.indirect_segments = false;
  const BlkAblResult with_ind = RunBlk(BlkbackParams{});
  const BlkAblResult without_ind = RunBlk(no_indirect);
  std::printf("%-22s %10s\n", "config", "MB/s");
  std::printf("%-22s %10.0f\n", "indirect (128KB req)", with_ind.mbps);
  std::printf("%-22s %10.0f\n", "direct only (44KB)", without_ind.mbps);

  PrintHeader("Ablation 3", "Segment batching into device operations");
  BlkbackParams no_batch;
  no_batch.batching = false;
  const BlkAblResult with_batch = RunBlk(BlkbackParams{});
  const BlkAblResult without_batch = RunBlk(no_batch);
  std::printf("%-22s %10s %14s\n", "config", "MB/s", "device ops");
  std::printf("%-22s %10.0f %14llu\n", "batching", with_batch.mbps,
              (unsigned long long)with_batch.device_ops);
  std::printf("%-22s %10.0f %14llu\n", "per-segment ops", without_batch.mbps,
              (unsigned long long)without_batch.device_ops);

  PrintHeader("Ablation 4", "Dedicated pusher/soft_start threads vs in-handler work");
  NetbackParams inline_mode;
  inline_mode.dedicated_threads = false;
  const NetAblResult threaded = RunNet(NetbackParams{});
  const NetAblResult inline_r = RunNet(inline_mode);
  std::printf("%-22s %12s %16s\n", "config", "Gbps", "RR latency (ms)");
  std::printf("%-22s %12.2f %16.3f\n", "dedicated threads", threaded.goodput_gbps,
              threaded.rr_latency_ms);
  std::printf("%-22s %12.2f %16.3f\n", "in-handler", inline_r.goodput_gbps,
              inline_r.rr_latency_ms);

  PrintHeader("Ablation 5", "Hypervisor copy vs map/unmap per packet (netback)");
  NetbackParams map_mode;
  map_mode.use_hv_copy = false;
  const NetAblResult hv_copy = RunNet(NetbackParams{});
  const NetAblResult mapped = RunNet(map_mode);
  std::printf("%-22s %12s %14s\n", "config", "Gbps", "grant maps");
  std::printf("%-22s %12.2f %14llu\n", "hypervisor copy", hv_copy.goodput_gbps,
              (unsigned long long)hv_copy.grant_maps);
  std::printf("%-22s %12.2f %14llu\n", "map per packet", mapped.goodput_gbps,
              (unsigned long long)mapped.grant_maps);
  return 0;
}
