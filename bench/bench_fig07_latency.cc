// Figure 7: network latency through the driver domain — ping (100 @ 1 s
// intervals), Netperf-style RR (1000 req/s), and memtier against memcached
// (100k ops, 1:10 SET:GET, 8 KB values).
//
// Per-op latencies are folded into log-bucketed LatencyHistograms so the
// table and BENCH_fig07.json report p50/p90/p99/p99.9, not just the mean.
#include "bench/common.h"
#include "src/workloads/memcached.h"
#include "src/workloads/netbench.h"

namespace kite {
namespace {

struct Fig7Row {
  LatencyHistogram ping;
  LatencyHistogram netperf;
  LatencyHistogram memtier;
};

Fig7Row Measure(OsKind os, BenchReport* report) {
  const std::string label = PersLabel(os);
  Fig7Row row;
  {
    NetTopology topo = MakeNetTopology(os);
    // Scaled: 20 pings at 1 s intervals (paper: 100) — identical statistics
    // in a deterministic simulation.
    PingBench ping(topo.client_stack(), kGuestIp, /*count=*/20, Seconds(1));
    bool done = false;
    ping.Run([&](const PingBenchResult& r) {
      done = true;
      row.ping = HistogramFromMsSamples(r.rtt_ms);
    });
    topo.sys->WaitUntil([&] { return done; }, Seconds(60));
    report->Counters(label + "/ping", topo.sys.get());
  }
  {
    NetTopology topo = MakeNetTopology(os);
    NetperfRrConfig config;
    config.requests = 500;  // Paper: 1000 req/s; same rate, shorter run.
    config.interval = Millis(1);
    NetperfRr rr(topo.client_stack(), topo.guest_stack(), kGuestIp, config);
    bool done = false;
    rr.Run([&](const NetperfRrResult& r) {
      done = true;
      row.netperf = HistogramFromMsSamples(r.latency_ms);
    });
    topo.sys->WaitUntil([&] { return done; }, Seconds(60));
    report->Counters(label + "/netperf", topo.sys.get());
  }
  {
    NetTopology topo = MakeNetTopology(os);
    MemcachedServer server(topo.guest_stack(), 11211);
    MemtierConfig config;
    config.total_ops = 5000;  // Paper: 100k; latency is per-op, rate-stable.
    config.connections = 4;
    MemtierBench bench(topo.client_stack(), kGuestIp, 11211, config);
    bool done = false;
    bench.Run([&](const MemtierResult& r) {
      done = true;
      row.memtier = HistogramFromMsSamples(r.latency_ms);
    });
    topo.sys->WaitUntil([&] { return done; }, Seconds(120));
    report->Counters(label + "/memtier", topo.sys.get());
  }
  report->Latency("ping_rtt", label, row.ping);
  report->Latency("netperf_rr", label, row.netperf);
  report->Latency("memtier", label, row.memtier);
  return row;
}

double Ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

void PrintRow(const char* domain, const char* workload, const LatencyHistogram& h) {
  std::printf("%-10s %-10s %8.2f %8.2f %8.2f %8.2f %8.2f\n", domain, workload,
              Ms(static_cast<uint64_t>(h.mean())), Ms(h.p50()), Ms(h.p90()), Ms(h.p99()),
              Ms(h.p999()));
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Figure 7", "Network latency (ms): ping / Netperf / Memtier");
  BenchReport report("fig07", "Network latency through the driver domain");
  report.Param("ping_count", 20);
  report.Param("netperf_requests", 500);
  report.Param("memtier_ops", 5000);
  report.Param("memtier_connections", 4);
  const Fig7Row linux = Measure(OsKind::kUbuntuLinux, &report);
  const Fig7Row kite = Measure(OsKind::kKiteRumprun, &report);
  std::printf("%-10s %-10s %8s %8s %8s %8s %8s\n", "domain", "workload", "mean", "p50",
              "p90", "p99", "p99.9");
  PrintRow("Linux", "ping", linux.ping);
  PrintRow("Linux", "netperf", linux.netperf);
  PrintRow("Linux", "memtier", linux.memtier);
  PrintRow("Kite", "ping", kite.ping);
  PrintRow("Kite", "netperf", kite.netperf);
  PrintRow("Kite", "memtier", kite.memtier);
  std::printf("paper means: Linux 0.51 / 0.18 / 0.16, Kite 0.31 / 0.10 / 0.15\n");
  return report.Write() ? 0 : 1;
}
