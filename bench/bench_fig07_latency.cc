// Figure 7: network latency through the driver domain — ping (100 @ 1 s
// intervals), Netperf-style RR (1000 req/s), and memtier against memcached
// (100k ops, 1:10 SET:GET, 8 KB values).
#include "bench/common.h"
#include "src/workloads/memcached.h"
#include "src/workloads/netbench.h"

namespace kite {
namespace {

struct Fig7Row {
  double ping_ms = 0;
  double netperf_ms = 0;
  double memtier_ms = 0;
};

Fig7Row Measure(OsKind os) {
  Fig7Row row;
  {
    NetTopology topo = MakeNetTopology(os);
    // Scaled: 20 pings at 1 s intervals (paper: 100) — identical statistics
    // in a deterministic simulation.
    PingBench ping(topo.client_stack(), kGuestIp, /*count=*/20, Seconds(1));
    bool done = false;
    ping.Run([&](const PingBenchResult& r) {
      done = true;
      row.ping_ms = r.rtt_ms.Mean();
    });
    topo.sys->WaitUntil([&] { return done; }, Seconds(60));
  }
  {
    NetTopology topo = MakeNetTopology(os);
    NetperfRrConfig config;
    config.requests = 500;  // Paper: 1000 req/s; same rate, shorter run.
    config.interval = Millis(1);
    NetperfRr rr(topo.client_stack(), topo.guest_stack(), kGuestIp, config);
    bool done = false;
    rr.Run([&](const NetperfRrResult& r) {
      done = true;
      row.netperf_ms = r.latency_ms.Mean();
    });
    topo.sys->WaitUntil([&] { return done; }, Seconds(60));
  }
  {
    NetTopology topo = MakeNetTopology(os);
    MemcachedServer server(topo.guest_stack(), 11211);
    MemtierConfig config;
    config.total_ops = 5000;  // Paper: 100k; latency is per-op, rate-stable.
    config.connections = 4;
    MemtierBench bench(topo.client_stack(), kGuestIp, 11211, config);
    bool done = false;
    bench.Run([&](const MemtierResult& r) {
      done = true;
      row.memtier_ms = r.avg_latency_ms;
    });
    topo.sys->WaitUntil([&] { return done; }, Seconds(120));
  }
  return row;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Figure 7", "Network latency (ms): ping / Netperf / Memtier");
  const Fig7Row linux = Measure(OsKind::kUbuntuLinux);
  const Fig7Row kite = Measure(OsKind::kKiteRumprun);
  std::printf("%-10s %10s %10s %10s\n", "domain", "ping", "netperf", "memtier");
  std::printf("%-10s %10.2f %10.2f %10.2f\n", "Linux", linux.ping_ms, linux.netperf_ms,
              linux.memtier_ms);
  std::printf("%-10s %10.2f %10.2f %10.2f\n", "Kite", kite.ping_ms, kite.netperf_ms,
              kite.memtier_ms);
  std::printf("%-10s %10s %10s %10s\n", "paper-Lnx", "0.51", "0.18", "0.16");
  std::printf("%-10s %10s %10s %10s\n", "paper-Kite", "0.31", "0.10", "0.15");
  return 0;
}
