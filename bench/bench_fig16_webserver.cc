// Figure 16: Filebench webserver — throughput, CPU per op, latency (50
// threads, open/read/close + 16 KB log appends; paper: Kite slightly ahead).
#include "bench/common.h"
#include "src/workloads/filebench.h"

namespace kite {
namespace {

FilebenchResult RunWebserver(OsKind os) {
  StorTopology topo = MakeStorTopology(os);
  FilebenchConfig config;
  config.personality = FilebenchPersonality::kWebserver;
  config.threads = 50;              // Paper: 50 threads.
  config.file_count = 2000;         // Scaled from 200k files.
  config.mean_file_bytes = 64 * 1024;  // Paper: 64 KB average.
  config.append_bytes = 16 * 1024;  // Paper: 16 KB log appends.
  config.io_bytes = 1024 * 1024;    // Paper: 1 MB I/O size.
  config.duration = Millis(250);
  Filebench bench(topo.fs.get(), config, topo.stordom->domain()->vcpu(0));
  FilebenchResult out;
  bool done = false;
  bench.Run([&](const FilebenchResult& r) {
    done = true;
    out = r;
  });
  topo.sys->WaitUntil([&] { return done; }, Seconds(600));
  return out;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Figure 16", "Filebench webserver (50 threads, 16 KB appends, 1 MB I/O)");
  const FilebenchResult linux = RunWebserver(OsKind::kUbuntuLinux);
  const FilebenchResult kite = RunWebserver(OsKind::kKiteRumprun);
  std::printf("%-10s %18s %14s %14s\n", "domain", "throughput (MB/s)", "CPU (us/op)",
              "latency (ms)");
  std::printf("%-10s %18.1f %14.1f %14.2f\n", "Linux", linux.mbytes_per_sec,
              linux.cpu_us_per_op, linux.latency_ms.Mean());
  std::printf("%-10s %18.1f %14.1f %14.2f\n", "Kite", kite.mbytes_per_sec,
              kite.cpu_us_per_op, kite.latency_ms.Mean());
  std::printf("paper shape: Kite takes less time per op → higher throughput, lower "
              "latency\n");
  return 0;
}
