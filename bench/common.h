// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each bench binary regenerates one table/figure of the paper: it builds the
// paper's topology (client ↔ NIC ↔ driver domain ↔ guest, or guest ↔ storage
// domain ↔ NVMe), runs the workload at (scaled) paper parameters for both
// the Kite and Linux driver-domain personalities, and prints the series the
// paper reports next to the paper's reference values.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/core/kite.h"
#include "src/workloads/fs.h"

namespace kite {

inline const Ipv4Addr kGuestIp = Ipv4Addr::FromOctets(10, 0, 0, 10);

// Every bench run ends by dumping the system's metric registry: the same
// counters the drivers use for their own bookkeeping double as a consistency
// report (ring traffic, hypercall counts, drops, rejected requests).
inline void PrintMetrics(KiteSystem* sys) {
  std::printf("\n---- metrics ----------------------------------------------------\n");
  std::printf("%s", sys->FormatMetrics().c_str());
}

// A network-domain topology: client machine ↔ driver domain ↔ guest.
struct NetTopology {
  std::unique_ptr<KiteSystem> sys;
  NetworkDomain* netdom = nullptr;
  GuestVm* guest = nullptr;

  NetTopology() = default;
  NetTopology(NetTopology&&) = default;
  NetTopology& operator=(NetTopology&&) = default;
  ~NetTopology() {
    if (sys != nullptr) {  // Not moved-from.
      PrintMetrics(sys.get());
    }
  }

  EtherStack* client_stack() const { return sys->client()->stack(); }
  EtherStack* guest_stack() const { return guest->stack(); }
};

inline NetTopology MakeNetTopology(OsKind os, NetbackParams netback = NetbackParams{}) {
  NetTopology topo;
  topo.sys = std::make_unique<KiteSystem>();
  DriverDomainConfig config;
  config.os = os;
  config.netback = netback;
  topo.netdom = topo.sys->CreateNetworkDomain(config);
  topo.guest = topo.sys->CreateGuest("server-guest");
  topo.sys->AttachVif(topo.guest, topo.netdom, kGuestIp);
  if (!topo.sys->WaitConnected(topo.guest)) {
    std::fprintf(stderr, "FATAL: guest failed to connect\n");
    std::abort();
  }
  // Warm ARP both ways so measurements exclude resolution.
  bool warm = false;
  topo.client_stack()->Ping(kGuestIp, 8, [&](bool, SimDuration) { warm = true; });
  topo.sys->WaitUntil([&] { return warm; }, Seconds(5));
  return topo;
}

// A storage-domain topology: guest ↔ storage driver domain ↔ NVMe.
struct StorTopology {
  std::unique_ptr<KiteSystem> sys;
  StorageDomain* stordom = nullptr;
  GuestVm* guest = nullptr;
  std::unique_ptr<SimpleFs> fs;

  StorTopology() = default;
  StorTopology(StorTopology&&) = default;
  StorTopology& operator=(StorTopology&&) = default;
  ~StorTopology() {
    if (sys != nullptr) {  // Not moved-from.
      PrintMetrics(sys.get());
    }
  }
};

inline StorTopology MakeStorTopology(OsKind os, int64_t disk_bytes = 8LL << 30,
                                     BlkbackParams blkback = BlkbackParams{}) {
  StorTopology topo;
  KiteSystem::Params params;
  params.disk.capacity_bytes = disk_bytes;
  params.disk_store_data = false;  // Benchmarks need timing, not content.
  topo.sys = std::make_unique<KiteSystem>(params);
  DriverDomainConfig config;
  config.os = os;
  config.blkback = blkback;
  topo.stordom = topo.sys->CreateStorageDomain(config);
  topo.guest = topo.sys->CreateGuest("db-guest");
  topo.sys->AttachVbd(topo.guest, topo.stordom);
  if (!topo.sys->WaitConnected(topo.guest)) {
    std::fprintf(stderr, "FATAL: guest blkfront failed to connect\n");
    std::abort();
  }
  topo.fs = std::make_unique<SimpleFs>(topo.guest->blkfront());
  return topo;
}

inline void PrintHeader(const char* figure, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("================================================================\n");
}

inline void PrintNote(const char* note) { std::printf("note: %s\n", note); }

inline const char* Pers(OsKind os) { return os == OsKind::kKiteRumprun ? "Kite " : "Linux"; }

}  // namespace kite

#endif  // BENCH_COMMON_H_
