// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each bench binary regenerates one table/figure of the paper: it builds the
// paper's topology (client ↔ NIC ↔ driver domain ↔ guest, or guest ↔ storage
// domain ↔ NVMe), runs the workload at (scaled) paper parameters for both
// the Kite and Linux driver-domain personalities, and prints the series the
// paper reports next to the paper's reference values.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/stats.h"
#include "src/base/strings.h"
#include "src/core/kite.h"
#include "src/obs/latency.h"
#include "src/workloads/fs.h"

namespace kite {

inline const Ipv4Addr kGuestIp = Ipv4Addr::FromOctets(10, 0, 0, 10);

// Every bench run ends by dumping the system's metric registry: the same
// counters the drivers use for their own bookkeeping double as a consistency
// report (ring traffic, hypercall counts, drops, rejected requests).
inline void PrintMetrics(KiteSystem* sys) {
  std::printf("\n---- metrics ----------------------------------------------------\n");
  std::printf("%s", sys->FormatMetrics().c_str());
}

// A network-domain topology: client machine ↔ driver domain ↔ guest.
struct NetTopology {
  std::unique_ptr<KiteSystem> sys;
  NetworkDomain* netdom = nullptr;
  GuestVm* guest = nullptr;

  NetTopology() = default;
  NetTopology(NetTopology&&) = default;
  NetTopology& operator=(NetTopology&&) = default;
  ~NetTopology() {
    if (sys != nullptr) {  // Not moved-from.
      PrintMetrics(sys.get());
    }
  }

  EtherStack* client_stack() const { return sys->client()->stack(); }
  EtherStack* guest_stack() const { return guest->stack(); }
};

inline NetTopology MakeNetTopology(OsKind os, NetbackParams netback = NetbackParams{}) {
  NetTopology topo;
  topo.sys = std::make_unique<KiteSystem>();
  DriverDomainConfig config;
  config.os = os;
  config.netback = netback;
  topo.netdom = topo.sys->CreateNetworkDomain(config);
  topo.guest = topo.sys->CreateGuest("server-guest");
  topo.sys->AttachVif(topo.guest, topo.netdom, kGuestIp);
  if (!topo.sys->WaitConnected(topo.guest)) {
    std::fprintf(stderr, "FATAL: guest failed to connect\n");
    std::abort();
  }
  // Warm ARP both ways so measurements exclude resolution.
  bool warm = false;
  topo.client_stack()->Ping(kGuestIp, 8, [&](bool, SimDuration) { warm = true; });
  topo.sys->WaitUntil([&] { return warm; }, Seconds(5));
  return topo;
}

// A storage-domain topology: guest ↔ storage driver domain ↔ NVMe.
struct StorTopology {
  std::unique_ptr<KiteSystem> sys;
  StorageDomain* stordom = nullptr;
  GuestVm* guest = nullptr;
  std::unique_ptr<SimpleFs> fs;

  StorTopology() = default;
  StorTopology(StorTopology&&) = default;
  StorTopology& operator=(StorTopology&&) = default;
  ~StorTopology() {
    if (sys != nullptr) {  // Not moved-from.
      PrintMetrics(sys.get());
    }
  }
};

inline StorTopology MakeStorTopology(OsKind os, int64_t disk_bytes = 8LL << 30,
                                     BlkbackParams blkback = BlkbackParams{}) {
  StorTopology topo;
  KiteSystem::Params params;
  params.disk.capacity_bytes = disk_bytes;
  params.disk_store_data = false;  // Benchmarks need timing, not content.
  topo.sys = std::make_unique<KiteSystem>(params);
  DriverDomainConfig config;
  config.os = os;
  config.blkback = blkback;
  topo.stordom = topo.sys->CreateStorageDomain(config);
  topo.guest = topo.sys->CreateGuest("db-guest");
  topo.sys->AttachVbd(topo.guest, topo.stordom);
  if (!topo.sys->WaitConnected(topo.guest)) {
    std::fprintf(stderr, "FATAL: guest blkfront failed to connect\n");
    std::abort();
  }
  topo.fs = std::make_unique<SimpleFs>(topo.guest->blkfront());
  return topo;
}

inline void PrintHeader(const char* figure, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("================================================================\n");
}

inline void PrintNote(const char* note) { std::printf("note: %s\n", note); }

inline const char* Pers(OsKind os) { return os == OsKind::kKiteRumprun ? "Kite " : "Linux"; }
// Untruncated, unpadded personality name for JSON labels.
inline const char* PersLabel(OsKind os) { return os == OsKind::kKiteRumprun ? "Kite" : "Linux"; }

// ---------------------------------------------------------------------------
// Machine-readable bench output.
//
// Each figure binary fills one BenchReport and writes BENCH_<figure>.json —
// into $KITE_BENCH_DIR when set, else the working directory. The file holds
// the workload parameters, every measured series point, latency percentiles
// extracted from LatencyHistogram, the non-zero registry counters of each
// topology, and the git SHA of the tree that produced the numbers, so CI and
// regression tooling parse JSON instead of scraping stdout.

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Commit the numbers were produced at: $KITE_GIT_SHA / $GITHUB_SHA when set
// (CI), else `git rev-parse HEAD`, else "unknown".
inline std::string BenchGitSha() {
  for (const char* var : {"KITE_GIT_SHA", "GITHUB_SHA"}) {
    if (const char* v = std::getenv(var); v != nullptr && v[0] != '\0') {
      return v;
    }
  }
  if (FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r"); p != nullptr) {
    char buf[80] = {};
    const size_t n = fread(buf, 1, sizeof(buf) - 1, p);
    pclose(p);
    std::string sha(buf, n);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
    if (!sha.empty()) {
      return sha;
    }
  }
  return "unknown";
}

// Rebuilds a per-op latency distribution from a workload's Stats series of
// milliseconds (histogram buckets are nanoseconds).
inline LatencyHistogram HistogramFromMsSamples(const Stats& s) {
  LatencyHistogram h;
  for (double ms : s.samples()) {
    h.Record(ms <= 0 ? 0 : static_cast<uint64_t>(ms * 1e6 + 0.5));
  }
  return h;
}

// Writes an auxiliary machine-readable artifact (e.g. BENCH_profile.json,
// already-serialized JSON) next to the BenchReport output, honouring
// $KITE_BENCH_DIR the same way Write() does.
inline bool WriteBenchArtifact(const std::string& filename, const std::string& content) {
  std::string path = filename;
  if (const char* dir = std::getenv("KITE_BENCH_DIR"); dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/" + path;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

class BenchReport {
 public:
  BenchReport(std::string figure, std::string title)
      : figure_(std::move(figure)), title_(std::move(title)) {}

  void Param(const std::string& key, const std::string& v) {
    params_.emplace_back(key, "\"" + JsonEscape(v) + "\"");
  }
  void Param(const std::string& key, double v) {
    params_.emplace_back(key, StrFormat("%.10g", v));
  }

  // One measured point: series name ("goodput_gbps"), run label ("Linux").
  void Value(const std::string& series, const std::string& label, double v) {
    series_.push_back(StrFormat("{\"name\":\"%s\",\"label\":\"%s\",\"value\":%.10g}",
                                JsonEscape(series).c_str(), JsonEscape(label).c_str(), v));
  }

  // Percentiles of one workload latency distribution.
  void Latency(const std::string& series, const std::string& label,
               const LatencyHistogram& h) {
    latency_.push_back(StrFormat(
        "{\"name\":\"%s\",\"label\":\"%s\",\"count\":%llu,"
        "\"p50_ns\":%llu,\"p90_ns\":%llu,\"p99_ns\":%llu,\"p999_ns\":%llu,"
        "\"mean_ns\":%.1f,\"min_ns\":%llu,\"max_ns\":%llu}",
        JsonEscape(series).c_str(), JsonEscape(label).c_str(),
        static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.p50()),
        static_cast<unsigned long long>(h.p90()),
        static_cast<unsigned long long>(h.p99()),
        static_cast<unsigned long long>(h.p999()), h.mean(),
        static_cast<unsigned long long>(h.min()),
        static_cast<unsigned long long>(h.max())));
  }

  // Snapshots a topology's registry before it is torn down: non-zero counters
  // plus per-stage latency metrics. `label` distinguishes runs in one figure.
  void Counters(const std::string& label, KiteSystem* sys) {
    for (const MetricRegistry::Sample& s : sys->metric_registry().Snapshot(true)) {
      const std::string key =
          s.key.domain + "/" + s.key.device + "/" + s.key.name;
      if (s.kind == MetricRegistry::Kind::kCounter) {
        counters_.push_back(StrFormat("{\"label\":\"%s\",\"key\":\"%s\",\"value\":%.10g}",
                                      JsonEscape(label).c_str(), JsonEscape(key).c_str(),
                                      s.value));
      } else if (s.kind == MetricRegistry::Kind::kLatency) {
        stage_latency_.push_back(StrFormat(
            "{\"label\":\"%s\",\"key\":\"%s\",\"count\":%llu,"
            "\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,\"p999\":%llu}",
            JsonEscape(label).c_str(), JsonEscape(key).c_str(),
            static_cast<unsigned long long>(s.count),
            static_cast<unsigned long long>(s.p50),
            static_cast<unsigned long long>(s.p90),
            static_cast<unsigned long long>(s.p99),
            static_cast<unsigned long long>(s.p999)));
      }
    }
  }

  // Records every timeline a sampler captured, one row per metric series.
  // Points are [t_ns, value] pairs; counter values are per-period deltas
  // (see src/obs/sampler.h). `label` distinguishes runs in one figure.
  void Timelines(const std::string& label, const MetricSampler& sampler) {
    for (const MetricSampler::Timeline& tl : sampler.Timelines()) {
      const std::string key = tl.key.domain + "/" + tl.key.device + "/" + tl.key.name;
      std::string points;
      for (size_t i = 0; i < tl.points.size(); ++i) {
        const double v = tl.points[i].second;
        points += StrFormat("%s[%lld,%s]", i == 0 ? "" : ",",
                            static_cast<long long>(tl.points[i].first.ns()),
                            v == static_cast<double>(static_cast<long long>(v))
                                ? StrFormat("%lld", static_cast<long long>(v)).c_str()
                                : StrFormat("%.10g", v).c_str());
      }
      timelines_.push_back(StrFormat(
          "{\"label\":\"%s\",\"key\":\"%s\",\"kind\":\"%s\",\"period_ns\":%lld,"
          "\"dropped\":%llu,\"points\":[%s]}",
          JsonEscape(label).c_str(), JsonEscape(key).c_str(),
          tl.kind == MetricRegistry::Kind::kCounter ? "counter" : "gauge",
          static_cast<long long>(sampler.params().period.ns()),
          static_cast<unsigned long long>(tl.dropped), points.c_str()));
    }
  }

  // Writes BENCH_<figure>.json; prints the path so humans can find it too.
  bool Write() const {
    std::string path = "BENCH_" + figure_ + ".json";
    if (const char* dir = std::getenv("KITE_BENCH_DIR"); dir != nullptr && dir[0] != '\0') {
      path = std::string(dir) + "/" + path;
    }
    std::string json = "{\n";
    json += StrFormat("  \"figure\": \"%s\",\n", JsonEscape(figure_).c_str());
    json += StrFormat("  \"title\": \"%s\",\n", JsonEscape(title_).c_str());
    json += StrFormat("  \"git_sha\": \"%s\",\n", JsonEscape(BenchGitSha()).c_str());
    json += "  \"params\": {";
    for (size_t i = 0; i < params_.size(); ++i) {
      json += StrFormat("%s\"%s\": %s", i == 0 ? "" : ", ",
                        JsonEscape(params_[i].first).c_str(), params_[i].second.c_str());
    }
    json += "},\n";
    AppendArray(&json, "series", series_, /*trailing_comma=*/true);
    AppendArray(&json, "latency", latency_, /*trailing_comma=*/true);
    AppendArray(&json, "stage_latency_ns", stage_latency_, /*trailing_comma=*/true);
    AppendArray(&json, "counters", counters_, /*trailing_comma=*/!timelines_.empty());
    // Only present when a sampler was attached, so figures that never record
    // timelines produce byte-identical JSON to the pre-sampler format.
    if (!timelines_.empty()) {
      AppendArray(&json, "timelines", timelines_, /*trailing_comma=*/false);
    }
    json += "}\n";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BENCH: cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
    return true;
  }

 private:
  static void AppendArray(std::string* json, const char* name,
                          const std::vector<std::string>& rows, bool trailing_comma) {
    *json += StrFormat("  \"%s\": [", name);
    for (size_t i = 0; i < rows.size(); ++i) {
      *json += StrFormat("%s\n    %s", i == 0 ? "" : ",", rows[i].c_str());
    }
    *json += rows.empty() ? "]" : "\n  ]";
    *json += trailing_comma ? ",\n" : "\n";
  }

  std::string figure_;
  std::string title_;
  std::vector<std::pair<std::string, std::string>> params_;  // key → JSON value.
  std::vector<std::string> series_;
  std::vector<std::string> latency_;
  std::vector<std::string> stage_latency_;
  std::vector<std::string> counters_;
  std::vector<std::string> timelines_;
};

}  // namespace kite

#endif  // BENCH_COMMON_H_
