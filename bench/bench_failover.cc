// Failover: aggregate throughput around a kill-one-of-K shard event.
//
// The headline sharded topology (64 guests over 4 network + 2 storage
// domains, DESIGN.md §12) under steady aggregate UDP load. Mid-run one
// network shard is wedged to `stalled` (the stall-demo kick-swallow), the
// health watchdog flags it, and the Rebalancer force-evacuates its guests
// onto the healthy shards. The client-side throughput time-series comes from
// the MetricSampler (DESIGN.md §15): the recv callback bumps a registry
// counter and the sampler's 10 ms ticks difference it into bins — the same
// code path every timeline uses. The bench reports the failover figures of
// merit:
//
//   pre_fault_pps      steady-state aggregate throughput before the wedge
//   min_post_fault_pps the bottom of the dip
//   time_to_recover_ms first bin back at >=90% of pre-fault, from the wedge
//   recovery_percent   mean of the final bins as % of pre-fault
//
// Exit status is non-zero unless throughput recovers to >=90% of the
// pre-fault rate within the run — the CI failover smoke job runs this binary
// and asserts the same bound from BENCH_failover.json.
//
// Traffic pauses for a few milliseconds around the wedge itself: the
// kick-swallow fault site is global while armed, and the wedge must hit
// exactly one parked netback, not every shard with a send in flight. The
// pause is shorter than one bin and is charged to the dip.
#include <algorithm>
#include <vector>

#include "bench/common.h"
#include "src/obs/profile.h"

int main() {
  using namespace kite;
  PrintHeader("Failover", "throughput around a kill-one-of-K network shard event");
  PrintNote("one of 4 netback shards wedged to stalled at t=150ms; Rebalancer "
            "evacuates its guests; 10 ms bins");

  constexpr int kNetShards = 4;
  constexpr int kStorShards = 2;
  constexpr int kGuests = 64;
  constexpr int kBinMs = 10;
  constexpr int kDurationMs = 400;
  constexpr int kFaultMs = 150;
  constexpr int kNumBins = kDurationMs / kBinMs;
  const SimDuration kSendPeriod = Micros(500);  // 2k pps per guest, 128k aggregate.

  KiteSystem::Params params;
  params.health.probe_period = Millis(1);
  params.health.degraded_after = Millis(5);
  params.health.stalled_after = Millis(20);
  // One tick per bin; started manually at t0 so warmup stays out of the
  // series (Start()'s baseline snapshot absorbs everything before it).
  params.sampler.period = Millis(kBinMs);
  KiteSystem sys(params);
  sys.executor().EnableDispatchProfiler();

  DomainPool pool(&sys);
  for (int i = 0; i < kNetShards; ++i) {
    pool.AddNetworkShard(sys.CreateNetworkDomain());
  }
  for (int i = 0; i < kStorShards; ++i) {
    pool.AddStorageShard(sys.CreateStorageDomain());
  }
  RebalancerParams rp;
  rp.degraded_hysteresis = Seconds(1);  // The stalled path owns the wedge.
  Rebalancer reb(&sys, &pool, rp);

  std::vector<GuestVm*> guests;
  for (int i = 0; i < kGuests; ++i) {
    GuestVm* g = sys.CreateGuest(StrFormat("vm%02d", i));
    if (pool.AttachVif(g, Ipv4Addr::FromOctets(10, 0, 0, static_cast<uint8_t>(10 + i))) ==
            nullptr ||
        pool.AttachVbd(g) == nullptr) {
      std::fprintf(stderr, "FATAL: pool had no open shard\n");
      return 1;
    }
    guests.push_back(g);
  }
  for (GuestVm* g : guests) {
    if (!sys.WaitConnected(g)) {
      std::fprintf(stderr, "FATAL: guest failed to connect\n");
      return 1;
    }
  }
  // Warm ARP so the measured series starts at steady state.
  for (GuestVm* g : guests) {
    bool warm = false;
    g->stack()->Ping(sys.client_ip(), 8, [&](bool, SimDuration) { warm = true; });
    sys.WaitUntil([&] { return warm; }, Seconds(5));
  }

  auto server = sys.client()->stack()->OpenUdp();
  server->Bind(9000);
  // Bins are relative to the moment the send schedule is posted (warmup and
  // connection setup happen before t0 and are not part of the series). The
  // recv callback only counts; binning is the sampler's job. A tick lands
  // exactly on each bin edge and dispatches before any same-instant arrival
  // (it was posted a full period earlier), so an arrival at edge k falls in
  // bin k — the floor semantics the hand-rolled bins had.
  const int64_t t0_ns = sys.Now().ns();
  Counter* rx_counter = sys.metric_registry().counter("bench", "client", "udp_rx");
  server->SetRecvCallback(
      [rx_counter](Ipv4Addr, uint16_t, const Buffer&) { rx_counter->Inc(); });

  bool paused = false;
  std::vector<std::unique_ptr<UdpSocket>> socks;
  for (GuestVm* g : guests) {
    socks.push_back(g->stack()->OpenUdp());
  }
  for (int gi = 0; gi < kGuests; ++gi) {
    UdpSocket* sock = socks[gi].get();
    const SimDuration offset = Micros(8) * gi;  // De-phase the senders.
    for (int t = 0; t * 500 < kDurationMs * 1000; ++t) {
      sys.executor().PostAfter(kSendPeriod * t + offset, [&sys, &paused, sock] {
        if (!paused) {
          sock->SendTo(sys.client_ip(), 9000, Buffer(256, 0x5c));
        }
      });
    }
  }
  sys.sampler().Start();

  // The kill: quiesce the fabric for a moment, swallow the one TX kick that
  // crosses the victim's req_event, and let the watchdog do the rest.
  DomId victim = -1;
  sys.executor().PostAfter(Millis(kFaultMs), [&] { paused = true; });
  sys.executor().PostAfter(Millis(kFaultMs + 2), [&] {
    victim = guests[0]->netfront()->backend_dom();
    sys.faults().set_rate(FaultSite::kEventNotify, 1.0);
    guests[0]->stack()->Ping(sys.client_ip(), 56, [](bool, SimDuration) {});
  });
  sys.executor().PostAfter(Millis(kFaultMs + 5),
                           [&] { sys.faults().set_rate(FaultSite::kEventNotify, 0.0); });
  sys.executor().PostAfter(Millis(kFaultMs + 6), [&] { paused = false; });

  sys.RunFor(Millis(kDurationMs));
  // Freeze the series at the duration mark: arrivals after it are out of the
  // measurement window (the old binning dropped them the same way).
  sys.sampler().Stop();
  sys.RunUntilIdle();

  // Rebuild the bins from the sampled udp_rx timeline: the tick at
  // t0 + (k+1)·P carries bin k's delta.
  std::vector<uint64_t> bins(kNumBins, 0);
  for (const MetricSampler::Timeline& tl : sys.sampler().Timelines()) {
    if (tl.key.domain != "bench" || tl.key.name != "udp_rx") {
      continue;
    }
    for (const auto& [at, delta] : tl.points) {
      const int64_t bin = (at.ns() - t0_ns) / Millis(kBinMs).ns() - 1;
      if (bin >= 0 && bin < kNumBins) {
        bins[static_cast<size_t>(bin)] = static_cast<uint64_t>(delta);
      }
    }
  }

  // Figures of merit. Pre-fault window skips the first bins (ramp).
  double pre = 0;
  int pre_bins = 0;
  for (int b = 5; b < kFaultMs / kBinMs; ++b) {
    pre += static_cast<double>(bins[b]);
    ++pre_bins;
  }
  pre /= pre_bins > 0 ? pre_bins : 1;
  double dip = pre;
  int recover_bin = -1;
  for (int b = kFaultMs / kBinMs; b < kNumBins; ++b) {
    dip = std::min(dip, static_cast<double>(bins[b]));
    if (recover_bin < 0 && static_cast<double>(bins[b]) >= 0.9 * pre) {
      recover_bin = b;
    }
  }
  double tail = 0;
  constexpr int kTailBins = 5;
  for (int b = kNumBins - kTailBins; b < kNumBins; ++b) {
    tail += static_cast<double>(bins[b]);
  }
  tail /= kTailBins;
  const double to_pps = 1000.0 / kBinMs;
  const double recovery_percent = pre > 0 ? 100.0 * tail / pre : 0;
  const double time_to_recover_ms =
      recover_bin < 0 ? -1 : static_cast<double>(recover_bin * kBinMs - kFaultMs);

  std::printf("%8s %14s\n", "t (ms)", "throughput");
  for (int b = 0; b < kNumBins; ++b) {
    std::printf("%8d %10.0f pps%s\n", b * kBinMs, bins[b] * to_pps,
                b == kFaultMs / kBinMs ? "   <- shard dom wedged" : "");
  }
  std::printf("\npre-fault %.0f pps, dip %.0f pps, recovered to %.1f%% "
              "(t+%.0f ms); %llu evacuation(s), %llu move(s), victim dom%d\n",
              pre * to_pps, dip * to_pps, recovery_percent, time_to_recover_ms,
              static_cast<unsigned long long>(reb.evacuations()),
              static_cast<unsigned long long>(sys.migrator().completed()), victim);

  BenchReport report("failover", "aggregate throughput around a kill-one-of-K shard event");
  report.Param("guests", kGuests);
  report.Param("net_shards", kNetShards);
  report.Param("storage_shards", kStorShards);
  report.Param("bin_ms", kBinMs);
  report.Param("duration_ms", kDurationMs);
  report.Param("fault_ms", kFaultMs);
  report.Param("wedge_window_ms", 6);
  report.Param("per_guest_pps", 2000);
  for (int b = 0; b < kNumBins; ++b) {
    report.Value("throughput_pps", StrFormat("t_ms=%d", b * kBinMs), bins[b] * to_pps);
  }
  report.Value("pre_fault_pps", "aggregate", pre * to_pps);
  report.Value("min_post_fault_pps", "aggregate", dip * to_pps);
  report.Value("recovery_percent", "aggregate", recovery_percent);
  report.Value("time_to_recover_ms", "aggregate", time_to_recover_ms);
  report.Value("evacuations", "rebalancer", static_cast<double>(reb.evacuations()));
  report.Value("migrations_completed", "rebalancer",
               static_cast<double>(sys.migrator().completed()));
  report.Counters("failover", &sys);
  if (!report.Write()) {
    return 1;
  }

  // The full sampled run — throughput, queue/ring gauges, health states —
  // as BENCH_timeline.json; `kite_inspect BENCH_timeline.json` renders the
  // kill-recovery dip from this file alone.
  BenchReport timeline_report("timeline", "bench_failover telemetry timelines");
  timeline_report.Param("bin_ms", kBinMs);
  timeline_report.Param("fault_ms", kFaultMs);
  timeline_report.Param("t0_ns", static_cast<double>(t0_ns));
  timeline_report.Timelines("failover", sys.sampler());
  if (!timeline_report.Write()) {
    return 1;
  }

  std::printf("\n---- dispatch profile (top 10 sites) ----\n%s",
              FormatDispatchProfile(sys.executor()).c_str());
  // Machine-readable twin of the table above; the CI smoke job validates it.
  if (!WriteBenchArtifact("BENCH_profile.json", DispatchProfileJson(sys.executor()))) {
    return 1;
  }
  if (reb.evacuations() < 1) {
    std::fprintf(stderr, "FAIL: the wedged shard was never evacuated\n");
    return 1;
  }
  if (recovery_percent < 90.0 || recover_bin < 0) {
    std::fprintf(stderr, "FAIL: throughput did not recover to >=90%% of pre-fault "
                 "(%.1f%%)\n", recovery_percent);
    return 1;
  }
  return 0;
}
