// Figure 12: SysBench file I/O through the storage driver domain —
// (a) throughput vs thread count at 256 KB blocks; (b) throughput vs block
// size at 20 threads. Random ops, 3:2 read:write.
#include "bench/common.h"
#include "src/workloads/storagebench.h"

namespace kite {
namespace {

double RunFileIo(OsKind os, int threads, size_t block_bytes) {
  StorTopology topo = MakeStorTopology(os);
  SysbenchFileIoConfig config;
  config.files = 192;  // Paper: 192 files.
  config.total_bytes = 3LL * 1024 * 1024 * 1024;  // Scaled from 15 GB.
  config.threads = threads;
  config.block_bytes = block_bytes;
  config.duration = Millis(300);
  SysbenchFileIo bench(topo.fs.get(), config);
  double mbps = 0;
  bool done = false;
  bench.Run([&](const SysbenchFileIoResult& r) {
    done = true;
    mbps = r.mbytes_per_sec;
  });
  topo.sys->WaitUntil([&] { return done; }, Seconds(600));
  return mbps;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Figure 12a", "SysBench file I/O vs threads (256 KB blocks, rndrw 3:2)");
  PrintNote("file set scaled from 15 GB to 3 GB; paper: Kite ≥ Linux at higher "
            "thread counts");
  std::printf("%-8s %14s %14s\n", "threads", "Linux (MB/s)", "Kite (MB/s)");
  for (int threads : {1, 5, 10, 20, 40, 60, 80, 100}) {
    std::printf("%-8d %14.0f %14.0f\n", threads,
                RunFileIo(OsKind::kUbuntuLinux, threads, 256 * 1024),
                RunFileIo(OsKind::kKiteRumprun, threads, 256 * 1024));
  }

  PrintHeader("Figure 12b", "SysBench file I/O vs block size (20 threads)");
  PrintNote("block sizes capped at 4 MB (files scaled to ~16 MB each); the paper "
            "sweeps to 128 MB on 78 MB files");
  std::printf("%-10s %14s %14s\n", "block", "Linux (MB/s)", "Kite (MB/s)");
  struct Block {
    size_t bytes;
    const char* label;
  };
  const Block blocks[] = {{16 * 1024, "16KB"},   {64 * 1024, "64KB"},
                          {256 * 1024, "256KB"}, {1024 * 1024, "1MB"},
                          {4 * 1024 * 1024, "4MB"}};
  for (const Block& b : blocks) {
    std::printf("%-10s %14.0f %14.0f\n", b.label,
                RunFileIo(OsKind::kUbuntuLinux, 20, b.bytes),
                RunFileIo(OsKind::kKiteRumprun, 20, b.bytes));
  }
  return 0;
}
