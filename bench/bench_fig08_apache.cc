// Figure 8: Apache throughput through the network driver domain.
//  (a) server throughput for file sizes 512 B – 1 MB;
//  (b) transfer time / throughput / request rate at 512 KB, 40 concurrent.
#include "bench/common.h"
#include "src/workloads/http.h"

namespace kite {
namespace {

AbResult RunAb(OsKind os, size_t file_size, int requests) {
  NetTopology topo = MakeNetTopology(os);
  HttpServer http(topo.guest_stack(), 80);
  http.AddFile("/file", file_size);
  AbConfig config;
  config.total_requests = requests;
  config.concurrency = 40;  // Paper: 40 concurrent requests.
  ApacheBench ab(topo.client_stack(), kGuestIp, 80, config);
  AbResult out;
  bool done = false;
  ab.Run([&](const AbResult& r) {
    done = true;
    out = r;
  });
  topo.sys->WaitUntil([&] { return done; }, Seconds(600));
  return out;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Figure 8a", "Apache server throughput vs file size (ab, 40 concurrent)");
  PrintNote("request counts scaled from the paper's 100k per point (deterministic "
            "simulation; rates are steady-state)");
  std::printf("%-10s %14s %14s\n", "file size", "Linux (MB/s)", "Kite (MB/s)");
  struct Point {
    size_t size;
    int requests;
    const char* label;
  };
  const Point points[] = {
      {512, 2000, "512B"},        {4096, 1500, "4KB"},   {16384, 1000, "16KB"},
      {65536, 600, "64KB"},       {262144, 250, "256KB"}, {524288, 120, "512KB"},
      {1048576, 60, "1MB"},
  };
  for (const Point& p : points) {
    const AbResult linux = RunAb(OsKind::kUbuntuLinux, p.size, p.requests);
    const AbResult kite = RunAb(OsKind::kKiteRumprun, p.size, p.requests);
    std::printf("%-10s %14.1f %14.1f\n", p.label, linux.mbytes_per_sec,
                kite.mbytes_per_sec);
  }

  PrintHeader("Figure 8b", "Apache at 512 KB / 40 concurrent (paper: Kite marginally faster)");
  // Three repetitions per domain (paper Table 4 reports run-to-run RSD).
  Stats linux_mbps;
  Stats kite_mbps;
  AbResult linux;
  AbResult kite;
  for (int rep = 0; rep < 3; ++rep) {
    linux = RunAb(OsKind::kUbuntuLinux, 524288, 200);
    kite = RunAb(OsKind::kKiteRumprun, 524288, 200);
    linux_mbps.Add(linux.mbytes_per_sec);
    kite_mbps.Add(kite.mbytes_per_sec);
  }
  std::printf("%-10s %14s %12s %12s %8s\n", "domain", "throughput", "time/req", "req/s",
              "RSD%");
  std::printf("%-10s %11.1f MB/s %9.2f ms %12.1f %8.4f\n", "Linux", linux_mbps.Mean(),
              linux.latency_ms.Mean(), linux.requests_per_sec,
              linux_mbps.RelStdDevPercent());
  std::printf("%-10s %11.1f MB/s %9.2f ms %12.1f %8.4f\n", "Kite", kite_mbps.Mean(),
              kite.latency_ms.Mean(), kite.requests_per_sec,
              kite_mbps.RelStdDevPercent());
  std::printf("paper (Table 4): RSD 1.20%% / 1.44%% — deterministic simulation gives "
              "~0; Kite ≥ Linux as in Fig 8b\n");
  return 0;
}
