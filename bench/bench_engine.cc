// Event-engine throughput: the timer-wheel executor vs the pre-PR binary
// heap, measured in the same binary so BENCH_engine.json always records the
// speedup against a live baseline (bench/legacy_executor.h), not a number
// remembered from an older commit.
//
// Micro workloads (both engines, timed over the dispatch loop only):
//   timers      — self-reposting timers with pseudo-random delays; the
//                 32-byte callback forces a heap allocation per event on the
//                 legacy std::function path and stays inline on the new one.
//   burst       — same-timestamp bursts (one wheel slot per round): isolates
//                 batched dispatch; the tiny callback fits inline in both
//                 engines, so allocation plays no part.
//   coro        — coroutine sleep/resume chains (the driver-thread pattern).
//   mixed       — timers + bursts + a bounded daemon probe + far-future
//                 events that exercise the overflow heap.
//   scale       — the headline: the paper-scale profile (ROADMAP item 4) of
//                 a multi-thousand-guest run — millions of parked timeouts
//                 (idle guests' watchdogs and timers) under 4k active timers.
//                 Every legacy push/pop sifts through the whole cold heap;
//                 the wheel never touches parked events until they are due.
// Telemetry workload (new engine only): the timer shape again but bumping
// registry counters through tagged sites, run with the dispatch profiler +
// 1 ms MetricSampler on and off — `telemetry_overhead_percent` is the price
// of turning continuous telemetry on (CI bounds it at 10%).
// Macro workload (new engine only): a fig06-style multi-guest ping sweep
// through the full hypervisor/driver-domain stack (profiled; its top-site
// table prints after the run), reported as events/sec.
//
// Flags: --events=N (per micro workload), --parked=N (scale workload),
//        --guests=N --pings=N (macro), --skip-macro.
#include <chrono>
#include <cmath>
#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/common.h"
#include "bench/legacy_executor.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/sampler.h"
#include "src/sim/cpu.h"
#include "src/sim/executor.h"

namespace kite {
namespace {

struct BenchConfig {
  uint64_t events = 2000000;
  uint64_t parked = 4000000;
};

double DrainSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// --- Micro workloads, templated over the engine. -------------------------

// 32-byte self-reposting functor: above the 16-byte std::function SBO
// threshold (heap per post on the legacy engine), inside the 64-byte inline
// slot of the new one — the size class of real driver callbacks.
template <typename E>
struct TimerCb {
  E* ex;
  uint64_t* fired;
  uint64_t limit;
  uint64_t state;
  void operator()() {
    if (++*fired >= limit) {
      return;
    }
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    ex->PostAfter(Nanos(100 + static_cast<int64_t>((state >> 33) % 10000)), *this);
  }
};

struct CountCb {  // 8 bytes: inline in both engines.
  uint64_t* fired;
  void operator()() { ++*fired; }
};

// 32-byte parked timeout that never fires during the measured window.
struct ParkedCb {
  uint64_t pad[4] = {};
  void operator()() {}
};

template <typename E>
double RunTimers(const BenchConfig& cfg) {
  E ex;
  uint64_t fired = 0;
  for (int i = 0; i < 512; ++i) {
    ex.PostAfter(Nanos(100 + i),
                 TimerCb<E>{&ex, &fired, cfg.events, 0x9e3779b97f4a7c15ULL * (i + 1)});
  }
  const auto t0 = std::chrono::steady_clock::now();
  while (fired < cfg.events) {
    ex.Step();
  }
  return static_cast<double>(fired) / DrainSeconds(t0);
}

template <typename E>
double RunScale(const BenchConfig& cfg) {
  E ex;
  uint64_t fired = 0;
  // Parked population: timeouts far in the future, seeded before timing.
  for (uint64_t i = 0; i < cfg.parked; ++i) {
    ex.PostAfter(Seconds(100) + Nanos(static_cast<int64_t>(i)), ParkedCb{});
  }
  for (int i = 0; i < 4096; ++i) {
    ex.PostAfter(Nanos(100 + i),
                 TimerCb<E>{&ex, &fired, cfg.events, 0x9e3779b97f4a7c15ULL * (i + 1)});
  }
  const auto t0 = std::chrono::steady_clock::now();
  while (fired < cfg.events) {
    ex.Step();
  }
  return static_cast<double>(fired) / DrainSeconds(t0);
}

template <typename E>
struct BurstDriver {
  E* ex;
  uint64_t* fired;
  uint64_t rounds;
  int width;
  void operator()() {
    if (rounds-- == 0) {
      return;
    }
    const SimTime t = ex->Now() + Micros(1);
    for (int i = 0; i < width; ++i) {
      ex->PostAt(t, CountCb{fired});
    }
    ex->PostAt(t, *this);  // Runs after the burst it just posted (FIFO).
  }
};

template <typename E>
double RunBurst(const BenchConfig& cfg) {
  E ex;
  uint64_t fired = 0;
  const int kWidth = 256;
  ex.Post(BurstDriver<E>{&ex, &fired, cfg.events / kWidth, kWidth});
  const auto t0 = std::chrono::steady_clock::now();
  ex.RunUntilIdle();
  return static_cast<double>(fired) / DrainSeconds(t0);
}

struct MiniTask {
  struct promise_type {
    MiniTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::abort(); }
  };
};

template <typename E>
struct SleepAwaiter {
  E* ex;
  SimDuration d;
  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> h) { ex->ResumeAfter(d, h); }
  void await_resume() const {}
};

template <typename E>
MiniTask Sleeper(E* ex, uint64_t hops, uint64_t seed, uint64_t* resumed) {
  uint64_t state = seed;
  for (uint64_t i = 0; i < hops; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    co_await SleepAwaiter<E>{ex, Nanos(50 + static_cast<int64_t>((state >> 40) % 5000))};
    ++*resumed;
  }
}

template <typename E>
double RunCoro(const BenchConfig& cfg) {
  E ex;
  uint64_t resumed = 0;
  const int kCoros = 256;
  for (int i = 0; i < kCoros; ++i) {
    Sleeper<E>(&ex, cfg.events / kCoros, 0x2545f4914f6cdd1dULL * (i + 1), &resumed);
  }
  const auto t0 = std::chrono::steady_clock::now();
  ex.RunUntilIdle();
  return static_cast<double>(resumed) / DrainSeconds(t0);
}

template <typename E>
struct DaemonCb {
  E* ex;
  uint64_t* fired;
  uint64_t remaining;
  void operator()() {
    ++*fired;
    if (--remaining > 0) {
      ex->PostDaemonAfter(Micros(10), *this);
    }
  }
};

template <typename E>
double RunMixed(const BenchConfig& cfg) {
  E ex;
  uint64_t fired = 0;
  const uint64_t events = cfg.events;
  ex.PostDaemonAfter(Micros(10), DaemonCb<E>{&ex, &fired, events / 20});
  for (int i = 0; i < 256; ++i) {
    ex.PostAfter(Nanos(100 + i),
                 TimerCb<E>{&ex, &fired, events / 2, 0x9e3779b97f4a7c15ULL * (i + 1)});
    // Far-future events: past the 2^42 ns wheel horizon (overflow heap).
    ex.PostAfter(Seconds(5000 + i), CountCb{&fired});
  }
  ex.Post(BurstDriver<E>{&ex, &fired, events / 2 / 256, 256});
  const auto t0 = std::chrono::steady_clock::now();
  ex.RunUntilIdle();  // Drains through the far-future tail via promotion.
  return static_cast<double>(fired) / DrainSeconds(t0);
}

// --- Telemetry overhead: the same timer workload, instrumented. -----------

// 40-byte self-reposting timer that bumps a registry counter each firing and
// reposts through a tagged site — the shape of an instrumented driver
// callback. New engine only (the legacy one has no sites or profiler).
struct TelemetryCb {
  Executor* ex;
  uint64_t* fired;
  uint64_t limit;
  uint64_t state;
  Counter* counter;
  void operator()() {
    counter->Inc();
    if (++*fired >= limit) {
      return;
    }
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    ex->PostAfter(Nanos(100 + static_cast<int64_t>((state >> 33) % 10000)),
                  KITE_POST_SITE("bench/telemetry-timer"), *this);
  }
};

// With `enabled` the dispatch profiler runs at its default sampling rate and
// a MetricSampler ticks every simulated millisecond; without, both stay at
// their pointer-test-disabled cost. Everything else — sites registered,
// counters bumped, identical schedule — is shared, so the rate difference is
// the price of turning telemetry on (CI keeps it loose: within 10%).
double RunTelemetry(const BenchConfig& cfg, bool enabled) {
  Executor ex;
  MetricRegistry metrics;
  SamplerParams sp;
  sp.period = Millis(1);
  MetricSampler sampler(&ex, &metrics, sp);
  if (enabled) {
    ex.EnableDispatchProfiler();
    sampler.Start();
  }
  uint64_t fired = 0;
  for (int i = 0; i < 512; ++i) {
    ex.PostAfter(Nanos(100 + i),
                 TelemetryCb{&ex, &fired, cfg.events, 0x9e3779b97f4a7c15ULL * (i + 1),
                             metrics.counter("bench", "telemetry",
                                             "c" + std::to_string(i % 8))});
  }
  const auto t0 = std::chrono::steady_clock::now();
  while (fired < cfg.events) {
    ex.Step();
  }
  const double rate = static_cast<double>(fired) / DrainSeconds(t0);
  if (enabled) {
    sampler.Stop();
  }
  return rate;
}

// --- Attribution overhead: the same timer shape, charging a vCPU. ---------

// Self-reposting timer that bumps a registry counter and charges a vCPU
// inside a CpuScope each firing — TelemetryCb's instrumented-driver-callback
// shape once CPU attribution (DESIGN.md §16) is in the Charge path. Run with
// the ledger on vs off; the off cost is Charge's single pointer test.
struct AttributionCb {
  Executor* ex;
  Vcpu* cpu;
  uint64_t* fired;
  uint64_t limit;
  uint64_t state;
  Counter* counter;
  void operator()() {
    static const CpuCategory* const kCats[4] = {
        KITE_CPU_CATEGORY("bench/attr-a"), KITE_CPU_CATEGORY("bench/attr-b"),
        KITE_CPU_CATEGORY("bench/attr-c"), KITE_CPU_CATEGORY("bench/attr-d")};
    counter->Inc();
    {
      // ~2 ns of work per ~10 ns of aggregate timer spacing: the vCPU has
      // headroom, so charges take the ledger's uncontended (zero-wait) path
      // — the overwhelmingly common case in real runs.
      CpuScope scope(kCats[state & 3]);
      cpu->Charge(Nanos(2));
    }
    if (++*fired >= limit) {
      return;
    }
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    ex->PostAfter(Nanos(100 + static_cast<int64_t>((state >> 33) % 10000)),
                  KITE_POST_SITE("bench/attr-timer"), *this);
  }
};

double RunAttribution(const BenchConfig& cfg, bool enabled) {
  Executor ex;
  MetricRegistry metrics;
  Vcpu cpu(&ex);
  if (enabled) {
    cpu.EnableAttribution();
  }
  uint64_t fired = 0;
  for (int i = 0; i < 512; ++i) {
    ex.PostAfter(Nanos(100 + i),
                 KITE_POST_SITE("bench/attr-seed"),
                 AttributionCb{&ex, &cpu, &fired, cfg.events,
                               0x9e3779b97f4a7c15ULL * (i + 1),
                               metrics.counter("bench", "attr",
                                               "c" + std::to_string(i % 8))});
  }
  const auto t0 = std::chrono::steady_clock::now();
  while (fired < cfg.events) {
    ex.Step();
  }
  return static_cast<double>(fired) / DrainSeconds(t0);
}

// --- Macro: fig06-style multi-guest sweep on the real stack. --------------

double RunMacro(int guests, int pings_per_guest, uint64_t* steps_out,
                std::string* profile_table) {
  KiteSystem sys;
  // The macro runs profiled: its dispatch-time table shows where a full-stack
  // run spends its time, and the sampling profiler's cost is part of the
  // honest events/sec number.
  sys.executor().EnableDispatchProfiler();
  DriverDomainConfig config;
  config.os = OsKind::kKiteRumprun;
  NetworkDomain* netdom = sys.CreateNetworkDomain(config);
  std::vector<Ipv4Addr> ips;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < guests; ++i) {
    GuestVm* guest = sys.CreateGuest(StrFormat("guest-%d", i));
    const Ipv4Addr ip =
        Ipv4Addr::FromOctets(10, 0, static_cast<uint8_t>(1 + i / 250),
                             static_cast<uint8_t>(1 + i % 250));
    sys.AttachVif(guest, netdom, ip);
    if (!sys.WaitConnected(guest)) {
      std::fprintf(stderr, "FATAL: guest %d failed to connect\n", i);
      std::abort();
    }
    ips.push_back(ip);
  }
  int done = 0;
  const int total = guests * pings_per_guest;
  for (int round = 0; round < pings_per_guest; ++round) {
    for (const Ipv4Addr& ip : ips) {
      sys.client()->stack()->Ping(ip, 56, [&done](bool, SimDuration) { ++done; });
    }
    sys.WaitUntil([&] { return done == (round + 1) * guests; }, Seconds(30));
  }
  if (done != total) {
    std::fprintf(stderr, "FATAL: macro pings incomplete (%d/%d)\n", done, total);
    std::abort();
  }
  *steps_out = sys.executor().steps_executed();
  *profile_table = FormatDispatchProfile(sys.executor());
  return static_cast<double>(*steps_out) / DrainSeconds(t0);
}

// One legacy + one wheel pass back-to-back, three rounds, keep the round
// with the median speedup: pairing makes machine-load drift hit both
// engines alike instead of skewing whichever ran during the slow phase.
struct Measured {
  double legacy;
  double wheel;
  double speedup() const { return wheel / legacy; }
};

Measured MedianRound(double (*legacy)(const BenchConfig&),
                     double (*wheel)(const BenchConfig&), const BenchConfig& cfg) {
  Measured r[3];
  for (Measured& m : r) {
    m.legacy = legacy(cfg);
    m.wheel = wheel(cfg);
  }
  if (r[0].speedup() > r[1].speedup()) std::swap(r[0], r[1]);
  if (r[1].speedup() > r[2].speedup()) std::swap(r[1], r[2]);
  if (r[0].speedup() > r[1].speedup()) std::swap(r[0], r[1]);
  return r[1];
}

int64_t FlagValue(int argc, char** argv, const char* name, int64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return def;
}

bool HasFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

int Main(int argc, char** argv) {
  BenchConfig cfg;
  cfg.events = static_cast<uint64_t>(FlagValue(argc, argv, "events", 2000000));
  cfg.parked = static_cast<uint64_t>(FlagValue(argc, argv, "parked", 4000000));
  const int guests = static_cast<int>(FlagValue(argc, argv, "guests", 64));
  const int pings = static_cast<int>(FlagValue(argc, argv, "pings", 5));
  const bool skip_macro = HasFlag(argc, argv, "skip-macro");

  PrintHeader("engine", "event-engine throughput (timer wheel vs legacy binary heap)");
  BenchReport report("engine", "event-engine throughput");
  report.Param("events_per_workload", static_cast<double>(cfg.events));
  report.Param("scale_parked_events", static_cast<double>(cfg.parked));
  report.Param("macro_guests", static_cast<double>(guests));
  report.Param("macro_pings_per_guest", static_cast<double>(pings));

  struct Workload {
    const char* name;
    double (*legacy)(const BenchConfig&);
    double (*wheel)(const BenchConfig&);
  };
  const Workload workloads[] = {
      {"scale", RunScale<bench::LegacyExecutor>, RunScale<Executor>},
      {"timers", RunTimers<bench::LegacyExecutor>, RunTimers<Executor>},
      {"burst", RunBurst<bench::LegacyExecutor>, RunBurst<Executor>},
      {"coro", RunCoro<bench::LegacyExecutor>, RunCoro<Executor>},
      {"mixed", RunMixed<bench::LegacyExecutor>, RunMixed<Executor>},
  };

  std::printf("%-8s %15s %15s %9s\n", "workload", "legacy ev/s", "wheel ev/s", "speedup");
  double geo = 1.0;
  for (const Workload& w : workloads) {
    // Warm up each engine, then time three paired rounds and keep the
    // median-speedup round: a single pass is at the mercy of cache and
    // machine-load luck at these sizes.
    BenchConfig warm = cfg;
    warm.events = cfg.events / 10;
    warm.parked = cfg.parked / 10;
    (void)w.legacy(warm);
    (void)w.wheel(warm);
    const Measured m = MedianRound(w.legacy, w.wheel, cfg);
    const double legacy = m.legacy;
    const double wheel = m.wheel;
    const double speedup = wheel / legacy;
    geo *= speedup;
    std::printf("%-8s %15.0f %15.0f %8.2fx\n", w.name, legacy, wheel, speedup);
    report.Value("events_per_sec", std::string("legacy:") + w.name, legacy);
    report.Value("events_per_sec", std::string("wheel:") + w.name, wheel);
    report.Value("speedup", w.name, speedup);
  }
  geo = std::pow(geo, 1.0 / std::size(workloads));
  std::printf("geometric-mean speedup: %.2fx\n", geo);
  report.Value("speedup", "geomean", geo);

  // Telemetry overhead: the timer workload with the sampling profiler and a
  // 1 ms MetricSampler on vs off, paired median-of-3 like the engine rounds.
  {
    BenchConfig warm = cfg;
    warm.events = cfg.events / 10;
    (void)RunTelemetry(warm, false);
    (void)RunTelemetry(warm, true);
    struct Pair {
      double off, on;
      double overhead() const { return (off / on - 1.0) * 100.0; }
    };
    Pair r[3];
    for (Pair& p : r) {
      p.off = RunTelemetry(cfg, false);
      p.on = RunTelemetry(cfg, true);
    }
    if (r[0].overhead() > r[1].overhead()) std::swap(r[0], r[1]);
    if (r[1].overhead() > r[2].overhead()) std::swap(r[1], r[2]);
    if (r[0].overhead() > r[1].overhead()) std::swap(r[0], r[1]);
    const Pair m = r[1];
    std::printf("telemetry on/off: %15.0f %15.0f ev/s — overhead %+.1f%%\n", m.on,
                m.off, m.overhead());
    report.Value("events_per_sec", "telemetry:off", m.off);
    report.Value("events_per_sec", "telemetry:on", m.on);
    report.Value("telemetry_overhead_percent", "timers", m.overhead());
  }

  // CPU-attribution overhead: the vCPU-charging timer workload with the
  // per-category ledgers on vs off. Best-of-5 paired passes per side: the
  // fastest pass of each is the least load-perturbed estimate of the true
  // cost, which is what the CI bound (10%) is about — median pairing still
  // inherits whole-process cache-layout luck at this granularity.
  {
    BenchConfig warm = cfg;
    warm.events = cfg.events / 10;
    (void)RunAttribution(warm, false);
    (void)RunAttribution(warm, true);
    double best_off = 0, best_on = 0;
    for (int i = 0; i < 5; ++i) {
      const double off = RunAttribution(cfg, false);
      const double on = RunAttribution(cfg, true);
      if (off > best_off) best_off = off;
      if (on > best_on) best_on = on;
    }
    const double overhead = (best_off / best_on - 1.0) * 100.0;
    std::printf("attribution on/off: %13.0f %15.0f ev/s — overhead %+.1f%%\n",
                best_on, best_off, overhead);
    report.Value("events_per_sec", "attribution:off", best_off);
    report.Value("events_per_sec", "attribution:on", best_on);
    report.Value("attribution_overhead_percent", "charge", overhead);
  }

  if (!skip_macro) {
    uint64_t steps = 0;
    std::string profile_table;
    const double macro = RunMacro(guests, pings, &steps, &profile_table);
    std::printf("macro: %d guests x %d pings — %.0f events/s (%llu events)\n", guests,
                pings, macro, static_cast<unsigned long long>(steps));
    std::printf("\n---- macro dispatch profile (top 10 sites) ----\n%s",
                profile_table.c_str());
    report.Value("events_per_sec", "wheel:macro", macro);
    report.Value("macro_events", "wheel:macro", static_cast<double>(steps));
  }

  report.Write();
  return 0;
}

}  // namespace
}  // namespace kite

int main(int argc, char** argv) { return kite::Main(argc, argv); }
