// Figure 15: Filebench MongoDB personality — throughput, CPU per op, and
// latency (single user, 4 MB mean I/O; paper: Kite outperforms Linux even at
// low concurrency).
#include "bench/common.h"
#include "src/workloads/filebench.h"

namespace kite {
namespace {

FilebenchResult RunMongo(OsKind os) {
  StorTopology topo = MakeStorTopology(os);
  FilebenchConfig config;
  config.personality = FilebenchPersonality::kMongoDb;
  config.threads = 1;  // Paper: one user.
  config.file_count = 200;
  config.mean_file_bytes = 8 * 1024 * 1024;  // Scaled from 20 GB total.
  config.io_bytes = 4 * 1024 * 1024;         // Paper: 4 MB mean I/O.
  config.duration = Millis(400);
  Filebench bench(topo.fs.get(), config, topo.stordom->domain()->vcpu(0));
  FilebenchResult out;
  bool done = false;
  bench.Run([&](const FilebenchResult& r) {
    done = true;
    out = r;
  });
  topo.sys->WaitUntil([&] { return done; }, Seconds(600));
  return out;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Figure 15", "Filebench MongoDB personality (1 user, 4 MB I/O)");
  const FilebenchResult linux = RunMongo(OsKind::kUbuntuLinux);
  const FilebenchResult kite = RunMongo(OsKind::kKiteRumprun);
  std::printf("%-10s %18s %14s %14s\n", "domain", "throughput (MB/s)", "CPU (us/op)",
              "latency (ms)");
  std::printf("%-10s %18.1f %14.1f %14.2f\n", "Linux", linux.mbytes_per_sec,
              linux.cpu_us_per_op, linux.latency_ms.Mean());
  std::printf("%-10s %18.1f %14.1f %14.2f\n", "Kite", kite.mbytes_per_sec,
              kite.cpu_us_per_op, kite.latency_ms.Mean());
  std::printf("paper shape: Kite higher throughput, lower CPU/op, lower latency\n");
  return 0;
}
