// Figure 14: Filebench fileserver throughput vs I/O size through the
// storage driver domain (50 threads; paper: Kite slightly ahead of Linux).
#include "bench/common.h"
#include "src/workloads/filebench.h"

namespace kite {
namespace {

double RunFileserver(OsKind os, size_t io_bytes) {
  StorTopology topo = MakeStorTopology(os);
  FilebenchConfig config;
  config.personality = FilebenchPersonality::kFileserver;
  config.threads = 50;              // Paper: 50 threads.
  config.file_count = 1000;         // Scaled from 100k files.
  config.mean_file_bytes = 128 * 1024;  // Paper: 128 KB average.
  config.append_bytes = 1024;       // Paper: 1 KB mean append.
  config.io_bytes = io_bytes;
  config.duration = Millis(250);
  Filebench bench(topo.fs.get(), config, topo.stordom->domain()->vcpu(0));
  double mbps = 0;
  bool done = false;
  bench.Run([&](const FilebenchResult& r) {
    done = true;
    mbps = r.mbytes_per_sec;
  });
  topo.sys->WaitUntil([&] { return done; }, Seconds(600));
  return mbps;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Figure 14", "Filebench fileserver throughput vs I/O size (50 threads)");
  PrintNote("file set scaled from 100k files/13 GB; I/O sizes 16 KB – 8 MB as in "
            "the paper");
  std::printf("%-10s %14s %14s\n", "I/O size", "Linux (MB/s)", "Kite (MB/s)");
  struct Point {
    size_t bytes;
    const char* label;
  };
  const Point points[] = {{16 << 10, "16K"},  {32 << 10, "32K"},   {64 << 10, "64K"},
                          {128 << 10, "128K"}, {256 << 10, "256K"}, {512 << 10, "512K"},
                          {1 << 20, "1M"},     {2 << 20, "2M"},     {4 << 20, "4M"},
                          {8 << 20, "8M"}};
  for (const Point& p : points) {
    std::printf("%-10s %14.0f %14.0f\n", p.label,
                RunFileserver(OsKind::kUbuntuLinux, p.bytes),
                RunFileserver(OsKind::kKiteRumprun, p.bytes));
  }
  std::printf("paper: Kite often slightly better; max latency 8.99 ms (Linux) vs "
              "7.93 ms (Kite)\n");
  return 0;
}
