// Figure 1a: driver-related CVEs per year (Linux vs Windows), plus the
// crafted-application / shell CVE counts from §5.1.1.
#include "bench/common.h"
#include "src/security/cve.h"

int main() {
  using namespace kite;
  PrintHeader("Figure 1a", "Driver CVEs per year (cve.mitre.org snapshot)");
  std::printf("%-6s %16s %18s\n", "year", "linux drivers", "windows drivers");
  for (const DriverCveYear& y : DriverCvesByYear()) {
    std::printf("%-6d %16d %18d\n", y.year, y.linux_drivers, y.windows_drivers);
  }
  std::printf("\nCVEs relying on crafted applications: %d (paper [19]: 172)\n",
              CraftedApplicationCveCount());
  std::printf("CVEs relying on shells:               %d (paper [20]: 92)\n",
              ShellCveCount());
  PrintNote("single-purpose Kite VMs admit neither attack vector (no shell, no "
            "arbitrary applications)");
  return 0;
}
