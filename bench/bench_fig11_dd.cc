// Figure 11: dd sequential throughput through the storage driver domain
// (/dev/zero as source/sink; paper: Linux ≈ Kite, ~1 GB/s class).
#include "bench/common.h"
#include "src/workloads/storagebench.h"

namespace kite {
namespace {

double RunDd(OsKind os, bool write, BenchReport* report) {
  StorTopology topo = MakeStorTopology(os);
  DdConfig config;
  config.write = write;
  config.total_bytes = 512LL * 1024 * 1024;  // Scaled from the paper's 10 GB.
  DdBench dd(topo.guest->blkfront(), config);
  double mbps = 0;
  bool done = false;
  dd.Run([&](const DdResult& r) {
    done = true;
    mbps = r.mbytes_per_sec;
  });
  topo.sys->WaitUntil([&] { return done; }, Seconds(600));
  const std::string label = std::string(PersLabel(os)) + (write ? "/write" : "/read");
  report->Value("mbytes_per_sec", label, mbps);
  report->Counters(label, topo.sys.get());
  return mbps;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Figure 11", "dd sequential throughput (MB/s), 1 MB blocks");
  PrintNote("transfer size scaled from the paper's 10 GB; rates are steady-state");
  BenchReport report("fig11", "dd sequential throughput through the storage driver domain");
  report.Param("total_bytes", 512.0 * 1024 * 1024);
  std::printf("%-12s %12s %12s\n", "operation", "Linux", "Kite");
  std::printf("%-12s %12.0f %12.0f\n", "read",
              RunDd(OsKind::kUbuntuLinux, false, &report),
              RunDd(OsKind::kKiteRumprun, false, &report));
  std::printf("%-12s %12.0f %12.0f\n", "write",
              RunDd(OsKind::kUbuntuLinux, true, &report),
              RunDd(OsKind::kKiteRumprun, true, &report));
  std::printf("paper: both ≈1000 MB/s class; Kite ≈ Linux\n");
  return report.Write() ? 0 : 1;
}
