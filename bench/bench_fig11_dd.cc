// Figure 11: dd sequential throughput through the storage driver domain
// (/dev/zero as source/sink; paper: Linux ≈ Kite, ~1 GB/s class).
#include "bench/common.h"
#include "src/workloads/storagebench.h"

namespace kite {
namespace {

double RunDd(OsKind os, bool write) {
  StorTopology topo = MakeStorTopology(os);
  DdConfig config;
  config.write = write;
  config.total_bytes = 512LL * 1024 * 1024;  // Scaled from the paper's 10 GB.
  DdBench dd(topo.guest->blkfront(), config);
  double mbps = 0;
  bool done = false;
  dd.Run([&](const DdResult& r) {
    done = true;
    mbps = r.mbytes_per_sec;
  });
  topo.sys->WaitUntil([&] { return done; }, Seconds(600));
  return mbps;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Figure 11", "dd sequential throughput (MB/s), 1 MB blocks");
  PrintNote("transfer size scaled from the paper's 10 GB; rates are steady-state");
  std::printf("%-12s %12s %12s\n", "operation", "Linux", "Kite");
  std::printf("%-12s %12.0f %12.0f\n", "read",
              RunDd(OsKind::kUbuntuLinux, false), RunDd(OsKind::kKiteRumprun, false));
  std::printf("%-12s %12.0f %12.0f\n", "write",
              RunDd(OsKind::kUbuntuLinux, true), RunDd(OsKind::kKiteRumprun, true));
  std::printf("paper: both ≈1000 MB/s class; Kite ≈ Linux\n");
  return 0;
}
