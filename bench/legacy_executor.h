// Pre-timer-wheel event engine, kept verbatim (minus diagnostics) as the
// baseline for bench_engine: a binary heap of std::function events, one heap
// pop + one heap allocation per post. BENCH_engine.json records both engines
// in the same file so the speedup is measured, not remembered.
//
// Bench-only code: nothing outside bench/bench_engine.cc may include this.
#ifndef BENCH_LEGACY_EXECUTOR_H_
#define BENCH_LEGACY_EXECUTOR_H_

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/sim/time.h"

namespace kite::bench {

class LegacyExecutor {
 public:
  LegacyExecutor() = default;
  ~LegacyExecutor() {
    for (Event& ev : queue_) {
      if (ev.coro) {
        ev.coro.destroy();
      }
    }
    queue_.clear();
  }

  LegacyExecutor(const LegacyExecutor&) = delete;
  LegacyExecutor& operator=(const LegacyExecutor&) = delete;

  SimTime Now() const { return now_; }

  void PostAt(SimTime when, std::function<void()> fn) {
    if (when < now_) {
      when = now_;
    }
    Push(Event{when, NextTie(), next_seq_++, std::move(fn), nullptr});
  }
  void PostAfter(SimDuration delay, std::function<void()> fn) {
    if (delay < SimDuration(0)) {
      delay = SimDuration(0);
    }
    PostAt(now_ + delay, std::move(fn));
  }
  void Post(std::function<void()> fn) { PostAt(now_, std::move(fn)); }

  void PostDaemonAt(SimTime when, std::function<void()> fn) {
    if (when < now_) {
      when = now_;
    }
    Push(Event{when, NextTie(), next_seq_++, std::move(fn), nullptr, /*daemon=*/true});
  }
  void PostDaemonAfter(SimDuration delay, std::function<void()> fn) {
    if (delay < SimDuration(0)) {
      delay = SimDuration(0);
    }
    PostDaemonAt(now_ + delay, std::move(fn));
  }

  void ResumeAt(SimTime when, std::coroutine_handle<> handle) {
    if (when < now_) {
      when = now_;
    }
    Push(Event{when, NextTie(), next_seq_++, nullptr, handle});
  }
  void ResumeAfter(SimDuration delay, std::coroutine_handle<> handle) {
    if (delay < SimDuration(0)) {
      delay = SimDuration(0);
    }
    ResumeAt(now_ + delay, handle);
  }

  bool Step() {
    if (queue_.empty()) {
      return false;
    }
    Event ev = Pop();
    RunEvent(ev);
    return true;
  }

  void RunUntilIdle() {
    while (non_daemon_pending_ > 0) {
      Step();
    }
  }

  void RunUntil(SimTime deadline) {
    while (!queue_.empty() && queue_.front().at <= deadline) {
      Event ev = Pop();
      RunEvent(ev);
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
  }
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  void EnableShuffle(uint64_t seed) {
    shuffle_ = true;
    shuffle_rng_ = Rng(seed);
  }

  uint64_t steps_executed() const { return steps_; }
  bool idle() const { return non_daemon_pending_ == 0; }
  size_t queue_size() const { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    uint64_t tie;
    uint64_t seq;
    std::function<void()> fn;
    std::coroutine_handle<> coro;
    bool daemon = false;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      if (a.tie != b.tie) {
        return a.tie > b.tie;
      }
      return a.seq > b.seq;
    }
  };

  uint64_t NextTie() { return shuffle_ ? shuffle_rng_.NextU64() : next_seq_; }

  void Push(Event ev) {
    if (!ev.daemon) {
      ++non_daemon_pending_;
    }
    queue_.push_back(std::move(ev));
    std::push_heap(queue_.begin(), queue_.end(), EventOrder{});
  }

  Event Pop() {
    std::pop_heap(queue_.begin(), queue_.end(), EventOrder{});
    Event ev = std::move(queue_.back());
    queue_.pop_back();
    if (!ev.daemon) {
      --non_daemon_pending_;
    }
    return ev;
  }

  void RunEvent(Event& ev) {
    now_ = ev.at;
    ++steps_;
    if (ev.coro) {
      ev.coro.resume();
    } else {
      ev.fn();
    }
  }

  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t steps_ = 0;
  size_t non_daemon_pending_ = 0;
  bool shuffle_ = false;
  Rng shuffle_rng_{0};
  std::vector<Event> queue_;
};

}  // namespace kite::bench

#endif  // BENCH_LEGACY_EXECUTOR_H_
