// Figure 9: Redis pipelined SET/GET throughput vs thread (connection) count
// through the network driver domain (pipeline depth 1000).
#include "bench/common.h"
#include "src/workloads/redis.h"

namespace kite {
namespace {

RedisBenchResult RunRedis(OsKind os, int connections) {
  NetTopology topo = MakeNetTopology(os);
  RedisServer redis(topo.guest_stack(), 6379);
  RedisBenchConfig config;
  config.connections = connections;
  config.pipeline = 1000;  // Paper: pipeline mode, depth 1,000.
  config.total_ops = 60000;  // Scaled from the paper's millions.
  config.value_bytes = 1024;
  RedisBench bench(topo.client_stack(), kGuestIp, 6379, config);
  RedisBenchResult out;
  bool done = false;
  bench.Run([&](const RedisBenchResult& r) {
    done = true;
    out = r;
  });
  topo.sys->WaitUntil([&] { return done; }, Seconds(600));
  return out;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("Figure 9", "Redis SET/GET ops/s vs thread count (pipelined)");
  PrintNote("total ops scaled from the paper's millions; value size 1 KB "
            "(redis-benchmark -d); paper reports Kite ≈ Linux at all thread counts");
  std::printf("%-8s %14s %14s %14s %14s\n", "threads", "Linux SET", "Kite SET",
              "Linux GET", "Kite GET");
  for (int threads : {5, 10, 15, 20}) {
    const RedisBenchResult linux = RunRedis(OsKind::kUbuntuLinux, threads);
    const RedisBenchResult kite = RunRedis(OsKind::kKiteRumprun, threads);
    std::printf("%-8d %14.0f %14.0f %14.0f %14.0f\n", threads, linux.set_ops_per_sec,
                kite.set_ops_per_sec, linux.get_ops_per_sec, kite.get_ops_per_sec);
  }
  return 0;
}
