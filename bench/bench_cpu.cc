// Where does the driver domain's CPU go?
//
// Runs the Figure 6 topology (client ↔ NIC ↔ network driver domain ↔ guest,
// nuttcp UDP stream) with CPU attribution enabled and sweeps the offered
// load, reporting for each point:
//   - achieved goodput and the driver domain's vCPU utilization (raw ratio:
//     values above 1.0 mean more simulated work was queued against the vCPU
//     than the wall window holds),
//   - driver-domain CPU cost per delivered byte,
//   - where the cycles went: grant-copy share, total hypervisor share
//     (hypercalls + IRQ dispatch), netback service share — the paper's
//     "most of a driver domain's time is spent moving other domains' data"
//     claim as a measured number.
// A final determinism section re-runs the top load twice under the same
// shuffle seed and fails the bench if the two CpuReportJson dumps differ by
// a byte, then re-runs under a different seed to show the shares are a
// property of the workload, not of one event schedule.
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/obs/cpuattr.h"
#include "src/workloads/netbench.h"

namespace kite {
namespace {

struct CpuRun {
  NuttcpResult net;
  double util = 0;              // Driver vCPU over the measured window (raw).
  double cpu_per_byte_ns = 0;   // Driver busy ns per delivered byte.
  uint64_t busy_delta_ns = 0;   // Driver busy over the measured window.
  std::vector<uint64_t> category_delta_ns;  // Indexed by CPU category.
  std::string report_json;      // Full CpuReportJson at end of run.
};

// Share of the run's driver busy time spent in categories whose label starts
// with `prefix` (e.g. "hv/" for everything the hypervisor does on the driver
// domain's behalf).
double PrefixShare(const CpuRun& run, const char* prefix) {
  if (run.busy_delta_ns == 0) {
    return 0;
  }
  uint64_t sum = 0;
  for (uint32_t i = 0; i < run.category_delta_ns.size(); ++i) {
    if (std::strncmp(CpuCategoryLabel(i), prefix, std::strlen(prefix)) == 0) {
      sum += run.category_delta_ns[i];
    }
  }
  return static_cast<double>(sum) / static_cast<double>(run.busy_delta_ns);
}

CpuRun RunOne(OsKind os, double offered_gbps, uint64_t shuffle_seed) {
  KiteSystem::Params params;
  params.cpu_attribution = true;
  auto sys = std::make_unique<KiteSystem>(params);
  if (shuffle_seed != 0) {
    sys->EnableScheduleShuffle(shuffle_seed);
  }
  DriverDomainConfig config;
  config.os = os;
  NetworkDomain* netdom = sys->CreateNetworkDomain(config);
  GuestVm* guest = sys->CreateGuest("server-guest");
  sys->AttachVif(guest, netdom, kGuestIp);
  if (!sys->WaitConnected(guest)) {
    std::fprintf(stderr, "FATAL: guest failed to connect\n");
    std::abort();
  }
  bool warm = false;
  sys->client()->stack()->Ping(kGuestIp, 8, [&](bool, SimDuration) { warm = true; });
  sys->WaitUntil([&] { return warm; }, Seconds(5));

  Vcpu* driver = netdom->domain()->vcpu(0);
  const std::vector<uint64_t> before = driver->ledger()->busy_ns;
  CpuUsageSample sample(driver);  // The new busy-window API (DESIGN.md §16).

  NuttcpConfig load;
  load.offered_gbps = offered_gbps;
  load.duration = Millis(200);
  NuttcpUdp nuttcp(sys->client()->stack(), guest->stack(), kGuestIp, load);
  bool done = false;
  CpuRun run;
  nuttcp.Run([&](const NuttcpResult& r) {
    done = true;
    run.net = r;
  });
  sys->WaitUntil([&] { return done; }, Seconds(30));

  run.util = sample.utilization();
  run.busy_delta_ns = static_cast<uint64_t>(sample.busy().ns());
  const std::vector<uint64_t>& after = driver->ledger()->busy_ns;
  run.category_delta_ns.resize(after.size(), 0);
  for (size_t i = 0; i < after.size(); ++i) {
    run.category_delta_ns[i] = after[i] - (i < before.size() ? before[i] : 0);
  }
  const uint64_t bytes = run.net.received * load.datagram_bytes;
  run.cpu_per_byte_ns =
      bytes == 0 ? 0
                 : static_cast<double>(run.busy_delta_ns) / static_cast<double>(bytes);
  run.report_json = sys->CpuReportJson();
  return run;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("CPU attribution",
              "driver-domain CPU per byte and utilization vs offered load "
              "(fig06 topology, nuttcp UDP)");
  PrintNote("utilization is the raw busy/window ratio; >100% = overcommit "
            "(more work queued against the vCPU than the window holds)");
  BenchReport report("cpu",
                     "driver-domain CPU attribution under the fig06 nuttcp sweep");
  const std::vector<double> kLoads = {1.0, 2.0, 4.0, 6.0, 7.4};
  report.Param("duration_ms", 200);
  report.Param("datagram_bytes", 8192);
  report.Param("load_points", static_cast<double>(kLoads.size()));

  std::printf("%-8s %8s %10s %8s %12s %11s %8s %9s\n", "domain", "offered",
              "goodput", "util", "cpu/byte", "grant_copy", "hv", "netback");
  for (OsKind os : {OsKind::kUbuntuLinux, OsKind::kKiteRumprun}) {
    for (double offered : kLoads) {
      const CpuRun run = RunOne(os, offered, /*shuffle_seed=*/0);
      const double grant_copy = PrefixShare(run, "hv/grant_copy");
      const double hv = PrefixShare(run, "hv/");
      const double netback = PrefixShare(run, "netback/");
      std::printf("%-8s %5.1f Gb %6.2f Gbps %7.1f%% %9.2f ns %10.1f%% %7.1f%% %8.1f%%\n",
                  Pers(os), offered, run.net.goodput_gbps, run.util * 100.0,
                  run.cpu_per_byte_ns, grant_copy * 100.0, hv * 100.0,
                  netback * 100.0);
      const std::string label = StrFormat("%s@%.1f", PersLabel(os), offered);
      report.Value("offered_gbps", label, offered);
      report.Value("goodput_gbps", label, run.net.goodput_gbps);
      report.Value("driver_util", label, run.util);
      report.Value("cpu_per_byte_ns", label, run.cpu_per_byte_ns);
      report.Value("grant_copy_share", label, grant_copy);
      report.Value("hypercall_share", label, hv);
      report.Value("netback_share", label, netback);
      if (offered == kLoads.back()) {
        // Full per-category breakdown at the top load, one series point per
        // category that consumed driver CPU.
        for (uint32_t i = 0; i < run.category_delta_ns.size(); ++i) {
          if (run.category_delta_ns[i] == 0) {
            continue;
          }
          report.Value(
              "category_share", StrFormat("%s@%s", PersLabel(os), CpuCategoryLabel(i)),
              static_cast<double>(run.category_delta_ns[i]) /
                  static_cast<double>(run.busy_delta_ns));
        }
      }
    }
  }

  // Determinism: the ledgers are pure accounting over a deterministic
  // schedule, so the same seed must reproduce CpuReportJson byte-for-byte.
  const CpuRun seed1a = RunOne(OsKind::kKiteRumprun, kLoads.back(), /*seed=*/1);
  const CpuRun seed1b = RunOne(OsKind::kKiteRumprun, kLoads.back(), /*seed=*/1);
  const bool deterministic = seed1a.report_json == seed1b.report_json;
  std::printf("\nsame-seed CpuReportJson byte-identical: %s\n",
              deterministic ? "yes" : "NO — BUG");
  report.Value("same_seed_report_identical", "Kite", deterministic ? 1 : 0);
  // A different seed explores a different same-timestamp ordering; the
  // attribution shares are a property of the workload and should barely move.
  const CpuRun seed2 = RunOne(OsKind::kKiteRumprun, kLoads.back(), /*seed=*/2);
  const double drift =
      PrefixShare(seed1a, "hv/grant_copy") - PrefixShare(seed2, "hv/grant_copy");
  std::printf("grant-copy share drift across seeds: %.3f pp\n", drift * 100.0);
  report.Value("grant_copy_share_seed_drift", "Kite", drift);

  if (!deterministic) {
    std::fprintf(stderr, "FATAL: same-seed CPU reports differ\n");
    return 1;
  }
  return report.Write() ? 0 : 1;
}
