// Table 3: CVEs prevented by keeping only necessary system calls, plus the
// component CVEs named in the paper (libxl, python, shell).
#include "bench/common.h"
#include "src/security/cve.h"

int main() {
  using namespace kite;
  PrintHeader("Table 3", "CVE resilience: Kite (network/storage) vs Ubuntu driver domain");
  std::printf("%-18s %-12s %-12s %-12s  %s\n", "CVE", "Kite-net", "Kite-stor", "Ubuntu",
              "mechanism");
  int kite_net_mitigated = 0;
  int ubuntu_mitigated = 0;
  for (const CveEntry& cve : CveDatabase()) {
    const CveVerdict knet = CheckCve(KiteNetworkProfile(), cve);
    const CveVerdict kstor = CheckCve(KiteStorageProfile(), cve);
    const CveVerdict ubu = CheckCve(UbuntuDriverDomainProfile(), cve);
    kite_net_mitigated += knet.mitigated;
    ubuntu_mitigated += ubu.mitigated;
    std::printf("%-18s %-12s %-12s %-12s  %s\n", cve.id.c_str(),
                knet.mitigated ? "MITIGATED" : "vulnerable",
                kstor.mitigated ? "MITIGATED" : "vulnerable",
                ubu.mitigated ? "MITIGATED" : "vulnerable", knet.reason.c_str());
  }
  std::printf("\nKite mitigates %d/%zu; Ubuntu mitigates %d/%zu (paper: Kite blocks all "
              "11 Table-3 CVEs plus libxl/python CVEs)\n",
              kite_net_mitigated, CveDatabase().size(), ubuntu_mitigated,
              CveDatabase().size());
  return 0;
}
