// TCP goodput and fairness under real loss at a shared drop-tail bottleneck.
//
// Not a paper figure: this sweep characterizes the transport itself. 100
// flows from independent stacks converge on one bridge egress port that
// serializes at 1 Gbps behind a finite drop-tail queue. Each flow's
// application writes at a paced offered rate; the sweep walks the aggregate
// offered load across the line rate (0.25x .. 2x) for two queue depths, and
// repeats every point under two schedule-shuffle seeds.
//
// What the series show:
//   - goodput_gbps tracks offered load while undersubscribed, then saturates
//     at (a little under) line rate once offered load crosses capacity —
//     AIMD keeps the aggregate pinned there instead of collapsing.
//   - queue_drops jumps by orders of magnitude when the knee is crossed:
//     the loss the congestion response is reacting to. (Shallow queues also
//     show a small constant floor from the 100-SYN connect burst.)
//   - fairness (min/mean and max/mean across the 100 per-flow ledgers)
//     stays bounded through overload.
//   - The two shuffle seeds land on nearly identical aggregates: the
//     behaviour is a property of the protocol, not of event-tie ordering.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/net/bridge.h"
#include "src/net/netif.h"
#include "src/net/queue.h"
#include "src/net/stack.h"
#include "src/net/tcp.h"
#include "src/obs/metrics.h"
#include "src/obs/sampler.h"
#include "src/sim/executor.h"

namespace kite {
namespace {

// Half of a veth pair: Output on one side is input on the other.
class PatchIf : public NetIf {
 public:
  PatchIf(std::string name, MacAddr mac) : NetIf(std::move(name), mac) {
    SetUp(true);
  }
  void SetPeer(NetIf* peer) { peer_ = peer; }
  void Output(const EthernetFrame& frame) override {
    CountTx(frame);
    if (peer_ != nullptr) {
      peer_->InjectInput(frame);
    }
  }

 private:
  NetIf* peer_ = nullptr;
};

constexpr int kFlows = 100;
constexpr uint16_t kServerPort = 7000;
constexpr double kLineGbps = 1.0;
constexpr SimDuration kWindow = Millis(400);
constexpr SimDuration kPaceTick = Millis(1);

struct PointResult {
  double goodput_gbps = 0;
  double min_over_mean = 0;
  double max_over_mean = 0;
  uint64_t queue_drops = 0;
  uint64_t retransmits = 0;
};

// With `report` non-null this point additionally records telemetry: per-flow
// TCP gauges (cwnd/ssthresh/srtt) for the first few flows plus the
// bottleneck queue depth, sampled every 1 ms into `report`'s timelines —
// the cwnd-over-time sawtooth the congestion-control story rests on.
PointResult RunPoint(double offered_x_line, size_t queue_frames, uint64_t seed,
                     BenchReport* report = nullptr) {
  constexpr int kTracedFlows = 3;
  Executor ex;
  ex.EnableShuffle(seed);
  MetricRegistry metrics;
  Bridge bridge("br0", nullptr);

  const Ipv4Addr server_ip = Ipv4Addr::FromOctets(10, 0, 0, 1);
  const MacAddr server_mac = MacAddr::FromId(0x1000);
  PatchIf server_if("srv", server_mac);
  PatchIf server_port("srv-port", MacAddr::FromId(0x2000));
  server_if.SetPeer(&server_port);
  server_port.SetPeer(&server_if);
  bridge.AddIf(&server_port);
  StackParams server_params;
  server_params.metrics = &metrics;
  server_params.metrics_domain = "server";
  EtherStack server(&ex, nullptr, &server_if, server_params);
  server.ConfigureIp(server_ip);

  EgressQueueParams qp;
  qp.limit_frames = queue_frames;
  qp.drain_gbps = kLineGbps;
  if (report != nullptr) {
    qp.metrics = &metrics;
    qp.metrics_domain = "bottleneck";
  }
  bridge.EnablePortQueue(&ex, &server_port, qp);

  std::vector<std::unique_ptr<PatchIf>> client_ifs;
  std::vector<std::unique_ptr<PatchIf>> client_ports;
  std::vector<std::unique_ptr<EtherStack>> clients;
  for (int i = 0; i < kFlows; ++i) {
    const MacAddr mac = MacAddr::FromId(0x100 + static_cast<uint32_t>(i));
    auto cif = std::make_unique<PatchIf>("c" + std::to_string(i), mac);
    auto cport = std::make_unique<PatchIf>(
        "cp" + std::to_string(i), MacAddr::FromId(0x3000 + static_cast<uint32_t>(i)));
    cif->SetPeer(cport.get());
    cport->SetPeer(cif.get());
    bridge.AddIf(cport.get());
    StackParams sp;
    sp.metrics = &metrics;
    sp.metrics_domain = "client" + std::to_string(i);
    // Trace the leading flows' congestion state when telemetry is on.
    sp.per_flow_metrics = report != nullptr && i < kTracedFlows;
    auto stack = std::make_unique<EtherStack>(&ex, nullptr, cif.get(), sp);
    const Ipv4Addr ip = Ipv4Addr::FromOctets(10, 0, 0, static_cast<uint8_t>(2 + i));
    stack->ConfigureIp(ip);
    stack->AddArpEntry(server_ip, server_mac);
    server.AddArpEntry(ip, mac);
    client_ifs.push_back(std::move(cif));
    client_ports.push_back(std::move(cport));
    clients.push_back(std::move(stack));
  }

  server.ListenTcp(kServerPort, [](TcpConn* conn) {
    conn->SetDataCallback([](std::span<const uint8_t>) {});
  });

  // Establish every connection while the network is quiet (a SYN dropped at
  // a full queue retries on an exponentially backed-off timer, which would
  // measure handshake lockout rather than steady-state behaviour).
  std::vector<TcpConn*> conns(kFlows, nullptr);
  for (int i = 0; i < kFlows; ++i) {
    clients[i]->ConnectTcp(server_ip, kServerPort,
                           [&conns, i](TcpConn* conn) { conns[i] = conn; });
  }
  ex.RunFor(Millis(50));
  for (int i = 0; i < kFlows; ++i) {
    if (conns[i] == nullptr) {
      std::fprintf(stderr, "FATAL: flow %d failed to connect\n", i);
      std::abort();
    }
  }

  // Telemetry point: sample the traced flows' congestion gauges and the
  // bottleneck queue depth every 1 ms for the whole window.
  SamplerParams samp;
  samp.period = Millis(1);
  samp.ring_points = 1024;
  for (int i = 0; i < kTracedFlows; ++i) {
    samp.prefixes.push_back("client" + std::to_string(i) + "/");
  }
  samp.prefixes.push_back("bottleneck/");
  std::unique_ptr<MetricSampler> sampler;
  if (report != nullptr) {
    sampler = std::make_unique<MetricSampler>(&ex, &metrics, samp);
    sampler->Start();
  }

  // Paced application writes: per flow, offered_x_line * line / kFlows.
  const double per_flow_bps = offered_x_line * kLineGbps * 1e9 / kFlows;
  const size_t chunk =
      std::max<size_t>(1, static_cast<size_t>(per_flow_bps / 8 * kPaceTick.seconds()));
  struct Pacer {
    TcpConn* conn;
    size_t chunk;
    Executor* ex;
    void Tick() {
      conn->Send(Buffer(chunk, 0x5a));
      ex->PostAfter(kPaceTick, [this] { Tick(); });
    }
  };
  std::vector<std::unique_ptr<Pacer>> pacers;
  for (int i = 0; i < kFlows; ++i) {
    auto p = std::make_unique<Pacer>(Pacer{conns[i], chunk, &ex});
    Pacer* raw = p.get();
    // Stagger the first tick across one pace interval so the offered load
    // arrives smeared, not as a 100-flow phase-locked burst.
    ex.PostAfter(kPaceTick * i / kFlows, [raw] { raw->Tick(); });
    pacers.push_back(std::move(p));
  }

  const SimTime start = ex.Now();
  ex.RunUntil(start + kWindow);
  if (sampler != nullptr) {
    sampler->Stop();
    const std::string label =
        StrFormat("q%zu/load%.2f/seed%llu", queue_frames, offered_x_line,
                  static_cast<unsigned long long>(seed));
    report->Timelines(label, *sampler);
  }

  PointResult r;
  uint64_t total = 0;
  uint64_t min_bytes = 0, max_bytes = 0;
  size_t n = 0;
  for (const auto& [key, ledger] : server.tcp_ledgers()) {
    if (key.local_port != kServerPort) {
      continue;
    }
    total += ledger.delivered;
    min_bytes = n == 0 ? ledger.delivered : std::min(min_bytes, ledger.delivered);
    max_bytes = std::max(max_bytes, ledger.delivered);
    ++n;
  }
  const double mean = n == 0 ? 0 : static_cast<double>(total) / static_cast<double>(n);
  r.goodput_gbps = static_cast<double>(total) * 8.0 / kWindow.seconds() / 1e9;
  r.min_over_mean = mean > 0 ? static_cast<double>(min_bytes) / mean : 0;
  r.max_over_mean = mean > 0 ? static_cast<double>(max_bytes) / mean : 0;
  r.queue_drops = bridge.queue_drops();
  for (const auto& s : metrics.Snapshot(/*skip_zero=*/true)) {
    // Counters only: with per-flow telemetry on, the same retransmits also
    // appear as per-connection gauges and must not be double-counted.
    if (s.kind == MetricRegistry::Kind::kCounter &&
        (s.key.name == "retransmits" || s.key.name == "fast_retransmits")) {
      r.retransmits += static_cast<uint64_t>(s.value);
    }
  }
  return r;
}

}  // namespace
}  // namespace kite

int main() {
  using namespace kite;
  PrintHeader("bench_tcp_loss",
              "TCP goodput/fairness vs offered load at a drop-tail bottleneck");
  PrintNote("100 flows, 1 Gbps bottleneck, paced offered load, two shuffle seeds");

  BenchReport report("tcp_loss",
                     "TCP goodput and fairness under drop-tail loss");
  report.Param("flows", static_cast<double>(kFlows));
  report.Param("line_gbps", kLineGbps);
  report.Param("window_ms", kWindow.seconds() * 1e3);

  const double kLoads[] = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0};
  const size_t kDepths[] = {64, 256};
  const uint64_t kSeeds[] = {1, 2};

  std::printf("%-6s %-6s %-5s %10s %10s %10s %10s %10s\n", "load", "queue",
              "seed", "goodput", "min/mean", "max/mean", "drops", "retrans");
  // One representative overloaded point (shallow queue, at line rate,
  // first seed) records cwnd/queue-depth timelines into the report.
  const auto traced = [](size_t depth, double load, uint64_t seed) {
    return depth == 64 && load == 1.0 && seed == 1;
  };
  for (size_t depth : kDepths) {
    for (double load : kLoads) {
      for (uint64_t seed : kSeeds) {
        const PointResult r =
            RunPoint(load, depth, seed, traced(depth, load, seed) ? &report : nullptr);
        std::printf("%-6.2f %-6zu %-5llu %9.3f %10.3f %10.3f %10llu %10llu\n",
                    load, depth, static_cast<unsigned long long>(seed),
                    r.goodput_gbps, r.min_over_mean, r.max_over_mean,
                    static_cast<unsigned long long>(r.queue_drops),
                    static_cast<unsigned long long>(r.retransmits));
        const std::string label = StrFormat("q%zu/load%.2f/seed%llu", depth, load,
                                            static_cast<unsigned long long>(seed));
        report.Value("goodput_gbps", label, r.goodput_gbps);
        report.Value("min_over_mean", label, r.min_over_mean);
        report.Value("max_over_mean", label, r.max_over_mean);
        report.Value("queue_drops", label, static_cast<double>(r.queue_drops));
        report.Value("retransmits", label, static_cast<double>(r.retransmits));
      }
    }
  }
  report.Write();
  return 0;
}
