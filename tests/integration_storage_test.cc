// End-to-end storage integration: guest blkfront ↔ NVMe device through a
// storage driver domain (Kite and Linux personalities), exercising xenbus
// negotiation, the block ring, persistent grants, indirect segments,
// batching, and data integrity.
#include <gtest/gtest.h>

#include "src/core/kite.h"
#include "src/workloads/fs.h"

namespace kite {
namespace {

class StorageIntegrationTest : public ::testing::TestWithParam<OsKind> {
 protected:
  void Build(bool store_data = true, BlkbackParams blkparams = BlkbackParams{}) {
    KiteSystem::Params params;
    params.disk_store_data = store_data;
    params.disk.capacity_bytes = 2LL * 1024 * 1024 * 1024;  // 2 GiB test disk.
    sys_ = std::make_unique<KiteSystem>(params);
    DriverDomainConfig config;
    config.os = GetParam();
    config.blkback = blkparams;
    stordom_ = sys_->CreateStorageDomain(config);
    guest_ = sys_->CreateGuest("db-guest");
    sys_->AttachVbd(guest_, stordom_);
    ASSERT_TRUE(sys_->WaitConnected(guest_));
  }

  std::unique_ptr<KiteSystem> sys_;
  StorageDomain* stordom_ = nullptr;
  GuestVm* guest_ = nullptr;
};

TEST_P(StorageIntegrationTest, NegotiationAdvertisesFeatures) {
  Build();
  Blkfront* front = guest_->blkfront();
  EXPECT_TRUE(front->connected());
  EXPECT_EQ(front->capacity_bytes(), 2LL * 1024 * 1024 * 1024);
  EXPECT_TRUE(front->persistent_supported());
  EXPECT_TRUE(front->indirect_supported());
  EXPECT_EQ(stordom_->driver()->instance_count(), 1);
  sys_->RunFor(Millis(1));
  EXPECT_EQ(stordom_->app()->vbds_configured(), 1);
}

TEST_P(StorageIntegrationTest, WriteReadBackIntegrity) {
  Build();
  Rng rng(77);
  Buffer data(64 * 1024);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  const uint64_t digest = Fnv1a(data);

  bool wrote = false;
  guest_->blkfront()->Write(1024 * 1024, data, [&](bool ok) { wrote = ok; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return wrote; }, Seconds(2)));

  Buffer readback;
  bool read_done = false;
  guest_->blkfront()->Read(1024 * 1024, data.size(), &readback,
                           [&](bool ok) { read_done = ok; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return read_done; }, Seconds(2)));
  ASSERT_EQ(readback.size(), data.size());
  EXPECT_EQ(Fnv1a(readback), digest);
}

TEST_P(StorageIntegrationTest, LargeIoUsesIndirectSegments) {
  Build();
  // 128 KiB = 32 pages > 11 direct segments → indirect request.
  bool done = false;
  guest_->blkfront()->Write(0, Buffer(128 * 1024, 0x42), [&](bool ok) { done = ok; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return done; }, Seconds(2)));
  EXPECT_GT(guest_->blkfront()->indirect_requests(), 0u);
  auto* inst = stordom_->driver()->instance(guest_->domain()->id(), 51712);
  ASSERT_NE(inst, nullptr);
  EXPECT_GT(inst->indirect_requests(), 0u);
}

TEST_P(StorageIntegrationTest, PersistentGrantsAvoidRemapping) {
  Build();
  auto* inst = stordom_->driver()->instance(guest_->domain()->id(), 51712);
  ASSERT_NE(inst, nullptr);
  // Two rounds of I/O over the same buffers: second round must hit the
  // persistent-grant cache.
  for (int round = 0; round < 2; ++round) {
    bool done = false;
    guest_->blkfront()->Write(0, Buffer(44 * 1024, 0x01), [&](bool ok) { done = ok; });
    ASSERT_TRUE(sys_->WaitUntil([&] { return done; }, Seconds(2)));
  }
  EXPECT_GT(inst->persistent_hits(), 0u);
  EXPECT_GT(inst->persistent_cache_size(), 0u);
}

TEST_P(StorageIntegrationTest, DisabledPersistentGrantsUnmapEveryTime) {
  BlkbackParams blkparams;
  blkparams.persistent_grants = false;
  Build(/*store_data=*/true, blkparams);
  const uint64_t unmaps_before = sys_->hv().grant_unmaps();
  bool done = false;
  guest_->blkfront()->Write(0, Buffer(16 * 1024, 0x01), [&](bool ok) { done = ok; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return done; }, Seconds(2)));
  EXPECT_GT(sys_->hv().grant_unmaps(), unmaps_before);
  auto* inst = stordom_->driver()->instance(guest_->domain()->id(), 51712);
  EXPECT_EQ(inst->persistent_cache_size(), 0u);
}

TEST_P(StorageIntegrationTest, BatchingCoalescesConsecutiveSegments) {
  Build();
  auto* inst = stordom_->driver()->instance(guest_->domain()->id(), 51712);
  bool done = false;
  // One 128 KiB sequential write: 32 segments, consecutive → few device ops.
  guest_->blkfront()->Write(0, Buffer(128 * 1024, 0x55), [&](bool ok) { done = ok; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return done; }, Seconds(2)));
  EXPECT_LT(inst->device_ops(), inst->segments_handled());
}

TEST_P(StorageIntegrationTest, FlushReachesDevice) {
  Build();
  bool flushed = false;
  guest_->blkfront()->Flush([&](bool ok) { flushed = ok; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return flushed; }, Seconds(2)));
  EXPECT_GE(stordom_->disk()->flushes_completed(), 1u);
}

TEST_P(StorageIntegrationTest, ManyConcurrentOpsComplete) {
  Build(/*store_data=*/false);
  int completed = 0;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const int64_t offset =
        static_cast<int64_t>(rng.NextBelow(1024)) * 1024 * 1024 / 2 / 512 * 512;
    if (rng.NextBool(0.5)) {
      guest_->blkfront()->Read(offset, 8192, nullptr, [&](bool ok) { completed += ok; });
    } else {
      guest_->blkfront()->Write(offset, Buffer(8192, 0x2a),
                                [&](bool ok) { completed += ok; });
    }
  }
  ASSERT_TRUE(sys_->WaitUntil([&] { return completed == 200; }, Seconds(10)));
}

TEST_P(StorageIntegrationTest, SimpleFsEndToEnd) {
  Build(/*store_data=*/false);
  SimpleFs fs(guest_->blkfront());
  ASSERT_TRUE(fs.Create("hello.txt", 1024 * 1024));
  EXPECT_TRUE(fs.Exists("hello.txt"));
  EXPECT_EQ(fs.FileSize("hello.txt"), 1024 * 1024);

  bool wrote = false;
  fs.Write("hello.txt", 0, 256 * 1024, [&](bool ok) { wrote = ok; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return wrote; }, Seconds(2)));

  bool appended = false;
  fs.Append("hello.txt", 4096, [&](bool ok) { appended = ok; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return appended; }, Seconds(2)));
  EXPECT_EQ(fs.FileSize("hello.txt"), 1024 * 1024 + 4096);

  bool synced = false;
  fs.Fsync([&](bool ok) { synced = ok; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return synced; }, Seconds(2)));

  EXPECT_TRUE(fs.Delete("hello.txt"));
  EXPECT_FALSE(fs.Exists("hello.txt"));
}

INSTANTIATE_TEST_SUITE_P(Personalities, StorageIntegrationTest,
                         ::testing::Values(OsKind::kKiteRumprun, OsKind::kUbuntuLinux),
                         [](const ::testing::TestParamInfo<OsKind>& info) {
                           return std::string(OsKindName(info.param));
                         });

}  // namespace
}  // namespace kite
