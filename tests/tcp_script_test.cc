// Table-driven TCP protocol tests.
//
// Each test is a script: a table of rows replayed against a single
// EtherStack whose wire is a capturing fake interface. Rows inject
// segments (kIn), advance simulated time (kAdvance), and assert on the
// exact segments the stack emits (kExpectOut) and on connection state and
// congestion variables between steps. Sequence and ack numbers in rows are
// *relative*: seq counts from the emitting side's ISN, ack from the other
// side's ISN, so scripts read like RFC ladder diagrams instead of raw
// 32-bit sequence numbers.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "src/net/netif.h"
#include "src/net/stack.h"
#include "src/net/tcp.h"
#include "src/sim/executor.h"

namespace kite {
namespace {

const Ipv4Addr kLocalIp = Ipv4Addr::FromOctets(10, 0, 0, 1);
const Ipv4Addr kPeerIp = Ipv4Addr::FromOctets(10, 0, 0, 2);
constexpr uint16_t kPeerPort = 80;
constexpr uint32_t kPeerIss = 10000;  // Scripted peer's ISN (our choice).
constexpr int64_t kMssBytes = static_cast<int64_t>(kTcpMss);

// A wire that goes nowhere: captures every TCP segment the stack emits so
// the script can assert on it.
class ScriptIf : public NetIf {
 public:
  ScriptIf() : NetIf("script0", MacAddr::FromId(1)) { SetUp(true); }

  void Output(const EthernetFrame& frame) override {
    CountTx(frame);
    const Ipv4Packet* ip = frame.ip();
    ASSERT_NE(ip, nullptr) << "stack emitted a non-IP frame (ARP not seeded?)";
    const TcpSegment* tcp = std::get_if<TcpSegment>(&ip->l4);
    ASSERT_NE(tcp, nullptr) << "stack emitted non-TCP traffic";
    captured_.push_back(*tcp);
  }

  std::deque<TcpSegment> captured_;
};

enum class Op {
  kIn,          // Inject a segment from the scripted peer.
  kSend,        // conn->Send(payload bytes).
  kClose,       // conn->Close().
  kAdvance,     // Advance simulated time by `dur`.
  kExpectOut,   // Next captured segment matches flags/seq/ack/payload.
  kExpectNoOut,     // Capture queue is empty.
  kExpectState,     // conn->state() == `state`.
  kExpectClosed,    // Close callback fired (conn may be destroyed).
  kExpectDelivered,  // Total in-order bytes delivered == `payload`.
  kExpectCwnd,       // conn->cwnd() == `payload`.
  kExpectSsthresh,   // conn->ssthresh() == `payload`.
  kExpectRecovery,   // conn->in_fast_recovery() == (`payload` != 0).
  kExpectFastRtx,    // conn->fast_retransmits() == `payload`.
  kExpectRtoFires,   // conn->retransmits() == `payload`.
  kExpectRto,        // conn->rto() == `dur`.
  kExpectSrtt,       // conn->srtt() == `dur`.
};

struct Row {
  Op op;
  const char* note = "";
  // Segment shape for kIn / kExpectOut. seq/ack are ISN-relative; -1 in an
  // expectation means "don't check".
  bool syn = false;
  bool fin = false;
  bool rst = false;
  bool ack_flag = true;
  int64_t seq = -1;
  int64_t ack = -1;
  int64_t payload = -1;
  SimDuration dur{};
  TcpState state = TcpState::kClosed;
};

class TcpScriptTest : public ::testing::Test {
 protected:
  TcpScriptTest() : stack_(&ex_, nullptr, &wire_) {
    stack_.ConfigureIp(kLocalIp);
    stack_.AddArpEntry(kPeerIp, MacAddr::FromId(2));
  }

  // Active open; the SYN is captured synchronously.
  void Connect() {
    conn_ = stack_.ConnectTcp(kPeerIp, kPeerPort,
                              [this](TcpConn*) { connected_ = true; });
    AttachCallbacks(conn_);
  }

  void Listen() {
    stack_.ListenTcp(kPeerPort, [this](TcpConn* conn) {
      conn_ = conn;
      connected_ = true;
      AttachCallbacks(conn);
    });
  }

  void AttachCallbacks(TcpConn* conn) {
    conn->SetDataCallback([this](std::span<const uint8_t> d) {
      delivered_.insert(delivered_.end(), d.begin(), d.end());
    });
    conn->SetCloseCallback([this] { closed_ = true; });
  }

  // The standard three-way handshake preamble for active-open scripts.
  void Establish() {
    Connect();
    Run({
        {.op = Op::kExpectOut, .note = "SYN", .syn = true, .ack_flag = false,
         .seq = 0, .payload = 0},
        {.op = Op::kIn, .note = "SYN-ACK", .syn = true, .seq = 0, .ack = 1},
        {.op = Op::kExpectOut, .note = "handshake ACK", .seq = 1, .ack = 1,
         .payload = 0},
        {.op = Op::kExpectState, .note = "established",
         .state = TcpState::kEstablished},
    });
  }

  void Inject(const Row& row) {
    TcpSegment seg;
    seg.src_port = kPeerPort;
    seg.dst_port = conn_ != nullptr ? conn_->local_port() : peer_dst_port_;
    seg.syn = row.syn;
    seg.fin = row.fin;
    seg.rst = row.rst;
    seg.ack_flag = row.ack_flag;
    seg.seq = kPeerIss + static_cast<uint32_t>(row.seq);
    if (row.ack_flag && row.ack >= 0) {
      seg.ack = iss_ + static_cast<uint32_t>(row.ack);
    }
    seg.window = kTcpWindowBytes;
    if (row.payload > 0) {
      seg.payload.assign(static_cast<size_t>(row.payload), 0x61);
    }
    Ipv4Packet packet;
    packet.src = kPeerIp;
    packet.dst = kLocalIp;
    packet.proto = kIpProtoTcp;
    packet.l4 = std::move(seg);
    EthernetFrame frame;
    frame.dst = wire_.mac();
    frame.src = MacAddr::FromId(2);
    frame.payload = std::move(packet);
    wire_.InjectInput(frame);
  }

  void ExpectOut(const Row& row) {
    ASSERT_FALSE(wire_.captured_.empty()) << "no segment emitted: " << row.note;
    TcpSegment seg = std::move(wire_.captured_.front());
    wire_.captured_.pop_front();
    // First expectation with a concrete seq pins our ISN; every later row is
    // checked against it.
    if (!iss_known_ && row.seq >= 0) {
      iss_ = seg.seq - static_cast<uint32_t>(row.seq);
      iss_known_ = true;
    }
    EXPECT_EQ(seg.syn, row.syn) << row.note;
    EXPECT_EQ(seg.fin, row.fin) << row.note;
    EXPECT_EQ(seg.rst, row.rst) << row.note;
    EXPECT_EQ(seg.ack_flag, row.ack_flag) << row.note;
    if (row.seq >= 0) {
      EXPECT_EQ(seg.seq, iss_ + static_cast<uint32_t>(row.seq)) << row.note;
    }
    if (row.ack >= 0) {
      EXPECT_EQ(seg.ack, kPeerIss + static_cast<uint32_t>(row.ack)) << row.note;
    }
    if (row.payload >= 0) {
      EXPECT_EQ(seg.payload.size(), static_cast<size_t>(row.payload)) << row.note;
    }
  }

  void Run(const std::vector<Row>& rows) {
    for (const Row& row : rows) {
      switch (row.op) {
        case Op::kIn:
          Inject(row);
          break;
        case Op::kSend:
          conn_->Send(Buffer(static_cast<size_t>(row.payload), 0x42));
          break;
        case Op::kClose:
          conn_->Close();
          break;
        case Op::kAdvance:
          ex_.RunFor(row.dur);
          break;
        case Op::kExpectOut:
          ExpectOut(row);
          break;
        case Op::kExpectNoOut:
          EXPECT_TRUE(wire_.captured_.empty())
              << row.note << ": unexpected segment on the wire";
          break;
        case Op::kExpectState:
          EXPECT_EQ(conn_->state(), row.state) << row.note;
          break;
        case Op::kExpectClosed:
          EXPECT_TRUE(closed_) << row.note;
          break;
        case Op::kExpectDelivered:
          EXPECT_EQ(delivered_.size(), static_cast<size_t>(row.payload)) << row.note;
          break;
        case Op::kExpectCwnd:
          EXPECT_EQ(conn_->cwnd(), static_cast<uint32_t>(row.payload)) << row.note;
          break;
        case Op::kExpectSsthresh:
          EXPECT_EQ(conn_->ssthresh(), static_cast<uint32_t>(row.payload)) << row.note;
          break;
        case Op::kExpectRecovery:
          EXPECT_EQ(conn_->in_fast_recovery(), row.payload != 0) << row.note;
          break;
        case Op::kExpectFastRtx:
          EXPECT_EQ(conn_->fast_retransmits(), static_cast<uint32_t>(row.payload))
              << row.note;
          break;
        case Op::kExpectRtoFires:
          EXPECT_EQ(conn_->retransmits(), static_cast<uint32_t>(row.payload))
              << row.note;
          break;
        case Op::kExpectRto:
          EXPECT_EQ(conn_->rto().ns(), row.dur.ns()) << row.note;
          break;
        case Op::kExpectSrtt:
          EXPECT_EQ(conn_->srtt().ns(), row.dur.ns()) << row.note;
          break;
      }
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }

  Executor ex_;
  ScriptIf wire_;
  EtherStack stack_;
  TcpConn* conn_ = nullptr;
  uint16_t peer_dst_port_ = kPeerPort;  // Listener port for passive scripts.
  uint32_t iss_ = 0;
  bool iss_known_ = false;
  bool connected_ = false;
  bool closed_ = false;
  Buffer delivered_;
};

TEST_F(TcpScriptTest, ActiveHandshake) {
  Connect();
  Run({
      {.op = Op::kExpectOut, .note = "SYN out", .syn = true, .ack_flag = false,
       .seq = 0, .payload = 0},
      {.op = Op::kExpectState, .note = "awaiting SYN-ACK",
       .state = TcpState::kSynSent},
      {.op = Op::kIn, .note = "SYN-ACK in", .syn = true, .seq = 0, .ack = 1},
      {.op = Op::kExpectOut, .note = "handshake ACK", .seq = 1, .ack = 1,
       .payload = 0},
      {.op = Op::kExpectState, .note = "established",
       .state = TcpState::kEstablished},
      {.op = Op::kExpectNoOut, .note = "quiet after handshake"},
  });
  EXPECT_TRUE(connected_);
}

TEST_F(TcpScriptTest, PassiveHandshake) {
  Listen();
  Run({
      {.op = Op::kIn, .note = "SYN in", .syn = true, .ack_flag = false, .seq = 0},
      {.op = Op::kExpectOut, .note = "SYN-ACK out", .syn = true, .seq = 0,
       .ack = 1, .payload = 0},
      {.op = Op::kIn, .note = "handshake ACK in", .seq = 1, .ack = 1},
      {.op = Op::kExpectState, .note = "established",
       .state = TcpState::kEstablished},
  });
  EXPECT_TRUE(connected_);
}

TEST_F(TcpScriptTest, InOrderDataIsDelayAcked) {
  Establish();
  Run({
      {.op = Op::kIn, .note = "one segment", .seq = 1, .ack = 1, .payload = 1000},
      {.op = Op::kExpectNoOut, .note = "ACK is delayed"},
      {.op = Op::kAdvance, .dur = Micros(100)},
      {.op = Op::kExpectOut, .note = "delayed ACK", .seq = 1, .ack = 1001,
       .payload = 0},
      {.op = Op::kExpectDelivered, .payload = 1000},
  });
}

TEST_F(TcpScriptTest, SecondSegmentForcesImmediateAck) {
  Establish();
  Run({
      {.op = Op::kIn, .note = "segment 1", .seq = 1, .ack = 1, .payload = 1000},
      {.op = Op::kExpectNoOut, .note = "first ACK delayed"},
      {.op = Op::kIn, .note = "segment 2", .seq = 1001, .ack = 1, .payload = 1000},
      {.op = Op::kExpectOut, .note = "ack-every-2 fires now", .seq = 1,
       .ack = 2001, .payload = 0},
      {.op = Op::kAdvance, .dur = Micros(100)},
      {.op = Op::kExpectNoOut, .note = "delayed timer finds nothing pending"},
      {.op = Op::kExpectDelivered, .payload = 2000},
  });
}

TEST_F(TcpScriptTest, DuplicateSegmentReAcksImmediately) {
  Establish();
  Run({
      {.op = Op::kIn, .note = "data", .seq = 1, .ack = 1, .payload = 1000},
      {.op = Op::kExpectNoOut, .note = "delayed"},
      {.op = Op::kIn, .note = "same data again", .seq = 1, .ack = 1, .payload = 1000},
      {.op = Op::kExpectOut, .note = "old data re-ACKed at once", .seq = 1,
       .ack = 1001, .payload = 0},
      {.op = Op::kExpectDelivered, .note = "no double delivery", .payload = 1000},
  });
}

TEST_F(TcpScriptTest, ReorderedSegmentsAckImmediatelyAndReassemble) {
  Establish();
  Run({
      {.op = Op::kIn, .note = "second segment arrives first", .seq = 1001,
       .ack = 1, .payload = 1000},
      {.op = Op::kExpectOut, .note = "immediate dup-ACK at the hole", .seq = 1,
       .ack = 1, .payload = 0},
      {.op = Op::kExpectDelivered, .note = "held out of order", .payload = 0},
      {.op = Op::kIn, .note = "hole filled", .seq = 1, .ack = 1, .payload = 1000},
      {.op = Op::kExpectOut, .note = "immediate ACK past the reassembly",
       .seq = 1, .ack = 2001, .payload = 0},
      {.op = Op::kExpectDelivered, .note = "both delivered in order",
       .payload = 2000},
  });
}

TEST_F(TcpScriptTest, TripleDupAckTriggersFastRetransmitAndNewReno) {
  Establish();
  Run({
      // 3 MSS queued: initial cwnd (10 MSS) lets all three out at once.
      {.op = Op::kSend, .payload = 3 * kMssBytes},
      {.op = Op::kExpectOut, .note = "seg 1", .seq = 1, .ack = 1,
       .payload = kMssBytes},
      {.op = Op::kExpectOut, .note = "seg 2", .seq = 1 + kMssBytes,
       .payload = kMssBytes},
      {.op = Op::kExpectOut, .note = "seg 3", .seq = 1 + 2 * kMssBytes,
       .payload = kMssBytes},
      // Segment 1 is "lost": the peer dup-ACKs at the hole three times.
      {.op = Op::kIn, .note = "dup-ACK 1", .seq = 1, .ack = 1},
      {.op = Op::kIn, .note = "dup-ACK 2", .seq = 1, .ack = 1},
      {.op = Op::kExpectNoOut, .note = "below dup-ACK threshold"},
      {.op = Op::kIn, .note = "dup-ACK 3", .seq = 1, .ack = 1},
      {.op = Op::kExpectOut, .note = "fast retransmit of the hole", .seq = 1,
       .payload = kMssBytes},
      {.op = Op::kExpectFastRtx, .payload = 1},
      {.op = Op::kExpectRtoFires, .note = "no timeout involved", .payload = 0},
      {.op = Op::kExpectRecovery, .payload = 1},
      // ssthresh = flight/2 = 1.5 MSS, floored at 2 MSS; cwnd = ssthresh + 3.
      {.op = Op::kExpectSsthresh, .payload = 2 * kMssBytes},
      {.op = Op::kExpectCwnd, .payload = 5 * kMssBytes},
      // Partial ACK: segment 2 was lost too — NewReno repairs it now.
      {.op = Op::kIn, .note = "partial ACK", .seq = 1, .ack = 1 + kMssBytes},
      {.op = Op::kExpectOut, .note = "hole repair without new dup-ACKs",
       .seq = 1 + kMssBytes, .payload = kMssBytes},
      {.op = Op::kExpectRecovery, .payload = 1},
      // Full ACK: recovery exits, cwnd deflates to ssthresh.
      {.op = Op::kIn, .note = "full ACK", .seq = 1, .ack = 1 + 3 * kMssBytes},
      {.op = Op::kExpectRecovery, .payload = 0},
      {.op = Op::kExpectCwnd, .payload = 2 * kMssBytes},
  });
}

TEST_F(TcpScriptTest, SlowStartGrowsCwndPerAck) {
  Establish();
  Run({
      {.op = Op::kExpectCwnd, .note = "initial window", .payload = 10 * kMssBytes},
      {.op = Op::kSend, .payload = 4 * kMssBytes},
      {.op = Op::kExpectOut, .seq = 1, .payload = kMssBytes},
      {.op = Op::kExpectOut, .seq = 1 + kMssBytes, .payload = kMssBytes},
      {.op = Op::kExpectOut, .seq = 1 + 2 * kMssBytes, .payload = kMssBytes},
      {.op = Op::kExpectOut, .seq = 1 + 3 * kMssBytes, .payload = kMssBytes},
      {.op = Op::kIn, .note = "ACK 2 MSS", .seq = 1, .ack = 1 + 2 * kMssBytes},
      {.op = Op::kExpectCwnd, .note = "one MSS per ACK, not per byte",
       .payload = 11 * kMssBytes},
      {.op = Op::kIn, .note = "ACK rest", .seq = 1, .ack = 1 + 4 * kMssBytes},
      {.op = Op::kExpectCwnd, .payload = 12 * kMssBytes},
  });
}

// The adaptive-RTO regression test: timeouts collapse cwnd, double the RTO
// each time (Karn backoff), and a new cumulative ACK snaps the RTO back.
TEST_F(TcpScriptTest, TailLossBacksOffExponentially) {
  Establish();
  Run({
      {.op = Op::kSend, .payload = kMssBytes},
      {.op = Op::kExpectOut, .note = "first transmission", .seq = 1,
       .payload = kMssBytes},
      {.op = Op::kExpectRto, .note = "initial RTO (no RTT sample yet)",
       .dur = Millis(10)},
      {.op = Op::kAdvance, .dur = Millis(10)},
      {.op = Op::kExpectOut, .note = "RTO retransmission 1", .seq = 1,
       .payload = kMssBytes},
      {.op = Op::kExpectRtoFires, .payload = 1},
      {.op = Op::kExpectRto, .note = "backed off 10 -> 20", .dur = Millis(20)},
      {.op = Op::kExpectCwnd, .note = "timeout collapses to one segment",
       .payload = kMssBytes},
      {.op = Op::kAdvance, .dur = Millis(20)},
      {.op = Op::kExpectOut, .note = "RTO retransmission 2", .seq = 1,
       .payload = kMssBytes},
      {.op = Op::kExpectRto, .note = "20 -> 40", .dur = Millis(40)},
      {.op = Op::kAdvance, .dur = Millis(40)},
      {.op = Op::kExpectOut, .note = "RTO retransmission 3", .seq = 1,
       .payload = kMssBytes},
      {.op = Op::kExpectRto, .note = "40 -> 80", .dur = Millis(80)},
      {.op = Op::kExpectRtoFires, .payload = 3},
      {.op = Op::kIn, .note = "everything finally acked", .seq = 1,
       .ack = 1 + kMssBytes},
      {.op = Op::kExpectRto, .note = "new cumulative ACK cancels backoff",
       .dur = Millis(10)},
      {.op = Op::kExpectState, .state = TcpState::kEstablished},
  });
}

TEST_F(TcpScriptTest, RttSamplesDriveSrttAndRto) {
  Establish();
  Run({
      {.op = Op::kSend, .payload = kMssBytes},
      {.op = Op::kExpectOut, .seq = 1, .payload = kMssBytes},
      {.op = Op::kAdvance, .note = "2 ms RTT", .dur = Millis(2)},
      {.op = Op::kIn, .seq = 1, .ack = 1 + kMssBytes},
      // First sample: SRTT = S, RTTVAR = S/2, RTO = SRTT + 4*RTTVAR.
      {.op = Op::kExpectSrtt, .dur = Millis(2)},
      {.op = Op::kExpectRto, .dur = Millis(6)},
      {.op = Op::kSend, .payload = kMssBytes},
      {.op = Op::kExpectOut, .seq = 1 + kMssBytes, .payload = kMssBytes},
      {.op = Op::kAdvance, .note = "4 ms RTT", .dur = Millis(4)},
      {.op = Op::kIn, .seq = 1, .ack = 1 + 2 * kMssBytes},
      // RFC 6298 smoothing: RTTVAR=(3*1+2)/4=1.25ms, SRTT=(7*2+4)/8=2.25ms.
      {.op = Op::kExpectSrtt, .dur = Micros(2250)},
      {.op = Op::kExpectRto, .dur = Micros(7250)},
  });
}

TEST_F(TcpScriptTest, GracefulCloseBothDirections) {
  Establish();
  Run({
      {.op = Op::kClose},
      {.op = Op::kExpectOut, .note = "our FIN", .fin = true, .seq = 1, .ack = 1,
       .payload = 0},
      {.op = Op::kExpectState, .state = TcpState::kFinSent},
      {.op = Op::kIn, .note = "FIN acked", .seq = 1, .ack = 2},
      {.op = Op::kExpectState, .note = "await peer FIN",
       .state = TcpState::kFinSent},
      {.op = Op::kIn, .note = "peer FIN", .fin = true, .seq = 1, .ack = 2},
      {.op = Op::kExpectOut, .note = "FIN acknowledged", .seq = 2, .ack = 2,
       .payload = 0},
      {.op = Op::kExpectClosed},
  });
}

TEST_F(TcpScriptTest, BlindRstOutsideWindowIsIgnored) {
  Establish();
  Run({
      {.op = Op::kIn, .note = "RST far above the window", .rst = true,
       .ack_flag = false, .seq = 1 + (1 << 20)},
      {.op = Op::kExpectState, .note = "survives forged reset",
       .state = TcpState::kEstablished},
      {.op = Op::kIn, .note = "RST below the window", .rst = true,
       .ack_flag = false, .seq = -5000},
      {.op = Op::kExpectState, .state = TcpState::kEstablished},
      {.op = Op::kExpectNoOut},
      {.op = Op::kIn, .note = "genuine in-window RST", .rst = true,
       .ack_flag = false, .seq = 1},
      {.op = Op::kExpectClosed},
  });
}

// Regression: a FIN rewound by go-back-N (the RTO clears fin_sent_) must
// still accept the ack that covers it. The receiver already held the tail +
// FIN out of order, so the retransmitted head completes the stream and the
// ack lands one past snd_max_ before the FIN is ever re-emitted — with the
// post-timeout cwnd of one MSS and more than one MSS buffered, PumpSend can
// never reach the FIN again. Rejecting that ack would strand snd_una_ and
// abort the connection after max_retransmits backed-off RTOs.
TEST_F(TcpScriptTest, RewoundFinAckedFromOooTailCompletes) {
  Establish();
  Run({
      {.op = Op::kSend, .payload = 2 * kMssBytes},
      {.op = Op::kExpectOut, .note = "seg 1", .seq = 1, .ack = 1,
       .payload = kMssBytes},
      {.op = Op::kExpectOut, .note = "seg 2", .seq = 1 + kMssBytes,
       .payload = kMssBytes},
      {.op = Op::kClose},
      {.op = Op::kExpectOut, .note = "FIN after queued data", .fin = true,
       .seq = 1 + 2 * kMssBytes, .payload = 0},
      {.op = Op::kExpectState, .state = TcpState::kFinSent},
      // Timeout: go-back-N rewinds to snd_una_; cwnd collapses to one MSS,
      // so only the head goes back out and the FIN is not re-emitted.
      {.op = Op::kAdvance, .dur = Millis(10)},
      {.op = Op::kExpectOut, .note = "head retransmitted", .seq = 1,
       .payload = kMssBytes},
      {.op = Op::kExpectNoOut, .note = "cwnd=1 MSS: no room for tail or FIN"},
      {.op = Op::kExpectRtoFires, .payload = 1},
      // The peer held seg 2 + FIN out of order: the head completes the
      // stream and it acks one past the (never re-emitted) FIN.
      {.op = Op::kIn, .note = "ack covering data + rewound FIN", .seq = 1,
       .ack = 2 + 2 * kMssBytes},
      {.op = Op::kExpectState, .note = "FIN acked, no livelock",
       .state = TcpState::kFinSent},
      {.op = Op::kIn, .note = "peer FIN", .fin = true, .seq = 1,
       .ack = 2 + 2 * kMssBytes},
      {.op = Op::kExpectOut, .note = "final ACK", .seq = 2 + 2 * kMssBytes,
       .ack = 2, .payload = 0},
      {.op = Op::kExpectClosed},
  });
}

// Abort's RST must survive the peer's RFC 5961-style validation: ack_flag
// with ack = rcv_nxt_, sequence at the top of everything sent (snd_nxt_ may
// sit below the peer's rcv_nxt_ after a go-back-N rewind).
TEST_F(TcpScriptTest, AbortRstAcksPeerAndUsesHighestSentSeq) {
  Establish();
  Run({
      {.op = Op::kSend, .payload = kMssBytes},
      {.op = Op::kExpectOut, .seq = 1, .payload = kMssBytes},
  });
  conn_->Abort();
  Run({
      {.op = Op::kExpectOut, .note = "RST carries ack and in-window seq",
       .rst = true, .seq = 1 + kMssBytes, .ack = 1, .payload = 0},
  });
}

// A forged same-seq segment with a different length must not relocate its
// FIN onto the buffered out-of-order entry: the FIN would otherwise be
// consumed at the buffered copy's (different) end sequence.
TEST_F(TcpScriptTest, ForgedSameSeqFinDoesNotRideBufferedEntry) {
  Establish();
  Run({
      {.op = Op::kIn, .note = "tail held out of order", .seq = 1001, .ack = 1,
       .payload = 1000},
      {.op = Op::kExpectOut, .note = "dup-ACK at the hole", .seq = 1, .ack = 1,
       .payload = 0},
      {.op = Op::kIn, .note = "forged same-seq shorter segment with FIN",
       .fin = true, .seq = 1001, .ack = 1, .payload = 500},
      {.op = Op::kExpectOut, .note = "another dup-ACK", .seq = 1, .ack = 1,
       .payload = 0},
      {.op = Op::kIn, .note = "hole filled", .seq = 1, .ack = 1,
       .payload = 1000},
      {.op = Op::kExpectOut, .note = "ack past reassembly, no FIN consumed",
       .seq = 1, .ack = 2001, .payload = 0},
      {.op = Op::kExpectDelivered, .payload = 2000},
      {.op = Op::kExpectState, .note = "still open: the forged FIN is inert",
       .state = TcpState::kEstablished},
  });
}

TEST_F(TcpScriptTest, SynSentRstMustProveItsAck) {
  Connect();
  Run({
      {.op = Op::kExpectOut, .note = "SYN", .syn = true, .ack_flag = false,
       .seq = 0, .payload = 0},
      {.op = Op::kIn, .note = "RST with no ack", .rst = true, .ack_flag = false,
       .seq = 0},
      {.op = Op::kExpectState, .state = TcpState::kSynSent},
      {.op = Op::kIn, .note = "RST with wrong ack", .rst = true, .seq = 0,
       .ack = 7},
      {.op = Op::kExpectState, .state = TcpState::kSynSent},
      {.op = Op::kIn, .note = "RST acking our SYN", .rst = true, .seq = 0,
       .ack = 1},
      {.op = Op::kExpectClosed},
  });
}

}  // namespace
}  // namespace kite
