// Deterministic simulation testing (src/check): schedule-shuffle determinism
// regression, whole-system invariant checking across lifecycle scenarios,
// protocol-fuzzer sessions, and the explore harness itself.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/check/explore.h"
#include "src/check/frontends.h"
#include "src/check/fuzz.h"
#include "src/core/invariants.h"
#include "src/workloads/netbench.h"

namespace kite {
namespace {

// Runs the fig06-style UDP workload (client → guest through the network
// driver domain) under a shuffle seed and returns the full metric table plus
// the executor step count — the two fingerprints determinism is judged by.
struct RunFingerprint {
  std::string metrics;
  uint64_t steps = 0;
  std::vector<Violation> violations;
};

RunFingerprint RunFig06Style(uint64_t seed, bool shuffle = true) {
  KiteSystem sys;
  if (shuffle) {
    sys.EnableScheduleShuffle(seed);
  }
  NetworkDomain* netdom = sys.CreateNetworkDomain();
  GuestVm* guest = sys.CreateGuest("fig06-guest");
  sys.AttachVif(guest, netdom, Ipv4Addr::FromOctets(10, 0, 0, 10));
  EXPECT_TRUE(sys.WaitConnected(guest));
  NuttcpConfig cfg;
  cfg.offered_gbps = 2.0;
  cfg.datagram_bytes = 1472;
  cfg.duration = Millis(20);
  NuttcpUdp nut(sys.client()->stack(), guest->stack(), guest->ip(), cfg);
  bool done = false;
  nut.Run([&done](const NuttcpResult&) { done = true; });
  EXPECT_TRUE(sys.WaitUntil([&] { return done; }));
  sys.RunUntilIdle();
  RunFingerprint fp;
  fp.metrics = sys.FormatMetrics();
  fp.steps = sys.executor().steps_executed();
  fp.violations = InvariantChecker(&sys).Check();
  return fp;
}

TEST(DeterminismRegressionTest, SameSeedSameScheduleByteIdentical) {
  const RunFingerprint a = RunFig06Style(42);
  const RunFingerprint b = RunFig06Style(42);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_TRUE(a.violations.empty()) << InvariantChecker::Format(a.violations);
}

TEST(DeterminismRegressionTest, ShuffleOffRunsAreByteIdentical) {
  // With shuffle off the executor's tie key degenerates to the post sequence
  // number, so two runs must agree to the byte — this is the contract the
  // timer-wheel engine has to preserve for seed benches to reproduce.
  const RunFingerprint a = RunFig06Style(0, /*shuffle=*/false);
  const RunFingerprint b = RunFig06Style(0, /*shuffle=*/false);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_TRUE(a.violations.empty()) << InvariantChecker::Format(a.violations);

  // CI determinism guard: when KITE_CHECK_METRICS_OUT is set, dump the run
  // fingerprints so two separate check_test invocations can be byte-diffed.
  if (const char* path = std::getenv("KITE_CHECK_METRICS_OUT")) {
    std::FILE* f = std::fopen(path, "w");
    ASSERT_NE(f, nullptr) << path;
    std::fprintf(f, "plain steps=%llu\n%s\n", static_cast<unsigned long long>(a.steps),
                 a.metrics.c_str());
    const RunFingerprint s = RunFig06Style(42);
    std::fprintf(f, "shuffle42 steps=%llu\n%s\n",
                 static_cast<unsigned long long>(s.steps), s.metrics.c_str());
    std::fclose(f);
  }
}

TEST(DeterminismRegressionTest, DifferentSeedStillPassesInvariants) {
  const RunFingerprint c = RunFig06Style(43);
  EXPECT_TRUE(c.violations.empty()) << InvariantChecker::Format(c.violations);
  EXPECT_GT(c.steps, 0u);
}

// --- Invariant checker across lifecycle scenarios. ---

TEST(InvariantCheckerTest, CleanSystemPassesAllAudits) {
  KiteSystem sys;
  sys.CreateNetworkDomain();
  sys.CreateStorageDomain();
  GuestVm* guest = sys.CreateGuest("g");
  sys.AttachVif(guest, sys.network_domains()[0].get(), Ipv4Addr::FromOctets(10, 0, 0, 10));
  sys.AttachVbd(guest, sys.storage_domains()[0].get());
  ASSERT_TRUE(sys.WaitConnected(guest));
  sys.RunUntilIdle();
  const auto violations = InvariantChecker(&sys).Check();
  EXPECT_TRUE(violations.empty()) << InvariantChecker::Format(violations);
}

TEST(InvariantCheckerTest, ReportsNonQuiescedSystem) {
  KiteSystem sys;
  sys.executor().PostAfter(Seconds(5), [] {});
  const auto violations = InvariantChecker(&sys).Check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, "not-quiesced");
  EXPECT_NE(InvariantChecker::Format(violations).find("not-quiesced"),
            std::string::npos);
}

TEST(InvariantCheckerTest, HoldsAfterGuestDeath) {
  KiteSystem sys;
  NetworkDomain* netdom = sys.CreateNetworkDomain();
  StorageDomain* stordom = sys.CreateStorageDomain();
  GuestVm* guest = sys.CreateGuest("doomed");
  sys.AttachVif(guest, netdom, Ipv4Addr::FromOctets(10, 0, 0, 10));
  sys.AttachVbd(guest, stordom);
  ASSERT_TRUE(sys.WaitConnected(guest));
  // In-flight I/O when the guest dies: the backends must reap cleanly.
  guest->blkfront()->Write(0, Buffer(4096, 0x5a), [](bool) {});
  sys.RunFor(Millis(1));
  sys.DestroyGuest(guest);
  sys.RunUntilIdle();
  const auto violations = InvariantChecker(&sys).Check();
  EXPECT_TRUE(violations.empty()) << InvariantChecker::Format(violations);
}

TEST(InvariantCheckerTest, HoldsAfterDriverDomainRestarts) {
  KiteSystem sys;
  NetworkDomain* netdom = sys.CreateNetworkDomain();
  StorageDomain* stordom = sys.CreateStorageDomain();
  GuestVm* guest = sys.CreateGuest("g");
  sys.AttachVif(guest, netdom, Ipv4Addr::FromOctets(10, 0, 0, 10));
  sys.AttachVbd(guest, stordom);
  ASSERT_TRUE(sys.WaitConnected(guest));
  int io_done = 0;
  guest->blkfront()->Write(0, Buffer(4096, 0x11), [&](bool) { ++io_done; });
  ASSERT_TRUE(sys.WaitUntil([&] { return io_done == 1; }));

  netdom = sys.RestartNetworkDomain(netdom);
  stordom = sys.RestartStorageDomain(stordom);
  ASSERT_TRUE(sys.WaitConnected(guest, Seconds(30)));
  guest->blkfront()->Read(0, 4096, nullptr, [&](bool) { ++io_done; });
  ASSERT_TRUE(sys.WaitUntil([&] { return io_done == 2; }, Seconds(30)));
  sys.RunUntilIdle();
  const auto violations = InvariantChecker(&sys).Check();
  EXPECT_TRUE(violations.empty()) << InvariantChecker::Format(violations);
}

// --- Protocol fuzzer sessions. ---

TEST(ProtocolFuzzerTest, SameSeedSameMutationStream) {
  ProtocolFuzzer a(5), b(5);
  NetTxRequest valid;
  valid.gref = 1;
  valid.id = 0;
  valid.offset = 0;
  valid.size = 64;
  for (int i = 0; i < 200; ++i) {
    const NetTxRequest ra = a.MutateNetTx(valid);
    const NetTxRequest rb = b.MutateNetTx(valid);
    EXPECT_EQ(ra.gref, rb.gref);
    EXPECT_EQ(ra.offset, rb.offset);
    EXPECT_EQ(ra.size, rb.size);
  }
}

TEST(ProtocolFuzzerTest, FuzzSessionLeavesSystemCoherent) {
  KiteSystem sys;
  sys.EnableScheduleShuffle(11);
  NetworkDomain* netdom = sys.CreateNetworkDomain();
  StorageDomain* stordom = sys.CreateStorageDomain();
  GuestVm* net_guest = sys.CreateGuest("fuzz-net");
  GuestVm* blk_guest = sys.CreateGuest("fuzz-blk");
  RawNetFrontend raw_net(&sys, netdom, net_guest);
  RawBlkFrontend raw_blk(&sys, stordom, blk_guest);
  ASSERT_TRUE(raw_net.Connect());
  ASSERT_TRUE(raw_blk.Connect());

  ProtocolFuzzer fuzz(11);
  for (int i = 0; i < 64; ++i) {
    raw_net.SendTx(fuzz.MutateNetTx(raw_net.ValidTx(static_cast<uint16_t>(i))));
    if (i % 8 == 7) {
      sys.RunFor(Millis(5));
      raw_net.DrainTxResponses();
    }
  }
  for (int i = 0; i < 24; ++i) {
    raw_blk.SendBlk(
        fuzz.MutateBlk(raw_blk.ValidRead(static_cast<uint64_t>(i)), raw_blk.capacity_sectors()));
    if (i % 4 == 3) {
      sys.RunFor(Millis(20));
      raw_blk.DrainResponses();
    }
  }
  sys.RunFor(Millis(300));
  raw_net.DrainTxResponses();
  raw_blk.DrainResponses();

  // Both backends still answer a well-formed request after the burst.
  ASSERT_TRUE(raw_net.SendTx(raw_net.ValidTx(500)));
  ASSERT_TRUE(raw_blk.SendBlk(raw_blk.ValidRead(500)));
  sys.RunFor(Millis(200));
  EXPECT_FALSE(raw_net.DrainTxResponses().empty());
  EXPECT_FALSE(raw_blk.DrainResponses().empty());

  sys.DestroyGuest(net_guest);
  sys.DestroyGuest(blk_guest);
  sys.RunUntilIdle();
  const auto violations = InvariantChecker(&sys).Check();
  EXPECT_TRUE(violations.empty()) << InvariantChecker::Format(violations);
}

// --- The explore harness itself. ---

TEST(ExploreHarnessTest, SingleSeedRunsCleanAndReportsOk) {
  ExploreOptions opts;
  opts.seed = 3;
  const ExploreReport report = RunExploreSeed(opts);
  EXPECT_TRUE(report.ok) << FormatReport(report);
  EXPECT_EQ(report.phase, "check");
  EXPECT_NE(FormatReport(report).find("seed 3: ok"), std::string::npos);
}

TEST(ExploreHarnessTest, FailureReportContainsReplayCommand) {
  ExploreReport report;
  report.seed = 17;
  report.ok = false;
  report.phase = "recover";
  report.violations.push_back({"grant-ledger", "maps 3, resolved 2"});
  const std::string out = FormatReport(report);
  EXPECT_NE(out.find("kite_explore --seed=17"), std::string::npos) << out;
  EXPECT_NE(out.find("grant-ledger"), std::string::npos);
  EXPECT_NE(out.find("recover"), std::string::npos);
}

}  // namespace
}  // namespace kite
