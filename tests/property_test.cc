// Randomized property tests: xenstore tree consistency under random
// operation sequences, codec round-trips over random packets, ROP scanner
// determinism, and grant-table invariants under random grant/map/copy
// schedules.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "src/base/rng.h"
#include "src/hv/hypervisor.h"
#include "src/net/frame.h"
#include "src/security/rop.h"

namespace kite {
namespace {

// Exclusive upper bound of a [1, end) seed range. KITE_FUZZ_SEEDS=N widens
// every suite to N seeds without a rebuild (CI nightlies); unset or invalid
// keeps the suite's original default.
int FuzzSeedEnd(int default_end) {
  const char* env = std::getenv("KITE_FUZZ_SEEDS");
  if (env == nullptr || *env == '\0') {
    return default_end;
  }
  const int n = std::atoi(env);
  return n > 0 ? n + 1 : default_end;
}

// --- Xenstore vs a model map. ---

class XenstoreFuzz : public ::testing::TestWithParam<int> {};

TEST_P(XenstoreFuzz, MatchesModelMap) {
  Executor ex;
  Hypervisor hv(&ex);
  Domain* dom = hv.CreateDomain("fuzz", 1, 512);
  Rng rng(GetParam());
  // Model: path → value for every write we performed under our home.
  std::map<std::string, std::string> model;
  const std::string home = dom->store_home();

  auto random_path = [&] {
    std::string path = home;
    const int depth = 1 + static_cast<int>(rng.NextBelow(3));
    for (int d = 0; d < depth; ++d) {
      path += StrFormat("/n%d", static_cast<int>(rng.NextBelow(4)));
    }
    return path;
  };

  for (int op = 0; op < 1500; ++op) {
    const std::string path = random_path();
    switch (rng.NextBelow(3)) {
      case 0: {  // Write.
        const std::string value = StrFormat("v%d", op);
        ASSERT_TRUE(dom->StoreWrite(path, value));
        model[path] = value;
        break;
      }
      case 1: {  // Read + compare.
        auto got = dom->StoreRead(path);
        auto it = model.find(path);
        if (it != model.end()) {
          ASSERT_TRUE(got.has_value()) << path;
          ASSERT_EQ(*got, it->second) << path;
        } else if (got.has_value()) {
          // Intermediate node created by a deeper write: value empty.
          ASSERT_TRUE(got->empty()) << path;
        }
        break;
      }
      case 2: {  // Remove subtree; drop matching model entries.
        if (dom->StoreRemove(path)) {
          for (auto it = model.begin(); it != model.end();) {
            if (PathIsUnder(it->first, path)) {
              it = model.erase(it);
            } else {
              ++it;
            }
          }
        }
        break;
      }
    }
  }
  // Final sweep: every model entry readable with the right value.
  for (const auto& [path, value] : model) {
    auto got = dom->StoreRead(path);
    ASSERT_TRUE(got.has_value()) << path;
    EXPECT_EQ(*got, value) << path;
  }
  ex.RunUntilIdle();  // Drain watch events.
}

INSTANTIATE_TEST_SUITE_P(Seeds, XenstoreFuzz, ::testing::Range(1, FuzzSeedEnd(6)));

// --- Codec round-trips over random packets. ---

class CodecFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CodecFuzz, EthernetRoundTripRandomPackets) {
  Rng rng(GetParam() * 1000 + 7);
  for (int i = 0; i < 300; ++i) {
    EthernetFrame frame;
    frame.src = MacAddr::FromId(static_cast<uint32_t>(rng.NextU64()));
    frame.dst = MacAddr::FromId(static_cast<uint32_t>(rng.NextU64()));
    frame.ethertype = kEtherTypeIpv4;
    Ipv4Packet p;
    p.src = Ipv4Addr{static_cast<uint32_t>(rng.NextU64())};
    p.dst = Ipv4Addr{static_cast<uint32_t>(rng.NextU64())};
    p.id = static_cast<uint16_t>(rng.NextU64());
    p.ttl = static_cast<uint8_t>(1 + rng.NextBelow(255));
    const size_t payload = rng.NextBelow(1200);
    switch (rng.NextBelow(3)) {
      case 0: {
        p.proto = kIpProtoUdp;
        UdpDatagram u;
        u.src_port = static_cast<uint16_t>(rng.NextU64());
        u.dst_port = static_cast<uint16_t>(rng.NextU64());
        u.payload.resize(payload);
        for (auto& b : u.payload) {
          b = static_cast<uint8_t>(rng.NextU64());
        }
        p.l4 = std::move(u);
        break;
      }
      case 1: {
        p.proto = kIpProtoTcp;
        TcpSegment t;
        t.src_port = static_cast<uint16_t>(rng.NextU64());
        t.dst_port = static_cast<uint16_t>(rng.NextU64());
        t.seq = static_cast<uint32_t>(rng.NextU64());
        t.ack = static_cast<uint32_t>(rng.NextU64());
        t.syn = rng.NextBool(0.2);
        t.fin = rng.NextBool(0.2);
        t.ack_flag = rng.NextBool(0.8);
        t.rst = rng.NextBool(0.05);
        t.window = static_cast<uint16_t>(rng.NextU64());
        t.payload.resize(payload);
        for (auto& b : t.payload) {
          b = static_cast<uint8_t>(rng.NextU64());
        }
        p.l4 = std::move(t);
        break;
      }
      default: {
        p.proto = kIpProtoIcmp;
        IcmpMessage m;
        m.is_echo_request = rng.NextBool(0.5);
        m.ident = static_cast<uint16_t>(rng.NextU64());
        m.sequence = static_cast<uint16_t>(rng.NextU64());
        m.payload.resize(payload);
        p.l4 = std::move(m);
        break;
      }
    }
    frame.payload = std::move(p);

    Buffer bytes = SerializeEthernet(frame);
    auto parsed = ParseEthernet(bytes);
    ASSERT_TRUE(parsed.has_value()) << "iteration " << i;
    ASSERT_NE(parsed->ip(), nullptr);
    EXPECT_EQ(parsed->ip()->src, frame.ip()->src);
    EXPECT_EQ(parsed->ip()->dst, frame.ip()->dst);
    EXPECT_EQ(parsed->ip()->proto, frame.ip()->proto);
    EXPECT_EQ(parsed->ip()->L4Bytes(), frame.ip()->L4Bytes());
    // Re-serialization is byte-identical (canonical encoding).
    EXPECT_EQ(SerializeEthernet(*parsed), bytes);
  }
}

TEST_P(CodecFuzz, ParserRejectsRandomGarbageGracefully) {
  Rng rng(GetParam() * 77 + 3);
  for (int i = 0; i < 500; ++i) {
    Buffer junk(rng.NextBelow(200));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    // Must never crash; almost always rejects (checksums).
    ParseEthernet(junk);
    ParseIpv4(junk);
    ParseArp(junk);
    ParseUdp(junk, Ipv4Addr{1}, Ipv4Addr{2});
    ParseTcp(junk, Ipv4Addr{1}, Ipv4Addr{2});
    ParseIcmp(junk);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range(1, FuzzSeedEnd(5)));

// --- Fragmentation round-trip property. ---

class FragFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FragFuzz, FragmentReassembleIdentity) {
  Rng rng(GetParam());
  Ipv4Reassembler reasm;
  for (int i = 0; i < 50; ++i) {
    Ipv4Packet p;
    p.src = Ipv4Addr::FromOctets(10, 0, 0, 1);
    p.dst = Ipv4Addr::FromOctets(10, 0, 0, 2);
    p.proto = kIpProtoUdp;
    p.id = static_cast<uint16_t>(i + GetParam() * 100);
    UdpDatagram u;
    u.src_port = 1;
    u.dst_port = 2;
    u.payload.resize(1 + rng.NextBelow(20000));
    for (auto& b : u.payload) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    const uint64_t digest = Fnv1a(u.payload);
    const size_t size = u.payload.size();
    p.l4 = std::move(u);

    auto frags = FragmentIpv4(p);
    // Shuffle fragments.
    for (size_t k = frags.size(); k > 1; --k) {
      std::swap(frags[k - 1], frags[rng.NextBelow(k)]);
    }
    std::optional<Ipv4Packet> whole;
    for (const auto& f : frags) {
      auto r = reasm.Add(f);
      if (r.has_value()) {
        whole = r;
      }
    }
    ASSERT_TRUE(whole.has_value()) << "size " << size;
    const UdpDatagram& out = std::get<UdpDatagram>(whole->l4);
    ASSERT_EQ(out.payload.size(), size);
    EXPECT_EQ(Fnv1a(out.payload), digest);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragFuzz, ::testing::Range(1, FuzzSeedEnd(5)));

// --- ROP scanner determinism and monotonicity. ---

TEST(RopPropertyTest, ScanIsDeterministic) {
  const GadgetCounts a = AnalyzeProfile(KiteNetworkProfile(), 0.02);
  const GadgetCounts b = AnalyzeProfile(KiteNetworkProfile(), 0.02);
  EXPECT_EQ(a.total, b.total);
  for (int c = 0; c < kInsnClassCount; ++c) {
    EXPECT_EQ(a.by_class[c], b.by_class[c]);
  }
}

TEST(RopPropertyTest, TotalEqualsSumOfCategories) {
  const GadgetCounts counts = AnalyzeProfile(DefaultLinuxProfile(), 0.02);
  uint64_t sum = 0;
  for (int c = 0; c < kInsnClassCount; ++c) {
    sum += counts.by_class[c];
  }
  EXPECT_EQ(counts.total, sum);
}

// --- Grant table invariants under random schedules. ---

class GrantFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GrantFuzz, MapCountsNeverLeakOrUnderflow) {
  Executor ex;
  Hypervisor hv(&ex);
  Domain* owner = hv.CreateDomain("owner", 1, 512);
  Domain* peer = hv.CreateDomain("peer", 1, 512);
  Rng rng(GetParam());

  std::vector<GrantRef> granted;
  std::vector<MappedGrant> maps;
  for (int op = 0; op < 2000; ++op) {
    switch (rng.NextBelow(4)) {
      case 0: {  // Grant a new page.
        granted.push_back(
            owner->grant_table().GrantAccess(peer->id(), AllocPage(), rng.NextBool(0.3)));
        break;
      }
      case 1: {  // Map a random grant.
        if (!granted.empty()) {
          GrantRef ref = granted[rng.NextBelow(granted.size())];
          MappedGrant m = hv.GrantMap(peer, owner->id(), ref, /*write_access=*/false);
          if (m.valid()) {
            maps.push_back(std::move(m));
          }
        }
        break;
      }
      case 2: {  // Unmap a random mapping.
        if (!maps.empty()) {
          const size_t idx = rng.NextBelow(maps.size());
          maps[idx] = std::move(maps.back());
          maps.pop_back();
        }
        break;
      }
      case 3: {  // Try to end a random grant (must fail while mapped).
        if (!granted.empty()) {
          const size_t idx = rng.NextBelow(granted.size());
          GrantRef ref = granted[idx];
          GrantTable::Entry* e = owner->grant_table().Lookup(ref);
          const bool was_mapped = e != nullptr && e->active_maps > 0;
          const bool ended = owner->grant_table().EndAccess(ref);
          if (was_mapped) {
            ASSERT_FALSE(ended);
          }
          if (ended) {
            granted[idx] = granted.back();
            granted.pop_back();
          }
        }
        break;
      }
    }
    ASSERT_EQ(owner->grant_table().total_maps_outstanding(),
              static_cast<int>(maps.size()));
  }
  maps.clear();
  EXPECT_EQ(owner->grant_table().total_maps_outstanding(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrantFuzz, ::testing::Range(1, FuzzSeedEnd(6)));

}  // namespace
}  // namespace kite
