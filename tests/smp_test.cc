// Multi-vCPU driver domains (paper §3.1: "our design can easily support
// many devices ... since Kite supports multiple cores", §5: "we support
// multiple vCPUs"). Netback instances shard round-robin across the domain's
// vCPUs; with two guests streaming concurrently, two vCPUs deliver more
// aggregate backend throughput than one.
#include <gtest/gtest.h>

#include "src/core/kite.h"
#include "src/workloads/netbench.h"

namespace kite {
namespace {

struct SmpResult {
  double aggregate_gbps = 0;
  SimDuration vcpu0_busy;
  SimDuration vcpu1_busy;
};

SmpResult RunTwoGuestStreams(int vcpus) {
  KiteSystem sys;
  DriverDomainConfig config;
  config.vcpus = vcpus;
  NetworkDomain* nd = sys.CreateNetworkDomain(config);
  GuestVm* g1 = sys.CreateGuest("g1");
  GuestVm* g2 = sys.CreateGuest("g2");
  sys.AttachVif(g1, nd, Ipv4Addr::FromOctets(10, 0, 0, 10));
  sys.AttachVif(g2, nd, Ipv4Addr::FromOctets(10, 0, 0, 11));
  EXPECT_TRUE(sys.WaitConnected(g1));
  EXPECT_TRUE(sys.WaitConnected(g2));
  sys.RunFor(Millis(2));  // Let the network app add both VIFs to the bridge.

  // Guest→guest streams in both directions exercise both instances'
  // pusher/soft_start threads without sharing the single client NIC.
  NuttcpConfig ncfg;
  ncfg.offered_gbps = 6.0;
  ncfg.datagram_bytes = 1472;  // Single-fragment.
  ncfg.duration = Millis(100);
  NuttcpUdp a_to_b(g1->stack(), g2->stack(), Ipv4Addr::FromOctets(10, 0, 0, 11), ncfg);
  NuttcpUdp b_to_a(g2->stack(), g1->stack(), Ipv4Addr::FromOctets(10, 0, 0, 10), ncfg);
  int done = 0;
  SmpResult out;
  a_to_b.Run([&](const NuttcpResult& r) {
    ++done;
    out.aggregate_gbps += r.goodput_gbps;
  });
  b_to_a.Run([&](const NuttcpResult& r) {
    ++done;
    out.aggregate_gbps += r.goodput_gbps;
  });
  EXPECT_TRUE(sys.WaitUntil([&] { return done == 2; }, Seconds(30)));
  out.vcpu0_busy = nd->domain()->vcpu(0)->busy_total();
  if (vcpus > 1) {
    out.vcpu1_busy = nd->domain()->vcpu(1)->busy_total();
  }
  return out;
}

TEST(SmpTest, TwoVcpusScaleBidirectionalGuestTraffic) {
  const SmpResult one = RunTwoGuestStreams(1);
  const SmpResult two = RunTwoGuestStreams(2);
  // Each guest↔guest direction crosses two netback instances; with 2 vCPUs
  // the instances' threads run on different cores.
  EXPECT_GT(two.aggregate_gbps, one.aggregate_gbps * 1.2)
      << "1 vCPU: " << one.aggregate_gbps << " Gbps, 2 vCPUs: "
      << two.aggregate_gbps << " Gbps";
  // Work actually landed on the second vCPU.
  EXPECT_GT(two.vcpu1_busy.ns(), 0);
}

TEST(SmpTest, InstancesShardAcrossVcpus) {
  KiteSystem sys;
  DriverDomainConfig config;
  config.vcpus = 2;
  NetworkDomain* nd = sys.CreateNetworkDomain(config);
  GuestVm* g1 = sys.CreateGuest("g1");
  GuestVm* g2 = sys.CreateGuest("g2");
  sys.AttachVif(g1, nd, Ipv4Addr::FromOctets(10, 0, 0, 10));
  sys.AttachVif(g2, nd, Ipv4Addr::FromOctets(10, 0, 0, 11));
  ASSERT_TRUE(sys.WaitConnected(g1));
  ASSERT_TRUE(sys.WaitConnected(g2));
  sys.RunFor(Millis(2));  // Let the network app add both VIFs to the bridge.
  EXPECT_EQ(nd->driver()->instance_count(), 2);

  // Ping both guests; both vCPUs accrue work (instance 1 on vCPU 0,
  // instance 2 on vCPU 1).
  int pings = 0;
  sys.client()->stack()->Ping(Ipv4Addr::FromOctets(10, 0, 0, 10), 56,
                              [&](bool ok, SimDuration) { pings += ok; });
  sys.client()->stack()->Ping(Ipv4Addr::FromOctets(10, 0, 0, 11), 56,
                              [&](bool ok, SimDuration) { pings += ok; });
  ASSERT_TRUE(sys.WaitUntil([&] { return pings == 2; }, Seconds(2)));
  EXPECT_GT(nd->domain()->vcpu(0)->busy_total().ns(), 0);
  EXPECT_GT(nd->domain()->vcpu(1)->busy_total().ns(), 0);
}

TEST(SmpTest, SingleVcpuStillWorksWithManyGuests) {
  KiteSystem sys;
  NetworkDomain* nd = sys.CreateNetworkDomain();  // 1 vCPU default.
  int pings = 0;
  for (int i = 0; i < 4; ++i) {
    GuestVm* g = sys.CreateGuest(StrFormat("g%d", i));
    const Ipv4Addr ip = Ipv4Addr::FromOctets(10, 0, 0, static_cast<uint8_t>(20 + i));
    sys.AttachVif(g, nd, ip);
    ASSERT_TRUE(sys.WaitConnected(g));
    sys.RunFor(Millis(2));
    sys.client()->stack()->Ping(ip, 56, [&](bool ok, SimDuration) { pings += ok; });
  }
  ASSERT_TRUE(sys.WaitUntil([&] { return pings == 4; }, Seconds(5)));
  EXPECT_EQ(nd->driver()->instance_count(), 4);
  EXPECT_EQ(nd->bridge()->port_count(), 5);  // Physical IF + 4 VIFs.
}

}  // namespace
}  // namespace kite
