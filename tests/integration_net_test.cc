// End-to-end integration tests: client machine ↔ guest DomU through a
// network driver domain (Kite and Linux personalities) — exercising the
// full path: NIC → bridge → netback rings/grants/events → netfront → guest
// stack, and back.
#include <gtest/gtest.h>

#include "src/core/kite.h"

namespace kite {
namespace {

const Ipv4Addr kGuestIp = Ipv4Addr::FromOctets(10, 0, 0, 10);

class NetIntegrationTest : public ::testing::TestWithParam<OsKind> {
 protected:
  void Build() {
    sys_ = std::make_unique<KiteSystem>();
    DriverDomainConfig config;
    config.os = GetParam();
    netdom_ = sys_->CreateNetworkDomain(config);
    guest_ = sys_->CreateGuest("server-guest");
    sys_->AttachVif(guest_, netdom_, kGuestIp);
    ASSERT_TRUE(sys_->WaitConnected(guest_));
  }

  std::unique_ptr<KiteSystem> sys_;
  NetworkDomain* netdom_ = nullptr;
  GuestVm* guest_ = nullptr;
};

TEST_P(NetIntegrationTest, FrontendConnectsThroughXenbus) {
  Build();
  EXPECT_TRUE(guest_->netfront()->connected());
  EXPECT_EQ(netdom_->driver()->instance_count(), 1);
  // The network app added the VIF to the bridge: physical IF + 1 VIF.
  sys_->RunFor(Millis(1));
  EXPECT_EQ(netdom_->bridge()->port_count(), 2);
  EXPECT_EQ(netdom_->app()->vifs_added(), 1);
}

TEST_P(NetIntegrationTest, ClientCanPingGuest) {
  Build();
  bool ok = false;
  SimDuration rtt;
  sys_->client()->stack()->Ping(kGuestIp, 56, [&](bool r, SimDuration d) {
    ok = r;
    rtt = d;
  });
  ASSERT_TRUE(sys_->WaitUntil([&] { return ok; }, Seconds(2)));
  EXPECT_GT(rtt.ns(), 0);
  EXPECT_LT(rtt.ms(), 2.0);
}

TEST_P(NetIntegrationTest, GuestCanPingClient) {
  Build();
  bool ok = false;
  guest_->stack()->Ping(sys_->client_ip(), 56, [&](bool r, SimDuration) { ok = r; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return ok; }, Seconds(2)));
}

TEST_P(NetIntegrationTest, UdpPayloadIntegrityThroughDomain) {
  Build();
  auto server = guest_->stack()->OpenUdp();
  server->Bind(9000);
  Buffer got;
  server->SetRecvCallback(
      [&](Ipv4Addr, uint16_t, const Buffer& payload) { got = payload; });

  Rng rng(5);
  Buffer sent(4096);
  for (auto& b : sent) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  auto client_sock = sys_->client()->stack()->OpenUdp();
  client_sock->SendTo(kGuestIp, 9000, sent);
  ASSERT_TRUE(sys_->WaitUntil([&] { return !got.empty(); }, Seconds(2)));
  EXPECT_EQ(Fnv1a(got), Fnv1a(sent));
}

TEST_P(NetIntegrationTest, TcpEchoThroughDomain) {
  Build();
  guest_->stack()->ListenTcp(7777, [](TcpConn* conn) {
    conn->SetDataCallback([conn](std::span<const uint8_t> data) {
      conn->Send(Buffer(data.begin(), data.end()));
    });
  });
  Buffer reply;
  Buffer msg(20000, 0x77);
  TcpConn* c = sys_->client()->stack()->ConnectTcp(
      kGuestIp, 7777, [&](TcpConn* conn) { conn->Send(msg); });
  c->SetDataCallback([&](std::span<const uint8_t> data) {
    reply.insert(reply.end(), data.begin(), data.end());
  });
  ASSERT_TRUE(sys_->WaitUntil([&] { return reply.size() >= msg.size(); }, Seconds(5)));
  EXPECT_EQ(Fnv1a(reply), Fnv1a(msg));
}

TEST_P(NetIntegrationTest, MultipleGuestsShareTheNic) {
  Build();
  GuestVm* guest2 = sys_->CreateGuest("guest2");
  sys_->AttachVif(guest2, netdom_, Ipv4Addr::FromOctets(10, 0, 0, 11));
  ASSERT_TRUE(sys_->WaitConnected(guest2));
  EXPECT_EQ(netdom_->driver()->instance_count(), 2);
  sys_->RunFor(Millis(1));
  EXPECT_EQ(netdom_->bridge()->port_count(), 3);

  // Both guests reachable from the client.
  int pings_ok = 0;
  sys_->client()->stack()->Ping(kGuestIp, 56,
                                [&](bool r, SimDuration) { pings_ok += r; });
  sys_->client()->stack()->Ping(Ipv4Addr::FromOctets(10, 0, 0, 11), 56,
                                [&](bool r, SimDuration) { pings_ok += r; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return pings_ok == 2; }, Seconds(2)));

  // Guest-to-guest traffic is bridged inside the driver domain.
  bool g2g = false;
  guest_->stack()->Ping(Ipv4Addr::FromOctets(10, 0, 0, 11), 56,
                        [&](bool r, SimDuration) { g2g = r; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return g2g; }, Seconds(2)));
}

TEST_P(NetIntegrationTest, SustainedBidirectionalTraffic) {
  Build();
  auto server = guest_->stack()->OpenUdp();
  server->Bind(9000);
  uint64_t server_rx = 0;
  server->SetRecvCallback([&](Ipv4Addr src, uint16_t port, const Buffer& payload) {
    ++server_rx;
  });
  auto client_sock = sys_->client()->stack()->OpenUdp();
  // 500 datagrams paced at 20 us (well under capacity: no loss expected).
  for (int i = 0; i < 500; ++i) {
    sys_->executor().PostAfter(Micros(20 * i), [&client_sock] {
      client_sock->SendTo(kGuestIp, 9000, Buffer(1000, 0x11));
    });
  }
  sys_->RunFor(Millis(100));
  EXPECT_EQ(server_rx, 500u);
  EXPECT_EQ(guest_->netfront()->rx_errors(), 0u);
}

TEST_P(NetIntegrationTest, EventAndGrantAccountingNonzero) {
  Build();
  bool ok = false;
  sys_->client()->stack()->Ping(kGuestIp, 56, [&](bool r, SimDuration) { ok = r; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return ok; }, Seconds(2)));
  // The data moved via hypervisor copies, not mappings (rx-copy mode).
  EXPECT_GT(sys_->hv().grant_copies(), 0u);
  EXPECT_GT(sys_->hv().events_sent(), 0u);
  EXPECT_GT(sys_->hv().events_delivered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Personalities, NetIntegrationTest,
                         ::testing::Values(OsKind::kKiteRumprun, OsKind::kUbuntuLinux),
                         [](const ::testing::TestParamInfo<OsKind>& info) {
                           return std::string(OsKindName(info.param));
                         });

TEST(NetLatencyComparisonTest, KiteHasLowerPingLatencyThanLinux) {
  // The paper's Fig 7 headline: Kite's netback answers pings faster.
  auto measure = [](OsKind os) {
    KiteSystem sys;
    DriverDomainConfig config;
    config.os = os;
    NetworkDomain* nd = sys.CreateNetworkDomain(config);
    GuestVm* guest = sys.CreateGuest("g");
    sys.AttachVif(guest, nd, kGuestIp);
    EXPECT_TRUE(sys.WaitConnected(guest));
    // Warm up ARP.
    bool warm = false;
    sys.client()->stack()->Ping(kGuestIp, 56, [&](bool, SimDuration) { warm = true; });
    sys.WaitUntil([&] { return warm; }, Seconds(2));
    // Paced pings (1 s apart → cold path, as in the paper's ping test).
    Stats rtt_ms;
    for (int i = 0; i < 5; ++i) {
      sys.RunFor(Seconds(1));
      bool done = false;
      sys.client()->stack()->Ping(kGuestIp, 56, [&](bool r, SimDuration d) {
        done = true;
        if (r) {
          rtt_ms.Add(d.ms());
        }
      });
      sys.WaitUntil([&] { return done; }, Seconds(2));
    }
    return rtt_ms.Mean();
  };
  const double kite = measure(OsKind::kKiteRumprun);
  const double linux = measure(OsKind::kUbuntuLinux);
  EXPECT_LT(kite, linux);
  // Shape check vs the paper's 0.31 ms / 0.51 ms.
  EXPECT_GT(kite, 0.15);
  EXPECT_LT(kite, 0.45);
  EXPECT_GT(linux, 0.35);
  EXPECT_LT(linux, 0.70);
}

TEST(DriverDomainRestartTest, RestartedDomainServesNewGuests) {
  KiteSystem sys;
  NetworkDomain* nd = sys.CreateNetworkDomain();
  GuestVm* guest = sys.CreateGuest("g1");
  sys.AttachVif(guest, nd, kGuestIp);
  ASSERT_TRUE(sys.WaitConnected(guest));

  NetworkDomain* nd2 = sys.RestartNetworkDomain(nd);
  ASSERT_NE(nd2, nullptr);
  GuestVm* guest2 = sys.CreateGuest("g2");
  sys.AttachVif(guest2, nd2, Ipv4Addr::FromOctets(10, 0, 0, 20));
  ASSERT_TRUE(sys.WaitConnected(guest2));
  bool ok = false;
  sys.client()->stack()->Ping(Ipv4Addr::FromOctets(10, 0, 0, 20), 56,
                              [&](bool r, SimDuration) { ok = r; });
  EXPECT_TRUE(sys.WaitUntil([&] { return ok; }, Seconds(2)));
}

TEST(BootTimeTest, KiteBoots10xFasterThanLinux) {
  auto boot_time = [](OsKind os) {
    KiteSystem::Params params;
    params.instant_boot = false;
    KiteSystem sys(params);
    DriverDomainConfig config;
    config.os = os;
    NetworkDomain* nd = sys.CreateNetworkDomain(config);
    EXPECT_TRUE(sys.WaitUntil([&] { return nd->booted(); }, Seconds(200)));
    return nd->boot_completed_at().seconds();
  };
  const double kite = boot_time(OsKind::kKiteRumprun);
  const double linux = boot_time(OsKind::kUbuntuLinux);
  EXPECT_NEAR(kite, 7.0, 0.5);    // Paper Fig 4c.
  EXPECT_NEAR(linux, 75.0, 2.0);  // Paper Fig 4c.
  EXPECT_GE(linux / kite, 10.0);
}

}  // namespace
}  // namespace kite
