// Tests for the BMK scheduler (cancellation safety, cooperative semantics)
// and SimpleFs (allocation invariants, extent reuse, randomized property
// checks).
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/bmk/sched.h"
#include "src/core/kite.h"
#include "src/workloads/fs.h"

namespace kite {
namespace {

// --- BmkSched. ---

Task SleeperThread(BmkSched* sched, int* wakes) {
  for (;;) {
    co_await sched->Sleep(Millis(1));
    ++*wakes;
  }
}

TEST(BmkSchedTest, SleepLoopRuns) {
  Executor ex;
  Vcpu cpu(&ex);
  BmkSched sched(&ex, &cpu);
  int wakes = 0;
  sched.Spawn("sleeper", [&] { return SleeperThread(&sched, &wakes); });
  ex.RunFor(Millis(10));
  EXPECT_GE(wakes, 9);
  EXPECT_EQ(sched.thread_count(), 1);
}

TEST(BmkSchedTest, DestructionCancelsParkedTimers) {
  Executor ex;
  Vcpu cpu(&ex);
  int wakes = 0;
  {
    BmkSched sched(&ex, &cpu);
    sched.Spawn("sleeper", [&] { return SleeperThread(&sched, &wakes); });
    ex.RunFor(Millis(3));
    EXPECT_GT(sched.parked_timers(), 0u);
  }  // Scheduler destroyed with a thread parked on a timer.
  ex.RunFor(Millis(10));  // Pending executor events must be harmless no-ops.
  EXPECT_LE(wakes, 4);
}

Task CpuHog(BmkSched* sched, int* iterations, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sched->Run(Micros(100));
    ++*iterations;
  }
}

TEST(BmkSchedTest, RunSerializesOnVcpu) {
  Executor ex;
  Vcpu cpu(&ex);
  BmkSched sched(&ex, &cpu);
  int a = 0;
  int b = 0;
  sched.Spawn("hog-a", [&] { return CpuHog(&sched, &a, 10); });
  sched.Spawn("hog-b", [&] { return CpuHog(&sched, &b, 10); });
  ex.RunUntilIdle();
  EXPECT_EQ(a, 10);
  EXPECT_EQ(b, 10);
  // Total CPU time = 20 * 100 us, serialized.
  EXPECT_EQ(cpu.busy_total().ns(), Micros(2000).ns());
  EXPECT_EQ(ex.Now().ns(), Micros(2000).ns());
}

Task Yielder(BmkSched* sched, std::vector<int>* order, int id, int n) {
  for (int i = 0; i < n; ++i) {
    order->push_back(id);
    co_await sched->Yield();
  }
}

TEST(BmkSchedTest, YieldInterleavesCooperatively) {
  Executor ex;
  Vcpu cpu(&ex);
  BmkSched sched(&ex, &cpu);
  std::vector<int> order;
  sched.Spawn("y1", [&] { return Yielder(&sched, &order, 1, 3); });
  sched.Spawn("y2", [&] { return Yielder(&sched, &order, 2, 3); });
  ex.RunUntilIdle();
  ASSERT_EQ(order.size(), 6u);
  // Eager starts: 1, 2, then strict alternation.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
  EXPECT_GE(sched.yield_count(), 6u);
}

// --- SimpleFs properties. ---

class FsTest : public ::testing::Test {
 protected:
  FsTest() {
    KiteSystem::Params params;
    params.disk.capacity_bytes = 1LL * 1024 * 1024 * 1024;
    sys_ = std::make_unique<KiteSystem>(params);
    stordom_ = sys_->CreateStorageDomain();
    guest_ = sys_->CreateGuest("g");
    sys_->AttachVbd(guest_, stordom_);
    EXPECT_TRUE(sys_->WaitConnected(guest_));
    fs_ = std::make_unique<SimpleFs>(guest_->blkfront());
  }

  std::unique_ptr<KiteSystem> sys_;
  StorageDomain* stordom_ = nullptr;
  GuestVm* guest_ = nullptr;
  std::unique_ptr<SimpleFs> fs_;
};

TEST_F(FsTest, CreateDeleteRestoresFreeSpace) {
  const int64_t before = fs_->free_bytes();
  ASSERT_TRUE(fs_->Create("a", 10 * 1024 * 1024));
  EXPECT_EQ(fs_->free_bytes(), before - 10 * 1024 * 1024);
  ASSERT_TRUE(fs_->Delete("a"));
  EXPECT_EQ(fs_->free_bytes(), before);
}

TEST_F(FsTest, CreateRejectsDuplicatesAndOversize) {
  ASSERT_TRUE(fs_->Create("dup", 4096));
  EXPECT_FALSE(fs_->Create("dup", 4096));
  EXPECT_FALSE(fs_->Create("huge", fs_->free_bytes() + 4096));
  // Failed allocation must not leak space.
  EXPECT_TRUE(fs_->Create("ok", fs_->free_bytes()));
}

TEST_F(FsTest, ReadBeyondEofFails) {
  ASSERT_TRUE(fs_->Create("f", 8192));
  bool result = true;
  fs_->Read("f", 8192, 4096, [&](bool ok) { result = ok; });
  sys_->RunUntilIdle();
  EXPECT_FALSE(result);
  bool write_result = true;
  fs_->Write("f", 4096, 8192, [&](bool ok) { write_result = ok; });
  sys_->RunUntilIdle();
  EXPECT_FALSE(write_result);
}

TEST_F(FsTest, OpsOnMissingFileFail) {
  bool ok = true;
  fs_->Read("ghost", 0, 512, [&](bool r) { ok = r; });
  sys_->RunUntilIdle();
  EXPECT_FALSE(ok);
  EXPECT_FALSE(fs_->Delete("ghost"));
  EXPECT_FALSE(fs_->Stat("ghost"));
  EXPECT_EQ(fs_->FileSize("ghost"), -1);
}

TEST_F(FsTest, AppendGrowsAcrossFragmentedSpace) {
  // Fragment free space with alternating files.
  ASSERT_TRUE(fs_->CreateMany("frag.", 16, 4 * 1024 * 1024));
  for (int i = 0; i < 16; i += 2) {
    ASSERT_TRUE(fs_->Delete(StrFormat("frag.%06d", i)));
  }
  ASSERT_TRUE(fs_->Create("grow", 1024 * 1024));
  int appended = 0;
  for (int i = 0; i < 8; ++i) {
    fs_->Append("grow", 3 * 1024 * 1024, [&](bool ok) { appended += ok; });
  }
  sys_->RunUntilIdle();
  EXPECT_EQ(appended, 8);
  EXPECT_EQ(fs_->FileSize("grow"), 1024 * 1024 + 8LL * 3 * 1024 * 1024);
}

TEST_F(FsTest, RandomizedCreateDeleteConservesSpace) {
  Rng rng(42);
  const int64_t initial_free = fs_->free_bytes();
  std::map<std::string, int64_t> live;
  int64_t live_bytes = 0;
  for (int op = 0; op < 500; ++op) {
    if (live.empty() || rng.NextBool(0.6)) {
      const std::string name = StrFormat("r%04d", op);
      const int64_t size =
          static_cast<int64_t>(rng.NextInRange(1, 256)) * kSectorSize;
      if (fs_->Create(name, size)) {
        live[name] = size;
        live_bytes += size;
      }
    } else {
      auto it = live.begin();
      std::advance(it, rng.NextBelow(live.size()));
      ASSERT_TRUE(fs_->Delete(it->first));
      live_bytes -= it->second;
      live.erase(it);
    }
    ASSERT_EQ(fs_->free_bytes(), initial_free - live_bytes) << "op " << op;
  }
  for (const auto& [name, size] : live) {
    ASSERT_TRUE(fs_->Delete(name));
  }
  EXPECT_EQ(fs_->free_bytes(), initial_free);
  sys_->RunUntilIdle();  // Drain journal writes.
}

TEST_F(FsTest, MetadataJournalWritesOnNamespaceChanges) {
  const uint64_t before = fs_->metadata_writes();
  fs_->Create("j1", 4096);
  fs_->Delete("j1");
  EXPECT_EQ(fs_->metadata_writes(), before + 2);
  fs_->SetJournalEnabled(false);
  fs_->Create("j2", 4096);
  EXPECT_EQ(fs_->metadata_writes(), before + 2);
  sys_->RunUntilIdle();
}

TEST_F(FsTest, ConcurrentMixedOpsAllComplete) {
  ASSERT_TRUE(fs_->CreateMany("c.", 8, 1024 * 1024));
  Rng rng(7);
  int completed = 0;
  const int kOps = 300;
  for (int i = 0; i < kOps; ++i) {
    const std::string f = StrFormat("c.%06d", static_cast<int>(rng.NextBelow(8)));
    const int64_t offset =
        static_cast<int64_t>(rng.NextBelow(128)) * kSectorSize;
    if (rng.NextBool(0.5)) {
      fs_->Read(f, offset, 16 * 1024, [&](bool) { ++completed; });
    } else {
      fs_->Write(f, offset, 16 * 1024, [&](bool) { ++completed; });
    }
  }
  ASSERT_TRUE(sys_->WaitUntil([&] { return completed == kOps; }, Seconds(30)));
}

}  // namespace
}  // namespace kite
