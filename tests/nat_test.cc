// NAT tests: the driver domain's alternative organization to bridging
// (paper §3.1). Two inside hosts share one public IP; flows are rewritten
// and demultiplexed per protocol + port/ident.
#include <gtest/gtest.h>

#include "src/net/nat.h"
#include "src/net/nic.h"
#include "src/net/stack.h"
#include "src/net/tcp.h"

namespace kite {
namespace {

const Ipv4Addr kPublicIp = Ipv4Addr::FromOctets(10, 0, 0, 1);
const Ipv4Addr kClientIp = Ipv4Addr::FromOctets(10, 0, 0, 2);
const Ipv4Addr kInsideA = Ipv4Addr::FromOctets(192, 168, 1, 10);
const Ipv4Addr kInsideB = Ipv4Addr::FromOctets(192, 168, 1, 11);

// Software interface pair: frames output on one side arrive as input on the
// other (like a VIF↔netfront pair without the rings).
class PipeIf : public NetIf {
 public:
  PipeIf(std::string name, MacAddr mac, Executor* ex)
      : NetIf(std::move(name), mac), ex_(ex) {
    SetUp(true);
  }
  void Connect(PipeIf* peer) { peer_ = peer; }
  void Output(const EthernetFrame& frame) override {
    CountTx(frame);
    ex_->Post([peer = peer_, frame] { peer->InjectInput(frame); });
  }

 private:
  Executor* ex_;
  PipeIf* peer_ = nullptr;
};

class NatTest : public ::testing::Test {
 protected:
  NatTest() {
    // Outside: NAT's NIC back-to-back with the client machine.
    out_nic_ = std::make_unique<Nic>(&ex_, "o", "natout", MacAddr::FromId(1));
    client_nic_ = std::make_unique<Nic>(&ex_, "c", "client", MacAddr::FromId(2));
    Nic::ConnectBackToBack(out_nic_.get(), client_nic_.get());
    client_ = std::make_unique<EtherStack>(&ex_, nullptr, client_nic_->netif());
    client_->ConfigureIp(kClientIp);

    nat_ = std::make_unique<Nat>(nullptr, out_nic_->netif(), kPublicIp);

    // Inside host A and B, each behind a pipe pair whose NAT-side end is an
    // inside port of the NAT.
    MakeInside(&host_a_, &host_a_if_, &nat_a_, kInsideA, 10);
    MakeInside(&host_b_, &host_b_if_, &nat_b_, kInsideB, 20);
  }

  void MakeInside(std::unique_ptr<EtherStack>* stack, std::unique_ptr<PipeIf>* host_if,
                  std::unique_ptr<PipeIf>* nat_if, Ipv4Addr ip, uint32_t mac_base) {
    *host_if = std::make_unique<PipeIf>("h", MacAddr::FromId(mac_base), &ex_);
    *nat_if = std::make_unique<PipeIf>("n", MacAddr::FromId(mac_base + 1), &ex_);
    (*host_if)->Connect(nat_if->get());
    (*nat_if)->Connect(host_if->get());
    nat_->AddInside(nat_if->get());
    *stack = std::make_unique<EtherStack>(&ex_, nullptr, host_if->get());
    (*stack)->ConfigureIp(ip, /*netmask=*/0);  // Everything off-subnet → ARP → NAT answers.
  }

  Executor ex_;
  std::unique_ptr<Nic> out_nic_, client_nic_;
  std::unique_ptr<EtherStack> client_;
  std::unique_ptr<Nat> nat_;
  std::unique_ptr<PipeIf> host_a_if_, nat_a_, host_b_if_, nat_b_;
  std::unique_ptr<EtherStack> host_a_, host_b_;
};

TEST_F(NatTest, OutboundUdpIsRewrittenToPublicIp) {
  auto server = client_->OpenUdp();
  server->Bind(7000);
  Ipv4Addr seen_src;
  server->SetRecvCallback(
      [&](Ipv4Addr src, uint16_t, const Buffer&) { seen_src = src; });
  auto sock = host_a_->OpenUdp();
  sock->SendTo(kClientIp, 7000, Buffer{1, 2, 3});
  ex_.RunUntilIdle();
  EXPECT_EQ(seen_src, kPublicIp);  // Private address hidden.
  EXPECT_EQ(nat_->flow_count(), 1u);
  EXPECT_GE(nat_->translated_out(), 1u);
}

TEST_F(NatTest, UdpReplyIsRoutedBackInside) {
  auto server = client_->OpenUdp();
  server->Bind(7000);
  server->SetRecvCallback([&](Ipv4Addr src, uint16_t src_port, const Buffer&) {
    server->SendTo(src, src_port, Buffer{9, 9});
  });
  auto sock = host_a_->OpenUdp();
  Buffer got;
  sock->SetRecvCallback(
      [&](Ipv4Addr, uint16_t, const Buffer& payload) { got = payload; });
  sock->SendTo(kClientIp, 7000, Buffer{1});
  ex_.RunUntilIdle();
  EXPECT_EQ(got, (Buffer{9, 9}));
  EXPECT_GE(nat_->translated_in(), 1u);
}

TEST_F(NatTest, TwoInsideHostsSharePublicIpWithoutCrosstalk) {
  auto server = client_->OpenUdp();
  server->Bind(7000);
  server->SetRecvCallback([&](Ipv4Addr src, uint16_t src_port, const Buffer& payload) {
    server->SendTo(src, src_port, payload);  // Echo.
  });
  auto sock_a = host_a_->OpenUdp();
  auto sock_b = host_b_->OpenUdp();
  Buffer got_a, got_b;
  sock_a->SetRecvCallback([&](Ipv4Addr, uint16_t, const Buffer& p) { got_a = p; });
  sock_b->SetRecvCallback([&](Ipv4Addr, uint16_t, const Buffer& p) { got_b = p; });
  sock_a->SendTo(kClientIp, 7000, Buffer{0xaa});
  sock_b->SendTo(kClientIp, 7000, Buffer{0xbb});
  ex_.RunUntilIdle();
  EXPECT_EQ(got_a, (Buffer{0xaa}));
  EXPECT_EQ(got_b, (Buffer{0xbb}));
  EXPECT_EQ(nat_->flow_count(), 2u);
}

TEST_F(NatTest, OutboundPingTranslatesIcmpIdent) {
  bool ok = false;
  SimDuration rtt;
  host_a_->Ping(kClientIp, 32, [&](bool r, SimDuration d) {
    ok = r;
    rtt = d;
  });
  ex_.RunUntilIdle();
  EXPECT_TRUE(ok);
  EXPECT_GT(rtt.ns(), 0);
}

TEST_F(NatTest, TcpThroughNat) {
  client_->ListenTcp(8080, [](TcpConn* conn) {
    conn->SetDataCallback([conn](std::span<const uint8_t> data) {
      conn->Send(Buffer(data.begin(), data.end()));
    });
  });
  Buffer reply;
  TcpConn* c = host_a_->ConnectTcp(kClientIp, 8080, [](TcpConn* conn) {
    conn->Send(Buffer(20000, 0x42));
  });
  c->SetDataCallback([&](std::span<const uint8_t> d) {
    reply.insert(reply.end(), d.begin(), d.end());
  });
  ex_.RunUntilIdle();
  EXPECT_EQ(reply.size(), 20000u);
}

TEST_F(NatTest, UnsolicitedInboundIsDropped) {
  auto sock = client_->OpenUdp();
  // No flow exists for public port 12345: must be dropped, not forwarded.
  int received = 0;
  auto inside = host_a_->OpenUdp();
  inside->Bind(12345);
  inside->SetRecvCallback([&](Ipv4Addr, uint16_t, const Buffer&) { ++received; });
  sock->SendTo(kPublicIp, 12345, Buffer{1});
  ex_.RunUntilIdle();
  EXPECT_EQ(received, 0);
  EXPECT_GE(nat_->dropped_unmatched(), 1u);
}

TEST_F(NatTest, FlowsAreReusedNotDuplicated) {
  auto server = client_->OpenUdp();
  server->Bind(7000);
  auto sock = host_a_->OpenUdp();
  for (int i = 0; i < 10; ++i) {
    sock->SendTo(kClientIp, 7000, Buffer{static_cast<uint8_t>(i)});
  }
  ex_.RunUntilIdle();
  EXPECT_EQ(nat_->flow_count(), 1u);  // Same 5-tuple → one mapping.
  EXPECT_EQ(nat_->translated_out(), 10u);
}

}  // namespace
}  // namespace kite
