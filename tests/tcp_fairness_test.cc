// TCP fairness at a shared drop-tail bottleneck.
//
// 100 flows from 100 independent stacks converge on one bridge egress port
// whose queue drains at a fixed line rate with a finite drop-tail limit —
// the canonical congestion-control topology (a 100:1 incast). With honest
// loss behaviour the flows must self-clock into an approximately fair
// share: every flow's goodput within 2x of the mean, no flow starved, and
// the aggregate close to the drain rate. Also exercises the per-flow
// metric gauges end to end.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/bridge.h"
#include "src/net/netif.h"
#include "src/net/queue.h"
#include "src/net/stack.h"
#include "src/net/tcp.h"
#include "src/obs/metrics.h"
#include "src/sim/executor.h"

namespace kite {
namespace {

// Half of a veth pair: Output on one side is input on the other.
class PatchIf : public NetIf {
 public:
  PatchIf(std::string name, MacAddr mac) : NetIf(std::move(name), mac) {
    SetUp(true);
  }
  void SetPeer(NetIf* peer) { peer_ = peer; }
  void Output(const EthernetFrame& frame) override {
    CountTx(frame);
    if (peer_ != nullptr) {
      peer_->InjectInput(frame);
    }
  }

 private:
  NetIf* peer_ = nullptr;
};

constexpr int kFlows = 100;
constexpr uint16_t kServerPort = 7000;
constexpr size_t kSendBytes = 8 * 1024 * 1024;  // More than any flow can finish.
constexpr SimDuration kWindow = Seconds(2);

TEST(TcpFairnessTest, HundredFlowsShareDropTailBottleneckWithin2x) {
  Executor ex;
  MetricRegistry metrics;
  Bridge bridge("br0", nullptr);

  // Server behind the bottleneck port.
  const Ipv4Addr server_ip = Ipv4Addr::FromOctets(10, 0, 0, 1);
  const MacAddr server_mac = MacAddr::FromId(0x1000);
  PatchIf server_if("srv", server_mac);
  PatchIf server_port("srv-port", MacAddr::FromId(0x2000));
  server_if.SetPeer(&server_port);
  server_port.SetPeer(&server_if);
  bridge.AddIf(&server_port);
  StackParams server_params;
  server_params.metrics = &metrics;
  server_params.metrics_domain = "server";
  EtherStack server(&ex, nullptr, &server_if, server_params);
  server.ConfigureIp(server_ip);

  // The bottleneck: everything headed to the server serializes at 1 Gbps
  // through a 256-frame drop-tail queue.
  EgressQueueParams qp;
  qp.limit_frames = 256;
  qp.drain_gbps = 1.0;
  bridge.EnablePortQueue(&ex, &server_port, qp);

  // 100 client stacks, each on its own bridge port.
  std::vector<std::unique_ptr<PatchIf>> client_ifs;
  std::vector<std::unique_ptr<PatchIf>> client_ports;
  std::vector<std::unique_ptr<EtherStack>> clients;
  for (int i = 0; i < kFlows; ++i) {
    const MacAddr mac = MacAddr::FromId(0x100 + static_cast<uint32_t>(i));
    auto cif = std::make_unique<PatchIf>("c" + std::to_string(i), mac);
    auto cport = std::make_unique<PatchIf>("cp" + std::to_string(i),
                                           MacAddr::FromId(0x3000 + static_cast<uint32_t>(i)));
    cif->SetPeer(cport.get());
    cport->SetPeer(cif.get());
    bridge.AddIf(cport.get());
    StackParams sp;
    sp.metrics = &metrics;
    sp.metrics_domain = "client" + std::to_string(i);
    sp.per_flow_metrics = true;
    auto stack = std::make_unique<EtherStack>(&ex, nullptr, cif.get(), sp);
    const Ipv4Addr ip = Ipv4Addr::FromOctets(10, 0, 0, static_cast<uint8_t>(2 + i));
    stack->ConfigureIp(ip);
    stack->AddArpEntry(server_ip, server_mac);
    server.AddArpEntry(ip, mac);
    client_ifs.push_back(std::move(cif));
    client_ports.push_back(std::move(cport));
    clients.push_back(std::move(stack));
  }

  server.ListenTcp(kServerPort, [](TcpConn* conn) {
    conn->SetDataCallback([](std::span<const uint8_t>) {});
  });
  // Establish every connection while the network is quiet: a SYN dropped at
  // an already-full queue retries on the connect RTO (exponentially backed
  // off), so joining mid-congestion measures handshake lockout, not AIMD.
  std::vector<TcpConn*> conns(kFlows, nullptr);
  for (int i = 0; i < kFlows; ++i) {
    clients[i]->ConnectTcp(server_ip, kServerPort,
                           [&conns, i](TcpConn* conn) { conns[i] = conn; });
  }
  ex.RunFor(Millis(50));
  for (int i = 0; i < kFlows; ++i) {
    ASSERT_NE(conns[i], nullptr) << "flow " << i << " failed to connect";
  }

  // Stagger the senders slightly: 100 simultaneous 10-segment initial
  // windows into a 256-frame queue is a pathological synchronized incast
  // that knocks random flows into long RTO backoff before they have an RTT
  // sample. A paced start (one flow per 250 us) still oversubscribes the
  // port many times over, but lets fairness be a property of AIMD rather
  // than of who lost the opening coin toss.
  for (int i = 0; i < kFlows; ++i) {
    TcpConn* conn = conns[i];
    ex.PostAfter(Micros(250 * i),
                 [conn] { conn->Send(Buffer(kSendBytes, 0x5a)); });
  }

  // A fixed measurement window: goodput is what each flow delivered by the
  // cutoff, not time-to-completion (no flow can finish kSendBytes in it).
  ex.RunFor(kWindow);

  std::vector<uint64_t> delivered;
  for (const auto& [key, ledger] : server.tcp_ledgers()) {
    if (key.local_port == kServerPort) {
      delivered.push_back(ledger.delivered);
    }
  }
  ASSERT_EQ(delivered.size(), static_cast<size_t>(kFlows));

  uint64_t total = 0;
  uint64_t min_bytes = delivered[0];
  uint64_t max_bytes = delivered[0];
  for (uint64_t d : delivered) {
    total += d;
    min_bytes = std::min(min_bytes, d);
    max_bytes = std::max(max_bytes, d);
  }
  const double mean = static_cast<double>(total) / kFlows;
  EXPECT_GT(min_bytes, 0u) << "a flow starved at the bottleneck";
  EXPECT_LE(static_cast<double>(max_bytes), 2.0 * mean)
      << "max=" << max_bytes << " mean=" << mean;
  EXPECT_GE(static_cast<double>(min_bytes), 0.5 * mean)
      << "min=" << min_bytes << " mean=" << mean;
  // The bottleneck actually dropped (loss was exercised) yet the aggregate
  // still tracks the drain rate: 1 Gbps over the window is the wire-side
  // upper bound; goodput must be within [40%, 100%] of it.
  EXPECT_GT(bridge.queue_drops(), 0u);
  const double line_bytes = 1e9 / 8 * kWindow.seconds();
  EXPECT_GT(static_cast<double>(total), 0.4 * line_bytes);
  EXPECT_LT(static_cast<double>(total), line_bytes);

  // Per-flow gauges made it into the registry: one cwnd gauge per client
  // flow, and the loss showed up in somebody's retransmit counters.
  int cwnd_gauges = 0;
  double retransmits = 0;
  for (const auto& s : metrics.Snapshot(/*skip_zero=*/false)) {
    if (s.key.name == "cwnd_bytes" && s.key.domain != "server") {
      ++cwnd_gauges;
    }
    if (s.key.name == "retransmits" || s.key.name == "fast_retransmits") {
      retransmits += s.value;
    }
  }
  EXPECT_EQ(cwnd_gauges, kFlows);
  EXPECT_GT(retransmits, 0);
}

}  // namespace
}  // namespace kite
