// One-shot failure diagnostics, end to end: the watchdog must flag a wedged
// backend as stalled within its probe budget, recovery must bring the state
// machine back to healthy (in place for a released disk, via driver-domain
// restart for a swallowed kick), a KITE_CHECK abort must leave the full
// diagnostic bundle on stderr, and the always-on flight recorder must stay
// byte-for-byte deterministic even after its rings wrap.
#include <gtest/gtest.h>

#include <string>

#include "src/base/bytes.h"
#include "src/base/log.h"
#include "src/core/kite.h"

namespace kite {
namespace {

const Ipv4Addr kGuestIp = Ipv4Addr::FromOctets(10, 0, 0, 10);

// Tight thresholds so a stall is flagged in simulated milliseconds; the
// no-false-positive test below runs real traffic under these same values.
KiteSystem::Params TightWatchdogParams() {
  KiteSystem::Params params;
  params.health.probe_period = Millis(1);
  params.health.degraded_after = Millis(5);
  params.health.stalled_after = Millis(20);
  return params;
}

class DiagnosticsTest : public ::testing::Test {
 protected:
  void Build(bool net, bool storage) {
    sys_ = std::make_unique<KiteSystem>(TightWatchdogParams());
    if (net) {
      netdom_ = sys_->CreateNetworkDomain();
    }
    if (storage) {
      stordom_ = sys_->CreateStorageDomain();
    }
    guest_ = sys_->CreateGuest("app-vm");
    if (net) {
      sys_->AttachVif(guest_, netdom_, kGuestIp);
    }
    if (storage) {
      sys_->AttachVbd(guest_, stordom_);
    }
    ASSERT_TRUE(sys_->WaitConnected(guest_));
    gid_ = guest_->domain()->id();
    vif_ = StrFormat("vif%d.0", gid_);
    vbd_ = StrFormat("vbd%d.51712", gid_);
  }

  bool PingGuest() {
    bool ok = false;
    sys_->client()->stack()->Ping(kGuestIp, 56, [&](bool r, SimDuration) { ok = r; });
    sys_->WaitUntil([&] { return ok; }, Seconds(5));
    return ok;
  }

  uint64_t StalledTransitions() {
    return sys_->metric_registry().counter("obs", "health", "stalled_transitions")->value();
  }
  double InstancesStalled() {
    return sys_->metric_registry().gauge("obs", "health", "instances_stalled")->value();
  }

  std::unique_ptr<KiteSystem> sys_;
  NetworkDomain* netdom_ = nullptr;
  StorageDomain* stordom_ = nullptr;
  GuestVm* guest_ = nullptr;
  DomId gid_ = 0;
  std::string vif_;
  std::string vbd_;
};

TEST_F(DiagnosticsTest, WedgedNetbackReachesStalledAndRestartRecovers) {
  Build(/*net=*/true, /*storage=*/false);
  ASSERT_TRUE(PingGuest());
  const DomId netdom_id = netdom_->domain()->id();
  EXPECT_EQ(StalledTransitions(), 0u);

  // Swallow every event-channel kick for a window: notification suppression
  // makes the one kick that crosses req_event irreplaceable, so netback
  // never learns about the request the guest pushes here.
  sys_->faults().set_rate(FaultSite::kEventNotify, 1.0);
  guest_->stack()->Ping(sys_->client_ip(), 56, [](bool, SimDuration) {});
  sys_->RunFor(Millis(5));
  sys_->faults().set_rate(FaultSite::kEventNotify, 0.0);
  EXPECT_GE(sys_->faults().trips(FaultSite::kEventNotify), 1u);

  // The watchdog must flag the vif stalled within its probe budget — the
  // stalled threshold is 20ms and WaitUntil's default deadline is seconds.
  ASSERT_TRUE(sys_->WaitUntil(
      [&] { return sys_->health().state(netdom_id, vif_) == HealthState::kStalled; }));
  EXPECT_EQ(StalledTransitions(), 1u);
  EXPECT_EQ(InstancesStalled(), 1.0);
  EXPECT_EQ(sys_->metric_registry().gauge("kite-netdom", vif_, "health_state")->value(),
            2.0);
  // The transition is published into xenstore under the backend domain.
  EXPECT_EQ(sys_->hv().store().Read(kDom0, DomainPath(netdom_id) + "/health/" + vif_)
                .value_or("missing"),
            "stalled");

  // A swallowed kick is unrecoverable in place; Kite's answer is a driver
  // domain restart. The stalled instance dies with the domain (its gauge is
  // unregistered) and the fresh pairing starts healthy.
  NetworkDomain* fresh = sys_->RestartNetworkDomain(netdom_);
  ASSERT_TRUE(sys_->WaitUntil([&] {
    return guest_->netfront()->recoveries() == 1 && guest_->netfront()->connected();
  }));
  const DomId fresh_id = fresh->domain()->id();
  ASSERT_TRUE(sys_->WaitUntil([&] {
    return sys_->health().state(fresh_id, vif_) == HealthState::kHealthy &&
           InstancesStalled() == 0.0;
  }));
  EXPECT_TRUE(PingGuest());
  // The stall count is cumulative history, not current state.
  EXPECT_EQ(StalledTransitions(), 1u);
  EXPECT_EQ(sys_->metric_registry().gauge("obs", "health", "instances")->value(), 1.0);
}

TEST_F(DiagnosticsTest, StuckDiskReachesStalledAndReleaseRecoversInPlace) {
  Build(/*net=*/false, /*storage=*/true);
  const DomId stordom_id = stordom_->domain()->id();
  BlockDevice* disk = stordom_->disk();

  // Hang the disk controller: the completion parks without releasing its
  // queue-depth slot, so blkback's in-flight count freezes above zero.
  sys_->faults().set_rate(FaultSite::kDiskHang, 1.0);
  bool write_done = false;
  bool write_ok = false;
  guest_->blkfront()->Write(0, Buffer(4096, 0x5a), [&](bool ok) {
    write_done = true;
    write_ok = ok;
  });
  ASSERT_TRUE(sys_->WaitUntil([&] { return disk->hung_io_count() > 0; }));
  sys_->faults().set_rate(FaultSite::kDiskHang, 0.0);
  EXPECT_EQ(disk->hung_io_count(), 1);
  EXPECT_FALSE(write_done);

  ASSERT_TRUE(sys_->WaitUntil(
      [&] { return sys_->health().state(stordom_id, vbd_) == HealthState::kStalled; }));
  EXPECT_EQ(StalledTransitions(), 1u);
  EXPECT_EQ(InstancesStalled(), 1.0);
  EXPECT_EQ(sys_->metric_registry().gauge("kite-stordom", vbd_, "health_state")->value(),
            2.0);
  EXPECT_GE(sys_->metric_registry().gauge("kite-stordom", vbd_, "ring_backlog")->value(),
            1.0);
  EXPECT_EQ(sys_->hv().store().Read(kDom0, DomainPath(stordom_id) + "/health/" + vbd_)
                .value_or("missing"),
            "stalled");

  // Un-hang the controller: the parked completion fires, the write acks, and
  // the *same* instance must collapse back to healthy — no restart.
  disk->ReleaseHungIo();
  ASSERT_TRUE(sys_->WaitUntil([&] { return write_done; }));
  EXPECT_TRUE(write_ok);
  ASSERT_TRUE(sys_->WaitUntil(
      [&] { return sys_->health().state(stordom_id, vbd_) == HealthState::kHealthy; }));
  ASSERT_TRUE(sys_->WaitUntil([&] { return InstancesStalled() == 0.0; }));
  EXPECT_EQ(disk->hung_io_count(), 0);
  EXPECT_EQ(guest_->blkfront()->recoveries(), 0u);
  EXPECT_EQ(StalledTransitions(), 1u);
  EXPECT_EQ(sys_->hv().store().Read(kDom0, DomainPath(stordom_id) + "/health/" + vbd_)
                .value_or("missing"),
            "healthy");
}

TEST_F(DiagnosticsTest, TightThresholdsNeverFalseFlagRealTraffic) {
  Build(/*net=*/true, /*storage=*/true);
  // Sustained pings and writes under pathologically tight thresholds: every
  // probe must see either progress or an empty backlog, so the state machine
  // never leaves healthy.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(PingGuest()) << "iteration " << i;
    bool done = false;
    guest_->blkfront()->Write(static_cast<int64_t>(i) * 64 * 1024, Buffer(32 * 1024, 0x7c),
                              [&](bool ok) { done = ok; });
    ASSERT_TRUE(sys_->WaitUntil([&] { return done; })) << "iteration " << i;
  }
  sys_->RunUntilIdle();
  EXPECT_GT(sys_->health().probes_run(), 0u);
  EXPECT_EQ(sys_->metric_registry().counter("obs", "health", "transitions")->value(), 0u);
  for (const HealthMonitor::InstanceInfo& info : sys_->health().Instances()) {
    EXPECT_EQ(info.state, HealthState::kHealthy) << info.domain_name << "/" << info.device;
  }
}

// Same seed, same scenario — the flight recorder dump must be byte-identical
// even after every ring has wrapped (320 writes push well past the 256-slot
// per-domain capacity).
TEST(FlightRecorderDeterminismTest, WrappedRingsDumpByteIdentically) {
  struct Outcome {
    std::string dump;
    uint64_t stordom_recorded = 0;
    size_t capacity = 0;
  };
  auto run = []() -> Outcome {
    KiteSystem sys;
    StorageDomain* stordom = sys.CreateStorageDomain();
    GuestVm* guest = sys.CreateGuest("wrap-vm");
    sys.AttachVbd(guest, stordom);
    EXPECT_TRUE(sys.WaitConnected(guest));
    constexpr int kWrites = 320;
    int completed = 0;
    for (int i = 0; i < kWrites; ++i) {
      guest->blkfront()->Write(static_cast<int64_t>(i) * 4096, Buffer(4096, 0x33),
                               [&](bool ok) { completed += ok ? 1 : 0; });
    }
    EXPECT_TRUE(sys.WaitUntil([&] { return completed == kWrites; }, Seconds(60)));
    sys.RunUntilIdle();
    Outcome out;
    const DomId sid = stordom->domain()->id();
    out.dump = sys.recorder().FormatAll();
    out.stordom_recorded = sys.recorder().recorded(sid);
    out.capacity = sys.recorder().ring(sid)->capacity();
    return out;
  };
  const Outcome first = run();
  const Outcome second = run();
  // The ring really wrapped — otherwise this asserts nothing interesting.
  ASSERT_GT(first.stordom_recorded, first.capacity);
  EXPECT_EQ(first.stordom_recorded, second.stordom_recorded);
  EXPECT_EQ(first.dump, second.dump);
  EXPECT_NE(first.dump.find("ring-push"), std::string::npos);
}

// Any KITE_CHECK failure in a process that owns a KiteSystem must leave the
// full diagnostic bundle on stderr: health table, flight-recorder tails,
// pending events, invariant audit, metrics.
TEST(DiagnosticsDeathTest, KiteCheckFailureEmitsDiagnosticBundle) {
  ASSERT_DEATH(
      {
        KiteSystem sys(TightWatchdogParams());
        NetworkDomain* netdom = sys.CreateNetworkDomain();
        GuestVm* guest = sys.CreateGuest("doomed-vm");
        sys.AttachVif(guest, netdom, kGuestIp);
        sys.WaitConnected(guest);
        KITE_CHECK(false) << "intentional failure for the diagnostics test";
      },
      "intentional failure for the diagnostics test.*"
      "KITE DIAGNOSTICS.*---- health ----.*---- flight recorder ----.*"
      "---- pending events ----.*---- invariants ----.*---- metrics ----.*"
      "END KITE DIAGNOSTICS");
}

}  // namespace
}  // namespace kite
