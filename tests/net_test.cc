// Unit tests for the network substrate: codecs, fragmentation, NIC/link,
// bridge learning, ARP/ICMP/UDP, and TCP.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/net/bridge.h"
#include "src/net/frame.h"
#include "src/net/nic.h"
#include "src/net/stack.h"
#include "src/net/tcp.h"

namespace kite {
namespace {

const Ipv4Addr kIpA = Ipv4Addr::FromOctets(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::FromOctets(10, 0, 0, 2);

// --- Codecs. ---

TEST(FrameCodecTest, UdpRoundTripWithChecksum) {
  UdpDatagram udp;
  udp.src_port = 6000;
  udp.dst_port = 53;
  udp.payload = {1, 2, 3, 4, 5};
  Buffer bytes = SerializeUdp(udp, kIpA, kIpB);
  auto parsed = ParseUdp(bytes, kIpA, kIpB);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 6000);
  EXPECT_EQ(parsed->dst_port, 53);
  EXPECT_EQ(parsed->payload, udp.payload);
}

TEST(FrameCodecTest, UdpChecksumDetectsCorruption) {
  UdpDatagram udp;
  udp.src_port = 1;
  udp.dst_port = 2;
  udp.payload = {9, 9, 9};
  Buffer bytes = SerializeUdp(udp, kIpA, kIpB);
  bytes[9] ^= 0xff;  // Corrupt payload.
  EXPECT_FALSE(ParseUdp(bytes, kIpA, kIpB).has_value());
}

TEST(FrameCodecTest, IcmpRoundTrip) {
  IcmpMessage icmp;
  icmp.is_echo_request = true;
  icmp.ident = 0x1234;
  icmp.sequence = 7;
  icmp.payload.assign(56, 0xa5);
  Buffer bytes = SerializeIcmp(icmp);
  auto parsed = ParseIcmp(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_echo_request);
  EXPECT_EQ(parsed->ident, 0x1234);
  EXPECT_EQ(parsed->sequence, 7);
  EXPECT_EQ(parsed->payload.size(), 56u);
}

TEST(FrameCodecTest, TcpRoundTripFlags) {
  TcpSegment seg;
  seg.src_port = 80;
  seg.dst_port = 40000;
  seg.seq = 0xdeadbeef;
  seg.ack = 0x12345678;
  seg.syn = true;
  seg.ack_flag = true;
  seg.window = 4000;
  Buffer bytes = SerializeTcp(seg, kIpA, kIpB);
  auto parsed = ParseTcp(bytes, kIpA, kIpB);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->syn);
  EXPECT_TRUE(parsed->ack_flag);
  EXPECT_FALSE(parsed->fin);
  EXPECT_EQ(parsed->seq, 0xdeadbeefu);
  EXPECT_EQ(parsed->ack, 0x12345678u);
}

TEST(FrameCodecTest, Ipv4RoundTripAllProtocols) {
  for (uint8_t proto : {kIpProtoIcmp, kIpProtoUdp, kIpProtoTcp}) {
    Ipv4Packet p;
    p.src = kIpA;
    p.dst = kIpB;
    p.proto = proto;
    p.id = 99;
    if (proto == kIpProtoUdp) {
      UdpDatagram u;
      u.src_port = 1;
      u.dst_port = 2;
      u.payload = {42};
      p.l4 = u;
    } else if (proto == kIpProtoTcp) {
      TcpSegment t;
      t.src_port = 3;
      t.dst_port = 4;
      t.payload = {1, 2};
      p.l4 = t;
    } else {
      IcmpMessage m;
      m.payload = {5};
      p.l4 = m;
    }
    Buffer bytes = SerializeIpv4(p);
    auto parsed = ParseIpv4(bytes);
    ASSERT_TRUE(parsed.has_value()) << "proto " << int(proto);
    EXPECT_EQ(parsed->src, kIpA);
    EXPECT_EQ(parsed->dst, kIpB);
    EXPECT_EQ(parsed->proto, proto);
  }
}

TEST(FrameCodecTest, Ipv4HeaderChecksumDetectsCorruption) {
  Ipv4Packet p;
  p.src = kIpA;
  p.dst = kIpB;
  p.proto = kIpProtoUdp;
  UdpDatagram u;
  u.payload = {1};
  p.l4 = u;
  Buffer bytes = SerializeIpv4(p);
  bytes[12] ^= 0x01;  // Corrupt source address.
  EXPECT_FALSE(ParseIpv4(bytes).has_value());
}

TEST(FrameCodecTest, ArpAndEthernetRoundTrip) {
  ArpPacket arp;
  arp.is_request = true;
  arp.sender_mac = MacAddr::FromId(1);
  arp.sender_ip = kIpA;
  arp.target_ip = kIpB;
  EthernetFrame frame;
  frame.dst = MacAddr::Broadcast();
  frame.src = arp.sender_mac;
  frame.ethertype = kEtherTypeArp;
  frame.payload = arp;
  Buffer bytes = SerializeEthernet(frame);
  auto parsed = ParseEthernet(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->arp(), nullptr);
  EXPECT_TRUE(parsed->arp()->is_request);
  EXPECT_EQ(parsed->arp()->sender_ip, kIpA);
  EXPECT_EQ(parsed->src, arp.sender_mac);
}

// --- Fragmentation. ---

TEST(FragmentTest, SmallPacketUnchanged) {
  Ipv4Packet p;
  p.src = kIpA;
  p.dst = kIpB;
  p.proto = kIpProtoUdp;
  UdpDatagram u;
  u.payload.assign(100, 1);
  p.l4 = u;
  auto frags = FragmentIpv4(p);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_FALSE(frags[0].IsFragment());
}

TEST(FragmentTest, LargeUdpFragmentsAndReassembles) {
  Rng rng(3);
  Ipv4Packet p;
  p.src = kIpA;
  p.dst = kIpB;
  p.proto = kIpProtoUdp;
  p.id = 777;
  UdpDatagram u;
  u.src_port = 5;
  u.dst_port = 6;
  u.payload.resize(8192);
  for (auto& b : u.payload) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  const uint64_t digest = Fnv1a(u.payload);
  p.l4 = u;

  auto frags = FragmentIpv4(p);
  ASSERT_GT(frags.size(), 1u);
  for (size_t i = 0; i < frags.size(); ++i) {
    EXPECT_LE(frags[i].ByteSize(), kMtu);
    EXPECT_EQ(frags[i].more_frags, i + 1 < frags.size());
  }

  Ipv4Reassembler reasm;
  std::optional<Ipv4Packet> whole;
  for (const auto& f : frags) {
    auto r = reasm.Add(f);
    if (r.has_value()) {
      EXPECT_FALSE(whole.has_value());
      whole = r;
    }
  }
  ASSERT_TRUE(whole.has_value());
  const UdpDatagram* out = std::get_if<UdpDatagram>(&whole->l4);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->payload.size(), 8192u);
  EXPECT_EQ(Fnv1a(out->payload), digest);
}

TEST(FragmentTest, OutOfOrderReassembly) {
  Ipv4Packet p;
  p.src = kIpA;
  p.dst = kIpB;
  p.proto = kIpProtoUdp;
  p.id = 42;
  UdpDatagram u;
  u.payload.assign(5000, 0x5a);
  p.l4 = u;
  auto frags = FragmentIpv4(p);
  ASSERT_GE(frags.size(), 3u);
  std::swap(frags[0], frags[2]);
  Ipv4Reassembler reasm;
  std::optional<Ipv4Packet> whole;
  for (const auto& f : frags) {
    auto r = reasm.Add(f);
    if (r.has_value()) {
      whole = r;
    }
  }
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(std::get<UdpDatagram>(whole->l4).payload.size(), 5000u);
}

TEST(FragmentTest, InterleavedDatagramsKeptApart) {
  Ipv4Reassembler reasm;
  auto make = [](uint16_t id, uint8_t fill) {
    Ipv4Packet p;
    p.src = kIpA;
    p.dst = kIpB;
    p.proto = kIpProtoUdp;
    p.id = id;
    UdpDatagram u;
    u.payload.assign(4000, fill);
    p.l4 = u;
    return FragmentIpv4(p);
  };
  auto fa = make(1, 0xaa);
  auto fb = make(2, 0xbb);
  int completed = 0;
  for (size_t i = 0; i < std::max(fa.size(), fb.size()); ++i) {
    if (i < fa.size() && reasm.Add(fa[i]).has_value()) {
      ++completed;
    }
    if (i < fb.size() && reasm.Add(fb[i]).has_value()) {
      ++completed;
    }
  }
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(reasm.pending_count(), 0u);
}

// --- NIC + link. ---

class NicPairTest : public ::testing::Test {
 protected:
  NicPairTest() {
    a_ = std::make_unique<Nic>(&ex_, "a", "nicA", MacAddr::FromId(1));
    b_ = std::make_unique<Nic>(&ex_, "b", "nicB", MacAddr::FromId(2));
    Nic::ConnectBackToBack(a_.get(), b_.get());
  }

  EthernetFrame MakeFrame(size_t payload) {
    EthernetFrame f;
    f.dst = b_->mac();
    f.src = a_->mac();
    Ipv4Packet p;
    p.src = kIpA;
    p.dst = kIpB;
    p.proto = kIpProtoUdp;
    UdpDatagram u;
    u.payload.assign(payload, 7);
    p.l4 = u;
    f.payload = std::move(p);
    return f;
  }

  Executor ex_;
  std::unique_ptr<Nic> a_;
  std::unique_ptr<Nic> b_;
};

TEST_F(NicPairTest, FrameDelivered) {
  int received = 0;
  b_->netif()->SetInputHandler([&](const EthernetFrame&) { ++received; });
  a_->netif()->Output(MakeFrame(100));
  ex_.RunUntilIdle();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(b_->rx_delivered(), 1u);
}

TEST_F(NicPairTest, LineRateSerialization) {
  int received = 0;
  b_->netif()->SetInputHandler([&](const EthernetFrame&) { ++received; });
  // 1000 full-size frames at 10 Gbps: (1500+46)*8/10 ≈ 1.24 us each.
  for (int i = 0; i < 1000; ++i) {
    a_->netif()->Output(MakeFrame(1400));
  }
  ex_.RunUntilIdle();
  EXPECT_EQ(received, 1000);
  // Total elapsed is at least the serialization time of 1000 frames.
  const double frame_ns = (1400 + 28 + 20 + 14 + 24) * 8 / 10.0;
  EXPECT_GE(ex_.Now().ns(), static_cast<int64_t>(900 * frame_ns));
}

TEST_F(NicPairTest, TxOverflowDrops) {
  b_->netif()->SetInputHandler([&](const EthernetFrame&) {});
  for (int i = 0; i < 3000; ++i) {
    a_->netif()->Output(MakeFrame(1400));
  }
  // More than tx_queue_frames in flight at once: some dropped.
  EXPECT_GT(a_->tx_dropped(), 0u);
  ex_.RunUntilIdle();
  EXPECT_EQ(b_->rx_delivered() + a_->tx_dropped(), 3000u);
}

TEST_F(NicPairTest, UnconnectedNicDropsTx) {
  Nic lone(&ex_, "c", "nicC", MacAddr::FromId(3));
  lone.netif()->Output(MakeFrame(64));
  EXPECT_EQ(lone.tx_dropped(), 1u);
}

// --- Bridge. ---

class StubIf : public NetIf {
 public:
  StubIf(std::string name, MacAddr mac) : NetIf(std::move(name), mac) { SetUp(true); }
  void Output(const EthernetFrame& frame) override {
    ++out_count;
    last = frame;
  }
  int out_count = 0;
  EthernetFrame last;
};

EthernetFrame FrameBetween(MacAddr src, MacAddr dst) {
  EthernetFrame f;
  f.src = src;
  f.dst = dst;
  Ipv4Packet p;
  p.proto = kIpProtoUdp;
  p.l4 = UdpDatagram{};
  f.payload = std::move(p);
  return f;
}

TEST(BridgeTest, LearnsAndForwards) {
  Bridge bridge("br0", nullptr);
  StubIf p1("p1", MacAddr::FromId(1));
  StubIf p2("p2", MacAddr::FromId(2));
  StubIf p3("p3", MacAddr::FromId(3));
  bridge.AddIf(&p1);
  bridge.AddIf(&p2);
  bridge.AddIf(&p3);

  MacAddr h1 = MacAddr::FromId(0x11);
  MacAddr h2 = MacAddr::FromId(0x22);

  // Unknown destination: flood to all but ingress.
  p1.InjectInput(FrameBetween(h1, h2));
  EXPECT_EQ(p2.out_count, 1);
  EXPECT_EQ(p3.out_count, 1);
  EXPECT_EQ(p1.out_count, 0);
  EXPECT_EQ(bridge.LookupFdb(h1), &p1);

  // Reply: h2 behind p2. Learned h1 → unicast to p1 only.
  p2.InjectInput(FrameBetween(h2, h1));
  EXPECT_EQ(p1.out_count, 1);
  EXPECT_EQ(p3.out_count, 1);  // Unchanged.

  // Now h1 → h2 goes straight to p2.
  p1.InjectInput(FrameBetween(h1, h2));
  EXPECT_EQ(p2.out_count, 2);
  EXPECT_EQ(p3.out_count, 1);
  EXPECT_EQ(bridge.forwarded(), 2u);
}

TEST(BridgeTest, BroadcastFloods) {
  Bridge bridge("br0", nullptr);
  StubIf p1("p1", MacAddr::FromId(1));
  StubIf p2("p2", MacAddr::FromId(2));
  bridge.AddIf(&p1);
  bridge.AddIf(&p2);
  p1.InjectInput(FrameBetween(MacAddr::FromId(0x11), MacAddr::Broadcast()));
  EXPECT_EQ(p2.out_count, 1);
  EXPECT_EQ(p1.out_count, 0);
}

TEST(BridgeTest, RemoveIfFlushesFdb) {
  Bridge bridge("br0", nullptr);
  StubIf p1("p1", MacAddr::FromId(1));
  StubIf p2("p2", MacAddr::FromId(2));
  bridge.AddIf(&p1);
  bridge.AddIf(&p2);
  MacAddr h1 = MacAddr::FromId(0x11);
  p1.InjectInput(FrameBetween(h1, MacAddr::Broadcast()));
  EXPECT_EQ(bridge.LookupFdb(h1), &p1);
  bridge.RemoveIf(&p1);
  EXPECT_EQ(bridge.LookupFdb(h1), nullptr);
  EXPECT_EQ(bridge.port_count(), 1);
}

TEST(BridgeTest, DownPortNotFloodedTo) {
  Bridge bridge("br0", nullptr);
  StubIf p1("p1", MacAddr::FromId(1));
  StubIf p2("p2", MacAddr::FromId(2));
  bridge.AddIf(&p1);
  bridge.AddIf(&p2);
  p2.SetUp(false);
  p1.InjectInput(FrameBetween(MacAddr::FromId(0x11), MacAddr::Broadcast()));
  EXPECT_EQ(p2.out_count, 0);
}

// --- Stack: ARP, ping, UDP, TCP over a direct NIC pair. ---

class StackPairTest : public ::testing::Test {
 protected:
  StackPairTest() {
    nic_a_ = std::make_unique<Nic>(&ex_, "a", "nicA", MacAddr::FromId(1));
    nic_b_ = std::make_unique<Nic>(&ex_, "b", "nicB", MacAddr::FromId(2));
    Nic::ConnectBackToBack(nic_a_.get(), nic_b_.get());
    stack_a_ = std::make_unique<EtherStack>(&ex_, nullptr, nic_a_->netif());
    stack_b_ = std::make_unique<EtherStack>(&ex_, nullptr, nic_b_->netif());
    stack_a_->ConfigureIp(kIpA);
    stack_b_->ConfigureIp(kIpB);
  }

  Executor ex_;
  std::unique_ptr<Nic> nic_a_, nic_b_;
  std::unique_ptr<EtherStack> stack_a_, stack_b_;
};

TEST_F(StackPairTest, PingResolvesArpAndCompletes) {
  bool done = false;
  SimDuration rtt;
  stack_a_->Ping(kIpB, 56, [&](bool ok, SimDuration d) {
    EXPECT_TRUE(ok);
    done = true;
    rtt = d;
  });
  ex_.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_GT(rtt.ns(), 0);
  EXPECT_TRUE(stack_a_->HasArpEntry(kIpB));
  EXPECT_EQ(stack_a_->arp_requests_sent(), 1u);
}

TEST_F(StackPairTest, SecondPingSkipsArp) {
  int done = 0;
  stack_a_->Ping(kIpB, 56, [&](bool ok, SimDuration) { done += ok; });
  ex_.RunUntilIdle();
  stack_a_->Ping(kIpB, 56, [&](bool ok, SimDuration) { done += ok; });
  ex_.RunUntilIdle();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(stack_a_->arp_requests_sent(), 1u);
}

TEST_F(StackPairTest, PingToNowhereTimesOut) {
  bool ok = true;
  stack_a_->Ping(Ipv4Addr::FromOctets(10, 0, 0, 99), 56,
                 [&](bool r, SimDuration) { ok = r; }, Millis(100));
  ex_.RunUntilIdle();
  EXPECT_FALSE(ok);
}

TEST_F(StackPairTest, UdpDatagramDelivery) {
  auto server = stack_b_->OpenUdp();
  server->Bind(9000);
  Buffer got;
  Ipv4Addr from;
  server->SetRecvCallback([&](Ipv4Addr src, uint16_t, const Buffer& payload) {
    from = src;
    got = payload;
  });
  auto client = stack_a_->OpenUdp();
  client->SendTo(kIpB, 9000, Buffer{1, 2, 3});
  ex_.RunUntilIdle();
  EXPECT_EQ(got, (Buffer{1, 2, 3}));
  EXPECT_EQ(from, kIpA);
}

TEST_F(StackPairTest, LargeUdpFragmentsAcrossWire) {
  auto server = stack_b_->OpenUdp();
  server->Bind(9000);
  size_t got = 0;
  server->SetRecvCallback(
      [&](Ipv4Addr, uint16_t, const Buffer& payload) { got = payload.size(); });
  auto client = stack_a_->OpenUdp();
  Buffer big(8000, 0x3c);
  client->SendTo(kIpB, 9000, big);
  ex_.RunUntilIdle();
  EXPECT_EQ(got, 8000u);
}

TEST_F(StackPairTest, UdpToUnboundPortDropped) {
  auto client = stack_a_->OpenUdp();
  client->SendTo(kIpB, 12345, Buffer{1});
  ex_.RunUntilIdle();
  SUCCEED();  // No crash, silently dropped.
}

TEST_F(StackPairTest, TcpConnectTransferClose) {
  Buffer received;
  bool server_closed = false;
  stack_b_->ListenTcp(8080, [&](TcpConn* conn) {
    conn->SetDataCallback([&received, conn](std::span<const uint8_t> data) {
      received.insert(received.end(), data.begin(), data.end());
      if (received.size() >= 10) {
        conn->Send(Buffer{0xca, 0xfe});
        conn->Close();
      }
    });
    conn->SetCloseCallback([&] { server_closed = true; });
  });

  Buffer reply;
  bool connected = false;
  TcpConn* c = stack_a_->ConnectTcp(kIpB, 8080, [&](TcpConn* conn) {
    connected = true;
    conn->Send(Buffer(10, 0x42));
  });
  c->SetDataCallback([&](std::span<const uint8_t> data) {
    reply.insert(reply.end(), data.begin(), data.end());
  });
  ex_.RunUntilIdle();
  EXPECT_TRUE(connected);
  EXPECT_EQ(received.size(), 10u);
  EXPECT_EQ(reply, (Buffer{0xca, 0xfe}));
}

TEST_F(StackPairTest, TcpBulkTransferIntegrity) {
  Rng rng(11);
  Buffer payload(512 * 1024);
  for (auto& b : payload) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  const uint64_t digest = Fnv1a(payload);

  Buffer received;
  stack_b_->ListenTcp(8080, [&](TcpConn* conn) {
    conn->SetDataCallback([&](std::span<const uint8_t> data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  stack_a_->ConnectTcp(kIpB, 8080, [&](TcpConn* conn) { conn->Send(payload); });
  ex_.RunUntilIdle();
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(Fnv1a(received), digest);
}

TEST_F(StackPairTest, TcpConnectToClosedPortRst) {
  bool closed = false;
  TcpConn* c = stack_a_->ConnectTcp(kIpB, 4444, [&](TcpConn*) { FAIL(); });
  c->SetCloseCallback([&] { closed = true; });
  ex_.RunUntilIdle();
  EXPECT_TRUE(closed);
}

TEST_F(StackPairTest, TcpManyConnectionsConcurrently) {
  int server_count = 0;
  stack_b_->ListenTcp(8080, [&](TcpConn* conn) {
    conn->SetDataCallback([conn, &server_count](std::span<const uint8_t> data) {
      ++server_count;
      conn->Send(Buffer(data.begin(), data.end()));  // Echo.
    });
  });
  int echoed = 0;
  for (int i = 0; i < 20; ++i) {
    TcpConn* c = stack_a_->ConnectTcp(kIpB, 8080,
                                      [](TcpConn* conn) { conn->Send(Buffer(100, 1)); });
    c->SetDataCallback([&echoed](std::span<const uint8_t>) { ++echoed; });
  }
  ex_.RunUntilIdle();
  EXPECT_EQ(server_count, 20);
  EXPECT_EQ(echoed, 20);
}

}  // namespace
}  // namespace kite
