// Tests for the DHCP daemon service VM: wire codec, server state machine,
// and the full daemon-VM-behind-a-Kite-network-domain scenario (paper §5.5).
#include <gtest/gtest.h>

#include "src/core/kite.h"
#include "src/services/dhcp.h"

namespace kite {
namespace {

TEST(DhcpCodecTest, RoundTripAllFields) {
  DhcpMessage msg;
  msg.is_request = true;
  msg.xid = 0xdeadbeef;
  msg.type = DhcpMessageType::kRequest;
  msg.chaddr = MacAddr::FromId(42);
  msg.requested_ip = Ipv4Addr::FromOctets(10, 0, 0, 105);
  msg.server_id = Ipv4Addr::FromOctets(10, 0, 0, 5);
  msg.lease_seconds = 7200;
  Buffer bytes = SerializeDhcp(msg);
  ASSERT_GE(bytes.size(), 240u);
  auto parsed = ParseDhcp(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_request);
  EXPECT_EQ(parsed->xid, 0xdeadbeefu);
  EXPECT_EQ(parsed->type, DhcpMessageType::kRequest);
  EXPECT_EQ(parsed->chaddr, MacAddr::FromId(42));
  EXPECT_EQ(parsed->requested_ip, Ipv4Addr::FromOctets(10, 0, 0, 105));
  EXPECT_EQ(parsed->server_id, Ipv4Addr::FromOctets(10, 0, 0, 5));
  EXPECT_EQ(parsed->lease_seconds, 7200u);
}

TEST(DhcpCodecTest, RejectsTruncatedAndBadMagic) {
  DhcpMessage msg;
  Buffer bytes = SerializeDhcp(msg);
  EXPECT_FALSE(ParseDhcp(std::span<const uint8_t>(bytes.data(), 100)).has_value());
  bytes[236] ^= 0xff;  // Corrupt the magic cookie.
  EXPECT_FALSE(ParseDhcp(bytes).has_value());
}

// Full scenario: the DHCP server runs in a daemon service VM attached to a
// Kite network domain; perfdhcp runs on the client machine.
class DhcpScenario : public ::testing::TestWithParam<OsKind> {
 protected:
  void Build() {
    sys_ = std::make_unique<KiteSystem>();
    DriverDomainConfig config;
    config.os = GetParam();
    netdom_ = sys_->CreateNetworkDomain(config);
    daemon_vm_ = sys_->CreateGuest("dhcp-daemon", /*vcpus=*/1, /*memory_mb=*/256);
    sys_->AttachVif(daemon_vm_, netdom_, Ipv4Addr::FromOctets(10, 0, 0, 5));
    ASSERT_TRUE(sys_->WaitConnected(daemon_vm_));
    server_ = std::make_unique<DhcpServer>(daemon_vm_->stack());
  }

  std::unique_ptr<KiteSystem> sys_;
  NetworkDomain* netdom_ = nullptr;
  GuestVm* daemon_vm_ = nullptr;
  std::unique_ptr<DhcpServer> server_;
};

TEST_P(DhcpScenario, FourWayHandshakeAssignsLeases) {
  Build();
  PerfDhcp perf(sys_->client()->stack(), /*count=*/20, /*spacing=*/Millis(1));
  bool done = false;
  perf.Run([&](const PerfDhcpResult& r) {
    done = true;
    EXPECT_EQ(r.completed, 20);
    EXPECT_EQ(r.failed, 0);
    EXPECT_GT(r.discover_offer_ms.Mean(), 0);
    EXPECT_GT(r.request_ack_ms.Mean(), 0);
    // Paper §5.5: sub-millisecond-scale delays (≈0.78 / 0.7 ms).
    EXPECT_LT(r.discover_offer_ms.Mean(), 3.0);
    EXPECT_LT(r.request_ack_ms.Mean(), 3.0);
  });
  ASSERT_TRUE(sys_->WaitUntil([&] { return done; }, Seconds(10)));
  EXPECT_EQ(server_->leases_active(), 20);
  EXPECT_EQ(server_->offers_sent(), 20u);
  EXPECT_EQ(server_->acks_sent(), 20u);
  EXPECT_EQ(server_->naks_sent(), 0u);
}

TEST_P(DhcpScenario, SameClientGetsSameLease) {
  Build();
  // Two rounds with the same MAC population → identical count of active
  // leases (renewals, not new allocations).
  for (int round = 0; round < 2; ++round) {
    PerfDhcp perf(sys_->client()->stack(), /*count=*/5, /*spacing=*/Millis(1));
    bool done = false;
    perf.Run([&](const PerfDhcpResult& r) { done = true; });
    ASSERT_TRUE(sys_->WaitUntil([&] { return done; }, Seconds(10)));
  }
  EXPECT_EQ(server_->leases_active(), 5);
}

TEST_P(DhcpScenario, PoolExhaustionStopsOffers) {
  Build();
  // Shrink the pool by re-creating the server with a 3-address pool.
  DhcpServerConfig config;
  config.pool_size = 3;
  server_.reset();
  server_ = std::make_unique<DhcpServer>(daemon_vm_->stack(), config);
  PerfDhcp perf(sys_->client()->stack(), /*count=*/6, /*spacing=*/Millis(1));
  perf.Run([](const PerfDhcpResult&) {});
  sys_->RunFor(Seconds(1));
  EXPECT_EQ(server_->leases_active(), 3);
  EXPECT_LE(server_->acks_sent(), 3u);
}


TEST_P(DhcpScenario, RequestWithoutOfferIsNakked) {
  Build();
  // Hand-craft a REQUEST for an address that was never offered.
  auto sock = sys_->client()->stack()->OpenUdp();
  int naks = 0;
  sock->Bind(68);
  sock->SetRecvCallback([&](Ipv4Addr, uint16_t, const Buffer& payload) {
    auto msg = ParseDhcp(payload);
    if (msg.has_value() && msg->type == DhcpMessageType::kNak) {
      ++naks;
    }
  });
  DhcpMessage request;
  request.is_request = true;
  request.type = DhcpMessageType::kRequest;
  request.xid = 0x999;
  request.chaddr = MacAddr::FromId(0xabc);
  request.requested_ip = Ipv4Addr::FromOctets(10, 0, 0, 250);  // Outside any offer.
  sock->SendTo(Ipv4Addr::Broadcast(), 67, SerializeDhcp(request));
  sys_->RunFor(Millis(50));
  EXPECT_EQ(naks, 1);
  EXPECT_EQ(server_->naks_sent(), 1u);
  EXPECT_EQ(server_->leases_active(), 0);
}

TEST_P(DhcpScenario, ReleaseFreesLease) {
  Build();
  PerfDhcp perf(sys_->client()->stack(), /*count=*/3, /*spacing=*/Millis(1));
  bool done = false;
  perf.Run([&](const PerfDhcpResult&) { done = true; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return done; }, Seconds(10)));
  ASSERT_EQ(server_->leases_active(), 3);
  // Release one lease by MAC.
  auto sock = sys_->client()->stack()->OpenUdp();
  DhcpMessage release;
  release.is_request = true;
  release.type = DhcpMessageType::kRelease;
  release.chaddr = MacAddr::FromId(0x500000u);  // perfdhcp client 0.
  sock->SendTo(Ipv4Addr::Broadcast(), 67, SerializeDhcp(release));
  sys_->RunFor(Millis(50));
  EXPECT_EQ(server_->leases_active(), 2);
}

INSTANTIATE_TEST_SUITE_P(Personalities, DhcpScenario,
                         ::testing::Values(OsKind::kKiteRumprun, OsKind::kUbuntuLinux),
                         [](const ::testing::TestParamInfo<OsKind>& info) {
                           return std::string(OsKindName(info.param));
                         });

}  // namespace
}  // namespace kite
