// Driver-level tests for netfront/netback and blkfront/blkback behaviour
// that the end-to-end tests don't pin down: xenbus state sequences,
// notification-avoidance accounting, cold-path latency, pre-connection
// drops, and async completion ordering.
#include <gtest/gtest.h>

#include "src/core/kite.h"
#include "src/hv/xenbus.h"

namespace kite {
namespace {

const Ipv4Addr kGuestIp = Ipv4Addr::FromOctets(10, 0, 0, 10);

TEST(NetdrvTest, XenbusStatesEndConnected) {
  KiteSystem sys;
  NetworkDomain* nd = sys.CreateNetworkDomain();
  GuestVm* guest = sys.CreateGuest("g");
  sys.AttachVif(guest, nd, kGuestIp);
  ASSERT_TRUE(sys.WaitConnected(guest));
  XenbusClient bus(&sys.hv().store(), kDom0);
  const std::string fe = FrontendPath(guest->domain()->id(), "vif", 0);
  const std::string be = BackendPath(nd->domain()->id(), "vif", guest->domain()->id(), 0);
  EXPECT_EQ(bus.ReadState(fe), XenbusState::kConnected);
  EXPECT_EQ(bus.ReadState(be), XenbusState::kConnected);
}

TEST(NetdrvTest, FrontendPublishesRingRefsAndEventChannel) {
  KiteSystem sys;
  NetworkDomain* nd = sys.CreateNetworkDomain();
  GuestVm* guest = sys.CreateGuest("g");
  sys.AttachVif(guest, nd, kGuestIp);
  ASSERT_TRUE(sys.WaitConnected(guest));
  const std::string fe = FrontendPath(guest->domain()->id(), "vif", 0);
  XenStore& store = sys.hv().store();
  EXPECT_TRUE(store.ReadInt(kDom0, fe + "/tx-ring-ref").has_value());
  EXPECT_TRUE(store.ReadInt(kDom0, fe + "/rx-ring-ref").has_value());
  EXPECT_TRUE(store.ReadInt(kDom0, fe + "/event-channel").has_value());
  EXPECT_EQ(store.ReadInt(kDom0, fe + "/request-rx-copy").value_or(0), 1);
  EXPECT_TRUE(store.Read(kDom0, fe + "/mac").has_value());
}

TEST(NetdrvTest, OutputBeforeConnectIsDropped) {
  Executor ex;
  Hypervisor hv(&ex);
  Domain* guest = hv.CreateDomain("g", 1, 512);
  guest->set_online(true);
  // A netfront with no backend ever pairing: transmissions must drop.
  Netfront front(guest, /*backend_dom=*/0, /*devid=*/0, MacAddr::FromId(9));
  EthernetFrame frame;
  frame.src = front.mac();
  frame.dst = MacAddr::Broadcast();
  Ipv4Packet p;
  p.proto = kIpProtoUdp;
  p.l4 = UdpDatagram{};
  frame.payload = std::move(p);
  front.Output(frame);
  EXPECT_EQ(front.tx_dropped(), 1u);
  ex.RunUntilIdle();
}

TEST(NetdrvTest, NotificationAvoidanceBatchesEvents) {
  KiteSystem sys;
  NetworkDomain* nd = sys.CreateNetworkDomain();
  GuestVm* guest = sys.CreateGuest("g");
  sys.AttachVif(guest, nd, kGuestIp);
  ASSERT_TRUE(sys.WaitConnected(guest));

  auto server = guest->stack()->OpenUdp();
  server->Bind(9000);
  uint64_t rx = 0;
  server->SetRecvCallback([&](Ipv4Addr, uint16_t, const Buffer&) { ++rx; });

  const uint64_t events_before = sys.hv().events_sent();
  auto client_sock = sys.client()->stack()->OpenUdp();
  const int kDatagrams = 2000;
  // Burst: datagrams land back-to-back so the ring event protocol can elide
  // most notifications.
  for (int i = 0; i < kDatagrams; ++i) {
    sys.executor().PostAfter(Micros(2 * i), [&client_sock] {
      client_sock->SendTo(kGuestIp, 9000, Buffer(1000, 1));
    });
  }
  sys.RunFor(Millis(50));
  EXPECT_EQ(rx, static_cast<uint64_t>(kDatagrams));
  const uint64_t events = sys.hv().events_sent() - events_before;
  // ≥2 frames move per event on average under load (notification avoidance).
  EXPECT_LT(events, static_cast<uint64_t>(kDatagrams));
}

TEST(NetdrvTest, ColdPathSlowerThanWarmPath) {
  KiteSystem sys;
  NetworkDomain* nd = sys.CreateNetworkDomain();
  GuestVm* guest = sys.CreateGuest("g");
  sys.AttachVif(guest, nd, kGuestIp);
  ASSERT_TRUE(sys.WaitConnected(guest));

  auto ping_once = [&] {
    double ms = 0;
    bool done = false;
    sys.client()->stack()->Ping(kGuestIp, 56, [&](bool ok, SimDuration d) {
      done = true;
      ms = d.ms();
    });
    sys.WaitUntil([&] { return done; }, Seconds(2));
    return ms;
  };
  ping_once();  // Resolve ARP / create state.
  // Warm: back-to-back pings.
  const double warm = ping_once();
  // Cold: idle for 1 s first (the paper's ping interval).
  sys.RunFor(Seconds(1));
  const double cold = ping_once();
  EXPECT_GT(cold, warm * 1.5) << "cold=" << cold << " warm=" << warm;
}

TEST(NetdrvTest, BackendInstanceCountsTraffic) {
  KiteSystem sys;
  NetworkDomain* nd = sys.CreateNetworkDomain();
  GuestVm* guest = sys.CreateGuest("g");
  sys.AttachVif(guest, nd, kGuestIp);
  ASSERT_TRUE(sys.WaitConnected(guest));
  bool ok = false;
  sys.client()->stack()->Ping(kGuestIp, 56, [&](bool r, SimDuration) { ok = r; });
  ASSERT_TRUE(sys.WaitUntil([&] { return ok; }, Seconds(2)));
  auto* inst = nd->driver()->instance(guest->domain()->id(), 0);
  ASSERT_NE(inst, nullptr);
  EXPECT_GT(inst->guest_rx_frames(), 0u);  // Echo request toward the guest.
  EXPECT_GT(inst->guest_tx_frames(), 0u);  // Echo reply from the guest.
  EXPECT_EQ(inst->rx_queue_drops(), 0u);
}

TEST(BlkdrvTest, AsyncCompletionsOutOfOrderAllFinish) {
  KiteSystem::Params params;
  params.disk.capacity_bytes = 1LL << 30;
  KiteSystem sys(params);
  StorageDomain* sd = sys.CreateStorageDomain();
  GuestVm* guest = sys.CreateGuest("g");
  sys.AttachVbd(guest, sd);
  ASSERT_TRUE(sys.WaitConnected(guest));

  // A large read (slow: more data) racing small writes: all must complete
  // and the large op's completion must not block the small ones (the paper:
  // "subsequent requests are not blocked by the current request").
  std::vector<int> completion_order;
  guest->blkfront()->Read(0, 16 * 1024 * 1024, nullptr,
                          [&](bool ok) { completion_order.push_back(0); });
  for (int i = 1; i <= 4; ++i) {
    guest->blkfront()->Write(512LL * 1024 * 1024 + i * 4096, Buffer(4096, 1),
                             [&, i](bool) { completion_order.push_back(i); });
  }
  ASSERT_TRUE(sys.WaitUntil([&] { return completion_order.size() == 5; }, Seconds(30)));
  // At least one small write finished before the 16 MB read.
  EXPECT_NE(completion_order.back(), 4);
}

TEST(BlkdrvTest, FlushOrderingWithWrites) {
  KiteSystem::Params params;
  params.disk.capacity_bytes = 1LL << 30;
  params.disk_store_data = true;
  KiteSystem sys(params);
  StorageDomain* sd = sys.CreateStorageDomain();
  GuestVm* guest = sys.CreateGuest("g");
  sys.AttachVbd(guest, sd);
  ASSERT_TRUE(sys.WaitConnected(guest));

  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    guest->blkfront()->Write(i * 4096, Buffer(4096, static_cast<uint8_t>(i)),
                             [&](bool) { ++completed; });
    guest->blkfront()->Flush([&](bool) { ++completed; });
  }
  ASSERT_TRUE(sys.WaitUntil([&] { return completed == 16; }, Seconds(30)));
  EXPECT_GE(sd->disk()->flushes_completed(), 8u);
}

TEST(BlkdrvTest, IndirectDisabledFallsBackToDirectChunks) {
  KiteSystem::Params params;
  params.disk.capacity_bytes = 1LL << 30;
  KiteSystem sys(params);
  DriverDomainConfig config;
  config.blkback.indirect_segments = false;
  StorageDomain* sd = sys.CreateStorageDomain(config);
  GuestVm* guest = sys.CreateGuest("g");
  sys.AttachVbd(guest, sd);
  ASSERT_TRUE(sys.WaitConnected(guest));
  EXPECT_FALSE(guest->blkfront()->indirect_supported());

  bool done = false;
  guest->blkfront()->Write(0, Buffer(512 * 1024, 0x7a), [&](bool ok) { done = ok; });
  ASSERT_TRUE(sys.WaitUntil([&] { return done; }, Seconds(10)));
  EXPECT_EQ(guest->blkfront()->indirect_requests(), 0u);
  // 512 KB at ≤44 KB per request → ≥12 ring requests.
  EXPECT_GE(guest->blkfront()->requests_sent(), 12u);
}

TEST(BlkdrvTest, BlkfrontQueueDrainsWhenRingSaturated) {
  KiteSystem::Params params;
  params.disk.capacity_bytes = 2LL << 30;
  KiteSystem sys(params);
  StorageDomain* sd = sys.CreateStorageDomain();
  GuestVm* guest = sys.CreateGuest("g");
  sys.AttachVbd(guest, sd);
  ASSERT_TRUE(sys.WaitConnected(guest));

  // 64 × 1 MB ops: far beyond the 32-slot ring; the frontend must queue and
  // drain them all.
  int completed = 0;
  for (int i = 0; i < 64; ++i) {
    guest->blkfront()->Read(static_cast<int64_t>(i) * (1 << 20), 1 << 20, nullptr,
                            [&](bool ok) { completed += ok; });
  }
  EXPECT_GT(guest->blkfront()->queued_chunks(), 0u);
  ASSERT_TRUE(sys.WaitUntil([&] { return completed == 64; }, Seconds(60)));
  EXPECT_EQ(guest->blkfront()->queued_chunks(), 0u);
}

}  // namespace
}  // namespace kite
