// Property-style tests for the Xen shared-ring protocol, including the
// notification-avoidance logic (RING_PUSH_*_AND_CHECK_NOTIFY /
// RING_FINAL_CHECK_FOR_*), index wraparound, and the request/response
// ordering invariant.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/hv/ring.h"

namespace kite {
namespace {

struct Req {
  uint32_t id = 0;
};
struct Rsp {
  uint32_t id = 0;
};

using TestShared = SharedRing<Req, Rsp>;
using TestFront = FrontRing<Req, Rsp>;
using TestBack = BackRing<Req, Rsp>;

TEST(RingTest, SizeMustBePowerOfTwo) {
  EXPECT_DEATH(TestShared ring(12), "power of two");
}

TEST(RingTest, SimpleRequestResponseCycle) {
  TestShared shared(8);
  TestFront front(&shared);
  TestBack back(&shared);

  front.ProduceRequest(Req{7});
  EXPECT_TRUE(front.PushRequests());  // First push after re-arm: notify.

  ASSERT_TRUE(back.HasUnconsumedRequests());
  Req r = back.ConsumeRequest();
  EXPECT_EQ(r.id, 7u);
  EXPECT_FALSE(back.HasUnconsumedRequests());

  back.ProduceResponse(Rsp{7});
  EXPECT_TRUE(back.PushResponses());
  ASSERT_TRUE(front.HasUnconsumedResponses());
  EXPECT_EQ(front.ConsumeResponse().id, 7u);
}

TEST(RingTest, FullRingRefusesProduce) {
  TestShared shared(4);
  TestFront front(&shared);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(front.Full());
    front.ProduceRequest(Req{i});
  }
  EXPECT_TRUE(front.Full());
  EXPECT_EQ(front.FreeRequests(), 0u);
}

TEST(RingTest, SlotsFreeOnlyAfterResponseConsumed) {
  TestShared shared(4);
  TestFront front(&shared);
  TestBack back(&shared);
  for (uint32_t i = 0; i < 4; ++i) {
    front.ProduceRequest(Req{i});
  }
  front.PushRequests();
  EXPECT_TRUE(front.Full());
  // Backend consumes all and responds to one.
  for (int i = 0; i < 4; ++i) {
    back.ConsumeRequest();
  }
  back.ProduceResponse(Rsp{0});
  back.PushResponses();
  EXPECT_TRUE(front.Full());  // Still full until the response is consumed.
  front.ConsumeResponse();
  EXPECT_FALSE(front.Full());
  EXPECT_EQ(front.FreeRequests(), 1u);
}

TEST(RingTest, ResponseMayNotOvertakeRequests) {
  TestShared shared(4);
  TestBack back(&shared);
  // No requests consumed: producing a response must trip the invariant.
  EXPECT_DEATH(back.ProduceResponse(Rsp{0}), "overtake");
}

TEST(RingTest, NotifyAvoidanceSuppressesRedundantNotifies) {
  TestShared shared(8);
  TestFront front(&shared);
  TestBack back(&shared);

  front.ProduceRequest(Req{0});
  EXPECT_TRUE(front.PushRequests());  // Backend sleeping: notify.

  // Backend consumes but does NOT re-arm (no FinalCheck): further pushes
  // need no notify because the backend is presumed awake.
  back.ConsumeRequest();
  front.ProduceRequest(Req{1});
  EXPECT_FALSE(front.PushRequests());

  // Backend drains and re-arms via FinalCheck; race-free sleep.
  back.ConsumeRequest();
  EXPECT_FALSE(back.FinalCheckForRequests());
  front.ProduceRequest(Req{2});
  EXPECT_TRUE(front.PushRequests());  // Re-armed: notify again.
}

TEST(RingTest, FinalCheckCatchesRacingRequests) {
  TestShared shared(8);
  TestFront front(&shared);
  TestBack back(&shared);
  front.ProduceRequest(Req{0});
  front.PushRequests();
  back.ConsumeRequest();
  // A request lands between drain and sleep:
  front.ProduceRequest(Req{1});
  front.PushRequests();
  EXPECT_TRUE(back.FinalCheckForRequests());  // Caught: do not sleep.
}

TEST(RingTest, IndexWraparound) {
  TestShared shared(4);
  TestFront front(&shared);
  TestBack back(&shared);
  // Push far more items than the ring size; free-running uint32 indices must
  // mask correctly and never lose an item.
  for (uint32_t i = 0; i < 10000; ++i) {
    front.ProduceRequest(Req{i});
    front.PushRequests();
    Req r = back.ConsumeRequest();
    ASSERT_EQ(r.id, i);
    back.ProduceResponse(Rsp{i});
    back.PushResponses();
    ASSERT_EQ(front.ConsumeResponse().id, i);
  }
  EXPECT_EQ(front.req_prod_pvt(), 10000u);
}

TEST(RingTest, WraparoundNearUint32Max) {
  // Start indices near wrap by running the ring until indices overflow.
  TestShared shared(2);
  shared.req_prod = shared.rsp_prod = 0xfffffff0u;
  shared.req_event = shared.rsp_prod + 1;
  shared.rsp_event = shared.req_prod + 1;
  TestFront front(&shared);
  TestBack back(&shared);
  // Private indices start at 0 in our implementation, so emulate catch-up:
  // this test instead verifies arithmetic helpers behave across the wrap by
  // running a fresh ring for >2^16 iterations with a size-2 ring.
  TestShared shared2(2);
  TestFront f2(&shared2);
  TestBack b2(&shared2);
  for (uint32_t i = 0; i < 70000; ++i) {
    f2.ProduceRequest(Req{i});
    f2.PushRequests();
    ASSERT_EQ(b2.ConsumeRequest().id, i);
    b2.ProduceResponse(Rsp{i});
    b2.PushResponses();
    ASSERT_EQ(f2.ConsumeResponse().id, i);
  }
  SUCCEED();
}

// Randomized producer/consumer schedule: every request gets exactly one
// response, in order, regardless of batching pattern.
class RingFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RingFuzzTest, RandomBatchedScheduleDeliversAll) {
  Rng rng(GetParam());
  TestShared shared(16);
  TestFront front(&shared);
  TestBack back(&shared);

  uint32_t next_req_id = 0;
  uint32_t next_expected_req = 0;
  uint32_t next_rsp_id = 0;
  uint32_t next_expected_rsp = 0;
  int backend_backlog = 0;  // Consumed but not yet responded.

  const int kOps = 5000;
  for (int i = 0; i < kOps; ++i) {
    switch (rng.NextBelow(3)) {
      case 0: {  // Frontend produces a batch.
        uint64_t n = rng.NextBelow(5);
        for (uint64_t k = 0; k < n && !front.Full(); ++k) {
          front.ProduceRequest(Req{next_req_id++});
        }
        front.PushRequests();
        break;
      }
      case 1: {  // Backend consumes a batch and responds.
        uint64_t n = rng.NextBelow(5);
        for (uint64_t k = 0; k < n && back.HasUnconsumedRequests(); ++k) {
          Req r = back.ConsumeRequest();
          ASSERT_EQ(r.id, next_expected_req++);
          ++backend_backlog;
        }
        while (backend_backlog > 0 && rng.NextBool(0.7)) {
          back.ProduceResponse(Rsp{next_rsp_id++});
          --backend_backlog;
        }
        back.PushResponses();
        break;
      }
      case 2: {  // Frontend consumes responses.
        while (front.HasUnconsumedResponses()) {
          ASSERT_EQ(front.ConsumeResponse().id, next_expected_rsp++);
        }
        break;
      }
    }
  }
  // Drain everything.
  while (back.HasUnconsumedRequests()) {
    ASSERT_EQ(back.ConsumeRequest().id, next_expected_req++);
    ++backend_backlog;
  }
  while (backend_backlog > 0) {
    back.ProduceResponse(Rsp{next_rsp_id++});
    --backend_backlog;
  }
  back.PushResponses();
  while (front.HasUnconsumedResponses()) {
    ASSERT_EQ(front.ConsumeResponse().id, next_expected_rsp++);
  }
  EXPECT_EQ(next_expected_rsp, next_req_id);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingFuzzTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace kite
