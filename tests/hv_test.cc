// Unit tests for the hypervisor substrate: grant tables, event channels,
// xenstore (permissions + watches), xenbus, PCI/IOMMU.
#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/hv/hypervisor.h"
#include "src/hv/xenbus.h"

namespace kite {
namespace {

class HvTest : public ::testing::Test {
 protected:
  Executor ex_;
  Hypervisor hv_{&ex_};
};

TEST_F(HvTest, Dom0ExistsAndIsOnline) {
  ASSERT_NE(hv_.dom0(), nullptr);
  EXPECT_EQ(hv_.dom0()->id(), 0);
  EXPECT_TRUE(hv_.dom0()->online());
}

TEST_F(HvTest, CreateDomainAssignsIds) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  Domain* b = hv_.CreateDomain("b", 2, 1024);
  EXPECT_EQ(a->id(), 1);
  EXPECT_EQ(b->id(), 2);
  EXPECT_EQ(b->vcpu_count(), 2);
  EXPECT_EQ(hv_.live_domain_count(), 3);
  EXPECT_EQ(hv_.domain(1), a);
  EXPECT_EQ(hv_.domain(99), nullptr);
}

TEST_F(HvTest, DestroyDomainRemovesStoreSubtree) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  const std::string home = a->store_home();
  EXPECT_TRUE(hv_.store().Exists(home + "/name"));
  hv_.DestroyDomain(a->id());
  EXPECT_FALSE(hv_.store().Exists(home));
  EXPECT_EQ(hv_.live_domain_count(), 1);
}

// --- Grant tables. ---

TEST_F(HvTest, GrantMapRespectsOwnership) {
  Domain* owner = hv_.CreateDomain("owner", 1, 512);
  Domain* peer = hv_.CreateDomain("peer", 1, 512);
  Domain* other = hv_.CreateDomain("other", 1, 512);
  PageRef page = AllocPage();
  page->data[0] = 0x42;
  GrantRef ref = owner->grant_table().GrantAccess(peer->id(), page, false);

  MappedGrant good = hv_.GrantMap(peer, owner->id(), ref, true);
  ASSERT_TRUE(good.valid());
  EXPECT_EQ(good.page()->data[0], 0x42);

  // A third domain may not map someone else's grant.
  MappedGrant bad = hv_.GrantMap(other, owner->id(), ref, false);
  EXPECT_FALSE(bad.valid());
}

TEST_F(HvTest, ReadonlyGrantRefusesWriteMapping) {
  Domain* owner = hv_.CreateDomain("owner", 1, 512);
  Domain* peer = hv_.CreateDomain("peer", 1, 512);
  GrantRef ref = owner->grant_table().GrantAccess(peer->id(), AllocPage(), true);
  EXPECT_FALSE(hv_.GrantMap(peer, owner->id(), ref, true).valid());
  EXPECT_TRUE(hv_.GrantMap(peer, owner->id(), ref, false).valid());
}

TEST_F(HvTest, EndAccessFailsWhileMapped) {
  Domain* owner = hv_.CreateDomain("owner", 1, 512);
  Domain* peer = hv_.CreateDomain("peer", 1, 512);
  GrantRef ref = owner->grant_table().GrantAccess(peer->id(), AllocPage(), false);
  {
    MappedGrant map = hv_.GrantMap(peer, owner->id(), ref, false);
    ASSERT_TRUE(map.valid());
    EXPECT_FALSE(owner->grant_table().EndAccess(ref));  // Mapped: refuse.
  }
  EXPECT_TRUE(owner->grant_table().EndAccess(ref));  // Unmapped: ok.
  EXPECT_EQ(owner->grant_table().active_entry_count(), 0);
}

TEST_F(HvTest, GrantRefsAreRecycled) {
  Domain* owner = hv_.CreateDomain("owner", 1, 512);
  GrantRef a = owner->grant_table().GrantAccess(0, AllocPage(), false);
  EXPECT_TRUE(owner->grant_table().EndAccess(a));
  GrantRef b = owner->grant_table().GrantAccess(0, AllocPage(), false);
  EXPECT_EQ(a, b);
}

TEST_F(HvTest, GrantCopyMovesBytesAndChecksBounds) {
  Domain* owner = hv_.CreateDomain("owner", 1, 512);
  Domain* peer = hv_.CreateDomain("peer", 1, 512);
  PageRef page = AllocPage();
  GrantRef ref = owner->grant_table().GrantAccess(peer->id(), page, false);

  Buffer src = {1, 2, 3, 4, 5};
  EXPECT_TRUE(hv_.GrantCopyToGranted(peer, owner->id(), ref, 100, src));
  EXPECT_EQ(page->data[100], 1);
  EXPECT_EQ(page->data[104], 5);

  Buffer dst(5);
  EXPECT_TRUE(hv_.GrantCopyFromGranted(peer, owner->id(), ref, 100, dst));
  EXPECT_EQ(dst, src);

  // Out of bounds.
  Buffer big(kPageSize);
  EXPECT_FALSE(hv_.GrantCopyToGranted(peer, owner->id(), ref, 1, big));
}

TEST_F(HvTest, GrantCopyToReadonlyFails) {
  Domain* owner = hv_.CreateDomain("owner", 1, 512);
  Domain* peer = hv_.CreateDomain("peer", 1, 512);
  GrantRef ref = owner->grant_table().GrantAccess(peer->id(), AllocPage(), true);
  Buffer src = {1};
  EXPECT_FALSE(hv_.GrantCopyToGranted(peer, owner->id(), ref, 0, src));
  Buffer dst(1);
  EXPECT_TRUE(hv_.GrantCopyFromGranted(peer, owner->id(), ref, 0, dst));
}

TEST_F(HvTest, GrantOperationsChargeCpu) {
  Domain* owner = hv_.CreateDomain("owner", 1, 512);
  Domain* peer = hv_.CreateDomain("peer", 1, 512);
  GrantRef ref = owner->grant_table().GrantAccess(peer->id(), AllocPage(), false);
  const SimDuration before = peer->vcpu(0)->busy_total();
  {
    MappedGrant map = hv_.GrantMap(peer, owner->id(), ref, false);
  }
  const SimDuration after = peer->vcpu(0)->busy_total();
  EXPECT_EQ((after - before).ns(),
            (hv_.costs().grant_map + hv_.costs().grant_unmap).ns());
  EXPECT_EQ(hv_.grant_maps(), 1u);
  EXPECT_EQ(hv_.grant_unmaps(), 1u);
}

// --- Event channels. ---

TEST_F(HvTest, EventChannelDelivery) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  Domain* b = hv_.CreateDomain("b", 1, 512);
  EvtPort pa = hv_.EventAllocUnbound(a, b->id());
  EvtPort pb = hv_.EventBindInterdomain(b, a->id(), pa);
  ASSERT_NE(pb, kInvalidPort);

  int a_irqs = 0;
  int b_irqs = 0;
  hv_.EventSetHandler(a, pa, [&] { ++a_irqs; });
  hv_.EventSetHandler(b, pb, [&] { ++b_irqs; });

  hv_.EventSend(a, pa);  // a → b.
  ex_.RunUntilIdle();
  EXPECT_EQ(b_irqs, 1);
  EXPECT_EQ(a_irqs, 0);

  hv_.EventSend(b, pb);  // b → a.
  ex_.RunUntilIdle();
  EXPECT_EQ(a_irqs, 1);
}

TEST_F(HvTest, EventsPendingCoalesce) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  Domain* b = hv_.CreateDomain("b", 1, 512);
  EvtPort pa = hv_.EventAllocUnbound(a, b->id());
  EvtPort pb = hv_.EventBindInterdomain(b, a->id(), pa);
  int b_irqs = 0;
  hv_.EventSetHandler(b, pb, [&] { ++b_irqs; });
  hv_.EventSend(a, pa);
  hv_.EventSend(a, pa);
  hv_.EventSend(a, pa);
  ex_.RunUntilIdle();
  EXPECT_EQ(b_irqs, 1);
  // After delivery, a new send produces a new interrupt.
  hv_.EventSend(a, pa);
  ex_.RunUntilIdle();
  EXPECT_EQ(b_irqs, 2);
}

TEST_F(HvTest, BindRequiresMatchingRemote) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  Domain* b = hv_.CreateDomain("b", 1, 512);
  Domain* c = hv_.CreateDomain("c", 1, 512);
  EvtPort pa = hv_.EventAllocUnbound(a, b->id());
  // c was not the designated remote.
  EXPECT_EQ(hv_.EventBindInterdomain(c, a->id(), pa), kInvalidPort);
  // Correct remote binds fine.
  EXPECT_NE(hv_.EventBindInterdomain(b, a->id(), pa), kInvalidPort);
  // Double-bind fails.
  EXPECT_EQ(hv_.EventBindInterdomain(b, a->id(), pa), kInvalidPort);
}

TEST_F(HvTest, SendAfterPeerCloseFails) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  Domain* b = hv_.CreateDomain("b", 1, 512);
  EvtPort pa = hv_.EventAllocUnbound(a, b->id());
  EvtPort pb = hv_.EventBindInterdomain(b, a->id(), pa);
  hv_.EventClose(b, pb);
  EXPECT_FALSE(hv_.EventSend(a, pa));
}

TEST_F(HvTest, EventToDestroyedDomainIsDropped) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  Domain* b = hv_.CreateDomain("b", 1, 512);
  EvtPort pa = hv_.EventAllocUnbound(a, b->id());
  EvtPort pb = hv_.EventBindInterdomain(b, a->id(), pa);
  int b_irqs = 0;
  hv_.EventSetHandler(b, pb, [&] { ++b_irqs; });
  hv_.EventSend(a, pa);
  hv_.DestroyDomain(b->id());  // Destroy while the event is in flight.
  ex_.RunUntilIdle();
  EXPECT_EQ(b_irqs, 0);
}

// --- Xenstore. ---

TEST_F(HvTest, StoreReadWriteList) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  EXPECT_TRUE(a->StoreWrite(a->store_home() + "/device/vif/0/mac", "aa:bb"));
  EXPECT_EQ(a->StoreRead(a->store_home() + "/device/vif/0/mac").value_or(""), "aa:bb");
  auto children = a->StoreList(a->store_home() + "/device/vif");
  ASSERT_TRUE(children.has_value());
  ASSERT_EQ(children->size(), 1u);
  EXPECT_EQ((*children)[0], "0");
}

TEST_F(HvTest, StorePermissionsIsolateDomains) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  Domain* b = hv_.CreateDomain("b", 1, 512);
  ASSERT_TRUE(a->StoreWrite(a->store_home() + "/secret", "s3cret"));
  // b cannot read a's subtree.
  EXPECT_FALSE(b->StoreRead(a->store_home() + "/secret").has_value());
  // Dom0 grants b access; now it can.
  hv_.store().SetPermission(kDom0, a->store_home() + "/secret", b->id());
  EXPECT_TRUE(b->StoreRead(a->store_home() + "/secret").has_value());
}

TEST_F(HvTest, StoreCannotWriteIntoForeignTree) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  Domain* b = hv_.CreateDomain("b", 1, 512);
  EXPECT_FALSE(b->StoreWrite(a->store_home() + "/evil", "x"));
  EXPECT_FALSE(hv_.store().Exists(a->store_home() + "/evil"));
}

TEST_F(HvTest, StoreIntRoundTrip) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  EXPECT_TRUE(a->StoreWriteInt(a->store_home() + "/n", 12345));
  EXPECT_EQ(a->StoreReadInt(a->store_home() + "/n").value_or(-1), 12345);
  a->StoreWrite(a->store_home() + "/n", "garbage");
  EXPECT_FALSE(a->StoreReadInt(a->store_home() + "/n").has_value());
}

TEST_F(HvTest, WatchFiresOnRegistrationAndOnChange) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  std::vector<std::string> fired;
  a->StoreWatch(a->store_home() + "/device", "tok",
                [&](const std::string& path, const std::string& token) {
                  fired.push_back(path);
                  EXPECT_EQ(token, "tok");
                });
  ex_.RunUntilIdle();
  ASSERT_EQ(fired.size(), 1u);  // Registration fire.
  a->StoreWrite(a->store_home() + "/device/vif/0/state", "1");
  ex_.RunUntilIdle();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], a->store_home() + "/device/vif/0/state");
}

TEST_F(HvTest, WatchDoesNotFireOutsidePrefix) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  int fires = 0;
  a->StoreWatch(a->store_home() + "/device", "tok",
                [&](const std::string&, const std::string&) { ++fires; });
  ex_.RunUntilIdle();
  EXPECT_EQ(fires, 1);
  a->StoreWrite(a->store_home() + "/other", "x");
  ex_.RunUntilIdle();
  EXPECT_EQ(fires, 1);
}

TEST_F(HvTest, WatchFiresOnRemove) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  a->StoreWrite(a->store_home() + "/device/x", "1");
  int fires = 0;
  a->StoreWatch(a->store_home() + "/device", "tok",
                [&](const std::string&, const std::string&) { ++fires; });
  ex_.RunUntilIdle();
  fires = 0;
  a->StoreRemove(a->store_home() + "/device/x");
  ex_.RunUntilIdle();
  EXPECT_EQ(fires, 1);
}

TEST_F(HvTest, RemovedWatchStopsFiring) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  int fires = 0;
  WatchId id = a->StoreWatch(a->store_home(), "tok",
                             [&](const std::string&, const std::string&) { ++fires; });
  ex_.RunUntilIdle();
  hv_.store().RemoveWatch(id);
  a->StoreWrite(a->store_home() + "/x", "1");
  ex_.RunUntilIdle();
  EXPECT_EQ(fires, 1);  // Only the registration fire.
}

// --- Xenbus. ---

TEST_F(HvTest, XenbusStateRoundTrip) {
  Domain* a = hv_.CreateDomain("a", 1, 512);
  XenbusClient bus(&hv_.store(), a->id());
  const std::string path = FrontendPath(a->id(), "vif", 0);
  EXPECT_EQ(bus.ReadState(path), XenbusState::kUnknown);
  EXPECT_TRUE(bus.SwitchState(path, XenbusState::kInitialised));
  EXPECT_EQ(bus.ReadState(path), XenbusState::kInitialised);
  EXPECT_TRUE(bus.SwitchState(path, XenbusState::kConnected));
  EXPECT_EQ(bus.ReadState(path), XenbusState::kConnected);
}

TEST_F(HvTest, XenbusPathConventions) {
  EXPECT_EQ(BackendPath(1, "vif", 3, 0), "/local/domain/1/backend/vif/3/0");
  EXPECT_EQ(FrontendPath(3, "vif", 0), "/local/domain/3/device/vif/0");
  EXPECT_EQ(DomainPath(7), "/local/domain/7");
}

TEST(XenbusNamesTest, AllStatesNamed) {
  EXPECT_STREQ(XenbusStateName(XenbusState::kInitialising), "Initialising");
  EXPECT_STREQ(XenbusStateName(XenbusState::kConnected), "Connected");
  EXPECT_STREQ(XenbusStateName(XenbusState::kClosed), "Closed");
}

// --- PCI / IOMMU. ---

class TestPciDevice : public PciDevice {
 public:
  TestPciDevice() : PciDevice("0000:05:00.0", "test-dev") {}
};

TEST_F(HvTest, PciAssignmentAndIrq) {
  Domain* dd = hv_.CreateDomain("driver", 1, 512);
  TestPciDevice dev;
  EXPECT_TRUE(hv_.AssignPci(&dev, dd, true));
  EXPECT_FALSE(hv_.AssignPci(&dev, hv_.dom0(), true));  // Already assigned.
  int irqs = 0;
  dev.SetIrqHandler([&] { ++irqs; });
  dev.RaiseIrq();
  ex_.RunUntilIdle();
  EXPECT_EQ(irqs, 1);
}

TEST_F(HvTest, IommuRestrictsDma) {
  Domain* dd = hv_.CreateDomain("driver", 1, 512);
  Domain* victim = hv_.CreateDomain("victim", 1, 512);
  TestPciDevice dev;
  hv_.AssignPci(&dev, dd, /*iommu=*/true);
  EXPECT_TRUE(dev.DmaAllowed(dd));
  EXPECT_FALSE(dev.DmaAllowed(victim));

  TestPciDevice unprotected;
  Domain* dd2 = hv_.CreateDomain("driver2", 1, 512);
  hv_.AssignPci(&unprotected, dd2, /*iommu=*/false);
  // Without IOMMU a malicious device can DMA anywhere — the paper's threat.
  EXPECT_TRUE(unprotected.DmaAllowed(victim));
}

TEST_F(HvTest, IrqAfterUnassignIsDropped) {
  Domain* dd = hv_.CreateDomain("driver", 1, 512);
  TestPciDevice dev;
  hv_.AssignPci(&dev, dd, true);
  int irqs = 0;
  dev.SetIrqHandler([&] { ++irqs; });
  hv_.UnassignPci(&dev);
  dev.RaiseIrq();
  ex_.RunUntilIdle();
  EXPECT_EQ(irqs, 0);
}

}  // namespace
}  // namespace kite
