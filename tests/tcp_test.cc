// TCP robustness tests: retransmission under loss, teardown sequences,
// window backpressure, and stress with many concurrent transfers.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/net/nic.h"
#include "src/net/stack.h"
#include "src/net/tcp.h"

namespace kite {
namespace {

const Ipv4Addr kIpA = Ipv4Addr::FromOctets(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::FromOctets(10, 0, 0, 2);

// A NetIf decorator that drops a configurable fraction of frames in each
// direction — for exercising the retransmission machinery.
class LossyIf : public NetIf {
 public:
  LossyIf(NetIf* inner, double loss, uint64_t seed)
      : NetIf("lossy-" + inner->ifname(), inner->mac()),
        inner_(inner),
        loss_(loss),
        rng_(seed) {
    SetUp(true);
    inner_->SetInputHandler([this](const EthernetFrame& frame) {
      if (rng_.NextBool(loss_)) {
        ++dropped_;
        return;
      }
      DeliverInput(frame);
    });
  }

  void Output(const EthernetFrame& frame) override {
    if (rng_.NextBool(loss_)) {
      ++dropped_;
      return;
    }
    inner_->Output(frame);
  }

  uint64_t dropped() const { return dropped_; }

 private:
  NetIf* inner_;
  double loss_;
  Rng rng_;
  uint64_t dropped_ = 0;
};

class TcpLossTest : public ::testing::TestWithParam<int> {
 protected:
  TcpLossTest() {
    nic_a_ = std::make_unique<Nic>(&ex_, "a", "nicA", MacAddr::FromId(1));
    nic_b_ = std::make_unique<Nic>(&ex_, "b", "nicB", MacAddr::FromId(2));
    Nic::ConnectBackToBack(nic_a_.get(), nic_b_.get());
    lossy_ = std::make_unique<LossyIf>(nic_a_->netif(), /*loss=*/0.02,
                                       /*seed=*/GetParam());
    client_ = std::make_unique<EtherStack>(&ex_, nullptr, lossy_.get());
    server_ = std::make_unique<EtherStack>(&ex_, nullptr, nic_b_->netif());
    client_->ConfigureIp(kIpA);
    server_->ConfigureIp(kIpB);
    // Static ARP: ARP itself is not retried, so resolve out of band.
    client_->AddArpEntry(kIpB, nic_b_->mac());
    server_->AddArpEntry(kIpA, nic_a_->mac());
  }

  Executor ex_;
  std::unique_ptr<Nic> nic_a_, nic_b_;
  std::unique_ptr<LossyIf> lossy_;
  std::unique_ptr<EtherStack> client_, server_;
};

TEST_P(TcpLossTest, BulkTransferSurvives2PercentLoss) {
  Rng rng(99);
  Buffer payload(200 * 1024);
  for (auto& b : payload) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  const uint64_t digest = Fnv1a(payload);

  Buffer received;
  server_->ListenTcp(8080, [&](TcpConn* conn) {
    conn->SetDataCallback([&](std::span<const uint8_t> data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  TcpConn* c =
      client_->ConnectTcp(kIpB, 8080, [&](TcpConn* conn) { conn->Send(payload); });
  ex_.RunUntilIdle();
  ASSERT_EQ(received.size(), payload.size()) << "dropped=" << lossy_->dropped();
  EXPECT_EQ(Fnv1a(received), digest);
  // Loss actually exercised recovery: fast retransmit normally repairs it
  // without a timeout, but either path counts.
  EXPECT_GT(c->retransmits() + c->fast_retransmits(), 0u);
  EXPECT_GT(lossy_->dropped(), 0u);
}

TEST_P(TcpLossTest, EchoUnderLossCompletes) {
  server_->ListenTcp(9090, [](TcpConn* conn) {
    conn->SetDataCallback([conn](std::span<const uint8_t> data) {
      conn->Send(Buffer(data.begin(), data.end()));
    });
  });
  Buffer reply;
  TcpConn* c = client_->ConnectTcp(
      kIpB, 9090, [](TcpConn* conn) { conn->Send(Buffer(50000, 0x5a)); });
  c->SetDataCallback([&](std::span<const uint8_t> data) {
    reply.insert(reply.end(), data.begin(), data.end());
  });
  ex_.RunUntilIdle();
  EXPECT_EQ(reply.size(), 50000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpLossTest, ::testing::Range(1, 6));

class TcpPairTest : public ::testing::Test {
 protected:
  TcpPairTest() {
    nic_a_ = std::make_unique<Nic>(&ex_, "a", "nicA", MacAddr::FromId(1));
    nic_b_ = std::make_unique<Nic>(&ex_, "b", "nicB", MacAddr::FromId(2));
    Nic::ConnectBackToBack(nic_a_.get(), nic_b_.get());
    client_ = std::make_unique<EtherStack>(&ex_, nullptr, nic_a_->netif());
    server_ = std::make_unique<EtherStack>(&ex_, nullptr, nic_b_->netif());
    client_->ConfigureIp(kIpA);
    server_->ConfigureIp(kIpB);
  }

  Executor ex_;
  std::unique_ptr<Nic> nic_a_, nic_b_;
  std::unique_ptr<EtherStack> client_, server_;
};

TEST_F(TcpPairTest, SimultaneousCloseBothSidesNotified) {
  bool server_closed = false;
  bool client_closed = false;
  TcpConn* server_conn = nullptr;
  server_->ListenTcp(8080, [&](TcpConn* conn) {
    server_conn = conn;
    conn->SetCloseCallback([&] { server_closed = true; });
  });
  TcpConn* c = client_->ConnectTcp(kIpB, 8080, [](TcpConn*) {});
  c->SetCloseCallback([&] { client_closed = true; });
  ex_.RunUntilIdle();
  ASSERT_NE(server_conn, nullptr);
  c->Close();
  server_conn->Close();
  ex_.RunUntilIdle();
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(client_closed);
}

TEST_F(TcpPairTest, DataBeforeCloseIsFullyDelivered) {
  Buffer received;
  bool closed = false;
  server_->ListenTcp(8080, [&](TcpConn* conn) {
    conn->SetDataCallback([&](std::span<const uint8_t> data) {
      received.insert(received.end(), data.begin(), data.end());
    });
    conn->SetCloseCallback([&] { closed = true; });
  });
  client_->ConnectTcp(kIpB, 8080, [](TcpConn* conn) {
    conn->Send(Buffer(100000, 0x2f));
    conn->Close();  // FIN queued behind the data.
  });
  ex_.RunUntilIdle();
  EXPECT_EQ(received.size(), 100000u);
  EXPECT_TRUE(closed);
}

TEST_F(TcpPairTest, AbortSendsRst) {
  bool server_closed = false;
  server_->ListenTcp(8080, [&](TcpConn* conn) {
    conn->SetCloseCallback([&] { server_closed = true; });
  });
  TcpConn* c = client_->ConnectTcp(kIpB, 8080, [](TcpConn*) {});
  ex_.RunUntilIdle();
  c->Abort();
  ex_.RunUntilIdle();
  EXPECT_TRUE(server_closed);
}

TEST_F(TcpPairTest, SendQueueDrainsUnderWindowBackpressure) {
  // Server never reads slowly — our model always delivers — but the sender's
  // window still bounds in-flight data; a 3 MB send must complete.
  uint64_t received = 0;
  server_->ListenTcp(8080, [&](TcpConn* conn) {
    conn->SetDataCallback(
        [&](std::span<const uint8_t> data) { received += data.size(); });
  });
  TcpConn* c = client_->ConnectTcp(
      kIpB, 8080, [](TcpConn* conn) { conn->Send(Buffer(3 * 1024 * 1024, 1)); });
  ex_.RunUntilIdle();
  EXPECT_EQ(received, 3u * 1024 * 1024);
  EXPECT_EQ(c->send_queue_bytes(), 0u);
}

TEST_F(TcpPairTest, InterleavedConnectionsKeepDataSeparate) {
  // Two connections echo different fill bytes; no cross-talk.
  server_->ListenTcp(8080, [](TcpConn* conn) {
    conn->SetDataCallback([conn](std::span<const uint8_t> data) {
      conn->Send(Buffer(data.begin(), data.end()));
    });
  });
  Buffer reply1;
  Buffer reply2;
  TcpConn* c1 = client_->ConnectTcp(
      kIpB, 8080, [](TcpConn* conn) { conn->Send(Buffer(30000, 0x11)); });
  c1->SetDataCallback([&](std::span<const uint8_t> d) {
    reply1.insert(reply1.end(), d.begin(), d.end());
  });
  TcpConn* c2 = client_->ConnectTcp(
      kIpB, 8080, [](TcpConn* conn) { conn->Send(Buffer(30000, 0x22)); });
  c2->SetDataCallback([&](std::span<const uint8_t> d) {
    reply2.insert(reply2.end(), d.begin(), d.end());
  });
  ex_.RunUntilIdle();
  ASSERT_EQ(reply1.size(), 30000u);
  ASSERT_EQ(reply2.size(), 30000u);
  EXPECT_TRUE(std::all_of(reply1.begin(), reply1.end(),
                          [](uint8_t b) { return b == 0x11; }));
  EXPECT_TRUE(std::all_of(reply2.begin(), reply2.end(),
                          [](uint8_t b) { return b == 0x22; }));
}

TEST_F(TcpPairTest, ServerStackDestructionWithLiveConnsIsSafe) {
  client_->ConnectTcp(kIpB, 8080, [](TcpConn*) {});
  ex_.RunFor(Micros(10));
  server_.reset();  // Mid-handshake teardown.
  ex_.RunFor(Millis(500));
  SUCCEED();
}

}  // namespace
}  // namespace kite
