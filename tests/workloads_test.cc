// Tests for the workload generators and protocol servers: SimpleFs
// allocation, HTTP, RESP/Redis, memcached, RPC/MySQL, and the benchmark
// drivers — run against direct NIC pairs (fast) and full driver-domain
// topologies (end-to-end smoke).
#include <gtest/gtest.h>

#include "src/core/kite.h"
#include "src/workloads/filebench.h"
#include "src/workloads/fs.h"
#include "src/workloads/http.h"
#include "src/workloads/memcached.h"
#include "src/workloads/mysql.h"
#include "src/workloads/netbench.h"
#include "src/workloads/redis.h"
#include "src/workloads/rpc.h"
#include "src/workloads/storagebench.h"

namespace kite {
namespace {

const Ipv4Addr kIpA = Ipv4Addr::FromOctets(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::FromOctets(10, 0, 0, 2);

// Direct NIC-pair fixture for protocol-level tests (no driver domain).
class NetPair : public ::testing::Test {
 protected:
  NetPair() {
    nic_a_ = std::make_unique<Nic>(&ex_, "a", "nicA", MacAddr::FromId(1));
    nic_b_ = std::make_unique<Nic>(&ex_, "b", "nicB", MacAddr::FromId(2));
    Nic::ConnectBackToBack(nic_a_.get(), nic_b_.get());
    client_ = std::make_unique<EtherStack>(&ex_, nullptr, nic_a_->netif());
    server_ = std::make_unique<EtherStack>(&ex_, nullptr, nic_b_->netif());
    client_->ConfigureIp(kIpA);
    server_->ConfigureIp(kIpB);
  }

  Executor ex_;
  std::unique_ptr<Nic> nic_a_, nic_b_;
  std::unique_ptr<EtherStack> client_, server_;
};

// --- RPC framing. ---

TEST(RpcFramerTest, FramesSplitAcrossFeeds) {
  RpcFramer framer;
  Buffer msg = RpcFramer::Encode(7, Buffer{1, 2, 3});
  // Feed byte by byte; exactly one frame must come out, at the last byte.
  int frames = 0;
  for (size_t i = 0; i < msg.size(); ++i) {
    auto out = framer.Feed(std::span<const uint8_t>(&msg[i], 1));
    frames += static_cast<int>(out.size());
    if (i + 1 < msg.size()) {
      EXPECT_EQ(out.size(), 0u);
    } else {
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0].type, 7);
      EXPECT_EQ(out[0].payload, (Buffer{1, 2, 3}));
    }
  }
  EXPECT_EQ(frames, 1);
}

TEST(RpcFramerTest, MultipleFramesInOneFeed) {
  RpcFramer framer;
  Buffer stream;
  for (uint8_t t = 0; t < 5; ++t) {
    Buffer m = RpcFramer::Encode(t, Buffer(10, t));
    stream.insert(stream.end(), m.begin(), m.end());
  }
  auto out = framer.Feed(stream);
  ASSERT_EQ(out.size(), 5u);
  for (uint8_t t = 0; t < 5; ++t) {
    EXPECT_EQ(out[t].type, t);
  }
}

TEST_F(NetPair, RpcRoundTripPipelined) {
  RpcServer server(server_.get(), 9100,
                   [](uint8_t type, const Buffer& req, RpcServer::RespondFn respond) {
                     respond(type, Buffer(req.size() * 2, type));
                   });
  RpcClient client(client_.get(), kIpB, 9100);
  int responses = 0;
  for (int i = 0; i < 10; ++i) {
    client.Call(static_cast<uint8_t>(i), Buffer(100, 1),
                [&responses, i](uint8_t type, const Buffer& payload) {
                  EXPECT_EQ(type, i);  // FIFO ordering.
                  EXPECT_EQ(payload.size(), 200u);
                  ++responses;
                });
  }
  ex_.RunUntilIdle();
  EXPECT_EQ(responses, 10);
  EXPECT_EQ(server.requests(), 10u);
}

// --- HTTP. ---

TEST_F(NetPair, HttpServesFileAndApacheBenchMeasures) {
  HttpServer http(server_.get(), 80);
  http.AddFile("/file", 64 * 1024);
  AbConfig config;
  config.total_requests = 50;
  config.concurrency = 8;
  ApacheBench ab(client_.get(), kIpB, 80, config);
  bool done = false;
  ab.Run([&](const AbResult& r) {
    done = true;
    EXPECT_EQ(r.completed, 50u);
    EXPECT_EQ(r.failed, 0u);
    EXPECT_GT(r.requests_per_sec, 0);
    EXPECT_GT(r.mbytes_per_sec, 0);
  });
  ex_.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(http.requests_served(), 50u);
}

TEST_F(NetPair, Http404ForMissingFile) {
  HttpServer http(server_.get(), 80);
  AbConfig config;
  config.total_requests = 1;
  config.concurrency = 1;
  config.path = "/nope";
  ApacheBench ab(client_.get(), kIpB, 80, config);
  bool done = false;
  ab.Run([&](const AbResult& r) {
    done = true;
    EXPECT_EQ(r.completed, 1u);  // 404 with Content-Length: 0 still completes.
  });
  ex_.RunUntilIdle();
  EXPECT_TRUE(done);
}

// --- Redis / RESP. ---

TEST(RespTest, EncodeAndConsumeReplies) {
  Buffer cmd = RespEncodeCommand({"SET", "k", "v"});
  const std::string expect = "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n";
  EXPECT_EQ(std::string(cmd.begin(), cmd.end()), expect);

  std::string replies = "+OK\r\n$5\r\nhello\r\n$-1\r\n:42\r\n";
  EXPECT_EQ(RespConsumeReplies(&replies), 4);
  EXPECT_TRUE(replies.empty());

  std::string partial = "$10\r\nhel";
  EXPECT_EQ(RespConsumeReplies(&partial), 0);
  EXPECT_FALSE(partial.empty());
}

TEST_F(NetPair, RedisSetGetAndBench) {
  RedisServer redis(server_.get(), 6379);
  RedisBenchConfig config;
  config.connections = 4;
  config.pipeline = 50;
  config.total_ops = 2000;
  config.value_bytes = 128;
  RedisBench bench(client_.get(), kIpB, 6379, config);
  bool done = false;
  bench.Run([&](const RedisBenchResult& r) {
    done = true;
    EXPECT_EQ(r.completed, 2000u);
    EXPECT_GT(r.set_ops_per_sec + r.get_ops_per_sec, 0);
  });
  ex_.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_GT(redis.sets(), 0u);
  EXPECT_GT(redis.gets(), 0u);
  EXPECT_EQ(redis.sets() + redis.gets(), 2000u);
}

// --- Memcached / memtier. ---

TEST_F(NetPair, MemcachedSetGetProtocol) {
  MemcachedServer memcached(server_.get(), 11211);
  MemtierConfig config;
  config.total_ops = 500;
  config.connections = 2;
  config.value_bytes = 1024;
  MemtierBench bench(client_.get(), kIpB, 11211, config);
  bool done = false;
  bench.Run([&](const MemtierResult& r) {
    done = true;
    EXPECT_EQ(r.completed, 500u);
    EXPECT_GT(r.avg_latency_ms, 0);
  });
  ex_.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_GT(memcached.gets(), memcached.sets());  // 1:10 ratio.
}

// --- MySQL model. ---

TEST_F(NetPair, SysbenchOltpMemoryBound) {
  MysqlServer mysql(server_.get(), 3306, /*storage=*/nullptr);
  SysbenchOltpConfig config;
  config.threads = 4;
  config.duration = Millis(50);
  SysbenchOltp sysbench(client_.get(), kIpB, 3306, config);
  bool done = false;
  sysbench.Run([&](const SysbenchOltpResult& r) {
    done = true;
    EXPECT_GT(r.queries, 0u);
    EXPECT_GT(r.transactions_per_sec, 0);
    // read_only txn = 14 queries.
    EXPECT_NEAR(r.queries_per_sec / r.transactions_per_sec, 14.0, 0.5);
  });
  ex_.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(mysql.page_reads(), 0u);  // Memory-bound: no storage I/O.
}

// --- Network micro-benchmarks over the pair. ---

TEST_F(NetPair, NuttcpMeasuresThroughput) {
  NuttcpConfig config;
  config.offered_gbps = 2.0;
  config.duration = Millis(20);
  NuttcpUdp nuttcp(client_.get(), server_.get(), kIpB, config);
  bool done = false;
  nuttcp.Run([&](const NuttcpResult& r) {
    done = true;
    EXPECT_GT(r.goodput_gbps, 1.5);
    EXPECT_LT(r.loss_percent, 5.0);
  });
  ex_.RunUntilIdle();
  EXPECT_TRUE(done);
}

TEST_F(NetPair, NetperfRrMeasuresLatency) {
  NetperfRrConfig config;
  config.requests = 50;
  config.interval = Micros(200);
  NetperfRr rr(client_.get(), server_.get(), kIpB, config);
  bool done = false;
  rr.Run([&](const NetperfRrResult& r) {
    done = true;
    EXPECT_EQ(r.completed, 50);
    EXPECT_GT(r.latency_ms.Mean(), 0);
  });
  ex_.RunUntilIdle();
  EXPECT_TRUE(done);
}

TEST_F(NetPair, PingBenchCollectsRtts) {
  PingBench ping(client_.get(), kIpB, /*count=*/10, /*interval=*/Millis(1));
  bool done = false;
  ping.Run([&](const PingBenchResult& r) {
    done = true;
    EXPECT_EQ(r.sent, 10);
    EXPECT_EQ(r.received, 10);
  });
  ex_.RunUntilIdle();
  EXPECT_TRUE(done);
}

// --- Storage workloads over a full storage domain. ---

class StorageWorkloads : public ::testing::Test {
 protected:
  StorageWorkloads() {
    KiteSystem::Params params;
    params.disk.capacity_bytes = 4LL * 1024 * 1024 * 1024;
    sys_ = std::make_unique<KiteSystem>(params);
    stordom_ = sys_->CreateStorageDomain();
    guest_ = sys_->CreateGuest("g");
    sys_->AttachVbd(guest_, stordom_);
    EXPECT_TRUE(sys_->WaitConnected(guest_));
    fs_ = std::make_unique<SimpleFs>(guest_->blkfront());
  }

  std::unique_ptr<KiteSystem> sys_;
  StorageDomain* stordom_ = nullptr;
  GuestVm* guest_ = nullptr;
  std::unique_ptr<SimpleFs> fs_;
};

TEST_F(StorageWorkloads, DdSequentialRead) {
  DdConfig config;
  config.total_bytes = 64LL * 1024 * 1024;
  DdBench dd(guest_->blkfront(), config);
  bool done = false;
  dd.Run([&](const DdResult& r) {
    done = true;
    EXPECT_GT(r.mbytes_per_sec, 100);
  });
  EXPECT_TRUE(sys_->WaitUntil([&] { return done; }, Seconds(60)));
}

TEST_F(StorageWorkloads, SysbenchFileIoRuns) {
  SysbenchFileIoConfig config;
  config.files = 16;
  config.total_bytes = 256LL * 1024 * 1024;
  config.threads = 8;
  config.duration = Millis(50);
  SysbenchFileIo bench(fs_.get(), config);
  bool done = false;
  bench.Run([&](const SysbenchFileIoResult& r) {
    done = true;
    EXPECT_GT(r.ops, 0u);
    EXPECT_GT(r.read_mbps, 0);
    EXPECT_GT(r.write_mbps, 0);
    // 3:2 read:write mix.
    EXPECT_GT(r.read_mbps, r.write_mbps * 0.8);
  });
  EXPECT_TRUE(sys_->WaitUntil([&] { return done; }, Seconds(60)));
}

TEST_F(StorageWorkloads, FilebenchPersonalitiesRun) {
  for (FilebenchPersonality p :
       {FilebenchPersonality::kFileserver, FilebenchPersonality::kWebserver,
        FilebenchPersonality::kMongoDb}) {
    FilebenchConfig config;
    config.personality = p;
    config.threads = 8;
    config.file_count = 64;
    config.mean_file_bytes = 64 * 1024;
    config.io_bytes = 64 * 1024;
    config.duration = Millis(30);
    Filebench bench(fs_.get(), config, stordom_->domain()->vcpu(0));
    bool done = false;
    bench.Run([&](const FilebenchResult& r) {
      done = true;
      EXPECT_GT(r.ops, 0u) << "personality " << static_cast<int>(p);
      EXPECT_GT(r.cpu_us_per_op, 0);
    });
    EXPECT_TRUE(sys_->WaitUntil([&] { return done; }, Seconds(60)));
  }
}

TEST_F(StorageWorkloads, MysqlStorageBoundIssuesPageReads) {
  // Attach a network path so the sysbench client (on the client machine) can
  // reach the MySQL server in the guest, whose data lives on the storage
  // domain.
  NetworkDomain* netdom = sys_->CreateNetworkDomain();
  const Ipv4Addr guest_ip = Ipv4Addr::FromOctets(10, 0, 0, 30);
  sys_->AttachVif(guest_, netdom, guest_ip);
  ASSERT_TRUE(sys_->WaitConnected(guest_));

  MysqlServerParams mysql_params;
  mysql_params.buffer_pool_hit_ratio = 0.1;
  mysql_params.data_region_bytes = 1LL * 1024 * 1024 * 1024;
  MysqlServer mysql(guest_->stack(), 3306, fs_.get(), mysql_params);

  SysbenchOltpConfig config;
  config.threads = 4;
  config.duration = Millis(30);
  SysbenchOltp sysbench(sys_->client()->stack(), guest_ip, 3306, config);
  bool done = false;
  sysbench.Run([&](const SysbenchOltpResult& r) {
    done = true;
    EXPECT_GT(r.queries, 0u);
  });
  ASSERT_TRUE(sys_->WaitUntil([&] { return done; }, Seconds(60)));
  EXPECT_GT(mysql.page_reads(), 0u);  // Buffer-pool misses hit storage.
}

TEST_F(StorageWorkloads, SimpleFsFragmentationAndReuse) {
  // Fill, delete alternating files, and reallocate: free-list reuse.
  ASSERT_TRUE(fs_->CreateMany("frag.", 32, 8 * 1024 * 1024));
  const int64_t free_before = fs_->free_bytes();
  for (int i = 0; i < 32; i += 2) {
    ASSERT_TRUE(fs_->Delete(StrFormat("frag.%06d", i)));
  }
  EXPECT_GT(fs_->free_bytes(), free_before);
  // New file larger than any single hole: must span extents.
  ASSERT_TRUE(fs_->Create("big", 24 * 1024 * 1024));
  bool done = false;
  fs_->Write("big", 0, 24 * 1024 * 1024, [&](bool ok) { done = ok; });
  EXPECT_TRUE(sys_->WaitUntil([&] { return done; }, Seconds(60)));
}

}  // namespace
}  // namespace kite
