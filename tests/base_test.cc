// Unit tests for src/base: rng, stats, strings, bytes.
#include <gtest/gtest.h>

#include <set>

#include "src/base/bytes.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/strings.h"

namespace kite {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ForkIndependent) {
  Rng parent(5);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(StatsTest, BasicMoments) {
  Stats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_NEAR(s.StdDev(), 2.138, 0.001);
  EXPECT_NEAR(s.RelStdDevPercent(), 42.76, 0.01);
}

TEST(StatsTest, PercentileNearestRank) {
  Stats s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
}

TEST(StatsTest, MergeCombines) {
  Stats a;
  Stats b;
  a.Add(1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(StatsTest, EmptyIsSafe) {
  Stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(s.RelStdDevPercent(), 0.0);
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, SplitPathDropsEmpty) {
  auto parts = SplitPath("/a//b/c/");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitPath("").empty());
  EXPECT_TRUE(SplitPath("/").empty());
}

TEST(StringsTest, JoinPathRoundTrip) {
  EXPECT_EQ(JoinPath({"a", "b"}), "/a/b");
  EXPECT_EQ(JoinPath({}), "/");
}

TEST(StringsTest, PathIsUnder) {
  EXPECT_TRUE(PathIsUnder("/a/b", "/a"));
  EXPECT_TRUE(PathIsUnder("/a", "/a"));
  EXPECT_FALSE(PathIsUnder("/ab", "/a"));
  EXPECT_TRUE(PathIsUnder("/anything", "/"));
  EXPECT_FALSE(PathIsUnder("/a", "/a/b"));
}

TEST(StringsTest, ParseDecimal) {
  EXPECT_EQ(ParseDecimal("0"), 0);
  EXPECT_EQ(ParseDecimal("12345"), 12345);
  EXPECT_EQ(ParseDecimal(""), -1);
  EXPECT_EQ(ParseDecimal("12a"), -1);
  EXPECT_EQ(ParseDecimal("-5"), -1);
}

TEST(BytesTest, WriterReaderRoundTrip) {
  Buffer buf;
  ByteWriter w(&buf);
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  ByteReader r(buf);
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, ReaderTruncationSetsNotOk) {
  Buffer buf = {0x01};
  ByteReader r(buf);
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(BytesTest, BigEndianOrder) {
  Buffer buf;
  ByteWriter w(&buf);
  w.U16(0x0102);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
}

TEST(BytesTest, InternetChecksumKnownVector) {
  // RFC 1071 example-style check: checksum of data + its checksum is 0.
  Buffer data = {0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06};
  uint16_t csum = InternetChecksum(data);
  Buffer with;
  with.insert(with.end(), data.begin(), data.end());
  with.push_back(static_cast<uint8_t>(csum >> 8));
  with.push_back(static_cast<uint8_t>(csum));
  EXPECT_EQ(InternetChecksum(with), 0);
}

TEST(BytesTest, ChecksumOddLength) {
  Buffer data = {0x01, 0x02, 0x03};
  // Must not crash and must be stable.
  EXPECT_EQ(InternetChecksum(data), InternetChecksum(data));
}

TEST(BytesTest, Fnv1aDistinguishes) {
  Buffer a = {1, 2, 3};
  Buffer b = {1, 2, 4};
  EXPECT_NE(Fnv1a(a), Fnv1a(b));
}

}  // namespace
}  // namespace kite
