// CPU attribution (DESIGN.md §16): category interning and scoping, exact
// per-category ledgers under vCPU contention, the run-queue wait histogram,
// and the end-to-end promises that enabling attribution never perturbs a
// shuffled schedule and that CpuReportJson is byte-deterministic per seed.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/bmk/sched.h"
#include "src/core/kite.h"
#include "src/obs/cpuattr.h"
#include "src/sim/cpu.h"
#include "src/sim/executor.h"
#include "src/sim/task.h"

namespace kite {
namespace {

// --- Category registry and scoping. ---------------------------------------

TEST(CpuCategoryTest, InterningIsIdempotent) {
  const CpuCategory* a = KITE_CPU_CATEGORY("test/interned");
  const CpuCategory* b = KITE_CPU_CATEGORY("test/interned");
  // Same literal → same function-local static → same interned entry.
  EXPECT_EQ(a, b);
  EXPECT_STREQ(CpuCategoryLabel(a->index), "test/interned");
  // Registering through the function directly also dedupes by content.
  EXPECT_EQ(RegisterCpuCategory("test/interned"), a);
  EXPECT_GE(CpuCategoryCount(), 2u);  // At least the builtin + this one.
  EXPECT_STREQ(CpuCategoryLabel(kCpuUnattributedIndex), "(unattributed)");
  EXPECT_STREQ(CpuCategoryLabel(1u << 30), "?");
}

TEST(CpuScopeTest, NestedScopesInnermostWinsAndRestores) {
  const CpuCategory* outer = KITE_CPU_CATEGORY("test/outer");
  const CpuCategory* inner = KITE_CPU_CATEGORY("test/inner");
  EXPECT_EQ(CurrentCpuCategory(), kCpuUnattributedIndex);
  {
    CpuScope a(outer);
    EXPECT_EQ(CurrentCpuCategory(), outer->index);
    {
      CpuScope b(inner);
      EXPECT_EQ(CurrentCpuCategory(), inner->index);
    }
    EXPECT_EQ(CurrentCpuCategory(), outer->index);
  }
  EXPECT_EQ(CurrentCpuCategory(), kCpuUnattributedIndex);
}

// --- Exact ledger sums under contention. ----------------------------------

// A BMK worker thread: `slices` charges of `cost` each, credited to
// `category`. A free coroutine function (not a coroutine lambda) so its
// parameters are copied into the frame — the repo-wide Spawn idiom.
Task Worker(BmkSched* sched, const CpuCategory* category, SimDuration cost,
            int slices) {
  for (int i = 0; i < slices; ++i) {
    co_await sched->Run(cost, category);
  }
}

Task Yielder(BmkSched* sched, SimTime* resumed_at) {
  co_await sched->Yield();
  *resumed_at = sched->executor()->Now();
}

// Two cooperative BMK threads share one vCPU. Every nanosecond each thread
// runs must land in that thread's category, the cross-category sum must
// equal busy_total(), and nothing may leak into (unattributed).
TEST(CpuAttributionTest, ExactPerCategorySumsUnderContention) {
  Executor ex;
  Vcpu cpu(&ex);
  cpu.EnableAttribution();
  ASSERT_TRUE(cpu.attribution_enabled());
  BmkSched sched(&ex, &cpu);

  const CpuCategory* cat_a = KITE_CPU_CATEGORY("test/contend-a");
  const CpuCategory* cat_b = KITE_CPU_CATEGORY("test/contend-b");
  sched.Spawn("a", [&] { return Worker(&sched, cat_a, Nanos(100), 3); });
  sched.Spawn("b", [&] { return Worker(&sched, cat_b, Nanos(250), 2); });
  ex.RunUntilIdle();

  EXPECT_EQ(cpu.attributed_busy(cat_a->index), Nanos(300));
  EXPECT_EQ(cpu.attributed_busy(cat_b->index), Nanos(500));
  EXPECT_EQ(cpu.attributed_busy(kCpuUnattributedIndex), Nanos(0));
  EXPECT_EQ(cpu.busy_total(), Nanos(800));
  // The single busy horizon serialized all 800ns of work.
  EXPECT_EQ(cpu.free_at(), SimTime() + Nanos(800));
  // Five charges → five wait samples; everything after the first waited.
  EXPECT_EQ(cpu.ledger()->wait_hist.count(), 5u);
}

TEST(CpuAttributionTest, EnableMidRunPreservesBusyTotal) {
  Executor ex;
  Vcpu cpu(&ex);
  cpu.Charge(Nanos(400));  // Pre-enable: plain busy_total_ accumulation.
  EXPECT_FALSE(cpu.attribution_enabled());
  EXPECT_EQ(cpu.ledger(), nullptr);
  EXPECT_EQ(cpu.attributed_busy(kCpuUnattributedIndex), Nanos(0));

  cpu.EnableAttribution();
  cpu.EnableAttribution();  // Idempotent.
  {
    CpuScope scope(KITE_CPU_CATEGORY("test/mid-run"));
    cpu.Charge(Nanos(100));
  }
  // busy_total() = pre-enable baseline + ledger-derived total.
  EXPECT_EQ(cpu.busy_total(), Nanos(500));
  EXPECT_EQ(cpu.attributed_busy(KITE_CPU_CATEGORY("test/mid-run")->index),
            Nanos(100));
}

// --- Zero-cost charges (Yield) and the wait histogram. --------------------

TEST(CpuAttributionTest, YieldChargesNothingButRecordsWait) {
  Executor ex;
  Vcpu cpu(&ex);
  cpu.EnableAttribution();
  BmkSched sched(&ex, &cpu);

  const CpuCategory* busy_cat = KITE_CPU_CATEGORY("test/yield-busy");
  SimTime resumed_at;
  sched.Spawn("worker", [&] { return Worker(&sched, busy_cat, Nanos(100), 1); });
  // The yield queues behind the worker's 100ns charged at t=0.
  sched.Spawn("yielder", [&] { return Yielder(&sched, &resumed_at); });
  ex.RunUntilIdle();

  EXPECT_EQ(sched.yield_count(), 1u);
  // Yield consumed no CPU but waited out the pending work.
  EXPECT_EQ(cpu.attributed_busy(KITE_CPU_CATEGORY("sched/yield")->index),
            Nanos(0));
  EXPECT_EQ(cpu.busy_total(), Nanos(100));
  EXPECT_EQ(resumed_at, SimTime() + Nanos(100));
  const CpuWaitHistogram& hist = cpu.ledger()->wait_hist;
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.max(), 100u);  // The yielder's queue wait.
}

// Pinned two-charge contention: the first request runs immediately (zero
// wait), the second queues behind it for exactly the first's cost. Costs are
// < 64ns, where the histogram's buckets are exact (one value per bucket), so
// every percentile is pinned, not approximate.
TEST(CpuWaitHistogramTest, TwoThreadPinnedWaits) {
  Executor ex;
  Vcpu cpu(&ex);
  cpu.EnableAttribution();

  EXPECT_EQ(cpu.Charge(Nanos(48)), SimTime() + Nanos(48));  // Wait 0.
  EXPECT_EQ(cpu.Charge(Nanos(16)), SimTime() + Nanos(64));  // Wait 48.

  const CpuWaitHistogram& hist = cpu.ledger()->wait_hist;
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.sum(), 48u);  // Zero waits are counted, never summed.
  EXPECT_EQ(hist.max(), 48u);
  EXPECT_EQ(hist.Percentile(50), 0u);   // Rank 1 of 2: the zero wait.
  EXPECT_EQ(hist.Percentile(99), 48u);  // Rank 2 of 2: the queued charge.
  EXPECT_EQ(hist.Percentile(100), 48u);
}

TEST(CpuWaitHistogramTest, EmptyAndAllZeroHistograms) {
  CpuWaitHistogram hist;
  EXPECT_EQ(hist.Percentile(99), 0u);
  for (int i = 0; i < 10; ++i) {
    hist.Record(0);
  }
  EXPECT_EQ(hist.count(), 10u);
  EXPECT_EQ(hist.sum(), 0u);
  EXPECT_EQ(hist.max(), 0u);
  EXPECT_EQ(hist.Percentile(100), 0u);  // Implied zero bucket holds all.
}

// --- End-to-end: no perturbation, deterministic reports. ------------------

struct AttributedRun {
  std::string metrics_table;
  std::vector<int64_t> rtts_ns;
  int64_t end_ns = 0;
  std::string cpu_report;
  std::string diagnostics;
};

AttributedRun RunShuffledPings(bool attribution, uint64_t seed) {
  KiteSystem::Params params;
  params.cpu_attribution = attribution;
  KiteSystem sys(params);
  sys.EnableScheduleShuffle(seed);
  NetworkDomain* netdom = sys.CreateNetworkDomain();
  GuestVm* guest = sys.CreateGuest("cpuattr-guest");
  sys.AttachVif(guest, netdom, Ipv4Addr::FromOctets(10, 0, 0, 10));
  EXPECT_TRUE(sys.WaitConnected(guest));
  AttributedRun run;
  for (int i = 0; i < 10; ++i) {
    bool done = false;
    guest->stack()->Ping(sys.client_ip(), 56, [&](bool ok, SimDuration rtt) {
      EXPECT_TRUE(ok);
      run.rtts_ns.push_back(rtt.ns());
      done = true;
    });
    EXPECT_TRUE(sys.WaitUntil([&] { return done; }, Seconds(5)));
  }
  run.metrics_table = sys.FormatMetrics();
  run.end_ns = sys.Now().ns();
  run.cpu_report = sys.CpuReportJson();
  std::ostringstream dump;
  sys.DumpDiagnostics(dump);
  run.diagnostics = dump.str();
  return run;
}

// The accounting-only promise: attribution consults the ambient category and
// writes ledgers, but never changes Charge's timing result — the shuffled
// schedule, every RTT, and the full metrics table must match a run with
// attribution compiled in but disabled.
TEST(CpuPerturbationTest, AttributionOnMatchesOffExactly) {
  const AttributedRun off = RunShuffledPings(false, /*seed=*/7);
  const AttributedRun on = RunShuffledPings(true, /*seed=*/7);
  EXPECT_EQ(off.rtts_ns, on.rtts_ns);
  EXPECT_EQ(off.end_ns, on.end_ns);
  EXPECT_EQ(off.metrics_table, on.metrics_table);
}

TEST(CpuReportTest, SameSeedReportIsByteIdentical) {
  const AttributedRun a = RunShuffledPings(true, /*seed=*/11);
  const AttributedRun b = RunShuffledPings(true, /*seed=*/11);
  EXPECT_EQ(a.cpu_report, b.cpu_report);
  ASSERT_FALSE(a.cpu_report.empty());
  // Shape: actors with categories and wait stats, raw util.
  EXPECT_NE(a.cpu_report.find("\"actors\":"), std::string::npos);
  EXPECT_NE(a.cpu_report.find("\"categories\":"), std::string::npos);
  EXPECT_NE(a.cpu_report.find("\"wait\":"), std::string::npos);
  EXPECT_NE(a.cpu_report.find("\"hv/irq_dispatch\""), std::string::npos);
}

TEST(CpuReportTest, DiagnosticsDumpCarriesCpuSection) {
  const AttributedRun on = RunShuffledPings(true, /*seed=*/3);
  EXPECT_NE(on.diagnostics.find("---- cpu ----"), std::string::npos);
  EXPECT_NE(on.diagnostics.find("kite-netdom/vcpu0"), std::string::npos);
  // Disabled runs still print the section, flagged per actor.
  const AttributedRun off = RunShuffledPings(false, /*seed=*/3);
  EXPECT_NE(off.diagnostics.find("---- cpu ----"), std::string::npos);
  EXPECT_NE(off.diagnostics.find("(attribution off)"), std::string::npos);
}

}  // namespace
}  // namespace kite
