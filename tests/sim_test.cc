// Unit tests for the discrete-event executor, coroutine tasks, wait
// channels, and the vCPU cost model.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/executor.h"
#include "src/sim/task.h"
#include "src/sim/wait.h"

namespace kite {
namespace {

TEST(ExecutorTest, EventsFireInTimeOrder) {
  Executor ex;
  std::vector<int> order;
  ex.PostAfter(Micros(30), [&] { order.push_back(3); });
  ex.PostAfter(Micros(10), [&] { order.push_back(1); });
  ex.PostAfter(Micros(20), [&] { order.push_back(2); });
  ex.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ex.Now(), SimTime(Micros(30).ns()));
}

TEST(ExecutorTest, SameTimeFifo) {
  Executor ex;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    ex.PostAfter(Micros(5), [&order, i] { order.push_back(i); });
  }
  ex.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ExecutorTest, RunUntilAdvancesToDeadline) {
  Executor ex;
  int fired = 0;
  ex.PostAfter(Millis(5), [&] { ++fired; });
  ex.PostAfter(Millis(50), [&] { ++fired; });
  ex.RunFor(Millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(ex.Now().ns(), Millis(10).ns());
  ex.RunFor(Millis(100));
  EXPECT_EQ(fired, 2);
}

TEST(ExecutorTest, HandlerMayPostMoreEvents) {
  Executor ex;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      ex.PostAfter(Micros(1), chain);
    }
  };
  ex.Post(chain);
  ex.RunUntilIdle();
  EXPECT_EQ(count, 5);
}

TEST(ExecutorTest, PastTimesClampToNow) {
  Executor ex;
  ex.PostAfter(Millis(1), [] {});
  ex.RunUntilIdle();
  bool ran = false;
  ex.PostAt(SimTime(0), [&] { ran = true; });  // In the past.
  ex.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(ex.Now().ns(), Millis(1).ns());
}

Task CountingTask(Executor* ex, int* counter, SimDuration step, int n) {
  for (int i = 0; i < n; ++i) {
    co_await SleepFor(ex, step);
    ++*counter;
  }
}

TEST(TaskTest, SleepLoopAdvancesClock) {
  Executor ex;
  int counter = 0;
  CountingTask(&ex, &counter, Micros(10), 5);
  EXPECT_EQ(counter, 0);  // Eager start suspends at first sleep.
  ex.RunUntilIdle();
  EXPECT_EQ(counter, 5);
  EXPECT_EQ(ex.Now().ns(), Micros(50).ns());
}

Task WaiterTask(WaitChannel* ch, int* wakes) {
  for (;;) {
    co_await ch->Wait();
    ++*wakes;
  }
}

TEST(WaitChannelTest, NotifyOneWakesSingleWaiter) {
  Executor ex;
  WaitChannel ch(&ex);
  int wakes_a = 0;
  int wakes_b = 0;
  WaiterTask(&ch, &wakes_a);
  WaiterTask(&ch, &wakes_b);
  EXPECT_EQ(ch.waiter_count(), 2u);
  ch.NotifyOne();
  ex.RunUntilIdle();
  EXPECT_EQ(wakes_a + wakes_b, 1);
}

TEST(WaitChannelTest, NotifyAllWakesEveryone) {
  Executor ex;
  WaitChannel ch(&ex);
  int wakes_a = 0;
  int wakes_b = 0;
  WaiterTask(&ch, &wakes_a);
  WaiterTask(&ch, &wakes_b);
  ch.NotifyAll();
  ex.RunUntilIdle();
  EXPECT_EQ(wakes_a, 1);
  EXPECT_EQ(wakes_b, 1);
}

TEST(WaitChannelTest, NotifyWithoutWaitersIsNoop) {
  Executor ex;
  WaitChannel ch(&ex);
  ch.NotifyOne();
  ch.NotifyAll();
  ex.RunUntilIdle();
  SUCCEED();
}

TEST(WaitChannelTest, DestructionReclaimsParkedCoroutines) {
  Executor ex;
  int wakes = 0;
  {
    WaitChannel ch(&ex);
    WaiterTask(&ch, &wakes);
    EXPECT_EQ(ch.waiter_count(), 1u);
  }  // Channel destroyed with a parked waiter: frame destroyed, no leak/UAF.
  ex.RunUntilIdle();
  EXPECT_EQ(wakes, 0);
}

Task FlagConsumer(WakeFlag* flag, int* processed) {
  for (;;) {
    co_await flag->Wait();
    ++*processed;
  }
}

TEST(WakeFlagTest, SignalBeforeWaitIsNotLost) {
  Executor ex;
  WakeFlag flag(&ex);
  flag.Signal();  // Signal before any waiter exists.
  int processed = 0;
  FlagConsumer(&flag, &processed);
  ex.RunUntilIdle();
  EXPECT_EQ(processed, 1);  // await_ready consumed the pre-set flag.
}

TEST(WakeFlagTest, SignalCoalesces) {
  Executor ex;
  WakeFlag flag(&ex);
  int processed = 0;
  FlagConsumer(&flag, &processed);
  flag.Signal();
  flag.Signal();
  flag.Signal();
  ex.RunUntilIdle();
  // Multiple signals while the consumer is runnable coalesce into one wake
  // (plus at most one flagged re-check).
  EXPECT_GE(processed, 1);
  EXPECT_LE(processed, 2);
}

TEST(VcpuTest, ChargeSerializes) {
  Executor ex;
  Vcpu cpu(&ex);
  SimTime t1 = cpu.Charge(Micros(10));
  SimTime t2 = cpu.Charge(Micros(5));
  EXPECT_EQ(t1.ns(), Micros(10).ns());
  EXPECT_EQ(t2.ns(), Micros(15).ns());
  EXPECT_EQ(cpu.busy_total().ns(), Micros(15).ns());
}

Task CpuWorker(Vcpu* cpu, SimDuration cost, int n, std::vector<int64_t>* completions,
               Executor* ex) {
  for (int i = 0; i < n; ++i) {
    co_await cpu->Run(cost);
    completions->push_back(ex->Now().ns());
  }
}

TEST(VcpuTest, RunQueuesBehindOtherWork) {
  Executor ex;
  Vcpu cpu(&ex);
  std::vector<int64_t> a;
  std::vector<int64_t> b;
  CpuWorker(&cpu, Micros(10), 2, &a, &ex);
  CpuWorker(&cpu, Micros(10), 2, &b, &ex);
  ex.RunUntilIdle();
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  // Interleaved FIFO: a0 at 10, b0 at 20, a1 at 30, b1 at 40.
  EXPECT_EQ(a[0], Micros(10).ns());
  EXPECT_EQ(b[0], Micros(20).ns());
  EXPECT_EQ(a[1], Micros(30).ns());
  EXPECT_EQ(b[1], Micros(40).ns());
  EXPECT_EQ(cpu.busy_total().ns(), Micros(40).ns());
}

TEST(VcpuTest, UtilizationWindow) {
  EXPECT_DOUBLE_EQ(Vcpu::Utilization(Micros(0), Micros(50), Micros(100)), 0.5);
  EXPECT_DOUBLE_EQ(Vcpu::Utilization(Micros(10), Micros(10), Micros(100)), 0.0);
  // Raw ratio, not clamped: overcommit (more work queued than the window
  // holds) must stay visible. Renderers clamp for display.
  EXPECT_DOUBLE_EQ(Vcpu::Utilization(Micros(0), Micros(200), Micros(100)), 2.0);
}

TEST(TimeTest, Arithmetic) {
  EXPECT_EQ((Millis(1) + Micros(500)).ns(), 1500000);
  EXPECT_EQ((Seconds(1) / 4).ns(), 250000000);
  EXPECT_EQ(SecondsF(0.5).ns(), 500000000);
  SimTime t(100);
  EXPECT_EQ((t + Nanos(50)).ns(), 150);
  EXPECT_EQ(((t + Nanos(50)) - t).ns(), 50);
  EXPECT_LT(SimTime(1), SimTime(2));
}

// --- Schedule shuffle + pending-queue diagnostics (src/check support). ---

// Records the firing order of 16 same-timestamp events under a shuffle seed.
std::vector<int> ShuffledOrder(uint64_t seed) {
  Executor ex;
  ex.EnableShuffle(seed);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    ex.PostAfter(Micros(5), [&order, i] { order.push_back(i); });
  }
  ex.RunUntilIdle();
  return order;
}

TEST(ExecutorShuffleTest, SameSeedSameTieBreaking) {
  EXPECT_EQ(ShuffledOrder(7), ShuffledOrder(7));
  EXPECT_EQ(ShuffledOrder(1234567), ShuffledOrder(1234567));
}

TEST(ExecutorShuffleTest, ShuffleRandomizesOnlyTies) {
  // Distinct timestamps still fire in time order, whatever the seed does to
  // same-time ties.
  Executor ex;
  ex.EnableShuffle(99);
  std::vector<int> order;
  ex.PostAfter(Micros(30), [&] { order.push_back(3); });
  ex.PostAfter(Micros(10), [&] { order.push_back(1); });
  ex.PostAfter(Micros(20), [&] { order.push_back(2); });
  ex.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ExecutorShuffleTest, PostAtNowKeepsFifoUnderShuffle) {
  // Regression: Post() promises FIFO for work queued "now" (the run-loop /
  // softirq idiom). Shuffle must randomize only *timer* ties, or shuffled
  // runs break causality inside a single logical tick.
  Executor ex;
  ex.EnableShuffle(99);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    ex.Post([&order, i] { order.push_back(i); });
  }
  ex.RunUntilIdle();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[i], i);
  }

  // Same contract when a handler fans out at-now work mid-run.
  order.clear();
  ex.PostAfter(Micros(5), [&] {
    for (int i = 0; i < 16; ++i) {
      ex.Post([&order, i] { order.push_back(i); });
    }
  });
  ex.RunUntilIdle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ExecutorShuffleTest, DelayedTiesStillShuffle) {
  // The FIFO carve-out is only for at-now posts: same-timestamp *timer*
  // events must still reorder under some seed, or shuffle lost its power.
  const std::vector<int> fifo{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
  bool any_reordered = false;
  for (uint64_t seed = 1; seed <= 8 && !any_reordered; ++seed) {
    any_reordered = ShuffledOrder(seed) != fifo;
  }
  EXPECT_TRUE(any_reordered);
}

// Posts a doomed event whose destruction posts another, `depth` deep — the
// pattern of coroutine frames whose locals re-arm timers from destructors.
void PostDoomed(Executor* ex, int* drops, int depth);

struct PostOnDrop {
  Executor* ex;
  int* drops;
  int depth;
  bool armed = true;
  PostOnDrop(Executor* e, int* d, int n) : ex(e), drops(d), depth(n) {}
  PostOnDrop(PostOnDrop&& o) noexcept : ex(o.ex), drops(o.drops), depth(o.depth) {
    o.armed = false;
  }
  ~PostOnDrop() {
    if (armed) {
      ++*drops;
      if (depth > 0) {
        PostDoomed(ex, drops, depth - 1);
      }
    }
  }
};

void PostDoomed(Executor* ex, int* drops, int depth) {
  ex->PostAfter(Micros(1), [g = PostOnDrop(ex, drops, depth)] {});
}

TEST(ExecutorTest, TeardownSurvivesEventsPostedFromDestructors) {
  // Regression: ~Executor used to iterate the queue while destroying events;
  // a destructor posting back into the executor invalidated the iteration.
  // The drain must keep collecting until nothing new appears.
  int drops = 0;
  {
    Executor ex;
    PostDoomed(&ex, &drops, 3);
  }
  EXPECT_EQ(drops, 4);  // Chain of 4 doomed events, each reaped untriggered.
}

Task ParkedWithGuard(Executor* ex, int* drops) {
  PostOnDrop guard(ex, drops, 0);
  co_await SleepFor(ex, Seconds(100));
}

TEST(ExecutorTest, TeardownSurvivesCoroutineFramePostingOnDestroy) {
  int drops = 0;
  {
    Executor ex;
    ParkedWithGuard(&ex, &drops);
  }  // Frame destroyed while parked; its guard posts into the dying executor.
  EXPECT_EQ(drops, 1);
}

TEST(ExecutorDeterminismTest, WheelBoundaryScheduleByteIdentity) {
  // A schedule straddling slot and level boundaries of the timer wheel plus
  // the far-future overflow, replayed twice (shuffle off and shuffle on with
  // the same seed), must reproduce the exact (time, id) firing sequence.
  auto run = [](bool shuffle, uint64_t seed) {
    Executor ex;
    if (shuffle) {
      ex.EnableShuffle(seed);
    }
    std::vector<std::pair<int64_t, int>> fired;
    auto record = [&fired](int id, SimTime t) { fired.emplace_back(t.ns(), id); };
    int id = 0;
    // Straddle level-0 slots (64 ns), level boundaries (2^6, 2^12, ... ns),
    // and duplicate timestamps at each.
    for (int64_t base : {1, 63, 64, 65, 4095, 4096, 262144, 16777216, 1073741824}) {
      for (int64_t off : {0, 0, 1}) {
        const int eid = id++;
        ex.PostAt(SimTime(base + off), [&, eid] { record(eid, ex.Now()); });
      }
    }
    // Far-future: beyond the 2^42 ns wheel horizon.
    for (int i = 0; i < 3; ++i) {
      const int eid = id++;
      ex.PostAfter(Seconds(5000 + i), [&, eid] { record(eid, ex.Now()); });
    }
    // A self-reposting chain that hops across slots as it goes.
    struct Chain {
      Executor* ex;
      decltype(record)* rec;
      int id;
      uint64_t state;
      int left;
      void operator()() {
        (*rec)(id, ex->Now());
        if (--left > 0) {
          state = state * 6364136223846793005ULL + 1442695040888963407ULL;
          ex->PostAfter(Nanos(1 + static_cast<int64_t>((state >> 40) % 100000)), *this);
        }
      }
    };
    ex.Post(Chain{&ex, &record, id++, 0x1234, 64});
    ex.RunUntilIdle();
    return fired;
  };

  const auto plain_a = run(false, 0);
  const auto plain_b = run(false, 0);
  EXPECT_EQ(plain_a, plain_b);
  const auto shuf_a = run(true, 42);
  const auto shuf_b = run(true, 42);
  EXPECT_EQ(shuf_a, shuf_b);
  // Shuffle permutes ties but fires the same multiset of events.
  EXPECT_EQ(shuf_a.size(), plain_a.size());
}

TEST(ExecutorTest, FarFutureEventsPromoteInOrder) {
  // Events past the wheel horizon live in the overflow heap and must promote
  // era by era, interleaved correctly with near-term work.
  Executor ex;
  std::vector<int> order;
  ex.PostAfter(Seconds(10000), [&] { order.push_back(4); });
  ex.PostAfter(Seconds(5000), [&] {
    order.push_back(2);
    // Posting further far-future work from inside a promoted event.
    ex.PostAfter(Seconds(2500), [&] { order.push_back(3); });
  });
  ex.PostAfter(Micros(1), [&] { order.push_back(1); });
  ex.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(ex.Now().ns(), Seconds(10000).ns());
}

TEST(ExecutorTest, DaemonOnlyQueueCountsAsIdle) {
  // A self-reposting daemon probe must not keep RunUntilIdle spinning once
  // all real work is done.
  Executor ex;
  int daemon_fires = 0;
  int work_fires = 0;
  std::function<void()> probe = [&] {
    ++daemon_fires;
    ex.PostDaemonAfter(Micros(10), probe);
  };
  ex.PostDaemonAfter(Micros(10), probe);
  ex.PostAfter(Micros(35), [&] { ++work_fires; });
  ex.RunUntilIdle();
  EXPECT_EQ(work_fires, 1);
  EXPECT_EQ(daemon_fires, 3);  // t=10,20,30 fire before the last real event.
  EXPECT_TRUE(ex.idle());
  EXPECT_GE(ex.queue_size(), 1u);  // The daemon stays parked, not dropped.
}

TEST(ExecutorTest, RunUntilClampsAcrossEmptyStretches) {
  Executor ex;
  // No events at all: time still advances to the deadline.
  ex.RunUntil(SimTime(Seconds(1).ns()));
  EXPECT_EQ(ex.Now().ns(), Seconds(1).ns());
  // Deadline short of the next event: nothing fires, nothing is lost.
  int fired = 0;
  ex.PostAfter(Seconds(10), [&] { ++fired; });
  ex.RunFor(Seconds(5));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(ex.Now().ns(), Seconds(6).ns());
  // Deadline exactly at the event: it fires once.
  ex.RunUntil(SimTime(Seconds(11).ns()));
  EXPECT_EQ(fired, 1);
  // Far-future event still reachable after the cursor jumped around.
  ex.PostAfter(Seconds(9000), [&] { ++fired; });
  ex.RunFor(Seconds(100));
  EXPECT_EQ(fired, 1);
  ex.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(ex.Now().ns(), Seconds(11).ns() + Seconds(9000).ns());
}

TEST(ExecutorDiagnosticsTest, PendingEventsSnapshotInFiringOrder) {
  Executor ex;
  ex.PostAfter(Micros(30), [] {});
  ex.PostAfter(Micros(10), [] {});
  ex.PostAfter(Micros(20), [] {});
  const auto pending = ex.PendingEvents();
  ASSERT_EQ(pending.size(), 3u);
  EXPECT_EQ(pending[0].at, SimTime(Micros(10).ns()));
  EXPECT_EQ(pending[1].at, SimTime(Micros(20).ns()));
  EXPECT_EQ(pending[2].at, SimTime(Micros(30).ns()));
  const std::string dump = ex.FormatPendingEvents();
  EXPECT_NE(dump.find("3 pending"), std::string::npos) << dump;
  ex.RunUntilIdle();
  EXPECT_NE(ex.FormatPendingEvents().find("0 pending"), std::string::npos);
}

TEST(ExecutorDiagnosticsTest, PendingEventsPrefixIsGloballyOrdered) {
  // A truncated snapshot must be the true head of the schedule — the first
  // `max` events in firing order — not an arbitrary subset. (Regression: the
  // old full-sort-then-truncate was replaced by a partial sort; both must
  // agree.)
  Executor ex;
  for (int i = 0; i < 48; ++i) {
    // Scattered times with duplicates, posted out of order.
    ex.PostAfter(Micros(((i * 37) % 12) * 10), [] {});
  }
  const auto full = ex.PendingEvents(48);
  ASSERT_EQ(full.size(), 48u);
  for (size_t i = 1; i < full.size(); ++i) {
    const bool ordered = full[i - 1].at < full[i].at ||
                         (full[i - 1].at == full[i].at && full[i - 1].seq < full[i].seq);
    EXPECT_TRUE(ordered) << "position " << i;
  }
  const auto prefix = ex.PendingEvents(8);
  ASSERT_EQ(prefix.size(), 8u);
  for (size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i].at, full[i].at);
    EXPECT_EQ(prefix[i].seq, full[i].seq);
  }
  const std::string dump = ex.FormatPendingEvents(8);
  EXPECT_NE(dump.find("... 40 more"), std::string::npos) << dump;
}

}  // namespace
}  // namespace kite
