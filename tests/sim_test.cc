// Unit tests for the discrete-event executor, coroutine tasks, wait
// channels, and the vCPU cost model.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/executor.h"
#include "src/sim/task.h"
#include "src/sim/wait.h"

namespace kite {
namespace {

TEST(ExecutorTest, EventsFireInTimeOrder) {
  Executor ex;
  std::vector<int> order;
  ex.PostAfter(Micros(30), [&] { order.push_back(3); });
  ex.PostAfter(Micros(10), [&] { order.push_back(1); });
  ex.PostAfter(Micros(20), [&] { order.push_back(2); });
  ex.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ex.Now(), SimTime(Micros(30).ns()));
}

TEST(ExecutorTest, SameTimeFifo) {
  Executor ex;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    ex.PostAfter(Micros(5), [&order, i] { order.push_back(i); });
  }
  ex.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ExecutorTest, RunUntilAdvancesToDeadline) {
  Executor ex;
  int fired = 0;
  ex.PostAfter(Millis(5), [&] { ++fired; });
  ex.PostAfter(Millis(50), [&] { ++fired; });
  ex.RunFor(Millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(ex.Now().ns(), Millis(10).ns());
  ex.RunFor(Millis(100));
  EXPECT_EQ(fired, 2);
}

TEST(ExecutorTest, HandlerMayPostMoreEvents) {
  Executor ex;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      ex.PostAfter(Micros(1), chain);
    }
  };
  ex.Post(chain);
  ex.RunUntilIdle();
  EXPECT_EQ(count, 5);
}

TEST(ExecutorTest, PastTimesClampToNow) {
  Executor ex;
  ex.PostAfter(Millis(1), [] {});
  ex.RunUntilIdle();
  bool ran = false;
  ex.PostAt(SimTime(0), [&] { ran = true; });  // In the past.
  ex.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(ex.Now().ns(), Millis(1).ns());
}

Task CountingTask(Executor* ex, int* counter, SimDuration step, int n) {
  for (int i = 0; i < n; ++i) {
    co_await SleepFor(ex, step);
    ++*counter;
  }
}

TEST(TaskTest, SleepLoopAdvancesClock) {
  Executor ex;
  int counter = 0;
  CountingTask(&ex, &counter, Micros(10), 5);
  EXPECT_EQ(counter, 0);  // Eager start suspends at first sleep.
  ex.RunUntilIdle();
  EXPECT_EQ(counter, 5);
  EXPECT_EQ(ex.Now().ns(), Micros(50).ns());
}

Task WaiterTask(WaitChannel* ch, int* wakes) {
  for (;;) {
    co_await ch->Wait();
    ++*wakes;
  }
}

TEST(WaitChannelTest, NotifyOneWakesSingleWaiter) {
  Executor ex;
  WaitChannel ch(&ex);
  int wakes_a = 0;
  int wakes_b = 0;
  WaiterTask(&ch, &wakes_a);
  WaiterTask(&ch, &wakes_b);
  EXPECT_EQ(ch.waiter_count(), 2u);
  ch.NotifyOne();
  ex.RunUntilIdle();
  EXPECT_EQ(wakes_a + wakes_b, 1);
}

TEST(WaitChannelTest, NotifyAllWakesEveryone) {
  Executor ex;
  WaitChannel ch(&ex);
  int wakes_a = 0;
  int wakes_b = 0;
  WaiterTask(&ch, &wakes_a);
  WaiterTask(&ch, &wakes_b);
  ch.NotifyAll();
  ex.RunUntilIdle();
  EXPECT_EQ(wakes_a, 1);
  EXPECT_EQ(wakes_b, 1);
}

TEST(WaitChannelTest, NotifyWithoutWaitersIsNoop) {
  Executor ex;
  WaitChannel ch(&ex);
  ch.NotifyOne();
  ch.NotifyAll();
  ex.RunUntilIdle();
  SUCCEED();
}

TEST(WaitChannelTest, DestructionReclaimsParkedCoroutines) {
  Executor ex;
  int wakes = 0;
  {
    WaitChannel ch(&ex);
    WaiterTask(&ch, &wakes);
    EXPECT_EQ(ch.waiter_count(), 1u);
  }  // Channel destroyed with a parked waiter: frame destroyed, no leak/UAF.
  ex.RunUntilIdle();
  EXPECT_EQ(wakes, 0);
}

Task FlagConsumer(WakeFlag* flag, int* processed) {
  for (;;) {
    co_await flag->Wait();
    ++*processed;
  }
}

TEST(WakeFlagTest, SignalBeforeWaitIsNotLost) {
  Executor ex;
  WakeFlag flag(&ex);
  flag.Signal();  // Signal before any waiter exists.
  int processed = 0;
  FlagConsumer(&flag, &processed);
  ex.RunUntilIdle();
  EXPECT_EQ(processed, 1);  // await_ready consumed the pre-set flag.
}

TEST(WakeFlagTest, SignalCoalesces) {
  Executor ex;
  WakeFlag flag(&ex);
  int processed = 0;
  FlagConsumer(&flag, &processed);
  flag.Signal();
  flag.Signal();
  flag.Signal();
  ex.RunUntilIdle();
  // Multiple signals while the consumer is runnable coalesce into one wake
  // (plus at most one flagged re-check).
  EXPECT_GE(processed, 1);
  EXPECT_LE(processed, 2);
}

TEST(VcpuTest, ChargeSerializes) {
  Executor ex;
  Vcpu cpu(&ex);
  SimTime t1 = cpu.Charge(Micros(10));
  SimTime t2 = cpu.Charge(Micros(5));
  EXPECT_EQ(t1.ns(), Micros(10).ns());
  EXPECT_EQ(t2.ns(), Micros(15).ns());
  EXPECT_EQ(cpu.busy_total().ns(), Micros(15).ns());
}

Task CpuWorker(Vcpu* cpu, SimDuration cost, int n, std::vector<int64_t>* completions,
               Executor* ex) {
  for (int i = 0; i < n; ++i) {
    co_await cpu->Run(cost);
    completions->push_back(ex->Now().ns());
  }
}

TEST(VcpuTest, RunQueuesBehindOtherWork) {
  Executor ex;
  Vcpu cpu(&ex);
  std::vector<int64_t> a;
  std::vector<int64_t> b;
  CpuWorker(&cpu, Micros(10), 2, &a, &ex);
  CpuWorker(&cpu, Micros(10), 2, &b, &ex);
  ex.RunUntilIdle();
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  // Interleaved FIFO: a0 at 10, b0 at 20, a1 at 30, b1 at 40.
  EXPECT_EQ(a[0], Micros(10).ns());
  EXPECT_EQ(b[0], Micros(20).ns());
  EXPECT_EQ(a[1], Micros(30).ns());
  EXPECT_EQ(b[1], Micros(40).ns());
  EXPECT_EQ(cpu.busy_total().ns(), Micros(40).ns());
}

TEST(VcpuTest, UtilizationWindow) {
  EXPECT_DOUBLE_EQ(Vcpu::Utilization(Micros(0), Micros(50), Micros(100)), 0.5);
  EXPECT_DOUBLE_EQ(Vcpu::Utilization(Micros(10), Micros(10), Micros(100)), 0.0);
  // Clamped at 1.
  EXPECT_DOUBLE_EQ(Vcpu::Utilization(Micros(0), Micros(200), Micros(100)), 1.0);
}

TEST(TimeTest, Arithmetic) {
  EXPECT_EQ((Millis(1) + Micros(500)).ns(), 1500000);
  EXPECT_EQ((Seconds(1) / 4).ns(), 250000000);
  EXPECT_EQ(SecondsF(0.5).ns(), 500000000);
  SimTime t(100);
  EXPECT_EQ((t + Nanos(50)).ns(), 150);
  EXPECT_EQ(((t + Nanos(50)) - t).ns(), 50);
  EXPECT_LT(SimTime(1), SimTime(2));
}

// --- Schedule shuffle + pending-queue diagnostics (src/check support). ---

// Records the firing order of 16 same-timestamp events under a shuffle seed.
std::vector<int> ShuffledOrder(uint64_t seed) {
  Executor ex;
  ex.EnableShuffle(seed);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    ex.PostAfter(Micros(5), [&order, i] { order.push_back(i); });
  }
  ex.RunUntilIdle();
  return order;
}

TEST(ExecutorShuffleTest, SameSeedSameTieBreaking) {
  EXPECT_EQ(ShuffledOrder(7), ShuffledOrder(7));
  EXPECT_EQ(ShuffledOrder(1234567), ShuffledOrder(1234567));
}

TEST(ExecutorShuffleTest, ShuffleRandomizesOnlyTies) {
  // Distinct timestamps still fire in time order, whatever the seed does to
  // same-time ties.
  Executor ex;
  ex.EnableShuffle(99);
  std::vector<int> order;
  ex.PostAfter(Micros(30), [&] { order.push_back(3); });
  ex.PostAfter(Micros(10), [&] { order.push_back(1); });
  ex.PostAfter(Micros(20), [&] { order.push_back(2); });
  ex.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ExecutorDiagnosticsTest, PendingEventsSnapshotInFiringOrder) {
  Executor ex;
  ex.PostAfter(Micros(30), [] {});
  ex.PostAfter(Micros(10), [] {});
  ex.PostAfter(Micros(20), [] {});
  const auto pending = ex.PendingEvents();
  ASSERT_EQ(pending.size(), 3u);
  EXPECT_EQ(pending[0].at, SimTime(Micros(10).ns()));
  EXPECT_EQ(pending[1].at, SimTime(Micros(20).ns()));
  EXPECT_EQ(pending[2].at, SimTime(Micros(30).ns()));
  const std::string dump = ex.FormatPendingEvents();
  EXPECT_NE(dump.find("3 pending"), std::string::npos) << dump;
  ex.RunUntilIdle();
  EXPECT_NE(ex.FormatPendingEvents().find("0 pending"), std::string::npos);
}

}  // namespace
}  // namespace kite
