// Continuous-telemetry layer (DESIGN.md §15): MetricSampler semantics and
// determinism, the executor dispatch profiler, and the end-to-end promise
// that turning telemetry on does not perturb a shuffled schedule.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/kite.h"
#include "src/net/bridge.h"
#include "src/net/netif.h"
#include "src/net/queue.h"
#include "src/net/stack.h"
#include "src/net/tcp.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/sampler.h"
#include "src/sim/executor.h"

namespace kite {
namespace {

// --- MetricSampler unit semantics. ----------------------------------------

TEST(SamplerTest, DeltasLevelsBaselineAndAdmission) {
  Executor ex;
  MetricRegistry metrics;
  Counter* events = metrics.counter("d", "dev", "events");
  Gauge* level = metrics.gauge("d", "dev", "level");
  metrics.counter("d", "dev", "silent");  // Never touched: never admitted.

  events->Add(5);  // Warm-up before Start(): absorbed by the baseline.
  SamplerParams params;
  params.period = Millis(1);
  MetricSampler sampler(&ex, &metrics, params);
  sampler.Start();
  EXPECT_TRUE(sampler.running());

  ex.PostAfter(Micros(100), [&] {
    events->Add(3);
    level->Set(2);
  });
  ex.PostAfter(Micros(1100), [&] {
    events->Add(7);
    level->Set(0);
  });
  ex.RunFor(Micros(3500));  // Ticks at 1, 2, 3 ms.
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_EQ(sampler.ticks(), 3u);
  ex.RunUntilIdle();  // No further ticks after Stop().
  EXPECT_EQ(sampler.ticks(), 3u);

  const std::vector<MetricSampler::Timeline> timelines = sampler.Timelines();
  ASSERT_EQ(timelines.size(), 2u);  // "silent" stayed out.

  const MetricSampler::Timeline& c = timelines[0];
  EXPECT_EQ(c.key.name, "events");
  EXPECT_EQ(c.kind, MetricRegistry::Kind::kCounter);
  ASSERT_EQ(c.points.size(), 3u);
  EXPECT_EQ(c.points[0].first.ns(), Millis(1).ns());
  EXPECT_EQ(c.points[0].second, 3);  // Baseline excluded the warm-up 5.
  EXPECT_EQ(c.points[1].second, 7);
  EXPECT_EQ(c.points[2].second, 0);  // Zeros recorded once admitted.

  const MetricSampler::Timeline& g = timelines[1];
  EXPECT_EQ(g.key.name, "level");
  EXPECT_EQ(g.kind, MetricRegistry::Kind::kGauge);
  ASSERT_EQ(g.points.size(), 3u);
  EXPECT_EQ(g.points[0].second, 2);
  EXPECT_EQ(g.points[1].second, 0);
  EXPECT_EQ(g.points[2].second, 0);
}

TEST(SamplerTest, PrefixFilterKeepsOnlyMatchingKeys) {
  Executor ex;
  MetricRegistry metrics;
  Counter* keep = metrics.counter("client0", "tcp", "retransmits");
  Counter* drop = metrics.counter("client10", "tcp", "retransmits");
  SamplerParams params;
  params.period = Millis(1);
  params.prefixes = {"client0/"};  // Trailing slash: not a client10 prefix.
  MetricSampler sampler(&ex, &metrics, params);
  sampler.Start();
  ex.PostAfter(Micros(10), [&] {
    keep->Inc();
    drop->Inc();
  });
  ex.RunFor(Millis(2));
  sampler.Stop();
  const std::vector<MetricSampler::Timeline> timelines = sampler.Timelines();
  ASSERT_EQ(timelines.size(), 1u);
  EXPECT_EQ(timelines[0].key.domain, "client0");
}

// Same seed, fresh executor → byte-identical export, including after the
// ring has wrapped (head offset and dropped counts are schedule-determined).
TEST(SamplerTest, DeterministicToJsonAcrossRingWraparound) {
  const auto run = [] {
    Executor ex;
    ex.EnableShuffle(42);
    MetricRegistry metrics;
    Counter* c = metrics.counter("d", "dev", "events");
    Gauge* g = metrics.gauge("d", "dev", "level");
    SamplerParams params;
    params.period = Micros(100);
    params.ring_points = 8;  // Tiny: force wraparound within the run.
    auto sampler = std::make_unique<MetricSampler>(&ex, &metrics, params);
    sampler->Start();
    for (int i = 0; i < 200; ++i) {
      ex.PostAfter(Micros(7 * i + (i * i) % 13), [c, g, i] {
        c->Add(static_cast<uint64_t>(i % 5));
        g->Set(i % 7);
      });
    }
    ex.RunFor(Millis(5));
    sampler->Stop();
    return std::make_pair(sampler->ToJson(), sampler->Timelines());
  };
  const auto [json_a, timelines_a] = run();
  const auto [json_b, timelines_b] = run();
  EXPECT_EQ(json_a, json_b);
  ASSERT_FALSE(timelines_a.empty());
  // The wraparound actually engaged: the ring is full and points were lost.
  EXPECT_EQ(timelines_a[0].points.size(), 8u);
  EXPECT_GT(timelines_a[0].dropped, 0u);
  // Unwrapped points are still time-ordered.
  for (size_t i = 1; i < timelines_a[0].points.size(); ++i) {
    EXPECT_LT(timelines_a[0].points[i - 1].first.ns(),
              timelines_a[0].points[i].first.ns());
  }
}

// --- Dispatch profiler. ---------------------------------------------------

TEST(DispatchProfilerTest, DisabledIsEmpty) {
  Executor ex;
  EXPECT_FALSE(ex.dispatch_profiler_enabled());
  EXPECT_TRUE(ex.DispatchProfile().empty());
  EXPECT_EQ(FormatDispatchProfile(ex), "(dispatch profiler disabled)\n");
}

TEST(DispatchProfilerTest, ExactCountsPerSite) {
  Executor ex;
  ex.set_profile_sample_shift(0);  // Time every dispatch.
  ex.EnableDispatchProfiler();
  uint64_t fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ex.PostAfter(Micros(i), KITE_POST_SITE("test/tagged-timer"), [&fired] { ++fired; });
  }
  for (int i = 0; i < 500; ++i) {
    ex.PostAfter(Micros(2 * i + 1), [&fired] { ++fired; });
  }
  ex.RunUntilIdle();
  EXPECT_EQ(fired, 1500u);

  uint64_t total_invocations = 0;
  uint64_t total_est_ns = 0;
  bool saw_tagged = false, saw_untagged = false;
  for (const DispatchProfileEntry& e : ex.DispatchProfile()) {
    total_invocations += e.invocations;
    total_est_ns += e.est_wall_ns;
    EXPECT_EQ(e.samples, e.invocations);  // Shift 0: every dispatch sampled.
    if (std::strcmp(e.label, "test/tagged-timer") == 0) {
      saw_tagged = true;
      EXPECT_EQ(e.invocations, 1000u);
    } else if (std::strcmp(e.label, "(untagged)") == 0) {
      saw_untagged = true;
      EXPECT_EQ(e.invocations, 500u);
    }
  }
  EXPECT_TRUE(saw_tagged);
  EXPECT_TRUE(saw_untagged);
  EXPECT_EQ(total_invocations, ex.steps_executed());
  EXPECT_GT(total_est_ns, 0u);

  const std::string table = FormatDispatchProfile(ex);
  EXPECT_NE(table.find("test/tagged-timer"), std::string::npos);
  const std::string json = DispatchProfileJson(ex);
  EXPECT_NE(json.find("\"label\": \"test/tagged-timer\""), std::string::npos);
  EXPECT_NE(json.find("\"invocations\": 1000"), std::string::npos);
}

TEST(DispatchProfilerTest, SiteRegistryInternsLabels) {
  const DispatchSite* a = RegisterDispatchSite("test/interned-label");
  const DispatchSite* b = RegisterDispatchSite("test/interned-label");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(DispatchSiteLabel(a->index), "test/interned-label");
  EXPECT_STREQ(DispatchSiteLabel(kDispatchSiteUntagged), "(untagged)");
  EXPECT_STREQ(DispatchSiteLabel(kDispatchSiteCoroutine), "(coroutine)");
}

// --- No-perturbation: telemetry on vs off, same shuffled schedule. --------

struct PingRun {
  std::string metrics_table;
  std::vector<int64_t> rtts_ns;
  int64_t end_ns = 0;
};

PingRun RunShuffledPings(bool telemetry) {
  KiteSystem::Params params;
  params.sampler.enabled = telemetry;
  params.sampler.period = Millis(1);
  KiteSystem sys(params);
  sys.EnableScheduleShuffle(7);
  if (telemetry) {
    sys.executor().EnableDispatchProfiler();
  }
  NetworkDomain* netdom = sys.CreateNetworkDomain();
  GuestVm* guest = sys.CreateGuest("telemetry-guest");
  sys.AttachVif(guest, netdom, Ipv4Addr::FromOctets(10, 0, 0, 10));
  EXPECT_TRUE(sys.WaitConnected(guest));
  PingRun run;
  for (int i = 0; i < 20; ++i) {
    bool done = false;
    guest->stack()->Ping(sys.client_ip(), 56, [&](bool ok, SimDuration rtt) {
      EXPECT_TRUE(ok);
      run.rtts_ns.push_back(rtt.ns());
      done = true;
    });
    EXPECT_TRUE(sys.WaitUntil([&] { return done; }, Seconds(5)));
  }
  run.metrics_table = sys.FormatMetrics();
  run.end_ns = sys.Now().ns();
  return run;
}

TEST(TelemetryPerturbationTest, EnabledRunMatchesDisabledRunExactly) {
  const PingRun off = RunShuffledPings(false);
  const PingRun on = RunShuffledPings(true);
  EXPECT_EQ(off.rtts_ns, on.rtts_ns);
  EXPECT_EQ(off.end_ns, on.end_ns);
  EXPECT_EQ(off.metrics_table, on.metrics_table);
}

// --- TCP congestion telemetry: the cwnd sawtooth. -------------------------

// Half of a veth pair (bench_tcp_loss's PatchIf, reduced).
class PatchIf : public NetIf {
 public:
  PatchIf(std::string name, MacAddr mac) : NetIf(std::move(name), mac) {
    SetUp(true);
  }
  void SetPeer(NetIf* peer) { peer_ = peer; }
  void Output(const EthernetFrame& frame) override {
    CountTx(frame);
    if (peer_ != nullptr) {
      peer_->InjectInput(frame);
    }
  }

 private:
  NetIf* peer_ = nullptr;
};

// One flow through a 1 Gbps drop-tail bottleneck, offered at 2x line rate:
// the sampled per-flow cwnd gauge must show slow-start growth, a loss
// reaction (multiplicative decrease), and regrowth — the AIMD sawtooth.
TEST(TelemetryTcpTest, CwndTimelineShowsSawtooth) {
  Executor ex;
  MetricRegistry metrics;
  Bridge bridge("br0", nullptr);

  const Ipv4Addr server_ip = Ipv4Addr::FromOctets(10, 0, 0, 1);
  const Ipv4Addr client_ip = Ipv4Addr::FromOctets(10, 0, 0, 2);
  const MacAddr server_mac = MacAddr::FromId(0x1000);
  const MacAddr client_mac = MacAddr::FromId(0x2000);

  PatchIf server_if("srv", server_mac);
  PatchIf server_port("srv-port", MacAddr::FromId(0x10));
  server_if.SetPeer(&server_port);
  server_port.SetPeer(&server_if);
  bridge.AddIf(&server_port);
  EtherStack server(&ex, nullptr, &server_if, StackParams{});
  server.ConfigureIp(server_ip);

  PatchIf client_if("cli", client_mac);
  PatchIf client_port("cli-port", MacAddr::FromId(0x11));
  client_if.SetPeer(&client_port);
  client_port.SetPeer(&client_if);
  bridge.AddIf(&client_port);
  StackParams cp;
  cp.metrics = &metrics;
  cp.metrics_domain = "client";
  cp.per_flow_metrics = true;
  EtherStack client(&ex, nullptr, &client_if, cp);
  client.ConfigureIp(client_ip);

  client.AddArpEntry(server_ip, server_mac);
  server.AddArpEntry(client_ip, client_mac);

  EgressQueueParams qp;
  qp.limit_frames = 64;
  qp.drain_gbps = 1.0;
  bridge.EnablePortQueue(&ex, &server_port, qp);

  server.ListenTcp(7000, [](TcpConn* conn) {
    conn->SetDataCallback([](std::span<const uint8_t>) {});
  });
  TcpConn* conn = nullptr;
  client.ConnectTcp(server_ip, 7000, [&conn](TcpConn* c) { conn = c; });
  ex.RunFor(Millis(10));
  ASSERT_NE(conn, nullptr);

  SamplerParams sp;
  sp.period = Millis(1);
  sp.prefixes = {"client/"};
  MetricSampler sampler(&ex, &metrics, sp);
  sampler.Start();

  // Paced writes at 2 Gbps offered into the 1 Gbps bottleneck.
  struct Pacer {
    TcpConn* conn;
    Executor* ex;
    void Tick() {
      conn->Send(Buffer(250000, 0x5a));
      ex->PostAfter(Millis(1), [this] { Tick(); });
    }
  };
  Pacer pacer{conn, &ex};
  ex.Post([&pacer] { pacer.Tick(); });
  ex.RunFor(Millis(200));
  sampler.Stop();

  std::vector<double> cwnd;
  for (const MetricSampler::Timeline& tl : sampler.Timelines()) {
    if (tl.key.name == "cwnd_bytes") {
      for (const auto& [at, v] : tl.points) {
        cwnd.push_back(v);
      }
    }
  }
  ASSERT_GE(cwnd.size(), 50u) << "per-flow cwnd gauge was never sampled";
  EXPECT_GT(bridge.queue_drops(), 0u) << "bottleneck never dropped: no loss signal";

  // Slow start: the window grows well past its initial value.
  const double first = cwnd.front();
  const size_t peak_idx =
      static_cast<size_t>(std::max_element(cwnd.begin(), cwnd.end()) - cwnd.begin());
  const double peak = cwnd[peak_idx];
  EXPECT_GE(peak, 1.5 * first) << "no slow-start growth visible";
  // Loss reaction: a post-peak trough well below the peak.
  const auto trough_it = std::min_element(cwnd.begin() + peak_idx, cwnd.end());
  const double trough = *trough_it;
  EXPECT_LE(trough, 0.7 * peak) << "no multiplicative decrease visible";
  // Recovery: the window climbs again after the trough.
  double post = trough;
  for (auto it = trough_it; it != cwnd.end(); ++it) {
    post = std::max(post, *it);
  }
  EXPECT_GE(post, 1.3 * trough) << "no post-loss regrowth visible";
}

}  // namespace
}  // namespace kite
