// Tests for the security analysis module: instruction decoder, code
// generator, gadget scanner, syscall analysis, and the CVE database.
#include <gtest/gtest.h>

#include "src/security/cve.h"
#include "src/security/rop.h"
#include "src/security/syscalls.h"

namespace kite {
namespace {

// --- Decoder. ---

TEST(DecoderTest, KnownEncodings) {
  struct Case {
    std::vector<uint8_t> bytes;
    size_t length;
    InsnClass klass;
  };
  const Case cases[] = {
      {{0x90}, 1, InsnClass::kNop},
      {{0xc3}, 1, InsnClass::kRet},
      {{0xc2, 0x08, 0x00}, 3, InsnClass::kRet},
      {{0x48, 0x89, 0xc3}, 3, InsnClass::kDataMove},        // mov rbx, rax.
      {{0x89, 0xc8}, 2, InsnClass::kDataMove},              // mov eax, ecx.
      {{0x50}, 1, InsnClass::kDataMove},                    // push rax.
      {{0xb8, 1, 2, 3, 4}, 5, InsnClass::kDataMove},        // mov eax, imm32.
      {{0x48, 0x01, 0xd8}, 3, InsnClass::kArithmetic},      // add rax, rbx.
      {{0x0f, 0xaf, 0xc3}, 3, InsnClass::kArithmetic},      // imul eax, ebx.
      {{0x48, 0x31, 0xc0}, 3, InsnClass::kLogic},           // xor rax, rax.
      {{0xeb, 0x10}, 2, InsnClass::kControlFlow},           // jmp +16.
      {{0xe8, 0, 0, 0, 0}, 5, InsnClass::kControlFlow},     // call rel32.
      {{0x74, 0x05}, 2, InsnClass::kControlFlow},           // je +5.
      {{0xff, 0xe0}, 2, InsnClass::kControlFlow},           // jmp rax.
      {{0x48, 0xc1, 0xe0, 0x04}, 4, InsnClass::kShiftRotate},  // shl rax, 4.
      {{0x48, 0x39, 0xd8}, 3, InsnClass::kSettingFlags},    // cmp rax, rbx.
      {{0x48, 0x85, 0xc0}, 3, InsnClass::kSettingFlags},    // test rax, rax.
      {{0xf3, 0xa4}, 2, InsnClass::kString},                // rep movsb.
      {{0xaa}, 1, InsnClass::kString},                      // stosb.
      {{0xd8, 0xc1}, 2, InsnClass::kFloating},              // fadd st(1).
      {{0x0f, 0x58, 0xc1}, 3, InsnClass::kFloating},        // addps.
      {{0x66, 0x0f, 0x6f, 0xc1}, 4, InsnClass::kMmx},       // movdqa.
      {{0x0f, 0xef, 0xc0}, 3, InsnClass::kMmx},             // pxor.
      {{0x0f, 0xa2}, 2, InsnClass::kMisc},                  // cpuid.
      {{0xc9}, 1, InsnClass::kMisc},                        // leave.
      {{0x0f, 0x1f, 0xc0}, 3, InsnClass::kNop},             // multi-byte nop.
  };
  for (const Case& c : cases) {
    DecodedInsn insn = DecodeInsn(c.bytes);
    ASSERT_TRUE(insn.valid()) << "bytes[0]=" << std::hex << int(c.bytes[0]);
    EXPECT_EQ(insn.length, c.length) << "bytes[0]=" << std::hex << int(c.bytes[0]);
    EXPECT_EQ(insn.klass, c.klass) << "bytes[0]=" << std::hex << int(c.bytes[0]);
  }
}

TEST(DecoderTest, InvalidBytesRejected) {
  EXPECT_FALSE(DecodeInsn(std::vector<uint8_t>{}).valid());
  EXPECT_FALSE(DecodeInsn(std::vector<uint8_t>{0x06}).valid());  // Not in subset.
  // Truncated: mov r,imm32 with only 2 bytes.
  EXPECT_FALSE(DecodeInsn(std::vector<uint8_t>{0xb8, 0x01}).valid());
}

// --- Generator + scanner interplay. ---

TEST(GeneratorTest, EmitsDecodableStream) {
  CodeProfile profile;
  profile.code_bytes = 64 * 1024;
  Rng rng(1);
  Buffer code = GenerateCodeImage(profile, &rng, 1.0);
  EXPECT_GE(code.size(), 64u * 1024);
  // The aligned stream must decode fully.
  size_t pos = 0;
  size_t insns = 0;
  while (pos < code.size()) {
    DecodedInsn insn = DecodeInsn(std::span<const uint8_t>(code).subspan(pos));
    if (!insn.valid()) {
      // Tail may be truncated mid-instruction.
      ASSERT_GT(code.size() - pos, 0u);
      ASSERT_LT(code.size() - pos, 8u) << "undecodable byte at " << pos;
      break;
    }
    pos += insn.length;
    ++insns;
  }
  EXPECT_GT(insns, 10000u);
}

TEST(GeneratorTest, DeterministicForSeed) {
  CodeProfile profile;
  profile.code_bytes = 16 * 1024;
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(GenerateCodeImage(profile, &a, 1.0), GenerateCodeImage(profile, &b, 1.0));
}

TEST(ScannerTest, FindsHandCraftedGadget) {
  // pop rax; ret  +  xor rax,rax; ret
  Buffer code = {0x58, 0xc3, 0x48, 0x31, 0xc0, 0xc3};
  GadgetCounts counts = ScanGadgets(code);
  EXPECT_GT(counts[InsnClass::kDataMove], 0u);  // pop rax; ret.
  EXPECT_GT(counts[InsnClass::kLogic], 0u);     // xor rax, rax; ret.
  EXPECT_GE(counts[InsnClass::kRet], 2u);       // The bare rets.
}

TEST(ScannerTest, NoRetsNoGadgets) {
  Buffer code(1024, 0x90);  // All nops.
  GadgetCounts counts = ScanGadgets(code);
  EXPECT_EQ(counts.total, 0u);
}

TEST(ScannerTest, GadgetCountScalesWithCodeSize) {
  CodeProfile small;
  small.code_bytes = 64 * 1024;
  CodeProfile big = small;
  big.code_bytes = 256 * 1024;
  Rng rng1(3);
  Rng rng2(3);
  Buffer small_img = GenerateCodeImage(small, &rng1, 1.0);
  Buffer big_img = GenerateCodeImage(big, &rng2, 1.0);
  const uint64_t small_count = ScanGadgets(small_img).total;
  const uint64_t big_count = ScanGadgets(big_img).total;
  EXPECT_GT(big_count, small_count * 3);
  EXPECT_LT(big_count, small_count * 6);
}

TEST(ScannerTest, ProfilesOrderMatchesFig5) {
  // Kite ≪ default Linux < CentOS < Fedora ≈ Debian ≤ Ubuntu.
  const double scale = 0.02;
  const uint64_t kite = AnalyzeProfile(KiteNetworkProfile(), scale).total;
  const uint64_t deflt = AnalyzeProfile(DefaultLinuxProfile(), scale).total;
  const uint64_t centos = AnalyzeProfile(CentOsProfile(), scale).total;
  const uint64_t ubuntu = AnalyzeProfile(UbuntuDriverDomainProfile(), scale).total;
  EXPECT_LT(kite, deflt);
  EXPECT_LT(deflt, centos);
  EXPECT_LT(centos, ubuntu);
  // "already has 4x gadgets than Kite VMs" (paper §5.1.2).
  EXPECT_GT(static_cast<double>(deflt) / kite, 2.5);
  EXPECT_LT(static_cast<double>(deflt) / kite, 6.5);
}

// --- Syscall analysis. ---

TEST(SyscallTest, PaperCounts) {
  EXPECT_EQ(AnalyzeSyscalls(KiteNetworkProfile()).used, 14);   // Fig 4a.
  EXPECT_EQ(AnalyzeSyscalls(KiteStorageProfile()).used, 18);   // Fig 4a.
  EXPECT_EQ(AnalyzeSyscalls(UbuntuDriverDomainProfile()).used, 171);  // Fig 4a.
}

TEST(SyscallTest, ReductionFactorAtLeast10x) {
  EXPECT_GE(SyscallReductionFactor(KiteNetworkProfile(), UbuntuDriverDomainProfile()),
            10.0);
}

TEST(SyscallTest, UnikernelExposesOnlyUsed) {
  const auto report = AnalyzeSyscalls(KiteNetworkProfile());
  EXPECT_EQ(report.used, report.exposed);
  EXPECT_TRUE(report.removable.empty());
}

TEST(SyscallTest, LinuxExposesMoreThanItUses) {
  const auto report = AnalyzeSyscalls(UbuntuDriverDomainProfile());
  EXPECT_GT(report.exposed, report.used);
  EXPECT_GE(report.exposed, 300);  // ≈the full Linux syscall table.
  EXPECT_FALSE(report.removable.empty());
}

// --- CVEs. ---

TEST(CveTest, DatabaseHasTable3Entries) {
  int table3 = 0;
  for (const CveEntry& cve : CveDatabase()) {
    if (cve.kind == CveKind::kSyscall) {
      ++table3;
    }
  }
  EXPECT_EQ(table3, 11);  // Table 3 lists 11 syscall CVEs.
}

TEST(CveTest, KiteMitigatesAllTable3Cves) {
  for (const CveVerdict& v : CheckAllCves(KiteNetworkProfile())) {
    EXPECT_TRUE(v.mitigated) << v.cve->id << ": " << v.reason;
  }
  for (const CveVerdict& v : CheckAllCves(KiteStorageProfile())) {
    EXPECT_TRUE(v.mitigated) << v.cve->id << ": " << v.reason;
  }
}

TEST(CveTest, UbuntuVulnerableToAll) {
  EXPECT_EQ(CountMitigated(UbuntuDriverDomainProfile()), 0);
}

TEST(CveTest, SpecificExamples) {
  const OsProfile& kite = KiteNetworkProfile();
  const OsProfile& ubuntu = UbuntuDriverDomainProfile();
  for (const CveEntry& cve : CveDatabase()) {
    if (cve.id == "CVE-2021-35039") {  // init_module.
      EXPECT_TRUE(CheckCve(kite, cve).mitigated);
      EXPECT_FALSE(CheckCve(ubuntu, cve).mitigated);
    }
    if (cve.id == "CVE-2013-2072") {  // python bindings.
      EXPECT_TRUE(CheckCve(kite, cve).mitigated);
      EXPECT_FALSE(CheckCve(ubuntu, cve).mitigated);
    }
  }
}

TEST(CveTest, DriverCveTrendRises) {
  const auto& data = DriverCvesByYear();
  ASSERT_GE(data.size(), 5u);
  EXPECT_GT(data.back().linux_drivers, data.front().linux_drivers);
  for (const auto& year : data) {
    EXPECT_GT(year.linux_drivers, year.windows_drivers);  // Fig 1a shape.
  }
  EXPECT_EQ(CraftedApplicationCveCount(), 172);
  EXPECT_EQ(ShellCveCount(), 92);
}

// --- Image size / boot time (Fig 4b/4c data). ---

TEST(FootprintTest, ImageSizeRatioAtLeast10x) {
  const double kite_mb = KiteNetworkProfile().ImageBytes() / 1048576.0;
  const double ubuntu_mb = UbuntuDriverDomainProfile().ImageBytes() / 1048576.0;
  EXPECT_NEAR(kite_mb, 22.0, 6.0);  // ≈22 MB rumprun image (paper §1).
  EXPECT_GE(ubuntu_mb / kite_mb, 10.0);  // Fig 4b.
}

TEST(FootprintTest, BootTimesMatchFig4c) {
  EXPECT_NEAR(KiteNetworkProfile().BootTime().seconds(), 7.0, 0.2);
  EXPECT_NEAR(UbuntuDriverDomainProfile().BootTime().seconds(), 75.0, 0.2);
}

}  // namespace
}  // namespace kite
