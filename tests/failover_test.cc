// Sharded driver domains with health-driven failover: live VIF/VBD migration
// between backend shards must lose nothing the guest was told succeeded —
// every acknowledged packet reaches the wire, every acknowledged write is
// readable through the new path — and the Rebalancer must drain a degraded
// shard and evacuate a stalled one without operator intervention.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/core/invariants.h"
#include "src/core/kite.h"

namespace kite {
namespace {

const Ipv4Addr kGuestIp = Ipv4Addr::FromOctets(10, 0, 0, 10);

Ipv4Addr GuestIpFor(int i) { return Ipv4Addr::FromOctets(10, 0, 0, 10 + i); }

void ExpectCoherent(KiteSystem* sys) {
  sys->RunUntilIdle();
  InvariantChecker checker(sys);
  const std::vector<Violation> violations = checker.Check();
  EXPECT_TRUE(violations.empty()) << InvariantChecker::Format(violations);
}

bool PingFrom(KiteSystem* sys, GuestVm* guest) {
  bool ok = false;
  guest->stack()->Ping(sys->client_ip(), 56, [&](bool r, SimDuration) { ok = r; });
  sys->WaitUntil([&] { return ok; }, Seconds(5));
  return ok;
}

TEST(FailoverTest, GracefulVifMigrationLosesNoAckedPacket) {
  KiteSystem sys;
  NetworkDomain* a = sys.CreateNetworkDomain();
  NetworkDomain* b = sys.CreateNetworkDomain();  // Forces the fabric switch in.
  ASSERT_NE(sys.ether_switch(), nullptr);
  GuestVm* guest = sys.CreateGuest("app-vm");
  sys.AttachVif(guest, a, kGuestIp);
  ASSERT_TRUE(sys.WaitConnected(guest));

  // nuttcp-style stream guest -> client while the VIF moves shards.
  auto server = sys.client()->stack()->OpenUdp();
  server->Bind(9000);
  uint64_t client_rx = 0;
  server->SetRecvCallback([&](Ipv4Addr, uint16_t, const Buffer&) { ++client_rx; });
  auto sock = guest->stack()->OpenUdp();
  constexpr int kPackets = 400;
  for (int i = 0; i < kPackets; ++i) {
    sys.executor().PostAfter(Micros(20) * i, [&sys, &sock] {
      sock->SendTo(sys.client_ip(), 9000, Buffer(512, 0x42));
    });
  }

  bool done = false;
  bool ok = false;
  sys.executor().PostAfter(Micros(20) * (kPackets / 2), [&] {
    sys.MigrateVif(guest, a, b, [&](bool r) {
      done = true;
      ok = r;
    });
  });
  ASSERT_TRUE(sys.WaitUntil([&] { return done; }, Seconds(5)));
  EXPECT_TRUE(ok);
  sys.RunUntilIdle();

  EXPECT_TRUE(guest->netfront()->connected());
  EXPECT_EQ(guest->netfront()->backend_dom(), b->domain()->id());
  // Exact conservation: every packet the guest wasn't told was dropped made
  // it to the client. The only legal losses are the explicitly counted ones.
  const uint64_t accounted =
      kPackets - guest->netfront()->tx_dropped() - guest->netfront()->recovery_drops();
  EXPECT_EQ(client_rx, accounted);
  EXPECT_GT(client_rx, 0u);

  EXPECT_EQ(sys.migrator().completed(), 1u);
  EXPECT_EQ(sys.migrator().failed(), 0u);
  EXPECT_EQ(sys.migrations_in_flight(), 0);
  // The move left its mark in the guest's flight-recorder ring.
  const std::string tail = sys.recorder().FormatTail(guest->domain()->id());
  EXPECT_NE(tail.find("migrate-start"), std::string::npos);
  EXPECT_NE(tail.find("migrate-done"), std::string::npos);

  EXPECT_TRUE(PingFrom(&sys, guest));
  ExpectCoherent(&sys);
}

TEST(FailoverTest, GracefulVbdMigrationKeepsEveryAckedWrite) {
  KiteSystem::Params params;
  params.disk_store_data = true;
  KiteSystem sys(params);
  StorageDomain* a = sys.CreateStorageDomain();
  StorageDomain* b = sys.CreateStorageDomain();  // Both port the shared media.
  GuestVm* guest = sys.CreateGuest("db-vm");
  sys.AttachVbd(guest, a);
  ASSERT_TRUE(sys.WaitConnected(guest));

  // Burst of distinct-pattern writes, then migrate while they are in flight:
  // acked writes ride the shared media, unacked ones are requeued by the
  // frontend against the new shard. Every callback fires exactly once, ok.
  constexpr int kWrites = 48;
  int completed = 0;
  int failed = 0;
  for (int i = 0; i < kWrites; ++i) {
    guest->blkfront()->Write(static_cast<int64_t>(i) * 64 * 1024,
                             Buffer(16 * 1024, static_cast<uint8_t>(i + 1)),
                             [&](bool ok) { ok ? ++completed : ++failed; });
  }
  bool done = false;
  bool ok = false;
  sys.MigrateVbd(guest, a, b, [&](bool r) {
    done = true;
    ok = r;
  });
  ASSERT_TRUE(sys.WaitUntil([&] { return completed + failed == kWrites; }, Seconds(10)));
  EXPECT_EQ(failed, 0);
  ASSERT_TRUE(sys.WaitUntil([&] { return done; }, Seconds(5)));
  EXPECT_TRUE(ok);
  EXPECT_EQ(guest->blkfront()->backend_dom(), b->domain()->id());

  // Every acknowledged write must be readable, byte for byte, through the
  // new shard's port onto the media.
  for (int i = 0; i < kWrites; ++i) {
    Buffer readback;
    bool read_done = false;
    guest->blkfront()->Read(static_cast<int64_t>(i) * 64 * 1024, 16 * 1024, &readback,
                            [&](bool r) { read_done = r; });
    ASSERT_TRUE(sys.WaitUntil([&] { return read_done; }, Seconds(5))) << "block " << i;
    ASSERT_EQ(readback.size(), 16u * 1024u);
    EXPECT_EQ(Fnv1a(readback), Fnv1a(Buffer(16 * 1024, static_cast<uint8_t>(i + 1))))
        << "block " << i;
  }
  EXPECT_EQ(sys.migrator().completed(), 1u);
  ExpectCoherent(&sys);
}

TEST(FailoverTest, BackToBackMigrationsSerializePerDevice) {
  KiteSystem sys;
  NetworkDomain* a = sys.CreateNetworkDomain();
  NetworkDomain* b = sys.CreateNetworkDomain();
  NetworkDomain* c = sys.CreateNetworkDomain();
  GuestVm* guest = sys.CreateGuest("app-vm");
  sys.AttachVif(guest, a, kGuestIp);
  ASSERT_TRUE(sys.WaitConnected(guest));

  // The second move is issued while the first is still draining; it must
  // queue behind it (never a double-relink) and run after it completes.
  std::vector<std::string> order;
  sys.MigrateVif(guest, a, b, [&](bool ok) { order.push_back(ok ? "a->b ok" : "a->b fail"); });
  sys.MigrateVif(guest, b, c, [&](bool ok) { order.push_back(ok ? "b->c ok" : "b->c fail"); });
  EXPECT_EQ(sys.migrations_in_flight(), 2);
  ASSERT_TRUE(sys.WaitUntil([&] { return order.size() == 2; }, Seconds(10)));
  EXPECT_EQ(order[0], "a->b ok");
  EXPECT_EQ(order[1], "b->c ok");
  EXPECT_EQ(guest->netfront()->backend_dom(), c->domain()->id());
  EXPECT_EQ(sys.migrator().completed(), 2u);
  EXPECT_TRUE(PingFrom(&sys, guest));
  ExpectCoherent(&sys);
}

TEST(FailoverTest, MigrationRacingRestartSettles) {
  KiteSystem sys;
  NetworkDomain* a = sys.CreateNetworkDomain();
  NetworkDomain* b = sys.CreateNetworkDomain();
  GuestVm* guest = sys.CreateGuest("app-vm");
  sys.AttachVif(guest, a, kGuestIp);
  ASSERT_TRUE(sys.WaitConnected(guest));

  // Start a graceful move off `a`, then restart `a` before the drain
  // finishes. The restart's forced move queues behind the graceful one; the
  // graceful move finds its source dead and relinks to `b`; the forced move
  // then finds its recorded source alive (the guest settled on `b`) and must
  // drain it rather than strand its mappings.
  bool done = false;
  bool ok = false;
  sys.MigrateVif(guest, a, b, [&](bool r) {
    done = true;
    ok = r;
  });
  NetworkDomain* fresh = sys.RestartNetworkDomain(a);
  ASSERT_TRUE(sys.WaitUntil(
      [&] { return done && sys.migrations_in_flight() == 0; }, Seconds(10)));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(guest->netfront()->connected());
  // The restart's move ran last: the guest ends on the replacement.
  EXPECT_EQ(guest->netfront()->backend_dom(), fresh->domain()->id());
  EXPECT_EQ(sys.migrator().completed(), 2u);
  EXPECT_EQ(sys.migrator().failed(), 0u);
  EXPECT_TRUE(PingFrom(&sys, guest));
  ExpectCoherent(&sys);
}

TEST(FailoverTest, RebalancerDrainsDegradedShard) {
  KiteSystem::Params params;
  params.health.probe_period = Millis(1);
  params.health.degraded_after = Millis(5);
  params.health.stalled_after = Seconds(10);  // Degraded-only in this test.
  KiteSystem sys(params);
  NetworkDomain* a = sys.CreateNetworkDomain();
  NetworkDomain* b = sys.CreateNetworkDomain();
  DomainPool pool(&sys);
  pool.AddNetworkShard(a);
  pool.AddNetworkShard(b);
  RebalancerParams rp;
  rp.degraded_hysteresis = Millis(10);
  Rebalancer reb(&sys, &pool, rp);

  GuestVm* guest = sys.CreateGuest("app-vm");
  pool.PinVif(guest->domain()->id(), a->domain()->id());  // Known victim.
  ASSERT_EQ(pool.AttachVif(guest, kGuestIp), a);
  ASSERT_TRUE(sys.WaitConnected(guest));
  EXPECT_EQ(pool.VifLoad(a->domain()->id()), 1);
  pool.UnpinVif(guest->domain()->id());  // Let the drain re-place it freely.

  // Swallow the one kick that matters: netback never learns about the
  // request, the stall age grows, and the shard goes degraded (never
  // stalled — the threshold is far away).
  sys.faults().set_rate(FaultSite::kEventNotify, 1.0);
  guest->stack()->Ping(sys.client_ip(), 56, [](bool, SimDuration) {});
  sys.RunFor(Millis(5));
  sys.faults().set_rate(FaultSite::kEventNotify, 0.0);

  // Hysteresis elapses, the Rebalancer closes the shard and drains the VIF
  // onto the healthy one — gracefully, so the retired instance leaves no
  // stranded state behind.
  ASSERT_TRUE(sys.WaitUntil(
      [&] {
        return guest->netfront()->connected() &&
               guest->netfront()->backend_dom() == b->domain()->id();
      },
      Seconds(10)));
  EXPECT_GE(reb.drains_started(), 1u);
  EXPECT_GE(reb.moves_started(), 1u);
  EXPECT_EQ(pool.VifLoad(b->domain()->id()), 1);

  // Once empty and healthy again, the shard is re-admitted for placement.
  ASSERT_TRUE(sys.WaitUntil([&] { return reb.readmissions() >= 1; }, Seconds(10)));
  EXPECT_TRUE(pool.IsNetworkShardOpen(a->domain()->id()));
  EXPECT_TRUE(PingFrom(&sys, guest));
  ExpectCoherent(&sys);
}

TEST(FailoverTest, RebalancerEvacuatesStalledShard) {
  KiteSystem::Params params;
  params.health.probe_period = Millis(1);
  params.health.degraded_after = Millis(5);
  params.health.stalled_after = Millis(20);
  KiteSystem sys(params);
  NetworkDomain* a = sys.CreateNetworkDomain();
  NetworkDomain* b = sys.CreateNetworkDomain();
  const DomId a_id = a->domain()->id();
  DomainPool pool(&sys);
  pool.AddNetworkShard(a);
  pool.AddNetworkShard(b);
  RebalancerParams rp;
  // Hysteresis longer than the stall threshold: the degraded drain never
  // confirms, so the stalled path (forced evacuation) must handle it.
  rp.degraded_hysteresis = Seconds(1);
  Rebalancer reb(&sys, &pool, rp);

  GuestVm* guest = sys.CreateGuest("app-vm");
  pool.PinVif(guest->domain()->id(), a_id);
  ASSERT_EQ(pool.AttachVif(guest, kGuestIp), a);
  ASSERT_TRUE(sys.WaitConnected(guest));
  pool.UnpinVif(guest->domain()->id());

  sys.faults().set_rate(FaultSite::kEventNotify, 1.0);
  guest->stack()->Ping(sys.client_ip(), 56, [](bool, SimDuration) {});
  sys.RunFor(Millis(5));
  sys.faults().set_rate(FaultSite::kEventNotify, 0.0);

  // A wedged kick is unrecoverable in place: the watchdog escalates to
  // stalled and the Rebalancer force-evacuates the shard. The guest lands on
  // the healthy survivor; a replacement domain takes the dead shard's slot.
  ASSERT_TRUE(sys.WaitUntil([&] { return reb.evacuations() >= 1; }, Seconds(10)));
  ASSERT_TRUE(sys.WaitUntil(
      [&] {
        return sys.migrations_in_flight() == 0 && guest->netfront()->connected();
      },
      Seconds(10)));
  EXPECT_EQ(reb.evacuations(), 1u);
  EXPECT_EQ(guest->netfront()->backend_dom(), b->domain()->id());
  EXPECT_FALSE(pool.HasNetworkShard(a_id));  // Old id replaced...
  EXPECT_EQ(pool.NetworkShards().size(), 2u);  // ...but the slot survives.
  EXPECT_TRUE(PingFrom(&sys, guest));
  ExpectCoherent(&sys);
}

// The headline scenario: 64 guests sharded over 4 network + 2 storage
// domains; one network shard is wedged to stalled mid-run; the Rebalancer
// evacuates it; no acknowledged packet or write is lost, and the quiesced
// system passes the full invariant audit.
TEST(FailoverTest, HeadlineSixtyFourGuestsSurviveStalledShard) {
  KiteSystem::Params params;
  params.disk_store_data = true;
  params.health.probe_period = Millis(1);
  params.health.degraded_after = Millis(5);
  params.health.stalled_after = Millis(20);
  KiteSystem sys(params);

  constexpr int kNetShards = 4;
  constexpr int kStorShards = 2;
  constexpr int kGuests = 64;
  DomainPool pool(&sys);
  std::vector<NetworkDomain*> netdoms;
  for (int i = 0; i < kNetShards; ++i) {
    netdoms.push_back(sys.CreateNetworkDomain());
    pool.AddNetworkShard(netdoms.back());
  }
  for (int i = 0; i < kStorShards; ++i) {
    pool.AddStorageShard(sys.CreateStorageDomain());
  }
  RebalancerParams rp;
  rp.degraded_hysteresis = Seconds(1);  // Stall wins: evacuation path.
  Rebalancer reb(&sys, &pool, rp);

  std::vector<GuestVm*> guests;
  for (int i = 0; i < kGuests; ++i) {
    GuestVm* g = sys.CreateGuest(StrFormat("vm%02d", i));
    ASSERT_NE(pool.AttachVif(g, GuestIpFor(i)), nullptr);
    ASSERT_NE(pool.AttachVbd(g), nullptr);
    guests.push_back(g);
  }
  for (GuestVm* g : guests) {
    ASSERT_TRUE(sys.WaitConnected(g));
  }
  // The hash spread every shard some guests.
  for (const auto& info : pool.NetworkShards()) {
    EXPECT_GT(info.load, 0) << "empty shard dom" << info.dom;
  }

  auto server = sys.client()->stack()->OpenUdp();
  server->Bind(9000);
  uint64_t client_rx = 0;
  server->SetRecvCallback([&](Ipv4Addr, uint16_t, const Buffer&) { ++client_rx; });
  std::vector<std::unique_ptr<UdpSocket>> socks;
  for (GuestVm* g : guests) {
    socks.push_back(g->stack()->OpenUdp());
  }
  constexpr int kPacketsPerPhase = 25;
  auto blast = [&] {
    for (size_t gi = 0; gi < guests.size(); ++gi) {
      UdpSocket* sock = socks[gi].get();
      for (int i = 0; i < kPacketsPerPhase; ++i) {
        sys.executor().PostAfter(Micros(100) * i + Micros(gi), [&sys, sock] {
          sock->SendTo(sys.client_ip(), 9000, Buffer(256, 0x5c));
        });
      }
    }
    sys.RunFor(Millis(10));
  };

  // Phase 1: all shards healthy. Plus one acked write per guest.
  blast();
  // The storage shards port one shared (dual-ported) media, so guests carve
  // it up: one disjoint slab per guest, like partitions on a shared volume.
  constexpr int64_t kSlab = 1 << 20;
  int writes_done = 0;
  for (int i = 0; i < kGuests; ++i) {
    guests[i]->blkfront()->Write(i * kSlab, Buffer(8 * 1024, static_cast<uint8_t>(i + 1)),
                                 [&](bool ok) { writes_done += ok ? 1 : 0; });
  }
  ASSERT_TRUE(sys.WaitUntil([&] { return writes_done == kGuests; }, Seconds(10)));

  // Wedge the shard serving guest 0: swallow the kick for one ping, so only
  // that netback misses an irreplaceable notification.
  const DomId victim = guests[0]->netfront()->backend_dom();
  sys.faults().set_rate(FaultSite::kEventNotify, 1.0);
  guests[0]->stack()->Ping(sys.client_ip(), 56, [](bool, SimDuration) {});
  sys.RunFor(Millis(5));
  sys.faults().set_rate(FaultSite::kEventNotify, 0.0);

  // The Rebalancer evacuates; every displaced guest reconnects somewhere.
  ASSERT_TRUE(sys.WaitUntil([&] { return reb.evacuations() >= 1; }, Seconds(10)));
  ASSERT_TRUE(sys.WaitUntil(
      [&] {
        if (sys.migrations_in_flight() != 0) {
          return false;
        }
        for (GuestVm* g : guests) {
          if (!g->netfront()->connected() || g->netfront()->backend_dom() == victim) {
            return false;
          }
        }
        return true;
      },
      Seconds(30)));
  EXPECT_FALSE(pool.HasNetworkShard(victim));
  EXPECT_EQ(pool.NetworkShards().size(), static_cast<size_t>(kNetShards));

  // Phase 2: service restored across the rebuilt pool.
  blast();
  sys.RunUntilIdle();

  // Zero acked-packet loss. Across a *crash* evacuation the ledger is
  // one-sided: a frame the dead backend forwarded whose completion the guest
  // never saw is counted dropped by the frontend yet still reached the wire
  // (the crash severed the ack, not the packet). So: everything not counted
  // lost arrived, and nothing arrived that was never sent.
  uint64_t dropped = 0;
  for (GuestVm* g : guests) {
    dropped += g->netfront()->tx_dropped() + g->netfront()->recovery_drops();
  }
  const uint64_t sent = static_cast<uint64_t>(kGuests) * 2 * kPacketsPerPhase;
  EXPECT_GE(client_rx, sent - dropped);
  EXPECT_LE(client_rx, sent);
  EXPECT_GT(client_rx, 0u);

  // Zero acked-write loss: phase-1 writes read back intact (some through a
  // different storage port than they were written through, had any VBD
  // moved; all through the shared media).
  for (int i = 0; i < kGuests; ++i) {
    Buffer readback;
    bool read_done = false;
    guests[i]->blkfront()->Read(i * kSlab, 8 * 1024, &readback,
                                [&](bool r) { read_done = r; });
    ASSERT_TRUE(sys.WaitUntil([&] { return read_done; }, Seconds(5))) << "guest " << i;
    EXPECT_EQ(Fnv1a(readback), Fnv1a(Buffer(8 * 1024, static_cast<uint8_t>(i + 1))))
        << "guest " << i;
  }
  ExpectCoherent(&sys);
}

}  // namespace
}  // namespace kite
