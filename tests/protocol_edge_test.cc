// Edge cases of the incremental protocol parsers (HTTP/RESP/memcached):
// requests split across TCP segments, multiple requests in one segment,
// and malformed input — plus OS-profile invariants.
#include <gtest/gtest.h>

#include "src/net/nic.h"
#include "src/net/stack.h"
#include "src/net/tcp.h"
#include "src/os/profile.h"
#include "src/workloads/http.h"
#include "src/workloads/memcached.h"
#include "src/workloads/redis.h"

namespace kite {
namespace {

const Ipv4Addr kIpA = Ipv4Addr::FromOctets(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::FromOctets(10, 0, 0, 2);

class ProtocolPair : public ::testing::Test {
 protected:
  ProtocolPair() {
    nic_a_ = std::make_unique<Nic>(&ex_, "a", "nicA", MacAddr::FromId(1));
    nic_b_ = std::make_unique<Nic>(&ex_, "b", "nicB", MacAddr::FromId(2));
    Nic::ConnectBackToBack(nic_a_.get(), nic_b_.get());
    client_ = std::make_unique<EtherStack>(&ex_, nullptr, nic_a_->netif());
    server_ = std::make_unique<EtherStack>(&ex_, nullptr, nic_b_->netif());
    client_->ConfigureIp(kIpA);
    server_->ConfigureIp(kIpB);
  }

  // Opens a raw TCP connection and sends `chunks` with small gaps so each
  // lands in its own segment.
  TcpConn* SendChunks(uint16_t port, std::vector<std::string> chunks,
                      std::string* response) {
    TcpConn* conn = client_->ConnectTcp(kIpB, port, [](TcpConn*) {});
    conn->SetDataCallback([response](std::span<const uint8_t> data) {
      response->append(reinterpret_cast<const char*>(data.data()), data.size());
    });
    SimDuration at = Millis(1);
    for (const std::string& chunk : chunks) {
      ex_.PostAfter(at, [conn, chunk] {
        conn->Send(std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>(chunk.data()), chunk.size()));
      });
      at += Millis(1);
    }
    return conn;
  }

  Executor ex_;
  std::unique_ptr<Nic> nic_a_, nic_b_;
  std::unique_ptr<EtherStack> client_, server_;
};

TEST_F(ProtocolPair, HttpRequestSplitAcrossSegments) {
  HttpServer http(server_.get(), 80);
  http.AddFile("/x", 100);
  std::string response;
  SendChunks(80, {"GET /", "x HTT", "P/1.0\r\n", "\r\n"}, &response);
  ex_.RunUntilIdle();
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 100"), std::string::npos);
}

TEST_F(ProtocolPair, HttpTwoPipelinedRequestsInOneSegment) {
  HttpServer http(server_.get(), 80);
  http.AddFile("/x", 10);
  std::string response;
  SendChunks(80, {"GET /x HTTP/1.0\r\n\r\nGET /x HTTP/1.0\r\n\r\n"}, &response);
  ex_.RunUntilIdle();
  // Two complete responses.
  size_t first = response.find("200 OK");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(response.find("200 OK", first + 1), std::string::npos);
  EXPECT_EQ(http.requests_served(), 2u);
}

TEST_F(ProtocolPair, HttpMalformedRequestGets404) {
  HttpServer http(server_.get(), 80);
  std::string response;
  SendChunks(80, {"BOGUS nonsense\r\n\r\n"}, &response);
  ex_.RunUntilIdle();
  EXPECT_NE(response.find("404"), std::string::npos);
}

TEST_F(ProtocolPair, RedisCommandSplitAcrossSegments) {
  RedisServer redis(server_.get(), 6379);
  std::string response;
  Buffer cmd = RespEncodeCommand({"SET", "split-key", "split-value"});
  const std::string cmd_str(cmd.begin(), cmd.end());
  SendChunks(6379, {cmd_str.substr(0, 7), cmd_str.substr(7, 11), cmd_str.substr(18)},
             &response);
  ex_.RunUntilIdle();
  EXPECT_EQ(response, "+OK\r\n");
  EXPECT_EQ(redis.sets(), 1u);
  EXPECT_EQ(redis.keys(), 1u);
}

TEST_F(ProtocolPair, RedisPipelinedBatchInOneSegment) {
  RedisServer redis(server_.get(), 6379);
  Buffer batch;
  for (int i = 0; i < 5; ++i) {
    Buffer cmd = RespEncodeCommand({"SET", StrFormat("k%d", i), "v"});
    batch.insert(batch.end(), cmd.begin(), cmd.end());
  }
  Buffer get = RespEncodeCommand({"GET", "k3"});
  batch.insert(batch.end(), get.begin(), get.end());
  std::string response;
  SendChunks(6379, {std::string(batch.begin(), batch.end())}, &response);
  ex_.RunUntilIdle();
  EXPECT_EQ(redis.sets(), 5u);
  EXPECT_EQ(redis.gets(), 1u);
  EXPECT_NE(response.find("$1\r\nv\r\n"), std::string::npos);
}

TEST_F(ProtocolPair, RedisUnknownCommandErrors) {
  RedisServer redis(server_.get(), 6379);
  Buffer cmd = RespEncodeCommand({"FLUSHALL"});
  std::string response;
  SendChunks(6379, {std::string(cmd.begin(), cmd.end())}, &response);
  ex_.RunUntilIdle();
  EXPECT_EQ(response.rfind("-ERR", 0), 0u);
}

TEST_F(ProtocolPair, MemcachedSetDataBlockSplitFromCommandLine) {
  MemcachedServer memcached(server_.get(), 11211);
  std::string response;
  // The "set" line arrives in one segment, the data block in the next.
  SendChunks(11211, {"set key1 0 0 5\r\n", "hello", "\r\n", "get key1\r\n"}, &response);
  ex_.RunUntilIdle();
  EXPECT_NE(response.find("STORED"), std::string::npos);
  EXPECT_NE(response.find("VALUE key1 0 5\r\nhello\r\nEND"), std::string::npos);
  EXPECT_EQ(memcached.hits(), 1u);
}

TEST_F(ProtocolPair, MemcachedGetMissReturnsEnd) {
  MemcachedServer memcached(server_.get(), 11211);
  std::string response;
  SendChunks(11211, {"get nothing\r\n"}, &response);
  ex_.RunUntilIdle();
  EXPECT_EQ(response, "END\r\n");
  EXPECT_EQ(memcached.hits(), 0u);
}

TEST_F(ProtocolPair, MemcachedGarbageCommandErrors) {
  MemcachedServer memcached(server_.get(), 11211);
  std::string response;
  SendChunks(11211, {"frobnicate\r\n"}, &response);
  ex_.RunUntilIdle();
  EXPECT_EQ(response, "ERROR\r\n");
}

// --- OS profile invariants. ---

TEST(OsProfileTest, AllProfilesHaveConsistentInventories) {
  for (const OsProfile* p :
       {&KiteNetworkProfile(), &KiteStorageProfile(), &UbuntuDriverDomainProfile(),
        &DefaultLinuxProfile(), &CentOsProfile(), &FedoraProfile(), &DebianProfile()}) {
    EXPECT_FALSE(p->name.empty());
    EXPECT_GT(p->ImageBytes(), 0);
    EXPECT_GT(p->BootTime().ns(), 0);
    EXPECT_FALSE(p->components.empty());
    EXPECT_GT(p->code.code_bytes, 0);
    // Exposed ⊇ used.
    const auto used = p->RequiredSyscalls();
    const auto exposed = p->ExposedSyscalls();
    for (const std::string& s : used) {
      EXPECT_TRUE(exposed.count(s)) << p->name << " missing " << s;
    }
  }
}

TEST(OsProfileTest, KiteStorageSyscallsSupersetOfCommonCore) {
  // Both Kite builds share the BMK/rump base syscalls.
  const auto net = KiteNetworkProfile().RequiredSyscalls();
  const auto storage = KiteStorageProfile().RequiredSyscalls();
  for (const char* common : {"read", "write", "open", "close", "mmap", "clock_gettime"}) {
    EXPECT_TRUE(net.count(common)) << common;
    EXPECT_TRUE(storage.count(common)) << common;
  }
  // Domain-specific syscalls differ.
  EXPECT_TRUE(net.count("sendmsg"));
  EXPECT_FALSE(storage.count("sendmsg"));
  EXPECT_TRUE(storage.count("fsync"));
  EXPECT_FALSE(net.count("fsync"));
}

TEST(OsProfileTest, DriverDomainProfileSelector) {
  EXPECT_EQ(&DriverDomainProfile(OsKind::kKiteRumprun, false), &KiteNetworkProfile());
  EXPECT_EQ(&DriverDomainProfile(OsKind::kKiteRumprun, true), &KiteStorageProfile());
  EXPECT_EQ(&DriverDomainProfile(OsKind::kUbuntuLinux, false),
            &UbuntuDriverDomainProfile());
  EXPECT_EQ(&DriverDomainProfile(OsKind::kUbuntuLinux, true),
            &UbuntuDriverDomainProfile());
}

TEST(OsProfileTest, CostProfilesOrderKiteBelowLinux) {
  const OsCostProfile& kite = KiteNetworkProfile().costs;
  const OsCostProfile& linux = UbuntuDriverDomainProfile().costs;
  EXPECT_LT(kite.syscall_cost.ns(), linux.syscall_cost.ns());
  EXPECT_LT(kite.netback_per_packet.ns(), linux.netback_per_packet.ns());
  EXPECT_LT(kite.netback_pass_latency.ns(), linux.netback_pass_latency.ns());
  EXPECT_LT(kite.cold_penalty.ns(), linux.cold_penalty.ns());
  EXPECT_LT(kite.blkback_per_request.ns(), linux.blkback_per_request.ns());
  EXPECT_LT(kite.blkback_per_segment.ns(), linux.blkback_per_segment.ns());
}

}  // namespace
}  // namespace kite
