// Edge cases of the incremental protocol parsers (HTTP/RESP/memcached):
// requests split across TCP segments, multiple requests in one segment,
// and malformed input — plus OS-profile invariants, plus misbehaving PV
// frontends pushing malformed ring entries at netback/blkback.
#include <gtest/gtest.h>

#include "src/blk/blkif.h"
#include "src/core/kite.h"
#include "src/net/nic.h"
#include "src/net/stack.h"
#include "src/net/tcp.h"
#include "src/netdrv/netif_ring.h"
#include "src/os/profile.h"
#include "src/workloads/http.h"
#include "src/workloads/memcached.h"
#include "src/workloads/redis.h"

namespace kite {
namespace {

const Ipv4Addr kIpA = Ipv4Addr::FromOctets(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::FromOctets(10, 0, 0, 2);

class ProtocolPair : public ::testing::Test {
 protected:
  ProtocolPair() {
    nic_a_ = std::make_unique<Nic>(&ex_, "a", "nicA", MacAddr::FromId(1));
    nic_b_ = std::make_unique<Nic>(&ex_, "b", "nicB", MacAddr::FromId(2));
    Nic::ConnectBackToBack(nic_a_.get(), nic_b_.get());
    client_ = std::make_unique<EtherStack>(&ex_, nullptr, nic_a_->netif());
    server_ = std::make_unique<EtherStack>(&ex_, nullptr, nic_b_->netif());
    client_->ConfigureIp(kIpA);
    server_->ConfigureIp(kIpB);
  }

  // Opens a raw TCP connection and sends `chunks` with small gaps so each
  // lands in its own segment.
  TcpConn* SendChunks(uint16_t port, std::vector<std::string> chunks,
                      std::string* response) {
    TcpConn* conn = client_->ConnectTcp(kIpB, port, [](TcpConn*) {});
    conn->SetDataCallback([response](std::span<const uint8_t> data) {
      response->append(reinterpret_cast<const char*>(data.data()), data.size());
    });
    SimDuration at = Millis(1);
    for (const std::string& chunk : chunks) {
      ex_.PostAfter(at, [conn, chunk] {
        conn->Send(std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>(chunk.data()), chunk.size()));
      });
      at += Millis(1);
    }
    return conn;
  }

  Executor ex_;
  std::unique_ptr<Nic> nic_a_, nic_b_;
  std::unique_ptr<EtherStack> client_, server_;
};

TEST_F(ProtocolPair, HttpRequestSplitAcrossSegments) {
  HttpServer http(server_.get(), 80);
  http.AddFile("/x", 100);
  std::string response;
  SendChunks(80, {"GET /", "x HTT", "P/1.0\r\n", "\r\n"}, &response);
  ex_.RunUntilIdle();
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 100"), std::string::npos);
}

TEST_F(ProtocolPair, HttpTwoPipelinedRequestsInOneSegment) {
  HttpServer http(server_.get(), 80);
  http.AddFile("/x", 10);
  std::string response;
  SendChunks(80, {"GET /x HTTP/1.0\r\n\r\nGET /x HTTP/1.0\r\n\r\n"}, &response);
  ex_.RunUntilIdle();
  // Two complete responses.
  size_t first = response.find("200 OK");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(response.find("200 OK", first + 1), std::string::npos);
  EXPECT_EQ(http.requests_served(), 2u);
}

TEST_F(ProtocolPair, HttpMalformedRequestGets404) {
  HttpServer http(server_.get(), 80);
  std::string response;
  SendChunks(80, {"BOGUS nonsense\r\n\r\n"}, &response);
  ex_.RunUntilIdle();
  EXPECT_NE(response.find("404"), std::string::npos);
}

TEST_F(ProtocolPair, RedisCommandSplitAcrossSegments) {
  RedisServer redis(server_.get(), 6379);
  std::string response;
  Buffer cmd = RespEncodeCommand({"SET", "split-key", "split-value"});
  const std::string cmd_str(cmd.begin(), cmd.end());
  SendChunks(6379, {cmd_str.substr(0, 7), cmd_str.substr(7, 11), cmd_str.substr(18)},
             &response);
  ex_.RunUntilIdle();
  EXPECT_EQ(response, "+OK\r\n");
  EXPECT_EQ(redis.sets(), 1u);
  EXPECT_EQ(redis.keys(), 1u);
}

TEST_F(ProtocolPair, RedisPipelinedBatchInOneSegment) {
  RedisServer redis(server_.get(), 6379);
  Buffer batch;
  for (int i = 0; i < 5; ++i) {
    Buffer cmd = RespEncodeCommand({"SET", StrFormat("k%d", i), "v"});
    batch.insert(batch.end(), cmd.begin(), cmd.end());
  }
  Buffer get = RespEncodeCommand({"GET", "k3"});
  batch.insert(batch.end(), get.begin(), get.end());
  std::string response;
  SendChunks(6379, {std::string(batch.begin(), batch.end())}, &response);
  ex_.RunUntilIdle();
  EXPECT_EQ(redis.sets(), 5u);
  EXPECT_EQ(redis.gets(), 1u);
  EXPECT_NE(response.find("$1\r\nv\r\n"), std::string::npos);
}

TEST_F(ProtocolPair, RedisUnknownCommandErrors) {
  RedisServer redis(server_.get(), 6379);
  Buffer cmd = RespEncodeCommand({"FLUSHALL"});
  std::string response;
  SendChunks(6379, {std::string(cmd.begin(), cmd.end())}, &response);
  ex_.RunUntilIdle();
  EXPECT_EQ(response.rfind("-ERR", 0), 0u);
}

TEST_F(ProtocolPair, MemcachedSetDataBlockSplitFromCommandLine) {
  MemcachedServer memcached(server_.get(), 11211);
  std::string response;
  // The "set" line arrives in one segment, the data block in the next.
  SendChunks(11211, {"set key1 0 0 5\r\n", "hello", "\r\n", "get key1\r\n"}, &response);
  ex_.RunUntilIdle();
  EXPECT_NE(response.find("STORED"), std::string::npos);
  EXPECT_NE(response.find("VALUE key1 0 5\r\nhello\r\nEND"), std::string::npos);
  EXPECT_EQ(memcached.hits(), 1u);
}

TEST_F(ProtocolPair, MemcachedGetMissReturnsEnd) {
  MemcachedServer memcached(server_.get(), 11211);
  std::string response;
  SendChunks(11211, {"get nothing\r\n"}, &response);
  ex_.RunUntilIdle();
  EXPECT_EQ(response, "END\r\n");
  EXPECT_EQ(memcached.hits(), 0u);
}

TEST_F(ProtocolPair, MemcachedGarbageCommandErrors) {
  MemcachedServer memcached(server_.get(), 11211);
  std::string response;
  SendChunks(11211, {"frobnicate\r\n"}, &response);
  ex_.RunUntilIdle();
  EXPECT_EQ(response, "ERROR\r\n");
}

// --- Misbehaving PV frontends (ISSUE 2). ---
//
// These fixtures impersonate a frontend by hand: they run the toolstack
// writes AttachVif/AttachVbd would do, allocate and grant the shared rings
// themselves, and publish Initialised — but never construct a Netfront or
// Blkfront. That leaves the test in full control of every ring field, so it
// can push the exact malformed requests a compromised guest could:
// out-of-page offsets/sizes, bogus grant references, impossible segment
// counts. The backend must answer every one with an error response, count it
// in a *_bad_request metric, and keep serving well-formed requests.
//
// Every suite runs once per backend ablation (paper §5.8): the hardening
// checks live in code shared by all configurations, and these parameters
// prove no ablation path skips them.

struct NetAblation {
  const char* name;
  bool dedicated_threads;
  bool use_hv_copy;
};

class MisbehavingNetFrontend : public ::testing::TestWithParam<NetAblation> {
 protected:
  static constexpr int kDevid = 0;

  void SetUp() override {
    sys_ = std::make_unique<KiteSystem>();
    DriverDomainConfig config;
    config.netback.dedicated_threads = GetParam().dedicated_threads;
    config.netback.use_hv_copy = GetParam().use_hv_copy;
    netdom_ = sys_->CreateNetworkDomain(config);
    guest_ = sys_->CreateGuest("evil-net-guest");
    gid_ = guest_->domain()->id();
    bid_ = netdom_->domain()->id();
    XenStore& store = sys_->hv().store();
    fe_ = FrontendPath(gid_, "vif", kDevid);
    const std::string be = BackendPath(bid_, "vif", gid_, kDevid);

    // Toolstack half of AttachVif (no Netfront).
    store.Write(kDom0, fe_ + "/backend", be);
    store.WriteInt(kDom0, fe_ + "/backend-id", bid_);
    store.WriteInt(kDom0, fe_ + "/state", static_cast<int>(XenbusState::kInitialising));
    store.Write(kDom0, be + "/frontend", fe_);
    store.WriteInt(kDom0, be + "/frontend-id", gid_);
    store.WriteInt(kDom0, be + "/state", static_cast<int>(XenbusState::kInitialising));
    store.SetPermission(kDom0, fe_, bid_);
    store.SetPermission(kDom0, be, gid_);

    // Frontend half, by hand: rings, grants, event channel, publication.
    Domain* gd = guest_->domain();
    tx_page_ = AllocPage();
    rx_page_ = AllocPage();
    tx_shared_ = std::make_shared<NetTxSharedRing>(kNetRingSize);
    rx_shared_ = std::make_shared<NetRxSharedRing>(kNetRingSize);
    tx_page_->object = tx_shared_;
    rx_page_->object = rx_shared_;
    tx_ring_ = std::make_unique<NetTxFrontRing>(tx_shared_.get());
    rx_ring_ = std::make_unique<NetRxFrontRing>(rx_shared_.get());
    tx_gref_ = gd->grant_table().GrantAccess(bid_, tx_page_, /*readonly=*/false);
    rx_gref_ = gd->grant_table().GrantAccess(bid_, rx_page_, /*readonly=*/false);
    data_page_ = AllocPage();
    data_gref_ = gd->grant_table().GrantAccess(bid_, data_page_, /*readonly=*/true);
    port_ = sys_->hv().EventAllocUnbound(gd, bid_);
    gd->StoreWriteInt(fe_ + "/tx-ring-ref", tx_gref_);
    gd->StoreWriteInt(fe_ + "/rx-ring-ref", rx_gref_);
    gd->StoreWriteInt(fe_ + "/event-channel", port_);
    gd->StoreWriteInt(fe_ + "/request-rx-copy", 1);
    XenbusClient bus(&store, gid_);
    bus.SwitchState(fe_, XenbusState::kInitialised);

    ASSERT_TRUE(sys_->WaitUntil([this] { return vif() != nullptr && vif()->connected(); }))
        << "backend never paired with the hand-rolled frontend";
  }

  NetbackInstance* vif() { return netdom_->driver()->instance(gid_, kDevid); }

  void SendTx(const NetTxRequest& req) {
    tx_ring_->ProduceRequest(req);
    if (tx_ring_->PushRequests()) {
      sys_->hv().EventSend(guest_->domain(), port_);
    }
    sys_->RunFor(Millis(50));
  }

  std::vector<NetTxResponse> DrainTxResponses() {
    std::vector<NetTxResponse> rsps;
    do {
      while (tx_ring_->HasUnconsumedResponses()) {
        rsps.push_back(tx_ring_->ConsumeResponse());
      }
    } while (tx_ring_->FinalCheckForResponses());
    return rsps;
  }

  std::unique_ptr<KiteSystem> sys_;
  NetworkDomain* netdom_ = nullptr;
  GuestVm* guest_ = nullptr;
  DomId gid_ = 0;
  DomId bid_ = 0;
  std::string fe_;
  PageRef tx_page_, rx_page_, data_page_;
  std::shared_ptr<NetTxSharedRing> tx_shared_;
  std::shared_ptr<NetRxSharedRing> rx_shared_;
  std::unique_ptr<NetTxFrontRing> tx_ring_;
  std::unique_ptr<NetRxFrontRing> rx_ring_;
  GrantRef tx_gref_ = kInvalidGrantRef;
  GrantRef rx_gref_ = kInvalidGrantRef;
  GrantRef data_gref_ = kInvalidGrantRef;
  EvtPort port_ = kInvalidPort;
};

TEST_P(MisbehavingNetFrontend, OversizedTxSizeRejected) {
  NetTxRequest req;
  req.gref = data_gref_;
  req.id = 7;
  req.offset = 0;
  req.size = 60000;  // 15x the page.
  SendTx(req);
  auto rsps = DrainTxResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].id, 7u);
  EXPECT_EQ(rsps[0].status, NetifStatus::kError);
  EXPECT_EQ(vif()->tx_bad_requests(), 1u);
  EXPECT_EQ(vif()->guest_tx_frames(), 0u);
}

TEST_P(MisbehavingNetFrontend, OverlappingOffsetPlusSizeRejected) {
  // Each field fits a page on its own; the sum runs 1904 bytes past it. The
  // naive check (offset < page && size < page) passes this — the overflow
  // came from the addition.
  NetTxRequest req;
  req.gref = data_gref_;
  req.id = 9;
  req.offset = 4000;
  req.size = 2000;
  SendTx(req);
  auto rsps = DrainTxResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].status, NetifStatus::kError);
  EXPECT_EQ(vif()->tx_bad_requests(), 1u);
}

TEST_P(MisbehavingNetFrontend, BogusGrantRefRejected) {
  NetTxRequest req;
  req.gref = static_cast<GrantRef>(999999);  // Never granted.
  req.id = 3;
  req.offset = 0;
  req.size = 64;
  SendTx(req);
  auto rsps = DrainTxResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].status, NetifStatus::kError);
  // Shape was fine — the copy itself failed; not a bad_request.
  EXPECT_EQ(vif()->tx_bad_requests(), 0u);
  EXPECT_EQ(vif()->guest_tx_frames(), 0u);
}

TEST_P(MisbehavingNetFrontend, ZeroSizeRejected) {
  NetTxRequest req;
  req.gref = data_gref_;
  req.id = 1;
  req.offset = 0;
  req.size = 0;
  SendTx(req);
  auto rsps = DrainTxResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].status, NetifStatus::kError);
  EXPECT_EQ(vif()->tx_bad_requests(), 1u);
}

TEST_P(MisbehavingNetFrontend, BackendSurvivesMalformedBurstThenServesValid) {
  // A burst of malformed requests with every field corrupted differently.
  const uint16_t sizes[] = {0, 5000, 65535, 2000};
  const uint16_t offsets[] = {0, 0, 4095, 4000};
  for (uint16_t i = 0; i < 4; ++i) {
    NetTxRequest req;
    req.gref = data_gref_;
    req.id = i;
    req.offset = offsets[i];
    req.size = sizes[i];
    tx_ring_->ProduceRequest(req);
  }
  if (tx_ring_->PushRequests()) {
    sys_->hv().EventSend(guest_->domain(), port_);
  }
  sys_->RunFor(Millis(50));
  auto rsps = DrainTxResponses();
  ASSERT_EQ(rsps.size(), 4u);
  for (const NetTxResponse& rsp : rsps) {
    EXPECT_EQ(rsp.status, NetifStatus::kError);
  }
  EXPECT_EQ(vif()->tx_bad_requests(), 4u);

  // The instance must still be live: an in-bounds request gets kOkay.
  NetTxRequest good;
  good.gref = data_gref_;
  good.id = 42;
  good.offset = 0;
  good.size = 64;
  SendTx(good);
  rsps = DrainTxResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].id, 42u);
  EXPECT_EQ(rsps[0].status, NetifStatus::kOkay);
  // Every rejection is visible as a named metric in the system snapshot.
  bool found = false;
  for (const auto& s : sys_->metrics()) {
    if (s.key.name == "tx_bad_request" && s.value == 4.0) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "tx_bad_request missing from the registry snapshot";
}

INSTANTIATE_TEST_SUITE_P(
    Ablations, MisbehavingNetFrontend,
    ::testing::Values(NetAblation{"Default", true, true},
                      NetAblation{"NoDedicatedThreads", false, true},
                      NetAblation{"NoHvCopy", true, false}),
    [](const ::testing::TestParamInfo<NetAblation>& info) {
      return std::string(info.param.name);
    });

struct BlkAblation {
  const char* name;
  bool persistent_grants;
  bool indirect_segments;
};

class MisbehavingBlkFrontend : public ::testing::TestWithParam<BlkAblation> {
 protected:
  static constexpr int kDevid = 51712;  // xvda.

  void SetUp() override {
    sys_ = std::make_unique<KiteSystem>();
    DriverDomainConfig config;
    config.blkback.persistent_grants = GetParam().persistent_grants;
    config.blkback.indirect_segments = GetParam().indirect_segments;
    stordom_ = sys_->CreateStorageDomain(config);
    guest_ = sys_->CreateGuest("evil-blk-guest");
    gid_ = guest_->domain()->id();
    bid_ = stordom_->domain()->id();
    XenStore& store = sys_->hv().store();
    fe_ = FrontendPath(gid_, "vbd", kDevid);
    const std::string be = BackendPath(bid_, "vbd", gid_, kDevid);

    // Toolstack half of AttachVbd (no Blkfront).
    store.Write(kDom0, fe_ + "/backend", be);
    store.WriteInt(kDom0, fe_ + "/backend-id", bid_);
    store.Write(kDom0, be + "/frontend", fe_);
    store.WriteInt(kDom0, be + "/frontend-id", gid_);
    store.SetPermission(kDom0, fe_, bid_);
    store.SetPermission(kDom0, be, gid_);
    sys_->RunFor(Millis(5));  // Let blkback advertise.

    // Frontend half, by hand.
    Domain* gd = guest_->domain();
    ring_page_ = AllocPage();
    shared_ = std::make_shared<BlkSharedRing>(kBlkRingSize);
    ring_page_->object = shared_;
    ring_ = std::make_unique<BlkFrontRing>(shared_.get());
    ring_gref_ = gd->grant_table().GrantAccess(bid_, ring_page_, /*readonly=*/false);
    data_page_ = AllocPage();
    data_gref_ = gd->grant_table().GrantAccess(bid_, data_page_, /*readonly=*/false);
    port_ = sys_->hv().EventAllocUnbound(gd, bid_);
    gd->StoreWriteInt(fe_ + "/ring-ref", ring_gref_);
    gd->StoreWriteInt(fe_ + "/event-channel", port_);
    gd->StoreWriteInt(fe_ + "/feature-persistent", 0);
    XenbusClient bus(&store, gid_);
    bus.SwitchState(fe_, XenbusState::kInitialised);

    ASSERT_TRUE(sys_->WaitUntil([this] { return vbd() != nullptr && vbd()->connected(); }))
        << "blkback never paired with the hand-rolled frontend";
  }

  BlkbackInstance* vbd() { return stordom_->driver()->instance(gid_, kDevid); }

  void SendBlk(const BlkRequest& req) {
    ring_->ProduceRequest(req);
    if (ring_->PushRequests()) {
      sys_->hv().EventSend(guest_->domain(), port_);
    }
    sys_->RunFor(Millis(100));  // Disk latency included.
  }

  std::vector<BlkResponse> DrainResponses() {
    std::vector<BlkResponse> rsps;
    do {
      while (ring_->HasUnconsumedResponses()) {
        rsps.push_back(ring_->ConsumeResponse());
      }
    } while (ring_->FinalCheckForResponses());
    return rsps;
  }

  std::unique_ptr<KiteSystem> sys_;
  StorageDomain* stordom_ = nullptr;
  GuestVm* guest_ = nullptr;
  DomId gid_ = 0;
  DomId bid_ = 0;
  std::string fe_;
  PageRef ring_page_, data_page_;
  std::shared_ptr<BlkSharedRing> shared_;
  std::unique_ptr<BlkFrontRing> ring_;
  GrantRef ring_gref_ = kInvalidGrantRef;
  GrantRef data_gref_ = kInvalidGrantRef;
  EvtPort port_ = kInvalidPort;
};

TEST_P(MisbehavingBlkFrontend, DirectSegmentCountPastArrayRejected) {
  BlkRequest req;
  req.op = BlkOp::kWrite;
  req.id = 11;
  req.sector_number = 0;
  req.nr_segments = 200;  // The embedded array holds 11.
  SendBlk(req);
  auto rsps = DrainResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].id, 11u);
  EXPECT_EQ(rsps[0].status, BlkStatus::kError);
  EXPECT_EQ(vbd()->bad_requests(), 1u);
  EXPECT_EQ(vbd()->device_ops(), 0u);
}

TEST_P(MisbehavingBlkFrontend, InvertedSectorRangeRejected) {
  BlkRequest req;
  req.op = BlkOp::kRead;
  req.id = 12;
  req.nr_segments = 1;
  req.segments[0] = {data_gref_, /*first_sect=*/5, /*last_sect=*/2};  // bytes() underflows.
  SendBlk(req);
  auto rsps = DrainResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].status, BlkStatus::kError);
  EXPECT_EQ(vbd()->bad_requests(), 1u);
  EXPECT_EQ(vbd()->device_ops(), 0u);
}

TEST_P(MisbehavingBlkFrontend, SectorRangePastPageRejected) {
  BlkRequest req;
  req.op = BlkOp::kRead;
  req.id = 13;
  req.nr_segments = 1;
  req.segments[0] = {data_gref_, /*first_sect=*/0, /*last_sect=*/9};  // Page has 8 sectors.
  SendBlk(req);
  auto rsps = DrainResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].status, BlkStatus::kError);
  EXPECT_EQ(vbd()->bad_requests(), 1u);
}

TEST_P(MisbehavingBlkFrontend, SectorNumberPastCapacityRejected) {
  BlkRequest req;
  req.op = BlkOp::kRead;
  req.id = 14;
  req.sector_number = 1ULL << 40;  // 512 TiB into the disk.
  req.nr_segments = 1;
  req.segments[0] = {data_gref_, 0, 7};
  SendBlk(req);
  auto rsps = DrainResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].status, BlkStatus::kError);
  EXPECT_EQ(vbd()->bad_requests(), 1u);
}

TEST_P(MisbehavingBlkFrontend, RequestEndPastCapacityRejected) {
  // Starts just below capacity with a full in-page segment, so the old
  // start-only bound admitted it and the disk layer's capacity KITE_CHECK
  // became a guest-triggerable backend abort.
  const uint64_t capacity_sectors =
      static_cast<uint64_t>(stordom_->disk()->capacity_bytes()) / kSectorSize;
  BlkRequest req;
  req.op = BlkOp::kRead;
  req.id = 16;
  req.sector_number = capacity_sectors - 1;
  req.nr_segments = 1;
  req.segments[0] = {data_gref_, 0, 7};  // 8 sectors: ends 7 past the disk.
  SendBlk(req);
  auto rsps = DrainResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].status, BlkStatus::kError);
  EXPECT_EQ(vbd()->bad_requests(), 1u);
  EXPECT_EQ(vbd()->device_ops(), 0u);
}

TEST_P(MisbehavingBlkFrontend, RequestEndingExactlyAtCapacityAccepted) {
  // The flush side of the boundary: the last addressable 8 sectors are valid.
  const uint64_t capacity_sectors =
      static_cast<uint64_t>(stordom_->disk()->capacity_bytes()) / kSectorSize;
  BlkRequest req;
  req.op = BlkOp::kRead;
  req.id = 17;
  req.sector_number = capacity_sectors - kSectorsPerPage;
  req.nr_segments = 1;
  req.segments[0] = {data_gref_, 0, 7};
  SendBlk(req);
  auto rsps = DrainResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].status, BlkStatus::kOkay);
  EXPECT_EQ(vbd()->bad_requests(), 0u);
  EXPECT_EQ(vbd()->device_ops(), 1u);
}

TEST_P(MisbehavingBlkFrontend, IndirectDescriptorMapFailureCountedAndRejected) {
  BlkRequest req;
  req.op = BlkOp::kIndirect;
  req.indirect_op = BlkOp::kRead;
  req.id = 18;
  req.indirect_gref = static_cast<GrantRef>(9999);  // Never granted.
  req.nr_indirect_segments = 1;
  SendBlk(req);
  auto rsps = DrainResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].status, BlkStatus::kError);
  if (GetParam().indirect_segments) {
    EXPECT_EQ(vbd()->indirect_map_fails(), 1u);
  } else {
    // Feature off: kIndirect is rejected as a bad request before any map.
    EXPECT_EQ(vbd()->bad_requests(), 1u);
    EXPECT_EQ(vbd()->indirect_map_fails(), 0u);
  }
  EXPECT_EQ(vbd()->device_ops(), 0u);
}

TEST_P(MisbehavingBlkFrontend, IndirectSegmentCountRejected) {
  // Grant a real descriptor page so the count check — not the map — rejects.
  PageRef ind_page = AllocPage();
  auto ind_segs = std::make_shared<IndirectSegmentPage>();
  ind_segs->resize(kBlkSegsPerIndirectPage);
  ind_page->object = ind_segs;
  GrantRef ind_gref =
      guest_->domain()->grant_table().GrantAccess(bid_, ind_page, /*readonly=*/true);
  BlkRequest req;
  req.op = BlkOp::kIndirect;
  req.indirect_op = BlkOp::kRead;
  req.id = 15;
  req.indirect_gref = ind_gref;
  req.nr_indirect_segments = 500;  // Negotiated maximum is 32.
  SendBlk(req);
  auto rsps = DrainResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].status, BlkStatus::kError);
  EXPECT_EQ(vbd()->bad_requests(), 1u);
}

TEST_P(MisbehavingBlkFrontend, BackendSurvivesMalformedBurstThenServesValid) {
  BlkRequest bad;
  bad.op = BlkOp::kWrite;
  bad.id = 20;
  bad.nr_segments = 255;
  ring_->ProduceRequest(bad);
  bad.id = 21;
  bad.nr_segments = 1;
  bad.segments[0] = {data_gref_, 7, 0};
  ring_->ProduceRequest(bad);
  if (ring_->PushRequests()) {
    sys_->hv().EventSend(guest_->domain(), port_);
  }
  sys_->RunFor(Millis(100));
  auto rsps = DrainResponses();
  ASSERT_EQ(rsps.size(), 2u);
  for (const BlkResponse& rsp : rsps) {
    EXPECT_EQ(rsp.status, BlkStatus::kError);
  }
  EXPECT_EQ(vbd()->bad_requests(), 2u);

  BlkRequest good;
  good.op = BlkOp::kRead;
  good.id = 30;
  good.sector_number = 0;
  good.nr_segments = 1;
  good.segments[0] = {data_gref_, 0, 7};
  SendBlk(good);
  rsps = DrainResponses();
  ASSERT_EQ(rsps.size(), 1u);
  EXPECT_EQ(rsps[0].id, 30u);
  EXPECT_EQ(rsps[0].status, BlkStatus::kOkay);
  EXPECT_EQ(vbd()->device_ops(), 1u);
  bool found = false;
  for (const auto& s : sys_->metrics()) {
    if (s.key.name == "bad_request" && s.key.domain == "kite-stordom") {
      found = s.value == 2.0;
    }
  }
  EXPECT_TRUE(found) << "bad_request missing from the registry snapshot";
}

INSTANTIATE_TEST_SUITE_P(
    Ablations, MisbehavingBlkFrontend,
    ::testing::Values(BlkAblation{"Default", true, true},
                      BlkAblation{"NoPersistentGrants", false, true},
                      BlkAblation{"NoIndirectSegments", true, false}),
    [](const ::testing::TestParamInfo<BlkAblation>& info) {
      return std::string(info.param.name);
    });

// --- OS profile invariants. ---

TEST(OsProfileTest, AllProfilesHaveConsistentInventories) {
  for (const OsProfile* p :
       {&KiteNetworkProfile(), &KiteStorageProfile(), &UbuntuDriverDomainProfile(),
        &DefaultLinuxProfile(), &CentOsProfile(), &FedoraProfile(), &DebianProfile()}) {
    EXPECT_FALSE(p->name.empty());
    EXPECT_GT(p->ImageBytes(), 0);
    EXPECT_GT(p->BootTime().ns(), 0);
    EXPECT_FALSE(p->components.empty());
    EXPECT_GT(p->code.code_bytes, 0);
    // Exposed ⊇ used.
    const auto used = p->RequiredSyscalls();
    const auto exposed = p->ExposedSyscalls();
    for (const std::string& s : used) {
      EXPECT_TRUE(exposed.count(s)) << p->name << " missing " << s;
    }
  }
}

TEST(OsProfileTest, KiteStorageSyscallsSupersetOfCommonCore) {
  // Both Kite builds share the BMK/rump base syscalls.
  const auto net = KiteNetworkProfile().RequiredSyscalls();
  const auto storage = KiteStorageProfile().RequiredSyscalls();
  for (const char* common : {"read", "write", "open", "close", "mmap", "clock_gettime"}) {
    EXPECT_TRUE(net.count(common)) << common;
    EXPECT_TRUE(storage.count(common)) << common;
  }
  // Domain-specific syscalls differ.
  EXPECT_TRUE(net.count("sendmsg"));
  EXPECT_FALSE(storage.count("sendmsg"));
  EXPECT_TRUE(storage.count("fsync"));
  EXPECT_FALSE(net.count("fsync"));
}

TEST(OsProfileTest, DriverDomainProfileSelector) {
  EXPECT_EQ(&DriverDomainProfile(OsKind::kKiteRumprun, false), &KiteNetworkProfile());
  EXPECT_EQ(&DriverDomainProfile(OsKind::kKiteRumprun, true), &KiteStorageProfile());
  EXPECT_EQ(&DriverDomainProfile(OsKind::kUbuntuLinux, false),
            &UbuntuDriverDomainProfile());
  EXPECT_EQ(&DriverDomainProfile(OsKind::kUbuntuLinux, true),
            &UbuntuDriverDomainProfile());
}

TEST(OsProfileTest, CostProfilesOrderKiteBelowLinux) {
  const OsCostProfile& kite = KiteNetworkProfile().costs;
  const OsCostProfile& linux = UbuntuDriverDomainProfile().costs;
  EXPECT_LT(kite.syscall_cost.ns(), linux.syscall_cost.ns());
  EXPECT_LT(kite.netback_per_packet.ns(), linux.netback_per_packet.ns());
  EXPECT_LT(kite.netback_pass_latency.ns(), linux.netback_pass_latency.ns());
  EXPECT_LT(kite.cold_penalty.ns(), linux.cold_penalty.ns());
  EXPECT_LT(kite.blkback_per_request.ns(), linux.blkback_per_request.ns());
  EXPECT_LT(kite.blkback_per_segment.ns(), linux.blkback_per_segment.ns());
}

}  // namespace
}  // namespace kite
