// Driver-domain crash recovery: the frontend reconnect state machine must
// restore service to the *same* guest after a backend restart — no manual
// re-attach — without losing acknowledged writes, and without leaking
// grants, event channels, or xenstore watches even across many cycles or
// under injected faults.
#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/core/kite.h"

namespace kite {
namespace {

const Ipv4Addr kGuestIp = Ipv4Addr::FromOctets(10, 0, 0, 10);

class RecoveryTest : public ::testing::TestWithParam<OsKind> {
 protected:
  void BuildNet() {
    KiteSystem::Params params;
    sys_ = std::make_unique<KiteSystem>(params);
    DriverDomainConfig config;
    config.os = GetParam();
    netdom_ = sys_->CreateNetworkDomain(config);
    guest_ = sys_->CreateGuest("app-vm");
    sys_->AttachVif(guest_, netdom_, kGuestIp);
    ASSERT_TRUE(sys_->WaitConnected(guest_));
  }

  void BuildStorage(bool store_data = true) {
    KiteSystem::Params params;
    params.disk_store_data = store_data;
    sys_ = std::make_unique<KiteSystem>(params);
    DriverDomainConfig config;
    config.os = GetParam();
    stordom_ = sys_->CreateStorageDomain(config);
    guest_ = sys_->CreateGuest("db-vm");
    sys_->AttachVbd(guest_, stordom_);
    ASSERT_TRUE(sys_->WaitConnected(guest_));
  }

  bool PingGuest() {
    bool ok = false;
    sys_->client()->stack()->Ping(kGuestIp, 56, [&](bool r, SimDuration) { ok = r; });
    sys_->WaitUntil([&] { return ok; }, Seconds(5));
    return ok;
  }

  // After a restart the death/relink watch events are still queued; step the
  // simulation until the frontend has actually gone through `want`
  // recoveries and reconnected.
  [[nodiscard]] bool WaitNetRecovered(uint64_t want) {
    return sys_->WaitUntil(
        [&] {
          return guest_->netfront()->recoveries() == want && guest_->netfront()->connected();
        },
        Seconds(10));
  }
  [[nodiscard]] bool WaitBlkRecovered(uint64_t want) {
    return sys_->WaitUntil(
        [&] {
          return guest_->blkfront()->recoveries() == want && guest_->blkfront()->connected();
        },
        Seconds(10));
  }

  std::unique_ptr<KiteSystem> sys_;
  NetworkDomain* netdom_ = nullptr;
  StorageDomain* stordom_ = nullptr;
  GuestVm* guest_ = nullptr;
};

TEST_P(RecoveryTest, NetworkRestartReconnectsSameGuest) {
  BuildNet();
  ASSERT_TRUE(PingGuest());
  const DomId old_backend = guest_->netfront()->backend_dom();
  EXPECT_EQ(guest_->netfront()->recoveries(), 0u);

  NetworkDomain* fresh = sys_->RestartNetworkDomain(netdom_);
  ASSERT_TRUE(WaitNetRecovered(1));

  // Same netfront object, new backend domain, one recovery — and the guest
  // answers pings again without any re-attach.
  EXPECT_NE(guest_->netfront()->backend_dom(), old_backend);
  EXPECT_EQ(guest_->netfront()->backend_dom(), fresh->domain()->id());
  EXPECT_TRUE(PingGuest());
}

TEST_P(RecoveryTest, NetworkRestartWithTrafficInFlight) {
  BuildNet();
  ASSERT_TRUE(PingGuest());

  // Blast UDP while the backend dies; packets in flight may be dropped
  // (network semantics), but service must come back for the same guest.
  auto sock = sys_->client()->stack()->OpenUdp();
  for (int i = 0; i < 64; ++i) {
    sock->SendTo(kGuestIp, 9000, Buffer(1000, 0x11));
  }
  sys_->RestartNetworkDomain(netdom_);
  ASSERT_TRUE(WaitNetRecovered(1));
  EXPECT_TRUE(PingGuest());
}

TEST_P(RecoveryTest, StorageRestartLosesNoAcknowledgedWrite) {
  BuildStorage();
  Rng rng(42);
  Buffer data(64 * 1024);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  const uint64_t digest = Fnv1a(data);

  bool wrote = false;
  guest_->blkfront()->Write(1024 * 1024, data, [&](bool ok) { wrote = ok; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return wrote; }, Seconds(2)));

  // Crash after the ack: the write is on the physical device, which survives
  // the driver domain.
  sys_->RestartStorageDomain(stordom_);
  ASSERT_TRUE(WaitBlkRecovered(1));

  Buffer readback;
  bool read_done = false;
  guest_->blkfront()->Read(1024 * 1024, data.size(), &readback,
                           [&](bool ok) { read_done = ok; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return read_done; }, Seconds(2)));
  ASSERT_EQ(readback.size(), data.size());
  EXPECT_EQ(Fnv1a(readback), digest);
}

TEST_P(RecoveryTest, StorageRestartRequeuesInFlightWrites) {
  BuildStorage();
  // Submit a burst and crash the backend before it drains: blkfront must
  // requeue what was on the ring and every callback must still fire exactly
  // once, successfully, against the new backend.
  int completed = 0;
  int failed = 0;
  constexpr int kWrites = 40;
  for (int i = 0; i < kWrites; ++i) {
    guest_->blkfront()->Write(static_cast<int64_t>(i) * 64 * 1024, Buffer(16 * 1024, 0x5a),
                              [&](bool ok) { ok ? ++completed : ++failed; });
  }
  sys_->RestartStorageDomain(stordom_);
  ASSERT_TRUE(WaitBlkRecovered(1));
  ASSERT_TRUE(sys_->WaitUntil([&] { return completed + failed == kWrites; }, Seconds(10)));
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(completed, kWrites);
  EXPECT_GT(guest_->blkfront()->requests_requeued(), 0u);
}

TEST_P(RecoveryTest, TenCyclesLeakNothing) {
  BuildNet();
  ASSERT_TRUE(PingGuest());
  const DomId gid = guest_->domain()->id();
  Hypervisor& hv = sys_->hv();

  // Steady-state footprint of one connected VIF, measured after the first
  // connect. Every later cycle must return to exactly this footprint (the
  // live backend legitimately holds the tx/rx ring mappings).
  const int base_grants = guest_->domain()->grant_table().active_entry_count();
  const int base_maps = guest_->domain()->grant_table().total_maps_outstanding();
  const int base_ports = hv.open_port_count(gid);
  const int base_watches = hv.store().watch_count(gid);

  NetworkDomain* dom = netdom_;
  for (int cycle = 0; cycle < 10; ++cycle) {
    dom = sys_->RestartNetworkDomain(dom);
    ASSERT_TRUE(WaitNetRecovered(cycle + 1)) << "cycle " << cycle;
    ASSERT_TRUE(PingGuest()) << "cycle " << cycle;
    EXPECT_EQ(guest_->domain()->grant_table().active_entry_count(), base_grants)
        << "grant leak at cycle " << cycle;
    EXPECT_EQ(guest_->domain()->grant_table().total_maps_outstanding(), base_maps)
        << "stale mapping of guest pages at cycle " << cycle;
    EXPECT_EQ(hv.open_port_count(gid), base_ports) << "port leak at cycle " << cycle;
    EXPECT_EQ(hv.store().watch_count(gid), base_watches)
        << "watch leak at cycle " << cycle;
    EXPECT_EQ(dom->driver()->pending_fe_watch_count(), 0)
        << "backend fe-watch leak at cycle " << cycle;
  }
  EXPECT_EQ(guest_->netfront()->recoveries(), 10u);
}

TEST_P(RecoveryTest, TenStorageCyclesLeakNothing) {
  BuildStorage(/*store_data=*/false);
  const DomId gid = guest_->domain()->id();
  Hypervisor& hv = sys_->hv();

  auto write_once = [&] {
    bool done = false;
    guest_->blkfront()->Write(0, Buffer(16 * 1024, 0x2a), [&](bool ok) { done = ok; });
    return sys_->WaitUntil([&] { return done; }, Seconds(2));
  };
  ASSERT_TRUE(write_once());
  const int base_maps = guest_->domain()->grant_table().total_maps_outstanding();
  const int base_ports = hv.open_port_count(gid);
  const int base_watches = hv.store().watch_count(gid);

  StorageDomain* dom = stordom_;
  for (int cycle = 0; cycle < 10; ++cycle) {
    dom = sys_->RestartStorageDomain(dom);
    ASSERT_TRUE(WaitBlkRecovered(cycle + 1)) << "cycle " << cycle;
    ASSERT_TRUE(write_once()) << "cycle " << cycle;
    EXPECT_EQ(guest_->domain()->grant_table().total_maps_outstanding(), base_maps)
        << "stale mapping of guest pages at cycle " << cycle;
    EXPECT_EQ(hv.open_port_count(gid), base_ports) << "port leak at cycle " << cycle;
    EXPECT_EQ(hv.store().watch_count(gid), base_watches)
        << "watch leak at cycle " << cycle;
    EXPECT_EQ(dom->driver()->pending_fe_watch_count(), 0)
        << "backend fe-watch leak at cycle " << cycle;
  }
  EXPECT_EQ(guest_->blkfront()->recoveries(), 10u);
}

TEST_P(RecoveryTest, DeadDomainStateIsSweptFromXenstore) {
  BuildNet();
  const DomId old_id = netdom_->domain()->id();
  const std::string old_home = netdom_->domain()->store_home();
  ASSERT_TRUE(sys_->hv().store().Exists(old_home + "/backend"));

  sys_->RestartNetworkDomain(netdom_);
  ASSERT_TRUE(WaitNetRecovered(1));

  // The dead domain's entire subtree is gone, its watches are deregistered,
  // and its event channels are closed.
  EXPECT_FALSE(sys_->hv().store().Exists(old_home));
  EXPECT_EQ(sys_->hv().store().watch_count(old_id), 0);
  EXPECT_EQ(sys_->hv().open_port_count(old_id), 0);
}

TEST_P(RecoveryTest, DestroyedMapperLetsOwnerReclaimGrants) {
  // Hypervisor-level teardown contract: when a domain dies holding mappings
  // into a survivor's pages (no graceful driver shutdown — a true crash),
  // the mappings are force-dropped so the owner's EndAccess succeeds.
  BuildNet();
  Domain* mapper = sys_->hv().CreateDomain("crasher", 1, 256);
  mapper->set_online(true);
  PageRef page = AllocPage();
  GrantRef ref =
      guest_->domain()->grant_table().GrantAccess(mapper->id(), page, /*readonly=*/false);
  MappedGrant map = sys_->hv().GrantMap(mapper, guest_->domain()->id(), ref,
                                        /*write_access=*/true);
  ASSERT_TRUE(map.valid());

  // While mapped, the owner cannot revoke.
  EXPECT_FALSE(guest_->domain()->grant_table().EndAccess(ref));

  sys_->hv().DestroyDomain(mapper->id());
  EXPECT_GT(sys_->hv().forced_grant_revocations(), 0u);
  EXPECT_TRUE(guest_->domain()->grant_table().EndAccess(ref));
  map.Unmap();  // Stale handle from the dead mapper: must be a no-op.
}

TEST_P(RecoveryTest, RecoversUnderInjectedFaults) {
  KiteSystem::Params params;
  params.disk_store_data = true;
  sys_ = std::make_unique<KiteSystem>(params);
  // Acceptance floor from the issue: ≥1% grant-map failures and packet loss,
  // on top of xenstore read flakiness and disk I/O errors.
  sys_->faults().set_rate(FaultSite::kGrantMap, 0.02);
  sys_->faults().set_rate(FaultSite::kNicLoss, 0.02);
  sys_->faults().set_rate(FaultSite::kXenstoreRead, 0.01);
  sys_->faults().set_rate(FaultSite::kDiskIo, 0.01);

  DriverDomainConfig config;
  config.os = GetParam();
  netdom_ = sys_->CreateNetworkDomain(config);
  stordom_ = sys_->CreateStorageDomain(config);
  guest_ = sys_->CreateGuest("app-vm");
  sys_->AttachVif(guest_, netdom_, kGuestIp);
  sys_->AttachVbd(guest_, stordom_);
  ASSERT_TRUE(sys_->WaitConnected(guest_));

  // Application-level retry, as a real guest would: a ping may be eaten by
  // injected loss, a write may fail with an injected I/O error.
  auto ping_with_retry = [&] {
    for (int attempt = 0; attempt < 20; ++attempt) {
      if (PingGuest()) {
        return true;
      }
    }
    return false;
  };
  auto write_with_retry = [&](int64_t offset, const Buffer& data) {
    for (int attempt = 0; attempt < 20; ++attempt) {
      bool done = false;
      bool ok = false;
      guest_->blkfront()->Write(offset, data, [&](bool r) {
        done = true;
        ok = r;
      });
      if (sys_->WaitUntil([&] { return done; }, Seconds(5)) && ok) {
        return true;
      }
    }
    return false;
  };

  ASSERT_TRUE(ping_with_retry());
  ASSERT_TRUE(write_with_retry(0, Buffer(32 * 1024, 0x77)));

  netdom_ = sys_->RestartNetworkDomain(netdom_);
  stordom_ = sys_->RestartStorageDomain(stordom_);
  ASSERT_TRUE(WaitNetRecovered(1));
  ASSERT_TRUE(WaitBlkRecovered(1));

  ASSERT_TRUE(ping_with_retry());
  ASSERT_TRUE(write_with_retry(64 * 1024, Buffer(32 * 1024, 0x88)));

  // The injector actually fired: we recovered *through* faults, not around
  // them.
  EXPECT_GT(sys_->faults().total_trips(), 0u);
}

TEST_P(RecoveryTest, FaultInjectorIsDeterministic) {
  // Two identical runs with the same seed must trip the same sites the same
  // number of times — the property that makes fault scenarios replayable.
  auto run = [&]() -> std::vector<uint64_t> {
    KiteSystem::Params params;
    KiteSystem sys(params);
    sys.faults().set_rate(FaultSite::kNicLoss, 0.05);
    sys.faults().set_rate(FaultSite::kGrantMap, 0.02);
    DriverDomainConfig config;
    config.os = GetParam();
    NetworkDomain* nd = sys.CreateNetworkDomain(config);
    GuestVm* guest = sys.CreateGuest("app-vm");
    sys.AttachVif(guest, nd, kGuestIp);
    sys.WaitConnected(guest);
    auto sock = sys.client()->stack()->OpenUdp();
    for (int i = 0; i < 100; ++i) {
      sock->SendTo(kGuestIp, 9000, Buffer(1000, 0x11));
    }
    sys.RunFor(Millis(50));
    std::vector<uint64_t> counts;
    for (int s = 0; s < static_cast<int>(FaultSite::kCount); ++s) {
      counts.push_back(sys.faults().trips(static_cast<FaultSite>(s)));
      counts.push_back(sys.faults().rolls(static_cast<FaultSite>(s)));
    }
    return counts;
  };
  EXPECT_EQ(run(), run());
}

// --- Guest death (the inverse direction: frontends die, backends clean up). ---

TEST_P(RecoveryTest, GuestDeathReapsNetbackInstance) {
  BuildNet();
  ASSERT_TRUE(PingGuest());
  NetworkBackendDriver* driver = netdom_->driver();
  EXPECT_EQ(driver->instance_count(), 1);
  EXPECT_EQ(driver->paired_fe_watch_count(), 1);
  EXPECT_EQ(netdom_->bridge()->port_count(), 2);  // Physical NIC + vif.
  const DomId gid = guest_->domain()->id();
  const std::string be = BackendPath(netdom_->domain()->id(), "vif", gid, 0);

  sys_->DestroyGuest(guest_);
  guest_ = nullptr;
  // The death watch wakes the driver's scan thread; the instance drains its
  // worker threads and must be fully freed — count back to zero, no corpses
  // in the graveyard, no leaked watches, the vif unbridged, and the backend
  // xenstore subtree gone.
  ASSERT_TRUE(sys_->WaitUntil([&] {
    return driver->instance_count() == 0 && driver->dying_instance_count() == 0;
  }));
  EXPECT_EQ(driver->instances_reaped(), 1u);
  EXPECT_EQ(driver->paired_fe_watch_count(), 0);
  EXPECT_EQ(driver->pending_fe_watch_count(), 0);
  EXPECT_EQ(netdom_->bridge()->port_count(), 1);
  EXPECT_FALSE(sys_->hv().store().Exists(be + "/state"));

  // The driver domain must still serve other guests: attach a fresh one.
  GuestVm* next = sys_->CreateGuest("next-vm");
  sys_->AttachVif(next, netdom_, kGuestIp);
  ASSERT_TRUE(sys_->WaitConnected(next));
  guest_ = next;
  EXPECT_TRUE(PingGuest());
  EXPECT_EQ(driver->instance_count(), 1);
}

TEST_P(RecoveryTest, GuestDeathReapsBlkbackInstance) {
  BuildStorage();
  // Push some I/O so the instance has in-flight machinery to drain.
  bool wrote = false;
  guest_->blkfront()->Write(0, Buffer(16 * 1024, 0xab), [&](bool ok) { wrote = ok; });
  ASSERT_TRUE(sys_->WaitUntil([&] { return wrote; }));
  StorageBackendDriver* driver = stordom_->driver();
  EXPECT_EQ(driver->instance_count(), 1);
  EXPECT_EQ(driver->paired_fe_watch_count(), 1);
  const DomId gid = guest_->domain()->id();
  const std::string be = BackendPath(stordom_->domain()->id(), "vbd", gid, 51712);

  sys_->DestroyGuest(guest_);
  guest_ = nullptr;
  ASSERT_TRUE(sys_->WaitUntil([&] {
    return driver->instance_count() == 0 && driver->dying_instance_count() == 0;
  }));
  EXPECT_EQ(driver->instances_reaped(), 1u);
  EXPECT_EQ(driver->paired_fe_watch_count(), 0);
  EXPECT_EQ(driver->pending_fe_watch_count(), 0);
  EXPECT_FALSE(sys_->hv().store().Exists(be + "/state"));
  // The status app forgets the dead vbd.
  EXPECT_TRUE(stordom_->app()->Status().empty());

  GuestVm* next = sys_->CreateGuest("next-db-vm");
  sys_->AttachVbd(next, stordom_);
  ASSERT_TRUE(sys_->WaitConnected(next));
  guest_ = next;
  EXPECT_EQ(driver->instance_count(), 1);
}

TEST_P(RecoveryTest, GuestDeathBeforePairingReapsBlkbackInstance) {
  // Kill the guest in the window where the toolstack attached the device but
  // the frontend never published: the blkback instance already exists (it
  // advertises at attach), and must still be reaped.
  KiteSystem::Params params;
  sys_ = std::make_unique<KiteSystem>(params);
  DriverDomainConfig config;
  config.os = GetParam();
  stordom_ = sys_->CreateStorageDomain(config);
  GuestVm* doomed = sys_->CreateGuest("doomed-vm");
  const DomId gid = doomed->domain()->id();
  const DomId bid = stordom_->domain()->id();
  XenStore& store = sys_->hv().store();
  // Toolstack half of AttachVbd only — no Blkfront is ever constructed.
  const std::string fe = FrontendPath(gid, "vbd", 51712);
  const std::string be = BackendPath(bid, "vbd", gid, 51712);
  store.Write(kDom0, fe + "/backend", be);
  store.WriteInt(kDom0, fe + "/backend-id", bid);
  store.Write(kDom0, be + "/frontend", fe);
  store.WriteInt(kDom0, be + "/frontend-id", gid);
  store.SetPermission(kDom0, fe, bid);
  store.SetPermission(kDom0, be, gid);
  StorageBackendDriver* driver = stordom_->driver();
  ASSERT_TRUE(sys_->WaitUntil([&] { return driver->instance_count() == 1; }));
  EXPECT_EQ(driver->pending_fe_watch_count(), 1);

  sys_->DestroyGuest(doomed);
  ASSERT_TRUE(sys_->WaitUntil([&] {
    return driver->instance_count() == 0 && driver->dying_instance_count() == 0;
  }));
  EXPECT_EQ(driver->pending_fe_watch_count(), 0);
  EXPECT_EQ(driver->paired_fe_watch_count(), 0);
}

INSTANTIATE_TEST_SUITE_P(Personalities, RecoveryTest,
                         ::testing::Values(OsKind::kKiteRumprun, OsKind::kUbuntuLinux),
                         [](const ::testing::TestParamInfo<OsKind>& info) {
                           return std::string(OsKindName(info.param));
                         });

}  // namespace
}  // namespace kite
