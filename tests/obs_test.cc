// The observability layer (src/obs): metric registry semantics — get-or-create
// identity, stable handles, deterministic snapshots — and tracer output
// well-formedness (Chrome trace_event JSON).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/core/system.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace kite {
namespace {

// --- MetricRegistry. ---

TEST(MetricRegistryTest, SameKeyReturnsSameHandle) {
  MetricRegistry reg;
  Counter* a = reg.counter("hv", "grant", "maps");
  Counter* b = reg.counter("hv", "grant", "maps");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
  // A different component of the key is a different metric.
  EXPECT_NE(a, reg.counter("hv", "grant", "unmaps"));
  EXPECT_NE(a, reg.counter("hv", "evtchn", "maps"));
  EXPECT_NE(a, reg.counter("dom1", "grant", "maps"));
  EXPECT_EQ(reg.size(), 4u);
}

TEST(MetricRegistryTest, HandlesStayValidAcrossGrowth) {
  MetricRegistry reg;
  Counter* first = reg.counter("d", "dev", "m0");
  first->Inc();
  // Force many insertions; the original handle must not move.
  for (int i = 1; i < 200; ++i) {
    reg.counter("d", "dev", "m" + std::to_string(i))->Inc();
  }
  first->Add(2);
  EXPECT_EQ(first->value(), 3u);
  EXPECT_EQ(reg.counter("d", "dev", "m0"), first);
}

TEST(MetricRegistryTest, CounterGaugeHistogramSemantics) {
  MetricRegistry reg;
  Counter* c = reg.counter("d", "-", "events");
  c->Inc();
  c->Add(9);
  EXPECT_EQ(c->value(), 10u);
  c->Set(0);
  EXPECT_EQ(c->value(), 0u);

  Gauge* g = reg.gauge("d", "-", "depth");
  g->Set(4.0);
  g->Add(-1.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);

  Histogram* h = reg.histogram("d", "-", "batch");
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->mean(), 0.0);
  h->Record(3.0);
  h->Record(9.0);
  h->Record(6.0);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->min(), 3.0);
  EXPECT_DOUBLE_EQ(h->max(), 9.0);
  EXPECT_DOUBLE_EQ(h->mean(), 6.0);
}

TEST(MetricRegistryTest, SnapshotIsDeterministicallyOrdered) {
  MetricRegistry reg;
  reg.counter("zeta", "dev", "a")->Inc();
  reg.counter("alpha", "dev", "z")->Inc();
  reg.counter("alpha", "dev", "a")->Inc();
  auto samples = reg.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].key.domain, "alpha");
  EXPECT_EQ(samples[0].key.name, "a");
  EXPECT_EQ(samples[1].key.domain, "alpha");
  EXPECT_EQ(samples[1].key.name, "z");
  EXPECT_EQ(samples[2].key.domain, "zeta");
}

TEST(MetricRegistryTest, SnapshotSkipZeroOmitsUntouchedMetrics) {
  MetricRegistry reg;
  reg.counter("d", "dev", "touched")->Inc();
  reg.counter("d", "dev", "untouched");
  reg.histogram("d", "dev", "empty_hist");
  EXPECT_EQ(reg.Snapshot(/*skip_zero=*/false).size(), 3u);
  auto samples = reg.Snapshot(/*skip_zero=*/true);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].key.name, "touched");
  EXPECT_DOUBLE_EQ(samples[0].value, 1.0);
}

TEST(MetricRegistryTest, FormatTableContainsKeyAndValue) {
  MetricRegistry reg;
  reg.counter("kite-netdom", "vif1.0", "guest_tx_frames")->Add(42);
  const std::string table = reg.FormatTable();
  EXPECT_NE(table.find("kite-netdom/vif1.0/guest_tx_frames"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
}

// --- EventTracer. ---

TEST(EventTracerTest, DisabledByDefaultAndRecordsWhenEnabled) {
  EventTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  // Belt-and-braces: call sites guard on enabled(), but a record made while
  // disabled is discarded internally too.
  tracer.Instant(1, 0, "cat", "ev", SimTime{});
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.set_enabled(true);
  tracer.Complete(1, 0, "hypercall", "gnttab_copy", SimTime{} + Micros(2), Nanos(480),
                  "bytes", 4096);
  tracer.Instant(2, 0, "evtchn", "evt_deliver", SimTime{} + Micros(3), "port", 4);
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(EventTracerTest, CapsEventsAndCountsDrops) {
  EventTracer tracer(/*max_events=*/4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.Instant(1, 0, "cat", "ev", SimTime{} + Nanos(i));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// A tiny structural check: braces/brackets balance and strings are closed.
// (Not a full JSON parser, but catches truncation and quoting bugs.)
bool JsonBalanced(const std::string& s) {
  int brace = 0;
  int bracket = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    if (brace < 0 || bracket < 0) {
      return false;
    }
  }
  return brace == 0 && bracket == 0 && !in_string;
}

TEST(EventTracerTest, ToJsonIsWellFormedTraceEventObject) {
  EventTracer tracer;
  tracer.set_enabled(true);
  tracer.SetProcessName(1, "kite-netdom");
  tracer.SetProcessName(2, "app\"vm\\");  // Needs escaping.
  tracer.Complete(1, 0, "hypercall", "evtchn_send", SimTime{} + Micros(10), Nanos(300));
  tracer.Instant(1, 3, "ring", "tx_push", SimTime{} + Micros(11), "notify", 1);
  const std::string json = tracer.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_EQ(json.rfind("{", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("kite-netdom"), std::string::npos);
  EXPECT_NE(json.find("app\\\"vm\\\\"), std::string::npos);  // Escaped form.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"notify\":1"), std::string::npos);
}

TEST(EventTracerTest, EmptyTraceIsStillValid) {
  EventTracer tracer;
  const std::string json = tracer.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(EventTracerTest, MidRunEnableStillNamesDomainTracks) {
  // Domain names are recorded as process_name metadata at CreateDomain even
  // while tracing is disabled, so the documented enable-mid-run workflow
  // (KiteSystem::EnableTracing after the topology exists) yields named
  // pid tracks, not bare numbers.
  KiteSystem sys;
  sys.CreateNetworkDomain();
  sys.RunFor(Millis(1));
  sys.EnableTracing();
  sys.RunFor(Millis(1));
  const std::string json = sys.tracer().ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("Domain-0"), std::string::npos);
  EXPECT_NE(json.find("kite-netdom"), std::string::npos);
}

TEST(EventTracerTest, DumpTraceWritesFile) {
  EventTracer tracer;
  tracer.set_enabled(true);
  tracer.Instant(1, 0, "cat", "ev", SimTime{} + Micros(1));
  const std::string path = testing::TempDir() + "/kite_obs_test_trace.json";
  ASSERT_TRUE(tracer.DumpTrace(path));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, tracer.ToJson());
  EXPECT_TRUE(JsonBalanced(contents));
}

}  // namespace
}  // namespace kite
