// The observability layer (src/obs): metric registry semantics — get-or-create
// identity, stable handles, deterministic snapshots — and tracer output
// well-formedness (Chrome trace_event JSON).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/core/system.h"
#include "src/obs/flow.h"
#include "src/obs/health.h"
#include "src/obs/latency.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"

namespace kite {
namespace {

// --- MetricRegistry. ---

TEST(MetricRegistryTest, SameKeyReturnsSameHandle) {
  MetricRegistry reg;
  Counter* a = reg.counter("hv", "grant", "maps");
  Counter* b = reg.counter("hv", "grant", "maps");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
  // A different component of the key is a different metric.
  EXPECT_NE(a, reg.counter("hv", "grant", "unmaps"));
  EXPECT_NE(a, reg.counter("hv", "evtchn", "maps"));
  EXPECT_NE(a, reg.counter("dom1", "grant", "maps"));
  EXPECT_EQ(reg.size(), 4u);
}

TEST(MetricRegistryTest, HandlesStayValidAcrossGrowth) {
  MetricRegistry reg;
  Counter* first = reg.counter("d", "dev", "m0");
  first->Inc();
  // Force many insertions; the original handle must not move.
  for (int i = 1; i < 200; ++i) {
    reg.counter("d", "dev", "m" + std::to_string(i))->Inc();
  }
  first->Add(2);
  EXPECT_EQ(first->value(), 3u);
  EXPECT_EQ(reg.counter("d", "dev", "m0"), first);
}

TEST(MetricRegistryTest, CounterGaugeHistogramSemantics) {
  MetricRegistry reg;
  Counter* c = reg.counter("d", "-", "events");
  c->Inc();
  c->Add(9);
  EXPECT_EQ(c->value(), 10u);
  c->Set(0);
  EXPECT_EQ(c->value(), 0u);

  Gauge* g = reg.gauge("d", "-", "depth");
  g->Set(4.0);
  g->Add(-1.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);

  Histogram* h = reg.histogram("d", "-", "batch");
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->mean(), 0.0);
  h->Record(3.0);
  h->Record(9.0);
  h->Record(6.0);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->min(), 3.0);
  EXPECT_DOUBLE_EQ(h->max(), 9.0);
  EXPECT_DOUBLE_EQ(h->mean(), 6.0);
}

TEST(MetricRegistryTest, SnapshotIsDeterministicallyOrdered) {
  MetricRegistry reg;
  reg.counter("zeta", "dev", "a")->Inc();
  reg.counter("alpha", "dev", "z")->Inc();
  reg.counter("alpha", "dev", "a")->Inc();
  auto samples = reg.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].key.domain, "alpha");
  EXPECT_EQ(samples[0].key.name, "a");
  EXPECT_EQ(samples[1].key.domain, "alpha");
  EXPECT_EQ(samples[1].key.name, "z");
  EXPECT_EQ(samples[2].key.domain, "zeta");
}

TEST(MetricRegistryTest, SnapshotSkipZeroOmitsUntouchedMetrics) {
  MetricRegistry reg;
  reg.counter("d", "dev", "touched")->Inc();
  reg.counter("d", "dev", "untouched");
  reg.histogram("d", "dev", "empty_hist");
  EXPECT_EQ(reg.Snapshot(/*skip_zero=*/false).size(), 3u);
  auto samples = reg.Snapshot(/*skip_zero=*/true);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].key.name, "touched");
  EXPECT_DOUBLE_EQ(samples[0].value, 1.0);
}

TEST(MetricRegistryTest, FormatTableContainsKeyAndValue) {
  MetricRegistry reg;
  reg.counter("kite-netdom", "vif1.0", "guest_tx_frames")->Add(42);
  const std::string table = reg.FormatTable();
  EXPECT_NE(table.find("kite-netdom/vif1.0/guest_tx_frames"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
}

TEST(MetricRegistryTest, FormatTablePrefixKeepsOnlyMatchingLabels) {
  MetricRegistry reg;
  reg.counter("obs", "health", "probes")->Add(7);
  reg.gauge("obs", "health", "instances")->Set(2);
  reg.counter("kite-netdom", "vif1.0", "guest_tx_frames")->Add(42);
  const std::string focused = reg.FormatTable(/*skip_zero=*/true, "obs/health");
  EXPECT_NE(focused.find("obs/health/probes"), std::string::npos);
  EXPECT_NE(focused.find("obs/health/instances"), std::string::npos);
  EXPECT_EQ(focused.find("guest_tx_frames"), std::string::npos);
  // An unmatched prefix yields an empty table, not the full registry.
  EXPECT_EQ(reg.FormatTable(/*skip_zero=*/true, "no/such/prefix").find("probes"),
            std::string::npos);
}

// --- LatencyHistogram. ---

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // The first two octaves are unit-width buckets: every value below 64
  // round-trips exactly through index → lower bound.
  for (uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(static_cast<int>(v)), v);
  }
}

TEST(LatencyHistogramTest, BucketBoundariesRoundTrip) {
  // A bucket's lower bound must map back to the same bucket, and any value
  // inside the bucket must map to an index whose bounds bracket it.
  for (int i = 0; i < LatencyHistogram::kNumBuckets - 1; ++i) {
    const uint64_t lo = LatencyHistogram::BucketLowerBound(i);
    const uint64_t next = LatencyHistogram::BucketLowerBound(i + 1);
    ASSERT_LT(lo, next) << i;
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(next - 1), i);
  }
  // Sub-bucket resolution: the relative quantisation error is bounded by
  // 1/32 everywhere (bucket width ≤ lower bound / 32 past the exact range).
  for (uint64_t v : {64ull, 100ull, 4096ull, 1000000ull, 123456789ull, 1ull << 40}) {
    const int i = LatencyHistogram::BucketIndex(v);
    const uint64_t lo = LatencyHistogram::BucketLowerBound(i);
    EXPECT_LE(lo, v);
    EXPECT_LT(v, LatencyHistogram::BucketLowerBound(i + 1));
    EXPECT_LE(LatencyHistogram::BucketLowerBound(i + 1) - lo, std::max<uint64_t>(1, lo / 32));
  }
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZeroes) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.p999(), 0u);
}

TEST(LatencyHistogramTest, SingleSampleDominatesEveryPercentile) {
  LatencyHistogram h;
  h.Record(4096);  // An exact bucket boundary: percentiles report it exactly.
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 4096u);
  EXPECT_EQ(h.max(), 4096u);
  EXPECT_DOUBLE_EQ(h.mean(), 4096.0);
  for (double p : {0.1, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 4096u) << p;
  }
}

TEST(LatencyHistogramTest, PercentilesMatchSortedReferenceOn10kSamples) {
  // mt19937 with a fixed seed is fully specified by the standard, so the
  // sample set is identical on every platform.
  std::mt19937_64 rng(12345);
  LatencyHistogram h;
  std::vector<uint64_t> reference;
  reference.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    // Log-uniform-ish spread from sub-µs to seconds, like real stage times.
    const uint64_t v = (rng() % 1000) << (rng() % 21);
    h.Record(v);
    reference.push_back(v);
  }
  std::sort(reference.begin(), reference.end());
  EXPECT_EQ(h.count(), reference.size());
  EXPECT_EQ(h.min(), reference.front());
  EXPECT_EQ(h.max(), reference.back());
  for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    // Nearest-rank reference value.
    const size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * reference.size()));
    const uint64_t exact = reference[std::max<size_t>(rank, 1) - 1];
    const uint64_t approx = h.Percentile(p);
    // The histogram answers with the containing bucket's lower bound, so it
    // never overshoots and undershoots by at most the bucket width (≤ 1/32).
    EXPECT_LE(approx, exact) << p;
    EXPECT_LE(exact - approx, std::max<uint64_t>(1, exact / 32)) << p;
  }
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(1000000);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  h.Record(7);
  EXPECT_EQ(h.p50(), 7u);
}

TEST(MetricRegistryTest, LatencyKindRegistersSnapshotsAndFormats) {
  MetricRegistry reg;
  LatencyHistogram* h = reg.latency("guest0", "xn0", "tx_complete_ns");
  EXPECT_EQ(h, reg.latency("guest0", "xn0", "tx_complete_ns"));
  for (uint64_t v = 1; v <= 100; ++v) {
    h->Record(v * 1000);  // 1µs..100µs.
  }
  auto samples = reg.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].kind, MetricRegistry::Kind::kLatency);
  EXPECT_EQ(samples[0].count, 100u);
  EXPECT_EQ(samples[0].p50, h->p50());
  EXPECT_EQ(samples[0].p999, h->p999());
  EXPECT_GT(samples[0].p99, samples[0].p50);
  const std::string table = reg.FormatTable();
  EXPECT_NE(table.find("guest0/xn0/tx_complete_ns"), std::string::npos);
  EXPECT_NE(table.find("p50="), std::string::npos);
  EXPECT_NE(table.find("p99.9="), std::string::npos);
}

// --- EventTracer. ---

TEST(EventTracerTest, DisabledByDefaultAndRecordsWhenEnabled) {
  EventTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  // Belt-and-braces: call sites guard on enabled(), but a record made while
  // disabled is discarded internally too.
  tracer.Instant(1, 0, "cat", "ev", SimTime{});
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.set_enabled(true);
  tracer.Complete(1, 0, "hypercall", "gnttab_copy", SimTime{} + Micros(2), Nanos(480),
                  "bytes", 4096);
  tracer.Instant(2, 0, "evtchn", "evt_deliver", SimTime{} + Micros(3), "port", 4);
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(EventTracerTest, CapsEventsAndCountsDrops) {
  EventTracer tracer(/*max_events=*/4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.Instant(1, 0, "cat", "ev", SimTime{} + Nanos(i));
  }
  // 4 stored + the one synthetic truncation marker placed at the first drop.
  EXPECT_EQ(tracer.size(), 5u);
  EXPECT_EQ(tracer.dropped(), 6u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(EventTracerTest, FirstDropLeavesOneTruncationMarker) {
  EventTracer tracer(/*max_events=*/2);
  tracer.set_enabled(true);
  for (int i = 0; i < 8; ++i) {
    tracer.Instant(1, 0, "cat", "ev", SimTime{} + Nanos(i));
  }
  // The marker sits at the drop point, carries the timestamp of the first
  // dropped event, and appears exactly once no matter how many drops follow.
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const std::string json = tracer.ToJson();
  size_t first = json.find("\"truncated\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(json.find("\"truncated\"", first + 1), std::string::npos);
  EXPECT_NE(json.find("\"events_dropped_after\""), std::string::npos);
}

// A tiny structural check: braces/brackets balance and strings are closed.
// (Not a full JSON parser, but catches truncation and quoting bugs.)
bool JsonBalanced(const std::string& s) {
  int brace = 0;
  int bracket = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    if (brace < 0 || bracket < 0) {
      return false;
    }
  }
  return brace == 0 && bracket == 0 && !in_string;
}

TEST(EventTracerTest, ToJsonIsWellFormedTraceEventObject) {
  EventTracer tracer;
  tracer.set_enabled(true);
  tracer.SetProcessName(1, "kite-netdom");
  tracer.SetProcessName(2, "app\"vm\\");  // Needs escaping.
  tracer.Complete(1, 0, "hypercall", "evtchn_send", SimTime{} + Micros(10), Nanos(300));
  tracer.Instant(1, 3, "ring", "tx_push", SimTime{} + Micros(11), "notify", 1);
  const std::string json = tracer.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_EQ(json.rfind("{", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("kite-netdom"), std::string::npos);
  EXPECT_NE(json.find("app\\\"vm\\\\"), std::string::npos);  // Escaped form.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"notify\":1"), std::string::npos);
}

TEST(EventTracerTest, EmptyTraceIsStillValid) {
  EventTracer tracer;
  const std::string json = tracer.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(EventTracerTest, MidRunEnableStillNamesDomainTracks) {
  // Domain names are recorded as process_name metadata at CreateDomain even
  // while tracing is disabled, so the documented enable-mid-run workflow
  // (KiteSystem::EnableTracing after the topology exists) yields named
  // pid tracks, not bare numbers.
  KiteSystem sys;
  sys.CreateNetworkDomain();
  sys.RunFor(Millis(1));
  sys.EnableTracing();
  sys.RunFor(Millis(1));
  const std::string json = sys.tracer().ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("Domain-0"), std::string::npos);
  EXPECT_NE(json.find("kite-netdom"), std::string::npos);
}

// Collects the flow correlation ids of every event with the given phase
// ('s' begin, 't' step, 'f' end). Relies on ToJson emitting "id" after "ph"
// within one event object.
std::multiset<std::string> FlowIds(const std::string& json, char phase) {
  std::multiset<std::string> ids;
  const std::string needle = std::string("\"ph\":\"") + phase + "\"";
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    const size_t close = json.find('}', pos);
    const size_t id = json.find("\"id\":\"", pos);
    if (id != std::string::npos && close != std::string::npos && id < close) {
      const size_t start = id + 6;
      const size_t end = json.find('"', start);
      ids.insert(json.substr(start, end - start));
    }
    pos += needle.size();
  }
  return ids;
}

TEST(EventTracerTest, FlowEventsRoundTripWithBalancedIds) {
  EventTracer tracer;
  tracer.set_enabled(true);
  const uint64_t id1 = MakeFlowId(FlowKind::kNetTx, 3, 0, 17);
  const uint64_t id2 = MakeFlowId(FlowKind::kBlk, 3, 1, 17);
  tracer.FlowBegin(3, 0, "net.tx", "tx_submit", SimTime{} + Micros(1), id1, Nanos(250));
  tracer.FlowStep(1, 3, "net.tx", "tx_pop", SimTime{} + Micros(2), id1, Nanos(400));
  tracer.FlowEnd(3, 0, "net.tx", "tx_complete", SimTime{} + Micros(3), id1);
  tracer.FlowBegin(3, 0, "blk", "req_submit", SimTime{} + Micros(4), id2);
  tracer.FlowEnd(3, 0, "blk", "req_complete", SimTime{} + Micros(5), id2);
  // Each flow point also records an anchor slice for the viewer to bind the
  // arrow to: 5 flow records + 5 anchors.
  EXPECT_EQ(tracer.size(), 10u);
  const std::string json = tracer.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_EQ(FlowIds(json, 's'), FlowIds(json, 'f'));  // Every span closed.
  EXPECT_EQ(FlowIds(json, 's').size(), 2u);
  EXPECT_EQ(FlowIds(json, 't').count("0x" + StrFormat("%llx", (unsigned long long)id1)), 1u);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);  // End binds enclosing slice.
  // Distinct kinds keep distinct ids even with equal ring indices.
  EXPECT_NE(id1, id2);
}

TEST(EventTracerTest, CrossDomainRequestFlowsCompleteOnBothPaths) {
  // End-to-end: a ping (rx + tx through the network domain) and a disk read
  // (through the storage domain) must each leave at least one fully closed
  // flow — FlowBegin and FlowEnd with the same id — in the trace.
  KiteSystem sys;
  sys.EnableTracing();
  NetworkDomain* netdom = sys.CreateNetworkDomain();
  StorageDomain* stordom = sys.CreateStorageDomain();
  GuestVm* guest = sys.CreateGuest("flow-guest");
  sys.AttachVif(guest, netdom, Ipv4Addr::FromOctets(10, 0, 0, 10));
  sys.AttachVbd(guest, stordom);
  ASSERT_TRUE(sys.WaitConnected(guest));
  bool pinged = false;
  sys.client()->stack()->Ping(Ipv4Addr::FromOctets(10, 0, 0, 10), 56,
                              [&](bool ok, SimDuration) { pinged = ok; });
  ASSERT_TRUE(sys.WaitUntil([&] { return pinged; }));
  bool read_done = false;
  guest->blkfront()->Read(0, 4096, nullptr, [&](bool ok) { read_done = ok; });
  ASSERT_TRUE(sys.WaitUntil([&] { return read_done; }));
  sys.RunFor(Millis(1));  // Let trailing responses drain.
  const std::string json = sys.tracer().ToJson();
  EXPECT_TRUE(JsonBalanced(json));
  const auto begins = FlowIds(json, 's');
  const auto ends = FlowIds(json, 'f');
  ASSERT_FALSE(ends.empty());
  // Every end closes a begin of the same id.
  for (const std::string& id : ends) {
    EXPECT_GE(begins.count(id), ends.count(id)) << id;
  }
  // At least one *completed* flow per path: the FlowKind tag is the top
  // nibble of the id (net.tx=1, net.rx=2, blk=3).
  for (const char* prefix : {"0x1", "0x2", "0x3"}) {
    const bool complete = std::any_of(ends.begin(), ends.end(), [&](const std::string& id) {
      return id.rfind(prefix, 0) == 0 && begins.count(id) > 0;
    });
    EXPECT_TRUE(complete) << "no completed flow with kind prefix " << prefix;
  }
}

TEST(KiteSystemTest, KiteTraceEnvVarEnablesAndDumpsOnDestruction) {
  const std::string path = testing::TempDir() + "/kite_trace_env_test.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("KITE_TRACE", path.c_str(), /*overwrite=*/1), 0);
  {
    KiteSystem sys;
    EXPECT_TRUE(sys.tracer().enabled());
    sys.CreateNetworkDomain();
    sys.RunFor(Millis(1));
  }
  unsetenv("KITE_TRACE");
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "destructor did not dump to $KITE_TRACE";
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(JsonBalanced(contents));
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("kite-netdom"), std::string::npos);
}

TEST(EventTracerTest, DumpTraceWritesFile) {
  EventTracer tracer;
  tracer.set_enabled(true);
  tracer.Instant(1, 0, "cat", "ev", SimTime{} + Micros(1));
  const std::string path = testing::TempDir() + "/kite_obs_test_trace.json";
  ASSERT_TRUE(tracer.DumpTrace(path));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, tracer.ToJson());
  EXPECT_TRUE(JsonBalanced(contents));
}

// --- FlightRecorder. ---

TEST(FlightRecorderTest, TailIsOldestFirstAndWrapsAtCapacity) {
  Executor ex;
  FlightRecorder rec(&ex, /*capacity=*/8);
  FlightRecorder::DomainRing* ring = rec.ring(3);
  EXPECT_EQ(ring->capacity(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    ring->Record(FlightKind::kRingPush, /*dev=*/0, /*a=*/i, /*b=*/0);
  }
  EXPECT_EQ(ring->recorded(), 20u);
  const std::vector<FlightRecord> tail = ring->Tail(100);
  // Only the last `capacity` records survive a wrap, oldest first.
  ASSERT_EQ(tail.size(), 8u);
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].a, 12 + i);
    EXPECT_EQ(tail[i].dom, 3);
  }
  // A smaller max keeps the newest records, still oldest first.
  const std::vector<FlightRecord> last3 = ring->Tail(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3.front().a, 17u);
  EXPECT_EQ(last3.back().a, 19u);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  Executor ex;
  FlightRecorder rec(&ex, /*capacity=*/100);
  EXPECT_EQ(rec.ring(1)->capacity(), 128u);
}

TEST(FlightRecorderTest, RingSurvivesForDeadDomainsAndFormats) {
  Executor ex;
  FlightRecorder rec(&ex, /*capacity=*/8);
  rec.Record(5, FlightKind::kDomainCreated, 0, /*vcpus=*/1, /*mem=*/64);
  rec.Record(5, FlightKind::kXenbusSwitch, 0, 4);
  rec.Record(5, FlightKind::kDomainDestroyed);
  // The ring is the dead domain's black box: still readable, still formatted.
  EXPECT_EQ(rec.recorded(5), 3u);
  EXPECT_EQ(rec.total_recorded(), 3u);
  const std::string out = rec.FormatAll();
  EXPECT_NE(out.find("domain-created"), std::string::npos);
  EXPECT_NE(out.find("xenbus-switch"), std::string::npos);
  EXPECT_NE(out.find("domain-destroyed"), std::string::npos);
  EXPECT_EQ(out, rec.FormatTail(5));
}

// --- HealthMonitor (unit, with a scripted sampler). ---

TEST(HealthMonitorTest, StateMachineWalksThresholdsAndCollapsesOnProgress) {
  Executor ex;
  MetricRegistry metrics;
  FlightRecorder rec(&ex);
  HealthParams hp;
  hp.probe_period = Millis(1);
  hp.degraded_after = Millis(5);
  hp.stalled_after = Millis(20);
  HealthMonitor hm(&ex, &metrics, &rec, hp);
  std::vector<std::string> published;
  hm.set_publisher([&](int32_t dom, const std::string& device, HealthState state) {
    published.push_back(StrFormat("%d/%s=%s", dom, device.c_str(), HealthStateName(state)));
  });

  HealthSample s;
  s.connected = true;
  const int64_t id = hm.Register(7, "fake-dom", "dev0", 0, [&] { return s; });
  hm.Start();

  // Idle and connected: healthy, forever.
  ex.RunFor(Millis(4));
  EXPECT_EQ(hm.state(7, "dev0"), HealthState::kHealthy);
  EXPECT_GT(hm.probes_run(), 0u);

  // A request appears and nothing consumes it: degraded after 5ms of stall,
  // stalled after 20ms.
  s.req_prod = 1;
  ex.RunFor(Millis(8));
  EXPECT_EQ(hm.state(7, "dev0"), HealthState::kDegraded);
  ex.RunFor(Millis(20));
  EXPECT_EQ(hm.state(7, "dev0"), HealthState::kStalled);
  EXPECT_EQ(metrics.gauge("fake-dom", "dev0", "health_state")->value(), 2.0);
  EXPECT_EQ(metrics.counter("obs", "health", "stalled_transitions")->value(), 1u);
  EXPECT_EQ(metrics.gauge("obs", "health", "instances_stalled")->value(), 1.0);

  // Consumer progress collapses the state machine straight back to healthy.
  s.req_cons = 1;
  s.rsp_prod = 1;
  ex.RunFor(Millis(2));
  EXPECT_EQ(hm.state(7, "dev0"), HealthState::kHealthy);
  EXPECT_EQ(metrics.counter("obs", "health", "transitions")->value(), 3u);
  ASSERT_EQ(published.size(), 3u);
  EXPECT_EQ(published[0], "7/dev0=degraded");
  EXPECT_EQ(published[1], "7/dev0=stalled");
  EXPECT_EQ(published[2], "7/dev0=healthy");

  // The stall left its mark in the flight recorder.
  EXPECT_NE(rec.FormatTail(7).find("health-transition"), std::string::npos);

  hm.Unregister(id);
  ex.RunFor(Millis(2));
  EXPECT_TRUE(hm.Instances().empty());
  EXPECT_EQ(metrics.gauge("obs", "health", "instances")->value(), 0.0);
}

TEST(HealthMonitorTest, DisconnectedOrDrainedInstanceNeverStalls) {
  Executor ex;
  MetricRegistry metrics;
  FlightRecorder rec(&ex);
  HealthParams hp;
  hp.probe_period = Millis(1);
  hp.degraded_after = Millis(2);
  hp.stalled_after = Millis(4);
  HealthMonitor hm(&ex, &metrics, &rec, hp);

  // Not yet connected: pending indices are garbage, must not count.
  HealthSample s;
  s.connected = false;
  s.req_prod = 99;
  hm.Register(4, "fake-dom", "dev1", 1, [&] { return s; });
  hm.Start();
  ex.RunFor(Millis(10));
  EXPECT_EQ(hm.state(4, "dev1"), HealthState::kHealthy);

  // Connected but drained (no ring pending, no internal backlog): the probe
  // treats it as idle even though the indices never move.
  s.connected = true;
  s.req_prod = 0;
  ex.RunFor(Millis(10));
  EXPECT_EQ(hm.state(4, "dev1"), HealthState::kHealthy);
  EXPECT_EQ(metrics.counter("obs", "health", "transitions")->value(), 0u);
}

TEST(HealthMonitorTest, SubscribersDispatchInDeterministicOrder) {
  Executor ex;
  MetricRegistry metrics;
  FlightRecorder rec(&ex);
  HealthParams hp;
  hp.probe_period = Millis(1);
  hp.degraded_after = Millis(2);
  hp.stalled_after = Millis(100);
  HealthMonitor hm(&ex, &metrics, &rec, hp);

  // The publisher and every subscriber see each transition; dispatch order is
  // publisher first, then subscribers in subscription order — the Rebalancer
  // relies on this determinism across schedule-shuffled explore runs.
  std::vector<std::string> order;
  hm.set_publisher([&](int32_t dom, const std::string& device, HealthState state) {
    order.push_back(StrFormat("pub:%d/%s=%s", dom, device.c_str(),
                              HealthStateName(state)));
  });
  const int64_t a = hm.Subscribe([&](int32_t dom, const std::string& device,
                                     HealthState old_state, HealthState new_state) {
    order.push_back(StrFormat("a:%d/%s %s->%s", dom, device.c_str(),
                              HealthStateName(old_state), HealthStateName(new_state)));
  });
  const int64_t b = hm.Subscribe([&](int32_t dom, const std::string& device,
                                     HealthState old_state, HealthState new_state) {
    order.push_back(StrFormat("b:%d/%s %s->%s", dom, device.c_str(),
                              HealthStateName(old_state), HealthStateName(new_state)));
  });
  EXPECT_NE(a, b);
  EXPECT_EQ(hm.subscriber_count(), 2);

  HealthSample s;
  s.connected = true;
  hm.Register(9, "fake-dom", "dev2", 2, [&] { return s; });
  hm.Start();
  s.req_prod = 1;  // Stuck request: degraded after 2ms.
  ex.RunFor(Millis(5));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "pub:9/dev2=degraded");
  EXPECT_EQ(order[1], "a:9/dev2 healthy->degraded");
  EXPECT_EQ(order[2], "b:9/dev2 healthy->degraded");

  // Unsubscribing one leaves the other: progress collapses back to healthy
  // and only `b` (plus the publisher) observes it.
  hm.Unsubscribe(a);
  order.clear();
  s.req_cons = 1;
  s.rsp_prod = 1;
  ex.RunFor(Millis(2));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "pub:9/dev2=healthy");
  EXPECT_EQ(order[1], "b:9/dev2 degraded->healthy");
  EXPECT_EQ(hm.subscriber_count(), 1);
}

}  // namespace
}  // namespace kite
