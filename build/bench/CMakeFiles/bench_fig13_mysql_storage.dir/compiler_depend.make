# Empty compiler generated dependencies file for bench_fig13_mysql_storage.
# This may be replaced when dependencies are built.
