file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_mysql_storage.dir/bench_fig13_mysql_storage.cc.o"
  "CMakeFiles/bench_fig13_mysql_storage.dir/bench_fig13_mysql_storage.cc.o.d"
  "bench_fig13_mysql_storage"
  "bench_fig13_mysql_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mysql_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
