# Empty dependencies file for bench_fig05_rop.
# This may be replaced when dependencies are built.
