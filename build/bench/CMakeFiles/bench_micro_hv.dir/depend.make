# Empty dependencies file for bench_micro_hv.
# This may be replaced when dependencies are built.
