file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_hv.dir/bench_micro_hv.cc.o"
  "CMakeFiles/bench_micro_hv.dir/bench_micro_hv.cc.o.d"
  "bench_micro_hv"
  "bench_micro_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
