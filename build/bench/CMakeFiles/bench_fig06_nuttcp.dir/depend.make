# Empty dependencies file for bench_fig06_nuttcp.
# This may be replaced when dependencies are built.
