file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_nuttcp.dir/bench_fig06_nuttcp.cc.o"
  "CMakeFiles/bench_fig06_nuttcp.dir/bench_fig06_nuttcp.cc.o.d"
  "bench_fig06_nuttcp"
  "bench_fig06_nuttcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_nuttcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
