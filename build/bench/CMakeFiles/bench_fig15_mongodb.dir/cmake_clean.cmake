file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_mongodb.dir/bench_fig15_mongodb.cc.o"
  "CMakeFiles/bench_fig15_mongodb.dir/bench_fig15_mongodb.cc.o.d"
  "bench_fig15_mongodb"
  "bench_fig15_mongodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_mongodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
