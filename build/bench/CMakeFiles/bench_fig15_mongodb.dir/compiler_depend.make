# Empty compiler generated dependencies file for bench_fig15_mongodb.
# This may be replaced when dependencies are built.
