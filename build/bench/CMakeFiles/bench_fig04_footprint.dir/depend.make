# Empty dependencies file for bench_fig04_footprint.
# This may be replaced when dependencies are built.
