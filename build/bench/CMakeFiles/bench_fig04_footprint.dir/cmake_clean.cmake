file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_footprint.dir/bench_fig04_footprint.cc.o"
  "CMakeFiles/bench_fig04_footprint.dir/bench_fig04_footprint.cc.o.d"
  "bench_fig04_footprint"
  "bench_fig04_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
