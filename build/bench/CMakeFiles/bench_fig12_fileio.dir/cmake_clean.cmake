file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_fileio.dir/bench_fig12_fileio.cc.o"
  "CMakeFiles/bench_fig12_fileio.dir/bench_fig12_fileio.cc.o.d"
  "bench_fig12_fileio"
  "bench_fig12_fileio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fileio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
