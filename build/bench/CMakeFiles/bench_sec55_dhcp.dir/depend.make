# Empty dependencies file for bench_sec55_dhcp.
# This may be replaced when dependencies are built.
