file(REMOVE_RECURSE
  "CMakeFiles/bench_sec55_dhcp.dir/bench_sec55_dhcp.cc.o"
  "CMakeFiles/bench_sec55_dhcp.dir/bench_sec55_dhcp.cc.o.d"
  "bench_sec55_dhcp"
  "bench_sec55_dhcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec55_dhcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
