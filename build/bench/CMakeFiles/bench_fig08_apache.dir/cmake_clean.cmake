file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_apache.dir/bench_fig08_apache.cc.o"
  "CMakeFiles/bench_fig08_apache.dir/bench_fig08_apache.cc.o.d"
  "bench_fig08_apache"
  "bench_fig08_apache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_apache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
