# Empty compiler generated dependencies file for bench_fig10_mysql_net.
# This may be replaced when dependencies are built.
