file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mysql_net.dir/bench_fig10_mysql_net.cc.o"
  "CMakeFiles/bench_fig10_mysql_net.dir/bench_fig10_mysql_net.cc.o.d"
  "bench_fig10_mysql_net"
  "bench_fig10_mysql_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mysql_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
