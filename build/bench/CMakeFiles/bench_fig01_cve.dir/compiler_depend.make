# Empty compiler generated dependencies file for bench_fig01_cve.
# This may be replaced when dependencies are built.
