file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_cve.dir/bench_fig01_cve.cc.o"
  "CMakeFiles/bench_fig01_cve.dir/bench_fig01_cve.cc.o.d"
  "bench_fig01_cve"
  "bench_fig01_cve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_cve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
