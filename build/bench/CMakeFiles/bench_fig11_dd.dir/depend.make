# Empty dependencies file for bench_fig11_dd.
# This may be replaced when dependencies are built.
