file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_dd.dir/bench_fig11_dd.cc.o"
  "CMakeFiles/bench_fig11_dd.dir/bench_fig11_dd.cc.o.d"
  "bench_fig11_dd"
  "bench_fig11_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
