file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_webserver.dir/bench_fig16_webserver.cc.o"
  "CMakeFiles/bench_fig16_webserver.dir/bench_fig16_webserver.cc.o.d"
  "bench_fig16_webserver"
  "bench_fig16_webserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_webserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
