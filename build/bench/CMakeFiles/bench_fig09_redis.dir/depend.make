# Empty dependencies file for bench_fig09_redis.
# This may be replaced when dependencies are built.
