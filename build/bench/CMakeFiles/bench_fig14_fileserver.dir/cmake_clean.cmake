file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_fileserver.dir/bench_fig14_fileserver.cc.o"
  "CMakeFiles/bench_fig14_fileserver.dir/bench_fig14_fileserver.cc.o.d"
  "bench_fig14_fileserver"
  "bench_fig14_fileserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_fileserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
