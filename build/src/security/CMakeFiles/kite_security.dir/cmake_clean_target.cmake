file(REMOVE_RECURSE
  "libkite_security.a"
)
