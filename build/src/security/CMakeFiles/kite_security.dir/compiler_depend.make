# Empty compiler generated dependencies file for kite_security.
# This may be replaced when dependencies are built.
