
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/cve.cc" "src/security/CMakeFiles/kite_security.dir/cve.cc.o" "gcc" "src/security/CMakeFiles/kite_security.dir/cve.cc.o.d"
  "/root/repo/src/security/rop.cc" "src/security/CMakeFiles/kite_security.dir/rop.cc.o" "gcc" "src/security/CMakeFiles/kite_security.dir/rop.cc.o.d"
  "/root/repo/src/security/syscalls.cc" "src/security/CMakeFiles/kite_security.dir/syscalls.cc.o" "gcc" "src/security/CMakeFiles/kite_security.dir/syscalls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/kite_os.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kite_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kite_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
