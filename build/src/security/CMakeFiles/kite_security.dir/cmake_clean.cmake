file(REMOVE_RECURSE
  "CMakeFiles/kite_security.dir/cve.cc.o"
  "CMakeFiles/kite_security.dir/cve.cc.o.d"
  "CMakeFiles/kite_security.dir/rop.cc.o"
  "CMakeFiles/kite_security.dir/rop.cc.o.d"
  "CMakeFiles/kite_security.dir/syscalls.cc.o"
  "CMakeFiles/kite_security.dir/syscalls.cc.o.d"
  "libkite_security.a"
  "libkite_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
