file(REMOVE_RECURSE
  "libkite_blk.a"
)
