file(REMOVE_RECURSE
  "CMakeFiles/kite_blk.dir/disk.cc.o"
  "CMakeFiles/kite_blk.dir/disk.cc.o.d"
  "libkite_blk.a"
  "libkite_blk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_blk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
