# Empty compiler generated dependencies file for kite_blk.
# This may be replaced when dependencies are built.
