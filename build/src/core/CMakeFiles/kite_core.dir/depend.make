# Empty dependencies file for kite_core.
# This may be replaced when dependencies are built.
