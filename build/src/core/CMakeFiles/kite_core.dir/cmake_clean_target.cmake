file(REMOVE_RECURSE
  "libkite_core.a"
)
