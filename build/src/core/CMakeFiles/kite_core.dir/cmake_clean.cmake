file(REMOVE_RECURSE
  "CMakeFiles/kite_core.dir/blkapp.cc.o"
  "CMakeFiles/kite_core.dir/blkapp.cc.o.d"
  "CMakeFiles/kite_core.dir/netapp.cc.o"
  "CMakeFiles/kite_core.dir/netapp.cc.o.d"
  "CMakeFiles/kite_core.dir/system.cc.o"
  "CMakeFiles/kite_core.dir/system.cc.o.d"
  "libkite_core.a"
  "libkite_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
