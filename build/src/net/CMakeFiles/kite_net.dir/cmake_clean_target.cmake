file(REMOVE_RECURSE
  "libkite_net.a"
)
