# Empty dependencies file for kite_net.
# This may be replaced when dependencies are built.
