file(REMOVE_RECURSE
  "CMakeFiles/kite_net.dir/bridge.cc.o"
  "CMakeFiles/kite_net.dir/bridge.cc.o.d"
  "CMakeFiles/kite_net.dir/frame.cc.o"
  "CMakeFiles/kite_net.dir/frame.cc.o.d"
  "CMakeFiles/kite_net.dir/nat.cc.o"
  "CMakeFiles/kite_net.dir/nat.cc.o.d"
  "CMakeFiles/kite_net.dir/nic.cc.o"
  "CMakeFiles/kite_net.dir/nic.cc.o.d"
  "CMakeFiles/kite_net.dir/stack.cc.o"
  "CMakeFiles/kite_net.dir/stack.cc.o.d"
  "CMakeFiles/kite_net.dir/tcp.cc.o"
  "CMakeFiles/kite_net.dir/tcp.cc.o.d"
  "libkite_net.a"
  "libkite_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
