
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bridge.cc" "src/net/CMakeFiles/kite_net.dir/bridge.cc.o" "gcc" "src/net/CMakeFiles/kite_net.dir/bridge.cc.o.d"
  "/root/repo/src/net/frame.cc" "src/net/CMakeFiles/kite_net.dir/frame.cc.o" "gcc" "src/net/CMakeFiles/kite_net.dir/frame.cc.o.d"
  "/root/repo/src/net/nat.cc" "src/net/CMakeFiles/kite_net.dir/nat.cc.o" "gcc" "src/net/CMakeFiles/kite_net.dir/nat.cc.o.d"
  "/root/repo/src/net/nic.cc" "src/net/CMakeFiles/kite_net.dir/nic.cc.o" "gcc" "src/net/CMakeFiles/kite_net.dir/nic.cc.o.d"
  "/root/repo/src/net/stack.cc" "src/net/CMakeFiles/kite_net.dir/stack.cc.o" "gcc" "src/net/CMakeFiles/kite_net.dir/stack.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/kite_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/kite_net.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/kite_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kite_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kite_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
