
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/filebench.cc" "src/workloads/CMakeFiles/kite_workloads.dir/filebench.cc.o" "gcc" "src/workloads/CMakeFiles/kite_workloads.dir/filebench.cc.o.d"
  "/root/repo/src/workloads/fs.cc" "src/workloads/CMakeFiles/kite_workloads.dir/fs.cc.o" "gcc" "src/workloads/CMakeFiles/kite_workloads.dir/fs.cc.o.d"
  "/root/repo/src/workloads/http.cc" "src/workloads/CMakeFiles/kite_workloads.dir/http.cc.o" "gcc" "src/workloads/CMakeFiles/kite_workloads.dir/http.cc.o.d"
  "/root/repo/src/workloads/memcached.cc" "src/workloads/CMakeFiles/kite_workloads.dir/memcached.cc.o" "gcc" "src/workloads/CMakeFiles/kite_workloads.dir/memcached.cc.o.d"
  "/root/repo/src/workloads/mysql.cc" "src/workloads/CMakeFiles/kite_workloads.dir/mysql.cc.o" "gcc" "src/workloads/CMakeFiles/kite_workloads.dir/mysql.cc.o.d"
  "/root/repo/src/workloads/netbench.cc" "src/workloads/CMakeFiles/kite_workloads.dir/netbench.cc.o" "gcc" "src/workloads/CMakeFiles/kite_workloads.dir/netbench.cc.o.d"
  "/root/repo/src/workloads/redis.cc" "src/workloads/CMakeFiles/kite_workloads.dir/redis.cc.o" "gcc" "src/workloads/CMakeFiles/kite_workloads.dir/redis.cc.o.d"
  "/root/repo/src/workloads/rpc.cc" "src/workloads/CMakeFiles/kite_workloads.dir/rpc.cc.o" "gcc" "src/workloads/CMakeFiles/kite_workloads.dir/rpc.cc.o.d"
  "/root/repo/src/workloads/storagebench.cc" "src/workloads/CMakeFiles/kite_workloads.dir/storagebench.cc.o" "gcc" "src/workloads/CMakeFiles/kite_workloads.dir/storagebench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/kite_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/kite_net.dir/DependInfo.cmake"
  "/root/repo/build/src/blkdrv/CMakeFiles/kite_blkdrv.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kite_base.dir/DependInfo.cmake"
  "/root/repo/build/src/netdrv/CMakeFiles/kite_netdrv.dir/DependInfo.cmake"
  "/root/repo/build/src/bmk/CMakeFiles/kite_bmk.dir/DependInfo.cmake"
  "/root/repo/build/src/blk/CMakeFiles/kite_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/kite_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/kite_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kite_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
