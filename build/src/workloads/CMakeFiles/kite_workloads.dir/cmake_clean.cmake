file(REMOVE_RECURSE
  "CMakeFiles/kite_workloads.dir/filebench.cc.o"
  "CMakeFiles/kite_workloads.dir/filebench.cc.o.d"
  "CMakeFiles/kite_workloads.dir/fs.cc.o"
  "CMakeFiles/kite_workloads.dir/fs.cc.o.d"
  "CMakeFiles/kite_workloads.dir/http.cc.o"
  "CMakeFiles/kite_workloads.dir/http.cc.o.d"
  "CMakeFiles/kite_workloads.dir/memcached.cc.o"
  "CMakeFiles/kite_workloads.dir/memcached.cc.o.d"
  "CMakeFiles/kite_workloads.dir/mysql.cc.o"
  "CMakeFiles/kite_workloads.dir/mysql.cc.o.d"
  "CMakeFiles/kite_workloads.dir/netbench.cc.o"
  "CMakeFiles/kite_workloads.dir/netbench.cc.o.d"
  "CMakeFiles/kite_workloads.dir/redis.cc.o"
  "CMakeFiles/kite_workloads.dir/redis.cc.o.d"
  "CMakeFiles/kite_workloads.dir/rpc.cc.o"
  "CMakeFiles/kite_workloads.dir/rpc.cc.o.d"
  "CMakeFiles/kite_workloads.dir/storagebench.cc.o"
  "CMakeFiles/kite_workloads.dir/storagebench.cc.o.d"
  "libkite_workloads.a"
  "libkite_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
