# Empty compiler generated dependencies file for kite_workloads.
# This may be replaced when dependencies are built.
