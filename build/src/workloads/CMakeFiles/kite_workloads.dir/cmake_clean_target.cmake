file(REMOVE_RECURSE
  "libkite_workloads.a"
)
