file(REMOVE_RECURSE
  "CMakeFiles/kite_netdrv.dir/netback.cc.o"
  "CMakeFiles/kite_netdrv.dir/netback.cc.o.d"
  "CMakeFiles/kite_netdrv.dir/netfront.cc.o"
  "CMakeFiles/kite_netdrv.dir/netfront.cc.o.d"
  "libkite_netdrv.a"
  "libkite_netdrv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_netdrv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
