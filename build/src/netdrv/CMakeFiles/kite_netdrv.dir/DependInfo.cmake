
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netdrv/netback.cc" "src/netdrv/CMakeFiles/kite_netdrv.dir/netback.cc.o" "gcc" "src/netdrv/CMakeFiles/kite_netdrv.dir/netback.cc.o.d"
  "/root/repo/src/netdrv/netfront.cc" "src/netdrv/CMakeFiles/kite_netdrv.dir/netfront.cc.o" "gcc" "src/netdrv/CMakeFiles/kite_netdrv.dir/netfront.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/kite_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/kite_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/bmk/CMakeFiles/kite_bmk.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/kite_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kite_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kite_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
