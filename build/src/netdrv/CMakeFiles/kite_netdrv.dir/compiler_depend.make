# Empty compiler generated dependencies file for kite_netdrv.
# This may be replaced when dependencies are built.
