file(REMOVE_RECURSE
  "libkite_netdrv.a"
)
