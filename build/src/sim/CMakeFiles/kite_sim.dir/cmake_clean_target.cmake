file(REMOVE_RECURSE
  "libkite_sim.a"
)
