# Empty dependencies file for kite_sim.
# This may be replaced when dependencies are built.
