file(REMOVE_RECURSE
  "CMakeFiles/kite_sim.dir/cpu.cc.o"
  "CMakeFiles/kite_sim.dir/cpu.cc.o.d"
  "CMakeFiles/kite_sim.dir/executor.cc.o"
  "CMakeFiles/kite_sim.dir/executor.cc.o.d"
  "CMakeFiles/kite_sim.dir/wait.cc.o"
  "CMakeFiles/kite_sim.dir/wait.cc.o.d"
  "libkite_sim.a"
  "libkite_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
