# Empty dependencies file for kite_services.
# This may be replaced when dependencies are built.
