file(REMOVE_RECURSE
  "libkite_services.a"
)
