file(REMOVE_RECURSE
  "CMakeFiles/kite_services.dir/dhcp.cc.o"
  "CMakeFiles/kite_services.dir/dhcp.cc.o.d"
  "libkite_services.a"
  "libkite_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
