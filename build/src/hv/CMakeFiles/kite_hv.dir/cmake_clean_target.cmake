file(REMOVE_RECURSE
  "libkite_hv.a"
)
