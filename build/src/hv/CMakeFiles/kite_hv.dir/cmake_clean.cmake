file(REMOVE_RECURSE
  "CMakeFiles/kite_hv.dir/domain.cc.o"
  "CMakeFiles/kite_hv.dir/domain.cc.o.d"
  "CMakeFiles/kite_hv.dir/grant_table.cc.o"
  "CMakeFiles/kite_hv.dir/grant_table.cc.o.d"
  "CMakeFiles/kite_hv.dir/hypervisor.cc.o"
  "CMakeFiles/kite_hv.dir/hypervisor.cc.o.d"
  "CMakeFiles/kite_hv.dir/xenbus.cc.o"
  "CMakeFiles/kite_hv.dir/xenbus.cc.o.d"
  "CMakeFiles/kite_hv.dir/xenstore.cc.o"
  "CMakeFiles/kite_hv.dir/xenstore.cc.o.d"
  "libkite_hv.a"
  "libkite_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
