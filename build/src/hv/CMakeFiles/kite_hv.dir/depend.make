# Empty dependencies file for kite_hv.
# This may be replaced when dependencies are built.
