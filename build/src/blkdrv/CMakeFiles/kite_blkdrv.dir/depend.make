# Empty dependencies file for kite_blkdrv.
# This may be replaced when dependencies are built.
