file(REMOVE_RECURSE
  "libkite_blkdrv.a"
)
