file(REMOVE_RECURSE
  "CMakeFiles/kite_blkdrv.dir/blkback.cc.o"
  "CMakeFiles/kite_blkdrv.dir/blkback.cc.o.d"
  "CMakeFiles/kite_blkdrv.dir/blkfront.cc.o"
  "CMakeFiles/kite_blkdrv.dir/blkfront.cc.o.d"
  "libkite_blkdrv.a"
  "libkite_blkdrv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_blkdrv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
