# Empty dependencies file for kite_base.
# This may be replaced when dependencies are built.
