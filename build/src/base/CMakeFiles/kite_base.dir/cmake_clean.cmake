file(REMOVE_RECURSE
  "CMakeFiles/kite_base.dir/log.cc.o"
  "CMakeFiles/kite_base.dir/log.cc.o.d"
  "CMakeFiles/kite_base.dir/rng.cc.o"
  "CMakeFiles/kite_base.dir/rng.cc.o.d"
  "CMakeFiles/kite_base.dir/stats.cc.o"
  "CMakeFiles/kite_base.dir/stats.cc.o.d"
  "CMakeFiles/kite_base.dir/strings.cc.o"
  "CMakeFiles/kite_base.dir/strings.cc.o.d"
  "libkite_base.a"
  "libkite_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
