file(REMOVE_RECURSE
  "libkite_base.a"
)
