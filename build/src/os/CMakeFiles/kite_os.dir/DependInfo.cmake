
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/inventory.cc" "src/os/CMakeFiles/kite_os.dir/inventory.cc.o" "gcc" "src/os/CMakeFiles/kite_os.dir/inventory.cc.o.d"
  "/root/repo/src/os/profile.cc" "src/os/CMakeFiles/kite_os.dir/profile.cc.o" "gcc" "src/os/CMakeFiles/kite_os.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/kite_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kite_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
