file(REMOVE_RECURSE
  "libkite_os.a"
)
