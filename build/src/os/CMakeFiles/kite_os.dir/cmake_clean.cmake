file(REMOVE_RECURSE
  "CMakeFiles/kite_os.dir/inventory.cc.o"
  "CMakeFiles/kite_os.dir/inventory.cc.o.d"
  "CMakeFiles/kite_os.dir/profile.cc.o"
  "CMakeFiles/kite_os.dir/profile.cc.o.d"
  "libkite_os.a"
  "libkite_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
