# Empty compiler generated dependencies file for kite_os.
# This may be replaced when dependencies are built.
