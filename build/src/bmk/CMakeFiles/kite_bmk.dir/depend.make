# Empty dependencies file for kite_bmk.
# This may be replaced when dependencies are built.
