file(REMOVE_RECURSE
  "CMakeFiles/kite_bmk.dir/sched.cc.o"
  "CMakeFiles/kite_bmk.dir/sched.cc.o.d"
  "libkite_bmk.a"
  "libkite_bmk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kite_bmk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
