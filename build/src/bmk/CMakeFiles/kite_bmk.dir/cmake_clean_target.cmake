file(REMOVE_RECURSE
  "libkite_bmk.a"
)
