file(REMOVE_RECURSE
  "CMakeFiles/dhcp_appliance.dir/dhcp_appliance.cc.o"
  "CMakeFiles/dhcp_appliance.dir/dhcp_appliance.cc.o.d"
  "dhcp_appliance"
  "dhcp_appliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhcp_appliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
