# Empty compiler generated dependencies file for dhcp_appliance.
# This may be replaced when dependencies are built.
