file(REMOVE_RECURSE
  "CMakeFiles/database_storage.dir/database_storage.cc.o"
  "CMakeFiles/database_storage.dir/database_storage.cc.o.d"
  "database_storage"
  "database_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
