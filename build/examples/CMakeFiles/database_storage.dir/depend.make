# Empty dependencies file for database_storage.
# This may be replaced when dependencies are built.
