file(REMOVE_RECURSE
  "CMakeFiles/web_stack.dir/web_stack.cc.o"
  "CMakeFiles/web_stack.dir/web_stack.cc.o.d"
  "web_stack"
  "web_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
