file(REMOVE_RECURSE
  "CMakeFiles/netdrv_test.dir/netdrv_test.cc.o"
  "CMakeFiles/netdrv_test.dir/netdrv_test.cc.o.d"
  "netdrv_test"
  "netdrv_test.pdb"
  "netdrv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netdrv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
