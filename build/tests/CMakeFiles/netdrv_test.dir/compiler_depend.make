# Empty compiler generated dependencies file for netdrv_test.
# This may be replaced when dependencies are built.
