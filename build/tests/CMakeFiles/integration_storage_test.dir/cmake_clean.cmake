file(REMOVE_RECURSE
  "CMakeFiles/integration_storage_test.dir/integration_storage_test.cc.o"
  "CMakeFiles/integration_storage_test.dir/integration_storage_test.cc.o.d"
  "integration_storage_test"
  "integration_storage_test.pdb"
  "integration_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
