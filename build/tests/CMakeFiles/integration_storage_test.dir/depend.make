# Empty dependencies file for integration_storage_test.
# This may be replaced when dependencies are built.
