# Empty dependencies file for bmk_fs_test.
# This may be replaced when dependencies are built.
