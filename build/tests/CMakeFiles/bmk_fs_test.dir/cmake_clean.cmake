file(REMOVE_RECURSE
  "CMakeFiles/bmk_fs_test.dir/bmk_fs_test.cc.o"
  "CMakeFiles/bmk_fs_test.dir/bmk_fs_test.cc.o.d"
  "bmk_fs_test"
  "bmk_fs_test.pdb"
  "bmk_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmk_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
