# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hv_test[1]_include.cmake")
include("/root/repo/build/tests/ring_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/integration_net_test[1]_include.cmake")
include("/root/repo/build/tests/integration_storage_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/services_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/bmk_fs_test[1]_include.cmake")
include("/root/repo/build/tests/nat_test[1]_include.cmake")
include("/root/repo/build/tests/netdrv_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_edge_test[1]_include.cmake")
include("/root/repo/build/tests/smp_test[1]_include.cmake")
