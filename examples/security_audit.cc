// Security audit: use the library's analysis API to audit a service-VM
// image — syscall surface, CVE exposure, ROP gadgets, footprint — the
// paper's §5.1 methodology as a reusable tool.
#include <cstdio>

#include "src/core/kite.h"
#include "src/security/cve.h"
#include "src/security/rop.h"
#include "src/security/syscalls.h"

namespace {

void Audit(const kite::OsProfile& profile) {
  using namespace kite;
  std::printf("\n--- %s ---\n", profile.name.c_str());
  const SyscallReport syscalls = AnalyzeSyscalls(profile);
  std::printf("syscalls: %d used, %d exposed (%zu removable in a unikernel)\n",
              syscalls.used, syscalls.exposed, syscalls.removable.size());
  std::printf("image: %.1f MB across %zu components; boot %.1f s\n",
              profile.ImageBytes() / 1048576.0, profile.components.size(),
              profile.BootTime().seconds());
  int mitigated = 0;
  for (const CveVerdict& v : CheckAllCves(profile)) {
    mitigated += v.mitigated;
    if (!v.mitigated) {
      std::printf("  VULNERABLE %s — %s\n", v.cve->id.c_str(),
                  v.cve->description.c_str());
    }
  }
  std::printf("CVE database: %d/%zu mitigated\n", mitigated, CveDatabase().size());
  const GadgetCounts gadgets = AnalyzeProfile(profile, /*scale=*/0.02);
  std::printf("ROP gadgets (estimated from %lld MB of text): %llu\n",
              static_cast<long long>(profile.code.code_bytes >> 20),
              static_cast<unsigned long long>(gadgets.total));
}

}  // namespace

int main() {
  using namespace kite;
  std::printf("Service-VM security audit (paper §5.1 methodology)\n");
  Audit(KiteNetworkProfile());
  Audit(KiteStorageProfile());
  Audit(UbuntuDriverDomainProfile());
  return 0;
}
