// Web stack: the paper's motivating cloud scenario — an HTTP server guest
// served through a Kite network driver domain, load-tested with ApacheBench,
// side by side with a Linux driver domain.
#include <cstdio>

#include "src/core/kite.h"
#include "src/workloads/http.h"

namespace {

void RunStack(kite::OsKind os) {
  using namespace kite;
  KiteSystem sys;
  DriverDomainConfig config;
  config.os = os;
  NetworkDomain* netdom = sys.CreateNetworkDomain(config);
  GuestVm* web = sys.CreateGuest("web-vm");
  const Ipv4Addr ip = Ipv4Addr::FromOctets(10, 0, 0, 10);
  sys.AttachVif(web, netdom, ip);
  sys.WaitConnected(web);

  HttpServer apache(web->stack(), 80);
  apache.AddFile("/index.html", 64 * 1024);

  AbConfig ab_config;
  ab_config.total_requests = 400;
  ab_config.concurrency = 40;
  ab_config.path = "/index.html";
  ApacheBench ab(sys.client()->stack(), ip, 80, ab_config);
  bool done = false;
  ab.Run([&](const AbResult& r) {
    done = true;
    std::printf("%-6s driver domain: %7.1f req/s, %6.1f MB/s, mean %5.2f ms, "
                "p99 %5.2f ms, %llu/%d ok\n",
                OsKindName(os), r.requests_per_sec, r.mbytes_per_sec,
                r.latency_ms.Mean(), r.latency_ms.Percentile(99),
                static_cast<unsigned long long>(r.completed), ab_config.total_requests);
  });
  sys.WaitUntil([&] { return done; }, Seconds(120));
}

}  // namespace

int main() {
  std::printf("ApacheBench: 400 requests, 40 concurrent, 64 KB page\n");
  RunStack(kite::OsKind::kUbuntuLinux);
  RunStack(kite::OsKind::kKiteRumprun);
  std::printf("\nSame workload, same guest — only the driver domain OS differs.\n");
  return 0;
}
