// DHCP appliance: the paper's daemon service VM (§5.5) — a unikernelized
// DHCP server running in its own VM behind the Kite network domain, serving
// leases to clients on the physical segment.
#include <cstdio>

#include "src/core/kite.h"
#include "src/services/dhcp.h"

int main() {
  using namespace kite;
  KiteSystem sys;
  NetworkDomain* netdom = sys.CreateNetworkDomain();

  // The daemon VM: tiny (1 vCPU, 256 MB), runs only the DHCP server.
  GuestVm* appliance = sys.CreateGuest("dhcp-appliance", /*vcpus=*/1, /*memory_mb=*/256);
  sys.AttachVif(appliance, netdom, Ipv4Addr::FromOctets(10, 0, 0, 5));
  sys.WaitConnected(appliance);

  DhcpServerConfig config;
  config.pool_start = Ipv4Addr::FromOctets(10, 0, 0, 100);
  config.pool_size = 50;
  DhcpServer server(appliance->stack(), config);
  std::printf("DHCP appliance up at %s (pool %s +%d)\n",
              appliance->ip().ToString().c_str(), config.pool_start.ToString().c_str(),
              config.pool_size);

  // 25 clients on the wire run the 4-way handshake.
  PerfDhcp perf(sys.client()->stack(), /*count=*/25, /*spacing=*/Millis(3));
  bool done = false;
  perf.Run([&](const PerfDhcpResult& r) {
    done = true;
    std::printf("perfdhcp: %d/%d leases acquired\n", r.completed, 25);
    std::printf("  Discover→Offer: mean %.2f ms, p99 %.2f ms (paper: ~0.78 ms)\n",
                r.discover_offer_ms.Mean(), r.discover_offer_ms.Percentile(99));
    std::printf("  Request→Ack:    mean %.2f ms, p99 %.2f ms (paper: ~0.70 ms)\n",
                r.request_ack_ms.Mean(), r.request_ack_ms.Percentile(99));
  });
  sys.WaitUntil([&] { return done; }, Seconds(60));
  std::printf("server state: %d active leases, %llu offers, %llu acks\n",
              server.leases_active(),
              static_cast<unsigned long long>(server.offers_sent()),
              static_cast<unsigned long long>(server.acks_sent()));
  return 0;
}
