// Database on Kite storage: a MySQL-style guest whose 20 GB dataset lives on
// an NVMe device behind a Kite storage driver domain; a sysbench client
// drives it over a Kite network domain. Demonstrates combining both domain
// types in one system (as Qubes OS does with its net and storage VMs).
#include <cstdio>

#include "src/core/kite.h"
#include "src/workloads/fs.h"
#include "src/workloads/mysql.h"

int main() {
  using namespace kite;
  KiteSystem::Params params;
  params.disk.capacity_bytes = 24LL << 30;
  KiteSystem sys(params);

  StorageDomain* stordom = sys.CreateStorageDomain();
  NetworkDomain* netdom = sys.CreateNetworkDomain();

  GuestVm* db = sys.CreateGuest("db-vm");
  sys.AttachVbd(db, stordom);
  const Ipv4Addr ip = Ipv4Addr::FromOctets(10, 0, 0, 20);
  sys.AttachVif(db, netdom, ip);
  if (!sys.WaitConnected(db)) {
    std::fprintf(stderr, "frontends failed to connect\n");
    return 1;
  }
  std::printf("guest connected: vbd %lld GB via %s, vif via %s\n",
              static_cast<long long>(db->blkfront()->capacity_bytes() >> 30),
              stordom->domain()->name().c_str(), netdom->domain()->name().c_str());

  SimpleFs fs(db->blkfront());
  MysqlServerParams mysql_params;
  mysql_params.buffer_pool_hit_ratio = 0.25;  // Dataset ≫ buffer pool.
  mysql_params.data_region_bytes = 20LL << 30;
  MysqlServer mysql(db->stack(), 3306, &fs, mysql_params);

  SysbenchOltpConfig bench;
  bench.threads = 16;
  bench.duration = Millis(400);
  bench.updates_per_txn = 2;
  SysbenchOltp sysbench(sys.client()->stack(), ip, 3306, bench);
  bool done = false;
  sysbench.Run([&](const SysbenchOltpResult& r) {
    done = true;
    std::printf("sysbench: %.0f queries/s, %.0f txn/s, txn p95 %.2f ms\n",
                r.queries_per_sec, r.transactions_per_sec,
                r.txn_latency_ms.Percentile(95));
  });
  sys.WaitUntil([&] { return done; }, Seconds(120));

  std::printf("storage path: %llu buffer-pool page reads, %llu redo-log writes, "
              "%llu device ops on the NVMe\n",
              static_cast<unsigned long long>(mysql.page_reads()),
              static_cast<unsigned long long>(mysql.log_writes()),
              static_cast<unsigned long long>(stordom->disk()->reads_completed() +
                                              stordom->disk()->writes_completed()));
  return 0;
}
