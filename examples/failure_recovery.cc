// Failure recovery: driver domains can be restarted to recover from driver
// faults — and Kite's 7 s boot (vs Linux's 75 s, Fig 4c) makes the outage an
// order of magnitude shorter. This example crashes and restarts a network
// domain of each personality and measures the service outage.
#include <cstdio>

#include "src/core/kite.h"

namespace {

double MeasureOutage(kite::OsKind os) {
  using namespace kite;
  KiteSystem::Params params;
  params.instant_boot = false;  // Real boot sequences.
  KiteSystem sys(params);
  DriverDomainConfig config;
  config.os = os;
  NetworkDomain* netdom = sys.CreateNetworkDomain(config);
  sys.WaitUntil([&] { return netdom->booted(); }, Seconds(300));

  GuestVm* guest = sys.CreateGuest("app-vm");
  const Ipv4Addr ip = Ipv4Addr::FromOctets(10, 0, 0, 10);
  sys.AttachVif(guest, netdom, ip);
  sys.WaitConnected(guest);

  // Service is up; now the driver domain "crashes" (destroy + reboot).
  const SimTime outage_start = sys.Now();
  NetworkDomain* fresh = sys.RestartNetworkDomain(netdom);
  sys.WaitUntil([&] { return fresh->booted(); }, Seconds(300));

  // Service restored once a (re)attached guest answers pings again.
  GuestVm* guest2 = sys.CreateGuest("app-vm-reattached");
  const Ipv4Addr ip2 = Ipv4Addr::FromOctets(10, 0, 0, 11);
  sys.AttachVif(guest2, fresh, ip2);
  sys.WaitConnected(guest2);
  bool ok = false;
  sys.client()->stack()->Ping(ip2, 56, [&](bool r, SimDuration) { ok = r; });
  sys.WaitUntil([&] { return ok; }, Seconds(10));
  return (sys.Now() - outage_start).seconds();
}

}  // namespace

int main() {
  using namespace kite;
  std::printf("Driver-domain crash → restart → service restored:\n");
  const double linux_outage = MeasureOutage(OsKind::kUbuntuLinux);
  const double kite_outage = MeasureOutage(OsKind::kKiteRumprun);
  std::printf("  Linux driver domain outage: %6.1f s\n", linux_outage);
  std::printf("  Kite  driver domain outage: %6.1f s\n", kite_outage);
  std::printf("  recovery speedup: %.1fx (boot time dominates; Fig 4c: 75 s vs 7 s)\n",
              linux_outage / kite_outage);
  return 0;
}
