// Failure recovery: driver domains can be restarted to recover from driver
// faults — and Kite's 7 s boot (vs Linux's 75 s, Fig 4c) makes the outage an
// order of magnitude shorter. This example crashes a network domain and a
// storage domain of each personality and measures the outage as seen by the
// *same* guest: its frontends detect the backend death, tear down, and
// reconnect to the replacement automatically — no re-attach, and no
// acknowledged write lost.
#include <cstdio>

#include "src/base/bytes.h"
#include "src/core/kite.h"

namespace {

using namespace kite;

// Crash + restart the network domain under a guest that keeps pinging.
// Returns the outage: last echo before the crash → first echo after.
double MeasureNetworkOutage(OsKind os) {
  KiteSystem::Params params;
  params.instant_boot = false;  // Real boot sequences.
  KiteSystem sys(params);
  DriverDomainConfig config;
  config.os = os;
  NetworkDomain* netdom = sys.CreateNetworkDomain(config);
  sys.WaitUntil([&] { return netdom->booted(); }, Seconds(300));

  GuestVm* guest = sys.CreateGuest("app-vm");
  const Ipv4Addr ip = Ipv4Addr::FromOctets(10, 0, 0, 10);
  sys.AttachVif(guest, netdom, ip);
  sys.WaitConnected(guest);
  bool up = false;
  sys.client()->stack()->Ping(ip, 56, [&](bool r, SimDuration) { up = r; });
  sys.WaitUntil([&] { return up; }, Seconds(10));

  // The driver domain "crashes". The guest keeps its netfront; service is
  // back when the same guest answers pings again.
  const SimTime outage_start = sys.Now();
  NetworkDomain* fresh = sys.RestartNetworkDomain(netdom);
  sys.WaitUntil([&] { return fresh->booted(); }, Seconds(300));
  sys.WaitConnected(guest, Seconds(300));
  bool restored = false;
  while (!restored) {
    bool done = false;
    sys.client()->stack()->Ping(ip, 56, [&](bool r, SimDuration) {
      done = true;
      restored = r;
    });
    if (!sys.WaitUntil([&] { return done; }, Seconds(10))) {
      break;
    }
  }
  std::printf("    netfront recoveries=%llu, in-flight tx dropped=%llu\n",
              static_cast<unsigned long long>(guest->netfront()->recoveries()),
              static_cast<unsigned long long>(guest->netfront()->recovery_drops()));
  return (sys.Now() - outage_start).seconds();
}

// Crash + restart the storage domain with writes in flight. Blkfront
// requeues everything that was on the ring, so every write completes against
// the new backend and nothing acknowledged is lost.
double MeasureStorageOutage(OsKind os) {
  KiteSystem::Params params;
  params.instant_boot = false;
  params.disk_store_data = true;
  KiteSystem sys(params);
  DriverDomainConfig config;
  config.os = os;
  StorageDomain* stordom = sys.CreateStorageDomain(config);
  sys.WaitUntil([&] { return stordom->booted(); }, Seconds(300));

  GuestVm* guest = sys.CreateGuest("db-vm");
  sys.AttachVbd(guest, stordom);
  sys.WaitConnected(guest);

  // A committed record, then a burst the crash will interrupt.
  Buffer record(64 * 1024, 0xdb);
  const uint64_t digest = Fnv1a(record);
  bool acked = false;
  guest->blkfront()->Write(0, record, [&](bool ok) { acked = ok; });
  sys.WaitUntil([&] { return acked; }, Seconds(10));
  int burst_done = 0;
  constexpr int kBurst = 32;
  for (int i = 0; i < kBurst; ++i) {
    guest->blkfront()->Write((1 + i) * 64 * 1024, Buffer(16 * 1024, 0x5a),
                             [&](bool) { ++burst_done; });
  }

  const SimTime outage_start = sys.Now();
  StorageDomain* fresh = sys.RestartStorageDomain(stordom);
  sys.WaitUntil([&] { return fresh->booted(); }, Seconds(300));
  sys.WaitConnected(guest, Seconds(300));
  sys.WaitUntil([&] { return burst_done == kBurst; }, Seconds(30));
  const double outage = (sys.Now() - outage_start).seconds();

  Buffer readback;
  bool read_ok = false;
  guest->blkfront()->Read(0, record.size(), &readback, [&](bool ok) { read_ok = ok; });
  sys.WaitUntil([&] { return read_ok; }, Seconds(10));
  std::printf("    blkfront recoveries=%llu, requests requeued=%llu, "
              "burst completed=%d/%d, pre-crash record intact=%s\n",
              static_cast<unsigned long long>(guest->blkfront()->recoveries()),
              static_cast<unsigned long long>(guest->blkfront()->requests_requeued()),
              burst_done, kBurst,
              read_ok && Fnv1a(readback) == digest ? "yes" : "NO");
  return outage;
}

}  // namespace

int main() {
  std::printf("Driver-domain crash → restart → same guest reconnects:\n");
  std::printf("  network domain (guest keeps its VIF across the crash)\n");
  const double linux_net = MeasureNetworkOutage(OsKind::kUbuntuLinux);
  const double kite_net = MeasureNetworkOutage(OsKind::kKiteRumprun);
  std::printf("  storage domain (writes in flight requeued, none lost)\n");
  const double linux_stor = MeasureStorageOutage(OsKind::kUbuntuLinux);
  const double kite_stor = MeasureStorageOutage(OsKind::kKiteRumprun);
  std::printf("\n");
  std::printf("  network outage:  Linux %6.1f s | Kite %5.1f s (%.1fx faster)\n",
              linux_net, kite_net, linux_net / kite_net);
  std::printf("  storage outage:  Linux %6.1f s | Kite %5.1f s (%.1fx faster)\n",
              linux_stor, kite_stor, linux_stor / kite_stor);
  std::printf("  (boot time dominates; Fig 4c: 75 s vs 7 s)\n");
  return 0;
}
