// Quickstart: build a Kite network driver domain, attach a guest, and ping
// it from the client machine — the minimal end-to-end use of the library.
//
//   $ ./quickstart
//
// What happens under the hood: the toolstack creates xenstore device
// directories; netfront publishes ring grants and an event channel; the
// netback driver's watch thread discovers the frontend, maps the rings, and
// connects; the network application adds the new VIF to the bridge; ICMP
// echoes then flow client → NIC → bridge → netback → netfront → guest stack
// and back.
#include <cstdio>

#include "src/core/kite.h"

int main() {
  using namespace kite;

  // 1. The machine: hypervisor + Dom0 + a directly-attached client host.
  KiteSystem sys;
  // Record every hypercall, event-channel delivery, and ring push for the
  // trace viewer (off by default; one branch per event when disabled).
  sys.EnableTracing();

  // 2. A Kite (rumprun) network driver domain owning the 10GbE NIC.
  NetworkDomain* netdom = sys.CreateNetworkDomain();

  // 3. An application guest with a paravirtual NIC behind that domain.
  GuestVm* guest = sys.CreateGuest("app-vm");
  const Ipv4Addr guest_ip = Ipv4Addr::FromOctets(10, 0, 0, 10);
  sys.AttachVif(guest, netdom, guest_ip);
  if (!sys.WaitConnected(guest)) {
    std::fprintf(stderr, "netfront failed to connect\n");
    return 1;
  }
  std::printf("netfront connected; bridge has %d ports\n",
              netdom->bridge()->port_count());

  // 4. Ping the guest from the client machine.
  for (int i = 0; i < 3; ++i) {
    bool done = false;
    sys.client()->stack()->Ping(guest_ip, 56, [&](bool ok, SimDuration rtt) {
      std::printf("64 bytes from %s: icmp_seq=%d time=%.3f ms%s\n",
                  guest_ip.ToString().c_str(), i + 1, rtt.ms(), ok ? "" : " (LOST)");
      done = true;
    });
    sys.WaitUntil([&] { return done; }, Seconds(2));
    sys.RunFor(Seconds(1));  // 1 s between pings, like ping(8).
  }

  std::printf("\nhypervisor stats: %llu hypercalls, %llu events, %llu grant copies\n",
              static_cast<unsigned long long>(sys.hv().hypercalls_issued()),
              static_cast<unsigned long long>(sys.hv().events_sent()),
              static_cast<unsigned long long>(sys.hv().grant_copies()));

  // 5. Observability: the full metric registry, and the simulator trace as
  // Chrome trace_event JSON — open quickstart_trace.json in Perfetto
  // (https://ui.perfetto.dev) or chrome://tracing to see each domain's
  // hypercalls and events on the simulated timeline.
  std::printf("\nmetrics:\n%s", sys.FormatMetrics().c_str());
  const char* trace_path = "quickstart_trace.json";
  if (sys.DumpTrace(trace_path)) {
    std::printf("\nwrote %zu trace events to %s\n", sys.tracer().size(), trace_path);
  }
  return 0;
}
