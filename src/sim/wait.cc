#include "src/sim/wait.h"

namespace kite {

WaitChannel::~WaitChannel() {
  // Destroy frames parked on the channel...
  for (auto handle : waiters_) {
    handle.destroy();
  }
  // ...and frames whose resumption is still queued in the executor. The
  // queued event observes `cancelled` and becomes a no-op.
  for (const auto& r : in_flight_) {
    r->cancelled = true;
    if (r->handle) {
      r->handle.destroy();
    }
  }
}

void WaitChannel::NotifyOne() {
  if (waiters_.empty()) {
    return;
  }
  auto resumption = std::make_shared<Resumption>();
  resumption->handle = waiters_.front();
  waiters_.pop_front();
  in_flight_.insert(resumption);
  executor_->Post([this, resumption] {
    if (resumption->cancelled) {
      return;  // Channel destroyed; frame already reclaimed.
    }
    in_flight_.erase(resumption);
    auto handle = resumption->handle;
    resumption->handle = nullptr;
    handle.resume();
  });
}

void WaitChannel::NotifyAll() {
  while (!waiters_.empty()) {
    NotifyOne();
  }
}

}  // namespace kite
