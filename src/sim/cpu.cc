#include "src/sim/cpu.h"

#include <cmath>
#include <cstring>
#include <mutex>

namespace kite {
namespace {

// Append-only category registry, mirroring the executor's dispatch-site
// registry. deque-like stable storage via unique_ptr elements.
struct CategoryRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<CpuCategory>> categories;

  CategoryRegistry() {
    categories.push_back(std::unique_ptr<CpuCategory>(
        new CpuCategory{"(unattributed)", kCpuUnattributedIndex}));
  }
};

CategoryRegistry& Registry() {
  static CategoryRegistry* registry = new CategoryRegistry();
  return *registry;
}

// Ambient category for Charge. The simulation is single-threaded; scopes
// save/restore this, so it is always consistent with the C++ scope nesting
// of the currently running event.
uint32_t g_current_category = kCpuUnattributedIndex;

}  // namespace

const CpuCategory* RegisterCpuCategory(const char* label) {
  CategoryRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& c : reg.categories) {
    if (c->label == label || std::strcmp(c->label, label) == 0) {
      return c.get();
    }
  }
  reg.categories.push_back(std::unique_ptr<CpuCategory>(
      new CpuCategory{label, static_cast<uint32_t>(reg.categories.size())}));
  return reg.categories.back().get();
}

size_t CpuCategoryCount() {
  CategoryRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.categories.size();
}

const char* CpuCategoryLabel(uint32_t index) {
  CategoryRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (index >= reg.categories.size()) {
    return "?";
  }
  return reg.categories[index]->label;
}

CpuScope::CpuScope(const CpuCategory* category) : saved_(g_current_category) {
  g_current_category = category->index;
}

CpuScope::~CpuScope() { g_current_category = saved_; }

uint32_t CurrentCpuCategory() { return g_current_category; }

uint64_t CpuWaitHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p > 100) {
    p = 100;
  }
  // Nearest rank: the smallest rank r (1-based) with r >= p% of count
  // (identical to LatencyHistogram::Percentile so the two report alike).
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > count_) {
    rank = count_;
  }
  // Implied zero bucket first (Record never stores zeros — see cpu.h).
  uint64_t cumulative = count_ - nonzero_;
  if (cumulative >= rank) {
    return 0;
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      return BucketLowerBound(i);
    }
  }
  return max_;  // Unreachable: cumulative reaches count_.
}

SimTime Vcpu::Charge(SimDuration cost) {
  if (cost < SimDuration(0)) {
    cost = SimDuration(0);
  }
  const SimTime now = executor_->Now();
  SimTime start = now;
  if (free_at_ > start) {
    start = free_at_;
  }
  free_at_ = start + cost;
  if (ledger_ == nullptr) {
    busy_total_ += cost;
  } else {
    // `start` already holds max(now, old free_at_): the wait is how far the
    // busy horizon pushed this request past "now". The common case is
    // inlined here; RecordAttribution is the cold grow-then-record path for
    // a category index the ledger hasn't seen yet. busy_total_ is NOT
    // updated on this path — busy_total() derives it from the ledger.
    CpuLedger* ledger = ledger_.get();
    const uint32_t category = g_current_category;
    if (__builtin_expect(category < ledger->busy_ns.size(), 1)) {
      ledger->busy_ns[category] += static_cast<uint64_t>(cost.ns());
      ledger->wait_hist.Record(static_cast<uint64_t>((start - now).ns()));
    } else {
      RecordAttribution(cost, start - now);
    }
  }
  return free_at_;
}

void Vcpu::EnableAttribution() {
  if (ledger_ == nullptr) {
    ledger_ = std::make_unique<CpuLedger>();
  }
}

SimDuration Vcpu::attributed_busy(uint32_t category) const {
  if (ledger_ == nullptr || category >= ledger_->busy_ns.size()) {
    return SimDuration(0);
  }
  return Nanos(static_cast<int64_t>(ledger_->busy_ns[category]));
}

void Vcpu::RecordAttribution(SimDuration cost, SimDuration wait) {
  CpuLedger* ledger = ledger_.get();
  const uint32_t category = g_current_category;
  if (__builtin_expect(category >= ledger->busy_ns.size(), 0)) {
    // Categories register lazily; size to the full registry so one resize
    // covers every label seen so far.
    ledger->busy_ns.resize(CpuCategoryCount(), 0);
  }
  ledger->busy_ns[category] += static_cast<uint64_t>(cost.ns());
  ledger->wait_hist.Record(static_cast<uint64_t>(wait.ns()));
}

}  // namespace kite
