#include "src/sim/cpu.h"

namespace kite {

SimTime Vcpu::Charge(SimDuration cost) {
  if (cost < SimDuration(0)) {
    cost = SimDuration(0);
  }
  SimTime start = executor_->Now();
  if (free_at_ > start) {
    start = free_at_;
  }
  free_at_ = start + cost;
  busy_total_ += cost;
  return free_at_;
}

}  // namespace kite
