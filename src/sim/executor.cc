#include "src/sim/executor.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <deque>

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {
namespace {

constexpr size_t kEventsPerChunk = 256;

// Process-global dispatch-site registry. A deque so interned DispatchSite
// pointers stay stable as sites register; leaked on purpose (sites are
// consulted during static destruction by executors dying at exit).
std::deque<DispatchSite>& SiteRegistry() {
  static std::deque<DispatchSite>* sites = [] {
    auto* s = new std::deque<DispatchSite>();
    s->push_back(DispatchSite{"(untagged)", kDispatchSiteUntagged});
    s->push_back(DispatchSite{"(coroutine)", kDispatchSiteCoroutine});
    return s;
  }();
  return *sites;
}

// Heap comparator for the overflow min-heap: true when a fires *later* than
// b (std::push_heap builds a max-heap w.r.t. the comparator).
struct EventLater {
  template <typename E>
  bool operator()(const E* a, const E* b) const {
    if (a->at != b->at) {
      return a->at > b->at;
    }
    if (a->tie != b->tie) {
      return a->tie > b->tie;
    }
    return a->seq > b->seq;
  }
};

// Total dispatch order, ascending — identical to the order the pre-wheel
// binary heap popped events in.
struct EventEarlier {
  template <typename E>
  bool operator()(const E* a, const E* b) const {
    if (a->at != b->at) {
      return a->at < b->at;
    }
    if (a->tie != b->tie) {
      return a->tie < b->tie;
    }
    return a->seq < b->seq;
  }
};

}  // namespace

const DispatchSite* RegisterDispatchSite(const char* label) {
  auto& reg = SiteRegistry();
  for (const DispatchSite& site : reg) {
    if (std::strcmp(site.label, label) == 0) {
      return &site;
    }
  }
  reg.push_back(DispatchSite{label, static_cast<uint32_t>(reg.size())});
  return &reg.back();
}

const char* DispatchSiteLabel(uint32_t index) {
  auto& reg = SiteRegistry();
  return index < reg.size() ? reg[index].label : "(unknown)";
}

size_t DispatchSiteCount() { return SiteRegistry().size(); }

Executor::~Executor() {
  // Drain-and-destroy until nothing is left. A coroutine frame (or callback
  // capture) may post new events from its own destructor; swapping the whole
  // pending set into a local list each round means those posts land in the
  // now-empty wheel instead of invalidating what we iterate, and the next
  // round reclaims them too.
  std::vector<Event*> doomed;
  while (pending_count_ > 0) {
    doomed.clear();
    for (size_t i = batch_pos_; i < batch_.size(); ++i) {
      doomed.push_back(batch_[i]);
    }
    batch_.clear();
    batch_pos_ = 0;
    for (int l = 0; l < kLevels; ++l) {
      uint64_t bits = occupied_[l];
      occupied_[l] = 0;
      while (bits != 0) {
        const int s = std::countr_zero(bits);
        bits &= bits - 1;
        for (Event* e = wheel_[l][s]; e != nullptr; e = e->next) {
          doomed.push_back(e);
        }
        wheel_[l][s] = nullptr;
      }
    }
    doomed.insert(doomed.end(), overflow_.begin(), overflow_.end());
    overflow_.clear();
    pending_count_ = 0;
    non_daemon_pending_ = 0;
    for (Event* ev : doomed) {
      if (ev->coro) {
        ev->coro.destroy();
      } else if (ev->destroy != nullptr) {
        ev->destroy(ev);
      }
      FreeEvent(ev);
    }
  }
}

Executor::Event* Executor::NewEvent(SimTime when, bool daemon) {
  if (when < now_) {
    when = now_;
  }
  Event* ev = free_list_;
  if (ev != nullptr) {
    free_list_ = ev->next;
  } else {
    auto chunk = std::make_unique<Event[]>(kEventsPerChunk);
    for (size_t i = 1; i < kEventsPerChunk; ++i) {
      chunk[i].next = free_list_;
      free_list_ = &chunk[i];
    }
    ev = &chunk[0];
    chunks_.push_back(std::move(chunk));
  }
  ev->at = when;
  ev->seq = next_seq_++;
  // Future events draw a shuffled tie; events due *now* keep seq so the
  // Post() FIFO contract ("after already-queued same-time events") holds in
  // shuffle mode too. With shuffle off, tie == seq always — byte-identical
  // schedules to the pre-wheel executor. Daemon events never draw: telemetry
  // housekeeping must not shift the RNG stream real events see (header).
  ev->tie = (shuffle_ && !daemon && when > now_) ? shuffle_rng_.NextU64() : ev->seq;
  ev->next = nullptr;
  ev->coro = nullptr;
  ev->invoke = nullptr;
  ev->destroy = nullptr;
  ev->daemon = daemon;
  ev->site = kDispatchSiteUntagged;
  return ev;
}

void Executor::FreeEvent(Event* ev) {
  ev->next = free_list_;
  free_list_ = ev;
}

void Executor::Insert(Event* ev) {
  ++pending_count_;
  if (!ev->daemon) {
    ++non_daemon_pending_;
  }
  WheelInsert(ev);
}

void Executor::WheelInsert(Event* ev) {
  const uint64_t t = static_cast<uint64_t>(ev->at.ns());
  const uint64_t c = static_cast<uint64_t>(cursor_ns_);
  const uint64_t diff = t ^ c;
  if ((diff >> kHorizonBits) != 0) {
    // Different 2^42 ns era: park in the overflow heap until the cursor gets
    // there.
    overflow_.push_back(ev);
    std::push_heap(overflow_.begin(), overflow_.end(), EventLater{});
    return;
  }
  const int level = diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kLevelBits;
  const int slot = static_cast<int>((t >> (level * kLevelBits)) & kSlotMask);
  ev->next = wheel_[level][slot];
  wheel_[level][slot] = ev;
  occupied_[level] |= uint64_t{1} << slot;
}

void Executor::PromoteOverflow() {
  const uint64_t era = static_cast<uint64_t>(cursor_ns_) >> kHorizonBits;
  while (!overflow_.empty() &&
         (static_cast<uint64_t>(overflow_.front()->at.ns()) >> kHorizonBits) == era) {
    std::pop_heap(overflow_.begin(), overflow_.end(), EventLater{});
    Event* ev = overflow_.back();
    overflow_.pop_back();
    WheelInsert(ev);
  }
}

bool Executor::LoadNextBatch(SimTime limit) {
  batch_.clear();
  batch_pos_ = 0;
  if (pending_count_ == 0) {
    return false;
  }
  for (;;) {
    // Overflow events whose era the cursor has entered belong in the wheel
    // before any "earliest slot" decision is made.
    if (!overflow_.empty()) {
      PromoteOverflow();
    }
    const uint64_t c = static_cast<uint64_t>(cursor_ns_);
    // Level 0: each slot is one exact nanosecond of the cursor's current
    // 64 ns window, so the first occupied slot at or past the cursor digit
    // IS the next batch.
    const int d0 = static_cast<int>(c & kSlotMask);
    const uint64_t m0 = occupied_[0] & (~uint64_t{0} << d0);
    if (m0 != 0) {
      const int s = std::countr_zero(m0);
      const int64_t t = static_cast<int64_t>((c & ~kSlotMask) | static_cast<uint64_t>(s));
      if (t > limit.ns()) {
        return false;
      }
      cursor_ns_ = t;
      Event* e = wheel_[0][s];
      wheel_[0][s] = nullptr;
      occupied_[0] &= ~(uint64_t{1} << s);
      for (; e != nullptr; e = e->next) {
        batch_.push_back(e);
      }
      // All batch events share one timestamp; (tie, seq) gives the exact
      // order the old heap would have popped them in. Singleton batches (the
      // common case for spread-out timers) skip the sort call entirely.
      if (batch_.size() > 1) {
        std::sort(batch_.begin(), batch_.end(), [](const Event* a, const Event* b) {
          return a->tie != b->tie ? a->tie < b->tie : a->seq < b->seq;
        });
      }
      return true;
    }
    // Level 0 empty: cascade the earliest occupied higher-level slot down.
    // Wheel invariant: at level l > 0, slots below the cursor digit are
    // empty, and lower levels always hold earlier times than higher ones, so
    // the first hit scanning levels upward is the earliest remaining window.
    bool cascaded = false;
    for (int l = 1; l < kLevels; ++l) {
      const int d = static_cast<int>((c >> (l * kLevelBits)) & kSlotMask);
      const uint64_t m = occupied_[l] & (~uint64_t{0} << d);
      if (m == 0) {
        continue;
      }
      const int s = std::countr_zero(m);
      const uint64_t below = (uint64_t{1} << ((l + 1) * kLevelBits)) - 1;
      const uint64_t start =
          (c & ~below) | (static_cast<uint64_t>(s) << (l * kLevelBits));
      if (static_cast<int64_t>(start) > limit.ns()) {
        return false;  // Every remaining event starts past the limit.
      }
      if (static_cast<int64_t>(start) > cursor_ns_) {
        cursor_ns_ = static_cast<int64_t>(start);
      }
      Event* e = wheel_[l][s];
      wheel_[l][s] = nullptr;
      occupied_[l] &= ~(uint64_t{1} << s);
      while (e != nullptr) {
        Event* next = e->next;
        WheelInsert(e);  // Lands strictly below level l.
        e = next;
      }
      cascaded = true;
      break;
    }
    if (cascaded) {
      continue;
    }
    // Wheel fully empty: jump the cursor into the next overflow era.
    if (!overflow_.empty()) {
      Event* top = overflow_.front();
      if (top->at.ns() > limit.ns()) {
        return false;
      }
      cursor_ns_ = top->at.ns();
      continue;
    }
    return false;
  }
}

void Executor::JumpCursor(int64_t to_ns) {
  if (to_ns <= cursor_ns_) {
    return;
  }
  cursor_ns_ = to_ns;
  // The cursor may have landed inside higher-level slots that still hold
  // events (all later than to_ns). Cascade them down now so the level-by-
  // level scan in LoadNextBatch stays ordered: a stale slot at the cursor's
  // own digit shares the lower levels' time window and would otherwise be
  // scanned after them.
  const uint64_t c = static_cast<uint64_t>(cursor_ns_);
  for (int l = 1; l < kLevels; ++l) {
    const int d = static_cast<int>((c >> (l * kLevelBits)) & kSlotMask);
    if ((occupied_[l] & (uint64_t{1} << d)) == 0) {
      continue;
    }
    Event* e = wheel_[l][d];
    wheel_[l][d] = nullptr;
    occupied_[l] &= ~(uint64_t{1} << d);
    while (e != nullptr) {
      Event* next = e->next;
      WheelInsert(e);
      e = next;
    }
  }
}

void Executor::ResumeAt(SimTime when, std::coroutine_handle<> handle) {
  KITE_CHECK(handle != nullptr);
  Event* ev = NewEvent(when, /*daemon=*/false);
  ev->coro = handle;
  Insert(ev);
}

void Executor::ResumeAfter(SimDuration delay, std::coroutine_handle<> handle) {
  if (delay < SimDuration(0)) {
    delay = SimDuration(0);
  }
  ResumeAt(now_ + delay, handle);
}

void Executor::DispatchOne(Event* ev) {
  --pending_count_;
  if (!ev->daemon) {
    --non_daemon_pending_;
  }
  now_ = ev->at;
  ++steps_;
  if (profile_ != nullptr) [[unlikely]] {
    ProfiledDispatch(ev);
    return;
  }
  if (ev->coro) {
    ev->coro.resume();
  } else {
    ev->invoke(ev);
    if (ev->destroy != nullptr) {
      ev->destroy(ev);
    }
  }
  FreeEvent(ev);
}

void Executor::ProfiledDispatch(Event* ev) {
  ProfileState& p = *profile_;
  const uint32_t site = ev->coro ? kDispatchSiteCoroutine : ev->site;
  if (site >= p.stats.size()) {
    p.stats.resize(std::max<size_t>(site + 1, DispatchSiteCount()));
  }
  SiteStat& stat = p.stats[site];
  ++stat.invocations;
  const bool timed = (p.dispatch_counter++ & p.sample_mask) == 0;
  std::chrono::steady_clock::time_point t0;
  if (timed) {
    t0 = std::chrono::steady_clock::now();
  }
  if (ev->coro) {
    ev->coro.resume();
  } else {
    ev->invoke(ev);
    if (ev->destroy != nullptr) {
      ev->destroy(ev);
    }
  }
  if (timed) {
    const auto dt = std::chrono::steady_clock::now() - t0;
    stat.sampled_wall_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
    ++stat.samples;
  }
  FreeEvent(ev);
}

void Executor::EnableDispatchProfiler() {
  if (profile_ == nullptr) {
    profile_ = std::make_unique<ProfileState>();
  }
  profile_->sample_mask = (uint64_t{1} << profile_sample_shift_) - 1;
}

std::vector<DispatchProfileEntry> Executor::DispatchProfile() const {
  std::vector<DispatchProfileEntry> out;
  if (profile_ == nullptr) {
    return out;
  }
  for (uint32_t i = 0; i < profile_->stats.size(); ++i) {
    const SiteStat& s = profile_->stats[i];
    if (s.invocations == 0) {
      continue;
    }
    DispatchProfileEntry e;
    e.label = DispatchSiteLabel(i);
    e.invocations = s.invocations;
    e.samples = s.samples;
    e.sampled_wall_ns = s.sampled_wall_ns;
    // Scale sampled time up to the full population. With shift 0 every
    // dispatch is timed and est == sampled exactly.
    e.est_wall_ns =
        s.samples == 0
            ? 0
            : static_cast<uint64_t>(static_cast<double>(s.sampled_wall_ns) *
                                    static_cast<double>(s.invocations) /
                                    static_cast<double>(s.samples));
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const DispatchProfileEntry& a, const DispatchProfileEntry& b) {
              if (a.est_wall_ns != b.est_wall_ns) {
                return a.est_wall_ns > b.est_wall_ns;
              }
              if (a.invocations != b.invocations) {
                return a.invocations > b.invocations;
              }
              return std::strcmp(a.label, b.label) < 0;
            });
  return out;
}

bool Executor::Step() {
  if (batch_pos_ >= batch_.size() && !LoadNextBatch(SimTime::Max())) {
    return false;
  }
  DispatchOne(batch_[batch_pos_++]);
  return true;
}

void Executor::RunUntilIdle() {
  // Stop once only daemon events remain: a self-reposting watchdog probe
  // would otherwise keep this loop (and simulated time) running forever.
  while (non_daemon_pending_ > 0) {
    Step();
  }
}

void Executor::RunUntil(SimTime deadline) {
  for (;;) {
    if (batch_pos_ < batch_.size()) {
      Event* ev = batch_[batch_pos_];
      if (ev->at > deadline) {
        break;  // A batch left over from Step(); all of it shares ev->at.
      }
      ++batch_pos_;
      DispatchOne(ev);
      continue;
    }
    if (!LoadNextBatch(deadline)) {
      break;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  JumpCursor(deadline.ns());
}

void Executor::CollectPending(std::vector<const Event*>* out) const {
  for (size_t i = batch_pos_; i < batch_.size(); ++i) {
    out->push_back(batch_[i]);
  }
  for (int l = 0; l < kLevels; ++l) {
    uint64_t bits = occupied_[l];
    while (bits != 0) {
      const int s = std::countr_zero(bits);
      bits &= bits - 1;
      for (const Event* e = wheel_[l][s]; e != nullptr; e = e->next) {
        out->push_back(e);
      }
    }
  }
  out->insert(out->end(), overflow_.begin(), overflow_.end());
}

std::vector<Executor::PendingEvent> Executor::PendingEvents(size_t max) const {
  std::vector<const Event*> ptrs;
  ptrs.reserve(pending_count_);
  CollectPending(&ptrs);
  // Only the first `max` elements are needed in order: partial_sort over
  // pointers instead of copying and fully sorting the queue.
  const size_t n = std::min(max, ptrs.size());
  std::partial_sort(ptrs.begin(), ptrs.begin() + static_cast<ptrdiff_t>(n), ptrs.end(),
                    EventEarlier{});
  ptrs.resize(n);
  std::vector<PendingEvent> out;
  out.reserve(ptrs.size());
  for (const Event* ev : ptrs) {
    out.push_back(PendingEvent{ev->at, ev->seq, static_cast<bool>(ev->coro), ev->daemon});
  }
  return out;
}

std::string Executor::FormatPendingEvents(size_t max) const {
  std::string out = StrFormat("%zu pending event(s) at t=%.9fs", pending_count_,
                              now_.seconds());
  for (const PendingEvent& ev : PendingEvents(max)) {
    out += StrFormat("\n  at=%.9fs seq=%llu %s%s", ev.at.seconds(),
                     static_cast<unsigned long long>(ev.seq),
                     ev.is_coro ? "coroutine" : "callback",
                     ev.is_daemon ? " (daemon)" : "");
  }
  if (pending_count_ > max) {
    out += StrFormat("\n  ... %zu more", pending_count_ - max);
  }
  return out;
}

}  // namespace kite
