#include "src/sim/executor.h"

#include "src/base/log.h"

namespace kite {

Executor::~Executor() {
  // Destroy coroutine frames still parked in the queue so long-lived server
  // loops suspended on a timer do not leak when a simulation is torn down.
  while (!queue_.empty()) {
    // priority_queue::top() is const; we only need the handle.
    const Event& ev = queue_.top();
    if (ev.coro) {
      ev.coro.destroy();
    }
    queue_.pop();
  }
}

void Executor::PostAt(SimTime when, std::function<void()> fn) {
  KITE_CHECK(fn != nullptr);
  if (when < now_) {
    when = now_;
  }
  queue_.push(Event{when, next_seq_++, std::move(fn), nullptr});
}

void Executor::PostAfter(SimDuration delay, std::function<void()> fn) {
  if (delay < SimDuration(0)) {
    delay = SimDuration(0);
  }
  PostAt(now_ + delay, std::move(fn));
}

void Executor::ResumeAt(SimTime when, std::coroutine_handle<> handle) {
  KITE_CHECK(handle != nullptr);
  if (when < now_) {
    when = now_;
  }
  queue_.push(Event{when, next_seq_++, nullptr, handle});
}

void Executor::ResumeAfter(SimDuration delay, std::coroutine_handle<> handle) {
  if (delay < SimDuration(0)) {
    delay = SimDuration(0);
  }
  ResumeAt(now_ + delay, handle);
}

void Executor::RunEvent(Event& ev) {
  now_ = ev.at;
  ++steps_;
  if (ev.coro) {
    ev.coro.resume();
  } else {
    ev.fn();
  }
}

bool Executor::Step() {
  if (queue_.empty()) {
    return false;
  }
  // Move out of the queue before running: the handler may push new events.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  RunEvent(ev);
  return true;
}

void Executor::RunUntilIdle() {
  while (Step()) {
  }
}

void Executor::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    RunEvent(ev);
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace kite
