#include "src/sim/executor.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {

Executor::~Executor() {
  // Destroy coroutine frames still parked in the queue so long-lived server
  // loops suspended on a timer do not leak when a simulation is torn down.
  for (Event& ev : queue_) {
    if (ev.coro) {
      ev.coro.destroy();
    }
  }
  queue_.clear();
}

void Executor::Push(Event ev) {
  if (!ev.daemon) {
    ++non_daemon_pending_;
  }
  queue_.push_back(std::move(ev));
  std::push_heap(queue_.begin(), queue_.end(), EventOrder{});
}

Executor::Event Executor::Pop() {
  std::pop_heap(queue_.begin(), queue_.end(), EventOrder{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  if (!ev.daemon) {
    --non_daemon_pending_;
  }
  return ev;
}

void Executor::PostAt(SimTime when, std::function<void()> fn) {
  KITE_CHECK(fn != nullptr);
  if (when < now_) {
    when = now_;
  }
  Push(Event{when, NextTie(), next_seq_++, std::move(fn), nullptr});
}

void Executor::PostAfter(SimDuration delay, std::function<void()> fn) {
  if (delay < SimDuration(0)) {
    delay = SimDuration(0);
  }
  PostAt(now_ + delay, std::move(fn));
}

void Executor::PostDaemonAt(SimTime when, std::function<void()> fn) {
  KITE_CHECK(fn != nullptr);
  if (when < now_) {
    when = now_;
  }
  Push(Event{when, NextTie(), next_seq_++, std::move(fn), nullptr, /*daemon=*/true});
}

void Executor::PostDaemonAfter(SimDuration delay, std::function<void()> fn) {
  if (delay < SimDuration(0)) {
    delay = SimDuration(0);
  }
  PostDaemonAt(now_ + delay, std::move(fn));
}

void Executor::ResumeAt(SimTime when, std::coroutine_handle<> handle) {
  KITE_CHECK(handle != nullptr);
  if (when < now_) {
    when = now_;
  }
  Push(Event{when, NextTie(), next_seq_++, nullptr, handle});
}

void Executor::ResumeAfter(SimDuration delay, std::coroutine_handle<> handle) {
  if (delay < SimDuration(0)) {
    delay = SimDuration(0);
  }
  ResumeAt(now_ + delay, handle);
}

void Executor::RunEvent(Event& ev) {
  now_ = ev.at;
  ++steps_;
  if (ev.coro) {
    ev.coro.resume();
  } else {
    ev.fn();
  }
}

bool Executor::Step() {
  if (queue_.empty()) {
    return false;
  }
  // Move out of the queue before running: the handler may push new events.
  Event ev = Pop();
  RunEvent(ev);
  return true;
}

void Executor::RunUntilIdle() {
  // Stop once only daemon events remain: a self-reposting watchdog probe
  // would otherwise keep this loop (and simulated time) running forever.
  while (non_daemon_pending_ > 0) {
    Step();
  }
}

void Executor::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.front().at <= deadline) {
    Event ev = Pop();
    RunEvent(ev);
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

std::vector<Executor::PendingEvent> Executor::PendingEvents(size_t max) const {
  std::vector<Event const*> ptrs;
  ptrs.reserve(queue_.size());
  for (const Event& ev : queue_) {
    ptrs.push_back(&ev);
  }
  std::sort(ptrs.begin(), ptrs.end(),
            [](const Event* a, const Event* b) { return EventOrder{}(*b, *a); });
  if (ptrs.size() > max) {
    ptrs.resize(max);
  }
  std::vector<PendingEvent> out;
  out.reserve(ptrs.size());
  for (const Event* ev : ptrs) {
    out.push_back(PendingEvent{ev->at, ev->seq, static_cast<bool>(ev->coro), ev->daemon});
  }
  return out;
}

std::string Executor::FormatPendingEvents(size_t max) const {
  std::string out = StrFormat("%zu pending event(s) at t=%.9fs", queue_.size(),
                              now_.seconds());
  for (const PendingEvent& ev : PendingEvents(max)) {
    out += StrFormat("\n  at=%.9fs seq=%llu %s%s", ev.at.seconds(),
                     static_cast<unsigned long long>(ev.seq),
                     ev.is_coro ? "coroutine" : "callback",
                     ev.is_daemon ? " (daemon)" : "");
  }
  if (queue_.size() > max) {
    out += StrFormat("\n  ... %zu more", queue_.size() - max);
  }
  return out;
}

}  // namespace kite
