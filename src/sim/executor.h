// Discrete-event executor: the heart of the simulation. Single-threaded;
// events fire in (time, insertion-order) order, so runs are deterministic.
//
// Engine internals (DESIGN.md §13): events live in pool-allocated nodes with
// a small-buffer callback slot (no per-event heap allocation for callbacks up
// to kInlineCallbackBytes), keyed into a hierarchical timer wheel — 7 levels
// of 64 slots covering 2^42 ns (~73 simulated minutes) from the cursor — with
// a far-future overflow heap beyond the horizon. Dispatch drains one exact-
// timestamp slot at a time into a batch instead of heap-popping per event.
// The dispatch order is the total order (at, tie, seq), which is exactly what
// the old binary heap produced, so schedules are byte-identical with shuffle
// off.
//
// Schedule-shuffle mode (deterministic simulation testing): when enabled,
// same-timestamp events are ordered by a seeded RNG draw instead of
// insertion order. The set of events that fire at each instant is unchanged
// — only the order *within* a timestamp is permuted — so every legal
// interleaving of handler/thread wakeups at one instant can be explored by
// sweeping seeds, and any failing schedule replays exactly from its seed.
// Off by default: with shuffle off the tie key equals the insertion
// sequence number and runs are byte-identical to the pre-shuffle executor.
//
// Events scheduled *at the current time* (Post, PostAfter(0), a PostAt in
// the past) are exempt from shuffle tie randomization: they keep their
// insertion sequence number as the tie key and are dispatched after the
// already-queued same-time events, in post order. This is the documented
// Post() FIFO contract; randomizing those ties used to let a Post() fire
// before events queued earlier at the same instant, breaking callers (wake
// ordering in WaitChannel, response-before-wake in the backends) that rely
// on "post now" meaning "after everything already due now".
//
// Daemon events are likewise exempt from shuffle tie randomization: they
// never consume a draw from the shuffle RNG. Housekeeping (the health
// watchdog probe, the metric sampler tick) must not perturb schedule
// exploration — arming or disarming a daemon would otherwise shift the RNG
// stream seen by every later real event and change which interleavings a
// given seed reaches. With this rule, telemetry on/off leaves shuffled
// schedules bit-identical.
//
// Dispatch profiler (DESIGN.md §15): posting sites can be tagged with a
// static KITE_POST_SITE("label") id; when the profiler is enabled the
// executor accumulates per-site invocation counts and (sampled) wall-clock
// dispatch time in DispatchOne. All bookkeeping is host-side — it never
// touches simulated time or event ordering — and the disabled cost is one
// pointer test per dispatch, the same gating contract as tracing.
#ifndef SRC_SIM_EXECUTOR_H_
#define SRC_SIM_EXECUTOR_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/sim/time.h"

namespace kite {

// A tagged event-posting site. Registered once per source location via
// KITE_POST_SITE; the dense index keys the executor's per-site dispatch
// statistics. Labels with the same text share one site (templated or macro-
// stamped code collapses into a single row).
struct DispatchSite {
  const char* label;
  uint32_t index;
};

// Built-in site indices: events posted through an untagged overload, and
// coroutine resumptions (which carry no callsite).
inline constexpr uint32_t kDispatchSiteUntagged = 0;
inline constexpr uint32_t kDispatchSiteCoroutine = 1;

// Interns `label` in the process-global site registry, returning a stable
// pointer. Idempotent per label text. Not thread-safe — the simulator is
// single-threaded by construction.
const DispatchSite* RegisterDispatchSite(const char* label);
// Label for a registered index ("(untagged)" / "(coroutine)" for builtins).
const char* DispatchSiteLabel(uint32_t index);
size_t DispatchSiteCount();

// Tags a posting site: KITE_POST_SITE("netback/tx-complete"). Registration
// happens once (function-local static); afterwards the macro is a load.
#define KITE_POST_SITE(label_text)                                          \
  ([]() -> const ::kite::DispatchSite* {                                    \
    static const ::kite::DispatchSite* kite_site =                          \
        ::kite::RegisterDispatchSite(label_text);                           \
    return kite_site;                                                       \
  }())

// One row of the dispatch profile. `est_wall_ns` scales the sampled time up
// to the full invocation count (== sampled_wall_ns when every dispatch is
// timed, i.e. sample shift 0). Counts are exact and deterministic; wall
// times are host-clock measurements and vary run to run.
struct DispatchProfileEntry {
  const char* label;
  uint64_t invocations = 0;
  uint64_t samples = 0;
  uint64_t sampled_wall_ns = 0;
  uint64_t est_wall_ns = 0;
};

class Executor {
 public:
  // Callbacks whose captures fit in this many bytes are stored inline in the
  // pooled event node; larger ones fall back to one heap allocation. 64 bytes
  // covers this+shared_ptr+a few words, i.e. every hot-path lambda in the
  // drivers.
  static constexpr size_t kInlineCallbackBytes = 64;

  Executor() = default;
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  SimTime Now() const { return now_; }

  // Schedules fn at the given absolute time (>= Now(); earlier times clamp
  // to Now()). Accepts any nullary callable; the common small lambdas are
  // stored inline in the event node (zero heap allocations on this path).
  template <typename Fn>
  void PostAt(SimTime when, Fn&& fn) {
    Event* ev = NewEvent(when, /*daemon=*/false);
    InstallCallback(ev, std::forward<Fn>(fn));
    Insert(ev);
  }
  // Schedules fn after a relative delay (clamped at >= 0).
  template <typename Fn>
  void PostAfter(SimDuration delay, Fn&& fn) {
    if (delay < SimDuration(0)) {
      delay = SimDuration(0);
    }
    PostAt(now_ + delay, std::forward<Fn>(fn));
  }
  // Schedules fn at the current time, after already-queued same-time events
  // (FIFO — the contract holds in shuffle mode too, see the header comment).
  template <typename Fn>
  void Post(Fn&& fn) {
    PostAt(now_, std::forward<Fn>(fn));
  }

  // Site-tagged variants: identical scheduling semantics, but the event
  // carries the site's index so the dispatch profiler can attribute its
  // wall-clock cost. `site` comes from KITE_POST_SITE and must outlive the
  // executor (it always does: the registry is process-global).
  template <typename Fn>
  void PostAt(SimTime when, const DispatchSite* site, Fn&& fn) {
    Event* ev = NewEvent(when, /*daemon=*/false);
    ev->site = site->index;
    InstallCallback(ev, std::forward<Fn>(fn));
    Insert(ev);
  }
  template <typename Fn>
  void PostAfter(SimDuration delay, const DispatchSite* site, Fn&& fn) {
    if (delay < SimDuration(0)) {
      delay = SimDuration(0);
    }
    PostAt(now_ + delay, site, std::forward<Fn>(fn));
  }
  template <typename Fn>
  void Post(const DispatchSite* site, Fn&& fn) {
    PostAt(now_, site, std::forward<Fn>(fn));
  }

  // Daemon events: background housekeeping (the health watchdog's periodic
  // probe) that must not keep the simulation alive. They fire like normal
  // events while anything else is scheduled, but idle()/RunUntilIdle count
  // only non-daemon events — a self-reposting daemon loop therefore cannot
  // turn RunUntilIdle into an infinite loop, and a quiesced system still
  // quiesces with the watchdog armed.
  template <typename Fn>
  void PostDaemonAt(SimTime when, Fn&& fn) {
    Event* ev = NewEvent(when, /*daemon=*/true);
    InstallCallback(ev, std::forward<Fn>(fn));
    Insert(ev);
  }
  template <typename Fn>
  void PostDaemonAfter(SimDuration delay, Fn&& fn) {
    if (delay < SimDuration(0)) {
      delay = SimDuration(0);
    }
    PostDaemonAt(now_ + delay, std::forward<Fn>(fn));
  }
  template <typename Fn>
  void PostDaemonAt(SimTime when, const DispatchSite* site, Fn&& fn) {
    Event* ev = NewEvent(when, /*daemon=*/true);
    ev->site = site->index;
    InstallCallback(ev, std::forward<Fn>(fn));
    Insert(ev);
  }
  template <typename Fn>
  void PostDaemonAfter(SimDuration delay, const DispatchSite* site, Fn&& fn) {
    if (delay < SimDuration(0)) {
      delay = SimDuration(0);
    }
    PostDaemonAt(now_ + delay, site, std::forward<Fn>(fn));
  }

  // Schedules resumption of a coroutine. The executor owns the handle while
  // queued: if the executor is destroyed first, the coroutine frame is
  // destroyed rather than leaked.
  void ResumeAt(SimTime when, std::coroutine_handle<> handle);
  void ResumeAfter(SimDuration delay, std::coroutine_handle<> handle);

  // Runs a single event; returns false if the queue is empty. Not reentrant:
  // handlers must not call Step/RunUntil themselves (they never have).
  bool Step();
  // Runs until no non-daemon events remain (daemon events scheduled earlier
  // than the last non-daemon event still fire in order).
  void RunUntilIdle();
  // Runs events with timestamp <= deadline; Now() ends at the deadline
  // (even if the queue drained earlier) so time-window rate math is exact.
  void RunUntil(SimTime deadline);
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  // --- Schedule shuffle (deterministic simulation testing). ---
  // Randomizes tie-breaking among same-timestamp events from a seeded RNG.
  // Call before scheduling anything for full coverage; enabling mid-run only
  // affects events queued afterwards. Same seed → same schedule, always.
  // Events posted at the current instant are exempt (Post FIFO contract).
  void EnableShuffle(uint64_t seed) {
    shuffle_ = true;
    shuffle_rng_ = Rng(seed);
  }
  bool shuffle_enabled() const { return shuffle_; }

  // Number of events executed since construction (for sanity checks).
  uint64_t steps_executed() const { return steps_; }
  // Idle == no non-daemon work left. A pending daemon probe does not count:
  // it represents the watchdog watching, not the simulation doing.
  bool idle() const { return non_daemon_pending_ == 0; }
  // Pending events (diagnostics, e.g. "why did WaitUntil time out?").
  size_t queue_size() const { return pending_count_; }

  // --- Pending-queue diagnostics. ---
  // Snapshot of queued events in firing order (earliest first), truncated to
  // `max`. Lets a stuck exploration seed answer "what was the simulation
  // waiting on" from the failure artifact alone.
  struct PendingEvent {
    SimTime at;
    uint64_t seq = 0;   // Insertion order (global, monotonic).
    bool is_coro = false;
    bool is_daemon = false;
  };
  std::vector<PendingEvent> PendingEvents(size_t max = 16) const;
  // Human-readable rendering of PendingEvents plus the queue size, one event
  // per line — what WaitUntil timeouts and kite_explore aborts print.
  std::string FormatPendingEvents(size_t max = 16) const;

  // --- Dispatch profiler. ---
  // Starts attributing dispatch cost to posting sites. Invocation counts are
  // exact; wall-clock time is measured on 1-in-2^shift dispatches (default
  // 1/64) and scaled, keeping the enabled overhead a small fraction of the
  // ~50 ns dispatch fast path. All accumulation is host-side: enabling the
  // profiler never changes simulated time or event order.
  void EnableDispatchProfiler();
  bool dispatch_profiler_enabled() const { return profile_ != nullptr; }
  // Sampling granularity: wall time is measured on 1-in-2^shift dispatches.
  // 0 times every dispatch (tests); takes effect from the next Enable or
  // immediately if already enabled.
  void set_profile_sample_shift(int shift) {
    profile_sample_shift_ = shift;
    if (profile_ != nullptr) {
      profile_->sample_mask = (uint64_t{1} << shift) - 1;
    }
  }
  // Per-site rows sorted by estimated wall time (descending), label as the
  // final tie-break. Empty when the profiler was never enabled.
  std::vector<DispatchProfileEntry> DispatchProfile() const;

 private:
  // Timer-wheel geometry: 7 levels of 64 slots, 1 ns per level-0 tick. A
  // level-l slot covers 64^l ns; the whole wheel spans 2^42 ns past the
  // cursor. Anything further out waits in the overflow heap until the cursor
  // enters its 2^42 ns era.
  static constexpr int kLevelBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;          // 64
  static constexpr int kLevels = 7;
  static constexpr int kHorizonBits = kLevelBits * kLevels;       // 42
  static constexpr uint64_t kSlotMask = kSlotsPerLevel - 1;

  // A pooled event node. Exactly one of {invoke, coro} is set. The node never
  // moves while queued, so inline callbacks need no move support.
  struct Event {
    SimTime at;
    uint64_t tie;  // == seq normally; an RNG draw for shuffled future events.
    uint64_t seq;
    Event* next;   // Wheel-slot chain / pool free list.
    std::coroutine_handle<> coro;
    void (*invoke)(Event*);   // Runs the stored callable.
    void (*destroy)(Event*);  // Destroys it (null if trivially destructible).
    bool daemon;
    uint32_t site;  // DispatchSite index; fits in the pre-storage padding.
    alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
  };
  static_assert(sizeof(Event) == 128, "event node must stay two cache lines");

  template <typename Fn>
  static void InstallCallback(Event* ev, Fn&& fn) {
    using F = std::decay_t<Fn>;
    static_assert(std::is_invocable_v<F&>, "executor callbacks take no arguments");
    if constexpr (sizeof(F) <= kInlineCallbackBytes &&
                  alignof(F) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(ev->storage)) F(std::forward<Fn>(fn));
      ev->invoke = [](Event* e) { (*std::launder(reinterpret_cast<F*>(e->storage)))(); };
      if constexpr (std::is_trivially_destructible_v<F>) {
        ev->destroy = nullptr;
      } else {
        ev->destroy = [](Event* e) {
          std::launder(reinterpret_cast<F*>(e->storage))->~F();
        };
      }
    } else {
      F* boxed = new F(std::forward<Fn>(fn));
      std::memcpy(ev->storage, &boxed, sizeof(boxed));
      ev->invoke = [](Event* e) {
        F* f;
        std::memcpy(&f, e->storage, sizeof(f));
        (*f)();
      };
      ev->destroy = [](Event* e) {
        F* f;
        std::memcpy(&f, e->storage, sizeof(f));
        delete f;
      };
    }
  }

  Event* NewEvent(SimTime when, bool daemon);
  void FreeEvent(Event* ev);
  void Insert(Event* ev);       // Counts the event, then places it.
  void WheelInsert(Event* ev);  // Placement only (also used by cascades).
  void PromoteOverflow();
  // Extracts the next exact-timestamp slot (≤ limit) into batch_, advancing
  // the cursor and cascading higher wheel levels as needed. Returns false if
  // nothing is due at or before the limit.
  bool LoadNextBatch(SimTime limit);
  // Moves the cursor forward without dispatching (RunUntil deadline), then
  // cascades any level-l slot the cursor landed in so lower levels stay
  // authoritative for "earliest event".
  void JumpCursor(int64_t to_ns);
  void DispatchOne(Event* ev);
  // The profiled tail of DispatchOne: runs + reclaims the event while
  // accumulating per-site stats. Out of line so the common path stays lean.
  void ProfiledDispatch(Event* ev);
  // Appends every queued event (batch remainder, wheel, overflow) to *out.
  void CollectPending(std::vector<const Event*>* out) const;

  SimTime now_;
  // The wheel's reference point: no undelivered event is earlier. Equal to
  // now_ whenever user code can observe the executor; runs ahead of now_
  // only transiently inside LoadNextBatch cascades.
  int64_t cursor_ns_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t steps_ = 0;
  size_t pending_count_ = 0;
  size_t non_daemon_pending_ = 0;
  bool shuffle_ = false;
  Rng shuffle_rng_{0};

  Event* wheel_[kLevels][kSlotsPerLevel] = {};
  uint64_t occupied_[kLevels] = {};  // Bit s set ⇔ wheel_[l][s] non-empty.
  std::vector<Event*> overflow_;     // Min-heap by (at, tie, seq).

  // The slot currently being dispatched, sorted by (tie, seq). Events at
  // [batch_pos_, size) are still pending; same-time events posted during the
  // batch land back in the slot and form the next batch.
  std::vector<Event*> batch_;
  size_t batch_pos_ = 0;

  // Node pool: chunked storage plus a free list threaded through `next`.
  Event* free_list_ = nullptr;
  std::vector<std::unique_ptr<Event[]>> chunks_;

  // Dispatch-profiler state, allocated only when enabled: the disabled cost
  // in DispatchOne is one null test (same contract as tracing).
  struct SiteStat {
    uint64_t invocations = 0;
    uint64_t samples = 0;
    uint64_t sampled_wall_ns = 0;
  };
  struct ProfileState {
    std::vector<SiteStat> stats;  // Indexed by DispatchSite index.
    uint64_t dispatch_counter = 0;
    uint64_t sample_mask = 0;  // Time the dispatch when (ctr & mask) == 0.
  };
  std::unique_ptr<ProfileState> profile_;
  int profile_sample_shift_ = 6;  // Default: time 1-in-64 dispatches.
};

}  // namespace kite

#endif  // SRC_SIM_EXECUTOR_H_
