// Discrete-event executor: the heart of the simulation. Single-threaded;
// events fire in (time, insertion-order) order, so runs are deterministic.
#ifndef SRC_SIM_EXECUTOR_H_
#define SRC_SIM_EXECUTOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace kite {

class Executor {
 public:
  Executor() = default;
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  SimTime Now() const { return now_; }

  // Schedules fn at the given absolute time (>= Now()).
  void PostAt(SimTime when, std::function<void()> fn);
  // Schedules fn after a relative delay (clamped at >= 0).
  void PostAfter(SimDuration delay, std::function<void()> fn);
  // Schedules fn at the current time, after already-queued same-time events.
  void Post(std::function<void()> fn) { PostAt(now_, std::move(fn)); }

  // Schedules resumption of a coroutine. The executor owns the handle while
  // queued: if the executor is destroyed first, the coroutine frame is
  // destroyed rather than leaked.
  void ResumeAt(SimTime when, std::coroutine_handle<> handle);
  void ResumeAfter(SimDuration delay, std::coroutine_handle<> handle);

  // Runs a single event; returns false if the queue is empty.
  bool Step();
  // Runs until the queue drains.
  void RunUntilIdle();
  // Runs events with timestamp <= deadline; Now() ends at the deadline
  // (even if the queue drained earlier) so time-window rate math is exact.
  void RunUntil(SimTime deadline);
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  // Number of events executed since construction (for sanity checks).
  uint64_t steps_executed() const { return steps_; }
  bool idle() const { return queue_.empty(); }
  // Pending events (diagnostics, e.g. "why did WaitUntil time out?").
  size_t queue_size() const { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
    std::coroutine_handle<> coro;  // Exactly one of fn/coro is set.
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  void RunEvent(Event& ev);

  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t steps_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
};

}  // namespace kite

#endif  // SRC_SIM_EXECUTOR_H_
