// Discrete-event executor: the heart of the simulation. Single-threaded;
// events fire in (time, insertion-order) order, so runs are deterministic.
//
// Schedule-shuffle mode (deterministic simulation testing): when enabled,
// same-timestamp events are ordered by a seeded RNG draw instead of
// insertion order. The set of events that fire at each instant is unchanged
// — only the order *within* a timestamp is permuted — so every legal
// interleaving of handler/thread wakeups at one instant can be explored by
// sweeping seeds, and any failing schedule replays exactly from its seed.
// Off by default: with shuffle off the tie key equals the insertion
// sequence number and runs are byte-identical to the pre-shuffle executor.
#ifndef SRC_SIM_EXECUTOR_H_
#define SRC_SIM_EXECUTOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/sim/time.h"

namespace kite {

class Executor {
 public:
  Executor() = default;
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  SimTime Now() const { return now_; }

  // Schedules fn at the given absolute time (>= Now()).
  void PostAt(SimTime when, std::function<void()> fn);
  // Schedules fn after a relative delay (clamped at >= 0).
  void PostAfter(SimDuration delay, std::function<void()> fn);
  // Schedules fn at the current time, after already-queued same-time events.
  void Post(std::function<void()> fn) { PostAt(now_, std::move(fn)); }

  // Daemon events: background housekeeping (the health watchdog's periodic
  // probe) that must not keep the simulation alive. They fire like normal
  // events while anything else is scheduled, but idle()/RunUntilIdle count
  // only non-daemon events — a self-reposting daemon loop therefore cannot
  // turn RunUntilIdle into an infinite loop, and a quiesced system still
  // quiesces with the watchdog armed.
  void PostDaemonAt(SimTime when, std::function<void()> fn);
  void PostDaemonAfter(SimDuration delay, std::function<void()> fn);

  // Schedules resumption of a coroutine. The executor owns the handle while
  // queued: if the executor is destroyed first, the coroutine frame is
  // destroyed rather than leaked.
  void ResumeAt(SimTime when, std::coroutine_handle<> handle);
  void ResumeAfter(SimDuration delay, std::coroutine_handle<> handle);

  // Runs a single event; returns false if the queue is empty.
  bool Step();
  // Runs until no non-daemon events remain (daemon events scheduled earlier
  // than the last non-daemon event still fire in order).
  void RunUntilIdle();
  // Runs events with timestamp <= deadline; Now() ends at the deadline
  // (even if the queue drained earlier) so time-window rate math is exact.
  void RunUntil(SimTime deadline);
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  // --- Schedule shuffle (deterministic simulation testing). ---
  // Randomizes tie-breaking among same-timestamp events from a seeded RNG.
  // Call before scheduling anything for full coverage; enabling mid-run only
  // affects events queued afterwards. Same seed → same schedule, always.
  void EnableShuffle(uint64_t seed) {
    shuffle_ = true;
    shuffle_rng_ = Rng(seed);
  }
  bool shuffle_enabled() const { return shuffle_; }

  // Number of events executed since construction (for sanity checks).
  uint64_t steps_executed() const { return steps_; }
  // Idle == no non-daemon work left. A pending daemon probe does not count:
  // it represents the watchdog watching, not the simulation doing.
  bool idle() const { return non_daemon_pending_ == 0; }
  // Pending events (diagnostics, e.g. "why did WaitUntil time out?").
  size_t queue_size() const { return queue_.size(); }

  // --- Pending-queue diagnostics. ---
  // Snapshot of queued events in firing order (earliest first), truncated to
  // `max`. Lets a stuck exploration seed answer "what was the simulation
  // waiting on" from the failure artifact alone.
  struct PendingEvent {
    SimTime at;
    uint64_t seq = 0;   // Insertion order (global, monotonic).
    bool is_coro = false;
    bool is_daemon = false;
  };
  std::vector<PendingEvent> PendingEvents(size_t max = 16) const;
  // Human-readable rendering of PendingEvents plus the queue size, one event
  // per line — what WaitUntil timeouts and kite_explore aborts print.
  std::string FormatPendingEvents(size_t max = 16) const;

 private:
  struct Event {
    SimTime at;
    uint64_t tie;  // == seq normally; an RNG draw in shuffle mode.
    uint64_t seq;
    std::function<void()> fn;
    std::coroutine_handle<> coro;  // Exactly one of fn/coro is set.
    bool daemon = false;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      if (a.tie != b.tie) {
        return a.tie > b.tie;
      }
      return a.seq > b.seq;
    }
  };

  uint64_t NextTie() { return shuffle_ ? shuffle_rng_.NextU64() : next_seq_; }
  void Push(Event ev);
  Event Pop();
  void RunEvent(Event& ev);

  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t steps_ = 0;
  size_t non_daemon_pending_ = 0;
  bool shuffle_ = false;
  Rng shuffle_rng_{0};
  // A binary heap ordered by EventOrder (std::push_heap/pop_heap — the same
  // algorithm std::priority_queue wraps, kept as a plain vector so the
  // diagnostics above can walk the pending events).
  std::vector<Event> queue_;
};

}  // namespace kite

#endif  // SRC_SIM_EXECUTOR_H_
