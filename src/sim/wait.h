// Condition-variable-like primitive for coroutine actors.
//
// WaitChannel models rumprun's wait channels: a thread sleeps on a channel
// and is woken by an event handler. NotifyOne/NotifyAll resume waiters via
// the executor (never inline), matching the paper's design where interrupt
// handlers only *wake* the pusher/soft_start threads and return immediately.
//
// Destruction safety: coroutine frames parked on the channel — including
// those whose resumption is already queued in the executor — are destroyed
// with the channel, so tearing down a component (e.g. a driver domain being
// restarted) cannot leave dangling resumptions behind.
#ifndef SRC_SIM_WAIT_H_
#define SRC_SIM_WAIT_H_

#include <coroutine>
#include <deque>
#include <memory>
#include <set>

#include "src/sim/executor.h"

namespace kite {

class WaitChannel {
 public:
  explicit WaitChannel(Executor* executor) : executor_(executor) {}
  ~WaitChannel();

  WaitChannel(const WaitChannel&) = delete;
  WaitChannel& operator=(const WaitChannel&) = delete;

  class Awaiter {
   public:
    explicit Awaiter(WaitChannel* channel) : channel_(channel) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) { channel_->Park(handle); }
    void await_resume() const noexcept {}

   private:
    WaitChannel* channel_;
  };

  // co_await channel.Wait(): park until notified.
  Awaiter Wait() { return Awaiter(this); }

  // Wakes the oldest waiter (no-op when none). Resumption is posted to the
  // executor at the current time, never run inline.
  void NotifyOne();
  void NotifyAll();

  // Parks a coroutine handle (used by Awaiter and by WakeFlag below).
  void Park(std::coroutine_handle<> handle) { waiters_.push_back(handle); }

  size_t waiter_count() const { return waiters_.size(); }

 private:
  struct Resumption {
    std::coroutine_handle<> handle;
    bool cancelled = false;
  };

  Executor* executor_;
  std::deque<std::coroutine_handle<>> waiters_;
  // Wakeups already posted to the executor but not yet run.
  std::set<std::shared_ptr<Resumption>> in_flight_;
};

// One-bit wakeup flag: a thread that loops "process everything, then sleep
// unless more work arrived while I was processing". This is the exact
// semantics netback's pusher/soft_start threads need to avoid lost wakeups.
class WakeFlag {
 public:
  explicit WakeFlag(Executor* executor) : channel_(executor) {}

  // Sets the flag; wakes a sleeping waiter if any.
  void Signal() {
    signaled_ = true;
    channel_.NotifyOne();
  }

  bool signaled() const { return signaled_; }

  // Awaitable: returns immediately if signaled, else parks. Clears the flag.
  class Awaiter {
   public:
    explicit Awaiter(WakeFlag* flag) : flag_(flag) {}
    bool await_ready() const noexcept {
      if (flag_->signaled_) {
        flag_->signaled_ = false;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) { flag_->channel_.Park(handle); }
    void await_resume() const noexcept { flag_->signaled_ = false; }

   private:
    WakeFlag* flag_;
  };

  Awaiter Wait() { return Awaiter(this); }

 private:
  friend class Awaiter;
  WaitChannel channel_;
  bool signaled_ = false;
};

}  // namespace kite

#endif  // SRC_SIM_WAIT_H_
