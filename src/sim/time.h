// Simulated time. All simulation timestamps are nanoseconds since simulation
// start, wrapped in strong types so wall-clock and simulated time can never
// be confused.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <compare>
#include <cstdint>

namespace kite {

// A span of simulated time, in nanoseconds. Negative durations are allowed
// arithmetically but never scheduled.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(int64_t ns) : ns_(ns) {}

  constexpr int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration(ns_ + o.ns_); }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration(ns_ - o.ns_); }
  constexpr SimDuration operator*(int64_t k) const { return SimDuration(ns_ * k); }
  constexpr SimDuration operator/(int64_t k) const { return SimDuration(ns_ / k); }
  constexpr SimDuration& operator+=(SimDuration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration o) {
    ns_ -= o.ns_;
    return *this;
  }

 private:
  int64_t ns_ = 0;
};

constexpr SimDuration Nanos(int64_t n) { return SimDuration(n); }
constexpr SimDuration Micros(int64_t n) { return SimDuration(n * 1000); }
constexpr SimDuration Millis(int64_t n) { return SimDuration(n * 1000 * 1000); }
constexpr SimDuration Seconds(int64_t n) { return SimDuration(n * 1000 * 1000 * 1000); }
// Fractional-seconds constructor for calibration constants.
constexpr SimDuration SecondsF(double s) { return SimDuration(static_cast<int64_t>(s * 1e9)); }
constexpr SimDuration MicrosF(double us) { return SimDuration(static_cast<int64_t>(us * 1e3)); }

// An instant of simulated time.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(int64_t ns) : ns_(ns) {}

  constexpr int64_t ns() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const { return SimTime(ns_ + d.ns()); }
  constexpr SimDuration operator-(SimTime o) const { return SimDuration(ns_ - o.ns_); }

  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

 private:
  int64_t ns_ = 0;
};

}  // namespace kite

#endif  // SRC_SIM_TIME_H_
