// Virtual CPU cost model.
//
// A Vcpu serializes the simulated CPU work of one domain vCPU: work segments
// extend a single "busy-until" horizon, so concurrent actors (threads,
// interrupt handlers, hypercalls) naturally queue behind each other — the
// behaviour of rumprun's non-preemptive single-vCPU scheduler that the paper's
// thread structure is designed around.
//
// Two interfaces:
//  - Charge(cost): synchronous accounting (used from interrupt handlers and
//    hypercall paths that logically run to completion).
//  - co_await Run(cost): suspend until the CPU has executed `cost` of work
//    for this caller (used by driver threads; models queuing delay).
//
// --- CPU attribution (DESIGN.md §16) ---
//
// Orthogonally to the timing model, every nanosecond a vCPU executes can be
// credited to an interned *category* (grant copies, IRQ dispatch, netback TX
// service, app work, ...) so "where does the driver domain's CPU go?" is a
// measured number instead of a guess. The design mirrors the executor's
// dispatch sites (KITE_POST_SITE):
//
//  - KITE_CPU_CATEGORY("label") interns a label once (function-local static)
//    and yields a stable dense index.
//  - CpuScope sets the ambient category for the dynamic extent of a C++
//    scope. The simulation is single-threaded, so the ambient category is a
//    single process-global integer; nested scopes save/restore it and the
//    innermost scope wins (credit is never split).
//  - Vcpu::Charge consults the ambient category *only* when the vCPU has a
//    ledger (EnableAttribution): the disabled cost is one pointer test, and
//    attribution never changes the timing math — enabling it cannot perturb
//    a schedule.
//
// Scopes must not span a co_await: establish them tightly around the Charge
// (BmkSched::Run(cost, category) does this internally for driver threads).
//
// Charge also measures the *run-queue wait* — the gap between requesting the
// vCPU and the busy horizon granting it — into a log-linear histogram (same
// bucket geometry as the obs LatencyHistogram), making vCPU contention
// visible, not just occupancy. src/sim cannot depend on src/obs, so the raw
// ledger lives here and src/obs/cpuattr.h renders it.
#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include <array>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/executor.h"
#include "src/sim/time.h"

namespace kite {

// An interned CPU-time category. Registration is process-global and
// append-only; `index` is dense and stable for the process lifetime.
struct CpuCategory {
  const char* label;
  uint32_t index;
};

// Index 0 is the builtin bucket for work charged outside any CpuScope.
inline constexpr uint32_t kCpuUnattributedIndex = 0;

// Interns `label` (by pointer identity first, then by string compare), so
// repeated registration of the same literal is cheap and idempotent.
const CpuCategory* RegisterCpuCategory(const char* label);
// Number of registered categories (>= 1; the unattributed builtin).
size_t CpuCategoryCount();
// Label for a dense index ("?" when out of range).
const char* CpuCategoryLabel(uint32_t index);

// Use as an expression: KITE_CPU_CATEGORY("netback/tx"). The function-local
// static makes every use after the first a single load.
#define KITE_CPU_CATEGORY(label_text)                                      \
  ([]() -> const ::kite::CpuCategory* {                                    \
    static const ::kite::CpuCategory* category =                           \
        ::kite::RegisterCpuCategory(label_text);                           \
    return category;                                                       \
  }())

// Ambient category for Vcpu::Charge, process-global (the simulation is
// single-threaded). Restores the previous category on destruction.
class CpuScope {
 public:
  explicit CpuScope(const CpuCategory* category);
  ~CpuScope();

  CpuScope(const CpuScope&) = delete;
  CpuScope& operator=(const CpuScope&) = delete;

 private:
  uint32_t saved_;
};

// The category Charge would credit right now (kCpuUnattributedIndex outside
// any scope).
uint32_t CurrentCpuCategory();

// Run-queue wait distribution: HdrHistogram-style log-linear buckets over
// nanoseconds, the same geometry as the obs LatencyHistogram (32 sub-buckets
// per octave, ≤ ~3.1% relative error) so renderers can treat the two
// interchangeably. Lives in src/sim because Vcpu records into it and src/sim
// cannot depend on src/obs.
class CpuWaitHistogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 32
  static constexpr int kNumBuckets =
      (63 - kSubBucketBits) * kSubBuckets + 2 * kSubBuckets;

  static int BucketIndex(uint64_t v) {
    if (v < 2 * kSubBuckets) {
      return static_cast<int>(v);
    }
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBucketBits;
    return (msb - kSubBucketBits) * kSubBuckets + static_cast<int>(v >> shift);
  }

  static uint64_t BucketLowerBound(int index) {
    if (index < 2 * kSubBuckets) {
      return static_cast<uint64_t>(index);
    }
    const int octave = index / kSubBuckets;  // >= 2
    const int sub = index % kSubBuckets;
    return static_cast<uint64_t>(sub + kSubBuckets) << (octave - 1);
  }

  void Record(uint64_t value_ns) {
    // Zero waits — the uncontended common case — are only counted, never
    // bucketed: Percentile() derives the implied zero bucket from
    // count_ - nonzero_, keeping the Charge hot path at one increment.
    ++count_;
    if (value_ns == 0) {
      return;
    }
    ++nonzero_;
    if (value_ns > max_) {
      max_ = value_ns;
    }
    sum_ += value_ns;
    ++buckets_[BucketIndex(value_ns)];
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }

  // Nearest-rank percentile (p in [0,100]) reported as the lower bound of the
  // bucket holding that rank. Empty histogram → 0.
  uint64_t Percentile(double p) const;

 private:
  uint64_t count_ = 0;
  uint64_t nonzero_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  std::array<uint64_t, kNumBuckets> buckets_{};
};

// Per-vCPU attribution state: busy nanoseconds by category index (grows on
// demand as categories register), plus the vCPU-wide run-queue wait
// distribution. Read via Vcpu accessors or directly by src/obs/cpuattr.
// Deliberately minimal — one busy counter per category, one shared wait
// histogram — so the enabled Charge hot path is a handful of increments
// (bench_engine bounds the overhead in CI).
struct CpuLedger {
  std::vector<uint64_t> busy_ns;  // Indexed by category.
  CpuWaitHistogram wait_hist;
};

class Vcpu {
 public:
  explicit Vcpu(Executor* executor) : executor_(executor) {}

  Executor* executor() const { return executor_; }

  // Accounts `cost` of CPU work starting no earlier than now and no earlier
  // than the end of previously queued work. Returns the completion time.
  SimTime Charge(SimDuration cost);

  // Awaitable that resumes once `cost` of work has been executed.
  class RunAwaiter {
   public:
    RunAwaiter(Vcpu* cpu, SimDuration cost) : cpu_(cpu), cost_(cost) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      SimTime done = cpu_->Charge(cost_);
      cpu_->executor_->ResumeAt(done, handle);
    }
    void await_resume() const noexcept {}

   private:
    Vcpu* cpu_;
    SimDuration cost_;
  };

  RunAwaiter Run(SimDuration cost) { return RunAwaiter(this, cost); }
  // Cooperative yield: requeue behind any pending work.
  RunAwaiter Yield() { return RunAwaiter(this, SimDuration(0)); }

  // Total CPU time consumed since construction (for utilization reports).
  // With attribution enabled the total is derived from the ledger (plus any
  // busy time accumulated before enabling): reads are rare and O(#categories)
  // is trivial, while the Charge hot path saves one read-modify-write.
  SimDuration busy_total() const {
    if (ledger_ == nullptr) {
      return busy_total_;
    }
    uint64_t total = 0;
    for (uint64_t ns : ledger_->busy_ns) {
      total += ns;
    }
    return busy_total_ + Nanos(static_cast<int64_t>(total));
  }
  SimTime free_at() const { return free_at_; }

  // Utilization over a window, given busy_total() sampled at window start.
  // Returns the *raw* ratio: a single-horizon vCPU can have more simulated
  // work queued against it than the window holds (overcommit from concurrent
  // actors), and that signal must survive to the reports. Clamp at render
  // time only (tables, percent gauges).
  static double Utilization(SimDuration busy_at_start, SimDuration busy_at_end,
                            SimDuration window) {
    if (window.ns() <= 0) {
      return 0.0;
    }
    return static_cast<double>((busy_at_end - busy_at_start).ns()) /
           static_cast<double>(window.ns());
  }

  // --- Attribution (accounting-only; see file comment). ---
  // Allocates the ledger; every subsequent Charge credits the ambient
  // category. Idempotent. Never changes Charge's timing result.
  void EnableAttribution();
  bool attribution_enabled() const { return ledger_ != nullptr; }
  // Null until EnableAttribution.
  const CpuLedger* ledger() const { return ledger_.get(); }
  // Busy nanoseconds credited to one category (0 when disabled or the
  // category never ran here).
  SimDuration attributed_busy(uint32_t category) const;

 private:
  void RecordAttribution(SimDuration cost, SimDuration wait);

  Executor* executor_;
  SimTime free_at_;
  SimDuration busy_total_;
  std::unique_ptr<CpuLedger> ledger_;
};

// Windowed busy-time sampling: the one code path benches and workloads use
// for "CPU over this phase" numbers (CPU%, µs/op), replacing ad-hoc
// busy_total() diffing. Construct at the start of the phase; read busy() /
// utilization() at the end. Values are raw (unclamped) — see
// Vcpu::Utilization.
class CpuUsageSample {
 public:
  explicit CpuUsageSample(const Vcpu* cpu)
      : cpu_(cpu),
        busy_at_start_(cpu->busy_total()),
        started_at_(cpu->executor()->Now()) {}

  // Busy time consumed since construction.
  SimDuration busy() const { return cpu_->busy_total() - busy_at_start_; }
  // Utilization over the elapsed window (construction → now).
  double utilization() const {
    return Vcpu::Utilization(busy_at_start_, cpu_->busy_total(),
                             cpu_->executor()->Now() - started_at_);
  }
  // Utilization over an explicit window.
  double utilization(SimDuration window) const {
    return Vcpu::Utilization(busy_at_start_, cpu_->busy_total(), window);
  }
  SimTime started_at() const { return started_at_; }

 private:
  const Vcpu* cpu_;
  SimDuration busy_at_start_;
  SimTime started_at_;
};

}  // namespace kite

#endif  // SRC_SIM_CPU_H_
