// Virtual CPU cost model.
//
// A Vcpu serializes the simulated CPU work of one domain vCPU: work segments
// extend a single "busy-until" horizon, so concurrent actors (threads,
// interrupt handlers, hypercalls) naturally queue behind each other — the
// behaviour of rumprun's non-preemptive single-vCPU scheduler that the paper's
// thread structure is designed around.
//
// Two interfaces:
//  - Charge(cost): synchronous accounting (used from interrupt handlers and
//    hypercall paths that logically run to completion).
//  - co_await Run(cost): suspend until the CPU has executed `cost` of work
//    for this caller (used by driver threads; models queuing delay).
#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include <coroutine>
#include <cstdint>

#include "src/sim/executor.h"
#include "src/sim/time.h"

namespace kite {

class Vcpu {
 public:
  explicit Vcpu(Executor* executor) : executor_(executor) {}

  Executor* executor() const { return executor_; }

  // Accounts `cost` of CPU work starting no earlier than now and no earlier
  // than the end of previously queued work. Returns the completion time.
  SimTime Charge(SimDuration cost);

  // Awaitable that resumes once `cost` of work has been executed.
  class RunAwaiter {
   public:
    RunAwaiter(Vcpu* cpu, SimDuration cost) : cpu_(cpu), cost_(cost) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      SimTime done = cpu_->Charge(cost_);
      cpu_->executor_->ResumeAt(done, handle);
    }
    void await_resume() const noexcept {}

   private:
    Vcpu* cpu_;
    SimDuration cost_;
  };

  RunAwaiter Run(SimDuration cost) { return RunAwaiter(this, cost); }
  // Cooperative yield: requeue behind any pending work.
  RunAwaiter Yield() { return RunAwaiter(this, SimDuration(0)); }

  // Total CPU time consumed since construction (for utilization reports).
  SimDuration busy_total() const { return busy_total_; }
  SimTime free_at() const { return free_at_; }

  // Utilization over a window, given busy_total() sampled at window start.
  static double Utilization(SimDuration busy_at_start, SimDuration busy_at_end,
                            SimDuration window) {
    if (window.ns() <= 0) {
      return 0.0;
    }
    double u = static_cast<double>((busy_at_end - busy_at_start).ns()) /
               static_cast<double>(window.ns());
    return u > 1.0 ? 1.0 : u;
  }

 private:
  Executor* executor_;
  SimTime free_at_;
  SimDuration busy_total_;
};

}  // namespace kite

#endif  // SRC_SIM_CPU_H_
