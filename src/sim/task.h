// Coroutine task type for simulation actors.
//
// A Task is an eager, detached coroutine: it runs until its first suspension
// when called, and its frame self-destroys on completion (final_suspend is
// suspend_never). While suspended, the frame is owned by exactly one parking
// place — the Executor queue (timer waits) or a WaitChannel (condition waits)
// — whose destructor destroys still-parked frames, so simulations can be torn
// down mid-run without leaks.
//
// This mirrors the paper's threading model directly: rumprun BMK threads are
// cooperative and non-preemptive, which is exactly what single-threaded
// coroutines give us.
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <exception>

#include "src/sim/executor.h"
#include "src/sim/time.h"

namespace kite {

class Task {
 public:
  struct promise_type {
    Task get_return_object() noexcept { return Task{}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };
};

// co_await SleepFor(executor, d): park in the executor until Now() + d.
class SleepAwaiter {
 public:
  SleepAwaiter(Executor* executor, SimDuration delay) : executor_(executor), delay_(delay) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) { executor_->ResumeAfter(delay_, handle); }
  void await_resume() const noexcept {}

 private:
  Executor* executor_;
  SimDuration delay_;
};

inline SleepAwaiter SleepFor(Executor* executor, SimDuration delay) {
  return SleepAwaiter(executor, delay);
}

inline SleepAwaiter SleepUntil(Executor* executor, SimTime when) {
  return SleepAwaiter(executor, when - executor->Now());
}

}  // namespace kite

#endif  // SRC_SIM_TASK_H_
