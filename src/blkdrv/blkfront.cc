#include "src/blkdrv/blkfront.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/obs/flow.h"

namespace kite {
namespace {

// Data pages kept persistently granted: enough to fill the ring with
// maximum-sized indirect requests.
constexpr size_t kPoolPages = kBlkRingSize * kBlkMaxIndirectSegments;
constexpr size_t kIndirectPoolPages = kBlkRingSize;

}  // namespace

Blkfront::Blkfront(Domain* guest, DomId backend_dom, int devid,
                   std::function<void()> on_connected)
    : guest_(guest),
      hv_(guest->hypervisor()),
      backend_dom_(backend_dom),
      devid_(devid),
      on_connected_(std::move(on_connected)) {
  frontend_path_ = FrontendPath(guest->id(), "vbd", devid);
  backend_path_ = BackendPath(backend_dom, "vbd", guest->id(), devid);
  MetricRegistry* reg = hv_->metrics();
  const std::string dev = StrFormat("xvd%d", devid);
  req_ring_ns_ = reg->latency(guest->name(), dev, "req_ring_ns");
  op_complete_ns_ = reg->latency(guest->name(), dev, "op_complete_ns");
  XenbusClient bus(&hv_->store(), guest_->id());
  bus.SwitchState(frontend_path_, XenbusState::kInitialising);
  WatchBackendState();
  // Watch our own backend-id link: rewritten by the toolstack when the
  // device is handed to a replacement backend domain after a crash.
  relink_watch_ = guest_->StoreWatch(frontend_path_ + "/backend-id", "relink",
                                     [this](const std::string&, const std::string&) {
                                       OnToolstackRelink();
                                     });
}

Blkfront::~Blkfront() {
  *alive_ = false;
  if (backend_watch_ != 0) {
    hv_->store().RemoveWatch(backend_watch_);
  }
  if (relink_watch_ != 0) {
    hv_->store().RemoveWatch(relink_watch_);
  }
  if (port_ != kInvalidPort) {
    hv_->EventClose(guest_, port_);
  }
}

void Blkfront::WatchBackendState() {
  backend_watch_ = guest_->StoreWatch(backend_path_ + "/state", "backend-state",
                                      [this](const std::string&, const std::string&) {
                                        OnBackendStateChange();
                                      });
}

void Blkfront::OnBackendStateChange() {
  XenbusClient bus(&hv_->store(), guest_->id());
  const XenbusState state = bus.ReadState(backend_path_);
  if (state == XenbusState::kInitWait || state == XenbusState::kInitialised ||
      state == XenbusState::kConnected) {
    backend_was_live_ = true;
  }
  if (state == XenbusState::kInitWait && !published_) {
    PublishAndInitialise();
    return;
  }
  if (state == XenbusState::kConnected && !connected_) {
    connected_ = true;
    bus.SwitchState(frontend_path_, XenbusState::kConnected);
    if (on_connected_) {
      on_connected_();
    }
    PumpQueue();
  }
  // Backend death: an explicit Closing/Closed transition, or its state node
  // vanishing after it had been live (domain destruction).
  const bool gone = state == XenbusState::kUnknown && backend_was_live_ &&
                    !hv_->store().Exists(backend_path_ + "/state");
  if (state == XenbusState::kClosing || state == XenbusState::kClosed || gone) {
    HandleBackendDeath();
  }
}

void Blkfront::HandleBackendDeath() {
  connected_ = false;
  backend_was_live_ = false;
  if (!published_) {
    return;  // Nothing granted yet; relink alone will restart the handshake.
  }
  published_ = false;
  XenbusClient bus(&hv_->store(), guest_->id());
  bus.SwitchState(frontend_path_, XenbusState::kClosed);
  // Requeue every unacknowledged request at the FRONT of the chunk queue in
  // original submission order (the in_flight_ map is keyed by monotonically
  // increasing ids, so reverse iteration + push_front preserves order).
  // Writes the backend acked are already durable on the physical disk, which
  // survives the crash; requeued writes simply re-execute — idempotent — so
  // no acknowledged write is ever lost and no unacked write vanishes.
  for (auto it = in_flight_.rbegin(); it != in_flight_.rend(); ++it) {
    InFlight& f = it->second;
    Chunk chunk;
    chunk.op = f.op;
    chunk.op_offset = f.op_offset;
    chunk.disk_offset = f.op->base_offset + static_cast<int64_t>(f.op_offset);
    chunk.length = f.length;
    chunk.is_flush = f.is_flush;
    --f.op->outstanding;
    ++f.op->chunks_pending;
    ++requests_requeued_;
    queue_.push_front(std::move(chunk));
  }
  in_flight_.clear();
  // Reclaim every granted page (EndAccess succeeds because DestroyDomain
  // force-dropped the dead backend's mappings), then drop the ring and pools;
  // they are rebuilt against the replacement backend's feature set.
  for (PoolPage& p : pool_) {
    guest_->grant_table().EndAccess(p.gref);
  }
  for (PoolPage& p : indirect_pool_) {
    guest_->grant_table().EndAccess(p.gref);
  }
  guest_->grant_table().EndAccess(ring_gref_);
  ring_gref_ = kInvalidGrantRef;
  pool_.clear();
  indirect_pool_.clear();
  free_pages_.clear();
  free_indirect_.clear();
  ring_.reset();
  shared_.reset();
  ring_page_.reset();
  hv_->EventClose(guest_, port_);
  port_ = kInvalidPort;
  if (backend_watch_ != 0) {
    hv_->store().RemoveWatch(backend_watch_);
    backend_watch_ = 0;
  }
}

void Blkfront::OnToolstackRelink() {
  auto id = guest_->StoreReadInt(frontend_path_ + "/backend-id");
  if (!id.has_value()) {
    if (!hv_->store().Exists(frontend_path_ + "/backend-id")) {
      return;  // No toolstack link yet; the watch fires again when written.
    }
    // The key exists but the read failed (fault injection): a missed relink
    // would strand the guest, so retry until the write is visible.
    hv_->executor()->PostAfter(Millis(1), KITE_POST_SITE("blkfront/relink-retry"),
                               [this, alive = alive_] {
      if (*alive) {
        OnToolstackRelink();
      }
    });
    return;
  }
  if (static_cast<DomId>(*id) == backend_dom_) {
    return;  // Registration fire, or a rewrite of the same link.
  }
  HandleBackendDeath();  // No-op if the death watch already cleaned up.
  backend_dom_ = static_cast<DomId>(*id);
  backend_path_ = BackendPath(backend_dom_, "vbd", guest_->id(), devid_);
  ++recoveries_;
  XenbusClient bus(&hv_->store(), guest_->id());
  bus.SwitchState(frontend_path_, XenbusState::kInitialising);
  // The new watch fires once on registration: if the replacement backend is
  // already advertising InitWait we publish immediately, otherwise when it
  // gets there. Queued + requeued chunks drain once it reports Connected.
  WatchBackendState();
}

void Blkfront::PublishAndInitialise() {
  published_ = true;
  // Read the backend's advertised properties (paper §4.4 "Initialization").
  capacity_bytes_ =
      guest_->StoreReadInt(backend_path_ + "/sectors").value_or(0) *
      static_cast<int64_t>(kSectorSize);
  persistent_ = guest_->StoreReadInt(backend_path_ + "/feature-persistent").value_or(0) == 1;
  flush_supported_ =
      guest_->StoreReadInt(backend_path_ + "/feature-flush-cache").value_or(0) == 1;
  max_indirect_ = static_cast<int>(
      guest_->StoreReadInt(backend_path_ + "/feature-max-indirect-segments").value_or(0));
  if (max_indirect_ > kBlkMaxIndirectSegments) {
    max_indirect_ = kBlkMaxIndirectSegments;
  }

  ring_page_ = AllocPage();
  shared_ = std::make_shared<BlkSharedRing>(kBlkRingSize);
  ring_page_->object = shared_;
  ring_ = std::make_unique<BlkFrontRing>(shared_.get());
  ring_gref_ = guest_->grant_table().GrantAccess(backend_dom_, ring_page_, false);

  pool_.resize(kPoolPages);
  for (uint16_t i = 0; i < kPoolPages; ++i) {
    pool_[i].page = AllocPage();
    pool_[i].gref = guest_->grant_table().GrantAccess(backend_dom_, pool_[i].page, false);
    free_pages_.push_back(i);
  }
  indirect_pool_.resize(kIndirectPoolPages);
  for (uint16_t i = 0; i < kIndirectPoolPages; ++i) {
    indirect_pool_[i].page = AllocPage();
    indirect_pool_[i].gref =
        guest_->grant_table().GrantAccess(backend_dom_, indirect_pool_[i].page, true);
    free_indirect_.push_back(i);
  }

  port_ = hv_->EventAllocUnbound(guest_, backend_dom_);
  hv_->EventSetHandler(guest_, port_, [this] { OnIrq(); });

  guest_->StoreWriteInt(frontend_path_ + "/ring-ref", ring_gref_);
  guest_->StoreWriteInt(frontend_path_ + "/event-channel", port_);
  guest_->StoreWrite(frontend_path_ + "/protocol", "x86_64-abi");
  guest_->StoreWriteInt(frontend_path_ + "/feature-persistent", persistent_ ? 1 : 0);

  XenbusClient bus(&hv_->store(), guest_->id());
  bus.SwitchState(frontend_path_, XenbusState::kInitialised);
  // Note: backend_watch_ stays as registered by the constructor / relink;
  // it is the same backend directory that advertised InitWait.
}

void Blkfront::Read(int64_t offset, size_t length, Buffer* out, IoCallback cb) {
  KITE_CHECK(offset % kSectorSize == 0 && length % kSectorSize == 0)
      << "block I/O must be sector-aligned";
  auto op = std::make_shared<PendingOp>();
  op->cb = std::move(cb);
  op->out = out;
  op->base_offset = offset;
  op->length = length;
  op->is_read = true;
  if (out != nullptr) {
    out->assign(length, 0);
  }
  EnqueueOp(std::move(op), /*is_flush=*/false);
}

void Blkfront::Write(int64_t offset, Buffer data, IoCallback cb) {
  KITE_CHECK(offset % kSectorSize == 0 && data.size() % kSectorSize == 0)
      << "block I/O must be sector-aligned";
  auto op = std::make_shared<PendingOp>();
  op->cb = std::move(cb);
  op->data = std::move(data);
  op->base_offset = offset;
  op->length = op->data.size();
  op->is_read = false;
  EnqueueOp(std::move(op), /*is_flush=*/false);
}

void Blkfront::Flush(IoCallback cb) {
  auto op = std::make_shared<PendingOp>();
  op->cb = std::move(cb);
  op->length = 0;
  EnqueueOp(std::move(op), /*is_flush=*/true);
}

void Blkfront::EnqueueOp(std::shared_ptr<PendingOp> op, bool is_flush) {
  op->start_ns = hv_->executor()->Now().ns();
  if (is_flush || op->length == 0) {
    Chunk chunk;
    op->chunks_pending = 1;
    chunk.op = std::move(op);
    chunk.is_flush = true;
    queue_.push_back(std::move(chunk));
    PumpQueue();
    return;
  }
  // Split into chunks of at most one ring request each.
  const size_t max_chunk =
      (max_indirect_ > 0 ? static_cast<size_t>(max_indirect_)
                         : static_cast<size_t>(kBlkMaxDirectSegments)) *
      kPageSize;
  size_t op_offset = 0;
  while (op_offset < op->length) {
    Chunk chunk;
    chunk.op = op;
    chunk.disk_offset = op->base_offset + static_cast<int64_t>(op_offset);
    chunk.op_offset = op_offset;
    chunk.length = std::min(max_chunk, op->length - op_offset);
    op_offset += chunk.length;
    ++op->chunks_pending;
    queue_.push_back(std::move(chunk));
  }
  PumpQueue();
}

void Blkfront::PumpQueue() {
  if (!connected_) {
    return;
  }
  bool pushed = false;
  while (!queue_.empty()) {
    if (!SubmitChunk(queue_.front())) {
      break;  // Ring or pool exhausted; retried on the next response.
    }
    queue_.pop_front();
    pushed = true;
  }
  if (pushed && ring_->PushRequests()) {
    hv_->EventSend(guest_, port_);
  }
}

bool Blkfront::SubmitChunk(const Chunk& chunk) {
  if (ring_->Full()) {
    return false;
  }
  {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("blkfront/io"));
    guest_->vcpu(0)->Charge(per_request_cost_);
  }

  const uint64_t id = next_req_id_++;
  BlkRequest req;
  req.id = id;
  req.sector_number = static_cast<uint64_t>(chunk.disk_offset) / kSectorSize;

  InFlight inflight;
  inflight.op = chunk.op;
  inflight.op_offset = chunk.op_offset;
  inflight.length = chunk.length;
  inflight.is_read = chunk.op->is_read;
  inflight.is_flush = chunk.is_flush;

  if (chunk.is_flush) {
    req.op = BlkOp::kFlush;
    req.nr_segments = 0;
  } else {
    // Build segments over pool pages.
    const size_t pages_needed = (chunk.length + kPageSize - 1) / kPageSize;
    const bool need_indirect = pages_needed > kBlkMaxDirectSegments;
    if (need_indirect && (max_indirect_ == 0 || free_indirect_.empty())) {
      return false;  // Shouldn't happen: chunks sized to capability.
    }
    if (free_pages_.size() < pages_needed) {
      return false;
    }
    std::vector<BlkSegment> segs;
    segs.reserve(pages_needed);
    size_t remaining = chunk.length;
    size_t chunk_pos = 0;
    for (size_t p = 0; p < pages_needed; ++p) {
      const uint16_t page_id = free_pages_.back();
      free_pages_.pop_back();
      inflight.page_ids.push_back(page_id);
      const size_t n = std::min(kPageSize, remaining);
      BlkSegment seg;
      seg.gref = pool_[page_id].gref;
      seg.first_sect = 0;
      seg.last_sect = static_cast<uint8_t>((n + kSectorSize - 1) / kSectorSize - 1);
      segs.push_back(seg);
      if (!chunk.op->is_read) {
        // Copy write payload into the granted page.
        const size_t avail = chunk.op->data.size() - (chunk.op_offset + chunk_pos);
        const size_t copy_n = std::min(n, avail);
        std::copy_n(chunk.op->data.begin() + chunk.op_offset + chunk_pos, copy_n,
                    pool_[page_id].page->data.begin());
      }
      remaining -= n;
      chunk_pos += n;
    }
    {
      CpuScope cpu_scope(KITE_CPU_CATEGORY("blkfront/io"));
      guest_->vcpu(0)->Charge(
          Nanos(static_cast<int64_t>(copy_ns_per_byte_ * chunk.length)));
    }

    if (need_indirect) {
      const uint16_t ind_id = free_indirect_.back();
      free_indirect_.pop_back();
      inflight.indirect_page_id = ind_id;
      inflight.used_indirect = true;
      auto seg_page = std::make_shared<IndirectSegmentPage>(std::move(segs));
      indirect_pool_[ind_id].page->object = seg_page;
      req.op = BlkOp::kIndirect;
      req.indirect_op = chunk.op->is_read ? BlkOp::kRead : BlkOp::kWrite;
      req.indirect_gref = indirect_pool_[ind_id].gref;
      req.nr_indirect_segments = static_cast<uint16_t>(seg_page->size());
      ++indirect_requests_;
    } else {
      req.op = chunk.op->is_read ? BlkOp::kRead : BlkOp::kWrite;
      req.nr_segments = static_cast<uint8_t>(segs.size());
      std::copy(segs.begin(), segs.end(), req.segments.begin());
    }
  }

  ++chunk.op->outstanding;
  --chunk.op->chunks_pending;
  const SimTime now = hv_->executor()->Now();
  const uint32_t ring_index = ring_->req_prod_pvt();
  inflight.submit_ns = now.ns();
  inflight.ring_index = ring_index;
  in_flight_[id] = std::move(inflight);
  ring_->ProduceRequest(req, now.ns());
  ++requests_sent_;
  if (EventTracer* t = hv_->tracer(); t != nullptr && t->enabled()) {
    t->FlowBegin(guest_->id(), 0, "blk", "req_submit", now,
                 MakeFlowId(FlowKind::kBlk, guest_->id(), devid_, ring_index),
                 per_request_cost_);
  }
  return true;
}

void Blkfront::OnIrq() {
  bool progressed = false;
  do {
    while (ring_->HasUnconsumedResponses()) {
      BlkResponse rsp = ring_->ConsumeResponse();
      CompleteRequest(rsp.id, rsp.status == BlkStatus::kOkay);
      progressed = true;
    }
  } while (ring_->FinalCheckForResponses());
  if (progressed) {
    PumpQueue();
  }
}

void Blkfront::CompleteRequest(uint64_t id, bool ok) {
  auto it = in_flight_.find(id);
  if (it == in_flight_.end()) {
    return;
  }
  InFlight inflight = std::move(it->second);
  in_flight_.erase(it);

  const SimTime now = hv_->executor()->Now();
  if (now.ns() >= inflight.submit_ns) {
    req_ring_ns_->Record(static_cast<uint64_t>(now.ns() - inflight.submit_ns));
  }
  if (EventTracer* t = hv_->tracer(); t != nullptr && t->enabled()) {
    t->FlowEnd(guest_->id(), 0, "blk", "req_complete", now,
               MakeFlowId(FlowKind::kBlk, guest_->id(), devid_, inflight.ring_index),
               per_request_cost_);
  }

  if (inflight.is_read && ok) {
    {
      CpuScope cpu_scope(KITE_CPU_CATEGORY("blkfront/io"));
      guest_->vcpu(0)->Charge(
          Nanos(static_cast<int64_t>(copy_ns_per_byte_ * inflight.length)));
    }
    if (inflight.op->out != nullptr) {
      size_t copied = 0;
      for (uint16_t page_id : inflight.page_ids) {
        const size_t n = std::min(kPageSize, inflight.length - copied);
        std::copy_n(pool_[page_id].page->data.begin(), n,
                    inflight.op->out->begin() + inflight.op_offset + copied);
        copied += n;
        if (copied >= inflight.length) {
          break;
        }
      }
    }
  }
  // Return pool pages. (With persistent grants the grant itself stays.)
  for (uint16_t page_id : inflight.page_ids) {
    free_pages_.push_back(page_id);
  }
  if (inflight.used_indirect) {
    free_indirect_.push_back(inflight.indirect_page_id);
  }
  FinishOpPart(inflight.op, ok);
}

void Blkfront::FinishOpPart(const std::shared_ptr<PendingOp>& op, bool ok) {
  if (!ok) {
    op->ok = false;
  }
  --op->outstanding;
  // The op completes when every chunk has been submitted and responded. A
  // chunk still in queue_ keeps the op alive through its shared_ptr.
  if (op->outstanding == 0 && op->chunks_pending == 0) {
    ++ops_completed_;
    const int64_t now_ns = hv_->executor()->Now().ns();
    if (now_ns >= op->start_ns) {
      op_complete_ns_->Record(static_cast<uint64_t>(now_ns - op->start_ns));
    }
    if (op->cb) {
      auto cb = std::move(op->cb);
      op->cb = nullptr;
      cb(op->ok);
    }
  }
}

}  // namespace kite
