#include "src/blkdrv/blkback.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/obs/flow.h"

namespace kite {

// --- BlkbackInstance. ---

BlkbackInstance::BlkbackInstance(Domain* backend, BmkSched* sched,
                                 const OsCostProfile* costs, BlkbackParams params,
                                 BlockDevice* disk, DomId frontend_dom, int devid)
    : backend_(backend),
      hv_(backend->hypervisor()),
      sched_(sched),
      costs_(costs),
      params_(params),
      disk_(disk),
      frontend_dom_(frontend_dom),
      devid_(devid),
      wake_(sched->executor()) {
  backend_path_ = BackendPath(backend->id(), "vbd", frontend_dom, devid);
  frontend_path_ = FrontendPath(frontend_dom, "vbd", devid);
  MetricRegistry* reg = hv_->metrics();
  const std::string dev = StrFormat("vbd%d.%d", frontend_dom_, devid_);
  requests_handled_ = reg->counter(backend->name(), dev, "requests_handled");
  device_ops_ = reg->counter(backend->name(), dev, "device_ops");
  segments_handled_ = reg->counter(backend->name(), dev, "segments_handled");
  persistent_hits_ = reg->counter(backend->name(), dev, "persistent_hits");
  indirect_requests_ = reg->counter(backend->name(), dev, "indirect_requests");
  bad_requests_ = reg->counter(backend->name(), dev, "bad_request");
  indirect_map_fails_ = reg->counter(backend->name(), dev, "indirect_map_fail");
  req_queue_ns_ = reg->latency(backend->name(), dev, "req_queue_ns");
  req_service_ns_ = reg->latency(backend->name(), dev, "req_service_ns");
  device_ns_ = reg->latency(backend->name(), dev, "device_ns");
}

BlkbackInstance::~BlkbackInstance() {
  *alive_ = false;
  // Normally BeginShutdown already unregistered; the driver-destructor path
  // tears instances down without it, and a stale sampler would dangle.
  if (health_id_ != 0 && hv_->health() != nullptr) {
    hv_->health()->Unregister(health_id_);
    health_id_ = 0;
  }
  if (port_ != kInvalidPort) {
    hv_->EventClose(backend_, port_);
  }
}

bool BlkbackInstance::RingQuiescent(std::string* detail) const {
  if (ring_ == nullptr) {
    // Never connected: nothing to audit.
    return true;
  }
  if (ring_->UnconsumedRequests() != 0) {
    if (detail != nullptr) {
      *detail = StrFormat("vbd%d.%d: %u published request(s) never consumed",
                          frontend_dom_, devid_, ring_->UnconsumedRequests());
    }
    return false;
  }
  if (ring_->rsp_prod_pvt() != ring_->req_cons()) {
    if (detail != nullptr) {
      *detail = StrFormat("vbd%d.%d: consumed %u request(s) but produced %u response(s)",
                          frontend_dom_, devid_, ring_->req_cons(), ring_->rsp_prod_pvt());
    }
    return false;
  }
  if (ring_->unpushed_responses() != 0) {
    if (detail != nullptr) {
      *detail = StrFormat("vbd%d.%d: %u staged response(s) never pushed",
                          frontend_dom_, devid_, ring_->unpushed_responses());
    }
    return false;
  }
  return true;
}

void BlkbackInstance::Advertise() {
  // Paper §4.4: advertise sector geometry and features via xenstore.
  backend_->StoreWriteInt(backend_path_ + "/sectors",
                          disk_->capacity_bytes() / static_cast<int64_t>(kSectorSize));
  backend_->StoreWriteInt(backend_path_ + "/sector-size", kSectorSize);
  backend_->StoreWriteInt(backend_path_ + "/feature-flush-cache", 1);
  backend_->StoreWriteInt(backend_path_ + "/feature-persistent",
                          params_.persistent_grants ? 1 : 0);
  backend_->StoreWriteInt(backend_path_ + "/feature-max-indirect-segments",
                          params_.indirect_segments ? params_.max_indirect : 0);
  XenbusClient bus(&hv_->store(), backend_->id());
  bus.SwitchState(backend_path_, XenbusState::kInitWait);
}

bool BlkbackInstance::Connect() {
  auto ring_ref = backend_->StoreReadInt(frontend_path_ + "/ring-ref");
  auto evt = backend_->StoreReadInt(frontend_path_ + "/event-channel");
  if (!ring_ref || !evt) {
    return false;
  }
  frontend_persistent_ =
      backend_->StoreReadInt(frontend_path_ + "/feature-persistent").value_or(0) == 1;

  ring_map_ = hv_->GrantMap(backend_, frontend_dom_, static_cast<GrantRef>(*ring_ref),
                            /*write_access=*/true);
  if (!ring_map_.valid()) {
    return false;
  }
  auto* shared = ring_map_.page()->As<BlkSharedRing>();
  if (shared == nullptr) {
    return false;
  }
  ring_ = std::make_unique<BlkBackRing>(shared);

  port_ = hv_->EventBindInterdomain(backend_, frontend_dom_, static_cast<EvtPort>(*evt));
  if (port_ == kInvalidPort) {
    return false;
  }
  // Handler only wakes the request thread (paper §3.3).
  hv_->EventSetHandler(backend_, port_, [this] { wake_.Signal(); });

  last_active_ = sched_->executor()->Now();
  threads_running_ = 1;
  sched_->Spawn(StrFormat("blkback.%d.%d", frontend_dom_, devid_),
                [this] { return RequestThread(); });
  connected_ = true;
  XenbusClient bus(&hv_->store(), backend_->id());
  bus.SwitchState(backend_path_, XenbusState::kConnected);
  // Watchdog sampler. queue_depth counts requests consumed off the ring but
  // not yet answered — exactly the in-flight disk work. A hung controller
  // freezes rsp_prod while queue_depth stays positive, which is the stall
  // signature the monitor keys on.
  if (HealthMonitor* hm = hv_->health(); hm != nullptr) {
    health_id_ = hm->Register(backend_->id(), backend_->name(),
                              StrFormat("vbd%d.%d", frontend_dom_, devid_), devid_,
                              [this] {
                                HealthSample s;
                                s.connected = connected_;
                                if (ring_ != nullptr) {
                                  s.req_cons = ring_->req_cons();
                                  s.req_prod = s.req_cons + ring_->UnconsumedRequests();
                                  s.rsp_prod = ring_->rsp_prod_pvt();
                                  s.queue_depth = static_cast<int>(
                                      ring_->req_cons() - ring_->rsp_prod_pvt());
                                }
                                return s;
                              });
  }
  return true;
}

void BlkbackInstance::BeginShutdown() {
  if (stopping_) {
    return;
  }
  stopping_ = true;
  connected_ = false;
  // Deregister from the watchdog before the ring goes away: a dead
  // frontend's frozen ring must not read as a stall.
  if (health_id_ != 0 && hv_->health() != nullptr) {
    hv_->health()->Unregister(health_id_);
    health_id_ = 0;
  }
  if (port_ != kInvalidPort) {
    hv_->EventClose(backend_, port_);
    port_ = kInvalidPort;
  }
  // The request thread observes stopping_ at its next resumption and exits.
  wake_.Signal();
}

void BlkbackInstance::RequestDrain() {
  if (draining_ || stopping_) {
    return;
  }
  draining_ = true;
  wake_.Signal();
}

bool BlkbackInstance::ReadyToRetire() const {
  if (!draining_) {
    return false;
  }
  if (ring_ == nullptr) {
    return true;  // Never connected: nothing mapped, nothing owed.
  }
  // Every consumed request must have completed on the device and been
  // answered; unconsumed requests are unacknowledged and survive the move on
  // the frontend side (requeued by its relink path).
  return ring_->rsp_prod_pvt() == ring_->req_cons() &&
         ring_->unpushed_responses() == 0;
}

void BlkbackInstance::RetireGracefully() {
  KITE_CHECK(ReadyToRetire());
  BeginShutdown();
  // Release the ring mapping and the persistent-grant cache synchronously,
  // while the frontend is still alive: its EndAccess must find zero active
  // maps, or the refs are deferred forever and the grant ledger leaks.
  persistent_.clear();
  ring_.reset();
  ring_map_.Unmap();
}

void BlkbackInstance::ThreadExited() {
  if (--threads_running_ == 0 && on_drained_) {
    on_drained_();
  }
}

Page* BlkbackInstance::ResolvePage(GrantRef gref, bool write_access,
                                   MappedGrant* transient_out) {
  const bool use_persistent = params_.persistent_grants && frontend_persistent_;
  if (use_persistent) {
    auto it = persistent_.find(gref);
    if (it != persistent_.end()) {
      persistent_hits_->Inc();
      return it->second.page();
    }
  }
  MappedGrant map = hv_->GrantMap(backend_, frontend_dom_, gref, write_access);
  if (!map.valid()) {
    return nullptr;
  }
  Page* page = map.page();
  if (use_persistent) {
    // Persistent referencing (paper §3.3): retain the mapping keyed by gref
    // so future requests reuse it without map/unmap hypercalls.
    persistent_.emplace(gref, std::move(map));
  } else {
    *transient_out = std::move(map);
  }
  return page;
}

Task BlkbackInstance::RequestThread() {
  // Hoisted run accumulator: capacity persists across wakeups (FlushRun
  // refills it from the run pool after handing its storage to the device).
  std::vector<ResolvedSeg> run;
  while (!stopping_) {
    co_await wake_.Wait();
    if (stopping_) {
      break;
    }
    SimDuration latency = costs_->blkback_pass_latency;
    const SimTime now = sched_->executor()->Now();
    if (now - last_active_ > costs_->cold_threshold) {
      latency += costs_->cold_penalty;
    }
    last_active_ = now;
    if (latency > SimDuration(0)) {
      co_await sched_->Sleep(latency);
      if (stopping_) {
        break;
      }
    }
    for (;;) {
      int batch = 0;
      BlkOp run_op = BlkOp::kRead;
      while (!stopping_ && !draining_ && ring_->HasUnconsumedRequests()) {
        BlkRequest req = ring_->ConsumeRequest();
        const uint32_t ring_index = ring_->last_consumed_index();
        const int64_t submit_ns = ring_->last_consumed_stamp_ns();
        const SimTime popped = sched_->executor()->Now();
        if (popped.ns() >= submit_ns) {
          req_queue_ns_->Record(static_cast<uint64_t>(popped.ns() - submit_ns));
        }
        const SimDuration req_cost =
            costs_->blkback_per_request +
            costs_->syscall_cost * costs_->syscalls_per_block_request;
        if (EventTracer* t = hv_->tracer(); t != nullptr && t->enabled()) {
          t->FlowStep(backend_->id(), frontend_dom_, "blk", "req_pop", popped,
                      MakeFlowId(FlowKind::kBlk, frontend_dom_, devid_, ring_index),
                      req_cost);
        }
        co_await sched_->Run(req_cost, KITE_CPU_CATEGORY("blkback/request"));
        if (stopping_) {
          break;
        }
        ProcessRequest(req, &run, &run_op, ring_index, popped.ns());
        if (++batch >= params_.ring_batch_limit) {
          FlushRun(&run, run_op);
          batch = 0;
          co_await sched_->Yield();
        }
      }
      FlushRun(&run, run_op);
      if (stopping_ || draining_ || !ring_->FinalCheckForRequests()) {
        break;
      }
    }
    last_active_ = sched_->executor()->Now();
  }
  ThreadExited();
}

bool BlkbackInstance::ValidateRequest(const BlkRequest& req,
                                      const std::vector<BlkSegment>& segments) {
  // All of these fields are guest controlled; reject before any page or disk
  // access. The capacity bound also keeps the int64 byte-offset arithmetic
  // below from overflowing.
  const uint64_t capacity_sectors =
      static_cast<uint64_t>(disk_->capacity_bytes()) / kSectorSize;
  uint64_t total_sectors = 0;
  for (const BlkSegment& seg : segments) {
    // Inverted ranges would underflow seg.bytes(); sectors past the page end
    // would read or write beyond the granted page.
    if (seg.first_sect > seg.last_sect || seg.last_sect >= kSectorsPerPage) {
      return false;
    }
    total_sectors += static_cast<uint64_t>(seg.last_sect) - seg.first_sect + 1;
  }
  // The whole request — not just its first sector — must lie within the
  // disk, or BlockDevice::Submit's capacity KITE_CHECK becomes guest
  // reachable. Subtraction form so sector_number + total_sectors can't wrap.
  if (total_sectors > capacity_sectors ||
      req.sector_number > capacity_sectors - total_sectors) {
    return false;
  }
  return true;
}

void BlkbackInstance::ProcessRequest(const BlkRequest& req, std::vector<ResolvedSeg>* run,
                                     BlkOp* run_op, uint32_t ring_index,
                                     int64_t popped_ns) {
  requests_handled_->Inc();
  auto state = std::make_shared<ReqState>();
  state->id = req.id;
  state->ring_index = ring_index;
  state->popped_ns = popped_ns;

  // Resolve the segment list into the reusable scratch (no suspension point
  // below touches it, so one per instance suffices).
  BlkOp op = req.op;
  std::vector<BlkSegment>& segments = seg_scratch_;
  segments.clear();
  if (req.op == BlkOp::kIndirect) {
    if (!params_.indirect_segments) {
      // Indirect was never advertised; a frontend sending it anyway is
      // misbehaving.
      bad_requests_->Inc();
      state->op = req.indirect_op;
      state->parts_outstanding = 0;
      state->ok = false;
      SendResponse(state);
      return;
    }
    indirect_requests_->Inc();
    op = req.indirect_op;
    // Map the indirect descriptor page and parse up to 512 segments per page
    // (paper §4.4 "Indirect Segment").
    MappedGrant ind_transient;
    Page* ind_page = ResolvePage(req.indirect_gref, /*write_access=*/false, &ind_transient);
    auto* seg_page = ind_page != nullptr ? ind_page->As<IndirectSegmentPage>() : nullptr;
    if (seg_page == nullptr ||
        req.nr_indirect_segments > static_cast<uint16_t>(params_.max_indirect) ||
        req.nr_indirect_segments > seg_page->size()) {
      if (seg_page != nullptr) {
        // The descriptor mapped fine but the count is impossible.
        bad_requests_->Inc();
      } else {
        // Bogus/revoked descriptor gref (or an injected grant fault): kept
        // on its own counter so guest-caused rejections stay observable
        // without conflating them with shape-invalid requests.
        indirect_map_fails_->Inc();
      }
      state->op = op;
      state->ok = false;
      SendResponse(state);
      return;
    }
    segments.assign(seg_page->begin(), seg_page->begin() + req.nr_indirect_segments);
  } else if (req.op == BlkOp::kFlush) {
    state->op = BlkOp::kFlush;
    state->parts_outstanding = 1;
    DiskRequest flush;
    flush.op = DiskOp::kFlush;
    const int64_t flush_submit_ns = sched_->executor()->Now().ns();
    flush.done = [this, alive = alive_, state, flush_submit_ns](bool ok, Buffer) {
      if (!*alive) {
        return;
      }
      const int64_t done_ns = sched_->executor()->Now().ns();
      if (done_ns >= flush_submit_ns) {
        device_ns_->Record(static_cast<uint64_t>(done_ns - flush_submit_ns));
      }
      if (!ok) {
        state->ok = false;
      }
      if (--state->parts_outstanding == 0) {
        SendResponse(state);
      }
    };
    device_ops_->Inc();
    disk_->Submit(std::move(flush));
    return;
  } else {
    // nr_segments is a raw uint8_t off the ring; reading past the 11-slot
    // embedded array would be out of bounds.
    if (req.nr_segments > kBlkMaxDirectSegments) {
      bad_requests_->Inc();
      state->op = req.op;
      state->ok = false;
      SendResponse(state);
      return;
    }
    segments.assign(req.segments.begin(), req.segments.begin() + req.nr_segments);
  }
  state->op = op;
  if (!ValidateRequest(req, segments)) {
    bad_requests_->Inc();
    state->ok = false;
    SendResponse(state);
    return;
  }

  // Resolve each segment to a mapped page and append to the current run,
  // flushing whenever contiguity breaks (batching, paper §3.3).
  int64_t disk_offset = static_cast<int64_t>(req.sector_number) * kSectorSize;
  for (const BlkSegment& seg : segments) {
    segments_handled_->Inc();
    {
      CpuScope cpu_scope(KITE_CPU_CATEGORY("blkback/request"));
      backend_->vcpu(0)->Charge(costs_->blkback_per_segment);
    }
    ResolvedSeg resolved;
    resolved.req = state;
    resolved.disk_offset = disk_offset;
    resolved.length = seg.bytes();
    resolved.page_offset = static_cast<size_t>(seg.first_sect) * kSectorSize;
    resolved.page = ResolvePage(seg.gref, op == BlkOp::kRead, &resolved.transient);
    if (resolved.page == nullptr) {
      state->ok = false;
      disk_offset += static_cast<int64_t>(resolved.length);
      continue;
    }
    // Does this segment extend the current run?
    bool extends = params_.batching && !run->empty() && *run_op == op;
    if (extends) {
      const ResolvedSeg& tail = run->back();
      const int64_t run_end = tail.disk_offset + static_cast<int64_t>(tail.length);
      size_t run_bytes = static_cast<size_t>(
          run_end - run->front().disk_offset);
      extends = run_end == resolved.disk_offset &&
                run_bytes + resolved.length <= params_.max_batch_bytes;
    }
    if (!extends) {
      FlushRun(run, *run_op);
      *run_op = op;
    }
    ++state->parts_outstanding;
    run->push_back(std::move(resolved));
    disk_offset += static_cast<int64_t>(run->back().length);
  }

  if (state->parts_outstanding == 0) {
    // Nothing submitted (all segments failed, or empty request).
    SendResponse(state);
  }
}

std::vector<BlkbackInstance::ResolvedSeg> BlkbackInstance::TakeRun() {
  if (run_pool_.empty()) {
    return {};
  }
  std::vector<ResolvedSeg> run = std::move(run_pool_.back());
  run_pool_.pop_back();
  return run;
}

void BlkbackInstance::RecycleRun(std::vector<ResolvedSeg>&& run) {
  run.clear();
  if (run_pool_.size() < 8) {
    run_pool_.push_back(std::move(run));
  }
}

void BlkbackInstance::FlushRun(std::vector<ResolvedSeg>* run, BlkOp op) {
  if (run->empty()) {
    return;
  }
  std::vector<ResolvedSeg> segs = std::move(*run);
  *run = TakeRun();

  const int64_t offset = segs.front().disk_offset;
  size_t total = 0;
  for (const ResolvedSeg& s : segs) {
    total += s.length;
  }

  DiskRequest dev;
  dev.op = op == BlkOp::kRead ? DiskOp::kRead : DiskOp::kWrite;
  dev.offset = offset;
  dev.length = total;
  const int64_t dev_submit_ns = sched_->executor()->Now().ns();
  if (op == BlkOp::kWrite && disk_->store_data()) {
    // Gather write payload from the (mapped) guest pages.
    dev.data.reserve(total);
    for (const ResolvedSeg& s : segs) {
      dev.data.insert(dev.data.end(), s.page->data.begin() + s.page_offset,
                      s.page->data.begin() + s.page_offset + s.length);
    }
  }
  device_ops_->Inc();
  // NetBSD's buffer callback (paper §4.4 "Response"): the device driver
  // invokes this on completion; we respond and release mappings there.
  // (shared_ptr because std::function requires copyable callables.)
  auto segs_ptr = std::make_shared<std::vector<ResolvedSeg>>(std::move(segs));
  dev.done = [this, alive = alive_, op, segs_ptr, dev_submit_ns](bool ok, Buffer data) {
    if (!*alive) {
      return;
    }
    const int64_t done_ns = sched_->executor()->Now().ns();
    if (done_ns >= dev_submit_ns) {
      device_ns_->Record(static_cast<uint64_t>(done_ns - dev_submit_ns));
    }
    CompletePart(*segs_ptr, op, ok, data);
    RecycleRun(std::move(*segs_ptr));
  };
  disk_->Submit(std::move(dev));
}

void BlkbackInstance::CompletePart(std::vector<ResolvedSeg>& segs, BlkOp op, bool ok,
                                   const Buffer& data) {
  // Completion-side CPU cost (response handling).
  {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("blkback/request"));
    backend_->vcpu(0)->Charge(Nanos(600));
  }
  size_t data_pos = 0;
  for (ResolvedSeg& s : segs) {
    if (op == BlkOp::kRead && !data.empty() && s.page != nullptr) {
      // Scatter read data into the guest page.
      const size_t n = std::min(s.length, data.size() - data_pos);
      std::copy_n(data.begin() + data_pos, n, s.page->data.begin() + s.page_offset);
    }
    data_pos += s.length;
    // Transient mappings are released here (unmap hypercall charged);
    // persistent mappings are retained in the cache.
    s.transient.Unmap();
    if (!ok) {
      s.req->ok = false;
    }
    if (--s.req->parts_outstanding == 0) {
      SendResponse(s.req);
    }
  }
}

void BlkbackInstance::SendResponse(const std::shared_ptr<ReqState>& req) {
  BlkResponse rsp;
  rsp.id = req->id;
  rsp.op = req->op;
  rsp.status = req->ok ? BlkStatus::kOkay : BlkStatus::kError;
  ring_->ProduceResponse(rsp);
  const SimTime now = sched_->executor()->Now();
  if (now.ns() >= req->popped_ns) {
    req_service_ns_->Record(static_cast<uint64_t>(now.ns() - req->popped_ns));
  }
  if (EventTracer* t = hv_->tracer(); t != nullptr && t->enabled()) {
    t->FlowStep(backend_->id(), frontend_dom_, "blk", "rsp_push", now,
                MakeFlowId(FlowKind::kBlk, frontend_dom_, devid_, req->ring_index));
  }
  // Late disk completions can land after BeginShutdown closed the port.
  const bool notify = ring_->PushResponses();
  if (FlightRecorder* fr = hv_->recorder(); fr != nullptr) {
    fr->Record(backend_->id(), FlightKind::kRingPush, devid_, ring_->rsp_prod_pvt(),
               ring_->req_cons());
  }
  if (notify && port_ != kInvalidPort) {
    hv_->EventSend(backend_, port_);
  }
}

// --- StorageBackendDriver. ---

StorageBackendDriver::StorageBackendDriver(Domain* backend, BmkSched* sched,
                                           const OsCostProfile* costs, BlockDevice* disk,
                                           BlkbackParams params)
    : backend_(backend),
      hv_(backend->hypervisor()),
      sched_(sched),
      costs_(costs),
      disk_(disk),
      params_(params),
      watch_wake_(sched->executor()) {
  MetricRegistry* reg = hv_->metrics();
  connect_retries_ = reg->counter(backend->name(), "vbd-driver", "connect_retries");
  instances_reaped_ = reg->counter(backend->name(), "vbd-driver", "instances_reaped");
  instances_retired_ = reg->counter(backend->name(), "vbd-driver", "instances_retired");
  const std::string root = StrFormat("/local/domain/%d/backend/vbd", backend->id());
  watch_ = backend_->StoreWatch(root, "vbd-backend",
                                [this, root](const std::string& path, const std::string&) {
                                  NoteOnlineTouched(root, path);
                                  watch_wake_.Signal();
                                });
  sched_->Spawn("xenwatch-vbd", [this] { return WatchThread(); });
}

StorageBackendDriver::~StorageBackendDriver() {
  *alive_ = false;
  if (watch_ != 0) {
    hv_->store().RemoveWatch(watch_);
  }
  for (const auto& [path, id] : fe_watches_) {
    hv_->store().RemoveWatch(id);
  }
  for (const auto& [key, id] : paired_watches_) {
    hv_->store().RemoveWatch(id);
  }
}

BlkbackInstance* StorageBackendDriver::instance(DomId frontend_dom, int devid) {
  auto it = instances_.find({frontend_dom, devid});
  return it == instances_.end() ? nullptr : it->second.get();
}

Task StorageBackendDriver::WatchThread() {
  for (;;) {
    co_await watch_wake_.Wait();
    co_await sched_->Run(Micros(5), KITE_CPU_CATEGORY("driver/xenwatch"));
    Scan();
  }
}

void StorageBackendDriver::SweepDying() {
  std::erase_if(dying_, [](const std::unique_ptr<BlkbackInstance>& inst) {
    return inst->drained();
  });
}

void StorageBackendDriver::ReapDeadInstances() {
  XenbusClient bus(&hv_->store(), backend_->id());
  for (auto it = instances_.begin(); it != instances_.end();) {
    const auto key = it->first;
    const std::string fe_path = FrontendPath(key.first, "vbd", key.second);
    const XenbusState state = bus.ReadState(fe_path);
    const bool closed =
        state == XenbusState::kClosing || state == XenbusState::kClosed;
    // Unlike netback, instances exist from toolstack attach onward — before
    // the frontend ever publishes. A missing state node therefore only means
    // death once the frontend's domain itself is gone.
    const bool vanished =
        state == XenbusState::kUnknown && hv_->domain(key.first) == nullptr;
    if (!closed && !vanished) {
      ++it;
      continue;
    }
    if (auto wit = paired_watches_.find(key); wit != paired_watches_.end()) {
      hv_->store().RemoveWatch(wit->second);
      paired_watches_.erase(wit);
    }
    if (auto wit = fe_watches_.find(fe_path); wit != fe_watches_.end()) {
      hv_->store().RemoveWatch(wit->second);
      fe_watches_.erase(wit);
    }
    std::unique_ptr<BlkbackInstance> inst = std::move(it->second);
    it = instances_.erase(it);
    if (on_vbd_gone_) {
      on_vbd_gone_(inst.get());
    }
    hv_->store().RemoveSubtree(
        kDom0, BackendPath(backend_->id(), "vbd", key.first, key.second));
    offline_.erase(key);
    // The request thread's frames may be parked in the shared scheduler;
    // keep the instance alive until they exit.
    inst->set_on_drained([this, alive = alive_] {
      if (*alive) {
        watch_wake_.Signal();
      }
    });
    inst->BeginShutdown();
    if (FlightRecorder* fr = hv_->recorder(); fr != nullptr) {
      fr->Record(backend_->id(), FlightKind::kInstanceReaped, key.second,
                 static_cast<uint64_t>(key.first));
    }
    if (!inst->drained()) {
      dying_.push_back(std::move(inst));
    }
    instances_reaped_->Inc();
  }
}

void StorageBackendDriver::NoteOnlineTouched(const std::string& root,
                                             const std::string& path) {
  // Event-carried state: the root watch tells us *which* node's online key
  // the toolstack touched, so the scan pays a xenstore read only for those
  // rare writes instead of polling every node on every wakeup (that poll
  // showed up as a measurable fig11 throughput tax).
  if (path.size() <= root.size() + 1 || path.compare(0, root.size(), root) != 0) {
    return;
  }
  const std::string rest = path.substr(root.size() + 1);  // <fdom>/<devid>/online
  const size_t a = rest.find('/');
  const size_t b = a == std::string::npos ? std::string::npos : rest.find('/', a + 1);
  if (b == std::string::npos || rest.substr(b + 1) != "online") {
    return;
  }
  const int64_t fdom = ParseDecimal(rest.substr(0, a));
  const int64_t devid = ParseDecimal(rest.substr(a + 1, b - a - 1));
  if (fdom >= 0 && devid >= 0) {
    online_dirty_.insert({static_cast<DomId>(fdom), static_cast<int>(devid)});
  }
}

void StorageBackendDriver::ProcessDrains() {
  for (const auto& key : online_dirty_) {
    const std::string be_path =
        BackendPath(backend_->id(), "vbd", key.first, key.second);
    auto online = backend_->StoreReadInt(be_path + "/online");
    if (online.has_value() && *online == 0) {
      offline_.insert(key);
    } else {
      offline_.erase(key);  // Rewritten to 1, or the node is gone.
    }
  }
  online_dirty_.clear();
  if (offline_.empty()) {
    return;
  }
  bool pending = false;
  for (auto it = instances_.begin(); it != instances_.end();) {
    const auto key = it->first;
    if (offline_.count(key) == 0) {
      ++it;
      continue;
    }
    const std::string be_path =
        BackendPath(backend_->id(), "vbd", key.first, key.second);
    BlkbackInstance* inst = it->second.get();
    inst->RequestDrain();
    if (!inst->ReadyToRetire()) {
      pending = true;
      ++it;
      continue;
    }
    KITE_LOG(Info) << StrFormat("blkback: vbd%d.%d drained, retiring", key.first,
                                key.second);
    if (auto wit = paired_watches_.find(key); wit != paired_watches_.end()) {
      hv_->store().RemoveWatch(wit->second);
      paired_watches_.erase(wit);
    }
    const std::string fe_path = FrontendPath(key.first, "vbd", key.second);
    if (auto wit = fe_watches_.find(fe_path); wit != fe_watches_.end()) {
      hv_->store().RemoveWatch(wit->second);
      fe_watches_.erase(wit);
    }
    std::unique_ptr<BlkbackInstance> owned = std::move(it->second);
    it = instances_.erase(it);
    if (on_vbd_gone_) {
      on_vbd_gone_(owned.get());
    }
    owned->set_on_drained([this, alive = alive_] {
      if (*alive) {
        watch_wake_.Signal();
      }
    });
    // Mappings must be released before the subtree goes away (the frontend's
    // relink path EndAccesses its grants once the node vanishes).
    owned->RetireGracefully();
    hv_->store().RemoveSubtree(kDom0, be_path);
    offline_.erase(key);
    if (FlightRecorder* fr = hv_->recorder(); fr != nullptr) {
      fr->Record(backend_->id(), FlightKind::kInstanceRetired, key.second,
                 static_cast<uint64_t>(key.first));
    }
    if (!owned->drained()) {
      dying_.push_back(std::move(owned));
    }
    instances_retired_->Inc();
  }
  if (pending) {
    // Drain in progress: re-poll shortly (in-flight device ops complete on
    // simulated time, not on watch events).
    hv_->executor()->PostAfter(Micros(50), KITE_POST_SITE("blkback/drain-poll"),
                               [this, alive = alive_] {
      if (*alive) {
        watch_wake_.Signal();
      }
    });
  }
}

void StorageBackendDriver::Scan() {
  SweepDying();
  ReapDeadInstances();
  ProcessDrains();
  const std::string root = StrFormat("/local/domain/%d/backend/vbd", backend_->id());
  auto fdoms = backend_->StoreList(root);
  if (!fdoms.has_value()) {
    return;
  }
  XenbusClient bus(&hv_->store(), backend_->id());
  for (const std::string& fdom_str : *fdoms) {
    const int64_t fdom = ParseDecimal(fdom_str);
    if (fdom < 0) {
      continue;
    }
    auto devids = backend_->StoreList(root + "/" + fdom_str);
    if (!devids.has_value()) {
      continue;
    }
    for (const std::string& devid_str : *devids) {
      const int64_t devid = ParseDecimal(devid_str);
      if (devid < 0) {
        continue;
      }
      const auto key = std::make_pair(static_cast<DomId>(fdom), static_cast<int>(devid));
      // A node marked offline is mid-drain/retire: never advertise or pair
      // against it — the frontend republishing now is relinking elsewhere.
      // (offline_ was refreshed by ProcessDrains above; no xenstore read.)
      if (offline_.count(key) != 0) {
        continue;
      }
      const std::string fe_path =
          FrontendPath(static_cast<DomId>(fdom), "vbd", static_cast<int>(devid));
      auto it = instances_.find(key);
      if (it == instances_.end()) {
        // New device directory: advertise and wait for the frontend.
        auto inst = std::make_unique<BlkbackInstance>(backend_, sched_, costs_, params_,
                                                      disk_, key.first, key.second);
        inst->Advertise();
        instances_[key] = std::move(inst);
        if (fe_watches_.find(fe_path) == fe_watches_.end()) {
          fe_watches_[fe_path] = backend_->StoreWatch(
              fe_path + "/state", "fe-state",
              [this](const std::string&, const std::string&) { watch_wake_.Signal(); });
        }
        continue;
      }
      BlkbackInstance* inst = it->second.get();
      if (!inst->connected() && bus.ReadState(fe_path) == XenbusState::kInitialised) {
        if (inst->Connect()) {
          // Paired: drop the pre-publication frontend-state watch.
          if (auto wit = fe_watches_.find(fe_path); wit != fe_watches_.end()) {
            hv_->store().RemoveWatch(wit->second);
            fe_watches_.erase(wit);
          }
          // Watch for the frontend dying: Closing/Closed, or the node
          // vanishing when the guest domain is destroyed.
          paired_watches_[key] = backend_->StoreWatch(
              fe_path + "/state", "fe-gone",
              [this](const std::string&, const std::string&) { watch_wake_.Signal(); });
          if (on_new_vbd_) {
            on_new_vbd_(inst);
          }
        } else {
          // Transient by assumption (e.g. an injected grant-map failure):
          // rescan shortly; the frontend watch alone won't fire again.
          connect_retries_->Inc();
          KITE_LOG(Warning) << "blkback: failed to connect " << fe_path << ", retrying";
          hv_->executor()->PostAfter(Millis(1), KITE_POST_SITE("blkback/connect-retry"),
                                     [this, alive = alive_] {
            if (*alive) {
              watch_wake_.Signal();
            }
          });
        }
      }
    }
  }
}

}  // namespace kite
