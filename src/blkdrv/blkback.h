// Blkback: the block backend driver in a storage driver domain (paper
// §3.3/§4.4).
//
// A dedicated request thread (woken by the event channel, never doing work
// in the handler) consumes ring requests, resolves segments (direct or
// indirect), maps guest pages — through a *persistent grant cache* when
// negotiated, avoiding the map/unmap hypercalls — and submits device
// operations, *batching consecutive segments* of one or more requests into
// single larger device ops. Completions are asynchronous: responses are sent
// from the device callback, so subsequent requests are never blocked by an
// in-flight one.
#ifndef SRC_BLKDRV_BLKBACK_H_
#define SRC_BLKDRV_BLKBACK_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/blk/blkif.h"
#include "src/blk/disk.h"
#include "src/bmk/sched.h"
#include "src/hv/domain.h"
#include "src/hv/hypervisor.h"
#include "src/hv/xenbus.h"
#include "src/os/profile.h"
#include "src/sim/wait.h"

namespace kite {

struct BlkbackParams {
  bool persistent_grants = true;   // Ablation: per-request map/unmap when off.
  bool indirect_segments = true;   // Ablation: 11-segment (44 KB) cap when off.
  bool batching = true;            // Ablation: one device op per segment run off.
  int max_indirect = kBlkMaxIndirectSegments;
  size_t max_batch_bytes = 1024 * 1024;  // Cap for a coalesced device op.
  int ring_batch_limit = 32;             // Requests per CPU quantum.
};

class BlkbackInstance {
 public:
  BlkbackInstance(Domain* backend, BmkSched* sched, const OsCostProfile* costs,
                  BlkbackParams params, BlockDevice* disk, DomId frontend_dom, int devid);
  ~BlkbackInstance();

  // Phase 1 (paper §4.4): advertise device properties and features in
  // xenstore, then wait in InitWait for the frontend.
  void Advertise();
  // Phase 2: after the frontend publishes, map the ring and connect.
  bool Connect();

  // Frontend death: stop the request thread (it exits at its next
  // resumption), close the port, and refuse further work. The instance must
  // stay allocated until drained().
  void BeginShutdown();
  bool drained() const { return threads_running_ == 0; }
  void set_on_drained(std::function<void()> fn) { on_drained_ = std::move(fn); }

  // Graceful drain (toolstack-initiated migration): stop consuming new ring
  // requests but let every in-flight device op complete and answer.
  // Unconsumed requests stay on the ring — unacknowledged, the frontend
  // requeues and resubmits them after relink, so no acked write is lost.
  void RequestDrain();
  bool draining() const { return draining_; }
  // True once every consumed request has a pushed response (all disk
  // completions landed and were answered).
  bool ReadyToRetire() const;
  // BeginShutdown plus synchronous release of the ring mapping and the
  // persistent-grant cache. Must run *before* the backend's xenstore subtree
  // is removed: the live frontend's EndAccess on its grants only succeeds
  // once this side holds no active maps.
  void RetireGracefully();

  bool connected() const { return connected_; }
  DomId frontend_dom() const { return frontend_dom_; }
  int devid() const { return devid_; }

  uint64_t requests_handled() const { return requests_handled_->value(); }
  uint64_t device_ops() const { return device_ops_->value(); }
  uint64_t segments_handled() const { return segments_handled_->value(); }
  uint64_t persistent_hits() const { return persistent_hits_->value(); }
  uint64_t indirect_requests() const { return indirect_requests_->value(); }
  // Ring requests rejected before touching the disk or guest pages:
  // impossible segment counts, inverted or out-of-page sector ranges,
  // out-of-capacity offsets (malformed or malicious ring input).
  uint64_t bad_requests() const { return bad_requests_->value(); }
  // Indirect requests whose descriptor gref failed to map (bogus or revoked
  // gref, or an injected grant fault) — rejected with kError.
  uint64_t indirect_map_fails() const { return indirect_map_fails_->value(); }
  size_t persistent_cache_size() const { return persistent_.size(); }

  // True when the ring is quiet: every published request consumed, exactly
  // one response per consumed request (disk completions all landed), and
  // everything pushed back to the frontend. On false, `detail` (if non-null)
  // says which leg failed.
  bool RingQuiescent(std::string* detail) const;

 private:
  // Per-ring-request completion state.
  struct ReqState {
    uint64_t id = 0;
    BlkOp op = BlkOp::kRead;
    int parts_outstanding = 0;
    bool ok = true;
    uint32_t ring_index = 0;  // Free-running consumer index (flow id).
    int64_t popped_ns = 0;    // When the request left the ring (observability).
  };
  // One segment resolved to a guest page mapping.
  struct ResolvedSeg {
    std::shared_ptr<ReqState> req;
    int64_t disk_offset = 0;
    size_t length = 0;
    Page* page = nullptr;           // Valid for persistent-cached mappings.
    MappedGrant transient;          // Holds the mapping when not persistent.
    size_t page_offset = 0;
  };

  Task RequestThread();
  void ThreadExited();
  // Validates guest-controlled geometry before any page or disk access.
  bool ValidateRequest(const BlkRequest& req, const std::vector<BlkSegment>& segments);
  void ProcessRequest(const BlkRequest& req, std::vector<ResolvedSeg>* run,
                      BlkOp* run_op, uint32_t ring_index, int64_t popped_ns);
  void FlushRun(std::vector<ResolvedSeg>* run, BlkOp op);
  Page* ResolvePage(GrantRef gref, bool write_access, MappedGrant* transient_out);
  void SendResponse(const std::shared_ptr<ReqState>& req);
  void CompletePart(std::vector<ResolvedSeg>& segs, BlkOp op, bool ok, const Buffer& data);
  // Run-vector pool: FlushRun hands each run's storage to the device
  // completion, which returns it here so steady-state request processing
  // stops allocating segment arrays.
  std::vector<ResolvedSeg> TakeRun();
  void RecycleRun(std::vector<ResolvedSeg>&& run);

  Domain* backend_;
  Hypervisor* hv_;
  BmkSched* sched_;
  const OsCostProfile* costs_;
  BlkbackParams params_;
  BlockDevice* disk_;
  DomId frontend_dom_;
  int devid_;
  bool connected_ = false;
  // Drain protocol: the request thread stops consuming new requests.
  bool draining_ = false;
  // Shutdown protocol: checked by the request thread after every co_await.
  bool stopping_ = false;
  int threads_running_ = 0;
  std::function<void()> on_drained_;

  std::string backend_path_;
  std::string frontend_path_;

  MappedGrant ring_map_;
  std::unique_ptr<BlkBackRing> ring_;
  EvtPort port_ = kInvalidPort;
  // Watchdog registration (0 = never registered / already unregistered).
  int64_t health_id_ = 0;
  WakeFlag wake_;
  SimTime last_active_;
  bool frontend_persistent_ = false;

  // Guard for disk-completion callbacks (device ops can outlive the instance
  // across a driver-domain restart).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  std::map<GrantRef, MappedGrant> persistent_;

  // Reusable request-processing scratch (RequestThread is the only writer;
  // ProcessRequest never suspends while these hold live data).
  std::vector<BlkSegment> seg_scratch_;
  std::vector<std::vector<ResolvedSeg>> run_pool_;

  // Registry-backed under (backend domain, vbdX.Y, <name>).
  Counter* requests_handled_;
  Counter* device_ops_;
  Counter* segments_handled_;
  Counter* persistent_hits_;
  Counter* indirect_requests_;
  Counter* bad_requests_;
  Counter* indirect_map_fails_;
  // Stage latencies (ns): queue = frontend submit → ring pop, service = ring
  // pop → response produced, device = device op submit → completion.
  LatencyHistogram* req_queue_ns_;
  LatencyHistogram* req_service_ns_;
  LatencyHistogram* device_ns_;
};

class StorageBackendDriver {
 public:
  StorageBackendDriver(Domain* backend, BmkSched* sched, const OsCostProfile* costs,
                       BlockDevice* disk, BlkbackParams params = BlkbackParams{});
  ~StorageBackendDriver();

  int instance_count() const { return static_cast<int>(instances_.size()); }
  // Reaped instances still draining their request thread.
  int dying_instance_count() const { return static_cast<int>(dying_.size()); }
  BlkbackInstance* instance(DomId frontend_dom, int devid);
  // Live instances in deterministic (frontend, devid) order (checker).
  std::vector<BlkbackInstance*> live_instances() const {
    std::vector<BlkbackInstance*> out;
    out.reserve(instances_.size());
    for (const auto& [key, inst] : instances_) {
      out.push_back(inst.get());
    }
    return out;
  }
  void SetOnNewVbd(std::function<void(BlkbackInstance*)> fn) { on_new_vbd_ = std::move(fn); }
  // Called when a vbd's frontend died and the instance is being reaped.
  void SetOnVbdGone(std::function<void(BlkbackInstance*)> fn) { on_vbd_gone_ = std::move(fn); }

  uint64_t connect_retries() const { return connect_retries_->value(); }
  uint64_t instances_reaped() const { return instances_reaped_->value(); }
  // Instances retired via the graceful drain handshake (be/online = 0).
  uint64_t instances_retired() const { return instances_retired_->value(); }
  int pending_fe_watch_count() const { return static_cast<int>(fe_watches_.size()); }
  // Frontend-death watches held for paired instances (one per connected vbd).
  int paired_fe_watch_count() const { return static_cast<int>(paired_watches_.size()); }

 private:
  Task WatchThread();
  void Scan();
  // Tears down instances whose frontend closed or whose frontend domain was
  // destroyed.
  void ReapDeadInstances();
  // Drives the graceful drain handshake for instances whose backend node
  // carries online = 0 (set by the toolstack before a migration).
  void ProcessDrains();
  // Root-watch helper: records nodes whose online key changed so the next
  // scan reads only those (keeps the no-migration path free of xenstore ops).
  void NoteOnlineTouched(const std::string& root, const std::string& path);
  void SweepDying();

  Domain* backend_;
  Hypervisor* hv_;
  BmkSched* sched_;
  const OsCostProfile* costs_;
  BlockDevice* disk_;
  BlkbackParams params_;
  std::function<void(BlkbackInstance*)> on_new_vbd_;
  std::function<void(BlkbackInstance*)> on_vbd_gone_;

  WatchId watch_ = 0;
  WakeFlag watch_wake_;
  std::map<std::pair<DomId, int>, std::unique_ptr<BlkbackInstance>> instances_;
  // Frontend state paths watched until their instance connects; removed on
  // connect so the watch table stays bounded (mirrors netback).
  std::map<std::string, WatchId> fe_watches_;
  // Post-pairing frontend-death watches, one per connected instance (kept
  // apart from fe_watches_, whose emptiness tests assert after pairing).
  std::map<std::pair<DomId, int>, WatchId> paired_watches_;
  // Nodes whose online key the toolstack touched since the last scan
  // (paths carried by the root watch); read — and charged — only for these.
  std::set<std::pair<DomId, int>> online_dirty_;
  // Nodes currently marked online = 0: mid-drain/retire.
  std::set<std::pair<DomId, int>> offline_;
  // Reaped but not yet drained; swept on scan wakeups.
  std::vector<std::unique_ptr<BlkbackInstance>> dying_;
  Counter* connect_retries_;
  Counter* instances_reaped_;
  Counter* instances_retired_;
  // Outlives `this` so posted retries can detect destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace kite

#endif  // SRC_BLKDRV_BLKBACK_H_
