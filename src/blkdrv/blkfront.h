// Blkfront: the paravirtualized block frontend driver in a guest DomU.
//
// Exposes an async byte-level block API (sector-aligned) to the guest file
// system. Splits operations into ring requests (≤11 direct segments, or up
// to 32 via indirect descriptors when the backend advertises them), keeps a
// persistent pool of granted data pages, and aggregates completion across
// the requests of one logical operation.
#ifndef SRC_BLKDRV_BLKFRONT_H_
#define SRC_BLKDRV_BLKFRONT_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/bytes.h"
#include "src/blk/blkif.h"
#include "src/hv/domain.h"
#include "src/hv/hypervisor.h"
#include "src/hv/xenbus.h"

namespace kite {

class Blkfront {
 public:
  using IoCallback = std::function<void(bool ok)>;

  Blkfront(Domain* guest, DomId backend_dom, int devid,
           std::function<void()> on_connected = nullptr);
  ~Blkfront();

  Blkfront(const Blkfront&) = delete;
  Blkfront& operator=(const Blkfront&) = delete;

  // offset/length must be sector-aligned. `out` may be null when the caller
  // does not need the bytes (cost accounting still applies); when non-null
  // it is resized and filled on completion.
  void Read(int64_t offset, size_t length, Buffer* out, IoCallback cb);
  void Write(int64_t offset, Buffer data, IoCallback cb);
  void Flush(IoCallback cb);

  bool connected() const { return connected_; }
  int64_t capacity_bytes() const { return capacity_bytes_; }
  int devid() const { return devid_; }
  Domain* guest() const { return guest_; }
  DomId backend_dom() const { return backend_dom_; }
  bool indirect_supported() const { return max_indirect_ > 0; }
  bool persistent_supported() const { return persistent_; }

  uint64_t requests_sent() const { return requests_sent_; }
  uint64_t indirect_requests() const { return indirect_requests_; }
  uint64_t ops_completed() const { return ops_completed_; }
  size_t queued_chunks() const { return queue_.size(); }
  // Completed reconnects to a fresh backend after the old one died.
  uint64_t recoveries() const { return recoveries_; }
  // Unacknowledged ring requests requeued across a backend death. Unlike
  // netfront, blkfront never drops: a write that was never acknowledged must
  // eventually execute, or the caller would see success-after-timeout races.
  uint64_t requests_requeued() const { return requests_requeued_; }

 private:
  struct PendingOp {
    int outstanding = 0;     // Ring requests awaiting a response.
    int chunks_pending = 0;  // Chunks not yet submitted to the ring.
    bool ok = true;
    IoCallback cb;
    Buffer* out = nullptr;   // Read destination.
    Buffer data;             // Write source.
    int64_t base_offset = 0;
    size_t length = 0;
    bool is_read = false;
    int64_t start_ns = 0;    // When the op was enqueued (observability).
  };
  struct Chunk {
    std::shared_ptr<PendingOp> op;
    int64_t disk_offset = 0;
    size_t op_offset = 0;  // Byte offset within the op's buffer.
    size_t length = 0;
    bool is_flush = false;
  };
  struct InFlight {
    std::shared_ptr<PendingOp> op;
    std::vector<uint16_t> page_ids;
    size_t op_offset = 0;
    size_t length = 0;
    bool is_read = false;
    bool is_flush = false;
    uint16_t indirect_page_id = 0;
    bool used_indirect = false;
    int64_t submit_ns = 0;     // When the ring request was produced.
    uint32_t ring_index = 0;   // Free-running producer index (flow id).
  };

  void OnBackendStateChange();
  void HandleBackendDeath();
  void OnToolstackRelink();
  void WatchBackendState();
  void PublishAndInitialise();
  void OnIrq();
  void EnqueueOp(std::shared_ptr<PendingOp> op, bool is_flush);
  void PumpQueue();
  bool SubmitChunk(const Chunk& chunk);
  void CompleteRequest(uint64_t id, bool ok);
  void FinishOpPart(const std::shared_ptr<PendingOp>& op, bool ok);

  Domain* guest_;
  Hypervisor* hv_;
  DomId backend_dom_;
  int devid_;
  std::function<void()> on_connected_;
  bool connected_ = false;
  bool published_ = false;

  std::string frontend_path_;
  std::string backend_path_;
  WatchId backend_watch_ = 0;
  WatchId relink_watch_ = 0;
  bool backend_was_live_ = false;
  // Outlives `this` so posted retries can detect destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  // Negotiated backend features.
  int64_t capacity_bytes_ = 0;
  bool persistent_ = false;
  bool flush_supported_ = false;
  int max_indirect_ = 0;

  PageRef ring_page_;
  std::shared_ptr<BlkSharedRing> shared_;
  std::unique_ptr<BlkFrontRing> ring_;
  GrantRef ring_gref_ = kInvalidGrantRef;
  EvtPort port_ = kInvalidPort;

  // Persistent data-page pool.
  struct PoolPage {
    PageRef page;
    GrantRef gref = kInvalidGrantRef;
  };
  std::vector<PoolPage> pool_;
  std::vector<uint16_t> free_pages_;
  std::vector<PoolPage> indirect_pool_;
  std::vector<uint16_t> free_indirect_;

  uint64_t next_req_id_ = 1;
  std::map<uint64_t, InFlight> in_flight_;
  std::deque<Chunk> queue_;

  SimDuration per_request_cost_ = Nanos(1500);
  double copy_ns_per_byte_ = 0.05;  // ~20 GB/s guest memcpy.

  uint64_t requests_sent_ = 0;
  uint64_t indirect_requests_ = 0;
  uint64_t ops_completed_ = 0;
  uint64_t recoveries_ = 0;
  uint64_t requests_requeued_ = 0;

  // Registry-backed under (guest domain, xvdN, <name>), ns values:
  // ring request submit → response consumed, and op enqueue → op callback.
  LatencyHistogram* req_ring_ns_;
  LatencyHistogram* op_complete_ns_;
};

}  // namespace kite

#endif  // SRC_BLKDRV_BLKFRONT_H_
