#include "src/security/syscalls.h"

namespace kite {

SyscallReport AnalyzeSyscalls(const OsProfile& profile) {
  SyscallReport report;
  report.os_name = profile.name;
  const std::set<std::string> used = profile.RequiredSyscalls();
  const std::set<std::string> exposed = profile.ExposedSyscalls();
  report.used = static_cast<int>(used.size());
  report.exposed = static_cast<int>(exposed.size());
  for (const std::string& s : exposed) {
    if (used.count(s) == 0) {
      report.removable.push_back(s);
    }
  }
  return report;
}

double SyscallReductionFactor(const OsProfile& small_os, const OsProfile& big_os) {
  const auto small_used = small_os.RequiredSyscalls();
  const auto big_used = big_os.RequiredSyscalls();
  if (small_used.empty()) {
    return 0.0;
  }
  return static_cast<double>(big_used.size()) / static_cast<double>(small_used.size());
}

}  // namespace kite
