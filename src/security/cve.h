// CVE resilience analysis (paper Table 3, Fig 1a, §5.1.1).
//
// A CVE is mitigated in an OS profile if the attack's prerequisites are
// absent: every syscall it needs has been discarded, or the vulnerable
// component (library/tool, e.g. libxl, python, a shell) is not present in
// the image.
#ifndef SRC_SECURITY_CVE_H_
#define SRC_SECURITY_CVE_H_

#include <string>
#include <vector>

#include "src/os/profile.h"

namespace kite {

enum class CveKind {
  kSyscall,    // Reachable through specific system calls (Table 3).
  kComponent,  // Lives in a userspace component (libxl, python, shell...).
};

struct CveEntry {
  std::string id;
  CveKind kind = CveKind::kSyscall;
  // For kSyscall: the attack needs *any* of these to be exposed? No — the
  // paper blocks an attack by removing any essential syscall it uses; we
  // model the listed syscalls as all-required.
  std::vector<std::string> syscalls;
  // For kComponent: substrings matched against component names.
  std::vector<std::string> components;
  std::string description;
};

// The 11 CVEs of Table 3 plus the component CVEs named in the paper
// (CVE-2016-4963/libxl, CVE-2013-2072/python-xen, CVE-2021-35039/modules).
const std::vector<CveEntry>& CveDatabase();

struct CveVerdict {
  const CveEntry* cve = nullptr;
  bool mitigated = false;
  std::string reason;
};

CveVerdict CheckCve(const OsProfile& profile, const CveEntry& cve);
std::vector<CveVerdict> CheckAllCves(const OsProfile& profile);
int CountMitigated(const OsProfile& profile);

// Fig 1a dataset: driver-related CVE counts per year (cve.mitre.org
// snapshot, as plotted in the paper's introduction).
struct DriverCveYear {
  int year;
  int linux_drivers;
  int windows_drivers;
};
const std::vector<DriverCveYear>& DriverCvesByYear();

// Paper §5.1.1: counts of reported CVEs that rely on crafted applications
// (172) and shells (92) — attacks impossible in a single-purpose unikernel.
int CraftedApplicationCveCount();
int ShellCveCount();

}  // namespace kite

#endif  // SRC_SECURITY_CVE_H_
