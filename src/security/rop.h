// ROP gadget analysis (paper §5.1.2, Figs 1b and 5).
//
// Methodology follows Follner et al. [36]: gadgets are instruction sequences
// ending in RET, categorized by operation class. Since the real kernel
// binaries are unavailable here, we (a) generate synthetic executable images
// from each OS profile's code size and instruction mix using *real x86-64
// encodings*, and (b) scan them with a genuine decoder — including
// misaligned decodes, which is where most gadgets come from. Gadget counts
// therefore track code size and mix for the right structural reason.
#ifndef SRC_SECURITY_ROP_H_
#define SRC_SECURITY_ROP_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "src/base/bytes.h"
#include "src/base/rng.h"
#include "src/os/profile.h"

namespace kite {

// Follner et al. operation categories.
enum class InsnClass : int {
  kDataMove = 0,
  kArithmetic,
  kLogic,
  kControlFlow,
  kShiftRotate,
  kSettingFlags,
  kString,
  kFloating,
  kMisc,
  kMmx,
  kNop,
  kRet,
  kCount,
};

const char* InsnClassName(InsnClass c);
inline constexpr int kInsnClassCount = static_cast<int>(InsnClass::kCount);

// Decodes one instruction from the given position. Returns the length in
// bytes (0 if the bytes do not decode in our subset) and the class.
struct DecodedInsn {
  size_t length = 0;
  InsnClass klass = InsnClass::kMisc;
  bool valid() const { return length > 0; }
};
DecodedInsn DecodeInsn(std::span<const uint8_t> code);

// Generates a synthetic executable image of ~code.code_bytes * scale bytes
// following the profile's instruction mix.
Buffer GenerateCodeImage(const CodeProfile& code, Rng* rng, double scale = 1.0);

struct GadgetCounts {
  std::array<uint64_t, kInsnClassCount> by_class{};
  uint64_t total = 0;

  uint64_t operator[](InsnClass c) const { return by_class[static_cast<int>(c)]; }
};

struct RopScanParams {
  size_t max_gadget_bytes = 24;
  int max_gadget_insns = 5;
};

// Scans code for RET-terminated gadgets. A gadget is counted per (start,
// ret) pair that decodes cleanly; it is classified by its first
// instruction's class.
GadgetCounts ScanGadgets(std::span<const uint8_t> code,
                         RopScanParams params = RopScanParams{});

// Convenience: generate an image for the profile (at `scale` of its true
// size) and scan it, scaling counts back up.
GadgetCounts AnalyzeProfile(const OsProfile& profile, double scale = 0.05,
                            uint64_t seed = 0x909);

}  // namespace kite

#endif  // SRC_SECURITY_ROP_H_
