// System-call attack-surface analysis (paper §5.1.1, Fig 4a).
#ifndef SRC_SECURITY_SYSCALLS_H_
#define SRC_SECURITY_SYSCALLS_H_

#include <set>
#include <string>
#include <vector>

#include "src/os/profile.h"

namespace kite {

struct SyscallReport {
  std::string os_name;
  int used = 0;      // Syscalls the domain's software actually uses.
  int exposed = 0;   // Syscalls reachable by an attacker.
  // Syscalls exposed but not used — removable in a unikernel (discarded at
  // compile time), irremovable in a general-purpose kernel.
  std::vector<std::string> removable;
};

SyscallReport AnalyzeSyscalls(const OsProfile& profile);

// Reduction factor of used syscalls between two profiles (Fig 4a's "10x").
double SyscallReductionFactor(const OsProfile& small_os, const OsProfile& big_os);

}  // namespace kite

#endif  // SRC_SECURITY_SYSCALLS_H_
