#include "src/security/cve.h"

#include "src/base/strings.h"

namespace kite {

const std::vector<CveEntry>& CveDatabase() {
  static const std::vector<CveEntry>* kDb = new std::vector<CveEntry>{
      // --- Table 3: prevented by keeping only necessary system calls. ---
      {"CVE-2021-35039", CveKind::kSyscall, {"init_module"}, {},
       "Loading unsigned kernel modules via the init_module syscall."},
      {"CVE-2019-3901", CveKind::kSyscall, {"execve"}, {},
       "Race condition lets local attackers leak data from setuid programs."},
      {"CVE-2018-18281", CveKind::kSyscall, {"ftruncate", "mremap"}, {},
       "Permits access to an already freed and reused physical page."},
      {"CVE-2018-1068", CveKind::kSyscall, {"compat_sys_setsockopt"}, {},
       "Privileged arbitrary write to a limited range of kernel memory."},
      {"CVE-2017-18344", CveKind::kSyscall, {"timer_create"}, {},
       "Userspace applications can read arbitrary kernel memory."},
      {"CVE-2017-17053", CveKind::kSyscall, {"modify_ldt", "clone"}, {},
       "Use-after-free reachable by a crafted program."},
      {"CVE-2016-6198", CveKind::kSyscall, {"rename"}, {},
       "Local users can cause a denial of service."},
      {"CVE-2016-6197", CveKind::kSyscall, {"rename", "unlink"}, {},
       "Local users can cause a denial of service."},
      {"CVE-2014-3180", CveKind::kSyscall, {"compat_sys_nanosleep"}, {},
       "Uninitialized data creates a possible out-of-bounds read."},
      {"CVE-2009-0028", CveKind::kSyscall, {"clone"}, {},
       "Unprivileged child can send arbitrary signals to a parent."},
      {"CVE-2009-0835", CveKind::kSyscall, {"chmod", "stat"}, {},
       "Local users bypass access restrictions via crafted syscalls."},
      // --- Component CVEs named in the paper's text. ---
      {"CVE-2016-4963", CveKind::kComponent, {}, {"libxl", "xen-utils"},
       "libxl mishandles backend domain state (xen-tools attack surface)."},
      {"CVE-2013-2072", CveKind::kComponent, {}, {"python"},
       "Buffer overflow in the Python bindings for xc; privilege escalation."},
      {"CVE-2015-7504", CveKind::kComponent, {}, {"bash", "shell"},
       "Representative shell-dependent post-exploitation vector."},
  };
  return *kDb;
}

CveVerdict CheckCve(const OsProfile& profile, const CveEntry& cve) {
  CveVerdict verdict;
  verdict.cve = &cve;
  if (cve.kind == CveKind::kSyscall) {
    const auto exposed = profile.ExposedSyscalls();
    for (const std::string& sc : cve.syscalls) {
      if (exposed.count(sc) == 0) {
        verdict.mitigated = true;
        verdict.reason = StrFormat("syscall '%s' not present", sc.c_str());
        return verdict;
      }
    }
    verdict.mitigated = false;
    verdict.reason = "all required syscalls exposed";
    return verdict;
  }
  // Component CVE: mitigated when no image component matches.
  for (const OsComponent& comp : profile.components) {
    for (const std::string& needle : cve.components) {
      if (comp.name.find(needle) != std::string::npos) {
        verdict.mitigated = false;
        verdict.reason = StrFormat("component '%s' present", comp.name.c_str());
        return verdict;
      }
    }
  }
  verdict.mitigated = true;
  verdict.reason = "vulnerable component absent from image";
  return verdict;
}

std::vector<CveVerdict> CheckAllCves(const OsProfile& profile) {
  std::vector<CveVerdict> verdicts;
  for (const CveEntry& cve : CveDatabase()) {
    verdicts.push_back(CheckCve(profile, cve));
  }
  return verdicts;
}

int CountMitigated(const OsProfile& profile) {
  int n = 0;
  for (const CveVerdict& v : CheckAllCves(profile)) {
    n += v.mitigated ? 1 : 0;
  }
  return n;
}

const std::vector<DriverCveYear>& DriverCvesByYear() {
  // Snapshot of driver-related CVE counts as plotted in Fig 1a (rising trend
  // through the late 2010s; Linux above Windows in most years).
  static const std::vector<DriverCveYear>* kData = new std::vector<DriverCveYear>{
      {2014, 32, 21}, {2015, 41, 26}, {2016, 58, 34}, {2017, 95, 52},
      {2018, 84, 61}, {2019, 102, 68}, {2020, 118, 74},
  };
  return *kData;
}

int CraftedApplicationCveCount() { return 172; }  // Paper §5.1.1 [19].
int ShellCveCount() { return 92; }                // Paper §5.1.1 [20].

}  // namespace kite
