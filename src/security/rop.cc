#include "src/security/rop.h"

#include <algorithm>

#include "src/base/log.h"

namespace kite {

const char* InsnClassName(InsnClass c) {
  switch (c) {
    case InsnClass::kDataMove:
      return "DataMove";
    case InsnClass::kArithmetic:
      return "Arithmetic";
    case InsnClass::kLogic:
      return "Logic";
    case InsnClass::kControlFlow:
      return "ControlFlow";
    case InsnClass::kShiftRotate:
      return "ShiftAndRotate";
    case InsnClass::kSettingFlags:
      return "SettingFlags";
    case InsnClass::kString:
      return "String";
    case InsnClass::kFloating:
      return "Floating";
    case InsnClass::kMisc:
      return "Misc";
    case InsnClass::kMmx:
      return "MMX";
    case InsnClass::kNop:
      return "Nop";
    case InsnClass::kRet:
      return "Ret";
    case InsnClass::kCount:
      break;
  }
  return "?";
}

namespace {

// Whether a ModRM byte is acceptable in our subset and how many extra bytes
// it implies (0 for register-direct or simple [reg] memory forms).
bool ModrmOk(uint8_t modrm) {
  const uint8_t mod = modrm >> 6;
  const uint8_t rm = modrm & 7;
  if (mod == 3) {
    return true;  // Register direct.
  }
  if (mod == 0 && rm != 4 && rm != 5) {
    return true;  // [reg], no SIB/disp.
  }
  return false;
}

}  // namespace

DecodedInsn DecodeInsn(std::span<const uint8_t> code) {
  if (code.empty()) {
    return {};
  }
  size_t pos = 0;
  bool prefix_66 = false;
  bool prefix_f3 = false;
  bool prefix_f2 = false;
  // Legacy + REX prefixes (at most a few).
  for (int i = 0; i < 3 && pos < code.size(); ++i) {
    const uint8_t b = code[pos];
    if (b == 0x66) {
      prefix_66 = true;
      ++pos;
    } else if (b == 0xf3) {
      prefix_f3 = true;
      ++pos;
    } else if (b == 0xf2) {
      prefix_f2 = true;
      ++pos;
    } else if ((b & 0xf0) == 0x40) {  // REX.
      ++pos;
    } else {
      break;
    }
  }
  if (pos >= code.size()) {
    return {};
  }
  const uint8_t op = code[pos];
  auto need = [&](size_t extra) { return pos + extra < code.size() + 1; };
  auto mk = [&](size_t len_after_op, InsnClass klass) -> DecodedInsn {
    const size_t total = pos + 1 + len_after_op;
    if (total > code.size()) {
      return {};
    }
    return {total, klass};
  };
  auto modrm_insn = [&](InsnClass klass, size_t imm = 0) -> DecodedInsn {
    if (pos + 1 >= code.size() || !ModrmOk(code[pos + 1])) {
      return {};
    }
    return mk(1 + imm, klass);
  };

  switch (op) {
    case 0x90:
      return mk(0, prefix_f3 ? InsnClass::kNop : InsnClass::kNop);  // nop / pause.
    case 0xc3:
      return mk(0, InsnClass::kRet);
    case 0xc2:
      return mk(2, InsnClass::kRet);
    case 0xc9:  // leave
    case 0xf4:  // hlt
    case 0xcc:  // int3
      return mk(0, InsnClass::kMisc);
    case 0xf8:  // clc
    case 0xf9:  // stc
    case 0xf5:  // cmc
      return mk(0, InsnClass::kSettingFlags);
    case 0xa4:  // movsb
    case 0xa5:  // movs
    case 0xaa:  // stosb
    case 0xab:  // stos
    case 0xac:  // lodsb
    case 0xad:  // lods
    case 0xae:  // scasb
    case 0xaf:  // scas
      return mk(0, InsnClass::kString);
    case 0x89:  // mov r/m, r
    case 0x8b:  // mov r, r/m
      return modrm_insn(InsnClass::kDataMove);
    case 0x8d:  // lea
      return modrm_insn(InsnClass::kDataMove);
    case 0x01:  // add
    case 0x29:  // sub
      return modrm_insn(InsnClass::kArithmetic);
    case 0x21:  // and
    case 0x09:  // or
    case 0x31:  // xor
      return modrm_insn(InsnClass::kLogic);
    case 0x39:  // cmp
    case 0x85:  // test
      return modrm_insn(InsnClass::kSettingFlags);
    case 0xc1:  // shift group, imm8
      return modrm_insn(InsnClass::kShiftRotate, 1);
    case 0xd3:  // shift group by cl
      return modrm_insn(InsnClass::kShiftRotate);
    case 0xf7: {  // group 3: not/neg/mul/div by reg field.
      if (pos + 1 >= code.size() || !ModrmOk(code[pos + 1])) {
        return {};
      }
      const uint8_t reg = (code[pos + 1] >> 3) & 7;
      if (reg == 2 || reg == 3) {
        return mk(1, reg == 2 ? InsnClass::kLogic : InsnClass::kArithmetic);
      }
      if (reg >= 4) {  // mul/imul/div/idiv.
        return mk(1, InsnClass::kArithmetic);
      }
      return {};
    }
    case 0xff: {  // group 5.
      if (pos + 1 >= code.size() || !ModrmOk(code[pos + 1])) {
        return {};
      }
      const uint8_t reg = (code[pos + 1] >> 3) & 7;
      if (reg == 0 || reg == 1) {
        return mk(1, InsnClass::kArithmetic);  // inc/dec.
      }
      if (reg == 2 || reg == 4) {
        return mk(1, InsnClass::kControlFlow);  // call/jmp indirect.
      }
      if (reg == 6) {
        return mk(1, InsnClass::kDataMove);  // push r/m.
      }
      return {};
    }
    case 0xeb:  // jmp rel8
      return mk(1, InsnClass::kControlFlow);
    case 0xe9:  // jmp rel32
    case 0xe8:  // call rel32
      return mk(4, InsnClass::kControlFlow);
    case 0x0f: {
      if (pos + 1 >= code.size()) {
        return {};
      }
      const uint8_t op2 = code[pos + 1];
      ++pos;  // Account for the second opcode byte via mk()'s pos+1.
      if (op2 >= 0x80 && op2 <= 0x8f) {
        return mk(4, InsnClass::kControlFlow);  // jcc rel32.
      }
      switch (op2) {
        case 0xaf:  // imul r, r/m
          return modrm_insn(InsnClass::kArithmetic);
        case 0xa2:  // cpuid
          return mk(0, InsnClass::kMisc);
        case 0x31:  // rdtsc
          return mk(0, InsnClass::kMisc);
        case 0x05:  // syscall
          return mk(0, InsnClass::kMisc);
        case 0x1f:  // multi-byte nop
          return modrm_insn(InsnClass::kNop);
        case 0x58:  // addps/addsd...
        case 0x59:  // mulps
        case 0x5c:  // subps
        case 0x2e:  // ucomiss
          return modrm_insn(InsnClass::kFloating);
        case 0x6f:  // movq/movdqa
        case 0x7f:
        case 0xef:  // pxor
        case 0xfe:  // paddd
          return modrm_insn(prefix_66 || prefix_f2 || prefix_f3 ? InsnClass::kMmx
                                                                : InsnClass::kMmx);
        default:
          return {};
      }
    }
    default:
      break;
  }
  if (op >= 0x50 && op <= 0x5f) {  // push/pop r.
    return mk(0, InsnClass::kDataMove);
  }
  if (op >= 0xb8 && op <= 0xbf) {  // mov r, imm32.
    return mk(4, InsnClass::kDataMove);
  }
  if (op >= 0x70 && op <= 0x7f) {  // jcc rel8.
    return mk(1, InsnClass::kControlFlow);
  }
  if (op >= 0xd8 && op <= 0xdf) {  // x87 escape.
    return modrm_insn(InsnClass::kFloating);
  }
  (void)need;
  (void)prefix_f2;
  return {};
}

namespace {

// Emits one random instruction of the given class using real encodings.
void EmitInsn(InsnClass klass, Rng* rng, Buffer* out) {
  auto modrm_reg_direct = [&]() -> uint8_t {
    return static_cast<uint8_t>(0xc0 | rng->NextBelow(64));
  };
  auto maybe_rex = [&] {
    if (rng->NextBool(0.55)) {
      out->push_back(0x48);
    }
  };
  switch (klass) {
    case InsnClass::kDataMove: {
      switch (rng->NextBelow(4)) {
        case 0:
          maybe_rex();
          out->push_back(rng->NextBool(0.5) ? 0x89 : 0x8b);
          out->push_back(modrm_reg_direct());
          break;
        case 1:
          out->push_back(static_cast<uint8_t>(0x50 + rng->NextBelow(16)));  // push/pop.
          break;
        case 2: {
          out->push_back(static_cast<uint8_t>(0xb8 + rng->NextBelow(8)));
          for (int i = 0; i < 4; ++i) {
            out->push_back(static_cast<uint8_t>(rng->NextU64()));
          }
          break;
        }
        default:
          maybe_rex();
          out->push_back(0x8d);  // lea.
          out->push_back(modrm_reg_direct());
          break;
      }
      break;
    }
    case InsnClass::kArithmetic: {
      maybe_rex();
      switch (rng->NextBelow(3)) {
        case 0:
          out->push_back(rng->NextBool(0.5) ? 0x01 : 0x29);
          out->push_back(modrm_reg_direct());
          break;
        case 1:
          out->push_back(0x0f);
          out->push_back(0xaf);  // imul.
          out->push_back(modrm_reg_direct());
          break;
        default:
          out->push_back(0xff);  // inc/dec.
          out->push_back(static_cast<uint8_t>(0xc0 | (rng->NextBelow(2) << 3) |
                                              rng->NextBelow(8)));
          break;
      }
      break;
    }
    case InsnClass::kLogic: {
      maybe_rex();
      const uint8_t ops[] = {0x21, 0x09, 0x31};
      out->push_back(ops[rng->NextBelow(3)]);
      out->push_back(modrm_reg_direct());
      break;
    }
    case InsnClass::kControlFlow: {
      switch (rng->NextBelow(4)) {
        case 0:
          out->push_back(0xeb);
          out->push_back(static_cast<uint8_t>(rng->NextU64()));
          break;
        case 1:
          out->push_back(rng->NextBool(0.5) ? 0xe8 : 0xe9);
          for (int i = 0; i < 4; ++i) {
            out->push_back(static_cast<uint8_t>(rng->NextU64()));
          }
          break;
        case 2:
          out->push_back(static_cast<uint8_t>(0x70 + rng->NextBelow(16)));
          out->push_back(static_cast<uint8_t>(rng->NextU64()));
          break;
        default:
          out->push_back(0xff);  // call/jmp indirect.
          out->push_back(static_cast<uint8_t>(0xc0 | ((rng->NextBool(0.5) ? 2 : 4) << 3) |
                                              rng->NextBelow(8)));
          break;
      }
      break;
    }
    case InsnClass::kShiftRotate: {
      maybe_rex();
      if (rng->NextBool(0.7)) {
        out->push_back(0xc1);
        const uint8_t regs[] = {0, 1, 4, 5, 7};  // rol/ror/shl/shr/sar.
        out->push_back(static_cast<uint8_t>(0xc0 | (regs[rng->NextBelow(5)] << 3) |
                                            rng->NextBelow(8)));
        out->push_back(static_cast<uint8_t>(rng->NextBelow(64)));
      } else {
        out->push_back(0xd3);
        out->push_back(static_cast<uint8_t>(0xc0 | (4 << 3) | rng->NextBelow(8)));
      }
      break;
    }
    case InsnClass::kSettingFlags: {
      if (rng->NextBool(0.8)) {
        maybe_rex();
        out->push_back(rng->NextBool(0.5) ? 0x39 : 0x85);
        out->push_back(modrm_reg_direct());
      } else {
        const uint8_t ops[] = {0xf8, 0xf9, 0xf5};
        out->push_back(ops[rng->NextBelow(3)]);
      }
      break;
    }
    case InsnClass::kString: {
      if (rng->NextBool(0.4)) {
        out->push_back(0xf3);  // rep.
      }
      const uint8_t ops[] = {0xa4, 0xa5, 0xaa, 0xab, 0xac, 0xad, 0xae, 0xaf};
      out->push_back(ops[rng->NextBelow(8)]);
      break;
    }
    case InsnClass::kFloating: {
      if (rng->NextBool(0.5)) {
        out->push_back(static_cast<uint8_t>(0xd8 + rng->NextBelow(8)));  // x87.
        out->push_back(modrm_reg_direct());
      } else {
        out->push_back(0x0f);
        const uint8_t ops[] = {0x58, 0x59, 0x5c, 0x2e};
        out->push_back(ops[rng->NextBelow(4)]);
        out->push_back(modrm_reg_direct());
      }
      break;
    }
    case InsnClass::kMisc: {
      const uint8_t singles[] = {0xc9, 0xf4, 0xcc};
      if (rng->NextBool(0.5)) {
        out->push_back(singles[rng->NextBelow(3)]);
      } else {
        out->push_back(0x0f);
        const uint8_t ops[] = {0xa2, 0x31, 0x05};
        out->push_back(ops[rng->NextBelow(3)]);
      }
      break;
    }
    case InsnClass::kMmx: {
      if (rng->NextBool(0.4)) {
        out->push_back(0x66);
      }
      out->push_back(0x0f);
      const uint8_t ops[] = {0x6f, 0x7f, 0xef, 0xfe};
      out->push_back(ops[rng->NextBelow(4)]);
      out->push_back(static_cast<uint8_t>(0xc0 | rng->NextBelow(64)));
      break;
    }
    case InsnClass::kNop: {
      if (rng->NextBool(0.7)) {
        out->push_back(0x90);
      } else {
        out->push_back(0x0f);
        out->push_back(0x1f);
        out->push_back(static_cast<uint8_t>(0xc0 | rng->NextBelow(8)));
      }
      break;
    }
    case InsnClass::kRet: {
      if (rng->NextBool(0.9)) {
        out->push_back(0xc3);
      } else {
        out->push_back(0xc2);
        out->push_back(static_cast<uint8_t>(rng->NextBelow(64) * 8));
        out->push_back(0x00);
      }
      break;
    }
    case InsnClass::kCount:
      break;
  }
}

}  // namespace

Buffer GenerateCodeImage(const CodeProfile& code, Rng* rng, double scale) {
  const size_t target = static_cast<size_t>(static_cast<double>(code.code_bytes) * scale);
  Buffer out;
  out.reserve(target + 16);

  const double weights[] = {
      code.data_move, code.arithmetic, code.logic,    code.control_flow,
      code.shift_rotate, code.setting_flags, code.string_ops, code.floating,
      code.misc,      code.mmx_sse,  code.nop,
  };
  double total_weight = 0;
  for (double w : weights) {
    total_weight += w;
  }
  KITE_CHECK(total_weight > 0);
  // Function density: one ret per ~(100 / ret_density) instructions.
  const double ret_probability = code.ret_density / 100.0;

  while (out.size() < target) {
    if (rng->NextBool(ret_probability)) {
      EmitInsn(InsnClass::kRet, rng, &out);
      continue;
    }
    double pick = rng->NextDouble() * total_weight;
    int klass = 0;
    for (; klass < 10; ++klass) {
      if (pick < weights[klass]) {
        break;
      }
      pick -= weights[klass];
    }
    EmitInsn(static_cast<InsnClass>(klass), rng, &out);
  }
  return out;
}

GadgetCounts ScanGadgets(std::span<const uint8_t> code, RopScanParams params) {
  GadgetCounts counts;
  for (size_t ret_pos = 0; ret_pos < code.size(); ++ret_pos) {
    const uint8_t b = code[ret_pos];
    if (b != 0xc3 && !(b == 0xc2 && ret_pos + 2 < code.size())) {
      continue;
    }
    const size_t window = std::min(params.max_gadget_bytes, ret_pos);
    for (size_t back = 1; back <= window; ++back) {
      const size_t start = ret_pos - back;
      // Linear decode from start; must land exactly on the ret.
      size_t pos = start;
      int insns = 0;
      InsnClass first = InsnClass::kMisc;
      bool ok = true;
      while (pos < ret_pos) {
        DecodedInsn insn = DecodeInsn(code.subspan(pos, ret_pos - pos));
        if (!insn.valid() || insn.klass == InsnClass::kRet) {
          ok = false;
          break;
        }
        if (insns == 0) {
          first = insn.klass;
        }
        pos += insn.length;
        if (++insns > params.max_gadget_insns) {
          ok = false;
          break;
        }
      }
      if (ok && pos == ret_pos && insns >= 1) {
        ++counts.by_class[static_cast<int>(first)];
        ++counts.total;
      }
    }
    // The bare ret itself is a gadget.
    ++counts.by_class[static_cast<int>(InsnClass::kRet)];
    ++counts.total;
  }
  return counts;
}

GadgetCounts AnalyzeProfile(const OsProfile& profile, double scale, uint64_t seed) {
  Rng rng(seed ^ static_cast<uint64_t>(profile.kind));
  Buffer image = GenerateCodeImage(profile.code, &rng, scale);
  GadgetCounts counts = ScanGadgets(image);
  // Scale counts back to the full image size.
  const double factor = 1.0 / scale;
  GadgetCounts scaled;
  for (int i = 0; i < kInsnClassCount; ++i) {
    scaled.by_class[i] = static_cast<uint64_t>(counts.by_class[i] * factor);
    scaled.total += scaled.by_class[i];
  }
  return scaled;
}

}  // namespace kite
