// Storage benchmarks: dd (Fig 11) and SysBench file I/O (Fig 12).
#ifndef SRC_WORKLOADS_STORAGEBENCH_H_
#define SRC_WORKLOADS_STORAGEBENCH_H_

#include <functional>
#include <memory>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/workloads/fs.h"

namespace kite {

// --- dd: sequential raw-device I/O through blkfront. dd with the kernel's
// readahead keeps a small number of requests in flight. ---

struct DdConfig {
  bool write = false;
  size_t block_bytes = 1024 * 1024;
  int64_t total_bytes = 256LL * 1024 * 1024;
  int inflight = 4;  // Readahead depth.
};

struct DdResult {
  double mbytes_per_sec = 0;
  double elapsed_s = 0;
};

class DdBench {
 public:
  DdBench(Blkfront* dev, DdConfig config);
  void Run(std::function<void(const DdResult&)> done);
  bool finished() const { return finished_; }
  const DdResult& result() const { return result_; }

 private:
  void IssueNext();
  void OnBlockDone();

  Blkfront* dev_;
  DdConfig config_;
  std::function<void(const DdResult&)> done_;
  SimTime started_at_;
  int64_t issued_ = 0;
  int64_t completed_bytes_ = 0;
  int outstanding_ = 0;
  bool finished_ = false;
  DdResult result_;
};

// --- SysBench fileio: random reads/writes (3:2) over a file set. ---

struct SysbenchFileIoConfig {
  int files = 192;
  int64_t total_bytes = 3LL * 1024 * 1024 * 1024;  // Scaled from 15 GB.
  int threads = 20;
  size_t block_bytes = 256 * 1024;
  double read_fraction = 0.6;  // 3:2 read:write.
  SimDuration duration = Millis(500);
};

struct SysbenchFileIoResult {
  double mbytes_per_sec = 0;
  double read_mbps = 0;
  double write_mbps = 0;
  uint64_t ops = 0;
  Stats latency_ms;
};

class SysbenchFileIo {
 public:
  // Populates the file set on construction (journal suspended).
  SysbenchFileIo(SimpleFs* fs, SysbenchFileIoConfig config);
  ~SysbenchFileIo();
  void Run(std::function<void(const SysbenchFileIoResult&)> done);
  bool finished() const { return finished_; }
  const SysbenchFileIoResult& result() const { return result_; }

 private:
  struct Thread;
  void IssueOp(Thread* t);
  void FinishIfDue();

  SimpleFs* fs_;
  SysbenchFileIoConfig config_;
  Rng rng_{0xf11e};
  std::function<void(const SysbenchFileIoResult&)> done_;
  SimTime started_at_;
  SimTime deadline_;
  uint64_t ops_ = 0;
  uint64_t read_bytes_ = 0;
  uint64_t write_bytes_ = 0;
  bool finished_ = false;
  SysbenchFileIoResult result_;
  std::vector<std::unique_ptr<Thread>> threads_;
};

}  // namespace kite

#endif  // SRC_WORKLOADS_STORAGEBENCH_H_
