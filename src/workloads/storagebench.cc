#include "src/workloads/storagebench.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {

// --- DdBench. ---

DdBench::DdBench(Blkfront* dev, DdConfig config) : dev_(dev), config_(config) {}

void DdBench::Run(std::function<void(const DdResult&)> done) {
  done_ = std::move(done);
  started_at_ = dev_->guest() != nullptr
                    ? dev_->guest()->hypervisor()->executor()->Now()
                    : SimTime();
  for (int i = 0; i < config_.inflight; ++i) {
    IssueNext();
  }
}

void DdBench::IssueNext() {
  if (issued_ >= config_.total_bytes) {
    return;
  }
  const int64_t offset = issued_ % (dev_->capacity_bytes() - config_.block_bytes);
  issued_ += static_cast<int64_t>(config_.block_bytes);
  ++outstanding_;
  auto cb = [this](bool) { OnBlockDone(); };
  if (config_.write) {
    dev_->Write(offset, Buffer(config_.block_bytes, 0), cb);
  } else {
    dev_->Read(offset, config_.block_bytes, nullptr, cb);
  }
}

void DdBench::OnBlockDone() {
  --outstanding_;
  completed_bytes_ += static_cast<int64_t>(config_.block_bytes);
  if (completed_bytes_ >= config_.total_bytes) {
    if (!finished_) {
      finished_ = true;
      const double elapsed =
          (dev_->guest()->hypervisor()->executor()->Now() - started_at_).seconds();
      result_.elapsed_s = elapsed;
      result_.mbytes_per_sec =
          elapsed > 0 ? completed_bytes_ / (1024.0 * 1024.0) / elapsed : 0;
      if (done_) {
        done_(result_);
      }
    }
    return;
  }
  IssueNext();
}

// --- SysbenchFileIo. ---

struct SysbenchFileIo::Thread {
  bool idle = true;
  SimTime op_started;
};

SysbenchFileIo::SysbenchFileIo(SimpleFs* fs, SysbenchFileIoConfig config)
    : fs_(fs), config_(config) {
  const int64_t per_file = config_.total_bytes / config_.files;
  KITE_CHECK(fs_->CreateMany("test_file.", config_.files, per_file))
      << "file-set population failed (device too small?)";
  for (int i = 0; i < config_.threads; ++i) {
    threads_.push_back(std::make_unique<Thread>());
  }
}

SysbenchFileIo::~SysbenchFileIo() = default;

void SysbenchFileIo::Run(std::function<void(const SysbenchFileIoResult&)> done) {
  done_ = std::move(done);
  Executor* ex = fs_->device()->guest()->hypervisor()->executor();
  started_at_ = ex->Now();
  deadline_ = started_at_ + config_.duration;
  for (auto& t : threads_) {
    IssueOp(t.get());
  }
}

void SysbenchFileIo::IssueOp(Thread* t) {
  Executor* ex = fs_->device()->guest()->hypervisor()->executor();
  if (ex->Now() >= deadline_) {
    t->idle = true;
    FinishIfDue();
    return;
  }
  t->idle = false;
  t->op_started = ex->Now();
  const std::string file =
      StrFormat("test_file.%06d", static_cast<int>(rng_.NextBelow(config_.files)));
  const int64_t file_size = fs_->FileSize(file);
  const int64_t max_off = file_size - static_cast<int64_t>(config_.block_bytes);
  const int64_t offset =
      max_off > 0
          ? static_cast<int64_t>(rng_.NextBelow(static_cast<uint64_t>(max_off) /
                                                kSectorSize)) *
                static_cast<int64_t>(kSectorSize)
          : 0;
  const bool is_read = rng_.NextBool(config_.read_fraction);
  auto cb = [this, t, is_read](bool) {
    Executor* ex2 = fs_->device()->guest()->hypervisor()->executor();
    ++ops_;
    result_.latency_ms.Add((ex2->Now() - t->op_started).ms());
    if (is_read) {
      read_bytes_ += config_.block_bytes;
    } else {
      write_bytes_ += config_.block_bytes;
    }
    IssueOp(t);
  };
  if (is_read) {
    fs_->Read(file, offset, config_.block_bytes, cb);
  } else {
    fs_->Write(file, offset, config_.block_bytes, cb);
  }
}

void SysbenchFileIo::FinishIfDue() {
  if (finished_) {
    return;
  }
  for (const auto& t : threads_) {
    if (!t->idle) {
      return;
    }
  }
  finished_ = true;
  Executor* ex = fs_->device()->guest()->hypervisor()->executor();
  const double elapsed = (ex->Now() - started_at_).seconds();
  result_.ops = ops_;
  const double mb = 1024.0 * 1024.0;
  result_.read_mbps = elapsed > 0 ? read_bytes_ / mb / elapsed : 0;
  result_.write_mbps = elapsed > 0 ? write_bytes_ / mb / elapsed : 0;
  result_.mbytes_per_sec = result_.read_mbps + result_.write_mbps;
  if (done_) {
    done_(result_);
  }
}

}  // namespace kite
