#include "src/workloads/memcached.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {

MemcachedServer::MemcachedServer(EtherStack* stack, uint16_t port, MemcachedParams params)
    : stack_(stack), params_(params) {
  stack_->ListenTcp(port, [this](TcpConn* conn) {
    auto inbuf = std::make_shared<std::string>();
    conn->SetDataCallback([this, conn, inbuf](std::span<const uint8_t> data) {
      inbuf->append(reinterpret_cast<const char*>(data.data()), data.size());
      Process(conn, inbuf.get());
    });
  });
}

void MemcachedServer::Process(TcpConn* conn, std::string* inbuf) {
  for (;;) {
    const size_t eol = inbuf->find("\r\n");
    if (eol == std::string::npos) {
      return;
    }
    const std::string line = inbuf->substr(0, eol);
    std::string reply;
    if (line.rfind("set ", 0) == 0) {
      // "set <key> <flags> <exptime> <bytes>"
      const auto parts = SplitPath(line, ' ');
      if (parts.size() < 5) {
        inbuf->erase(0, eol + 2);
        reply = "CLIENT_ERROR bad command line\r\n";
      } else {
        const int64_t bytes = ParseDecimal(parts[4]);
        if (bytes < 0 || inbuf->size() < eol + 2 + static_cast<size_t>(bytes) + 2) {
          return;  // Data block not fully arrived yet.
        }
        const std::string value = inbuf->substr(eol + 2, static_cast<size_t>(bytes));
        inbuf->erase(0, eol + 2 + static_cast<size_t>(bytes) + 2);
        store_[parts[1]] = value;
        ++sets_;
        op_bytes_ = value.size();
        reply = "STORED\r\n";
      }
    } else if (line.rfind("get ", 0) == 0) {
      inbuf->erase(0, eol + 2);
      const std::string key = line.substr(4);
      ++gets_;
      auto it = store_.find(key);
      size_t bytes = 0;
      if (it != store_.end()) {
        ++hits_;
        bytes = it->second.size();
        reply = StrFormat("VALUE %s 0 %zu\r\n", key.c_str(), bytes) + it->second +
                "\r\nEND\r\n";
      } else {
        reply = "END\r\n";
      }
      op_bytes_ = bytes;
    } else {
      inbuf->erase(0, eol + 2);
      reply = "ERROR\r\n";
    }
    if (stack_->vcpu() == nullptr) {
      conn->Send(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(reply.data()),
                                          reply.size()));
    } else {
      // Reply at CPU-completion time (server work serializes).
      SimTime cpu_done;
      {
        CpuScope cpu_scope(KITE_CPU_CATEGORY("app/workload"));
        cpu_done = stack_->vcpu()->Charge(
            params_.per_op_cost + Nanos(static_cast<int64_t>(params_.per_byte_ns * op_bytes_)));
      }
      op_bytes_ = 0;
      stack_->executor()->PostAt(
          cpu_done, KITE_POST_SITE("memcached/reply"),
          [conn, alive = conn->AliveGuard(), reply] {
            if (*alive && !conn->closed()) {
              conn->Send(std::span<const uint8_t>(
                  reinterpret_cast<const uint8_t*>(reply.data()), reply.size()));
            }
          });
    }
    if (conn->closed()) {
      return;
    }
  }
}

// --- MemtierBench. ---

struct MemtierBench::Conn {
  TcpConn* conn = nullptr;
  std::string inbuf;
  SimTime op_started;
  bool waiting_set = false;  // Current op is a set (expects STORED).
  bool busy = false;
};

MemtierBench::MemtierBench(EtherStack* client, Ipv4Addr server_ip, uint16_t port,
                           MemtierConfig config)
    : client_(client), server_ip_(server_ip), port_(port), config_(config) {}

MemtierBench::~MemtierBench() = default;

void MemtierBench::Run(std::function<void(const MemtierResult&)> done) {
  done_ = std::move(done);
  started_at_ = client_->executor()->Now();
  for (int i = 0; i < config_.connections; ++i) {
    auto c = std::make_unique<Conn>();
    Conn* raw = c.get();
    conns_.push_back(std::move(c));
    raw->conn =
        client_->ConnectTcp(server_ip_, port_, [this, raw](TcpConn*) { IssueNext(raw); });
    raw->conn->SetDataCallback([this, raw](std::span<const uint8_t> data) {
      raw->inbuf.append(reinterpret_cast<const char*>(data.data()), data.size());
      // One outstanding op per connection: the response is complete when the
      // terminator for its type has arrived.
      const bool complete = raw->waiting_set
                                ? raw->inbuf.find("STORED\r\n") != std::string::npos ||
                                      raw->inbuf.find("ERROR") != std::string::npos
                                : raw->inbuf.find("END\r\n") != std::string::npos;
      if (complete) {
        raw->inbuf.clear();
        OnOpDone(raw);
      }
    });
  }
}

void MemtierBench::IssueNext(Conn* c) {
  if (finished_ || issued_ >= config_.total_ops) {
    return;
  }
  ++issued_;
  c->busy = true;
  c->op_started = client_->executor()->Now();
  const std::string key =
      StrFormat("memtier-%08llu",
                static_cast<unsigned long long>(rng_.NextBelow(config_.key_space)));
  std::string req;
  // 1:N set:get ratio — a set with probability ratio/(1+ratio).
  if (rng_.NextBool(config_.set_get_ratio / (1.0 + config_.set_get_ratio))) {
    c->waiting_set = true;
    req = StrFormat("set %s 0 0 %zu\r\n", key.c_str(), config_.value_bytes);
    req.append(config_.value_bytes, 'd');
    req += "\r\n";
  } else {
    c->waiting_set = false;
    req = StrFormat("get %s\r\n", key.c_str());
  }
  c->conn->Send(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(req.data()),
                                         req.size()));
}

void MemtierBench::OnOpDone(Conn* c) {
  c->busy = false;
  ++completed_;
  result_.latency_ms.Add((client_->executor()->Now() - c->op_started).ms());
  if (completed_ >= config_.total_ops) {
    if (!finished_) {
      finished_ = true;
      const double elapsed = (client_->executor()->Now() - started_at_).seconds();
      result_.elapsed_s = elapsed;
      result_.completed = completed_;
      result_.avg_latency_ms = result_.latency_ms.Mean();
      result_.ops_per_sec = elapsed > 0 ? completed_ / elapsed : 0;
      if (done_) {
        done_(result_);
      }
    }
    return;
  }
  IssueNext(c);
}

}  // namespace kite
