// Apache-style HTTP/1.0 file server and the ApacheBench (ab) load generator
// (paper §5.3.3, Fig 8).
#ifndef SRC_WORKLOADS_HTTP_H_
#define SRC_WORKLOADS_HTTP_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/base/stats.h"
#include "src/net/tcp.h"

namespace kite {

struct HttpServerParams {
  SimDuration per_request_cost = Micros(30);  // Apache request handling.
  // Per-byte serving cost (userspace copy + socket writes): ≈190 MB/s per
  // worker, matching the paper's Apache throughput class.
  double per_byte_ns = 5.0;
};

// Serves in-memory files over a real (minimal) HTTP/1.0 dialect with
// keep-alive. Content is generated (the paper's files are random data; only
// sizes matter for throughput).
class HttpServer {
 public:
  HttpServer(EtherStack* stack, uint16_t port, HttpServerParams params = HttpServerParams{});

  void AddFile(const std::string& path, size_t size);
  uint64_t requests_served() const { return requests_; }
  uint64_t bytes_served() const { return bytes_; }

 private:
  void HandleRequest(TcpConn* conn, const std::string& path);

  EtherStack* stack_;
  HttpServerParams params_;
  std::map<std::string, size_t> files_;
  uint64_t requests_ = 0;
  uint64_t bytes_ = 0;
};

struct AbConfig {
  int total_requests = 1000;
  int concurrency = 40;
  std::string path = "/file";
};

struct AbResult {
  double elapsed_s = 0;
  double requests_per_sec = 0;
  double mbytes_per_sec = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  Stats latency_ms;
};

// ApacheBench: `concurrency` keep-alive connections issue requests until
// `total_requests` complete. Drive the simulation until done() fires.
class ApacheBench {
 public:
  ApacheBench(EtherStack* client, Ipv4Addr server_ip, uint16_t port, AbConfig config);
  ~ApacheBench();

  void Run(std::function<void(const AbResult&)> done);
  bool finished() const { return finished_; }
  const AbResult& result() const { return result_; }

 private:
  struct Worker;
  void StartWorker(int id);
  void OnRequestDone(Worker* w, bool ok, SimDuration latency, size_t bytes);

  EtherStack* client_;
  Ipv4Addr server_ip_;
  uint16_t port_;
  AbConfig config_;
  std::function<void(const AbResult&)> done_;
  SimTime started_at_;
  int issued_ = 0;
  bool finished_ = false;
  uint64_t bytes_total_ = 0;
  AbResult result_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace kite

#endif  // SRC_WORKLOADS_HTTP_H_
