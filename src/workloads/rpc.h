// Minimal length-prefixed RPC framing over TCP, used by the MySQL server
// model (the real MySQL wire protocol is out of scope; DESIGN.md documents
// the substitution). Frame: [u32 length][u8 type][payload].
#ifndef SRC_WORKLOADS_RPC_H_
#define SRC_WORKLOADS_RPC_H_

#include <deque>
#include <functional>
#include <memory>

#include "src/net/tcp.h"

namespace kite {

// Parses frames out of a TCP byte stream.
class RpcFramer {
 public:
  struct Frame {
    uint8_t type = 0;
    Buffer payload;
  };

  // Feeds bytes; returns all complete frames.
  std::vector<Frame> Feed(std::span<const uint8_t> data);

  static Buffer Encode(uint8_t type, std::span<const uint8_t> payload);

 private:
  Buffer buf_;
};

// Server: one handler invoked per request frame; respond exactly once.
class RpcServer {
 public:
  using RespondFn = std::function<void(uint8_t type, Buffer payload)>;
  using Handler = std::function<void(uint8_t type, const Buffer& payload, RespondFn respond)>;

  RpcServer(EtherStack* stack, uint16_t port, Handler handler);

  uint64_t requests() const { return requests_; }

 private:
  EtherStack* stack_;
  Handler handler_;
  uint64_t requests_ = 0;
};

// Client connection with pipelining; responses match requests FIFO.
class RpcClient {
 public:
  using ResponseFn = std::function<void(uint8_t type, const Buffer& payload)>;

  // Connects immediately; calls made before the connection establishes are
  // queued.
  RpcClient(EtherStack* stack, Ipv4Addr server, uint16_t port);

  void Call(uint8_t type, Buffer payload, ResponseFn on_response);
  size_t outstanding() const { return pending_->size(); }
  bool connected() const { return connected_; }
  bool failed() const { return failed_; }

 private:
  EtherStack* stack_;
  TcpConn* conn_ = nullptr;
  bool connected_ = false;
  bool failed_ = false;
  std::deque<Buffer> queued_sends_;
  std::shared_ptr<std::deque<ResponseFn>> pending_ =
      std::make_shared<std::deque<ResponseFn>>();
  std::shared_ptr<RpcFramer> framer_ = std::make_shared<RpcFramer>();
};

}  // namespace kite

#endif  // SRC_WORKLOADS_RPC_H_
