#include "src/workloads/http.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {
namespace {

constexpr std::string_view kHeaderEnd = "\r\n\r\n";

}  // namespace

HttpServer::HttpServer(EtherStack* stack, uint16_t port, HttpServerParams params)
    : stack_(stack), params_(params) {
  stack_->ListenTcp(port, [this](TcpConn* conn) {
    auto inbuf = std::make_shared<std::string>();
    conn->SetDataCallback([this, conn, inbuf](std::span<const uint8_t> data) {
      inbuf->append(reinterpret_cast<const char*>(data.data()), data.size());
      size_t end;
      while ((end = inbuf->find(kHeaderEnd)) != std::string::npos) {
        const std::string request = inbuf->substr(0, end);
        inbuf->erase(0, end + kHeaderEnd.size());
        // "GET <path> HTTP/1.x"
        std::string path;
        if (request.rfind("GET ", 0) == 0) {
          const size_t sp = request.find(' ', 4);
          path = request.substr(4, sp == std::string::npos ? std::string::npos : sp - 4);
        }
        HandleRequest(conn, path);
        if (conn->closed()) {
          break;
        }
      }
    });
  });
}

void HttpServer::AddFile(const std::string& path, size_t size) { files_[path] = size; }

void HttpServer::HandleRequest(TcpConn* conn, const std::string& path) {
  ++requests_;
  auto it = files_.find(path);
  if (it == files_.end()) {
    const std::string hdr = "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n";
    conn->Send(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(hdr.data()),
                                        hdr.size()));
    return;
  }
  const size_t size = it->second;
  std::string hdr = StrFormat("HTTP/1.0 200 OK\r\nContent-Length: %zu\r\n\r\n", size);
  Buffer response(hdr.begin(), hdr.end());
  response.resize(hdr.size() + size, 0x58);  // 'X' body.
  bytes_ += size;
  if (stack_->vcpu() == nullptr) {
    conn->Send(std::move(response));
    return;
  }
  // Serialize on the server CPU: the response leaves when the CPU has
  // actually executed this request's work (queueing behind other requests).
  SimTime cpu_done;
  {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("app/workload"));
    cpu_done = stack_->vcpu()->Charge(
        params_.per_request_cost + Nanos(static_cast<int64_t>(params_.per_byte_ns * size)));
  }
  stack_->executor()->PostAt(
      cpu_done, KITE_POST_SITE("http/response"),
      [conn, alive = conn->AliveGuard(), response = std::move(response)] {
        if (*alive && !conn->closed()) {
          conn->Send(response);
        }
      });
}

// --- ApacheBench. ---

struct ApacheBench::Worker {
  TcpConn* conn = nullptr;
  std::string inbuf;
  size_t expect_body = 0;
  bool in_body = false;
  SimTime request_started;
  bool busy = false;
};

ApacheBench::ApacheBench(EtherStack* client, Ipv4Addr server_ip, uint16_t port,
                         AbConfig config)
    : client_(client), server_ip_(server_ip), port_(port), config_(config) {}

ApacheBench::~ApacheBench() = default;

void ApacheBench::Run(std::function<void(const AbResult&)> done) {
  done_ = std::move(done);
  started_at_ = client_->executor()->Now();
  const int workers = std::min(config_.concurrency, config_.total_requests);
  for (int i = 0; i < workers; ++i) {
    StartWorker(i);
  }
}

void ApacheBench::StartWorker(int id) {
  auto worker = std::make_unique<Worker>();
  Worker* w = worker.get();
  workers_.push_back(std::move(worker));
  w->conn = client_->ConnectTcp(server_ip_, port_, [this, w](TcpConn*) {
    // Connection established: issue the first request.
    if (issued_ < config_.total_requests) {
      ++issued_;
      w->busy = true;
      w->request_started = client_->executor()->Now();
      const std::string req = StrFormat("GET %s HTTP/1.0\r\n\r\n", config_.path.c_str());
      w->conn->Send(std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(req.data()), req.size()));
    }
  });
  w->conn->SetDataCallback([this, w](std::span<const uint8_t> data) {
    w->inbuf.append(reinterpret_cast<const char*>(data.data()), data.size());
    for (;;) {
      if (!w->in_body) {
        const size_t end = w->inbuf.find("\r\n\r\n");
        if (end == std::string::npos) {
          return;
        }
        const std::string header = w->inbuf.substr(0, end);
        w->inbuf.erase(0, end + 4);
        const size_t cl = header.find("Content-Length: ");
        w->expect_body =
            cl == std::string::npos
                ? 0
                : static_cast<size_t>(ParseDecimal(
                      header.substr(cl + 16, header.find('\r', cl) - cl - 16)));
        w->in_body = true;
      }
      if (w->inbuf.size() < w->expect_body) {
        return;
      }
      const size_t body = w->expect_body;
      w->inbuf.erase(0, body);
      w->in_body = false;
      OnRequestDone(w, true, client_->executor()->Now() - w->request_started, body);
      if (finished_ || !w->busy) {
        return;
      }
    }
  });
  w->conn->SetCloseCallback([this, w] {
    if (w->busy && !finished_) {
      OnRequestDone(w, false, SimDuration(0), 0);
    }
  });
}

void ApacheBench::OnRequestDone(Worker* w, bool ok, SimDuration latency, size_t bytes) {
  w->busy = false;
  if (ok) {
    ++result_.completed;
    result_.latency_ms.Add(latency.ms());
    bytes_total_ += bytes;  // ab reports transfer rate over body bytes.
  } else {
    ++result_.failed;
  }
  if (result_.completed + result_.failed >=
      static_cast<uint64_t>(config_.total_requests)) {
    if (!finished_) {
      finished_ = true;
      const double elapsed = (client_->executor()->Now() - started_at_).seconds();
      result_.elapsed_s = elapsed;
      result_.requests_per_sec = elapsed > 0 ? result_.completed / elapsed : 0;
      result_.mbytes_per_sec =
          elapsed > 0 ? static_cast<double>(bytes_total_) / (1024.0 * 1024.0) / elapsed : 0;
      if (done_) {
        done_(result_);
      }
    }
    return;
  }
  // Issue the next request on this (keep-alive) connection.
  if (issued_ < config_.total_requests && !w->conn->closed()) {
    ++issued_;
    w->busy = true;
    w->request_started = client_->executor()->Now();
    const std::string req = StrFormat("GET %s HTTP/1.0\r\n\r\n", config_.path.c_str());
    w->conn->Send(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(req.data()),
                                           req.size()));
  }
}

}  // namespace kite
