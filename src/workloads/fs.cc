#include "src/workloads/fs.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {
namespace {

constexpr int64_t kMetadataRegion = 16 * 1024 * 1024;  // Journal area.
constexpr int64_t kMetadataBlock = 4096;

int64_t RoundToSector(int64_t v) {
  return (v + static_cast<int64_t>(kSectorSize) - 1) / kSectorSize * kSectorSize;
}

}  // namespace

SimpleFs::SimpleFs(Blkfront* dev) : dev_(dev) {
  KITE_CHECK(dev->capacity_bytes() > kMetadataRegion) << "device too small";
  free_list_.push_back({kMetadataRegion, dev->capacity_bytes() - kMetadataRegion});
}

int64_t SimpleFs::free_bytes() const {
  int64_t total = 0;
  for (const Extent& e : free_list_) {
    total += e.length;
  }
  return total;
}

bool SimpleFs::Allocate(int64_t bytes, std::vector<Extent>* out) {
  bytes = RoundToSector(bytes);
  int64_t need = bytes;
  std::vector<Extent> taken;
  for (Extent& e : free_list_) {
    if (need == 0) {
      break;
    }
    const int64_t take = std::min(e.length, need);
    taken.push_back({e.offset, take});
    e.offset += take;
    e.length -= take;
    need -= take;
  }
  if (need > 0) {
    // Roll back.
    for (const Extent& t : taken) {
      free_list_.push_back(t);
    }
    return false;
  }
  // Drop exhausted free extents.
  free_list_.erase(std::remove_if(free_list_.begin(), free_list_.end(),
                                  [](const Extent& e) { return e.length == 0; }),
                   free_list_.end());
  out->insert(out->end(), taken.begin(), taken.end());
  return true;
}

void SimpleFs::Free(const std::vector<Extent>& extents) {
  for (const Extent& e : extents) {
    if (e.length > 0) {
      free_list_.push_back(e);
    }
  }
}

bool SimpleFs::Create(const std::string& path, int64_t size) {
  if (files_.count(path) != 0) {
    return false;
  }
  File file;
  file.size = size;
  if (size > 0 && !Allocate(size, &file.extents)) {
    return false;
  }
  files_[path] = std::move(file);
  MetadataWrite(nullptr);
  return true;
}

bool SimpleFs::Exists(const std::string& path) const { return files_.count(path) != 0; }

int64_t SimpleFs::FileSize(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? -1 : it->second.size;
}

bool SimpleFs::Delete(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return false;
  }
  Free(it->second.extents);
  files_.erase(it);
  MetadataWrite(nullptr);
  return true;
}

std::vector<std::string> SimpleFs::List() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, f] : files_) {
    names.push_back(name);
  }
  return names;
}

bool SimpleFs::Stat(const std::string& path) { return files_.count(path) != 0; }

std::vector<SimpleFs::Extent> SimpleFs::Resolve(const File& file, int64_t offset,
                                                int64_t length) const {
  std::vector<Extent> out;
  int64_t pos = 0;
  for (const Extent& e : file.extents) {
    const int64_t ext_end = pos + e.length;
    const int64_t want_start = std::max(pos, offset);
    const int64_t want_end = std::min(ext_end, offset + length);
    if (want_start < want_end) {
      out.push_back({e.offset + (want_start - pos), want_end - want_start});
    }
    pos = ext_end;
    if (pos >= offset + length) {
      break;
    }
  }
  return out;
}

void SimpleFs::MetadataWrite(DoneFn done) {
  if (!journal_enabled_) {
    if (done) {
      done(true);
    }
    return;
  }
  // One small journal write into the rotating metadata slot.
  ++metadata_writes_;
  const int64_t slot = kMetadataBlock * (metadata_cursor_++ % (kMetadataRegion / kMetadataBlock));
  dev_->Write(slot, Buffer(kMetadataBlock, 0),
              [done = std::move(done)](bool ok) {
                if (done) {
                  done(ok);
                }
              });
}

void SimpleFs::IssueIo(const std::vector<Extent>& ranges, bool is_read, DoneFn done) {
  if (ranges.empty()) {
    if (done) {
      done(true);
    }
    return;
  }
  auto remaining = std::make_shared<int>(static_cast<int>(ranges.size()));
  auto all_ok = std::make_shared<bool>(true);
  auto cb = [remaining, all_ok, done = std::move(done)](bool ok) {
    if (!ok) {
      *all_ok = false;
    }
    if (--*remaining == 0 && done) {
      done(*all_ok);
    }
  };
  for (const Extent& r : ranges) {
    const int64_t len = RoundToSector(r.length);
    if (is_read) {
      ++reads_;
      dev_->Read(r.offset, static_cast<size_t>(len), nullptr, cb);
    } else {
      ++writes_;
      dev_->Write(r.offset, Buffer(static_cast<size_t>(len), 0), cb);
    }
  }
}

void SimpleFs::Read(const std::string& path, int64_t offset, size_t length, DoneFn done) {
  auto it = files_.find(path);
  if (it == files_.end() || offset >= it->second.size) {
    if (done) {
      done(false);
    }
    return;
  }
  const int64_t len =
      std::min<int64_t>(static_cast<int64_t>(length), it->second.size - offset);
  IssueIo(Resolve(it->second, offset, len), /*is_read=*/true, std::move(done));
}

void SimpleFs::Write(const std::string& path, int64_t offset, size_t length, DoneFn done) {
  auto it = files_.find(path);
  if (it == files_.end() || offset + static_cast<int64_t>(length) > it->second.size) {
    if (done) {
      done(false);
    }
    return;
  }
  IssueIo(Resolve(it->second, offset, static_cast<int64_t>(length)), /*is_read=*/false,
          std::move(done));
}

void SimpleFs::Append(const std::string& path, size_t length, DoneFn done) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    if (done) {
      done(false);
    }
    return;
  }
  File& file = it->second;
  // Grow if the tail sector can't hold the append.
  const int64_t allocated = [&] {
    int64_t total = 0;
    for (const Extent& e : file.extents) {
      total += e.length;
    }
    return total;
  }();
  const int64_t new_size = file.size + static_cast<int64_t>(length);
  if (new_size > allocated && !Allocate(new_size - allocated, &file.extents)) {
    if (done) {
      done(false);
    }
    return;
  }
  const int64_t offset = file.size;
  file.size = new_size;
  // Append = data write + metadata (size) update.
  auto remaining = std::make_shared<int>(2);
  auto all_ok = std::make_shared<bool>(true);
  auto cb = [remaining, all_ok, done = std::move(done)](bool ok) {
    if (!ok) {
      *all_ok = false;
    }
    if (--*remaining == 0 && done) {
      done(*all_ok);
    }
  };
  IssueIo(Resolve(file, offset, static_cast<int64_t>(length)), /*is_read=*/false, cb);
  MetadataWrite(cb);
}

void SimpleFs::Fsync(DoneFn done) {
  dev_->Flush([done = std::move(done)](bool ok) {
    if (done) {
      done(ok);
    }
  });
}

bool SimpleFs::CreateMany(const std::string& prefix, int count, int64_t file_size) {
  const bool was_enabled = journal_enabled_;
  journal_enabled_ = false;
  bool ok = true;
  for (int i = 0; i < count; ++i) {
    const std::string name = StrFormat("%s%06d", prefix.c_str(), i);
    if (Exists(name)) {
      continue;  // Idempotent population (re-used file sets).
    }
    if (!Create(name, file_size)) {
      ok = false;
      break;
    }
  }
  journal_enabled_ = was_enabled;
  return ok;
}

}  // namespace kite
