#include "src/workloads/netbench.h"

#include "src/base/bytes.h"
#include "src/base/log.h"

namespace kite {
namespace {

constexpr uint16_t kNuttcpPort = 5001;
constexpr uint16_t kNetperfPort = 12865;

}  // namespace

// --- NuttcpUdp. ---

NuttcpUdp::NuttcpUdp(EtherStack* client, EtherStack* server, Ipv4Addr server_ip,
                     NuttcpConfig config)
    : client_(client), server_(server), server_ip_(server_ip), config_(config) {}

void NuttcpUdp::Run(std::function<void(const NuttcpResult&)> done) {
  done_ = std::move(done);
  rx_ = server_->OpenUdp();
  KITE_CHECK(rx_->Bind(kNuttcpPort));
  rx_->SetRecvCallback([this](Ipv4Addr, uint16_t, const Buffer& payload) {
    ++received_;
    received_bytes_ += payload.size();
  });
  tx_ = client_->OpenUdp();

  const double bits_per_datagram = static_cast<double>(config_.datagram_bytes) * 8.0;
  interval_ = Nanos(static_cast<int64_t>(bits_per_datagram / config_.offered_gbps));
  end_at_ = client_->executor()->Now() + config_.duration;
  SendTick();
}

void NuttcpUdp::SendTick() {
  if (client_->executor()->Now() >= end_at_) {
    // Allow in-flight datagrams to drain before reporting.
    client_->executor()->PostAfter(Millis(20), KITE_POST_SITE("netbench/udp-drain"),
                                   [this] {
      finished_ = true;
      result_.sent = sent_;
      result_.received = received_;
      result_.goodput_gbps =
          static_cast<double>(received_bytes_) * 8.0 / config_.duration.ns();
      result_.loss_percent =
          sent_ > 0 ? 100.0 * (sent_ - received_) / static_cast<double>(sent_) : 0;
      if (done_) {
        done_(result_);
      }
    });
    return;
  }
  ++sent_;
  tx_->SendTo(server_ip_, kNuttcpPort, Buffer(config_.datagram_bytes, 0x6e));
  client_->executor()->PostAfter(interval_, KITE_POST_SITE("netbench/udp-tick"),
                                 [this] { SendTick(); });
}

// --- PingBench. ---

PingBench::PingBench(EtherStack* client, Ipv4Addr target, int count, SimDuration interval,
                     size_t payload)
    : client_(client), target_(target), count_(count), interval_(interval),
      payload_(payload) {}

void PingBench::Run(std::function<void(const PingBenchResult&)> done) {
  done_ = std::move(done);
  SendOne();
}

void PingBench::SendOne() {
  ++result_.sent;
  client_->Ping(target_, payload_, [this](bool ok, SimDuration rtt) {
    if (ok) {
      ++result_.received;
      result_.rtt_ms.Add(rtt.ms());
    }
    if (result_.sent >= count_) {
      finished_ = true;
      if (done_) {
        done_(result_);
      }
      return;
    }
    client_->executor()->PostAfter(interval_, KITE_POST_SITE("netbench/ping-next"),
                                   [this] { SendOne(); });
  });
}

// --- NetperfRr. ---

NetperfRr::NetperfRr(EtherStack* client, EtherStack* server, Ipv4Addr server_ip,
                     NetperfRrConfig config)
    : client_(client), server_(server), server_ip_(server_ip), config_(config) {}

void NetperfRr::Run(std::function<void(const NetperfRrResult&)> done) {
  done_ = std::move(done);
  server_sock_ = server_->OpenUdp();
  KITE_CHECK(server_sock_->Bind(kNetperfPort));
  server_sock_->SetRecvCallback(
      [this](Ipv4Addr src, uint16_t src_port, const Buffer& payload) {
        // Echo back a response of the configured size, preserving the seq.
        Buffer response(config_.response_bytes, 0);
        if (payload.size() >= 4 && response.size() >= 4) {
          std::copy_n(payload.begin(), 4, response.begin());
        }
        server_sock_->SendTo(src, src_port, std::move(response));
      });
  client_sock_ = client_->OpenUdp();
  client_sock_->SetRecvCallback([this](Ipv4Addr, uint16_t, const Buffer& payload) {
    if (payload.size() < 4) {
      return;
    }
    ByteReader r(payload);
    const uint32_t seq = r.U32();
    auto it = in_flight_.find(seq);
    if (it == in_flight_.end()) {
      return;
    }
    result_.latency_ms.Add((client_->executor()->Now() - it->second).ms());
    in_flight_.erase(it);
    ++result_.completed;
    if (result_.completed >= config_.requests && !finished_) {
      finished_ = true;
      if (done_) {
        done_(result_);
      }
    }
  });
  SendOne(0);
}

void NetperfRr::SendOne(int seq) {
  if (seq >= config_.requests) {
    return;
  }
  Buffer request(config_.request_bytes, 0);
  request[0] = static_cast<uint8_t>(seq >> 24);
  request[1] = static_cast<uint8_t>(seq >> 16);
  request[2] = static_cast<uint8_t>(seq >> 8);
  request[3] = static_cast<uint8_t>(seq);
  in_flight_[static_cast<uint32_t>(seq)] = client_->executor()->Now();
  ++sent_;
  client_sock_->SendTo(server_ip_, kNetperfPort, std::move(request));
  client_->executor()->PostAfter(config_.interval, KITE_POST_SITE("netbench/rr-next"),
                                 [this, seq] { SendOne(seq + 1); });
}

}  // namespace kite
