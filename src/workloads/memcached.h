// Memcached server speaking the real text protocol (set/get) and the
// memtier-style load generator (paper §5.3.2, Fig 7 "Memtier").
#ifndef SRC_WORKLOADS_MEMCACHED_H_
#define SRC_WORKLOADS_MEMCACHED_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/net/tcp.h"

namespace kite {

struct MemcachedParams {
  SimDuration per_op_cost = Micros(5);
  double per_byte_ns = 0.05;
};

class MemcachedServer {
 public:
  MemcachedServer(EtherStack* stack, uint16_t port,
                  MemcachedParams params = MemcachedParams{});

  uint64_t sets() const { return sets_; }
  uint64_t gets() const { return gets_; }
  uint64_t hits() const { return hits_; }

 private:
  void Process(TcpConn* conn, std::string* inbuf);

  EtherStack* stack_;
  MemcachedParams params_;
  std::map<std::string, std::string> store_;
  size_t op_bytes_ = 0;  // Value bytes touched by the op being processed.
  uint64_t sets_ = 0;
  uint64_t gets_ = 0;
  uint64_t hits_ = 0;
};

struct MemtierConfig {
  uint64_t total_ops = 100000;
  double set_get_ratio = 1.0 / 10.0;  // 1:10 SET:GET (paper §5.3.2).
  size_t value_bytes = 8192;          // 8 KB data.
  int connections = 4;
  int key_space = 10000;
};

struct MemtierResult {
  double avg_latency_ms = 0;
  double ops_per_sec = 0;
  double elapsed_s = 0;
  uint64_t completed = 0;
  Stats latency_ms;
};

// memtier_benchmark: closed-loop per connection (one outstanding op each),
// measuring per-op latency.
class MemtierBench {
 public:
  MemtierBench(EtherStack* client, Ipv4Addr server_ip, uint16_t port, MemtierConfig config);
  ~MemtierBench();

  void Run(std::function<void(const MemtierResult&)> done);
  bool finished() const { return finished_; }
  const MemtierResult& result() const { return result_; }

 private:
  struct Conn;
  void IssueNext(Conn* c);
  void OnOpDone(Conn* c);

  EtherStack* client_;
  Ipv4Addr server_ip_;
  uint16_t port_;
  MemtierConfig config_;
  Rng rng_{0x313377};
  std::function<void(const MemtierResult&)> done_;
  SimTime started_at_;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  bool finished_ = false;
  MemtierResult result_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace kite

#endif  // SRC_WORKLOADS_MEMCACHED_H_
