#include "src/workloads/mysql.h"

#include "src/base/log.h"

namespace kite {
namespace {

constexpr char kDataFile[] = "ibdata1";
constexpr char kLogFile[] = "ib_logfile0";
constexpr size_t kPageBytes = 16 * 1024;
constexpr int64_t kLogBytes = 512LL * 1024 * 1024;

}  // namespace

MysqlServer::MysqlServer(EtherStack* stack, uint16_t port, SimpleFs* storage,
                         MysqlServerParams params)
    : stack_(stack), storage_(storage), params_(params) {
  if (storage_ != nullptr && !storage_->Exists(kDataFile)) {
    KITE_CHECK(storage_->Create(kDataFile, params_.data_region_bytes))
        << "storage too small for the MySQL dataset";
    KITE_CHECK(storage_->Create(kLogFile, kLogBytes));
  }
  rpc_ = std::make_unique<RpcServer>(
      stack, port, [this](uint8_t type, const Buffer& payload, RpcServer::RespondFn respond) {
        HandleQuery(type, payload, std::move(respond));
      });
}

void MysqlServer::HandleQuery(uint8_t type, const Buffer& payload,
                              RpcServer::RespondFn respond) {
  ++queries_;
  SimDuration cost;
  size_t response_bytes;
  int miss_pages = 0;
  bool is_write = false;
  switch (type) {
    case kMysqlRangeSelect:
      cost = params_.range_select_cost;
      response_bytes = params_.point_row_bytes * params_.range_rows;
      miss_pages = params_.pages_per_range_miss;
      break;
    case kMysqlUpdate:
      cost = params_.update_cost;
      response_bytes = 16;
      miss_pages = params_.pages_per_point_miss;
      is_write = true;
      break;
    case kMysqlPointSelect:
    default:
      cost = params_.point_select_cost;
      response_bytes = params_.point_row_bytes;
      miss_pages = params_.pages_per_point_miss;
      break;
  }
  // Query execution serializes on the server CPU; the response leaves at
  // CPU-completion time (or after storage I/O, whichever is later).
  SimTime cpu_done = stack_->executor()->Now();
  if (stack_->vcpu() != nullptr) {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("app/workload"));
    cpu_done = stack_->vcpu()->Charge(cost);
  }
  Executor* executor = stack_->executor();
  auto reply = [executor, cpu_done, respond = std::move(respond), type, response_bytes] {
    executor->PostAt(cpu_done, KITE_POST_SITE("mysql/response"),
                     [respond, type, response_bytes] {
      respond(type, Buffer(response_bytes, 0x52));
    });
  };

  const bool miss =
      storage_ != nullptr && !rng_.NextBool(params_.buffer_pool_hit_ratio);
  bool log_write = false;
  if (is_write && storage_ != nullptr &&
      ++writes_since_log_ >= static_cast<uint64_t>(params_.log_write_every)) {
    writes_since_log_ = 0;
    log_write = true;
  }
  if (!miss && !log_write) {
    reply();
    return;
  }
  // Buffer-pool miss: random page reads from the data file; plus an optional
  // redo-log write. Respond when all I/O completes.
  const int ios = (miss ? miss_pages : 0) + (log_write ? 1 : 0);
  auto remaining = std::make_shared<int>(ios);
  auto on_io = [remaining, reply](bool) {
    if (--*remaining == 0) {
      reply();
    }
  };
  if (miss) {
    for (int i = 0; i < miss_pages; ++i) {
      ++page_reads_;
      const int64_t page_count = params_.data_region_bytes / kPageBytes;
      const int64_t offset =
          static_cast<int64_t>(rng_.NextBelow(static_cast<uint64_t>(page_count))) *
          static_cast<int64_t>(kPageBytes);
      storage_->Read(kDataFile, offset, kPageBytes, on_io);
    }
  }
  if (log_write) {
    ++log_writes_;
    const int64_t offset =
        static_cast<int64_t>(log_writes_ * 4096 % (kLogBytes - 4096));
    storage_->Write(kLogFile, offset, 4096, on_io);
  }
}

// --- SysbenchOltp. ---

struct SysbenchOltp::Thread {
  std::unique_ptr<RpcClient> rpc;
  SimTime txn_started;
  int queries_left = 0;
  bool idle = true;
};

SysbenchOltp::~SysbenchOltp() = default;

SysbenchOltp::SysbenchOltp(EtherStack* client, Ipv4Addr server_ip, uint16_t port,
                           SysbenchOltpConfig config)
    : client_(client), config_(config) {
  for (int i = 0; i < config_.threads; ++i) {
    auto t = std::make_unique<Thread>();
    t->rpc = std::make_unique<RpcClient>(client, server_ip, port);
    threads_.push_back(std::move(t));
  }
}

void SysbenchOltp::Run(std::function<void(const SysbenchOltpResult&)> done) {
  done_ = std::move(done);
  started_at_ = client_->executor()->Now();
  deadline_ = started_at_ + config_.duration;
  for (auto& t : threads_) {
    StartTxn(t.get());
  }
}

void SysbenchOltp::StartTxn(Thread* t) {
  if (client_->executor()->Now() >= deadline_) {
    t->idle = true;
    FinishIfDue();
    return;
  }
  t->idle = false;
  t->txn_started = client_->executor()->Now();
  t->queries_left = config_.point_selects_per_txn + config_.range_selects_per_txn +
                    config_.updates_per_txn;
  // sysbench issues the transaction's queries sequentially; we chain them.
  // The stored function holds only a weak self-reference (no shared_ptr
  // cycle); each pending RPC's callback owns the strong reference.
  auto issue = std::make_shared<std::function<void(int)>>();
  std::weak_ptr<std::function<void(int)>> weak_issue = issue;
  *issue = [this, t, weak_issue](int index) {
    uint8_t type;
    if (index < config_.point_selects_per_txn) {
      type = kMysqlPointSelect;
    } else if (index < config_.point_selects_per_txn + config_.range_selects_per_txn) {
      type = kMysqlRangeSelect;
    } else {
      type = kMysqlUpdate;
    }
    auto self = weak_issue.lock();
    t->rpc->Call(type, Buffer(32, 0x71), [this, t, self, index](uint8_t, const Buffer&) {
      ++queries_done_;
      if (t->queries_left > 0) {
        --t->queries_left;
      }
      if (t->queries_left == 0) {
        ++txns_done_;
        result_.txn_latency_ms.Add((client_->executor()->Now() - t->txn_started).ms());
        StartTxn(t);
      } else {
        (*self)(index + 1);
      }
    });
  };
  (*issue)(0);
}

void SysbenchOltp::FinishIfDue() {
  if (finished_) {
    return;
  }
  for (const auto& t : threads_) {
    if (!t->idle) {
      return;
    }
  }
  finished_ = true;
  const double elapsed = (client_->executor()->Now() - started_at_).seconds();
  result_.elapsed_s = elapsed;
  result_.queries = queries_done_;
  result_.queries_per_sec = elapsed > 0 ? queries_done_ / elapsed : 0;
  result_.transactions_per_sec = elapsed > 0 ? txns_done_ / elapsed : 0;
  if (done_) {
    done_(result_);
  }
}

}  // namespace kite
