// Filebench personalities over SimpleFs: fileserver (Fig 14), webserver
// (Fig 16), and the MongoDB-style profile (Fig 15).
#ifndef SRC_WORKLOADS_FILEBENCH_H_
#define SRC_WORKLOADS_FILEBENCH_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/sim/cpu.h"
#include "src/workloads/fs.h"

namespace kite {

enum class FilebenchPersonality {
  // create → write-whole → append → read-whole → stat → delete loop, 50
  // threads, 100k files × 128 KB average (paper §5.4.4).
  kFileserver,
  // open → read-whole ×10 → append 16 KB log, 50 threads, 200k files × 64 KB
  // (paper §5.4.6).
  kWebserver,
  // large sequential read-modify-write + fsync, 4 MB mean I/O, single user
  // (paper §5.4.5).
  kMongoDb,
};

struct FilebenchConfig {
  FilebenchPersonality personality = FilebenchPersonality::kFileserver;
  int threads = 50;
  int file_count = 2000;              // Scaled from 100k/200k.
  int64_t mean_file_bytes = 128 * 1024;
  size_t io_bytes = 1024 * 1024;      // Swept in Fig 14.
  size_t append_bytes = 1024;         // 1 KB fileserver / 16 KB webserver.
  SimDuration duration = Millis(400);
};

struct FilebenchResult {
  double ops_per_sec = 0;
  double mbytes_per_sec = 0;
  double cpu_us_per_op = 0;  // Driver-domain CPU per operation (Figs 15/16).
  Stats latency_ms;
  uint64_t ops = 0;
};

class Filebench {
 public:
  // cpu_to_sample: the vCPU whose busy time feeds cpu_us_per_op (the storage
  // domain's vCPU in the paper's figures).
  Filebench(SimpleFs* fs, FilebenchConfig config, Vcpu* cpu_to_sample = nullptr);
  ~Filebench();

  void Run(std::function<void(const FilebenchResult&)> done);
  bool finished() const { return finished_; }
  const FilebenchResult& result() const { return result_; }

 private:
  struct Thread;
  void NextOp(Thread* t);
  // Transfers `total` bytes of `path` in io_bytes-sized chunks (sequential,
  // chained) — filebench's iosize semantics: larger I/Os amortize the
  // per-request PV path overhead.
  void ChunkedIo(const std::string& path, int64_t total, bool is_read,
                 std::function<void(bool)> done);
  void RunFileserverCycle(Thread* t);
  void RunWebserverCycle(Thread* t);
  void RunMongoCycle(Thread* t);
  void OpDone(Thread* t, size_t bytes_moved);
  void FinishIfDue();
  Executor* executor() const;
  std::string RandomFile();

  SimpleFs* fs_;
  FilebenchConfig config_;
  Vcpu* sampled_cpu_;
  Rng rng_{0xfb};
  std::function<void(const FilebenchResult&)> done_;
  SimTime started_at_;
  SimTime deadline_;
  // Armed at Run() when sampled_cpu_ is set (see CpuUsageSample in
  // src/sim/cpu.h).
  std::optional<CpuUsageSample> cpu_sample_;
  uint64_t ops_ = 0;
  uint64_t bytes_moved_ = 0;
  int next_create_id_ = 0;
  bool finished_ = false;
  FilebenchResult result_;
  std::vector<std::unique_ptr<Thread>> threads_;
};

}  // namespace kite

#endif  // SRC_WORKLOADS_FILEBENCH_H_
