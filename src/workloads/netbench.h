// Network micro-benchmarks: nuttcp (UDP throughput, Fig 6), ping and
// Netperf-style request/response latency (Fig 7).
#ifndef SRC_WORKLOADS_NETBENCH_H_
#define SRC_WORKLOADS_NETBENCH_H_

#include <functional>
#include <memory>

#include "src/base/stats.h"
#include "src/net/stack.h"

namespace kite {

// --- nuttcp UDP mode (paper: 4 MB window, 8 KB buffers, ≈7 Gbps, <1.5%
// loss). The client paces 8 KB datagrams at the offered rate; the server
// counts arrivals. Loss happens in the driver domain / NIC queues. ---

struct NuttcpConfig {
  double offered_gbps = 7.4;
  size_t datagram_bytes = 8192;
  SimDuration duration = Millis(300);
};

struct NuttcpResult {
  double goodput_gbps = 0;
  double loss_percent = 0;
  uint64_t sent = 0;
  uint64_t received = 0;
};

class NuttcpUdp {
 public:
  // server_stack receives; client_stack transmits.
  NuttcpUdp(EtherStack* client, EtherStack* server, Ipv4Addr server_ip,
            NuttcpConfig config = NuttcpConfig{});

  // Starts the stream; done fires after `duration` (+drain).
  void Run(std::function<void(const NuttcpResult&)> done);
  bool finished() const { return finished_; }
  const NuttcpResult& result() const { return result_; }

 private:
  void SendTick();

  EtherStack* client_;
  EtherStack* server_;
  Ipv4Addr server_ip_;
  NuttcpConfig config_;
  std::function<void(const NuttcpResult&)> done_;
  std::unique_ptr<UdpSocket> tx_;
  std::unique_ptr<UdpSocket> rx_;
  SimTime end_at_;
  SimDuration interval_;
  uint64_t sent_ = 0;
  uint64_t received_bytes_ = 0;
  uint64_t received_ = 0;
  bool finished_ = false;
  NuttcpResult result_;
};

// --- ping: N echo requests at a fixed interval (paper: 100 @ 1 s). ---

struct PingBenchResult {
  Stats rtt_ms;
  int sent = 0;
  int received = 0;
};

class PingBench {
 public:
  PingBench(EtherStack* client, Ipv4Addr target, int count = 100,
            SimDuration interval = Seconds(1), size_t payload = 56);
  void Run(std::function<void(const PingBenchResult&)> done);
  bool finished() const { return finished_; }
  const PingBenchResult& result() const { return result_; }

 private:
  void SendOne();

  EtherStack* client_;
  Ipv4Addr target_;
  int count_;
  SimDuration interval_;
  size_t payload_;
  std::function<void(const PingBenchResult&)> done_;
  bool finished_ = false;
  PingBenchResult result_;
};

// --- Netperf-style UDP request/response: fixed request rate (paper: 1000
// requests/second with even intervals), measuring per-RR latency. ---

struct NetperfRrConfig {
  int requests = 1000;
  SimDuration interval = Millis(1);
  size_t request_bytes = 64;
  size_t response_bytes = 64;
};

struct NetperfRrResult {
  Stats latency_ms;
  int completed = 0;
};

class NetperfRr {
 public:
  NetperfRr(EtherStack* client, EtherStack* server, Ipv4Addr server_ip,
            NetperfRrConfig config = NetperfRrConfig{});
  void Run(std::function<void(const NetperfRrResult&)> done);
  bool finished() const { return finished_; }
  const NetperfRrResult& result() const { return result_; }

 private:
  void SendOne(int seq);

  EtherStack* client_;
  EtherStack* server_;
  Ipv4Addr server_ip_;
  NetperfRrConfig config_;
  std::function<void(const NetperfRrResult&)> done_;
  std::unique_ptr<UdpSocket> client_sock_;
  std::unique_ptr<UdpSocket> server_sock_;
  std::map<uint32_t, SimTime> in_flight_;
  int sent_ = 0;
  bool finished_ = false;
  NetperfRrResult result_;
};

}  // namespace kite

#endif  // SRC_WORKLOADS_NETBENCH_H_
