#include "src/workloads/redis.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {
namespace {

// Incremental RESP command parser for the server side: array of bulk strings.
// Returns true and fills args when a complete command is available,
// consuming it from *buf.
bool RespConsumeCommand(std::string* buf, std::vector<std::string>* args) {
  size_t pos = 0;
  auto read_line = [&](std::string* line) {
    const size_t end = buf->find("\r\n", pos);
    if (end == std::string::npos) {
      return false;
    }
    line->assign(*buf, pos, end - pos);
    pos = end + 2;
    return true;
  };
  std::string line;
  if (!read_line(&line) || line.empty() || line[0] != '*') {
    return false;
  }
  const int64_t n = ParseDecimal(std::string_view(line).substr(1));
  if (n < 0) {
    return false;
  }
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (!read_line(&line) || line.empty() || line[0] != '$') {
      return false;
    }
    const int64_t len = ParseDecimal(std::string_view(line).substr(1));
    if (len < 0 || buf->size() < pos + static_cast<size_t>(len) + 2) {
      return false;
    }
    out.emplace_back(*buf, pos, static_cast<size_t>(len));
    pos += static_cast<size_t>(len) + 2;
  }
  buf->erase(0, pos);
  *args = std::move(out);
  return true;
}

}  // namespace

Buffer RespEncodeCommand(const std::vector<std::string>& args) {
  std::string out = StrFormat("*%zu\r\n", args.size());
  for (const std::string& a : args) {
    out += StrFormat("$%zu\r\n", a.size());
    out += a;
    out += "\r\n";
  }
  return Buffer(out.begin(), out.end());
}

int RespConsumeReplies(std::string* buf) {
  int count = 0;
  size_t pos = 0;
  for (;;) {
    if (pos >= buf->size()) {
      break;
    }
    const char type = (*buf)[pos];
    const size_t line_end = buf->find("\r\n", pos);
    if (line_end == std::string::npos) {
      break;
    }
    if (type == '+' || type == '-' || type == ':') {
      pos = line_end + 2;
      ++count;
      continue;
    }
    if (type == '$') {
      const int64_t len = ParseDecimal(
          std::string_view(*buf).substr(pos + 1, line_end - pos - 1));
      if (len < 0) {  // $-1 null bulk.
        pos = line_end + 2;
        ++count;
        continue;
      }
      const size_t need = line_end + 2 + static_cast<size_t>(len) + 2;
      if (buf->size() < need) {
        break;
      }
      pos = need;
      ++count;
      continue;
    }
    // Unknown type: drop the line defensively.
    pos = line_end + 2;
  }
  buf->erase(0, pos);
  return count;
}

RedisServer::RedisServer(EtherStack* stack, uint16_t port, RedisServerParams params)
    : stack_(stack), params_(params) {
  stack_->ListenTcp(port, [this](TcpConn* conn) {
    auto inbuf = std::make_shared<std::string>();
    conn->SetDataCallback([this, conn, inbuf](std::span<const uint8_t> data) {
      inbuf->append(reinterpret_cast<const char*>(data.data()), data.size());
      std::vector<std::string> args;
      std::string replies;
      while (RespConsumeCommand(inbuf.get(), &args)) {
        HandleCommand(conn, std::move(args));
        if (conn->closed()) {
          return;
        }
      }
    });
  });
}

void RedisServer::HandleCommand(TcpConn* conn, std::vector<std::string> args) {
  if (args.empty()) {
    return;
  }
  std::string reply;
  if (args[0] == "SET" && args.size() == 3) {
    store_[args[1]] = args[2];
    ++sets_;
    reply = "+OK\r\n";
  } else if (args[0] == "GET" && args.size() == 2) {
    ++gets_;
    auto it = store_.find(args[1]);
    if (it == store_.end()) {
      reply = "$-1\r\n";
    } else {
      reply = StrFormat("$%zu\r\n", it->second.size()) + it->second + "\r\n";
    }
  } else if (args[0] == "PING") {
    reply = "+PONG\r\n";
  } else {
    reply = "-ERR unknown command\r\n";
  }
  if (stack_->vcpu() == nullptr) {
    conn->Send(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(reply.data()),
                                        reply.size()));
    return;
  }
  // Reply leaves when the server CPU has executed this command (commands of
  // a pipeline batch serialize behind each other).
  size_t bytes = 0;
  for (const auto& a : args) {
    bytes += a.size();
  }
  SimTime cpu_done;
  {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("app/workload"));
    cpu_done = stack_->vcpu()->Charge(
        params_.per_op_cost + Nanos(static_cast<int64_t>(params_.per_byte_ns * bytes)));
  }
  stack_->executor()->PostAt(cpu_done, KITE_POST_SITE("redis/reply"),
                             [conn, alive = conn->AliveGuard(), reply = std::move(reply)] {
                               if (*alive && !conn->closed()) {
                                 conn->Send(std::span<const uint8_t>(
                                     reinterpret_cast<const uint8_t*>(reply.data()),
                                     reply.size()));
                               }
                             });
}

// --- RedisBench. ---

struct RedisBench::Conn {
  TcpConn* conn = nullptr;
  std::string inbuf;
  int outstanding = 0;
  int batch_sets = 0;
  int batch_gets = 0;
};

RedisBench::RedisBench(EtherStack* client, Ipv4Addr server_ip, uint16_t port,
                       RedisBenchConfig config)
    : client_(client), server_ip_(server_ip), port_(port), config_(config) {}

RedisBench::~RedisBench() = default;

void RedisBench::Run(std::function<void(const RedisBenchResult&)> done) {
  done_ = std::move(done);
  started_at_ = client_->executor()->Now();
  for (int i = 0; i < config_.connections; ++i) {
    auto c = std::make_unique<Conn>();
    Conn* raw = c.get();
    conns_.push_back(std::move(c));
    raw->conn = client_->ConnectTcp(server_ip_, port_, [this, raw](TcpConn*) { Pump(raw); });
    raw->conn->SetDataCallback([this, raw](std::span<const uint8_t> data) {
      raw->inbuf.append(reinterpret_cast<const char*>(data.data()), data.size());
      const int replies = RespConsumeReplies(&raw->inbuf);
      if (replies > 0) {
        OnBatchDone(raw, replies);
      }
    });
  }
}

void RedisBench::Pump(Conn* c) {
  if (finished_ || issued_ >= config_.total_ops || c->outstanding > 0) {
    return;
  }
  // Send one pipeline batch.
  Buffer batch;
  const std::string value(config_.value_bytes, 'v');
  const int n = static_cast<int>(
      std::min<uint64_t>(config_.pipeline, config_.total_ops - issued_));
  for (int i = 0; i < n; ++i) {
    const std::string key = StrFormat("key:%012llu",
                                      static_cast<unsigned long long>(
                                          rng_.NextBelow(config_.key_space)));
    Buffer cmd;
    if (rng_.NextBool(config_.set_ratio)) {
      cmd = RespEncodeCommand({"SET", key, value});
      ++c->batch_sets;
    } else {
      cmd = RespEncodeCommand({"GET", key});
      ++c->batch_gets;
    }
    batch.insert(batch.end(), cmd.begin(), cmd.end());
  }
  issued_ += n;
  c->outstanding = n;
  c->conn->Send(std::move(batch));
}

void RedisBench::OnBatchDone(Conn* c, int replies) {
  c->outstanding -= replies;
  completed_ += replies;
  if (c->outstanding <= 0) {
    // Attribute the finished batch to its op mix.
    set_completed_ += c->batch_sets;
    get_completed_ += c->batch_gets;
    c->batch_sets = c->batch_gets = 0;
    Pump(c);
  }
  if (completed_ >= config_.total_ops && !finished_) {
    finished_ = true;
    const double elapsed = (client_->executor()->Now() - started_at_).seconds();
    result_.elapsed_s = elapsed;
    result_.completed = completed_;
    const double set_frac =
        completed_ > 0 ? static_cast<double>(set_completed_) / completed_ : 0;
    const double total_rate = elapsed > 0 ? completed_ / elapsed : 0;
    result_.set_ops_per_sec = total_rate * set_frac;
    result_.get_ops_per_sec = total_rate * (1.0 - set_frac);
    if (done_) {
      done_(result_);
    }
  }
}

}  // namespace kite
