// MySQL server model + sysbench OLTP load generator (paper §5.3.5 Fig 10,
// §5.4.3 Fig 13).
//
// Substitution note (DESIGN.md §2): the MySQL wire protocol is replaced by
// the library's RPC framing; the *query execution model* is what matters:
//  - network experiment (Fig 10): the dataset fits in the buffer pool, so a
//    query costs CPU and returns rows — stressing the network path;
//  - storage experiment (Fig 13): the dataset (100 tables × 1M rows ≈ 20 GB)
//    misses the buffer pool, so queries issue random 16 KiB page reads
//    through blkfront plus periodic redo-log writes — stressing the storage
//    path.
#ifndef SRC_WORKLOADS_MYSQL_H_
#define SRC_WORKLOADS_MYSQL_H_

#include <functional>
#include <memory>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/workloads/fs.h"
#include "src/workloads/rpc.h"

namespace kite {

inline constexpr uint8_t kMysqlPointSelect = 1;
inline constexpr uint8_t kMysqlRangeSelect = 2;
inline constexpr uint8_t kMysqlUpdate = 3;

struct MysqlServerParams {
  SimDuration point_select_cost = Micros(8);
  SimDuration range_select_cost = Micros(25);
  SimDuration update_cost = Micros(20);
  size_t point_row_bytes = 190;       // sbtest row.
  size_t range_rows = 100;            // Rows returned by a range scan.
  // Storage-backed mode:
  double buffer_pool_hit_ratio = 1.0;  // 1.0 = fully memory-bound (Fig 10).
  int pages_per_point_miss = 1;        // 16 KiB InnoDB pages read on a miss.
  int pages_per_range_miss = 4;
  int log_write_every = 16;            // Redo-log write per N write queries.
  int64_t data_region_bytes = 20LL * 1024 * 1024 * 1024;
};

class MysqlServer {
 public:
  // storage may be null (memory-bound); when set, buffer-pool misses read
  // pages from the "ibdata" file through it.
  MysqlServer(EtherStack* stack, uint16_t port, SimpleFs* storage,
              MysqlServerParams params = MysqlServerParams{});

  uint64_t queries() const { return queries_; }
  uint64_t page_reads() const { return page_reads_; }
  uint64_t log_writes() const { return log_writes_; }

 private:
  void HandleQuery(uint8_t type, const Buffer& payload, RpcServer::RespondFn respond);

  EtherStack* stack_;
  SimpleFs* storage_;
  MysqlServerParams params_;
  std::unique_ptr<RpcServer> rpc_;
  Rng rng_{0x5eed};
  uint64_t queries_ = 0;
  uint64_t page_reads_ = 0;
  uint64_t log_writes_ = 0;
  uint64_t writes_since_log_ = 0;
};

struct SysbenchOltpConfig {
  int threads = 10;
  SimDuration duration = Seconds(2);
  // sysbench oltp_read_only transaction: 10 point selects + 4 range scans.
  int point_selects_per_txn = 10;
  int range_selects_per_txn = 4;
  int updates_per_txn = 0;  // >0 for the read-write storage mix.
};

struct SysbenchOltpResult {
  double queries_per_sec = 0;
  double transactions_per_sec = 0;
  double elapsed_s = 0;
  uint64_t queries = 0;
  Stats txn_latency_ms;
};

// sysbench: `threads` closed-loop clients, each running transactions
// back-to-back for the duration.
class SysbenchOltp {
 public:
  SysbenchOltp(EtherStack* client, Ipv4Addr server_ip, uint16_t port,
               SysbenchOltpConfig config);
  ~SysbenchOltp();

  void Run(std::function<void(const SysbenchOltpResult&)> done);
  bool finished() const { return finished_; }
  const SysbenchOltpResult& result() const { return result_; }

 private:
  struct Thread;
  void StartTxn(Thread* t);
  void FinishIfDue();

  EtherStack* client_;
  SysbenchOltpConfig config_;
  std::function<void(const SysbenchOltpResult&)> done_;
  SimTime started_at_;
  SimTime deadline_;
  uint64_t queries_done_ = 0;
  uint64_t txns_done_ = 0;
  bool finished_ = false;
  SysbenchOltpResult result_;
  std::vector<std::unique_ptr<Thread>> threads_;
};

}  // namespace kite

#endif  // SRC_WORKLOADS_MYSQL_H_
