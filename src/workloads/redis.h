// Redis key-value server speaking a real RESP subset (SET/GET/PING) and the
// redis-benchmark-style pipelined load generator (paper §5.3.4, Fig 9).
#ifndef SRC_WORKLOADS_REDIS_H_
#define SRC_WORKLOADS_REDIS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/net/tcp.h"

namespace kite {

// RESP protocol helpers (shared with tests).
Buffer RespEncodeCommand(const std::vector<std::string>& args);
// Counts complete replies in a stream buffer, consuming them. Returns the
// number of replies consumed; leftover stays in *buf.
int RespConsumeReplies(std::string* buf);

struct RedisServerParams {
  SimDuration per_op_cost = Micros(4);  // Command dispatch + dict op.
  double per_byte_ns = 0.05;
};

class RedisServer {
 public:
  RedisServer(EtherStack* stack, uint16_t port,
              RedisServerParams params = RedisServerParams{});

  uint64_t sets() const { return sets_; }
  uint64_t gets() const { return gets_; }
  size_t keys() const { return store_.size(); }

 private:
  void HandleCommand(TcpConn* conn, std::vector<std::string> args);

  EtherStack* stack_;
  RedisServerParams params_;
  std::map<std::string, std::string> store_;
  uint64_t sets_ = 0;
  uint64_t gets_ = 0;
};

struct RedisBenchConfig {
  int connections = 5;        // The paper's "thread count".
  int pipeline = 1000;        // Pipeline depth (paper: 1,000).
  uint64_t total_ops = 100000;
  size_t value_bytes = 1024;
  double set_ratio = 0.5;     // Fig 9 reports SET and GET series separately.
  int key_space = 10000;      // 64-bit keys formatted as strings.
};

struct RedisBenchResult {
  double set_ops_per_sec = 0;
  double get_ops_per_sec = 0;
  double elapsed_s = 0;
  uint64_t completed = 0;
};

class RedisBench {
 public:
  RedisBench(EtherStack* client, Ipv4Addr server_ip, uint16_t port, RedisBenchConfig config);
  ~RedisBench();

  void Run(std::function<void(const RedisBenchResult&)> done);
  bool finished() const { return finished_; }
  const RedisBenchResult& result() const { return result_; }

 private:
  struct Conn;
  void Pump(Conn* c);
  void OnBatchDone(Conn* c, int replies);

  EtherStack* client_;
  Ipv4Addr server_ip_;
  uint16_t port_;
  RedisBenchConfig config_;
  Rng rng_{0xbe9c4};
  std::function<void(const RedisBenchResult&)> done_;
  SimTime started_at_;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t set_completed_ = 0;
  uint64_t get_completed_ = 0;
  bool finished_ = false;
  RedisBenchResult result_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace kite

#endif  // SRC_WORKLOADS_REDIS_H_
