// SimpleFs: a minimal extent-based file system over Blkfront.
//
// Stands in for the guest's ext4 in the storage macrobenchmarks. Files are
// allocated from contiguous extents (with a free list, so delete/create
// cycles fragment realistically); directory metadata is in memory, with
// metadata write-through for create/delete/append (one small block I/O),
// matching the paper's cache-flushed, I/O-bound configurations.
#ifndef SRC_WORKLOADS_FS_H_
#define SRC_WORKLOADS_FS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/blkdrv/blkfront.h"

namespace kite {

class SimpleFs {
 public:
  using DoneFn = std::function<void(bool ok)>;

  // block_offset reserves a metadata region at the start of the device.
  explicit SimpleFs(Blkfront* dev);

  Blkfront* device() const { return dev_; }
  int64_t free_bytes() const;

  // --- Namespace ops (synchronous metadata, async journal write). ---
  // Creates a file and preallocates `size` bytes (0 allowed). Returns false
  // if it exists or space is exhausted.
  bool Create(const std::string& path, int64_t size);
  bool Exists(const std::string& path) const;
  int64_t FileSize(const std::string& path) const;
  bool Delete(const std::string& path);
  std::vector<std::string> List() const;
  // stat(): pure metadata, costs a little CPU but no I/O.
  bool Stat(const std::string& path);

  // --- Data ops (async, sector-rounded internally). ---
  void Read(const std::string& path, int64_t offset, size_t length, DoneFn done);
  void Write(const std::string& path, int64_t offset, size_t length, DoneFn done);
  // Appends grow the file (allocating new extents as needed).
  void Append(const std::string& path, size_t length, DoneFn done);
  void Fsync(DoneFn done);

  // Populates `count` files of `file_size` bytes named prefixNNN. Journaling
  // is suspended during population (the paper populates datasets before
  // measuring).
  bool CreateMany(const std::string& prefix, int count, int64_t file_size);

  // Disables/enables the metadata journal write on namespace changes
  // (population fast path).
  void SetJournalEnabled(bool enabled) { journal_enabled_ = enabled; }

  uint64_t reads_issued() const { return reads_; }
  uint64_t writes_issued() const { return writes_; }
  uint64_t metadata_writes() const { return metadata_writes_; }

 private:
  struct Extent {
    int64_t offset;
    int64_t length;
  };
  struct File {
    std::vector<Extent> extents;
    int64_t size = 0;
  };

  // Allocates extents covering `bytes`; returns false when out of space.
  bool Allocate(int64_t bytes, std::vector<Extent>* out);
  void Free(const std::vector<Extent>& extents);
  // Maps a file byte range onto device ranges.
  std::vector<Extent> Resolve(const File& file, int64_t offset, int64_t length) const;
  void MetadataWrite(DoneFn done);
  // Issues I/O over possibly multiple extents, aggregating completion.
  void IssueIo(const std::vector<Extent>& ranges, bool is_read, DoneFn done);

  Blkfront* dev_;
  bool journal_enabled_ = true;
  std::map<std::string, File> files_;
  std::vector<Extent> free_list_;
  int64_t metadata_cursor_ = 0;  // Rotating journal slot in the metadata area.

  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t metadata_writes_ = 0;
};

}  // namespace kite

#endif  // SRC_WORKLOADS_FS_H_
