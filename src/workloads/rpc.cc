#include "src/workloads/rpc.h"

#include "src/base/bytes.h"
#include "src/base/log.h"

namespace kite {

std::vector<RpcFramer::Frame> RpcFramer::Feed(std::span<const uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  std::vector<Frame> frames;
  size_t pos = 0;
  while (buf_.size() - pos >= 5) {
    ByteReader r(std::span<const uint8_t>(buf_.data() + pos, buf_.size() - pos));
    const uint32_t len = r.U32();
    if (buf_.size() - pos < 4 + len) {
      break;
    }
    Frame frame;
    frame.type = buf_[pos + 4];
    frame.payload.assign(buf_.begin() + pos + 5, buf_.begin() + pos + 4 + len);
    frames.push_back(std::move(frame));
    pos += 4 + len;
  }
  buf_.erase(buf_.begin(), buf_.begin() + pos);
  return frames;
}

Buffer RpcFramer::Encode(uint8_t type, std::span<const uint8_t> payload) {
  Buffer out;
  ByteWriter w(&out);
  w.U32(static_cast<uint32_t>(payload.size() + 1));
  w.U8(type);
  w.Raw(payload);
  return out;
}

RpcServer::RpcServer(EtherStack* stack, uint16_t port, Handler handler)
    : stack_(stack), handler_(std::move(handler)) {
  stack_->ListenTcp(port, [this](TcpConn* conn) {
    auto framer = std::make_shared<RpcFramer>();
    conn->SetDataCallback([this, conn, framer](std::span<const uint8_t> data) {
      for (RpcFramer::Frame& frame : framer->Feed(data)) {
        ++requests_;
        // The respond closure may run arbitrarily later (CPU queueing,
        // storage I/O); guard against the connection having gone away.
        handler_(frame.type, frame.payload,
                 [conn, alive = conn->AliveGuard()](uint8_t type, Buffer payload) {
                   if (*alive && !conn->closed()) {
                     conn->Send(RpcFramer::Encode(type, payload));
                   }
                 });
      }
    });
  });
}

RpcClient::RpcClient(EtherStack* stack, Ipv4Addr server, uint16_t port) : stack_(stack) {
  conn_ = stack_->ConnectTcp(server, port, [this](TcpConn* conn) {
    connected_ = true;
    for (Buffer& b : queued_sends_) {
      conn->Send(std::move(b));
    }
    queued_sends_.clear();
  });
  conn_->SetDataCallback([pending = pending_, framer = framer_](
                             std::span<const uint8_t> data) {
    for (RpcFramer::Frame& frame : framer->Feed(data)) {
      KITE_CHECK(!pending->empty()) << "response without a pending request";
      auto cb = std::move(pending->front());
      pending->pop_front();
      cb(frame.type, frame.payload);
    }
  });
  conn_->SetCloseCallback([this] { failed_ = !connected_; });
}

void RpcClient::Call(uint8_t type, Buffer payload, ResponseFn on_response) {
  pending_->push_back(std::move(on_response));
  Buffer encoded = RpcFramer::Encode(type, payload);
  if (connected_) {
    conn_->Send(std::move(encoded));
  } else {
    queued_sends_.push_back(std::move(encoded));
  }
}

}  // namespace kite
