#include "src/workloads/filebench.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {

struct Filebench::Thread {
  int id = 0;
  bool idle = true;
  SimTime op_started;
};

Filebench::Filebench(SimpleFs* fs, FilebenchConfig config, Vcpu* cpu_to_sample)
    : fs_(fs), config_(config), sampled_cpu_(cpu_to_sample) {
  // Pre-populate the file set (Filebench does this before the run).
  KITE_CHECK(fs_->CreateMany("fbfile.", config_.file_count, config_.mean_file_bytes))
      << "filebench population failed";
  next_create_id_ = config_.file_count;
  for (int i = 0; i < config_.threads; ++i) {
    auto t = std::make_unique<Thread>();
    t->id = i;
    threads_.push_back(std::move(t));
  }
}

Filebench::~Filebench() = default;

Executor* Filebench::executor() const {
  return fs_->device()->guest()->hypervisor()->executor();
}

std::string Filebench::RandomFile() {
  return StrFormat("fbfile.%06d", static_cast<int>(rng_.NextBelow(config_.file_count)));
}

void Filebench::Run(std::function<void(const FilebenchResult&)> done) {
  done_ = std::move(done);
  started_at_ = executor()->Now();
  deadline_ = started_at_ + config_.duration;
  if (sampled_cpu_ != nullptr) {
    cpu_sample_.emplace(sampled_cpu_);
  }
  for (auto& t : threads_) {
    NextOp(t.get());
  }
}

void Filebench::NextOp(Thread* t) {
  if (executor()->Now() >= deadline_) {
    t->idle = true;
    FinishIfDue();
    return;
  }
  t->idle = false;
  t->op_started = executor()->Now();
  switch (config_.personality) {
    case FilebenchPersonality::kFileserver:
      RunFileserverCycle(t);
      break;
    case FilebenchPersonality::kWebserver:
      RunWebserverCycle(t);
      break;
    case FilebenchPersonality::kMongoDb:
      RunMongoCycle(t);
      break;
  }
}

void Filebench::OpDone(Thread* t, size_t bytes_moved) {
  ++ops_;
  bytes_moved_ += bytes_moved;
  result_.latency_ms.Add((executor()->Now() - t->op_started).ms());
  NextOp(t);
}

void Filebench::ChunkedIo(const std::string& path, int64_t total, bool is_read,
                          std::function<void(bool)> done) {
  auto pos = std::make_shared<int64_t>(0);
  // Weak self-reference: the in-flight I/O's callback owns the strong ref,
  // so the chain lives exactly as long as work is pending (no refcycle).
  auto step = std::make_shared<std::function<void(bool)>>();
  std::weak_ptr<std::function<void(bool)>> weak_step = step;
  *step = [this, path, total, is_read, pos, weak_step, done = std::move(done)](bool ok) {
    if (*pos >= total || !ok) {
      done(ok);
      return;
    }
    const int64_t n =
        std::min<int64_t>(static_cast<int64_t>(config_.io_bytes), total - *pos);
    const int64_t off = *pos;
    *pos += n;
    auto self = weak_step.lock();
    auto cont = [self](bool ok2) { (*self)(ok2); };
    if (is_read) {
      fs_->Read(path, off, static_cast<size_t>(n), cont);
    } else {
      fs_->Write(path, off, static_cast<size_t>(n), cont);
    }
  };
  (*step)(true);
}

void Filebench::RunFileserverCycle(Thread* t) {
  // create → write-whole → append → read-whole → stat → delete.
  const std::string fresh = StrFormat("fbnew.%d.%06d", t->id, next_create_id_++);
  const int64_t fsize = config_.mean_file_bytes;
  if (!fs_->Create(fresh, fsize)) {
    // Out of space: recycle by deleting a random file first.
    fs_->Delete(RandomFile());
    OpDone(t, 0);
    return;
  }
  auto total = std::make_shared<size_t>(0);
  auto finish = [this, t, fresh, total](bool) {
    fs_->Stat(fresh);
    fs_->Delete(fresh);
    OpDone(t, *total);
  };
  auto read_whole = [this, fresh, fsize, total, finish](bool) {
    *total += static_cast<size_t>(fsize);
    ChunkedIo(fresh, fsize, /*is_read=*/true, finish);
  };
  auto append = [this, fresh, total, read_whole](bool) {
    *total += config_.append_bytes;
    fs_->Append(fresh, config_.append_bytes, read_whole);
  };
  *total += static_cast<size_t>(fsize);
  ChunkedIo(fresh, fsize, /*is_read=*/false, append);
}

void Filebench::RunWebserverCycle(Thread* t) {
  // open+read-whole of 10 random files, then a 16 KB log append.
  auto remaining = std::make_shared<int>(10);
  auto total = std::make_shared<size_t>(0);
  auto after_reads = [this, t, total](bool) {
    const std::string log = StrFormat("weblog.%d", t->id);
    if (!fs_->Exists(log)) {
      fs_->Create(log, 0);
    }
    *total += config_.append_bytes;
    fs_->Append(log, config_.append_bytes,
                [this, t, total](bool) { OpDone(t, *total); });
  };
  auto one_read_done = std::make_shared<std::function<void(bool)>>();
  std::weak_ptr<std::function<void(bool)>> weak_read = one_read_done;
  *one_read_done = [this, remaining, total, after_reads, weak_read](bool) {
    if (--*remaining == 0) {
      after_reads(true);
      return;
    }
    const std::string f = RandomFile();
    const int64_t len = fs_->FileSize(f);
    *total += static_cast<size_t>(len);
    auto self = weak_read.lock();
    ChunkedIo(f, len, /*is_read=*/true, [self](bool ok) { (*self)(ok); });
  };
  const std::string f = RandomFile();
  const int64_t len = fs_->FileSize(f);
  *total += static_cast<size_t>(len);
  auto self = one_read_done;
  ChunkedIo(f, len, /*is_read=*/true, [self](bool ok) { (*self)(ok); });
}

void Filebench::RunMongoCycle(Thread* t) {
  // Read-modify-write of a 4 MB region plus an fsync — MongoDB's large
  // sequential I/O pattern.
  const std::string f = RandomFile();
  const int64_t fsize = fs_->FileSize(f);
  const size_t io = std::min<size_t>(config_.io_bytes, static_cast<size_t>(fsize));
  auto total = std::make_shared<size_t>(0);
  *total += io;
  fs_->Read(f, 0, io, [this, t, f, io, total](bool) {
    *total += io;
    fs_->Write(f, 0, io, [this, t, total](bool) {
      fs_->Fsync([this, t, total](bool) { OpDone(t, *total); });
    });
  });
}

void Filebench::FinishIfDue() {
  if (finished_) {
    return;
  }
  for (const auto& t : threads_) {
    if (!t->idle) {
      return;
    }
  }
  finished_ = true;
  const double elapsed = (executor()->Now() - started_at_).seconds();
  result_.ops = ops_;
  result_.ops_per_sec = elapsed > 0 ? ops_ / elapsed : 0;
  result_.mbytes_per_sec =
      elapsed > 0 ? bytes_moved_ / (1024.0 * 1024.0) / elapsed : 0;
  if (cpu_sample_.has_value() && ops_ > 0) {
    result_.cpu_us_per_op = cpu_sample_->busy().us() / static_cast<double>(ops_);
  }
  if (done_) {
    done_(result_);
  }
}

}  // namespace kite
