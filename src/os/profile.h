// OS personalities for service VMs.
//
// A driver domain in this reproduction runs the *same functional backend
// code* whether it is a Kite (rumprun) or a Linux (Ubuntu) domain — exactly
// as in the paper, where both implement the same Xen backend protocol. What
// differs is the OS around the driver:
//   - cost profile: syscall crossings, softirq/work-queue scheduling latency,
//     per-packet and per-request overhead of the OS I/O path;
//   - component inventory: what is in the image (size, Fig 4b) and which
//     system calls the components need (Fig 4a, Table 3);
//   - boot phases (Fig 4c);
//   - code profile for ROP-gadget analysis (Figs 1b, 5).
#ifndef SRC_OS_PROFILE_H_
#define SRC_OS_PROFILE_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace kite {

enum class OsKind {
  kKiteRumprun,
  kUbuntuLinux,    // Ubuntu 18.04 driver domain (the paper's baseline).
  kDefaultLinux,   // Default-config kernel, Fig 5.
  kCentOs,
  kFedora,
  kDebian,
};

const char* OsKindName(OsKind kind);

// Per-operation costs on the I/O path. All charged to the driver domain's
// vCPU or added as path latency.
struct OsCostProfile {
  // Cost of one system-call crossing (≈0 for unikernels: function call).
  SimDuration syscall_cost;
  // Backend CPU cost per network frame beyond grant-copy costs (driver work,
  // bridge forwarding, memory management).
  SimDuration netback_per_packet;
  // Extra latency added per backend traversal (softirq/work-queue scheduling
  // in Linux; Kite's dedicated threads run immediately).
  SimDuration netback_pass_latency;
  // Additional first-packet latency after an idle period (cold caches,
  // deeper idle states in a full OS).
  SimDuration cold_penalty;
  SimDuration cold_threshold;
  // Backend CPU cost per block request and per segment beyond grant costs.
  SimDuration blkback_per_request;
  SimDuration blkback_per_segment;
  // Extra latency per block request traversal.
  SimDuration blkback_pass_latency;
  // Number of syscall crossings the OS performs per I/O operation on the
  // backend path (0 for the unikernel, where the driver is the app).
  int syscalls_per_packet = 0;
  int syscalls_per_block_request = 0;
};

// One boot phase (Fig 4c is the sum; the restart example replays them).
struct BootPhase {
  std::string name;
  SimDuration duration;
};

// One software component in the image: its size and the syscalls it needs.
struct OsComponent {
  std::string name;
  int64_t bytes = 0;
  bool kernel_space = false;
  // Syscalls this component requires to function. For kernel components this
  // is the set of syscalls it *implements/exposes*.
  std::vector<std::string> syscalls;
};

// Instruction-mix profile of the image's executable code, consumed by the
// ROP-gadget analysis (src/security). Weights need not sum to 1.
struct CodeProfile {
  int64_t code_bytes = 0;
  // Relative weights per emitted instruction class; see security/isa.h.
  double data_move = 30;
  double arithmetic = 14;
  double logic = 8;
  double control_flow = 16;
  double shift_rotate = 3;
  double setting_flags = 7;
  double string_ops = 1;
  double floating = 2;
  double misc = 3;
  double mmx_sse = 4;
  double nop = 6;
  double ret_density = 1.5;  // Function density: rets per ~100 instructions.
};

struct OsProfile {
  OsKind kind = OsKind::kKiteRumprun;
  std::string name;
  OsCostProfile costs;
  std::vector<BootPhase> boot_phases;
  std::vector<OsComponent> components;
  CodeProfile code;
  // Syscalls the kernel exposes beyond what the components *use*. A general-
  // purpose kernel cannot remove entries from its syscall table, so its
  // attack surface exceeds its used set; a unikernel discards unused
  // syscalls at compile time (paper §5.1.1), so this is empty for Kite.
  std::vector<std::string> extra_exposed_syscalls;

  SimDuration BootTime() const;
  int64_t ImageBytes() const;
  // Union of syscalls over all components: the *used* set (Fig 4a).
  std::set<std::string> RequiredSyscalls() const;
  // Used ∪ extra-exposed: the reachable attack surface (Table 3 analysis).
  std::set<std::string> ExposedSyscalls() const;
};

// --- Canonical profiles (defined in inventory.cc / profile.cc). ---

// Kite driver domains (rumprun). The network and storage builds differ in
// component set and syscall count (14 vs 18, Fig 4a).
const OsProfile& KiteNetworkProfile();
const OsProfile& KiteStorageProfile();
// Ubuntu 18.04 driver domain: kernel + modules + required userspace.
const OsProfile& UbuntuDriverDomainProfile();
// Gadget-comparison-only profiles (Fig 5).
const OsProfile& DefaultLinuxProfile();
const OsProfile& CentOsProfile();
const OsProfile& FedoraProfile();
const OsProfile& DebianProfile();

// Convenience: pick the driver-domain profile for a personality.
const OsProfile& DriverDomainProfile(OsKind kind, bool storage);

}  // namespace kite

#endif  // SRC_OS_PROFILE_H_
