#include "src/os/profile.h"

namespace kite {

const char* OsKindName(OsKind kind) {
  switch (kind) {
    case OsKind::kKiteRumprun:
      return "Kite";
    case OsKind::kUbuntuLinux:
      return "Ubuntu";
    case OsKind::kDefaultLinux:
      return "Default";
    case OsKind::kCentOs:
      return "CentOS";
    case OsKind::kFedora:
      return "Fedora";
    case OsKind::kDebian:
      return "Debian";
  }
  return "?";
}

SimDuration OsProfile::BootTime() const {
  SimDuration total;
  for (const BootPhase& p : boot_phases) {
    total += p.duration;
  }
  return total;
}

int64_t OsProfile::ImageBytes() const {
  int64_t total = 0;
  for (const OsComponent& c : components) {
    total += c.bytes;
  }
  return total;
}

std::set<std::string> OsProfile::RequiredSyscalls() const {
  std::set<std::string> out;
  for (const OsComponent& c : components) {
    out.insert(c.syscalls.begin(), c.syscalls.end());
  }
  return out;
}

std::set<std::string> OsProfile::ExposedSyscalls() const {
  std::set<std::string> out = RequiredSyscalls();
  out.insert(extra_exposed_syscalls.begin(), extra_exposed_syscalls.end());
  return out;
}

const OsProfile& DriverDomainProfile(OsKind kind, bool storage) {
  if (kind == OsKind::kKiteRumprun) {
    return storage ? KiteStorageProfile() : KiteNetworkProfile();
  }
  return UbuntuDriverDomainProfile();
}

}  // namespace kite
