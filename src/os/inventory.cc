// Component inventories, syscall sets, boot phases, and code profiles for
// every OS personality the paper evaluates.
//
// Calibration sources (all from the paper):
//  - Fig 4a: Kite network domain uses 14 syscalls, storage 18, Ubuntu 171.
//  - Fig 4b: Linux kernel+modules image ≈10x the Kite image (≈22 MB rumprun).
//  - Fig 4c: boot 7 s (Kite) vs 75 s (Ubuntu).
//  - Figs 1b/5: ROP gadgets — default Linux ≈4x Kite; CentOS/Fedora/Debian/
//    Ubuntu progressively larger with their module sets.
#include "src/os/profile.h"

#include <array>

#include "src/base/log.h"

namespace kite {
namespace {

constexpr int64_t kMiB = 1024 * 1024;

// The 171 system calls observed in use by a minimal Ubuntu 18.04 driver
// domain (Fig 4a). Component inventories below reference ranges of this
// table; the union over all components is exactly this set.
constexpr std::array<const char*, 171> kUbuntuUsedSyscalls = {
    "read",            "write",           "open",            "close",
    "stat",            "fstat",           "lstat",           "poll",
    "lseek",           "mmap",            "mprotect",        "munmap",
    "brk",             "rt_sigaction",    "rt_sigprocmask",  "rt_sigreturn",
    "ioctl",           "pread64",         "pwrite64",        "readv",
    "writev",          "access",          "pipe",            "select",
    "sched_yield",     "mremap",          "msync",           "mincore",
    "madvise",         "dup",             "dup2",            "pause",
    "nanosleep",       "getitimer",       "setitimer",       "getpid",
    "sendfile",        "socket",          "connect",         "accept",
    "sendto",          "recvfrom",        "sendmsg",         "recvmsg",
    "shutdown",        "bind",            "listen",          "getsockname",
    "getpeername",     "socketpair",      "setsockopt",      "getsockopt",
    "clone",           "fork",            "vfork",           "execve",
    "exit",            "wait4",           "kill",            "uname",
    "fcntl",           "flock",           "fsync",           "fdatasync",
    "truncate",        "ftruncate",       "getdents",        "getcwd",
    "chdir",           "fchdir",          "rename",          "mkdir",
    "rmdir",           "creat",           "link",            "unlink",
    "symlink",         "readlink",        "chmod",           "fchmod",
    "chown",           "fchown",          "umask",           "gettimeofday",
    "getrlimit",       "getrusage",       "sysinfo",         "times",
    "ptrace",          "getuid",          "syslog",          "getgid",
    "setuid",          "setgid",          "geteuid",         "getegid",
    "setpgid",         "getppid",         "getpgrp",         "setsid",
    "setreuid",        "setregid",        "getgroups",       "setgroups",
    "setresuid",       "getresuid",       "setresgid",       "getresgid",
    "capget",          "capset",          "rt_sigpending",   "rt_sigtimedwait",
    "rt_sigsuspend",   "sigaltstack",     "utime",           "mknod",
    "personality",     "statfs",          "fstatfs",         "getpriority",
    "setpriority",     "sched_setparam",  "sched_getparam",  "sched_setscheduler",
    "sched_getscheduler", "mlock",        "munlock",         "mlockall",
    "munlockall",      "modify_ldt",      "pivot_root",      "prctl",
    "arch_prctl",      "setrlimit",       "chroot",          "sync",
    "mount",           "umount2",         "sethostname",     "setdomainname",
    "init_module",     "finit_module",    "delete_module",   "gettid",
    "futex",           "sched_setaffinity", "sched_getaffinity", "epoll_create",
    "epoll_wait",      "epoll_ctl",       "getdents64",      "set_tid_address",
    "clock_gettime",   "clock_getres",    "clock_nanosleep", "exit_group",
    "tgkill",          "openat",          "mkdirat",         "newfstatat",
    "unlinkat",        "readlinkat",      "faccessat",       "ppoll",
    "set_robust_list", "eventfd2",        "epoll_create1",   "dup3",
    "pipe2",           "inotify_init1",   "getrandom",
};

// Syscalls the Linux kernel exposes that the driver domain does not use but
// an attacker can still reach (the paper's argument: they cannot be removed
// without distorting the kernel). Includes every Table 3 syscall that is not
// in the used set.
const std::vector<std::string>& UbuntuExtraExposed() {
  static const std::vector<std::string> kExtra = {
      "timer_create",      "timer_settime",     "timer_gettime",  "timer_delete",
      "timer_getoverrun",  "compat_sys_setsockopt", "compat_sys_nanosleep",
      "io_setup",          "io_destroy",        "io_submit",      "io_cancel",
      "io_getevents",      "add_key",           "request_key",    "keyctl",
      "kexec_load",        "kexec_file_load",   "bpf",            "perf_event_open",
      "userfaultfd",       "membarrier",        "seccomp",        "memfd_create",
      "process_vm_readv",  "process_vm_writev", "kcmp",           "migrate_pages",
      "move_pages",        "mbind",             "set_mempolicy",  "get_mempolicy",
      "remap_file_pages",  "splice",            "tee",            "vmsplice",
      "signalfd",          "signalfd4",         "timerfd_create", "timerfd_settime",
      "timerfd_gettime",   "fanotify_init",     "fanotify_mark",  "name_to_handle_at",
      "open_by_handle_at", "clock_adjtime",     "adjtimex",       "syncfs",
      "setns",             "unshare",           "getcpu",         "lookup_dcookie",
      "quotactl",          "acct",              "swapon",         "swapoff",
      "reboot",            "vhangup",           "iopl",           "ioperm",
      "uselib",            "ustat",             "sysfs",          "semget",
      "semop",             "semctl",            "semtimedop",     "shmget",
      "shmat",             "shmctl",            "shmdt",          "msgget",
      "msgsnd",            "msgrcv",            "msgctl",         "mq_open",
      "mq_unlink",         "mq_timedsend",      "mq_timedreceive", "mq_notify",
      "mq_getsetattr",     "inotify_add_watch", "inotify_rm_watch", "fallocate",
      "preadv",            "pwritev",           "preadv2",        "pwritev2",
      "copy_file_range",   "statx",             "renameat2",      "execveat",
      "accept4",           "recvmmsg",          "sendmmsg",       "prlimit64",
      "sched_setattr",     "sched_getattr",     "utimensat",      "futimesat",
      "fchownat",          "mknodat",           "linkat",         "symlinkat",
      "fchmodat",          "pselect6",          "epoll_pwait",    "waitid",
      "restart_syscall",   "fadvise64",         "readahead",      "setxattr",
      "lsetxattr",         "fsetxattr",         "getxattr",       "lgetxattr",
      "fgetxattr",         "listxattr",         "llistxattr",     "flistxattr",
      "removexattr",       "lremovexattr",      "fremovexattr",   "tkill",
      "time",              "alarm",             "getpgid",        "getsid",
      "setfsuid",          "setfsgid",          "rt_sigqueueinfo", "rt_tgsigqueueinfo",
      "clock_settime",     "settimeofday",      "ioprio_set",     "ioprio_get",
      "inotify_init",      "eventfd",           "pkey_alloc",     "pkey_free",
      "pkey_mprotect",
  };
  return kExtra;
}

std::vector<std::string> SyscallRange(size_t begin, size_t end) {
  KITE_CHECK(begin < end && end <= kUbuntuUsedSyscalls.size());
  std::vector<std::string> out;
  out.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    out.emplace_back(kUbuntuUsedSyscalls[i]);
  }
  return out;
}

// --- Cost profiles. ---
// Calibrated so that (a) both personalities saturate ≈7 Gbps on the nuttcp
// UDP test (Fig 6), (b) ping RTT lands near 0.31 ms (Kite) / 0.51 ms (Linux)
// (Fig 7), and (c) storage results land near Figs 11-16 (Kite slightly ahead
// at high concurrency / large blocks).

OsCostProfile KiteCosts() {
  OsCostProfile c;
  c.syscall_cost = Nanos(5);  // Ordinary function call.
  c.netback_per_packet = Nanos(450);
  c.netback_pass_latency = Micros(35);
  c.cold_penalty = Micros(105);
  c.cold_threshold = Millis(100);
  c.blkback_per_request = Micros(20);
  c.blkback_per_segment = Nanos(3000);
  c.blkback_pass_latency = Micros(9);
  c.syscalls_per_packet = 0;
  c.syscalls_per_block_request = 0;
  return c;
}

OsCostProfile UbuntuCosts() {
  OsCostProfile c;
  c.syscall_cost = Nanos(180);  // Crossing incl. KPTI/retpoline era overheads.
  c.netback_per_packet = Nanos(550);
  c.netback_pass_latency = Micros(75);  // softirq + work-queue scheduling.
  c.cold_penalty = Micros(165);
  c.cold_threshold = Millis(100);
  c.blkback_per_request = Micros(22);
  c.blkback_per_segment = Nanos(3300);
  c.blkback_pass_latency = Micros(14);
  c.syscalls_per_packet = 0;  // In-kernel datapath: no user/kernel crossing per packet.
  c.syscalls_per_block_request = 0;
  return c;
}

// --- Boot phases. ---

std::vector<BootPhase> KiteBootPhases() {
  return {
      {"domain-build", Millis(400)},
      {"bmk-init", Millis(350)},
      {"rump-kernel-init", Millis(1400)},
      {"device-driver-attach", Millis(2600)},
      {"xenbus-and-app-start", Millis(2250)},
  };  // Total 7.0 s (Fig 4c).
}

std::vector<BootPhase> UbuntuBootPhases() {
  return {
      {"domain-build", Millis(900)},
      {"grub-and-kernel-load", Seconds(3)},
      {"kernel-init", Seconds(8)},
      {"initramfs", Seconds(6)},
      {"rootfs-mount", Seconds(4)},
      {"systemd-units", Seconds(38)},
      {"network-config", Seconds(7)},
      {"xen-tools-and-devd", SecondsF(8.1)},
  };  // Total 75.0 s (Fig 4c).
}

// --- Code profiles for the gadget analysis. ---
// code_bytes approximates the executable text of kernel+modules. Gadget
// counts track code size and mix; ratios follow Figs 1b/5.

CodeProfile KiteCode() {
  CodeProfile p;
  p.code_bytes = 7 * kMiB;
  p.ret_density = 1.4;
  return p;
}

CodeProfile LinuxCode(int64_t bytes, double ret_density) {
  CodeProfile p;
  p.code_bytes = bytes;
  p.ret_density = ret_density;
  // Full-featured kernels carry more SIMD/crypto and string-heavy code.
  p.mmx_sse = 6;
  p.string_ops = 2;
  return p;
}

}  // namespace

const OsProfile& KiteNetworkProfile() {
  static const OsProfile* kProfile = [] {
    auto* p = new OsProfile();
    p->kind = OsKind::kKiteRumprun;
    p->name = "Kite-network";
    p->costs = KiteCosts();
    p->boot_phases = KiteBootPhases();
    p->code = KiteCode();
    // 14 syscalls total (Fig 4a), split across the layers that use them.
    p->components = {
        {"bmk-core", 2 * kMiB, true, {"exit", "mmap", "munmap", "clock_gettime"}},
        {"rump-kernel-base", 6 * kMiB, true, {"read", "write", "open", "close"}},
        {"netbsd-tcpip", 3 * kMiB, true, {"socket", "bind", "sendmsg", "recvmsg"}},
        {"netbsd-ixgbe-driver", 1536 * 1024, true, {"ioctl"}},
        {"xen-platform-netback", 1536 * 1024, true, {"poll"}},
        {"libc", 4 * kMiB, false, {"read", "write", "clock_gettime"}},
        {"bridge-app+ifconfig+brconfig", 768 * 1024, false, {"ioctl", "socket"}},
        {"boot-config", 128 * 1024, false, {}},
    };
    return p;
  }();
  return *kProfile;
}

const OsProfile& KiteStorageProfile() {
  static const OsProfile* kProfile = [] {
    auto* p = new OsProfile();
    p->kind = OsKind::kKiteRumprun;
    p->name = "Kite-storage";
    p->costs = KiteCosts();
    p->boot_phases = KiteBootPhases();
    p->code = KiteCode();
    // 18 syscalls total (Fig 4a).
    p->components = {
        {"bmk-core", 2 * kMiB, true, {"exit", "mmap", "munmap", "clock_gettime"}},
        {"rump-kernel-base", 6 * kMiB, true, {"read", "write", "open", "close", "lseek"}},
        {"netbsd-vfs-block", 2560 * 1024, true,
         {"pread64", "pwrite64", "fsync", "stat", "fstat", "sync"}},
        {"netbsd-nvme-driver", kMiB, true, {"ioctl"}},
        {"xen-platform-blkback", 1536 * 1024, true, {"poll"}},
        {"libc", 4 * kMiB, false, {"read", "write", "fcntl", "clock_gettime"}},
        {"vbd-status-app", 512 * 1024, false, {"ioctl"}},
        {"boot-config", 128 * 1024, false, {}},
    };
    return p;
  }();
  return *kProfile;
}

const OsProfile& UbuntuDriverDomainProfile() {
  static const OsProfile* kProfile = [] {
    auto* p = new OsProfile();
    p->kind = OsKind::kUbuntuLinux;
    p->name = "Ubuntu-18.04-dd";
    p->costs = UbuntuCosts();
    p->boot_phases = UbuntuBootPhases();
    p->code = LinuxCode(96 * kMiB, 1.6);
    // Overlapping ranges: the union over components is exactly the 171
    // observed syscalls. Sizes total ≈230 MiB — 10x the Kite image (Fig 4b).
    p->components = {
        {"linux-kernel", 52 * kMiB, true, SyscallRange(0, 20)},
        {"kernel-modules", 28 * kMiB, true, SyscallRange(16, 24)},
        {"glibc+ld.so", 12 * kMiB, false, SyscallRange(0, 36)},
        {"systemd", 12 * kMiB, false, SyscallRange(30, 72)},
        {"udevd", 3 * kMiB, false, SyscallRange(66, 96)},
        {"dbus", 2 * kMiB, false, SyscallRange(90, 110)},
        {"bash+coreutils", 9 * kMiB, false, SyscallRange(104, 134)},
        {"python3", 45 * kMiB, false, SyscallRange(118, 150)},
        {"xen-utils+libxl+xl-devd", 15 * kMiB, false, SyscallRange(138, 162)},
        {"bridge-utils+iproute2", 2 * kMiB, false, SyscallRange(150, 166)},
        {"openssh-server", 5 * kMiB, false, SyscallRange(158, 171)},
        {"misc-libraries", 30 * kMiB, false, SyscallRange(0, 12)},
        {"perl+scripts", 15 * kMiB, false, SyscallRange(52, 64)},
    };
    p->extra_exposed_syscalls = UbuntuExtraExposed();
    return p;
  }();
  return *kProfile;
}

namespace {

// Gadget-comparison-only profile builder (Fig 5 distros).
const OsProfile* MakeGadgetProfile(OsKind kind, const char* name, int64_t code_bytes,
                                   double ret_density) {
  auto* p = new OsProfile();
  p->kind = kind;
  p->name = name;
  p->costs = UbuntuCosts();
  p->boot_phases = UbuntuBootPhases();
  p->code = LinuxCode(code_bytes, ret_density);
  p->components = {{"kernel+modules", code_bytes, true, SyscallRange(0, 20)}};
  p->extra_exposed_syscalls = UbuntuExtraExposed();
  return p;
}

}  // namespace

const OsProfile& DefaultLinuxProfile() {
  // Default config, almost no modules: already ≈4x Kite's gadgets (Fig 5).
  static const OsProfile* kProfile =
      MakeGadgetProfile(OsKind::kDefaultLinux, "Default-Linux", 27 * kMiB, 1.5);
  return *kProfile;
}

const OsProfile& CentOsProfile() {
  static const OsProfile* kProfile =
      MakeGadgetProfile(OsKind::kCentOs, "CentOS-8", 58 * kMiB, 1.55);
  return *kProfile;
}

const OsProfile& FedoraProfile() {
  static const OsProfile* kProfile =
      MakeGadgetProfile(OsKind::kFedora, "Fedora-2020.05", 82 * kMiB, 1.6);
  return *kProfile;
}

const OsProfile& DebianProfile() {
  static const OsProfile* kProfile =
      MakeGadgetProfile(OsKind::kDebian, "Debian-10.4", 90 * kMiB, 1.6);
  return *kProfile;
}

}  // namespace kite
