// Byte buffers and big-endian wire readers/writers used by the network
// protocol encoders (Ethernet/IPv4/UDP/DHCP) and by the security module's
// instruction streams.
#ifndef SRC_BASE_BYTES_H_
#define SRC_BASE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace kite {

using Buffer = std::vector<uint8_t>;

// Appends big-endian (network order) fields to a Buffer.
class ByteWriter {
 public:
  explicit ByteWriter(Buffer* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) {
    out_->push_back(static_cast<uint8_t>(v >> 8));
    out_->push_back(static_cast<uint8_t>(v));
  }
  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v >> 16));
    U16(static_cast<uint16_t>(v));
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v >> 32));
    U32(static_cast<uint32_t>(v));
  }
  void Raw(std::span<const uint8_t> bytes) { out_->insert(out_->end(), bytes.begin(), bytes.end()); }
  void Zeros(size_t n) { out_->insert(out_->end(), n, 0); }

  size_t size() const { return out_->size(); }

 private:
  Buffer* out_;
};

// Reads big-endian fields from a byte span. Reports truncation via ok().
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t U8() {
    if (!Need(1)) {
      return 0;
    }
    return data_[pos_++];
  }
  uint16_t U16() {
    if (!Need(2)) {
      return 0;
    }
    uint16_t v = static_cast<uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  uint32_t U32() {
    uint32_t hi = U16();
    uint32_t lo = U16();
    return hi << 16 | lo;
  }
  uint64_t U64() {
    uint64_t hi = U32();
    uint64_t lo = U32();
    return hi << 32 | lo;
  }
  bool Raw(std::span<uint8_t> out) {
    if (!Need(out.size())) {
      return false;
    }
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
    return true;
  }
  void Skip(size_t n) { Need(n) ? pos_ += n : pos_; }

  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  size_t pos() const { return pos_; }
  bool ok() const { return ok_; }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Internet checksum (RFC 1071) over a byte span; used by IPv4/UDP headers.
inline uint16_t InternetChecksum(std::span<const uint8_t> data, uint32_t initial = 0) {
  uint32_t sum = initial;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

// FNV-1a over a byte span; used for content fingerprints in data-integrity
// tests (end-to-end payload verification through rings and grant copies).
inline uint64_t Fnv1a(std::span<const uint8_t> data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace kite

#endif  // SRC_BASE_BYTES_H_
