#include "src/base/log.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace kite {
namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kWarning};
std::array<std::atomic<int>, 5> g_emit_counts{};
FatalHandler g_fatal_handler;
bool g_in_fatal_handler = false;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel GetLogThreshold() { return g_threshold.load(std::memory_order_relaxed); }

void SetLogThreshold(LogLevel level) { g_threshold.store(level, std::memory_order_relaxed); }

FatalHandler SetFatalHandler(FatalHandler handler) {
  FatalHandler previous = std::move(g_fatal_handler);
  g_fatal_handler = std::move(handler);
  return previous;
}

int GetLogEmitCount(LogLevel level) {
  return g_emit_counts[static_cast<int>(level)].load(std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  g_emit_counts[static_cast<int>(level_)].fetch_add(1, std::memory_order_relaxed);
  if (level_ >= GetLogThreshold()) {
    const char* base = file_;
    for (const char* p = file_; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), base, line_,
                 stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    // The check message above is already on stderr, so the bundle the
    // handler dumps can reference it; the re-entrancy guard means a fatal
    // inside the handler aborts with the partial dump instead of recursing.
    if (g_fatal_handler && !g_in_fatal_handler) {
      g_in_fatal_handler = true;
      g_fatal_handler();
    }
    std::abort();
  }
}

}  // namespace kite
