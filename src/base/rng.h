// Deterministic pseudo-random number generation for reproducible simulation.
//
// Uses xoshiro256** seeded through splitmix64, so every run of a benchmark or
// test with the same seed produces byte-identical event schedules.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace kite {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x6b697465ULL /* "kite" */);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with probability p of returning true.
  bool NextBool(double p);

  // Exponentially distributed value with the given mean (for inter-arrival
  // times in open-loop load generators).
  double NextExponential(double mean);

  // Standard normal via Box-Muller (used for jitter on service times).
  double NextGaussian(double mean, double stddev);

  // Fork a statistically independent child generator (stable across runs).
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace kite

#endif  // SRC_BASE_RNG_H_
