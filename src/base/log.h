// Minimal leveled logging for the Kite reproduction.
//
// Logging is intentionally tiny: simulation components log through LOG(level)
// streams; tests and benches can raise the threshold to keep output quiet.
#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <functional>
#include <sstream>
#include <string>

namespace kite {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global log threshold; messages below it are discarded.
LogLevel GetLogThreshold();
void SetLogThreshold(LogLevel level);

// Crash hook: invoked once when a kFatal message (KITE_CHECK failure) fires,
// after the message itself is written to stderr and before std::abort().
// KiteSystem installs a handler that dumps the one-shot diagnostic bundle
// (flight recorder, health table, pending events, metrics) so an abort in
// any binary leaves a black box behind. Returns the previously installed
// handler so nested owners can restore it on destruction. A fatal raised
// *while* the handler runs aborts immediately instead of recursing.
using FatalHandler = std::function<void()>;
FatalHandler SetFatalHandler(FatalHandler handler);

// One log statement. Accumulates a message and emits it on destruction.
// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Sink used by tests to capture log output; returns previous count of
// emitted messages at or above the given level.
int GetLogEmitCount(LogLevel level);

}  // namespace kite

#define KITE_LOG(level)                                                                  \
  ::kite::LogMessage(::kite::LogLevel::k##level, __FILE__, __LINE__).stream()

#define KITE_CHECK(cond)                                                                 \
  if (!(cond)) KITE_LOG(Fatal) << "Check failed: " #cond " "

#endif  // SRC_BASE_LOG_H_
