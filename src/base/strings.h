// Small string utilities (libstdc++ 12 lacks std::format, so we provide a
// printf-style StrFormat plus path/split helpers used by the xenstore).
#ifndef SRC_BASE_STRINGS_H_
#define SRC_BASE_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace kite {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Splits on a separator character; empty tokens are dropped
// ("/a//b/" -> {"a","b"}), which matches xenstore path semantics.
std::vector<std::string> SplitPath(std::string_view path, char sep = '/');

// Joins components with '/' and a leading '/'.
std::string JoinPath(const std::vector<std::string>& components);

bool HasPrefix(std::string_view s, std::string_view prefix);

// True if `path` equals `prefix` or is a descendant of it in '/'-separated
// terms ("/a/b" is under "/a" but "/ab" is not).
bool PathIsUnder(std::string_view path, std::string_view prefix);

// Parses a non-negative decimal integer; returns -1 on malformed input.
int64_t ParseDecimal(std::string_view s);

}  // namespace kite

#endif  // SRC_BASE_STRINGS_H_
