#include "src/base/strings.h"

#include <cstdio>

namespace kite {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::vector<std::string> SplitPath(std::string_view path, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= path.size()) {
    size_t end = path.find(sep, start);
    if (end == std::string_view::npos) {
      end = path.size();
    }
    if (end > start) {
      parts.emplace_back(path.substr(start, end - start));
    }
    start = end + 1;
  }
  return parts;
}

std::string JoinPath(const std::vector<std::string>& components) {
  std::string out;
  for (const auto& c : components) {
    out.push_back('/');
    out.append(c);
  }
  if (out.empty()) {
    out = "/";
  }
  return out;
}

bool HasPrefix(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool PathIsUnder(std::string_view path, std::string_view prefix) {
  if (prefix.empty() || prefix == "/") {
    return true;
  }
  // Normalize away a trailing slash on the prefix.
  if (prefix.back() == '/') {
    prefix.remove_suffix(1);
  }
  if (!HasPrefix(path, prefix)) {
    return false;
  }
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

int64_t ParseDecimal(std::string_view s) {
  if (s.empty()) {
    return -1;
  }
  int64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return -1;
    }
    value = value * 10 + (c - '0');
    if (value < 0) {
      return -1;  // Overflow.
    }
  }
  return value;
}

}  // namespace kite
