// Running statistics used by benchmarks to report means, relative standard
// deviations (the paper's Table 4), and latency percentiles.
#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <cstddef>
#include <vector>

namespace kite {

// Accumulates samples; cheap to copy. Percentile queries sort lazily.
class Stats {
 public:
  void Add(double sample);
  void Merge(const Stats& other);
  void Clear();

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  // Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double StdDev() const;
  // Relative standard deviation in percent: 100 * stddev / mean.
  double RelStdDevPercent() const;
  // p in [0, 100]; nearest-rank percentile.
  double Percentile(double p) const;
  // Raw samples (order unspecified: percentile queries sort in place). Lets
  // callers feed the same series into a LatencyHistogram or a report.
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Time-weighted counter for rates (e.g. bytes observed over a window).
class RateCounter {
 public:
  void Record(double amount) { total_ += amount; }
  double total() const { return total_; }
  // Rate per second given a window in nanoseconds.
  double PerSecond(double window_ns) const;

 private:
  double total_ = 0.0;
};

}  // namespace kite

#endif  // SRC_BASE_STATS_H_
