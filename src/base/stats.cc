#include "src/base/stats.h"

#include <algorithm>
#include <cmath>

#include "src/base/log.h"

namespace kite {

void Stats::Add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Stats::Merge(const Stats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void Stats::Clear() {
  samples_.clear();
  sorted_ = true;
}

double Stats::Sum() const {
  double s = 0.0;
  for (double v : samples_) {
    s += v;
  }
  return s;
}

double Stats::Mean() const { return samples_.empty() ? 0.0 : Sum() / samples_.size(); }

double Stats::Min() const {
  KITE_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::Max() const {
  KITE_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::StdDev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double acc = 0.0;
  for (double v : samples_) {
    acc += (v - mean) * (v - mean);
  }
  return std::sqrt(acc / (samples_.size() - 1));
}

double Stats::RelStdDevPercent() const {
  const double mean = Mean();
  if (mean == 0.0) {
    return 0.0;
  }
  return 100.0 * StdDev() / std::abs(mean);
}

double Stats::Percentile(double p) const {
  KITE_CHECK(!samples_.empty());
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) {
    return samples_.front();
  }
  if (p >= 100.0) {
    return samples_.back();
  }
  const size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * samples_.size()));
  return samples_[rank == 0 ? 0 : rank - 1];
}

double RateCounter::PerSecond(double window_ns) const {
  if (window_ns <= 0.0) {
    return 0.0;
  }
  return total_ * 1e9 / window_ns;
}

}  // namespace kite
