#include "src/base/rng.h"

#include <cmath>

#include "src/base/log.h"

namespace kite {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  KITE_CHECK(bound != 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  KITE_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range.
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 1e-18;
  }
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 1e-18;
  }
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace kite
