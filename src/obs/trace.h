// Observability: an optional event tracer producing Chrome trace_event JSON.
//
// The tracer records simulator events — hypercalls with their cost,
// event-channel sends/suppressions/deliveries, ring push/notify decisions,
// grant map/copy/unmap, domain lifecycle — keyed to *simulated* time, and
// dumps them in the Chrome trace_event format so a run can be opened in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Compiled in but off by default. Every instrumentation site is guarded as
//   if (tracer_ != nullptr && tracer_->enabled()) { tracer_->...; }
// so the disabled cost is one pointer test plus one byte load — measurably
// zero against even the cheapest simulated hypercall.
//
// Mapping: pid = domain id (with a process_name metadata record carrying the
// domain name), tid = a small per-domain track id chosen by the caller,
// ts/dur = simulated nanoseconds exported as fractional microseconds.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace kite {

class EventTracer {
 public:
  // `max_events` bounds memory; records past the cap are counted in
  // dropped() instead of stored, except that the very first drop stores one
  // synthetic "truncated" instant at the drop point (so the viewer shows
  // *where* the trace went dark, and size() may exceed the cap by one).
  explicit EventTracer(size_t max_events = 1 << 20) : max_events_(max_events) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // One argument slot is enough for every current call site; events without
  // an argument pass `arg_key = nullptr`.
  // Duration event ("ph":"X"): an operation with a cost.
  void Complete(int pid, int tid, const char* cat, const char* name, SimTime start,
                SimDuration dur, const char* arg_key = nullptr, int64_t arg_value = 0);
  // Instant event ("ph":"i"): a point occurrence (a drop, a suppression).
  void Instant(int pid, int tid, const char* cat, const char* name, SimTime at,
               const char* arg_key = nullptr, int64_t arg_value = 0);

  // Flow events stitch one logical request across domains: a FlowBegin at
  // the producing side, FlowSteps at intermediate hops, a FlowEnd at the
  // completing side, all carrying the same 64-bit `flow_id` (DESIGN.md §10).
  // Each call also records an anchor slice ("ph":"X", duration `dur`) at the
  // same point, because viewers bind flow arrows to an enclosing slice on
  // the thread track; pass the stage's charged cost when one exists, else 0.
  void FlowBegin(int pid, int tid, const char* cat, const char* name, SimTime at,
                 uint64_t flow_id, SimDuration dur = SimDuration(0));
  void FlowStep(int pid, int tid, const char* cat, const char* name, SimTime at,
                uint64_t flow_id, SimDuration dur = SimDuration(0));
  void FlowEnd(int pid, int tid, const char* cat, const char* name, SimTime at,
               uint64_t flow_id, SimDuration dur = SimDuration(0));

  // Metadata: names the pid track ("process_name") in the viewer.
  void SetProcessName(int pid, const std::string& name);

  size_t size() const { return events_.size(); }
  uint64_t dropped() const { return dropped_; }
  void Clear();

  // `{"traceEvents":[...]}` — the JSON object form, which Perfetto and
  // chrome://tracing both accept.
  std::string ToJson() const;
  // Writes ToJson() to `path`; returns false on I/O failure.
  bool DumpTrace(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X', 'i', or flow 's'/'t'/'f'.
    int pid;
    int tid;
    const char* cat;
    const char* name;
    int64_t ts_ns;
    int64_t dur_ns;
    const char* arg_key;  // nullptr when the event has no argument.
    int64_t arg_value;
    uint64_t flow_id = 0;  // Flow events only.
  };

  bool Admit(int pid, int tid, int64_t ts_ns);
  void FlowPoint(char phase, int pid, int tid, const char* cat, const char* name,
                 SimTime at, uint64_t flow_id, SimDuration dur);

  bool enabled_ = false;
  size_t max_events_;
  uint64_t dropped_ = 0;
  std::vector<Event> events_;
  std::map<int, std::string> process_names_;
};

}  // namespace kite

#endif  // SRC_OBS_TRACE_H_
