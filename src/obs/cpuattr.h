// CPU-attribution reporting: renders the per-vCPU (domain × category)
// ledgers maintained by src/sim/cpu.h (DESIGN.md §16).
//
// Layering: src/sim cannot depend on src/obs, so the Vcpu keeps only raw
// counters (busy/wait ns per category, a wait histogram) and this adapter —
// which may depend on both — does the table/JSON rendering and feeds the
// metric registry. Same split as the executor's dispatch profiler and
// src/obs/profile.h.
#ifndef SRC_OBS_CPUATTR_H_
#define SRC_OBS_CPUATTR_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/cpu.h"
#include "src/sim/time.h"

namespace kite {

// One vCPU with a stable report label. KiteSystem::CpuActors() builds the
// list (all live domains plus the client machine) in deterministic order.
struct CpuActor {
  std::string domain;  // e.g. "kite-netdom", "client".
  int vcpu_index = 0;
  const Vcpu* vcpu = nullptr;
};

// Plain-text "CPU" section for DumpDiagnostics / kite_inspect: one line per
// actor (busy, utilization over [0, now], run-queue wait percentiles) plus
// the top `top_n` categories by busy time. Utilization is clamped to 100%
// for display (the raw ratio lives in CpuReportJson).
std::string FormatCpuAttribution(const std::vector<CpuActor>& actors, SimTime now,
                                 size_t top_n = 6);

// Deterministic JSON: every actor with its raw (unclamped) utilization, wait
// distribution summary, and all nonzero categories sorted by busy time
// (ties: label). Byte-identical across same-seed runs.
std::string CpuReportJson(const std::vector<CpuActor>& actors, SimTime now);

// Publishes the ledgers into the metric registry so the MetricSampler admits
// them as timelines. Per actor (domain = actor.domain, device = "vcpu<i>"):
//   cpu_busy_ns            counter  total busy ns (timeline = busy ns/period)
//   cpu_util_percent       gauge    busy delta / elapsed since last pump,
//                                   raw (unclamped) percent
//   cpu_wait_p99_ns        gauge    run-queue wait p99 so far
//   cpu_<category>_ns      counter  per nonzero category ('/' → '_')
// Call from the sampler's pre-tick hook; only writes for actors whose vCPU
// has attribution enabled, so a disabled system never grows registry keys.
class CpuMetricsPump {
 public:
  explicit CpuMetricsPump(MetricRegistry* metrics) : metrics_(metrics) {}

  void Pump(const std::vector<CpuActor>& actors, SimTime now);

 private:
  struct Last {
    int64_t busy_ns = 0;
    int64_t t_ns = 0;
  };

  MetricRegistry* metrics_;
  std::map<std::pair<std::string, int>, Last> last_;
};

}  // namespace kite

#endif  // SRC_OBS_CPUATTR_H_
