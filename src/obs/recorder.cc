#include "src/obs/recorder.h"

#include "src/base/strings.h"

namespace kite {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

const char* FlightKindName(FlightKind kind) {
  switch (kind) {
    case FlightKind::kDomainCreated:
      return "domain-created";
    case FlightKind::kDomainDestroyed:
      return "domain-destroyed";
    case FlightKind::kXenbusSwitch:
      return "xenbus-switch";
    case FlightKind::kRingPush:
      return "ring-push";
    case FlightKind::kGrantMap:
      return "grant-map";
    case FlightKind::kGrantMapFail:
      return "grant-map-fail";
    case FlightKind::kGrantUnmap:
      return "grant-unmap";
    case FlightKind::kEventDropped:
      return "event-dropped";
    case FlightKind::kEventVanished:
      return "event-vanished";
    case FlightKind::kFaultTripped:
      return "fault-tripped";
    case FlightKind::kInstanceReaped:
      return "instance-reaped";
    case FlightKind::kHealthTransition:
      return "health-transition";
    case FlightKind::kMigrateStart:
      return "migrate-start";
    case FlightKind::kMigrateDone:
      return "migrate-done";
    case FlightKind::kInstanceRetired:
      return "instance-retired";
  }
  return "?";
}

FlightRecorder::FlightRecorder(Executor* executor, size_t capacity)
    : executor_(executor), capacity_(RoundUpPow2(capacity == 0 ? 1 : capacity)) {}

FlightRecorder::DomainRing* FlightRecorder::ring(int32_t dom) {
  auto it = rings_.find(dom);
  if (it == rings_.end()) {
    it = rings_.emplace(dom, std::make_unique<DomainRing>(executor_, dom, capacity_))
             .first;
  }
  return it->second.get();
}

uint64_t FlightRecorder::recorded(int32_t dom) const {
  auto it = rings_.find(dom);
  return it == rings_.end() ? 0 : it->second->recorded();
}

uint64_t FlightRecorder::total_recorded() const {
  uint64_t total = 0;
  for (const auto& [dom, ring] : rings_) {
    total += ring->recorded();
  }
  return total;
}

std::vector<FlightRecord> FlightRecorder::DomainRing::Tail(size_t max) const {
  const uint64_t available = head_ < capacity() ? head_ : capacity();
  const uint64_t take = available < max ? available : max;
  std::vector<FlightRecord> out;
  out.reserve(take);
  for (uint64_t i = head_ - take; i < head_; ++i) {
    out.push_back(slots_[i & mask_]);
  }
  return out;
}

std::string FlightRecorder::FormatTail(int32_t dom, size_t max) const {
  auto it = rings_.find(dom);
  if (it == rings_.end()) {
    return StrFormat("  dom %d: no records\n", dom);
  }
  const DomainRing& ring = *it->second;
  std::string out =
      StrFormat("  dom %d: %llu record(s)", dom,
                static_cast<unsigned long long>(ring.recorded()));
  const std::vector<FlightRecord> tail = ring.Tail(max);
  if (ring.recorded() > tail.size()) {
    out += StrFormat(", last %zu", tail.size());
  }
  out += "\n";
  for (const FlightRecord& r : tail) {
    out += StrFormat("    t=%.9fs %-17s dev=%d a=%llu b=%llu\n",
                     static_cast<double>(r.t_ns) * 1e-9, FlightKindName(r.kind), r.dev,
                     static_cast<unsigned long long>(r.a),
                     static_cast<unsigned long long>(r.b));
  }
  return out;
}

std::string FlightRecorder::FormatAll(size_t max_per_domain) const {
  std::string out;
  for (const auto& [dom, ring] : rings_) {
    (void)ring;
    out += FormatTail(dom, max_per_domain);
  }
  return out;
}

}  // namespace kite
