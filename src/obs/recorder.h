// Observability: the always-on flight recorder.
//
// A black box for the simulator: every domain gets a fixed-size ring of
// structured recent events (xenbus state switches, ring push watermarks,
// grant map/unmap, swallowed event kicks, fault trips, instance reaps,
// health transitions) recorded unconditionally — no enable flag, no
// allocation on the hot path, one masked store per record. When a
// KITE_CHECK aborts or kite_explore wedges, the tail of each ring says what
// the last ~256 things each domain did, which is exactly the context the
// one-line check message discards.
//
// Records are PODs of (time, kind, dom, dev, a, b); the meaning of a/b is
// per-kind (DESIGN.md §11). Strings are deliberately excluded so a record
// is 32 bytes and the ring never allocates after construction. Dump output
// depends only on recorded values and simulated time, so identical seeds
// produce byte-identical dumps — asserted by the wraparound determinism
// test.
#ifndef SRC_OBS_RECORDER_H_
#define SRC_OBS_RECORDER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/executor.h"

namespace kite {

enum class FlightKind : uint8_t {
  kDomainCreated,     // a=vcpus, b=memory_mb
  kDomainDestroyed,   // a=0, b=0
  kXenbusSwitch,      // a=new XenbusState (numeric), b=0
  kRingPush,          // dev=devid, a=rsp_prod, b=req_cons (backend watermarks)
  kGrantMap,          // dev=owner dom, a=grant ref, b=0
  kGrantMapFail,      // dev=owner dom, a=grant ref, b=0
  kGrantUnmap,        // dev=owner dom, a=grant ref, b=0
  kEventDropped,      // dev=port, a=0 (send on masked/unbound port)
  kEventVanished,     // dev=port, a=0 (peer domain died)
  kFaultTripped,      // dev=FaultSite (numeric), a=total trips at that site
  kInstanceReaped,    // dev=devid, a=dead frontend dom
  kHealthTransition,  // dev=devid, a=old HealthState, b=new HealthState
  kMigrateStart,      // dev=devid, a=from dom, b=to dom (guest's ring)
  kMigrateDone,       // dev=devid, a=to dom, b=1 success / 0 failure
  kInstanceRetired,   // dev=devid, a=frontend dom (graceful drain complete)
};

const char* FlightKindName(FlightKind kind);

struct FlightRecord {
  int64_t t_ns = 0;
  FlightKind kind{};
  int32_t dom = 0;  // Domain whose ring holds the record.
  int32_t dev = 0;  // Kind-specific (device id, port, peer dom, ...).
  uint64_t a = 0;
  uint64_t b = 0;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;  // Per-domain; power of two.

  // `capacity` is rounded up to a power of two so the hot path masks
  // instead of dividing.
  explicit FlightRecorder(Executor* executor, size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // One domain's ring. Stable address once created, so hot paths may cache
  // the pointer instead of re-looking-up by dom id.
  class DomainRing {
   public:
    DomainRing(Executor* executor, int32_t dom, size_t capacity)
        : executor_(executor), dom_(dom), mask_(capacity - 1), slots_(capacity) {}

    void Record(FlightKind kind, int32_t dev, uint64_t a, uint64_t b) {
      FlightRecord& slot = slots_[head_ & mask_];
      slot.t_ns = executor_->Now().ns();
      slot.kind = kind;
      slot.dom = dom_;
      slot.dev = dev;
      slot.a = a;
      slot.b = b;
      ++head_;
    }

    // Total records ever written (>= capacity means the ring has wrapped).
    uint64_t recorded() const { return head_; }
    size_t capacity() const { return mask_ + 1; }
    // Oldest-first copy of the last min(recorded, capacity, max) records.
    std::vector<FlightRecord> Tail(size_t max) const;

   private:
    Executor* executor_;
    int32_t dom_;
    uint64_t head_ = 0;
    size_t mask_;
    std::vector<FlightRecord> slots_;
  };

  // Get-or-create; rings persist after the domain dies (that is the point —
  // the black box of a destroyed domain is still readable).
  DomainRing* ring(int32_t dom);

  // Hot-path convenience when the caller has no cached ring.
  void Record(int32_t dom, FlightKind kind, int32_t dev = 0, uint64_t a = 0,
              uint64_t b = 0) {
    ring(dom)->Record(kind, dev, a, b);
  }

  uint64_t recorded(int32_t dom) const;
  uint64_t total_recorded() const;

  // Human-readable tail of one domain's ring, oldest first.
  std::string FormatTail(int32_t dom, size_t max = 32) const;
  // All domains in id order — the flight-recorder section of DumpDiagnostics.
  std::string FormatAll(size_t max_per_domain = 32) const;

 private:
  Executor* executor_;
  size_t capacity_;
  std::map<int32_t, std::unique_ptr<DomainRing>> rings_;
};

}  // namespace kite

#endif  // SRC_OBS_RECORDER_H_
