#include "src/obs/profile.h"

#include <algorithm>

#include "src/base/strings.h"

namespace kite {

std::string FormatDispatchProfile(const Executor& executor, size_t top_n) {
  if (!executor.dispatch_profiler_enabled()) {
    return "(dispatch profiler disabled)\n";
  }
  const std::vector<DispatchProfileEntry> profile = executor.DispatchProfile();
  uint64_t total_invocations = 0;
  uint64_t total_est_ns = 0;
  for (const DispatchProfileEntry& e : profile) {
    total_invocations += e.invocations;
    total_est_ns += e.est_wall_ns;
  }
  std::string out =
      StrFormat("%llu dispatches across %zu site(s), est %.3f ms dispatch time\n",
                static_cast<unsigned long long>(total_invocations), profile.size(),
                static_cast<double>(total_est_ns) / 1e6);
  out += StrFormat("  %-36s %12s %8s %10s %8s\n", "site", "calls", "share",
                   "est_ms", "ns/call");
  const size_t n = std::min(top_n, profile.size());
  for (size_t i = 0; i < n; ++i) {
    const DispatchProfileEntry& e = profile[i];
    const double share = total_est_ns == 0
                             ? 0
                             : 100.0 * static_cast<double>(e.est_wall_ns) /
                                   static_cast<double>(total_est_ns);
    const double per_call = e.invocations == 0
                                ? 0
                                : static_cast<double>(e.est_wall_ns) /
                                      static_cast<double>(e.invocations);
    out += StrFormat("  %-36s %12llu %7.1f%% %10.3f %8.0f\n", e.label,
                     static_cast<unsigned long long>(e.invocations), share,
                     static_cast<double>(e.est_wall_ns) / 1e6, per_call);
  }
  if (profile.size() > n) {
    out += StrFormat("  ... %zu more site(s)\n", profile.size() - n);
  }
  return out;
}

std::string DispatchProfileJson(const Executor& executor) {
  const std::vector<DispatchProfileEntry> profile = executor.DispatchProfile();
  uint64_t total_invocations = 0;
  for (const DispatchProfileEntry& e : profile) {
    total_invocations += e.invocations;
  }
  std::string json = StrFormat(
      "{\n  \"total_dispatches\": %llu,\n  \"sites\": [\n",
      static_cast<unsigned long long>(total_invocations));
  for (size_t i = 0; i < profile.size(); ++i) {
    const DispatchProfileEntry& e = profile[i];
    json += StrFormat(
        "    {\"label\": \"%s\", \"invocations\": %llu, \"samples\": %llu, "
        "\"sampled_wall_ns\": %llu, \"est_wall_ns\": %llu}%s\n",
        e.label, static_cast<unsigned long long>(e.invocations),
        static_cast<unsigned long long>(e.samples),
        static_cast<unsigned long long>(e.sampled_wall_ns),
        static_cast<unsigned long long>(e.est_wall_ns),
        i + 1 < profile.size() ? "," : "");
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace kite
