#include "src/obs/latency.h"

#include <cmath>

namespace kite {

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p <= 0) {
    return min_;
  }
  if (p > 100) {
    p = 100;
  }
  // Nearest rank: the smallest rank r (1-based) with r >= p% of count.
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > count_) {
    rank = count_;
  }
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      return BucketLowerBound(i);
    }
  }
  return max_;  // Unreachable: cumulative reaches count_.
}

void LatencyHistogram::Reset() {
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
  buckets_.fill(0);
}

}  // namespace kite
