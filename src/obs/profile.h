// Rendering for the executor dispatch profiler (src/sim/executor.h).
//
// The executor owns the raw per-site counters (src/sim cannot depend on
// src/obs); this module turns them into the human table DumpDiagnostics and
// kite_explore liveness reports embed, and the JSON dump KITE_PROFILE and
// bench_engine write. Invocation counts are exact and deterministic; wall
// times are sampled host-clock measurements (DESIGN.md §15).
#ifndef SRC_OBS_PROFILE_H_
#define SRC_OBS_PROFILE_H_

#include <cstddef>
#include <string>

#include "src/sim/executor.h"

namespace kite {

// Top-N dispatch sites by estimated wall time, one per line with share of
// total, invocation count, and mean ns/dispatch. Returns a "(dispatch
// profiler disabled)" line when the profiler was never enabled.
std::string FormatDispatchProfile(const Executor& executor, size_t top_n = 10);

// Full profile as JSON: {"total_dispatches":..., "sites":[{...} per line]}.
std::string DispatchProfileJson(const Executor& executor);

}  // namespace kite

#endif  // SRC_OBS_PROFILE_H_
