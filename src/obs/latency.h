// Observability: a log-bucketed latency histogram with percentile extraction.
//
// The registry's plain `Histogram` is a count/sum/min/max summary — enough
// for batch sizes, useless for tail latency. `LatencyHistogram` keeps an
// HdrHistogram-style log-linear bucket array over nanosecond values: each
// power-of-two octave is split into 32 linear sub-buckets, so the bucket
// width is always < 1/32 of the value (≤ ~3.1% relative error), values
// 0..63 ns land in their own exact bucket, and the full uint64 range fits in
// 1920 buckets (15 KiB, fixed at construction). Recording is one array-index
// increment; percentiles are extracted on demand by a nearest-rank walk and
// reported as the bucket's lower bound, so any recorded value that *is* a
// bucket boundary reads back exactly.
#ifndef SRC_OBS_LATENCY_H_
#define SRC_OBS_LATENCY_H_

#include <array>
#include <bit>
#include <cstdint>

namespace kite {

class LatencyHistogram {
 public:
  // 32 sub-buckets per octave; indices 0..63 are the two exact low octaves.
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 32
  // Highest index: msb=63 → (63-5)*32 + 63 = 1919.
  static constexpr int kNumBuckets = (63 - kSubBucketBits) * kSubBuckets + 2 * kSubBuckets;

  // Bucket index for a value: identity below 2*kSubBuckets, then
  // (msb - 5)*32 + the top six bits of the value.
  static int BucketIndex(uint64_t v) {
    if (v < 2 * kSubBuckets) {
      return static_cast<int>(v);
    }
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBucketBits;
    return (msb - kSubBucketBits) * kSubBuckets + static_cast<int>(v >> shift);
  }

  // Smallest value mapping to bucket `index` (inverse of BucketIndex).
  static uint64_t BucketLowerBound(int index) {
    if (index < 2 * kSubBuckets) {
      return static_cast<uint64_t>(index);
    }
    const int octave = index / kSubBuckets;  // >= 2
    const int sub = index % kSubBuckets;
    return static_cast<uint64_t>(sub + kSubBuckets) << (octave - 1);
  }

  void Record(uint64_t value_ns) {
    if (count_ == 0 || value_ns < min_) {
      min_ = value_ns;
    }
    if (count_ == 0 || value_ns > max_) {
      max_ = value_ns;
    }
    ++count_;
    sum_ += value_ns;
    ++buckets_[BucketIndex(value_ns)];
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const { return count_ == 0 ? 0 : static_cast<double>(sum_) / static_cast<double>(count_); }

  // Nearest-rank percentile (p in [0,100]) reported as the lower bound of
  // the bucket holding that rank. Empty histogram → 0; p≤0 → min().
  uint64_t Percentile(double p) const;

  uint64_t p50() const { return Percentile(50); }
  uint64_t p90() const { return Percentile(90); }
  uint64_t p99() const { return Percentile(99); }
  uint64_t p999() const { return Percentile(99.9); }

  void Reset();

 private:
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  std::array<uint64_t, kNumBuckets> buckets_{};
};

}  // namespace kite

#endif  // SRC_OBS_LATENCY_H_
