// Observability: the cross-domain flow-id scheme (DESIGN.md §10).
//
// A flow id names one logical I/O request as it crosses guest → driver
// domain → device and back. Both ring ends can compute it independently —
// without any guest-visible protocol change — because the Xen ring's
// free-running request index is already shared state: the frontend knows it
// at ProduceRequest time (req_prod_pvt), the backend at ConsumeRequest time
// (req_cons), and the response for request i reuses logical slot i, so the
// frontend recovers the same index at rsp_cons when it consumes the
// response. The free-running (unmasked) index is the "ring slot generation":
// it distinguishes reuse of the same physical slot across ring wraps for
// 2^32 requests per ring.
//
// Layout: [63:60] kind | [59:44] frontend domid | [43:32] device id | [31:0]
// free-running ring index. Net Tx and Rx are distinct kinds because they are
// distinct rings with independent index spaces on the same vif.
#ifndef SRC_OBS_FLOW_H_
#define SRC_OBS_FLOW_H_

#include <cstdint>

namespace kite {

enum class FlowKind : uint64_t {
  kNetTx = 1,
  kNetRx = 2,
  kBlk = 3,
};

constexpr uint64_t MakeFlowId(FlowKind kind, int frontend_domid, int device_id,
                              uint32_t ring_index) {
  return (static_cast<uint64_t>(kind) << 60) |
         ((static_cast<uint64_t>(frontend_domid) & 0xffff) << 44) |
         ((static_cast<uint64_t>(device_id) & 0xfff) << 32) |
         static_cast<uint64_t>(ring_index);
}

}  // namespace kite

#endif  // SRC_OBS_FLOW_H_
