#include "src/obs/trace.h"

#include <cstdio>

#include "src/base/strings.h"

namespace kite {

namespace {

// The trace uses compile-time category/name literals and domain names from
// CreateDomain; escaping still keeps the JSON well-formed if a domain name
// ever contains a quote or backslash.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool EventTracer::Admit(int pid, int tid, int64_t ts_ns) {
  if (events_.size() >= max_events_) {
    if (dropped_ == 0) {
      // First drop: leave a marker at the drop point. The viewer then shows
      // exactly where the trace went dark instead of just ending; the
      // events_dropped counter says how much followed. This one record may
      // push size() to max_events_ + 1 — bounded, and only once.
      events_.push_back(
          {'i', pid, tid, "trace", "truncated", ts_ns, 0, "events_dropped_after", 1});
    }
    ++dropped_;
    return false;
  }
  return true;
}

void EventTracer::Complete(int pid, int tid, const char* cat, const char* name,
                           SimTime start, SimDuration dur, const char* arg_key,
                           int64_t arg_value) {
  if (!enabled_ || !Admit(pid, tid, start.ns())) {
    return;
  }
  events_.push_back({'X', pid, tid, cat, name, start.ns(), dur.ns(), arg_key, arg_value});
}

void EventTracer::Instant(int pid, int tid, const char* cat, const char* name, SimTime at,
                          const char* arg_key, int64_t arg_value) {
  if (!enabled_ || !Admit(pid, tid, at.ns())) {
    return;
  }
  events_.push_back({'i', pid, tid, cat, name, at.ns(), 0, arg_key, arg_value});
}

void EventTracer::FlowPoint(char phase, int pid, int tid, const char* cat,
                            const char* name, SimTime at, uint64_t flow_id,
                            SimDuration dur) {
  if (!enabled_) {
    return;
  }
  // Anchor slice first: viewers bind the flow record to the slice that
  // encloses its timestamp on this thread track.
  if (Admit(pid, tid, at.ns())) {
    events_.push_back({'X', pid, tid, cat, name, at.ns(), dur.ns(), nullptr, 0});
  }
  if (Admit(pid, tid, at.ns())) {
    events_.push_back({phase, pid, tid, cat, name, at.ns(), 0, nullptr, 0, flow_id});
  }
}

void EventTracer::FlowBegin(int pid, int tid, const char* cat, const char* name,
                            SimTime at, uint64_t flow_id, SimDuration dur) {
  FlowPoint('s', pid, tid, cat, name, at, flow_id, dur);
}

void EventTracer::FlowStep(int pid, int tid, const char* cat, const char* name,
                           SimTime at, uint64_t flow_id, SimDuration dur) {
  FlowPoint('t', pid, tid, cat, name, at, flow_id, dur);
}

void EventTracer::FlowEnd(int pid, int tid, const char* cat, const char* name,
                          SimTime at, uint64_t flow_id, SimDuration dur) {
  FlowPoint('f', pid, tid, cat, name, at, flow_id, dur);
}

void EventTracer::SetProcessName(int pid, const std::string& name) {
  process_names_[pid] = name;
}

void EventTracer::Clear() {
  events_.clear();
  dropped_ = 0;
}

std::string EventTracer::ToJson() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [pid, name] : process_names_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += StrFormat(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,"
        "\"args\":{\"name\":\"%s\"}}",
        pid, JsonEscape(name).c_str());
  }
  for (const Event& e : events_) {
    if (!first) {
      out += ",";
    }
    first = false;
    // ts/dur are microseconds in the trace_event format; keep nanosecond
    // precision as a fraction.
    out += StrFormat("{\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,\"cat\":\"%s\",\"name\":\"%s\","
                     "\"ts\":%.3f",
                     e.phase, e.pid, e.tid, e.cat, e.name,
                     static_cast<double>(e.ts_ns) / 1e3);
    if (e.phase == 'X') {
      out += StrFormat(",\"dur\":%.3f", static_cast<double>(e.dur_ns) / 1e3);
    } else if (e.phase == 'i') {
      out += ",\"s\":\"t\"";  // Instant scope: thread.
    } else {
      // Flow event ('s'/'t'/'f'): the id correlates begin/step/end records.
      out += StrFormat(",\"id\":\"0x%llx\"", static_cast<unsigned long long>(e.flow_id));
      if (e.phase == 'f') {
        out += ",\"bp\":\"e\"";  // Bind the arrowhead to the enclosing slice.
      }
    }
    if (e.arg_key != nullptr) {
      out += StrFormat(",\"args\":{\"%s\":%lld}", e.arg_key,
                       static_cast<long long>(e.arg_value));
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool EventTracer::DumpTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = (std::fclose(f) == 0) && written == json.size();
  return ok;
}

}  // namespace kite
