// Observability: the backend health watchdog.
//
// Each backend instance (netback vif, blkback vbd) registers a sampler that
// reports its ring watermarks and internal backlog. A periodic simulated-time
// probe (a daemon event — it never keeps the simulation alive) computes the
// ring-stall age: how long the instance has had pending work without the
// consumer or response producer advancing. The age drives a per-instance
// state machine
//
//     healthy --degraded_after--> degraded --stalled_after--> stalled
//
// that collapses back to healthy the moment progress resumes or the backlog
// drains. Transitions are counted in the MetricRegistry, recorded in the
// flight recorder, and published (via a callback KiteSystem wires to
// xenstore) so a wedged ring is visible long before a WaitUntil timeout
// fires. Thresholds are multiples of the probe period; defaults are generous
// enough that normal device latency never trips them (the CI watchdog job
// proves a full explore lifecycle stays silent even with pathologically
// tight values).
#ifndef SRC_OBS_HEALTH_H_
#define SRC_OBS_HEALTH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/sim/executor.h"
#include "src/sim/time.h"

namespace kite {

enum class HealthState : int {
  kHealthy = 0,
  kDegraded = 1,
  kStalled = 2,
};

const char* HealthStateName(HealthState state);

// What a backend instance reports per probe. Ring indices are free-running
// uint32 counters (same convention as SharedRing); only differences are used,
// so wraparound is harmless.
struct HealthSample {
  bool connected = false;
  uint32_t req_prod = 0;   // Frontend request producer.
  uint32_t req_cons = 0;   // Backend request consumer.
  uint32_t rsp_prod = 0;   // Backend response producer (private).
  int queue_depth = 0;     // Backend-internal backlog (queued frames, in-flight ops).
};

struct HealthParams {
  SimDuration probe_period = Millis(10);
  SimDuration degraded_after = Millis(50);
  SimDuration stalled_after = Millis(200);
};

class HealthMonitor {
 public:
  using Sampler = std::function<HealthSample()>;
  // (backend dom, device, new state) — KiteSystem publishes into xenstore.
  using Publisher = std::function<void(int32_t dom, const std::string& device,
                                       HealthState state)>;
  // Transition subscribers additionally see the state being left, which is
  // what a policy engine needs for hysteresis decisions.
  using Subscriber = std::function<void(int32_t dom, const std::string& device,
                                        HealthState old_state, HealthState new_state)>;

  HealthMonitor(Executor* executor, MetricRegistry* metrics, FlightRecorder* recorder,
                HealthParams params);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void set_publisher(Publisher publisher) { publisher_ = std::move(publisher); }

  // Observes every state transition without displacing the publisher or any
  // other subscriber. Dispatch order is deterministic: the publisher first,
  // then subscribers in subscription order. Callbacks run inside the probe —
  // they must not Register/Unregister/Subscribe synchronously; defer any
  // reaction through the executor. The returned id unsubscribes.
  int64_t Subscribe(Subscriber subscriber);
  void Unsubscribe(int64_t id);
  int subscriber_count() const { return static_cast<int>(subscribers_.size()); }

  // Registers an instance; the returned id unregisters it. `domain_name` and
  // `device` key the per-instance gauges ("<domain>/<device>/health_state");
  // `devid` tags flight-recorder transition records. The sampler must stay
  // callable until Unregister.
  int64_t Register(int32_t dom, const std::string& domain_name,
                   const std::string& device, int devid, Sampler sampler);
  void Unregister(int64_t id);

  // Arms the periodic probe (idempotent). Probes are daemon events: they
  // fire while the simulation runs but never hold it open.
  void Start();

  // Probes every instance immediately — the invariant checker calls this at
  // quiesce so verdicts are fresh, not left over from the last periodic tick.
  void ProbeNow();

  HealthState state(int32_t dom, const std::string& device) const;

  struct InstanceInfo {
    int32_t dom = 0;
    std::string domain_name;
    std::string device;
    HealthState state = HealthState::kHealthy;
    SimDuration stall_age{0};
    uint32_t backlog = 0;  // Unconsumed requests + internal queue depth.
    HealthSample last;
  };
  // Registration order (deterministic).
  std::vector<InstanceInfo> Instances() const;

  // Human-readable health table — the health section of DumpDiagnostics.
  std::string FormatTable() const;

  const HealthParams& params() const { return params_; }
  uint64_t probes_run() const { return probes_run_; }

 private:
  struct Instance {
    int32_t dom = 0;
    std::string domain_name;
    std::string device;
    int devid = 0;
    Sampler sampler;
    HealthState state = HealthState::kHealthy;
    bool have_baseline = false;
    uint32_t last_cons = 0;
    uint32_t last_rsp = 0;
    SimTime last_progress;
    HealthSample last;
    SimDuration stall_age{0};
    uint32_t backlog = 0;
    Gauge* state_gauge = nullptr;
    Gauge* stall_ns_gauge = nullptr;
    Gauge* backlog_gauge = nullptr;
  };

  void Tick();
  void Probe();
  void ProbeInstance(Instance& inst);
  void UpdateAggregates();

  Executor* executor_;
  MetricRegistry* metrics_;
  FlightRecorder* recorder_;
  HealthParams params_;
  Publisher publisher_;
  // Subscription order == dispatch order (std::map iterates ids ascending).
  std::map<int64_t, Subscriber> subscribers_;
  int64_t next_subscriber_id_ = 1;
  bool started_ = false;
  int64_t next_id_ = 1;
  uint64_t probes_run_ = 0;
  std::map<int64_t, Instance> instances_;

  Counter* probes_counter_;
  Counter* transitions_counter_;
  Counter* stalled_transitions_counter_;
  Gauge* instances_gauge_;
  Gauge* healthy_gauge_;
  Gauge* degraded_gauge_;
  Gauge* stalled_gauge_;
};

}  // namespace kite

#endif  // SRC_OBS_HEALTH_H_
