#include "src/obs/cpuattr.h"

#include <algorithm>
#include <cstdint>

#include "src/base/strings.h"

namespace kite {
namespace {

// All-nonzero categories of one ledger, busy-descending (ties: label
// ascending) — the registry order is registration order, which depends on
// which translation unit's static ran first, so reports sort explicitly to
// stay deterministic.
struct CategoryRow {
  uint32_t index;
  uint64_t busy_ns;
};

std::vector<CategoryRow> SortedCategories(const CpuLedger& ledger) {
  std::vector<CategoryRow> rows;
  for (uint32_t i = 0; i < ledger.busy_ns.size(); ++i) {
    if (ledger.busy_ns[i] == 0) {
      continue;
    }
    rows.push_back({i, ledger.busy_ns[i]});
  }
  std::sort(rows.begin(), rows.end(), [](const CategoryRow& a, const CategoryRow& b) {
    if (a.busy_ns != b.busy_ns) {
      return a.busy_ns > b.busy_ns;
    }
    return std::string(CpuCategoryLabel(a.index)) < CpuCategoryLabel(b.index);
  });
  return rows;
}

std::string FormatMs(uint64_t ns) {
  return StrFormat("%.3fms", static_cast<double>(ns) / 1e6);
}

std::string FormatUs(uint64_t ns) {
  return StrFormat("%.1fus", static_cast<double>(ns) / 1e3);
}

// Metric names use '_' where category labels use '/': "hv/grant_copy" feeds
// the "cpu_hv_grant_copy_ns" counter. Index 0's parenthesized builtin label
// becomes plain "unattributed".
std::string MetricSuffix(uint32_t category) {
  if (category == kCpuUnattributedIndex) {
    return "unattributed";
  }
  std::string s = CpuCategoryLabel(category);
  for (char& c : s) {
    if (c == '/') {
      c = '_';
    }
  }
  return s;
}

}  // namespace

std::string FormatCpuAttribution(const std::vector<CpuActor>& actors, SimTime now,
                                 size_t top_n) {
  std::string out;
  for (const CpuActor& actor : actors) {
    if (actor.vcpu == nullptr) {
      continue;
    }
    const Vcpu& cpu = *actor.vcpu;
    const uint64_t busy_ns = static_cast<uint64_t>(cpu.busy_total().ns());
    double util = Vcpu::Utilization(SimDuration(0), cpu.busy_total(),
                                    now - SimTime(0));
    // Display clamp only; CpuReportJson keeps the raw ratio.
    if (util > 1.0) {
      util = 1.0;
    }
    out += StrFormat("  %s/vcpu%d: busy %s  util %.1f%%", actor.domain.c_str(),
                     actor.vcpu_index, FormatMs(busy_ns).c_str(), util * 100.0);
    if (!cpu.attribution_enabled()) {
      out += "  (attribution off)\n";
      continue;
    }
    const CpuLedger& ledger = *cpu.ledger();
    const CpuWaitHistogram& wait = ledger.wait_hist;
    out += StrFormat(
        "  wait p50 %s p99 %s max %s (n=%llu)\n",
        FormatUs(wait.Percentile(50)).c_str(), FormatUs(wait.Percentile(99)).c_str(),
        FormatUs(wait.max()).c_str(), static_cast<unsigned long long>(wait.count()));
    const std::vector<CategoryRow> rows = SortedCategories(ledger);
    const size_t n = std::min(top_n, rows.size());
    for (size_t i = 0; i < n; ++i) {
      const CategoryRow& row = rows[i];
      const double share =
          busy_ns == 0 ? 0
                       : 100.0 * static_cast<double>(row.busy_ns) /
                             static_cast<double>(busy_ns);
      out += StrFormat("    %-24s %12s %6.1f%%\n", CpuCategoryLabel(row.index),
                       FormatMs(row.busy_ns).c_str(), share);
    }
    if (rows.size() > n) {
      out += StrFormat("    ... %zu more categor%s\n", rows.size() - n,
                       rows.size() - n == 1 ? "y" : "ies");
    }
  }
  if (out.empty()) {
    out = "  (no vcpus)\n";
  }
  return out;
}

std::string CpuReportJson(const std::vector<CpuActor>& actors, SimTime now) {
  std::string json =
      StrFormat("{\n  \"t_ns\": %lld,\n  \"actors\": [\n",
                static_cast<long long>(now.ns()));
  size_t emitted = 0;
  size_t present = 0;
  for (const CpuActor& actor : actors) {
    if (actor.vcpu != nullptr) {
      ++present;
    }
  }
  for (const CpuActor& actor : actors) {
    if (actor.vcpu == nullptr) {
      continue;
    }
    const Vcpu& cpu = *actor.vcpu;
    const double util =
        Vcpu::Utilization(SimDuration(0), cpu.busy_total(), now - SimTime(0));
    json += StrFormat(
        "    {\"domain\": \"%s\", \"vcpu\": %d, \"attribution\": %s, "
        "\"busy_ns\": %llu, \"util\": %.6f",
        actor.domain.c_str(), actor.vcpu_index,
        cpu.attribution_enabled() ? "true" : "false",
        static_cast<unsigned long long>(cpu.busy_total().ns()), util);
    if (cpu.attribution_enabled()) {
      const CpuLedger& ledger = *cpu.ledger();
      const CpuWaitHistogram& wait = ledger.wait_hist;
      json += StrFormat(
          ",\n     \"wait\": {\"count\": %llu, \"total_ns\": %llu, "
          "\"max_ns\": %llu, \"p50_ns\": %llu, \"p90_ns\": %llu, "
          "\"p99_ns\": %llu},\n     \"categories\": [",
          static_cast<unsigned long long>(wait.count()),
          static_cast<unsigned long long>(wait.sum()),
          static_cast<unsigned long long>(wait.max()),
          static_cast<unsigned long long>(wait.Percentile(50)),
          static_cast<unsigned long long>(wait.Percentile(90)),
          static_cast<unsigned long long>(wait.Percentile(99)));
      const std::vector<CategoryRow> rows = SortedCategories(ledger);
      const uint64_t busy_ns = static_cast<uint64_t>(cpu.busy_total().ns());
      for (size_t i = 0; i < rows.size(); ++i) {
        const CategoryRow& row = rows[i];
        const double share =
            busy_ns == 0 ? 0
                         : static_cast<double>(row.busy_ns) /
                               static_cast<double>(busy_ns);
        json += StrFormat(
            "%s\n      {\"label\": \"%s\", \"busy_ns\": %llu, \"share\": %.6f}",
            i == 0 ? "" : ",", CpuCategoryLabel(row.index),
            static_cast<unsigned long long>(row.busy_ns), share);
      }
      json += rows.empty() ? "]" : "\n     ]";
    }
    ++emitted;
    json += StrFormat("}%s\n", emitted < present ? "," : "");
  }
  json += "  ]\n}\n";
  return json;
}

void CpuMetricsPump::Pump(const std::vector<CpuActor>& actors, SimTime now) {
  for (const CpuActor& actor : actors) {
    if (actor.vcpu == nullptr || !actor.vcpu->attribution_enabled()) {
      continue;
    }
    const Vcpu& cpu = *actor.vcpu;
    const std::string device = StrFormat("vcpu%d", actor.vcpu_index);
    const int64_t busy_ns = cpu.busy_total().ns();
    metrics_->counter(actor.domain, device, "cpu_busy_ns")
        ->Set(static_cast<uint64_t>(busy_ns));
    // Utilization over the window since the previous pump (the sampler
    // period), raw/unclamped so overcommit stays visible in timelines.
    Last& last = last_[{actor.domain, actor.vcpu_index}];
    const int64_t window_ns = now.ns() - last.t_ns;
    if (window_ns > 0) {
      const double util = static_cast<double>(busy_ns - last.busy_ns) /
                          static_cast<double>(window_ns);
      metrics_->gauge(actor.domain, device, "cpu_util_percent")->Set(util * 100.0);
    }
    last.busy_ns = busy_ns;
    last.t_ns = now.ns();
    const CpuLedger& ledger = *cpu.ledger();
    metrics_->gauge(actor.domain, device, "cpu_wait_p99_ns")
        ->Set(static_cast<double>(ledger.wait_hist.Percentile(99)));
    for (uint32_t i = 0; i < ledger.busy_ns.size(); ++i) {
      if (ledger.busy_ns[i] == 0) {
        continue;  // Never-used categories don't grow the registry.
      }
      metrics_
          ->counter(actor.domain, device,
                    StrFormat("cpu_%s_ns", MetricSuffix(i).c_str()))
          ->Set(ledger.busy_ns[i]);
    }
  }
}

}  // namespace kite
