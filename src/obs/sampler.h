// Continuous telemetry: a time-series sampler over the metric registry.
//
// End-of-run snapshots (FormatTable, BenchReport counters) say *what*
// happened; the sampler says *when*. Every `period` it walks the registry
// and appends one point per counter/gauge to a ring-bounded timeline:
// counters record the delta since the previous tick (a rate series), gauges
// record the level (queue depths, health states, cwnd). bench_failover's
// recovery dip and bench_tcp_loss's cwnd sawtooth both fall out of this one
// mechanism (DESIGN.md §15).
//
// Determinism contract: the tick runs as a *daemon* event, so an armed
// sampler never holds RunUntilIdle open and never draws from the shuffle
// RNG (see src/sim/executor.h) — enabling telemetry cannot perturb the
// schedule. Tick times, registry iteration order (std::map key order), and
// the sampled values are all functions of the simulation alone, so the same
// seed yields a byte-identical ToJson(), including across ring wraparound.
//
// Admission: a timeline starts recording at the first tick where its metric
// is "live" (nonzero delta for counters, nonzero level for gauges) and then
// records every tick — zeros included, because the dip *is* the signal. This
// keeps never-touched registry entries from bloating the export while still
// capturing the quiet half of a burst.
#ifndef SRC_OBS_SAMPLER_H_
#define SRC_OBS_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/executor.h"
#include "src/sim/time.h"

namespace kite {

struct SamplerParams {
  // Off by default: constructing a KiteSystem with an unconfigured sampler
  // costs nothing at runtime (no daemon event is ever armed).
  bool enabled = false;
  // Sampling interval; also the bin width of every derived rate series.
  SimDuration period = Millis(10);
  // Ring capacity per timeline. Older points are overwritten (and counted in
  // Timeline::dropped) once a series exceeds this many ticks.
  size_t ring_points = 1024;
  // Keep only metrics whose "domain/device/name" label starts with one of
  // these prefixes. Empty = keep everything that passes admission.
  std::vector<std::string> prefixes;
};

class MetricSampler {
 public:
  // The executor and registry must outlive the sampler. Works against any
  // executor/registry pair — a bare bench harness or a full KiteSystem.
  MetricSampler(Executor* executor, MetricRegistry* metrics, SamplerParams params);
  ~MetricSampler();

  MetricSampler(const MetricSampler&) = delete;
  MetricSampler& operator=(const MetricSampler&) = delete;

  // Takes the baseline snapshot (warm-up counts are excluded from the first
  // delta) and arms the periodic daemon tick. Idempotent while running.
  void Start();
  // Disarms the tick; recorded timelines remain readable.
  void Stop();
  bool running() const { return running_; }

  const SamplerParams& params() const { return params_; }
  // Ticks recorded since Start() (baseline not included).
  uint64_t ticks() const { return ticks_; }

  // Invoked at the start of every tick, and once before the Start() baseline
  // snapshot: lets owners refresh *derived* metrics (e.g. the CPU-attribution
  // pump setting per-category counters and utilization gauges) so the sampler
  // records current levels instead of stale ones. Runs inside the daemon tick:
  // it must be deterministic and must only read simulation state — posting
  // non-daemon events from here would perturb the schedule.
  void set_pre_tick(std::function<void()> hook) { pre_tick_ = std::move(hook); }

  // One recorded series. Points are (tick time, value) pairs, oldest first
  // (ring unwrapped); counter points are per-period deltas.
  struct Timeline {
    MetricKey key;
    MetricRegistry::Kind kind;
    uint64_t dropped = 0;  // Points lost to ring overwrite.
    std::vector<std::pair<SimTime, double>> points;
  };
  // All admitted timelines in deterministic (domain, device, name) order.
  std::vector<Timeline> Timelines() const;

  // JSON export, one timeline object per line:
  //   {"period_ns":..., "ticks":..., "timelines":[
  //     {"key":"dom/dev/name","kind":"counter","dropped":0,
  //      "points":[[t_ns,v],...]}, ...]}
  // Deterministic byte-for-byte given a deterministic run.
  std::string ToJson() const;

 private:
  struct Series {
    MetricRegistry::Kind kind = MetricRegistry::Kind::kCounter;
    double last = 0;        // Previous raw value (counter delta base).
    bool admitted = false;  // Recording started.
    uint64_t dropped = 0;
    std::vector<std::pair<int64_t, double>> ring;  // (t_ns, value).
    size_t head = 0;  // Next overwrite slot once the ring is full.
  };

  void Arm();
  void Tick();
  bool KeepLabel(const MetricKey& key) const;

  Executor* executor_;
  MetricRegistry* metrics_;
  SamplerParams params_;
  std::function<void()> pre_tick_;
  bool running_ = false;
  uint64_t ticks_ = 0;
  std::map<MetricKey, Series> series_;
  // Armed daemon ticks capture this flag; Stop()/destruction turns an
  // in-flight tick into a no-op instead of a use-after-free.
  std::shared_ptr<bool> alive_;
};

}  // namespace kite

#endif  // SRC_OBS_SAMPLER_H_
