#include "src/obs/metrics.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {

MetricRegistry::Cell* MetricRegistry::GetOrCreate(const MetricKey& key, Kind kind) {
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Cell cell;
    cell.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        cell.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        cell.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        cell.histogram = std::make_unique<Histogram>();
        break;
      case Kind::kLatency:
        cell.latency = std::make_unique<LatencyHistogram>();
        break;
    }
    it = metrics_.emplace(key, std::move(cell)).first;
  }
  KITE_CHECK(it->second.kind == kind)
      << "metric " << key.domain << "/" << key.device << "/" << key.name
      << " re-registered with a different kind";
  return &it->second;
}

Counter* MetricRegistry::counter(const std::string& domain, const std::string& device,
                                 const std::string& name) {
  return GetOrCreate({domain, device, name}, Kind::kCounter)->counter.get();
}

Gauge* MetricRegistry::gauge(const std::string& domain, const std::string& device,
                             const std::string& name) {
  return GetOrCreate({domain, device, name}, Kind::kGauge)->gauge.get();
}

Histogram* MetricRegistry::histogram(const std::string& domain, const std::string& device,
                                     const std::string& name) {
  return GetOrCreate({domain, device, name}, Kind::kHistogram)->histogram.get();
}

LatencyHistogram* MetricRegistry::latency(const std::string& domain,
                                          const std::string& device,
                                          const std::string& name) {
  return GetOrCreate({domain, device, name}, Kind::kLatency)->latency.get();
}

std::vector<MetricRegistry::Sample> MetricRegistry::Snapshot(bool skip_zero) const {
  std::vector<Sample> out;
  out.reserve(metrics_.size());
  for (const auto& [key, cell] : metrics_) {
    Sample s;
    s.key = key;
    s.kind = cell.kind;
    s.value = 0;
    s.count = 0;
    switch (cell.kind) {
      case Kind::kCounter:
        s.value = static_cast<double>(cell.counter->value());
        break;
      case Kind::kGauge:
        s.value = cell.gauge->value();
        break;
      case Kind::kHistogram:
        s.value = cell.histogram->mean();
        s.count = cell.histogram->count();
        s.min = cell.histogram->min();
        s.max = cell.histogram->max();
        break;
      case Kind::kLatency:
        s.value = cell.latency->mean();
        s.count = cell.latency->count();
        s.min = static_cast<double>(cell.latency->min());
        s.max = static_cast<double>(cell.latency->max());
        s.p50 = cell.latency->p50();
        s.p90 = cell.latency->p90();
        s.p99 = cell.latency->p99();
        s.p999 = cell.latency->p999();
        break;
    }
    if (skip_zero && s.value == 0 && s.count == 0) {
      continue;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricRegistry::FormatTable(bool skip_zero, const std::string& prefix) const {
  std::string out;
  for (const Sample& s : Snapshot(skip_zero)) {
    const std::string label = StrFormat("%s/%s/%s", s.key.domain.c_str(),
                                        s.key.device.c_str(), s.key.name.c_str());
    if (!prefix.empty() && label.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    switch (s.kind) {
      case Kind::kCounter:
        out += StrFormat("  %-52s %12llu\n", label.c_str(),
                         static_cast<unsigned long long>(s.value));
        break;
      case Kind::kGauge:
        out += StrFormat("  %-52s %12.2f\n", label.c_str(), s.value);
        break;
      case Kind::kHistogram:
        out += StrFormat("  %-52s n=%llu mean=%.2f min=%.2f max=%.2f\n", label.c_str(),
                         static_cast<unsigned long long>(s.count), s.value, s.min, s.max);
        break;
      case Kind::kLatency:
        out += StrFormat(
            "  %-52s n=%llu p50=%lluns p90=%lluns p99=%lluns p99.9=%lluns max=%lluns\n",
            label.c_str(), static_cast<unsigned long long>(s.count),
            static_cast<unsigned long long>(s.p50), static_cast<unsigned long long>(s.p90),
            static_cast<unsigned long long>(s.p99), static_cast<unsigned long long>(s.p999),
            static_cast<unsigned long long>(s.max));
        break;
    }
  }
  return out;
}

}  // namespace kite
