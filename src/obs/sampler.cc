#include "src/obs/sampler.h"

#include "src/base/strings.h"

namespace kite {
namespace {

// Shortest round-trip formatting for point values. Counter deltas and most
// gauges are integral; print those without an exponent so the JSON stays
// human-greppable ("128", not "1.28e+02").
std::string FormatValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.17g", v);
}

}  // namespace

MetricSampler::MetricSampler(Executor* executor, MetricRegistry* metrics,
                             SamplerParams params)
    : executor_(executor), metrics_(metrics), params_(std::move(params)) {}

MetricSampler::~MetricSampler() { Stop(); }

void MetricSampler::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  alive_ = std::make_shared<bool>(true);
  if (pre_tick_) {
    pre_tick_();  // Derived counters get a baseline too.
  }
  // Baseline pass: record the current counter values without emitting
  // points, so the first tick's deltas cover exactly one period and warm-up
  // traffic never leaks into the series.
  for (const auto& s : metrics_->Snapshot(/*skip_zero=*/false)) {
    if (s.kind != MetricRegistry::Kind::kCounter) {
      continue;
    }
    if (!KeepLabel(s.key)) {
      continue;
    }
    Series& ser = series_[s.key];
    ser.kind = s.kind;
    ser.last = s.value;
  }
  Arm();
}

void MetricSampler::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (alive_ != nullptr) {
    *alive_ = false;
    alive_.reset();
  }
}

void MetricSampler::Arm() {
  MetricSampler* self = this;
  executor_->PostDaemonAfter(params_.period, KITE_POST_SITE("obs/sampler-tick"),
                             [self, alive = alive_] {
                               if (!*alive) {
                                 return;
                               }
                               self->Tick();
                               self->Arm();
                             });
}

bool MetricSampler::KeepLabel(const MetricKey& key) const {
  if (params_.prefixes.empty()) {
    return true;
  }
  const std::string label = key.domain + "/" + key.device + "/" + key.name;
  for (const std::string& prefix : params_.prefixes) {
    if (label.compare(0, prefix.size(), prefix) == 0) {
      return true;
    }
  }
  return false;
}

void MetricSampler::Tick() {
  if (pre_tick_) {
    pre_tick_();
  }
  ++ticks_;
  const int64_t t_ns = executor_->Now().ns();
  for (const auto& s : metrics_->Snapshot(/*skip_zero=*/false)) {
    if (s.kind != MetricRegistry::Kind::kCounter &&
        s.kind != MetricRegistry::Kind::kGauge) {
      continue;  // Distributions don't difference into a scalar series.
    }
    if (!KeepLabel(s.key)) {
      continue;
    }
    Series& ser = series_[s.key];
    ser.kind = s.kind;
    double point;
    if (s.kind == MetricRegistry::Kind::kCounter) {
      point = s.value - ser.last;
      ser.last = s.value;
    } else {
      point = s.value;
    }
    if (!ser.admitted) {
      if (point == 0) {
        continue;  // Not live yet; no all-zero prefix.
      }
      ser.admitted = true;
    }
    if (ser.ring.size() < params_.ring_points) {
      ser.ring.emplace_back(t_ns, point);
    } else if (!ser.ring.empty()) {
      ser.ring[ser.head] = {t_ns, point};
      ser.head = (ser.head + 1) % ser.ring.size();
      ++ser.dropped;
    }
  }
}

std::vector<MetricSampler::Timeline> MetricSampler::Timelines() const {
  std::vector<Timeline> out;
  for (const auto& [key, ser] : series_) {
    if (!ser.admitted || ser.ring.empty()) {
      continue;
    }
    Timeline tl;
    tl.key = key;
    tl.kind = ser.kind;
    tl.dropped = ser.dropped;
    tl.points.reserve(ser.ring.size());
    // Unwrap the ring: head is the oldest surviving point once full.
    for (size_t i = 0; i < ser.ring.size(); ++i) {
      const auto& [t, v] = ser.ring[(ser.head + i) % ser.ring.size()];
      tl.points.emplace_back(SimTime(t), v);
    }
    out.push_back(std::move(tl));
  }
  return out;
}

std::string MetricSampler::ToJson() const {
  std::string json = StrFormat(
      "{\n  \"period_ns\": %lld,\n  \"ticks\": %llu,\n  \"timelines\": [\n",
      static_cast<long long>(params_.period.ns()),
      static_cast<unsigned long long>(ticks_));
  const std::vector<Timeline> timelines = Timelines();
  for (size_t i = 0; i < timelines.size(); ++i) {
    const Timeline& tl = timelines[i];
    json += StrFormat(
        "    {\"key\": \"%s/%s/%s\", \"kind\": \"%s\", \"dropped\": %llu, "
        "\"points\": [",
        tl.key.domain.c_str(), tl.key.device.c_str(), tl.key.name.c_str(),
        tl.kind == MetricRegistry::Kind::kCounter ? "counter" : "gauge",
        static_cast<unsigned long long>(tl.dropped));
    for (size_t j = 0; j < tl.points.size(); ++j) {
      json += StrFormat("[%lld, %s]%s", static_cast<long long>(tl.points[j].first.ns()),
                        FormatValue(tl.points[j].second).c_str(),
                        j + 1 < tl.points.size() ? ", " : "");
    }
    json += StrFormat("]}%s\n", i + 1 < timelines.size() ? "," : "");
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace kite
