#include "src/obs/health.h"

#include <utility>

#include "src/base/strings.h"

namespace kite {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kStalled:
      return "stalled";
  }
  return "?";
}

HealthMonitor::HealthMonitor(Executor* executor, MetricRegistry* metrics,
                             FlightRecorder* recorder, HealthParams params)
    : executor_(executor),
      metrics_(metrics),
      recorder_(recorder),
      params_(params),
      probes_counter_(metrics->counter("obs", "health", "probes")),
      transitions_counter_(metrics->counter("obs", "health", "transitions")),
      stalled_transitions_counter_(
          metrics->counter("obs", "health", "stalled_transitions")),
      instances_gauge_(metrics->gauge("obs", "health", "instances")),
      healthy_gauge_(metrics->gauge("obs", "health", "instances_healthy")),
      degraded_gauge_(metrics->gauge("obs", "health", "instances_degraded")),
      stalled_gauge_(metrics->gauge("obs", "health", "instances_stalled")) {}

int64_t HealthMonitor::Register(int32_t dom, const std::string& domain_name,
                                const std::string& device, int devid,
                                Sampler sampler) {
  const int64_t id = next_id_++;
  Instance& inst = instances_[id];
  inst.dom = dom;
  inst.domain_name = domain_name;
  inst.device = device;
  inst.devid = devid;
  inst.sampler = std::move(sampler);
  inst.last_progress = executor_->Now();
  inst.state_gauge = metrics_->gauge(domain_name, device, "health_state");
  inst.stall_ns_gauge = metrics_->gauge(domain_name, device, "ring_stall_ns");
  inst.backlog_gauge = metrics_->gauge(domain_name, device, "ring_backlog");
  // Baseline probe so the instance has fresh watermarks and a healthy verdict
  // from the moment it connects rather than from the next periodic tick.
  ProbeInstance(inst);
  UpdateAggregates();
  return id;
}

void HealthMonitor::Unregister(int64_t id) {
  auto it = instances_.find(id);
  if (it == instances_.end()) {
    return;
  }
  // Zero the gauges so a reaped instance does not leave a stale verdict in
  // the metric table (skip_zero then hides the rows entirely).
  it->second.state_gauge->Set(0);
  it->second.stall_ns_gauge->Set(0);
  it->second.backlog_gauge->Set(0);
  instances_.erase(it);
  UpdateAggregates();
}

void HealthMonitor::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  executor_->PostDaemonAfter(params_.probe_period, KITE_POST_SITE("health/probe"),
                             [this] { Tick(); });
}

void HealthMonitor::Tick() {
  Probe();
  executor_->PostDaemonAfter(params_.probe_period, KITE_POST_SITE("health/probe"),
                             [this] { Tick(); });
}

void HealthMonitor::ProbeNow() { Probe(); }

void HealthMonitor::Probe() {
  ++probes_run_;
  probes_counter_->Inc();
  for (auto& [id, inst] : instances_) {
    ProbeInstance(inst);
  }
  UpdateAggregates();
}

void HealthMonitor::ProbeInstance(Instance& inst) {
  const HealthSample s = inst.sampler();
  const SimTime now = executor_->Now();
  // Progress == the backend consumed a request or produced a response since
  // the last probe. An idle instance (no pending work) is trivially healthy;
  // the stall clock only runs while there is work the backend is not doing.
  const bool progressed = !inst.have_baseline || s.req_cons != inst.last_cons ||
                          s.rsp_prod != inst.last_rsp;
  const uint32_t pending = s.req_prod - s.req_cons;
  const bool busy = s.connected && (pending != 0 || s.queue_depth > 0);
  if (progressed || !busy) {
    inst.last_progress = now;
  }
  inst.have_baseline = true;
  inst.last_cons = s.req_cons;
  inst.last_rsp = s.rsp_prod;
  inst.last = s;
  inst.backlog = pending + static_cast<uint32_t>(s.queue_depth > 0 ? s.queue_depth : 0);
  inst.stall_age = now - inst.last_progress;

  HealthState next = HealthState::kHealthy;
  if (inst.stall_age >= params_.stalled_after) {
    next = HealthState::kStalled;
  } else if (inst.stall_age >= params_.degraded_after) {
    next = HealthState::kDegraded;
  }

  inst.state_gauge->Set(static_cast<double>(static_cast<int>(next)));
  inst.stall_ns_gauge->Set(static_cast<double>(inst.stall_age.ns()));
  inst.backlog_gauge->Set(static_cast<double>(inst.backlog));

  if (next != inst.state) {
    transitions_counter_->Inc();
    if (next == HealthState::kStalled) {
      stalled_transitions_counter_->Inc();
    }
    if (recorder_ != nullptr) {
      recorder_->Record(inst.dom, FlightKind::kHealthTransition, inst.devid,
                        static_cast<uint64_t>(static_cast<int>(inst.state)),
                        static_cast<uint64_t>(static_cast<int>(next)));
    }
    const HealthState old = inst.state;
    inst.state = next;
    if (publisher_) {
      publisher_(inst.dom, inst.device, next);
    }
    if (!subscribers_.empty()) {
      // Snapshot so an Unsubscribe posted (not executed) by a callback can
      // never invalidate the iteration; ids keep dispatch order stable.
      std::vector<const Subscriber*> order;
      order.reserve(subscribers_.size());
      for (const auto& [id, fn] : subscribers_) {
        order.push_back(&fn);
      }
      for (const Subscriber* fn : order) {
        (*fn)(inst.dom, inst.device, old, next);
      }
    }
  }
}

int64_t HealthMonitor::Subscribe(Subscriber subscriber) {
  const int64_t id = next_subscriber_id_++;
  subscribers_[id] = std::move(subscriber);
  return id;
}

void HealthMonitor::Unsubscribe(int64_t id) { subscribers_.erase(id); }

void HealthMonitor::UpdateAggregates() {
  int healthy = 0;
  int degraded = 0;
  int stalled = 0;
  for (const auto& [id, inst] : instances_) {
    switch (inst.state) {
      case HealthState::kHealthy:
        ++healthy;
        break;
      case HealthState::kDegraded:
        ++degraded;
        break;
      case HealthState::kStalled:
        ++stalled;
        break;
    }
  }
  instances_gauge_->Set(static_cast<double>(instances_.size()));
  healthy_gauge_->Set(healthy);
  degraded_gauge_->Set(degraded);
  stalled_gauge_->Set(stalled);
}

HealthState HealthMonitor::state(int32_t dom, const std::string& device) const {
  for (const auto& [id, inst] : instances_) {
    if (inst.dom == dom && inst.device == device) {
      return inst.state;
    }
  }
  return HealthState::kHealthy;
}

std::vector<HealthMonitor::InstanceInfo> HealthMonitor::Instances() const {
  std::vector<InstanceInfo> out;
  out.reserve(instances_.size());
  for (const auto& [id, inst] : instances_) {
    InstanceInfo info;
    info.dom = inst.dom;
    info.domain_name = inst.domain_name;
    info.device = inst.device;
    info.state = inst.state;
    info.stall_age = inst.stall_age;
    info.backlog = inst.backlog;
    info.last = inst.last;
    out.push_back(std::move(info));
  }
  return out;
}

std::string HealthMonitor::FormatTable() const {
  std::string out = StrFormat(
      "  %zu instance(s), %llu probe(s), period=%.3fms degraded>=%.3fms "
      "stalled>=%.3fms\n",
      instances_.size(), static_cast<unsigned long long>(probes_run_),
      params_.probe_period.ms(), params_.degraded_after.ms(),
      params_.stalled_after.ms());
  for (const auto& [id, inst] : instances_) {
    out += StrFormat(
        "  %-32s %-8s stall=%.6fs backlog=%u ring req_prod=%u req_cons=%u "
        "rsp_prod=%u%s\n",
        StrFormat("%s/%s", inst.domain_name.c_str(), inst.device.c_str()).c_str(),
        HealthStateName(inst.state), inst.stall_age.seconds(), inst.backlog,
        inst.last.req_prod, inst.last.req_cons, inst.last.rsp_prod,
        inst.last.connected ? "" : " (disconnected)");
  }
  return out;
}

}  // namespace kite
