// Observability: a zero-dependency metric registry.
//
// Every counter in the simulator used to be an ad-hoc `uint64_t` member with
// a bespoke accessor; bugs like "failed RX copies still counted as
// delivered" were invisible because nothing exported the numbers uniformly.
// The registry gives each metric a stable (domain, device, name) key and a
// stable-address handle (`Counter*`, `Gauge*`, `Histogram*`) so hot paths
// pay exactly one pointer-chase per update — the same cost as the old
// member increments.
//
// Conventions (DESIGN.md §8):
//   domain  — who owns the number ("hv", "fault", or a domain name such as
//             "kite-netdom" / "ubuntu-guest0").
//   device  — the device or subsystem within the owner ("vif1.0", "xvda",
//             "grant", "evtchn", or "-" when there is no finer grain).
//   name    — snake_case metric name ("guest_tx_frames", "tx_bad_request").
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/latency.h"

namespace kite {

// Monotonic event count. `Set` exists only for counter migration shims
// (FaultInjector::ResetCounters); new code should stick to Inc/Add.
class Counter {
 public:
  void Inc() { ++value_; }
  void Add(uint64_t n) { value_ += n; }
  void Set(uint64_t n) { value_ = n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Point-in-time level (queue depth, instance count).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Streaming summary: count / sum / min / max. Enough for batch sizes and
// request sizes without bucketing policy; full distributions belong in the
// tracer.
class Histogram {
 public:
  void Record(double v) {
    if (count_ == 0 || v < min_) {
      min_ = v;
    }
    if (count_ == 0 || v > max_) {
      max_ = v;
    }
    ++count_;
    sum_ += v;
  }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

struct MetricKey {
  std::string domain;
  std::string device;
  std::string name;

  auto operator<=>(const MetricKey&) const = default;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Get-or-create: the same key always returns the same handle, and handles
  // stay valid for the registry's lifetime. A key may not change kind
  // (counter vs gauge vs histogram); doing so aborts.
  Counter* counter(const std::string& domain, const std::string& device,
                   const std::string& name);
  Gauge* gauge(const std::string& domain, const std::string& device,
               const std::string& name);
  Histogram* histogram(const std::string& domain, const std::string& device,
                       const std::string& name);
  // Log-bucketed nanosecond distribution with percentile extraction; by
  // convention the metric name ends in `_ns`.
  LatencyHistogram* latency(const std::string& domain, const std::string& device,
                            const std::string& name);

  enum class Kind { kCounter, kGauge, kHistogram, kLatency };

  struct Sample {
    MetricKey key;
    Kind kind;
    double value;     // Counter/gauge value; histogram/latency mean.
    uint64_t count;   // Histogram/latency observation count; 0 otherwise.
    double min = 0;   // Histogram/latency only.
    double max = 0;   // Histogram/latency only.
    uint64_t p50 = 0;   // Latency only (ns).
    uint64_t p90 = 0;   // Latency only (ns).
    uint64_t p99 = 0;   // Latency only (ns).
    uint64_t p999 = 0;  // Latency only (ns).
  };

  // All metrics in deterministic (domain, device, name) order. With
  // `skip_zero`, never-touched counters/gauges and empty histograms are
  // omitted.
  std::vector<Sample> Snapshot(bool skip_zero = false) const;

  // Human-readable table of Snapshot(skip_zero) for bench/test output.
  // A non-empty `prefix` keeps only rows whose "domain/device/name" label
  // starts with it (e.g. "obs/health" for the watchdog aggregates), so
  // focused snapshots don't print the full registry.
  std::string FormatTable(bool skip_zero = true, const std::string& prefix = "") const;

  size_t size() const { return metrics_.size(); }

 private:
  struct Cell {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<LatencyHistogram> latency;
  };

  Cell* GetOrCreate(const MetricKey& key, Kind kind);

  std::map<MetricKey, Cell> metrics_;
};

}  // namespace kite

#endif  // SRC_OBS_METRICS_H_
