// Umbrella header for the Kite reproduction library.
//
// Typical usage:
//
//   #include "src/core/kite.h"
//
//   kite::KiteSystem sys;
//   auto* netdom = sys.CreateNetworkDomain();           // Kite personality
//   auto* guest = sys.CreateGuest("web-server");
//   sys.AttachVif(guest, netdom, kite::Ipv4Addr::FromOctets(10, 0, 0, 10));
//   sys.WaitConnected(guest);
//   guest->stack()->Ping(sys.client_ip(), 56, [](bool ok, kite::SimDuration rtt) { ... });
//   sys.RunUntilIdle();
#ifndef SRC_CORE_KITE_H_
#define SRC_CORE_KITE_H_

#include "src/base/log.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/core/blkapp.h"
#include "src/core/migrate.h"
#include "src/core/netapp.h"
#include "src/core/pool.h"
#include "src/core/rebalancer.h"
#include "src/core/system.h"
#include "src/net/tcp.h"
#include "src/os/profile.h"

#endif  // SRC_CORE_KITE_H_
