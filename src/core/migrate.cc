#include "src/core/migrate.h"

#include <string>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/system.h"

namespace kite {

namespace {

constexpr int kMaxHops = 8;

SimDuration PollInterval() { return Micros(100); }
SimDuration DrainTimeout() { return Seconds(2); }
SimDuration ConnectTimeout() { return Seconds(2); }

}  // namespace

MigrationEngine::MigrationEngine(KiteSystem* sys) : sys_(sys) {
  MetricRegistry& reg = sys_->metric_registry();
  started_ = reg.counter("core", "migrate", "started");
  completed_ = reg.counter("core", "migrate", "completed");
  failed_ = reg.counter("core", "migrate", "failed");
  hops_ = reg.counter("core", "migrate", "hops");
}

MigrationEngine::~MigrationEngine() { *alive_ = false; }

void MigrationEngine::MigrateVif(DomId guest, DomId to, Mode mode, Done done) {
  Enqueue(guest, /*vif=*/true, to, mode, std::move(done));
}

void MigrationEngine::MigrateVbd(DomId guest, DomId to, Mode mode, Done done) {
  Enqueue(guest, /*vif=*/false, to, mode, std::move(done));
}

int MigrationEngine::in_flight() const {
  int n = 0;
  for (const auto& [key, q] : queues_) {
    n += static_cast<int>(q.size());
  }
  return n;
}

void MigrationEngine::Enqueue(DomId guest, bool vif, DomId to, Mode mode, Done done) {
  const Key key{guest, vif};
  Move m;
  m.gid = guest;
  m.vif = vif;
  m.to = to;
  m.mode = mode;
  m.done = std::move(done);
  std::deque<Move>& q = queues_[key];
  q.push_back(std::move(m));
  if (q.size() == 1) {
    // Idle device: start immediately (a forced relink from a restart then
    // happens synchronously, matching the pre-engine restart semantics).
    StartFront(key);
  }
}

void MigrationEngine::StartFront(const Key& key) {
  auto qit = queues_.find(key);
  if (qit == queues_.end() || qit->second.empty()) {
    return;
  }
  Move& m = qit->second.front();
  started_->Inc();
  switch (Begin(&m)) {
    case StartResult::kFail:
      Finish(key, false);
      return;
    case StartResult::kDone:
      Finish(key, true);
      return;
    case StartResult::kPolling:
      SchedulePoll(key);
      return;
  }
}

MigrationEngine::StartResult MigrationEngine::Begin(Move* m) {
  GuestVm* guest = sys_->FindGuest(m->gid);
  if (guest == nullptr) {
    return StartResult::kFail;
  }
  const char* kind = m->vif ? "vif" : "vbd";
  bool connected = false;
  DomId fe_backend = 0;
  if (m->vif) {
    if (guest->netfront() == nullptr) {
      return StartResult::kFail;
    }
    m->devid = guest->netfront()->devid();
    connected = guest->netfront()->connected();
    fe_backend = guest->netfront()->backend_dom();
  } else {
    if (guest->blkfront() == nullptr) {
      return StartResult::kFail;
    }
    m->devid = guest->blkfront()->devid();
    connected = guest->blkfront()->connected();
    fe_backend = guest->blkfront()->backend_dom();
  }
  XenStore& store = sys_->hv().store();
  const std::string fe = FrontendPath(m->gid, kind, m->devid);
  // The toolstack's own record is the source of truth for where the device
  // is linked; the frontend's view lags it by a posted watch.
  auto cur = store.ReadInt(kDom0, fe + "/backend-id");
  m->from = cur.has_value() ? static_cast<DomId>(*cur) : fe_backend;
  sys_->recorder().Record(m->gid, FlightKind::kMigrateStart, m->devid,
                          static_cast<uint64_t>(m->from),
                          static_cast<uint64_t>(m->to));
  const SimTime now = sys_->executor().Now();
  if (m->from == m->to && connected && fe_backend == m->to) {
    return StartResult::kDone;  // Already where it should be.
  }
  // The mode documents the caller's intent (restart vs live move), but what
  // actually decides drain-vs-relink is the *current* state of the source: a
  // forced move that waited in the queue may start after the device settled
  // on a live backend (the restart's relink raced a concurrent move), and
  // relinking away from a live, mapped backend would strand its grant
  // mappings. Only a source whose node is gone is safe to relink outright.
  const std::string be = BackendPath(m->from, kind, m->gid, m->devid);
  if (!store.Exists(be + "/frontend-id")) {
    // Old backend node already gone (dead domain or already retired): no
    // live mappings to wait out.
    if (!Relink(m)) {
      return StartResult::kFail;
    }
    m->step = Step::kConnect;
    m->deadline = now + ConnectTimeout();
    return StartResult::kPolling;
  }
  // Graceful drain: mark the node offline; the backend driver's root watch
  // picks it up, drains the instance, and retires the node.
  store.WriteInt(kDom0, be + "/online", 0);
  m->step = Step::kDrain;
  m->deadline = now + DrainTimeout();
  return StartResult::kPolling;
}

bool MigrationEngine::Relink(Move* m) {
  GuestVm* guest = sys_->FindGuest(m->gid);
  if (guest == nullptr) {
    return false;
  }
  if (m->vif) {
    NetworkDomain* nd = sys_->FindNetworkDomain(m->to);
    if (nd == nullptr) {
      return false;  // Target vanished (destroyed mid-queue).
    }
    sys_->RelinkVif(guest, nd);
  } else {
    StorageDomain* sd = sys_->FindStorageDomain(m->to);
    if (sd == nullptr) {
      return false;
    }
    sys_->RelinkVbd(guest, sd);
  }
  return true;
}

void MigrationEngine::SchedulePoll(const Key& key) {
  sys_->executor().PostAfter(PollInterval(), KITE_POST_SITE("migrate/poll"),
                             [this, key, alive = alive_] {
    if (*alive) {
      Poll(key);
    }
  });
}

void MigrationEngine::Poll(const Key& key) {
  auto qit = queues_.find(key);
  if (qit == queues_.end() || qit->second.empty()) {
    return;
  }
  Move& m = qit->second.front();
  GuestVm* guest = sys_->FindGuest(m.gid);
  if (guest == nullptr ||
      (m.vif ? guest->netfront() == nullptr : guest->blkfront() == nullptr)) {
    Finish(key, false);  // Device destroyed mid-move.
    return;
  }
  const char* kind = m.vif ? "vif" : "vbd";
  const bool connected =
      m.vif ? guest->netfront()->connected() : guest->blkfront()->connected();
  const DomId fe_backend =
      m.vif ? guest->netfront()->backend_dom() : guest->blkfront()->backend_dom();
  XenStore& store = sys_->hv().store();
  const std::string fe = FrontendPath(m.gid, kind, m.devid);
  auto cur_opt = store.ReadInt(kDom0, fe + "/backend-id");
  const DomId cur = cur_opt.has_value() ? static_cast<DomId>(*cur_opt) : m.from;
  const SimTime now = sys_->executor().Now();

  switch (m.step) {
    case Step::kDrain: {
      if (cur != m.from) {
        // The toolstack link was rewritten under us (a concurrent restart
        // beat this move). Wait for the frontend to settle on the new
        // backend, then drain from there — relinking away from a live,
        // mapped backend would strand its grant mappings.
        if (connected && fe_backend == cur) {
          if (++m.hops > kMaxHops) {
            Finish(key, false);
            return;
          }
          hops_->Inc();
          m.from = cur;
          const std::string be = BackendPath(m.from, kind, m.gid, m.devid);
          if (store.Exists(be + "/frontend-id")) {
            store.WriteInt(kDom0, be + "/online", 0);
          }
          m.deadline = now + DrainTimeout();
        } else if (now > m.deadline) {
          Finish(key, false);
          return;
        }
        SchedulePoll(key);
        return;
      }
      const std::string be = BackendPath(m.from, kind, m.gid, m.devid);
      if (!store.Exists(be + "/frontend-id")) {
        // Drained and retired (or the domain died): no backend holds our
        // grants any more — safe to relink.
        if (!Relink(&m)) {
          Finish(key, false);
          return;
        }
        m.step = Step::kConnect;
        m.deadline = now + ConnectTimeout();
        SchedulePoll(key);
        return;
      }
      if (now > m.deadline) {
        // Drain wedged (e.g. the backend is stalled on a hung device): the
        // caller escalates to a forced restart. The node stays offline.
        KITE_LOG(Warning) << StrFormat("migrate: %s%d.%d drain from dom%d timed out",
                                       kind, m.gid, m.devid, m.from);
        Finish(key, false);
        return;
      }
      SchedulePoll(key);
      return;
    }
    case Step::kConnect: {
      if (cur != m.to) {
        // Relinked again under us (the target was itself restarted): adopt
        // wherever the toolstack now points and wait for that connection.
        if (++m.hops > kMaxHops) {
          Finish(key, false);
          return;
        }
        hops_->Inc();
        m.to = cur;
        m.deadline = now + ConnectTimeout();
      }
      if (connected && fe_backend == m.to) {
        Finish(key, true);
        return;
      }
      if (now > m.deadline) {
        KITE_LOG(Warning) << StrFormat(
            "migrate: %s%d.%d never reconnected to dom%d", kind, m.gid, m.devid, m.to);
        Finish(key, false);
        return;
      }
      SchedulePoll(key);
      return;
    }
  }
}

void MigrationEngine::Finish(const Key& key, bool ok) {
  auto qit = queues_.find(key);
  if (qit == queues_.end() || qit->second.empty()) {
    return;
  }
  Move m = std::move(qit->second.front());
  qit->second.pop_front();
  (ok ? completed_ : failed_)->Inc();
  sys_->recorder().Record(m.gid, FlightKind::kMigrateDone, m.devid,
                          static_cast<uint64_t>(m.to), ok ? 1 : 0);
  if (qit->second.empty()) {
    queues_.erase(qit);
  } else {
    StartFront(key);
  }
  if (m.done) {
    m.done(ok);
  }
}

}  // namespace kite
