// The network driver domain's configuration application (paper §4.3) and the
// ported ifconfig(8)/brconfig(8) utilities (paper Table 1 "Utilities").
//
// In Linux driver domains this work is done by shell scripts spawned by the
// xl devd daemon; Kite replaces them with one single-process application that
// creates the bridge, assigns the gateway IP to the physical interface, and
// adds each new netback VIF to the bridge as guests connect — yielding the
// CPU explicitly between operations.
#ifndef SRC_CORE_NETAPP_H_
#define SRC_CORE_NETAPP_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/bmk/sched.h"
#include "src/net/bridge.h"
#include "src/netdrv/netback.h"

namespace kite {

// Ported ifconfig(8): interface address assignment and link state.
class IfConfig {
 public:
  explicit IfConfig(BmkSched* sched);

  void AssignIp(NetIf* netif, Ipv4Addr ip);
  void SetUp(NetIf* netif);

  struct Assignment {
    std::string ifname;
    Ipv4Addr ip;
  };
  const std::vector<Assignment>& assignments() const { return assignments_; }

 private:
  BmkSched* sched_;
  std::vector<Assignment> assignments_;
};

// Ported brconfig(8): bridge creation and port membership.
class BrConfig {
 public:
  explicit BrConfig(BmkSched* sched);

  std::unique_ptr<Bridge> CreateBridge(const std::string& name);
  void AddIf(Bridge* bridge, NetIf* netif);

  int adds() const { return adds_; }

 private:
  BmkSched* sched_;
  int adds_ = 0;
};

// The unified network application.
class NetworkApp {
 public:
  NetworkApp(BmkSched* sched, NetworkBackendDriver* driver, NetIf* physical_if,
             Ipv4Addr gateway_ip);

  Bridge* bridge() const { return bridge_.get(); }
  int vifs_added() const { return vifs_added_; }

 private:
  Task MainLoop();

  BmkSched* sched_;
  NetworkBackendDriver* driver_;
  IfConfig ifconfig_;
  BrConfig brconfig_;
  std::unique_ptr<Bridge> bridge_;
  WakeFlag vif_wake_;
  std::deque<NetbackInstance*> pending_vifs_;
  int vifs_added_ = 0;
};

}  // namespace kite

#endif  // SRC_CORE_NETAPP_H_
