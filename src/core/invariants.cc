#include "src/core/invariants.h"

#include <map>

#include "src/base/strings.h"

namespace kite {

std::vector<Violation> InvariantChecker::Check() {
  violations_.clear();
  if (!sys_->executor().idle()) {
    // Every ledger below is only exact at quiesce; auditing a running system
    // would report in-flight work as leaks.
    Fail("not-quiesced", sys_->executor().FormatPendingEvents());
    return std::move(violations_);
  }
  CheckGrantLedger();
  CheckEventLedger();
  CheckBoundPorts();
  CheckXenstoreDomains();
  CheckGraveyards();
  CheckNetInstances();
  CheckBlkInstances();
  CheckDiskLedger();
  CheckTcpLedger();
  CheckInstanceHealth();
  CheckMigrationsQuiesced();
  return std::move(violations_);
}

std::string InvariantChecker::Format(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) {
    out += StrFormat("  invariant %s: %s\n", v.invariant.c_str(), v.detail.c_str());
  }
  return out;
}

void InvariantChecker::Fail(const char* invariant, std::string detail) {
  violations_.push_back(Violation{invariant, std::move(detail)});
}

void InvariantChecker::CheckGrantLedger() {
  // Every GrantMap hypercall ever issued is accounted exactly once: it
  // failed, was unmapped gracefully, was force-revoked at a domain death, or
  // is still outstanding in a live table (e.g. blkback's persistent cache).
  Hypervisor& hv = sys_->hv();
  uint64_t outstanding = 0;
  for (DomId id : hv.live_domains()) {
    outstanding +=
        static_cast<uint64_t>(hv.domain(id)->grant_table().total_maps_outstanding());
  }
  const uint64_t maps = hv.grant_maps();
  const uint64_t accounted =
      hv.grant_map_fails() + hv.grant_unmaps() + hv.forced_grant_revocations() + outstanding;
  if (maps != accounted) {
    Fail("grant-ledger",
         StrFormat("maps=%llu != fails=%llu + unmaps=%llu + forced=%llu + "
                   "outstanding=%llu (= %llu)",
                   static_cast<unsigned long long>(maps),
                   static_cast<unsigned long long>(hv.grant_map_fails()),
                   static_cast<unsigned long long>(hv.grant_unmaps()),
                   static_cast<unsigned long long>(hv.forced_grant_revocations()),
                   static_cast<unsigned long long>(outstanding),
                   static_cast<unsigned long long>(accounted)));
  }
}

void InvariantChecker::CheckEventLedger() {
  // Every accepted send is delivered exactly once — unless it was dropped by
  // fault injection, coalesced into an already-pending interrupt, or its
  // port/domain vanished in flight. PCI IRQs are delivered without a
  // matching send, hence the additive term.
  Hypervisor& hv = sys_->hv();
  const uint64_t expected = hv.events_sent() - hv.events_dropped() -
                            hv.events_coalesced() - hv.events_vanished() +
                            hv.pci_irqs_delivered();
  if (hv.events_delivered() != expected) {
    Fail("event-ledger",
         StrFormat("delivered=%llu != sent=%llu - dropped=%llu - coalesced=%llu "
                   "- vanished=%llu + pci_irq=%llu (= %llu)",
                   static_cast<unsigned long long>(hv.events_delivered()),
                   static_cast<unsigned long long>(hv.events_sent()),
                   static_cast<unsigned long long>(hv.events_dropped()),
                   static_cast<unsigned long long>(hv.events_coalesced()),
                   static_cast<unsigned long long>(hv.events_vanished()),
                   static_cast<unsigned long long>(hv.pci_irqs_delivered()),
                   static_cast<unsigned long long>(expected)));
  }
}

void InvariantChecker::CheckBoundPorts() {
  // DestroyDomain unlinks every peer end (EventClose); a bound port whose
  // peer domain is dead means that cleanup was skipped somewhere.
  Hypervisor& hv = sys_->hv();
  for (DomId id : hv.live_domains()) {
    for (const auto& [port, peer] : hv.BoundPorts(id)) {
      if (hv.domain(peer) == nullptr) {
        Fail("dead-peer-port",
             StrFormat("domain %d (%s) port %u is still bound to destroyed domain %d",
                       id, hv.domain(id)->name().c_str(), port, peer));
      }
    }
  }
}

void InvariantChecker::CheckXenstoreDomains() {
  // DestroyDomain removes /local/domain/<id>; an orphaned subtree would keep
  // firing watches and leak paths forever.
  Hypervisor& hv = sys_->hv();
  auto children = hv.store().List(kDom0, "/local/domain");
  if (!children.has_value()) {
    return;  // No domain dirs at all (bare system) — nothing to orphan.
  }
  for (const std::string& child : *children) {
    const int64_t id = ParseDecimal(child);
    if (id < 0 || hv.domain(static_cast<DomId>(id)) == nullptr) {
      Fail("xenstore-orphan",
           StrFormat("/local/domain/%s exists but no such live domain", child.c_str()));
    }
  }
}

void InvariantChecker::CheckGraveyards() {
  // At quiesce every reaped instance's worker threads must have exited and
  // the instance been freed; a populated graveyard is a parked-coroutine
  // leak.
  for (const auto& nd : sys_->network_domains()) {
    if (nd->driver() != nullptr && nd->driver()->dying_instance_count() != 0) {
      Fail("netback-graveyard",
           StrFormat("%s: %d reaped vif instance(s) never drained",
                     nd->domain()->name().c_str(), nd->driver()->dying_instance_count()));
    }
  }
  for (const auto& sd : sys_->storage_domains()) {
    if (sd->driver() != nullptr && sd->driver()->dying_instance_count() != 0) {
      Fail("blkback-graveyard",
           StrFormat("%s: %d reaped vbd instance(s) never drained",
                     sd->domain()->name().c_str(), sd->driver()->dying_instance_count()));
    }
  }
}

void InvariantChecker::CheckNetInstances() {
  for (const auto& nd : sys_->network_domains()) {
    if (nd->driver() == nullptr) {
      continue;
    }
    for (NetbackInstance* vif : nd->driver()->live_instances()) {
      std::string detail;
      if (!vif->RingsQuiescent(&detail)) {
        Fail("net-ring-quiescence", std::move(detail));
      }
      detail.clear();
      if (!vif->TxConservationHolds(&detail)) {
        Fail("net-tx-conservation", std::move(detail));
      }
    }
  }
}

void InvariantChecker::CheckBlkInstances() {
  for (const auto& sd : sys_->storage_domains()) {
    if (sd->driver() == nullptr) {
      continue;
    }
    for (BlkbackInstance* vbd : sd->driver()->live_instances()) {
      std::string detail;
      if (!vbd->RingQuiescent(&detail)) {
        Fail("blk-ring-quiescence", std::move(detail));
      }
    }
  }
}

void InvariantChecker::CheckDiskLedger() {
  // Every device op any blkback instance ever submitted completed on some
  // disk, as a success or an accounted I/O error. Registry device_ops
  // counters survive instance and driver-domain lifetimes, and disks are
  // handed over (never destroyed) across restarts, so both sides of the
  // ledger are cumulative.
  uint64_t submitted = 0;
  for (const auto& s : sys_->metrics()) {
    if (s.key.name == "device_ops") {
      submitted += static_cast<uint64_t>(s.value);
    }
  }
  uint64_t completed = 0;
  for (const auto& sd : sys_->storage_domains()) {
    BlockDevice* disk = sd->disk();
    if (disk == nullptr) {
      continue;
    }
    completed += disk->reads_completed() + disk->writes_completed() +
                 disk->flushes_completed() + disk->io_errors();
  }
  if (submitted != completed) {
    Fail("disk-ledger", StrFormat("device_ops submitted=%llu != completed=%llu",
                                  static_cast<unsigned long long>(submitted),
                                  static_cast<unsigned long long>(completed)));
  }
}

void InvariantChecker::CheckTcpLedger() {
  // Per-flow conservation over live endpoint stacks (ledgers survive conn
  // teardown but die with their stack, so only live pairs are cross-checked).
  std::vector<EtherStack*> stacks;
  if (sys_->client() != nullptr && sys_->client()->stack() != nullptr) {
    stacks.push_back(sys_->client()->stack());
  }
  for (const auto& guest : sys_->guests()) {
    if (guest->stack() != nullptr) {
      stacks.push_back(guest->stack());
    }
  }
  std::map<uint32_t, EtherStack*> by_ip;
  for (EtherStack* stack : stacks) {
    by_ip[stack->ip().value] = stack;
  }
  for (EtherStack* stack : stacks) {
    for (const auto& [key, ledger] : stack->tcp_ledgers()) {
      const std::string flow =
          StrFormat("%s:%u<->%s:%u", stack->ip().ToString().c_str(),
                    static_cast<unsigned>(key.local_port),
                    Ipv4Addr{key.peer_ip}.ToString().c_str(),
                    static_cast<unsigned>(key.peer_port));
      if (ledger.acked_in > ledger.payload_sent) {
        Fail("tcp-ledger",
             StrFormat("%s: bytes acked (%llu) exceed bytes sent (%llu)",
                       flow.c_str(),
                       static_cast<unsigned long long>(ledger.acked_in),
                       static_cast<unsigned long long>(ledger.payload_sent)));
      }
      auto peer_it = by_ip.find(key.peer_ip);
      if (peer_it == by_ip.end()) {
        continue;  // Peer stack gone (guest death): nothing to cross-check.
      }
      const auto& peer_ledgers = peer_it->second->tcp_ledgers();
      auto peer_ledger_it = peer_ledgers.find(EtherStack::TcpFlowKey{
          stack->ip().value, key.local_port, key.peer_port});
      if (peer_ledger_it == peer_ledgers.end()) {
        if (ledger.acked_in > 0) {
          Fail("tcp-ledger",
               StrFormat("%s: %llu bytes acked but peer has no flow record",
                         flow.c_str(),
                         static_cast<unsigned long long>(ledger.acked_in)));
        }
        continue;
      }
      // No acked byte lost: everything the sender saw acknowledged was
      // delivered in order on the receive side.
      if (ledger.acked_in > peer_ledger_it->second.delivered) {
        Fail("tcp-ledger",
             StrFormat("%s: %llu bytes acked but peer delivered only %llu",
                       flow.c_str(),
                       static_cast<unsigned long long>(ledger.acked_in),
                       static_cast<unsigned long long>(
                           peer_ledger_it->second.delivered)));
      }
    }
  }
}

void InvariantChecker::CheckInstanceHealth() {
  // Re-probe instead of trusting the last periodic tick: the verdicts must
  // reflect the quiesced rings, not the state mid-drain one probe ago.
  HealthMonitor& hm = sys_->health();
  hm.ProbeNow();
  for (const HealthMonitor::InstanceInfo& info : hm.Instances()) {
    if (info.state != HealthState::kHealthy) {
      Fail("instance-health",
           StrFormat("%s/%s is %s at quiesce (stall age %.3f ms, backlog %u)",
                     info.domain_name.c_str(), info.device.c_str(),
                     HealthStateName(info.state), info.stall_age.ms(),
                     static_cast<unsigned>(info.backlog)));
    }
  }
}

void InvariantChecker::CheckMigrationsQuiesced() {
  // Every move is time-bounded (drain and connect deadlines), so an idle
  // executor with a non-empty migration queue means the engine lost a poll —
  // the move would never settle no matter how long the simulation ran.
  const int in_flight = sys_->migrations_in_flight();
  if (in_flight != 0) {
    Fail("migrations-quiesced",
         StrFormat("%d VIF/VBD migration(s) still in flight at quiesce", in_flight));
  }
}

}  // namespace kite
