// MigrationEngine: moves a guest's VIF or VBD from one driver domain to
// another without losing anything the guest was told succeeded.
//
// A migration is an asynchronous toolstack state machine driven by executor
// polls (it must make progress *inside* the simulation — no nested event
// loops):
//
//   1. Drain   — write `online = 0` under the old backend's device node. The
//                backend driver stops consuming new ring work, completes
//                everything already accepted, releases its ring mappings and
//                persistent grants, and removes the node (graceful retire).
//                Unconsumed requests are unacknowledged by definition; the
//                frontend's relink path retransmits/requeues them.
//   2. Relink  — once the old node is gone (so no live backend holds grant
//                mappings), rewrite the toolstack keys toward the target
//                domain. The frontend's relink watch tears down its old ring
//                state and republishes to the new backend.
//   3. Connect — poll until the frontend reports connected to the target.
//
// In a forced move (driver-domain restart/evacuation) the old backend domain
// is normally already destroyed — its node is gone, its grant mappings were
// force-revoked — so step 1 degenerates to nothing and the move goes straight
// to relink.
//
// Per-device moves are serialized through a queue: a second migrate (or a
// restart's forced relink) issued while one is in flight waits its turn, so
// the frontend is never relinked away from a live, mapped backend — the
// double-relink would strand that backend's grant mappings forever. If the
// toolstack link changes under a move anyway (a concurrent restart won the
// race), the move adopts the new link and re-drains from there, bounded by
// a hop cap.
#ifndef SRC_CORE_MIGRATE_H_
#define SRC_CORE_MIGRATE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "src/hv/grant_table.h"
#include "src/obs/metrics.h"
#include "src/sim/executor.h"

namespace kite {

class KiteSystem;

class MigrationEngine {
 public:
  enum class Mode {
    kGraceful,  // Live move: the caller expects the source to drain.
    kForced,    // Restart/evacuation: the caller believes the source is dead.
  };
  // The mode records intent only. Safety is decided from the source's actual
  // state when the (possibly queued) move starts: a source whose backend node
  // still exists is always drained first, because relinking away from a live,
  // mapped backend would strand its grant mappings.
  using Done = std::function<void(bool ok)>;

  explicit MigrationEngine(KiteSystem* sys);
  ~MigrationEngine();

  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;

  // Queues a move of the guest's VIF/VBD onto driver domain `to`. The source
  // is re-resolved from the toolstack's own record (xenstore backend-id) when
  // the move starts, so queued moves compose with restarts. `done` (optional)
  // fires with the outcome once the device settles.
  void MigrateVif(DomId guest, DomId to, Mode mode, Done done = {});
  void MigrateVbd(DomId guest, DomId to, Mode mode, Done done = {});

  // Active plus queued moves; 0 once every migration settled (the invariant
  // checker asserts this at quiesce).
  int in_flight() const;

  uint64_t started() const { return started_->value(); }
  uint64_t completed() const { return completed_->value(); }
  uint64_t failed() const { return failed_->value(); }
  // Times a move adopted a toolstack link rewritten under it (migrate racing
  // restart); bounded per move by the hop cap.
  uint64_t hops() const { return hops_->value(); }

 private:
  enum class Step {
    kDrain,    // Waiting for the old backend node to retire.
    kConnect,  // Relinked; waiting for the frontend to reconnect.
  };
  // One device of each kind per guest, so (guest, kind) identifies a device.
  using Key = std::pair<DomId, bool>;  // (guest dom, is_vif)
  struct Move {
    DomId gid = 0;
    bool vif = true;
    DomId to = 0;
    Mode mode = Mode::kGraceful;
    Done done;
    Step step = Step::kDrain;
    DomId from = 0;
    int devid = 0;
    SimTime deadline;
    int hops = 0;
  };
  enum class StartResult { kFail, kDone, kPolling };

  void Enqueue(DomId guest, bool vif, DomId to, Mode mode, Done done);
  void StartFront(const Key& key);
  StartResult Begin(Move* m);
  bool Relink(Move* m);
  void Poll(const Key& key);
  void SchedulePoll(const Key& key);
  void Finish(const Key& key, bool ok);

  KiteSystem* sys_;
  std::map<Key, std::deque<Move>> queues_;
  Counter* started_;
  Counter* completed_;
  Counter* failed_;
  Counter* hops_;
  // Outlives `this` so posted polls can detect destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace kite

#endif  // SRC_CORE_MIGRATE_H_
