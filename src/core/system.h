// KiteSystem: assembles the full testbed of the paper (Table 2): a server
// machine running Xen with Dom0, driver domains (Kite or Linux personality),
// guest DomUs, and a directly-attached client machine — all in one
// deterministic simulation.
//
// This is the library's primary entry point: construct a KiteSystem, create
// a network and/or storage driver domain, create guests, attach
// VIFs/VBDs, and drive traffic.
#ifndef SRC_CORE_SYSTEM_H_
#define SRC_CORE_SYSTEM_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/blk/disk.h"
#include "src/blkdrv/blkback.h"
#include "src/fault/fault.h"
#include "src/blkdrv/blkfront.h"
#include "src/bmk/sched.h"
#include "src/core/blkapp.h"
#include "src/core/netapp.h"
#include "src/hv/hypervisor.h"
#include "src/net/nic.h"
#include "src/net/stack.h"
#include "src/net/switch.h"
#include "src/net/tcp.h"
#include "src/netdrv/netback.h"
#include "src/netdrv/netfront.h"
#include "src/base/log.h"
#include "src/obs/cpuattr.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/obs/sampler.h"
#include "src/obs/trace.h"
#include "src/os/profile.h"

namespace kite {

class MigrationEngine;

struct DriverDomainConfig {
  OsKind os = OsKind::kKiteRumprun;
  int vcpus = 1;
  // Paper §5: Kite domains get 1 GB (small footprint), Linux 2 GB.
  int memory_mb = 0;  // 0: choose by personality.
  NetbackParams netback;
  BlkbackParams blkback;
};

// A driver domain running the network backend, the bridge, and the network
// application, with the physical NIC assigned via PCI passthrough.
class NetworkDomain {
 public:
  Domain* domain() const { return domain_; }
  Nic* nic() const { return nic_.get(); }
  Bridge* bridge() const { return app_->bridge(); }
  NetworkBackendDriver* driver() const { return driver_.get(); }
  NetworkApp* app() const { return app_.get(); }
  const OsProfile* os() const { return os_; }
  SimTime boot_completed_at() const { return boot_completed_at_; }
  bool booted() const { return domain_->online(); }

 private:
  friend class KiteSystem;
  Domain* domain_ = nullptr;
  const OsProfile* os_ = nullptr;
  DriverDomainConfig config_;  // Kept so a restart reproduces the domain.
  std::vector<std::unique_ptr<BmkSched>> scheds_;  // One per vCPU.
  std::unique_ptr<Nic> nic_;
  std::unique_ptr<NetworkBackendDriver> driver_;
  std::unique_ptr<NetworkApp> app_;
  SimTime boot_completed_at_;
};

// A driver domain running the block backend and the block status app, with
// the NVMe device assigned via PCI passthrough.
class StorageDomain {
 public:
  Domain* domain() const { return domain_; }
  BlockDevice* disk() const { return disk_.get(); }
  StorageBackendDriver* driver() const { return driver_.get(); }
  BlockStatusApp* app() const { return app_.get(); }
  const OsProfile* os() const { return os_; }
  SimTime boot_completed_at() const { return boot_completed_at_; }
  bool booted() const { return domain_->online(); }

 private:
  friend class KiteSystem;
  Domain* domain_ = nullptr;
  const OsProfile* os_ = nullptr;
  DriverDomainConfig config_;  // Kept so a restart reproduces the domain.
  std::unique_ptr<BmkSched> sched_;
  std::unique_ptr<BlockDevice> disk_;
  std::unique_ptr<StorageBackendDriver> driver_;
  std::unique_ptr<BlockStatusApp> app_;
  SimTime boot_completed_at_;
};

// A guest DomU: Ubuntu application VM with a network stack behind netfront
// and/or a block device behind blkfront.
class GuestVm {
 public:
  Domain* domain() const { return domain_; }
  Netfront* netfront() const { return netfront_.get(); }
  EtherStack* stack() const { return stack_.get(); }
  Blkfront* blkfront() const { return blkfront_.get(); }
  Ipv4Addr ip() const { return stack_ ? stack_->ip() : Ipv4Addr{}; }

 private:
  friend class KiteSystem;
  Domain* domain_ = nullptr;
  std::unique_ptr<Netfront> netfront_;
  std::unique_ptr<EtherStack> stack_;
  std::unique_ptr<Blkfront> blkfront_;
};

// The client load-generator machine (Core i5, Table 2), directly connected
// to the server NIC.
class ClientMachine {
 public:
  Nic* nic() const { return nic_.get(); }
  EtherStack* stack() const { return stack_.get(); }
  Vcpu* vcpu() const { return vcpu_.get(); }
  Ipv4Addr ip() const { return stack_->ip(); }

 private:
  friend class KiteSystem;
  std::unique_ptr<Vcpu> vcpu_;
  std::unique_ptr<Nic> nic_;
  std::unique_ptr<EtherStack> stack_;
};

class KiteSystem {
 public:
  struct Params {
    HvCosts hv_costs;
    NicParams nic;
    DiskParams disk;
    bool disk_store_data = false;
    // When true (default for tests/benches), domain boot completes
    // immediately; when false the full boot-phase sequence is simulated
    // (used by the boot-time experiment and the restart example).
    bool instant_boot = true;
    Ipv4Addr subnet_base = Ipv4Addr::FromOctets(10, 0, 0, 0);
    // Seed for the fault injector (all rates default to zero = no faults).
    uint64_t fault_seed = 0xfa0170ULL;
    // Watchdog probe cadence and stall thresholds (always on).
    HealthParams health;
    // Publish per-stack TCP counters (segs, retransmits, acked/delivered
    // bytes) into the registry. Off by default so metric snapshots of
    // TCP-free configurations stay byte-identical to historical output.
    bool tcp_metrics = false;
    // Continuous registry sampling into per-metric timelines (DESIGN.md
    // §15). Off by default; sampler.enabled starts the daemon tick at
    // construction. Enabling never perturbs the schedule: the tick is a
    // daemon event and draws no shuffle ties.
    SamplerParams sampler;
    // Per-category CPU attribution on every vCPU (DESIGN.md §16). Off by
    // default: the disabled cost in Vcpu::Charge is one pointer test, and
    // enabling is accounting-only — it can never change a schedule, so any
    // run's figures are byte-identical with attribution on or off.
    bool cpu_attribution = false;
  };

  KiteSystem() : KiteSystem(Params{}) {}
  explicit KiteSystem(Params params);
  ~KiteSystem();

  Executor& executor() { return executor_; }
  Hypervisor& hv() { return *hv_; }
  SimTime Now() const { return executor_.Now(); }
  // Fault-injection knobs shared by the hypervisor, every NIC, and every
  // disk. Set rates before (or during) a scenario to script failures.
  FaultInjector& faults() { return faults_; }

  // --- Observability (src/obs). ---
  // The single registry every component in this system reports into.
  MetricRegistry& metric_registry() { return metrics_; }
  // Snapshot of every metric, in deterministic key order.
  std::vector<MetricRegistry::Sample> metrics() { return metrics_.Snapshot(); }
  // `prefix` (when non-empty) restricts the table to labels starting with it,
  // e.g. "obs/health" for just the watchdog aggregates.
  std::string FormatMetrics(bool skip_zero = true, const std::string& prefix = "");
  // The always-on flight recorder: every domain's recent structured events
  // (lifecycle, grants, ring pushes, faults), dumped by DumpDiagnostics.
  FlightRecorder& recorder() { return recorder_; }
  // The backend health watchdog (started at construction; see Params::health).
  HealthMonitor& health() { return health_; }
  // One-shot failure diagnostics: health table, shard placement, per-domain
  // flight-recorder tails, pending events, invariant audit, and the full
  // metric table. Installed as the KITE_CHECK fatal handler (dumped to
  // stderr on any assertion failure in this process) and callable on demand.
  void DumpDiagnostics(std::ostream& out);
  // Per-shard placement, one line per backend domain, rebuilt from the
  // toolstack's /local/domain/0/kite/placement/... keys with each device's
  // published health verdict — what an operator's `xenstore-ls` would show.
  std::string FormatPlacement();
  EventTracer& tracer() { return tracer_; }
  // The registry sampler (armed at construction when Params::sampler.enabled
  // or KITE_TIMELINE=<path> is set; the latter also dumps ToJson() to <path>
  // at destruction, mirroring KITE_TRACE).
  MetricSampler& sampler() { return sampler_; }
  // Tracing is compiled in but off by default; when off the per-event cost
  // is a single branch. Setting KITE_TRACE=<path> in the environment enables
  // tracing at construction and dumps to <path> on destruction, so any
  // bench/example/explore run can produce a trace without a code change.
  void EnableTracing(bool on = true) { tracer_.set_enabled(on); }
  // Writes the recorded events as Chrome trace_event JSON (load in Perfetto
  // or chrome://tracing). Returns false if the file could not be written.
  // Logs a warning when the tracer's event cap truncated the recording.
  bool DumpTrace(const std::string& path);
  // CPU attribution (DESIGN.md §16). Turns on the per-category ledgers for
  // every live vCPU (driver domains, guests, Dom0, the client machine) and
  // for all future domains, and installs the sampler pre-tick pump so
  // cpu_busy_ns / cpu_util_percent / cpu_<category>_ns appear as timelines.
  // Accounting-only: never perturbs the schedule. Also reachable via
  // Params::cpu_attribution or KITE_CPU=<path> (which additionally dumps
  // CpuReportJson() to <path> at destruction, mirroring KITE_TRACE).
  void EnableCpuAttribution();
  bool cpu_attribution_enabled() const { return hv_->cpu_attribution(); }
  // Every live vCPU with a stable report label, in deterministic order:
  // domains by id (label deduped with "#<id>" when two live domains share a
  // name), then the client machine.
  std::vector<CpuActor> CpuActors();
  // Deterministic per-vCPU ledger report (see src/obs/cpuattr.h).
  std::string CpuReportJson();

  // --- Topology construction. ---
  NetworkDomain* CreateNetworkDomain(DriverDomainConfig config = DriverDomainConfig{});
  StorageDomain* CreateStorageDomain(DriverDomainConfig config = DriverDomainConfig{});
  GuestVm* CreateGuest(const std::string& name, int vcpus = 22, int memory_mb = 5120);
  // Destroys a guest VM (`xl destroy`): tears down its frontends, destroys
  // the domain, and lets the backend drivers reap the paired instances on
  // their next scan. The pointer is invalid afterwards.
  void DestroyGuest(GuestVm* guest);

  // Toolstack operations (what `xl` does in the artifact, §A.4).
  // Attaches a VIF: creates xenstore device directories, instantiates
  // netfront, and brings up the guest's network stack at `ip`.
  void AttachVif(GuestVm* guest, NetworkDomain* netdom, Ipv4Addr ip);
  // Attaches a VBD and instantiates blkfront.
  void AttachVbd(GuestVm* guest, StorageDomain* stordom);

  // --- Topology introspection (invariant checker, src/check). ---
  const std::vector<std::unique_ptr<NetworkDomain>>& network_domains() const {
    return network_domains_;
  }
  const std::vector<std::unique_ptr<StorageDomain>>& storage_domains() const {
    return storage_domains_;
  }
  const std::vector<std::unique_ptr<GuestVm>>& guests() const { return guests_; }
  // By-id lookups (nullptr when no such domain is alive). Domain objects are
  // destroyed and recreated across restarts, so long-lived policies (the
  // migration engine, the rebalancer) hold DomIds and resolve per use.
  GuestVm* FindGuest(DomId id);
  NetworkDomain* FindNetworkDomain(DomId id);
  StorageDomain* FindStorageDomain(DomId id);
  // The server-side fabric. Null while at most one network domain exists
  // (direct cable, the paper's testbed); created pay-for-use the moment a
  // second uplink is needed.
  EtherSwitch* ether_switch() { return switch_.get(); }

  // Seeded schedule exploration: randomize tie-breaking among
  // same-timestamp events (see Executor::EnableShuffle). Call before any
  // topology construction so the whole run is explored.
  void EnableScheduleShuffle(uint64_t seed) { executor_.EnableShuffle(seed); }

  // The client machine exists once a network domain is created.
  ClientMachine* client() { return client_.get(); }
  Ipv4Addr client_ip() const { return client_ip_; }
  Ipv4Addr gateway_ip() const { return gateway_ip_; }

  // --- Simulation control. ---
  void RunFor(SimDuration d) { executor_.RunFor(d); }
  void RunUntilIdle() { executor_.RunUntilIdle(); }
  // Steps the simulation until pred() holds; false on timeout.
  bool WaitUntil(const std::function<bool()>& pred, SimDuration timeout = Seconds(10));
  // Convenience: wait for a guest's netfront (and blkfront, if any) to
  // connect.
  bool WaitConnected(GuestVm* guest, SimDuration timeout = Seconds(10));

  // --- VIF/VBD migration (live shard moves). ---
  using MigrateDone = std::function<void(bool ok)>;
  // Gracefully moves the guest's VIF from `from` to `to`: the old backend is
  // marked offline, drains what it already accepted, retires (releasing its
  // grant mappings), and only then is the device relinked — so no
  // acknowledged packet is lost across the move. Asynchronous: drive the
  // simulation for it to progress; `done(ok)` fires when the device settles.
  // `from` documents intent — the engine re-resolves the actual source from
  // the toolstack record when the (possibly queued) move starts.
  void MigrateVif(GuestVm* guest, NetworkDomain* from, NetworkDomain* to,
                  MigrateDone done = {});
  // Same for the guest's VBD: every acknowledged write is readable through
  // the new path (shards port the same dual-ported media), and
  // unacknowledged in-flight requests are requeued by the frontend.
  void MigrateVbd(GuestVm* guest, StorageDomain* from, StorageDomain* to,
                  MigrateDone done = {});
  // Active plus queued migrations across all devices (0 at quiesce).
  int migrations_in_flight() const;
  MigrationEngine& migrator() { return *migrate_; }

  // --- Driver-domain restart (experiment E1 / failure recovery). ---
  // Destroys the network domain's VM and boots a fresh one with the same
  // configuration, reusing the physical NIC. Every guest VIF attached to
  // the dead domain is migrated (forced mode — the backend is already gone)
  // onto `place(guest)` when given, else onto the replacement: the frontends
  // detect the backend death, tear down their rings, and reconnect
  // automatically — no manual re-attach. Returns the new domain; measures
  // boot via boot_completed_at().
  NetworkDomain* RestartNetworkDomain(
      NetworkDomain* netdom, std::function<NetworkDomain*(GuestVm*)> place = {});
  // Same for a storage domain. The physical disk is reused, so all
  // acknowledged writes survive the crash; blkfront requeues in-flight
  // requests so unacknowledged writes are retried, not lost.
  StorageDomain* RestartStorageDomain(
      StorageDomain* stordom, std::function<StorageDomain*(GuestVm*)> place = {});

  const Params& params() const { return params_; }

 private:
  friend class MigrationEngine;

  void BootDomain(Domain* dom, const OsProfile* os, std::function<void()> on_booted);
  void StartNetworkDomainServices(NetworkDomain* nd, DriverDomainConfig config);
  void StartStorageDomainServices(StorageDomain* sd, DriverDomainConfig config);
  void EnsureClient();
  // Pay-for-use fabric: re-cables the client's direct link through a fresh
  // EtherSwitch (no-op when the switch already exists).
  void EnsureSwitch();
  // Dom0 record of which shard serves each guest device, for kite_inspect:
  // /local/domain/0/kite/placement/<kind>/<guest>/<devid> = <backend dom>.
  void WritePlacement(const char* kind, DomId gid, int devid, DomId bid);
  // Shared by Create…Domain and Restart…Domain: when `reuse_nic`/`reuse_disk`
  // is non-null the physical device is adopted instead of constructed (PCI
  // passthrough hand-over across a driver-domain restart).
  NetworkDomain* CreateNetworkDomainImpl(DriverDomainConfig config,
                                         std::unique_ptr<Nic> reuse_nic);
  StorageDomain* CreateStorageDomainImpl(DriverDomainConfig config,
                                         std::unique_ptr<BlockDevice> reuse_disk);
  // Re-points an existing guest device at a freshly booted driver domain by
  // rewriting the toolstack xenstore keys (what `xl network-attach` leaves
  // in place after a backend respawn). The frontend's relink watch does the
  // rest.
  void RelinkVif(GuestVm* guest, NetworkDomain* netdom);
  void RelinkVbd(GuestVm* guest, StorageDomain* stordom);

  Params params_;
  Executor executor_;
  // Declared before faults_/hv_: both register their counters here.
  MetricRegistry metrics_;
  EventTracer tracer_;
  // After executor_/metrics_ (it reads both).
  MetricSampler sampler_;
  // Declared before faults_/hv_ (which record into it) and after executor_/
  // metrics_ (which it reads).
  FlightRecorder recorder_;
  HealthMonitor health_;
  FaultInjector faults_;
  std::unique_ptr<Hypervisor> hv_;
  // The fatal handler installed before ours, restored at destruction so
  // stacked KiteSystems (tests) unwind cleanly.
  FatalHandler prev_fatal_;
  std::vector<std::unique_ptr<NetworkDomain>> network_domains_;
  std::vector<std::unique_ptr<StorageDomain>> storage_domains_;
  std::vector<std::unique_ptr<GuestVm>> guests_;
  std::unique_ptr<ClientMachine> client_;
  // Created on the second network domain (see ether_switch()).
  std::unique_ptr<EtherSwitch> switch_;
  // One dual-ported media shared by every storage shard's BlockDevice:
  // timing stays per-port, content is common, so a VBD migrated to another
  // shard reads exactly the bytes whose writes were acknowledged.
  std::shared_ptr<DiskMedia> shared_media_;
  std::unique_ptr<MigrationEngine> migrate_;
  Ipv4Addr gateway_ip_;
  Ipv4Addr client_ip_;
  int next_host_ = 10;
  int next_mac_id_ = 1;
  int next_nic_fn_ = 0;   // PCI function suffix for additional NICs.
  int next_disk_fn_ = 0;  // PCI function suffix for additional disks.
  // Non-empty when KITE_TRACE=<path> was set at construction; the trace is
  // dumped there on destruction.
  std::string trace_env_path_;
  // Same idiom for KITE_TIMELINE (sampler JSON), KITE_PROFILE (dispatch
  // profile JSON), and KITE_CPU (CpuReportJson).
  std::string timeline_env_path_;
  std::string profile_env_path_;
  std::string cpu_env_path_;
  // Non-null once EnableCpuAttribution installed the sampler pre-tick hook.
  std::unique_ptr<CpuMetricsPump> cpu_pump_;
};

}  // namespace kite

#endif  // SRC_CORE_SYSTEM_H_
