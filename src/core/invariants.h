// Whole-system invariant checker (deterministic simulation testing).
//
// FoundationDB-style simulation testing needs two halves: a way to explore
// many legal schedules (Executor::EnableShuffle) and a way to decide, after
// each explored run, whether the system it left behind is *coherent*. This
// checker is the second half: it audits a quiesced KiteSystem against the
// conservation laws the design promises, independent of any workload-level
// assertion. A bug anywhere in the grant/event/ring plumbing shows up here
// as a broken ledger even when every workload callback "succeeded".
//
// All invariants assume the system is quiesced (RunUntilIdle was called and
// the executor's queue is empty); the checker verifies that precondition
// first and reports everything else only when it holds.
#ifndef SRC_CORE_INVARIANTS_H_
#define SRC_CORE_INVARIANTS_H_

#include <string>
#include <vector>

#include "src/core/system.h"

namespace kite {

// One broken invariant: which law, and the numbers that broke it.
struct Violation {
  std::string invariant;  // Stable kebab-case name ("grant-ledger", ...).
  std::string detail;     // Human-readable numbers.
};

class InvariantChecker {
 public:
  explicit InvariantChecker(KiteSystem* sys) : sys_(sys) {}

  // Runs every audit and returns the violations (empty = coherent).
  std::vector<Violation> Check();

  // One violation per line, indented — for test failure messages and the
  // kite_explore failure report.
  static std::string Format(const std::vector<Violation>& violations);

 private:
  void Fail(const char* invariant, std::string detail);

  // The hypervisor-wide conservation ledgers.
  void CheckGrantLedger();
  void CheckEventLedger();
  // Teardown hygiene: ports, xenstore, and backend graveyards.
  void CheckBoundPorts();
  void CheckXenstoreDomains();
  void CheckGraveyards();
  // Per-instance ring quiescence and request-resolution conservation.
  void CheckNetInstances();
  void CheckBlkInstances();
  // Disk-op conservation across every vbd ever connected.
  void CheckDiskLedger();
  // TCP flow conservation: no stack acks more than it sent, every stack
  // delivers exactly what it acked, and no byte a sender saw acknowledged
  // was lost by the receiver (audited per flow across live stack pairs).
  void CheckTcpLedger();
  // Watchdog verdicts: at quiesce (after a fresh probe) every registered
  // instance must be healthy — a degraded/stalled verdict that survives
  // quiesce means recovery never actually happened.
  void CheckInstanceHealth();
  // Live migration: at quiesce no VIF/VBD move may still be in flight — a
  // stuck move means a drain or reconnect never completed.
  void CheckMigrationsQuiesced();

  KiteSystem* sys_;
  std::vector<Violation> violations_;
};

}  // namespace kite

#endif  // SRC_CORE_INVARIANTS_H_
