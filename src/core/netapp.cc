#include "src/core/netapp.h"

#include "src/base/log.h"

namespace kite {

// --- IfConfig. ---

IfConfig::IfConfig(BmkSched* sched) : sched_(sched) {}

void IfConfig::AssignIp(NetIf* netif, Ipv4Addr ip) {
  // A couple of ioctl round trips (SIOCSIFADDR etc).
  CpuScope cpu_scope(KITE_CPU_CATEGORY("app/config"));
  sched_->vcpu()->Charge(Micros(8));
  netif->SetUp(true);
  assignments_.push_back({netif->ifname(), ip});
}

void IfConfig::SetUp(NetIf* netif) {
  CpuScope cpu_scope(KITE_CPU_CATEGORY("app/config"));
  sched_->vcpu()->Charge(Micros(4));
  netif->SetUp(true);
}

// --- BrConfig. ---

BrConfig::BrConfig(BmkSched* sched) : sched_(sched) {}

std::unique_ptr<Bridge> BrConfig::CreateBridge(const std::string& name) {
  CpuScope cpu_scope(KITE_CPU_CATEGORY("app/config"));
  sched_->vcpu()->Charge(Micros(10));
  return std::make_unique<Bridge>(name, sched_->vcpu());
}

void BrConfig::AddIf(Bridge* bridge, NetIf* netif) {
  CpuScope cpu_scope(KITE_CPU_CATEGORY("app/config"));
  sched_->vcpu()->Charge(Micros(6));
  netif->SetUp(true);
  bridge->AddIf(netif);
  ++adds_;
}

// --- NetworkApp. ---

NetworkApp::NetworkApp(BmkSched* sched, NetworkBackendDriver* driver, NetIf* physical_if,
                       Ipv4Addr gateway_ip)
    : sched_(sched),
      driver_(driver),
      ifconfig_(sched),
      brconfig_(sched),
      vif_wake_(sched->executor()) {
  // Paper §4.3: create the bridge, assign the gateway IP to the physical
  // interface, add the physical interface, then service new VIFs forever.
  bridge_ = brconfig_.CreateBridge("xenbr0");
  ifconfig_.AssignIp(physical_if, gateway_ip);
  brconfig_.AddIf(bridge_.get(), physical_if);
  driver_->SetOnNewVif([this](NetbackInstance* vif) {
    pending_vifs_.push_back(vif);
    vif_wake_.Signal();
  });
  // A reaped VIF must leave the bridge before its pointer dies; it may also
  // still be sitting in the hotplug queue if the guest died mid-pairing.
  driver_->SetOnVifGone([this](NetbackInstance* vif) {
    bridge_->RemoveIf(vif);
    std::erase(pending_vifs_, vif);
  });
  sched_->Spawn("network-app", [this] { return MainLoop(); });
}

Task NetworkApp::MainLoop() {
  for (;;) {
    co_await vif_wake_.Wait();
    while (!pending_vifs_.empty()) {
      NetbackInstance* vif = pending_vifs_.front();
      pending_vifs_.pop_front();
      brconfig_.AddIf(bridge_.get(), vif);
      vif->CompleteHotplug();
      ++vifs_added_;
      KITE_LOG(Info) << "network-app: added " << vif->ifname() << " to " << bridge_->name();
      // Explicitly yield so netback, the NIC driver, and the network stack
      // make progress (paper §4.3).
      co_await sched_->Yield();
    }
  }
}

}  // namespace kite
