#include "src/core/pool.h"

#include <string>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/system.h"
#include "src/hv/xenbus.h"

namespace kite {

namespace {

// Toolstack truth for where a guest device is linked; falls back to the
// frontend's (possibly lagging) view when the key is missing.
DomId LinkedBackend(KiteSystem* sys, const GuestVm* g, bool vif) {
  const int devid = vif ? g->netfront()->devid() : g->blkfront()->devid();
  const std::string fe =
      FrontendPath(g->domain()->id(), vif ? "vif" : "vbd", devid);
  auto cur = sys->hv().store().ReadInt(kDom0, fe + "/backend-id");
  if (cur.has_value()) {
    return static_cast<DomId>(*cur);
  }
  return vif ? g->netfront()->backend_dom() : g->blkfront()->backend_dom();
}

}  // namespace

DomainPool::DomainPool(KiteSystem* sys) : sys_(sys) {}

void DomainPool::AddNetworkShard(NetworkDomain* nd) {
  KITE_CHECK(nd != nullptr);
  net_shards_.push_back(Shard{nd->domain()->id(), true});
}

void DomainPool::AddStorageShard(StorageDomain* sd) {
  KITE_CHECK(sd != nullptr);
  stor_shards_.push_back(Shard{sd->domain()->id(), true});
}

void DomainPool::RemoveNetworkShard(DomId dom) {
  for (auto it = net_shards_.begin(); it != net_shards_.end(); ++it) {
    if (it->dom == dom) {
      net_shards_.erase(it);
      return;
    }
  }
}

void DomainPool::RemoveStorageShard(DomId dom) {
  for (auto it = stor_shards_.begin(); it != stor_shards_.end(); ++it) {
    if (it->dom == dom) {
      stor_shards_.erase(it);
      return;
    }
  }
}

void DomainPool::SetNetworkShardOpen(DomId dom, bool open) {
  for (Shard& s : net_shards_) {
    if (s.dom == dom) {
      s.open = open;
    }
  }
}

void DomainPool::SetStorageShardOpen(DomId dom, bool open) {
  for (Shard& s : stor_shards_) {
    if (s.dom == dom) {
      s.open = open;
    }
  }
}

bool DomainPool::IsNetworkShardOpen(DomId dom) const {
  for (const Shard& s : net_shards_) {
    if (s.dom == dom) {
      return s.open;
    }
  }
  return false;
}

bool DomainPool::IsStorageShardOpen(DomId dom) const {
  for (const Shard& s : stor_shards_) {
    if (s.dom == dom) {
      return s.open;
    }
  }
  return false;
}

bool DomainPool::HasNetworkShard(DomId dom) const {
  for (const Shard& s : net_shards_) {
    if (s.dom == dom) {
      return true;
    }
  }
  return false;
}

bool DomainPool::HasStorageShard(DomId dom) const {
  for (const Shard& s : stor_shards_) {
    if (s.dom == dom) {
      return true;
    }
  }
  return false;
}

void DomainPool::ReplaceNetworkShard(DomId old_dom, DomId new_dom) {
  for (Shard& s : net_shards_) {
    if (s.dom == old_dom) {
      s.dom = new_dom;
    }
  }
  for (auto& [guest, dom] : vif_pins_) {
    if (dom == old_dom) {
      dom = new_dom;
    }
  }
}

void DomainPool::ReplaceStorageShard(DomId old_dom, DomId new_dom) {
  for (Shard& s : stor_shards_) {
    if (s.dom == old_dom) {
      s.dom = new_dom;
    }
  }
  for (auto& [guest, dom] : vbd_pins_) {
    if (dom == old_dom) {
      dom = new_dom;
    }
  }
}

size_t DomainPool::HashSlot(DomId guest, size_t open_count) {
  // Fibonacci multiplicative hash: consecutive guest ids spread evenly.
  const uint64_t h = static_cast<uint64_t>(guest) * 0x9e3779b97f4a7c15ULL;
  return static_cast<size_t>((h >> 32) % open_count);
}

const DomainPool::Shard* DomainPool::ResolveNet(DomId guest) const {
  auto pin = vif_pins_.find(guest);
  if (pin != vif_pins_.end()) {
    for (const Shard& s : net_shards_) {
      if (s.dom == pin->second) {
        return &s;
      }
    }
    return nullptr;  // Pinned to a shard that left the pool.
  }
  std::vector<const Shard*> open;
  for (const Shard& s : net_shards_) {
    if (s.open) {
      open.push_back(&s);
    }
  }
  if (open.empty()) {
    return nullptr;
  }
  return open[HashSlot(guest, open.size())];
}

const DomainPool::Shard* DomainPool::ResolveStor(DomId guest) const {
  auto pin = vbd_pins_.find(guest);
  if (pin != vbd_pins_.end()) {
    for (const Shard& s : stor_shards_) {
      if (s.dom == pin->second) {
        return &s;
      }
    }
    return nullptr;
  }
  std::vector<const Shard*> open;
  for (const Shard& s : stor_shards_) {
    if (s.open) {
      open.push_back(&s);
    }
  }
  if (open.empty()) {
    return nullptr;
  }
  return open[HashSlot(guest, open.size())];
}

NetworkDomain* DomainPool::PickNetworkShard(DomId guest) const {
  const Shard* s = ResolveNet(guest);
  return s == nullptr ? nullptr : sys_->FindNetworkDomain(s->dom);
}

StorageDomain* DomainPool::PickStorageShard(DomId guest) const {
  const Shard* s = ResolveStor(guest);
  return s == nullptr ? nullptr : sys_->FindStorageDomain(s->dom);
}

NetworkDomain* DomainPool::AttachVif(GuestVm* guest, Ipv4Addr ip) {
  NetworkDomain* nd = PickNetworkShard(guest->domain()->id());
  if (nd == nullptr) {
    return nullptr;
  }
  sys_->AttachVif(guest, nd, ip);
  return nd;
}

StorageDomain* DomainPool::AttachVbd(GuestVm* guest) {
  StorageDomain* sd = PickStorageShard(guest->domain()->id());
  if (sd == nullptr) {
    return nullptr;
  }
  sys_->AttachVbd(guest, sd);
  return sd;
}

int DomainPool::VifLoad(DomId dom) const {
  int n = 0;
  for (const auto& g : sys_->guests()) {
    if (g->netfront() != nullptr && LinkedBackend(sys_, g.get(), true) == dom) {
      ++n;
    }
  }
  return n;
}

int DomainPool::VbdLoad(DomId dom) const {
  int n = 0;
  for (const auto& g : sys_->guests()) {
    if (g->blkfront() != nullptr && LinkedBackend(sys_, g.get(), false) == dom) {
      ++n;
    }
  }
  return n;
}

NetworkDomain* DomainPool::LeastLoadedNetworkShard(DomId exclude) const {
  const Shard* best = nullptr;
  int best_load = 0;
  for (const Shard& s : net_shards_) {
    if (!s.open || s.dom == exclude) {
      continue;
    }
    const int load = VifLoad(s.dom);
    if (best == nullptr || load < best_load) {
      best = &s;
      best_load = load;
    }
  }
  return best == nullptr ? nullptr : sys_->FindNetworkDomain(best->dom);
}

StorageDomain* DomainPool::LeastLoadedStorageShard(DomId exclude) const {
  const Shard* best = nullptr;
  int best_load = 0;
  for (const Shard& s : stor_shards_) {
    if (!s.open || s.dom == exclude) {
      continue;
    }
    const int load = VbdLoad(s.dom);
    if (best == nullptr || load < best_load) {
      best = &s;
      best_load = load;
    }
  }
  return best == nullptr ? nullptr : sys_->FindStorageDomain(best->dom);
}

std::vector<DomainPool::ShardInfo> DomainPool::NetworkShards() const {
  std::vector<ShardInfo> out;
  out.reserve(net_shards_.size());
  for (const Shard& s : net_shards_) {
    out.push_back(ShardInfo{s.dom, s.open, VifLoad(s.dom)});
  }
  PublishGauges();
  return out;
}

std::vector<DomainPool::ShardInfo> DomainPool::StorageShards() const {
  std::vector<ShardInfo> out;
  out.reserve(stor_shards_.size());
  for (const Shard& s : stor_shards_) {
    out.push_back(ShardInfo{s.dom, s.open, VbdLoad(s.dom)});
  }
  PublishGauges();
  return out;
}

void DomainPool::PublishGauges() const {
  MetricRegistry& reg = sys_->metric_registry();
  for (const Shard& s : net_shards_) {
    reg.gauge("pool", StrFormat("net%d", s.dom), "vif_load")->Set(VifLoad(s.dom));
    reg.gauge("pool", StrFormat("net%d", s.dom), "open")->Set(s.open ? 1 : 0);
  }
  for (const Shard& s : stor_shards_) {
    reg.gauge("pool", StrFormat("stor%d", s.dom), "vbd_load")->Set(VbdLoad(s.dom));
    reg.gauge("pool", StrFormat("stor%d", s.dom), "open")->Set(s.open ? 1 : 0);
  }
}

}  // namespace kite
