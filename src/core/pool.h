// DomainPool: shards guest devices across a fleet of driver domains.
//
// The paper's hardening story splits the single Linux driver domain into K
// lightweight Kite netback domains and M blkback domains; each guest VIF/VBD
// is served by exactly one shard. The pool is the placement policy:
//
//   - Membership is an ordered list of shards (registration order, so
//     placement is deterministic across runs). A shard can be *closed*
//     (draining, unhealthy) without leaving the pool: closed shards receive
//     no new placements but keep serving what they already host until the
//     Rebalancer moves it away.
//   - Default placement hashes the guest's domain id over the open shards
//     (Fibonacci multiplicative hash), so a guest lands on the same shard
//     every run. An explicit Pin overrides the hash — for experiments that
//     need a known victim/survivor split.
//   - Load is derived, not tracked: a shard's load is the number of guest
//     devices whose toolstack link (xenstore backend-id) points at it. That
//     makes the pool agree with reality across migrations and restarts
//     without any bookkeeping protocol.
//
// The pool is a policy object owned by the scenario (bench, test, explore
// phase) — KiteSystem itself stays pool-free, so single-domain topologies pay
// nothing.
#ifndef SRC_CORE_POOL_H_
#define SRC_CORE_POOL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/hv/grant_table.h"
#include "src/net/tcp.h"

namespace kite {

class KiteSystem;
class NetworkDomain;
class StorageDomain;
class GuestVm;

class DomainPool {
 public:
  struct ShardInfo {
    DomId dom = 0;
    bool open = true;
    int load = 0;  // Guest devices currently toolstack-linked to this shard.
  };

  explicit DomainPool(KiteSystem* sys);

  DomainPool(const DomainPool&) = delete;
  DomainPool& operator=(const DomainPool&) = delete;

  // --- Membership. Registration order is placement order. ---
  void AddNetworkShard(NetworkDomain* nd);
  void AddStorageShard(StorageDomain* sd);
  void RemoveNetworkShard(DomId dom);
  void RemoveStorageShard(DomId dom);
  // Closed shards host but don't accept new placements.
  void SetNetworkShardOpen(DomId dom, bool open);
  void SetStorageShardOpen(DomId dom, bool open);
  bool IsNetworkShardOpen(DomId dom) const;
  bool IsStorageShardOpen(DomId dom) const;
  bool HasNetworkShard(DomId dom) const;
  bool HasStorageShard(DomId dom) const;
  // A restart replaces the domain (new id) but not the shard: the successor
  // inherits the slot's position and open flag.
  void ReplaceNetworkShard(DomId old_dom, DomId new_dom);
  void ReplaceStorageShard(DomId old_dom, DomId new_dom);

  // --- Placement. ---
  // Deterministic hash over open shards, unless the guest is pinned.
  // Nullptr when the pool has no open shard of that kind.
  NetworkDomain* PickNetworkShard(DomId guest) const;
  StorageDomain* PickStorageShard(DomId guest) const;
  // Pins override the hash (and win even if the pinned shard is closed —
  // an explicit pin is an operator decision).
  void PinVif(DomId guest, DomId dom) { vif_pins_[guest] = dom; }
  void PinVbd(DomId guest, DomId dom) { vbd_pins_[guest] = dom; }
  void UnpinVif(DomId guest) { vif_pins_.erase(guest); }
  void UnpinVbd(DomId guest) { vbd_pins_.erase(guest); }

  // Convenience: pick a shard and attach through the toolstack. Returns the
  // chosen shard (nullptr if none open — nothing attached).
  NetworkDomain* AttachVif(GuestVm* guest, Ipv4Addr ip);
  StorageDomain* AttachVbd(GuestVm* guest);

  // --- Load and introspection. ---
  int VifLoad(DomId dom) const;
  int VbdLoad(DomId dom) const;
  // Open shard with the fewest linked devices (ties: pool order); `exclude`
  // skips the shard being drained. Nullptr when no candidate exists.
  NetworkDomain* LeastLoadedNetworkShard(DomId exclude = -1) const;
  StorageDomain* LeastLoadedStorageShard(DomId exclude = -1) const;
  // Pool order, with live load counts. Also refreshes the per-shard gauges.
  std::vector<ShardInfo> NetworkShards() const;
  std::vector<ShardInfo> StorageShards() const;

 private:
  struct Shard {
    DomId dom = 0;
    bool open = true;
  };

  static size_t HashSlot(DomId guest, size_t open_count);
  const Shard* ResolveNet(DomId guest) const;
  const Shard* ResolveStor(DomId guest) const;
  void PublishGauges() const;

  KiteSystem* sys_;
  std::vector<Shard> net_shards_;
  std::vector<Shard> stor_shards_;
  std::map<DomId, DomId> vif_pins_;  // guest dom -> shard dom
  std::map<DomId, DomId> vbd_pins_;
};

}  // namespace kite

#endif  // SRC_CORE_POOL_H_
