// Rebalancer: health-driven failover policy over a DomainPool.
//
// Subscribes to the HealthMonitor (PR 5) and reacts to backend state
// transitions on pool shards:
//
//   degraded — the shard is slow but alive. After a hysteresis window (so a
//              single late probe doesn't trigger a stampede) the shard is
//              closed for placement and its guests are *drained*: graceful
//              migrations onto the least-loaded healthy shard, bounded by a
//              concurrency cap so the survivors aren't buried under
//              simultaneous reconnections.
//   stalled  — the shard is wedged; a graceful drain cannot complete (the
//              backend no longer makes progress). The shard is *evacuated*:
//              a forced restart (KiteSystem::Restart…Domain) that scatters
//              the guests across healthy shards, then boots a replacement.
//              Repeated evacuations of the same shard back off
//              exponentially — a domain that wedges every time it boots must
//              not dominate the simulation with restart churn.
//   healthy  — the shard recovered: its failure streak resets and, once any
//              in-flight drain has finished, it is re-admitted for placement.
//
// Health callbacks run inside the monitor's probe, so every reaction is
// deferred through the executor; all decisions re-resolve domains by id at
// fire time (a shard may have been restarted meanwhile).
//
// Like the pool, the Rebalancer is owned by the scenario, not by KiteSystem:
// topologies without one pay nothing.
#ifndef SRC_CORE_REBALANCER_H_
#define SRC_CORE_REBALANCER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "src/hv/grant_table.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/sim/time.h"

namespace kite {

class KiteSystem;
class DomainPool;

struct RebalancerParams {
  // How long a shard must stay degraded before its drain starts.
  SimDuration degraded_hysteresis = Millis(10);
  // Graceful migrations in flight at once across the whole pool.
  int max_concurrent_migrations = 2;
  // Evacuation backoff: the n-th forced restart of the same shard must wait
  // backoff_base * 2^min(n-1, backoff_max_exp) after the previous one.
  SimDuration backoff_base = Millis(100);
  int backoff_max_exp = 6;
  // When false an evacuated shard's replacement boots but stays closed
  // (quarantined) instead of being re-admitted for placement.
  bool readmit_evacuated = true;
};

class Rebalancer {
 public:
  Rebalancer(KiteSystem* sys, DomainPool* pool, RebalancerParams params = {});
  ~Rebalancer();

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  const RebalancerParams& params() const { return params_; }

  uint64_t drains_started() const { return drains_->value(); }
  uint64_t evacuations() const { return evacuations_->value(); }
  uint64_t readmissions() const { return readmissions_->value(); }
  uint64_t moves_started() const { return moves_started_->value(); }
  uint64_t moves_failed() const { return moves_failed_->value(); }
  uint64_t backoff_defers() const { return backoff_defers_->value(); }
  // Graceful drain moves in flight or queued behind the concurrency cap.
  int pending_moves() const { return active_moves_ + static_cast<int>(pending_.size()); }

 private:
  // Failure-handling state for one shard, keyed by its *current* domain id
  // and carried across restarts (ReplaceShard renames the key).
  struct ShardCtl {
    bool net = true;
    bool hysteresis_armed = false;
    bool draining = false;
    int fail_count = 0;       // Consecutive evacuations; reset on healthy.
    SimTime next_allowed{};   // Earliest next evacuation (backoff gate).
    int outstanding = 0;      // Drain moves still in flight for this shard.
  };
  struct PendingMove {
    DomId gid = 0;
    bool vif = true;
    DomId from = 0;
  };

  void OnTransition(int32_t dom, const std::string& device, HealthState old_state,
                    HealthState new_state);
  // Deferred reactions (posted from OnTransition).
  void HandleDegraded(DomId dom, bool net);
  void ConfirmDegraded(DomId dom);
  void HandleStalled(DomId dom);
  void HandleHealthy(DomId dom);

  void StartDrain(DomId dom);
  void Evacuate(DomId dom);
  void PumpMoves();
  void OnMoveDone(DomId from);
  void TryReadmit(DomId dom);
  // Worst health state across the domain's registered backend instances.
  HealthState WorstState(DomId dom) const;

  KiteSystem* sys_;
  DomainPool* pool_;
  RebalancerParams params_;
  int64_t sub_id_ = 0;
  std::map<DomId, ShardCtl> shards_;
  std::deque<PendingMove> pending_;
  int active_moves_ = 0;

  Counter* drains_;
  Counter* evacuations_;
  Counter* readmissions_;
  Counter* moves_started_;
  Counter* moves_failed_;
  Counter* backoff_defers_;
  // Outlives `this` so deferred posts can detect destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace kite

#endif  // SRC_CORE_REBALANCER_H_
