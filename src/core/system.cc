#include "src/core/system.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/invariants.h"
#include "src/core/migrate.h"
#include "src/obs/profile.h"

namespace kite {

KiteSystem::KiteSystem(Params params)
    : params_(params),
      sampler_(&executor_, &metrics_, params_.sampler),
      recorder_(&executor_),
      health_(&executor_, &metrics_, &recorder_, params_.health),
      faults_(params_.fault_seed, &metrics_) {
  hv_ = std::make_unique<Hypervisor>(&executor_, params_.hv_costs, &metrics_, &tracer_);
  hv_->set_fault_injector(&faults_);
  hv_->set_recorder(&recorder_);
  hv_->set_health(&health_);
  faults_.set_recorder(&recorder_);
  // Health verdicts are published into xenstore next to the device state, so
  // a stalled backend is visible to the same tooling that watches xenbus.
  health_.set_publisher([this](int32_t dom, const std::string& device,
                               HealthState state) {
    if (hv_->domain(static_cast<DomId>(dom)) == nullptr) {
      return;  // Transition raced with domain teardown.
    }
    hv_->store().Write(kDom0,
                       DomainPath(static_cast<DomId>(dom)) + "/health/" + device,
                       HealthStateName(state));
  });
  health_.Start();
  migrate_ = std::make_unique<MigrationEngine>(this);
  // Any KITE_CHECK failure anywhere in this process now dumps the full
  // diagnostic bundle to stderr before aborting.
  prev_fatal_ = SetFatalHandler([this] { DumpDiagnostics(std::cerr); });
  gateway_ip_ = Ipv4Addr{params_.subnet_base.value + 1};
  client_ip_ = Ipv4Addr{params_.subnet_base.value + 2};
  if (const char* path = std::getenv("KITE_TRACE"); path != nullptr && path[0] != '\0') {
    trace_env_path_ = path;
    EnableTracing();
  }
  if (const char* path = std::getenv("KITE_TIMELINE");
      path != nullptr && path[0] != '\0') {
    timeline_env_path_ = path;
  }
  if (const char* path = std::getenv("KITE_CPU"); path != nullptr && path[0] != '\0') {
    cpu_env_path_ = path;
  }
  // Attribution before the sampler starts, so the pre-tick pump is in place
  // for the baseline snapshot.
  if (params_.cpu_attribution || !cpu_env_path_.empty()) {
    EnableCpuAttribution();
  }
  if (params_.sampler.enabled || !timeline_env_path_.empty()) {
    sampler_.Start();
  }
  if (const char* path = std::getenv("KITE_PROFILE");
      path != nullptr && path[0] != '\0') {
    profile_env_path_ = path;
    executor_.EnableDispatchProfiler();
  }
}

KiteSystem::~KiteSystem() {
  SetFatalHandler(std::move(prev_fatal_));
  if (!trace_env_path_.empty()) {
    DumpTrace(trace_env_path_);
  }
  if (!timeline_env_path_.empty()) {
    std::ofstream out(timeline_env_path_);
    if (out) {
      out << sampler_.ToJson();
    } else {
      KITE_LOG(Warning) << "cannot write timeline to " << timeline_env_path_;
    }
  }
  if (!profile_env_path_.empty()) {
    std::ofstream out(profile_env_path_);
    if (out) {
      out << DispatchProfileJson(executor_);
    } else {
      KITE_LOG(Warning) << "cannot write dispatch profile to " << profile_env_path_;
    }
  }
  if (!cpu_env_path_.empty()) {
    std::ofstream out(cpu_env_path_);
    if (out) {
      out << CpuReportJson();
    } else {
      KITE_LOG(Warning) << "cannot write cpu report to " << cpu_env_path_;
    }
  }
}

void KiteSystem::EnableCpuAttribution() {
  hv_->set_cpu_attribution(true);  // Retrofits live domains, covers new ones.
  if (client_ != nullptr) {
    client_->vcpu_->EnableAttribution();
  }
  if (cpu_pump_ == nullptr) {
    cpu_pump_ = std::make_unique<CpuMetricsPump>(&metrics_);
    sampler_.set_pre_tick([this] { cpu_pump_->Pump(CpuActors(), Now()); });
  }
}

std::vector<CpuActor> KiteSystem::CpuActors() {
  const std::vector<DomId> ids = hv_->live_domains();
  // Two live driver domains can share a personality name ("kite-netdom");
  // dedupe with the domain id so metric keys and report lines stay distinct.
  std::map<std::string, int> name_count;
  for (DomId id : ids) {
    ++name_count[hv_->domain(id)->name()];
  }
  std::vector<CpuActor> actors;
  for (DomId id : ids) {
    Domain* dom = hv_->domain(id);
    std::string label = dom->name();
    if (name_count[label] > 1) {
      label += StrFormat("#%d", static_cast<int>(id));
    }
    for (int i = 0; i < dom->vcpu_count(); ++i) {
      actors.push_back({label, i, dom->vcpu(i)});
    }
  }
  if (client_ != nullptr) {
    actors.push_back({"client", 0, client_->vcpu_.get()});
  }
  return actors;
}

std::string KiteSystem::CpuReportJson() {
  return kite::CpuReportJson(CpuActors(), Now());
}

std::string KiteSystem::FormatMetrics(bool skip_zero, const std::string& prefix) {
  // The tracer is not registry-backed (it predates the registry in
  // construction order), so sync its drop count into a counter before
  // rendering.
  metrics_.counter("obs", "tracer", "events_dropped")->Set(tracer_.dropped());
  return metrics_.FormatTable(skip_zero, prefix);
}

void KiteSystem::DumpDiagnostics(std::ostream& out) {
  out << "==== KITE DIAGNOSTICS (t=" << StrFormat("%.9f", Now().seconds())
      << "s) ====\n";
  out << "---- health ----\n" << health_.FormatTable();
  out << "---- placement ----\n" << FormatPlacement();
  out << "---- flight recorder ----\n" << recorder_.FormatAll();
  out << "---- pending events ----\n" << executor_.FormatPendingEvents() << "\n";
  out << "---- invariants ----\n";
  // Mid-run (e.g. a crash inside a traffic phase) the checker reports
  // not-quiesced and skips the ledgers — the right answer for a dump taken
  // while work is in flight.
  std::vector<Violation> violations = InvariantChecker(this).Check();
  if (violations.empty()) {
    out << "  all invariants hold\n";
  } else {
    out << InvariantChecker::Format(violations);
  }
  out << "---- cpu ----\n" << FormatCpuAttribution(CpuActors(), Now());
  out << "---- metrics ----\n" << FormatMetrics();
  out << "---- dispatch profile ----\n" << FormatDispatchProfile(executor_);
  out << "==== END KITE DIAGNOSTICS ====\n";
  out.flush();
}

std::string KiteSystem::FormatPlacement() {
  XenStore& store = hv_->store();
  // Rebuilt purely from the toolstack's placement keys, so the table shows
  // what is actually linked — not what any policy object believes. Each
  // device carries the published health verdict of its backend instance
  // (falling back to the live monitor when no transition was ever published).
  std::map<DomId, std::vector<std::string>> shards;
  for (const char* kind : {"vif", "vbd"}) {
    const std::string root = StrFormat("/local/domain/0/kite/placement/%s", kind);
    const auto guests = store.List(kDom0, root);
    if (!guests.has_value()) {
      continue;
    }
    for (const std::string& gid : *guests) {
      const auto devids = store.List(kDom0, root + "/" + gid);
      if (!devids.has_value()) {
        continue;
      }
      for (const std::string& devid : *devids) {
        const auto bid = store.ReadInt(kDom0, root + "/" + gid + "/" + devid);
        if (!bid.has_value()) {
          continue;
        }
        const DomId dom = static_cast<DomId>(*bid);
        const std::string device = StrFormat("%s%s.%s", kind, gid.c_str(), devid.c_str());
        const auto verdict = store.Read(kDom0, DomainPath(dom) + "/health/" + device);
        shards[dom].push_back(
            device + "=" +
            (verdict.has_value() ? *verdict : HealthStateName(health_.state(dom, device))));
      }
    }
  }
  if (shards.empty()) {
    return "  (no devices placed)\n";
  }
  std::string out;
  for (const auto& [dom, devices] : shards) {
    out += StrFormat("  shard dom%-4d %2zu device(s):", dom, devices.size());
    for (const std::string& d : devices) {
      out += " " + d;
    }
    out += "\n";
  }
  return out;
}

bool KiteSystem::DumpTrace(const std::string& path) {
  metrics_.counter("obs", "tracer", "events_dropped")->Set(tracer_.dropped());
  if (tracer_.dropped() > 0) {
    KITE_LOG(Warning) << "trace dump to " << path << " is truncated: "
                      << tracer_.dropped()
                      << " events dropped after hitting the event cap";
  }
  return tracer_.DumpTrace(path);
}

void KiteSystem::BootDomain(Domain* dom, const OsProfile* os,
                            std::function<void()> on_booted) {
  if (params_.instant_boot) {
    dom->set_online(true);
    on_booted();
    return;
  }
  // Replay the boot phases sequentially, then bring services up.
  SimDuration total;
  for (const BootPhase& phase : os->boot_phases) {
    total += phase.duration;
  }
  executor_.PostAfter(total, KITE_POST_SITE("system/boot-complete"),
                      [dom, on_booted = std::move(on_booted)] {
    dom->set_online(true);
    on_booted();
  });
}

NetworkDomain* KiteSystem::CreateNetworkDomain(DriverDomainConfig config) {
  return CreateNetworkDomainImpl(config, /*reuse_nic=*/nullptr);
}

NetworkDomain* KiteSystem::CreateNetworkDomainImpl(DriverDomainConfig config,
                                                   std::unique_ptr<Nic> reuse_nic) {
  auto nd = std::make_unique<NetworkDomain>();
  nd->os_ = &DriverDomainProfile(config.os, /*storage=*/false);
  nd->config_ = config;
  const int memory =
      config.memory_mb > 0 ? config.memory_mb
                           : (config.os == OsKind::kKiteRumprun ? 1024 : 2048);
  nd->domain_ = hv_->CreateDomain(
      config.os == OsKind::kKiteRumprun ? "kite-netdom" : "linux-netdom", config.vcpus,
      memory);
  for (int i = 0; i < nd->domain_->vcpu_count(); ++i) {
    nd->scheds_.push_back(std::make_unique<BmkSched>(&executor_, nd->domain_->vcpu(i)));
  }

  // Physical NIC assigned via PCI passthrough (with IOMMU). Across a
  // driver-domain restart the same NIC is handed over, still cabled to the
  // client, so the link (and any frames in flight on it) is preserved.
  if (reuse_nic != nullptr) {
    nd->nic_ = std::move(reuse_nic);
  } else {
    nd->nic_ = std::make_unique<Nic>(&executor_,
                                     StrFormat("0000:03:00.%d", next_nic_fn_++), "ixg0",
                                     MacAddr::FromId(0x100000u + next_mac_id_++),
                                     params_.nic);
    nd->nic_->set_fault_injector(&faults_);
  }
  hv_->AssignPci(nd->nic_.get(), nd->domain_, /*iommu=*/true);

  EnsureClient();
  if (nd->nic_->peer() == nullptr) {
    // Pay-for-use fabric: a single network domain is direct-cabled to the
    // client (the paper's testbed, byte-identical figures); the moment a
    // second uplink appears everything moves behind an EtherSwitch.
    if (switch_ == nullptr && network_domains_.empty()) {
      Nic::ConnectBackToBack(nd->nic_.get(), client_->nic_.get());
    } else {
      EnsureSwitch();
      switch_->Plug(nd->nic_.get());
    }
  }

  NetworkDomain* raw = nd.get();
  network_domains_.push_back(std::move(nd));
  BootDomain(raw->domain_, raw->os_, [this, raw, config] {
    raw->boot_completed_at_ = executor_.Now();
    StartNetworkDomainServices(raw, config);
  });
  return raw;
}

void KiteSystem::StartNetworkDomainServices(NetworkDomain* nd, DriverDomainConfig config) {
  std::vector<BmkSched*> scheds;
  for (auto& s : nd->scheds_) {
    scheds.push_back(s.get());
  }
  nd->driver_ = std::make_unique<NetworkBackendDriver>(nd->domain_, std::move(scheds),
                                                       &nd->os_->costs, config.netback);
  nd->app_ = std::make_unique<NetworkApp>(nd->scheds_.front().get(), nd->driver_.get(),
                                          nd->nic_->netif(), gateway_ip_);
}

StorageDomain* KiteSystem::CreateStorageDomain(DriverDomainConfig config) {
  return CreateStorageDomainImpl(config, /*reuse_disk=*/nullptr);
}

StorageDomain* KiteSystem::CreateStorageDomainImpl(DriverDomainConfig config,
                                                   std::unique_ptr<BlockDevice> reuse_disk) {
  auto sd = std::make_unique<StorageDomain>();
  sd->os_ = &DriverDomainProfile(config.os, /*storage=*/true);
  sd->config_ = config;
  const int memory =
      config.memory_mb > 0 ? config.memory_mb
                           : (config.os == OsKind::kKiteRumprun ? 1024 : 2048);
  sd->domain_ = hv_->CreateDomain(
      config.os == OsKind::kKiteRumprun ? "kite-stordom" : "linux-stordom", config.vcpus,
      memory);
  sd->sched_ = std::make_unique<BmkSched>(&executor_, sd->domain_->vcpu(0));

  // Across a restart the same physical disk is handed over, so every write
  // acknowledged before the crash is still there afterwards.
  if (reuse_disk != nullptr) {
    sd->disk_ = std::move(reuse_disk);
  } else {
    // Every storage shard ports the same dual-ported media (fabric-attached
    // storage): per-port timing and queues stay independent, but a write
    // acknowledged through one shard is readable through any other — the
    // property VBD migration relies on.
    if (shared_media_ == nullptr) {
      shared_media_ = std::make_shared<DiskMedia>();
    }
    sd->disk_ = std::make_unique<BlockDevice>(
        &executor_, StrFormat("0000:04:00.%d", next_disk_fn_++), params_.disk,
        params_.disk_store_data, shared_media_);
    sd->disk_->set_fault_injector(&faults_);
  }
  hv_->AssignPci(sd->disk_.get(), sd->domain_, /*iommu=*/true);

  StorageDomain* raw = sd.get();
  storage_domains_.push_back(std::move(sd));
  BootDomain(raw->domain_, raw->os_, [this, raw, config] {
    raw->boot_completed_at_ = executor_.Now();
    StartStorageDomainServices(raw, config);
  });
  return raw;
}

void KiteSystem::StartStorageDomainServices(StorageDomain* sd, DriverDomainConfig config) {
  sd->driver_ = std::make_unique<StorageBackendDriver>(sd->domain_, sd->sched_.get(),
                                                       &sd->os_->costs, sd->disk_.get(),
                                                       config.blkback);
  sd->app_ = std::make_unique<BlockStatusApp>(sd->sched_.get(), sd->driver_.get(),
                                              sd->disk_->bdf());
}

GuestVm* KiteSystem::CreateGuest(const std::string& name, int vcpus, int memory_mb) {
  auto guest = std::make_unique<GuestVm>();
  guest->domain_ = hv_->CreateDomain(name, vcpus, memory_mb);
  guest->domain_->set_online(true);  // Guests boot outside our measurements.
  GuestVm* raw = guest.get();
  guests_.push_back(std::move(guest));
  return raw;
}

void KiteSystem::DestroyGuest(GuestVm* guest) {
  const DomId gid = guest->domain_->id();
  hv_->store().RemoveSubtree(kDom0,
                             StrFormat("/local/domain/0/kite/placement/vif/%d", gid));
  hv_->store().RemoveSubtree(kDom0,
                             StrFormat("/local/domain/0/kite/placement/vbd/%d", gid));
  // Frontend objects first (they hold watches and the Domain pointer), then
  // the domain itself. DestroyDomain removes the guest's xenstore subtree,
  // which fires the backends' frontend-death watches; the drivers reap the
  // orphaned instances on their next scan.
  guest->stack_.reset();
  guest->netfront_.reset();
  guest->blkfront_.reset();
  hv_->DestroyDomain(gid);
  for (auto it = guests_.begin(); it != guests_.end(); ++it) {
    if (it->get() == guest) {
      guests_.erase(it);
      break;
    }
  }
}

void KiteSystem::EnsureClient() {
  if (client_ != nullptr) {
    return;
  }
  client_ = std::make_unique<ClientMachine>();
  client_->vcpu_ = std::make_unique<Vcpu>(&executor_);
  if (hv_->cpu_attribution()) {
    client_->vcpu_->EnableAttribution();
  }
  NicParams client_nic = params_.nic;
  client_->nic_ = std::make_unique<Nic>(&executor_, "client:0000:02:00.0", "enp2s0",
                                        MacAddr::FromId(0x200000u), client_nic);
  client_->nic_->set_fault_injector(&faults_);
  client_->nic_->SetProcessingVcpu(client_->vcpu_.get());
  StackParams client_stack;
  if (params_.tcp_metrics) {
    client_stack.metrics = &metrics_;
    client_stack.metrics_domain = "client";
  }
  client_->stack_ = std::make_unique<EtherStack>(&executor_, client_->vcpu_.get(),
                                                 client_->nic_->netif(), client_stack);
  client_->stack_->ConfigureIp(client_ip_);
}

void KiteSystem::EnsureSwitch() {
  if (switch_ != nullptr) {
    return;
  }
  switch_ = std::make_unique<EtherSwitch>(&executor_, "tor0", params_.nic);
  // Re-cable the existing direct link (client <-> first network domain)
  // through the switch. Frames already on the wire still arrive.
  Nic* client_nic = client_->nic_.get();
  Nic* existing = client_nic->peer();
  if (existing != nullptr) {
    Nic::Disconnect(client_nic);
  }
  switch_->Plug(client_nic);
  if (existing != nullptr) {
    switch_->Plug(existing);
  }
}

void KiteSystem::WritePlacement(const char* kind, DomId gid, int devid, DomId bid) {
  hv_->store().WriteInt(kDom0,
                        StrFormat("/local/domain/0/kite/placement/%s/%d/%d", kind,
                                  gid, devid),
                        bid);
}

GuestVm* KiteSystem::FindGuest(DomId id) {
  for (auto& g : guests_) {
    if (g->domain_->id() == id) {
      return g.get();
    }
  }
  return nullptr;
}

NetworkDomain* KiteSystem::FindNetworkDomain(DomId id) {
  for (auto& nd : network_domains_) {
    if (nd->domain_->id() == id) {
      return nd.get();
    }
  }
  return nullptr;
}

StorageDomain* KiteSystem::FindStorageDomain(DomId id) {
  for (auto& sd : storage_domains_) {
    if (sd->domain_->id() == id) {
      return sd.get();
    }
  }
  return nullptr;
}

void KiteSystem::AttachVif(GuestVm* guest, NetworkDomain* netdom, Ipv4Addr ip) {
  KITE_CHECK(guest->netfront_ == nullptr) << "guest already has a VIF";
  const int devid = 0;
  const DomId gid = guest->domain_->id();
  const DomId bid = netdom->domain_->id();
  XenStore& store = hv_->store();

  // Toolstack (`xl`) operations from Dom0: create both device directories,
  // cross-link them, and grant cross-domain read permissions.
  const std::string fe = FrontendPath(gid, "vif", devid);
  const std::string be = BackendPath(bid, "vif", gid, devid);
  store.Write(kDom0, fe + "/backend", be);
  store.WriteInt(kDom0, fe + "/backend-id", bid);
  store.WriteInt(kDom0, fe + "/state", static_cast<int>(XenbusState::kInitialising));
  store.Write(kDom0, be + "/frontend", fe);
  store.WriteInt(kDom0, be + "/frontend-id", gid);
  store.WriteInt(kDom0, be + "/online", 1);
  store.WriteInt(kDom0, be + "/state", static_cast<int>(XenbusState::kInitialising));
  store.SetPermission(kDom0, fe, bid);
  store.SetPermission(kDom0, be, gid);
  WritePlacement("vif", gid, devid, bid);

  // Guest side: netfront and the network stack on top of it.
  MacAddr mac = MacAddr::FromId(0x300000u + static_cast<uint32_t>(gid));
  guest->netfront_ = std::make_unique<Netfront>(guest->domain_, bid, devid, mac);
  StackParams guest_stack;
  if (params_.tcp_metrics) {
    guest_stack.metrics = &metrics_;
    guest_stack.metrics_domain = guest->domain_->name();
  }
  guest->stack_ = std::make_unique<EtherStack>(&executor_, guest->domain_->vcpu(0),
                                               guest->netfront_.get(), guest_stack);
  guest->stack_->ConfigureIp(ip);
}

void KiteSystem::AttachVbd(GuestVm* guest, StorageDomain* stordom) {
  KITE_CHECK(guest->blkfront_ == nullptr) << "guest already has a VBD";
  const int devid = 51712;  // xvda.
  const DomId gid = guest->domain_->id();
  const DomId bid = stordom->domain_->id();
  XenStore& store = hv_->store();

  const std::string fe = FrontendPath(gid, "vbd", devid);
  const std::string be = BackendPath(bid, "vbd", gid, devid);
  store.Write(kDom0, fe + "/backend", be);
  store.WriteInt(kDom0, fe + "/backend-id", bid);
  store.Write(kDom0, be + "/frontend", fe);
  store.WriteInt(kDom0, be + "/frontend-id", gid);
  store.WriteInt(kDom0, be + "/online", 1);
  store.SetPermission(kDom0, fe, bid);
  store.SetPermission(kDom0, be, gid);
  WritePlacement("vbd", gid, devid, bid);

  guest->blkfront_ = std::make_unique<Blkfront>(guest->domain_, bid, devid);
}

bool KiteSystem::WaitUntil(const std::function<bool()>& pred, SimDuration timeout) {
  const SimTime deadline = executor_.Now() + timeout;
  while (!pred()) {
    if (executor_.Now() > deadline) {
      // The pending-queue dump turns "stuck seed" reports into actionable
      // ones: it shows what the simulation was still waiting on. The health
      // table names the wedged backend directly (the watchdog usually
      // flagged it long before this timeout fired).
      KITE_LOG(Warning) << "WaitUntil timed out: " << executor_.FormatPendingEvents()
                        << "\n" << health_.FormatTable();
      return false;
    }
    if (!executor_.Step()) {
      if (!pred()) {
        KITE_LOG(Warning) << "WaitUntil ran the simulation dry at t="
                          << executor_.Now().seconds()
                          << "s without the predicate holding (0 events pending)";
        return false;
      }
      return true;
    }
  }
  return true;
}

bool KiteSystem::WaitConnected(GuestVm* guest, SimDuration timeout) {
  return WaitUntil(
      [guest] {
        if (guest->netfront() != nullptr && !guest->netfront()->connected()) {
          return false;
        }
        if (guest->blkfront() != nullptr && !guest->blkfront()->connected()) {
          return false;
        }
        return true;
      },
      timeout);
}

void KiteSystem::MigrateVif(GuestVm* guest, NetworkDomain* from, NetworkDomain* to,
                            MigrateDone done) {
  KITE_CHECK(guest != nullptr && guest->netfront() != nullptr) << "guest has no VIF";
  KITE_CHECK(to != nullptr);
  (void)from;  // Documentation of intent; the engine re-resolves the source.
  migrate_->MigrateVif(guest->domain_->id(), to->domain_->id(),
                       MigrationEngine::Mode::kGraceful, std::move(done));
}

void KiteSystem::MigrateVbd(GuestVm* guest, StorageDomain* from, StorageDomain* to,
                            MigrateDone done) {
  KITE_CHECK(guest != nullptr && guest->blkfront() != nullptr) << "guest has no VBD";
  KITE_CHECK(to != nullptr);
  (void)from;
  migrate_->MigrateVbd(guest->domain_->id(), to->domain_->id(),
                       MigrationEngine::Mode::kGraceful, std::move(done));
}

int KiteSystem::migrations_in_flight() const { return migrate_->in_flight(); }

NetworkDomain* KiteSystem::RestartNetworkDomain(
    NetworkDomain* netdom, std::function<NetworkDomain*(GuestVm*)> place) {
  const DomId old_id = netdom->domain_->id();
  const DriverDomainConfig config = netdom->config_;

  // Guests whose VIF is toolstack-linked to the dead backend; migrated below
  // once the replacement exists. The xenstore record — not the frontend's
  // possibly-lagging view — decides membership, so back-to-back restarts
  // collect the right set even before the relink watches fire.
  std::vector<GuestVm*> attached;
  for (auto& g : guests_) {
    if (g->netfront_ == nullptr) {
      continue;
    }
    const std::string fe =
        FrontendPath(g->domain_->id(), "vif", g->netfront_->devid());
    auto cur = hv_->store().ReadInt(kDom0, fe + "/backend-id");
    const DomId linked =
        cur.has_value() ? static_cast<DomId>(*cur) : g->netfront_->backend_dom();
    if (linked == old_id) {
      attached.push_back(g.get());
    }
  }

  // Tear down: services first, then the VM itself. The physical NIC is
  // detached and survives the domain (it stays cabled to the client).
  netdom->app_.reset();
  netdom->driver_.reset();
  std::unique_ptr<Nic> nic = std::move(netdom->nic_);
  hv_->UnassignPci(nic.get());
  hv_->DestroyDomain(old_id);
  for (auto it = network_domains_.begin(); it != network_domains_.end(); ++it) {
    if (it->get() == netdom) {
      network_domains_.erase(it);
      break;
    }
  }

  NetworkDomain* fresh = CreateNetworkDomainImpl(config, std::move(nic));
  // Restart is "migrate everyone off the corpse": forced moves (the old
  // backend is gone) onto the caller's placement, defaulting to the
  // replacement. The engine serializes per device, so a restart landing
  // mid-migration waits for the move to settle instead of double-relinking.
  for (GuestVm* guest : attached) {
    NetworkDomain* target = place ? place(guest) : fresh;
    if (target == nullptr) {
      target = fresh;
    }
    migrate_->MigrateVif(guest->domain_->id(), target->domain_->id(),
                         MigrationEngine::Mode::kForced);
  }
  return fresh;
}

StorageDomain* KiteSystem::RestartStorageDomain(
    StorageDomain* stordom, std::function<StorageDomain*(GuestVm*)> place) {
  const DomId old_id = stordom->domain_->id();
  const DriverDomainConfig config = stordom->config_;

  std::vector<GuestVm*> attached;
  for (auto& g : guests_) {
    if (g->blkfront_ == nullptr) {
      continue;
    }
    const std::string fe =
        FrontendPath(g->domain_->id(), "vbd", g->blkfront_->devid());
    auto cur = hv_->store().ReadInt(kDom0, fe + "/backend-id");
    const DomId linked =
        cur.has_value() ? static_cast<DomId>(*cur) : g->blkfront_->backend_dom();
    if (linked == old_id) {
      attached.push_back(g.get());
    }
  }

  stordom->app_.reset();
  stordom->driver_.reset();
  std::unique_ptr<BlockDevice> disk = std::move(stordom->disk_);
  hv_->UnassignPci(disk.get());
  hv_->DestroyDomain(old_id);
  for (auto it = storage_domains_.begin(); it != storage_domains_.end(); ++it) {
    if (it->get() == stordom) {
      storage_domains_.erase(it);
      break;
    }
  }

  StorageDomain* fresh = CreateStorageDomainImpl(config, std::move(disk));
  for (GuestVm* guest : attached) {
    StorageDomain* target = place ? place(guest) : fresh;
    if (target == nullptr) {
      target = fresh;
    }
    migrate_->MigrateVbd(guest->domain_->id(), target->domain_->id(),
                         MigrationEngine::Mode::kForced);
  }
  return fresh;
}

void KiteSystem::RelinkVif(GuestVm* guest, NetworkDomain* netdom) {
  const int devid = guest->netfront_->devid();
  const DomId gid = guest->domain_->id();
  const DomId bid = netdom->domain_->id();
  XenStore& store = hv_->store();

  const std::string fe = FrontendPath(gid, "vif", devid);
  const std::string be = BackendPath(bid, "vif", gid, devid);
  store.Write(kDom0, be + "/frontend", fe);
  store.WriteInt(kDom0, be + "/frontend-id", gid);
  store.WriteInt(kDom0, be + "/online", 1);
  store.WriteInt(kDom0, be + "/state", static_cast<int>(XenbusState::kInitialising));
  store.SetPermission(kDom0, be, gid);
  store.SetPermission(kDom0, fe, bid);
  store.Write(kDom0, fe + "/backend", be);
  // Written last: the frontend's relink watch keys on backend-id, and by
  // then the rest of the toolstack state must already be in place.
  store.WriteInt(kDom0, fe + "/backend-id", bid);
  WritePlacement("vif", gid, devid, bid);
}

void KiteSystem::RelinkVbd(GuestVm* guest, StorageDomain* stordom) {
  const int devid = guest->blkfront_->devid();
  const DomId gid = guest->domain_->id();
  const DomId bid = stordom->domain_->id();
  XenStore& store = hv_->store();

  const std::string fe = FrontendPath(gid, "vbd", devid);
  const std::string be = BackendPath(bid, "vbd", gid, devid);
  store.Write(kDom0, be + "/frontend", fe);
  store.WriteInt(kDom0, be + "/frontend-id", gid);
  store.WriteInt(kDom0, be + "/online", 1);
  store.SetPermission(kDom0, be, gid);
  store.SetPermission(kDom0, fe, bid);
  store.Write(kDom0, fe + "/backend", be);
  store.WriteInt(kDom0, fe + "/backend-id", bid);
  WritePlacement("vbd", gid, devid, bid);
}

}  // namespace kite
