// The storage driver domain's block status application (paper Table 1
// "Configuration"): the single-process replacement for Xen's block hotplug
// scripts. It watches the backend vbd directory, records device-specific
// information into xenstore for blkback instances to pick up, and maintains
// a status view.
#ifndef SRC_CORE_BLKAPP_H_
#define SRC_CORE_BLKAPP_H_

#include <deque>
#include <string>
#include <vector>

#include "src/bmk/sched.h"
#include "src/blkdrv/blkback.h"

namespace kite {

class BlockStatusApp {
 public:
  BlockStatusApp(BmkSched* sched, StorageBackendDriver* driver, std::string physical_bdf);

  struct VbdStatus {
    DomId frontend_dom;
    int devid;
    bool connected;
  };
  std::vector<VbdStatus> Status() const;
  int vbds_configured() const { return vbds_configured_; }

 private:
  Task MainLoop();

  BmkSched* sched_;
  StorageBackendDriver* driver_;
  std::string physical_bdf_;
  WakeFlag vbd_wake_;
  std::deque<BlkbackInstance*> pending_;
  std::vector<VbdStatus> status_;
  int vbds_configured_ = 0;
};

}  // namespace kite

#endif  // SRC_CORE_BLKAPP_H_
