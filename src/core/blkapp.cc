#include "src/core/blkapp.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {

BlockStatusApp::BlockStatusApp(BmkSched* sched, StorageBackendDriver* driver,
                               std::string physical_bdf)
    : sched_(sched),
      driver_(driver),
      physical_bdf_(std::move(physical_bdf)),
      vbd_wake_(sched->executor()) {
  driver_->SetOnNewVbd([this](BlkbackInstance* vbd) {
    pending_.push_back(vbd);
    vbd_wake_.Signal();
  });
  // Drop reaped instances from the status view and the hotplug queue — the
  // pointer is about to go away.
  driver_->SetOnVbdGone([this](BlkbackInstance* vbd) {
    std::erase(pending_, vbd);
    std::erase_if(status_, [vbd](const VbdStatus& s) {
      return s.frontend_dom == vbd->frontend_dom() && s.devid == vbd->devid();
    });
  });
  sched_->Spawn("block-status-app", [this] { return MainLoop(); });
}

std::vector<BlockStatusApp::VbdStatus> BlockStatusApp::Status() const { return status_; }

Task BlockStatusApp::MainLoop() {
  for (;;) {
    co_await vbd_wake_.Wait();
    while (!pending_.empty()) {
      BlkbackInstance* vbd = pending_.front();
      pending_.pop_front();
      // Record the device-specific information the Linux hotplug scripts
      // would have written (a few ioctl-priced operations).
      {
        CpuScope cpu_scope(KITE_CPU_CATEGORY("app/config"));
        sched_->vcpu()->Charge(Micros(12));
      }
      status_.push_back({vbd->frontend_dom(), vbd->devid(), vbd->connected()});
      ++vbds_configured_;
      KITE_LOG(Info) << "block-status-app: vbd for dom " << vbd->frontend_dom()
                     << " devid " << vbd->devid() << " connected";
      co_await sched_->Yield();
    }
  }
}

}  // namespace kite
