#include "src/core/rebalancer.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/pool.h"
#include "src/core/system.h"
#include "src/hv/xenbus.h"

namespace kite {

namespace {

// Toolstack truth for where a guest device is linked (same convention as the
// pool's load derivation).
DomId LinkedBackend(KiteSystem* sys, const GuestVm* g, bool vif) {
  const int devid = vif ? g->netfront()->devid() : g->blkfront()->devid();
  const std::string fe =
      FrontendPath(g->domain()->id(), vif ? "vif" : "vbd", devid);
  auto cur = sys->hv().store().ReadInt(kDom0, fe + "/backend-id");
  if (cur.has_value()) {
    return static_cast<DomId>(*cur);
  }
  return vif ? g->netfront()->backend_dom() : g->blkfront()->backend_dom();
}

}  // namespace

Rebalancer::Rebalancer(KiteSystem* sys, DomainPool* pool, RebalancerParams params)
    : sys_(sys), pool_(pool), params_(params) {
  MetricRegistry& reg = sys_->metric_registry();
  drains_ = reg.counter("core", "rebalance", "drains");
  evacuations_ = reg.counter("core", "rebalance", "evacuations");
  readmissions_ = reg.counter("core", "rebalance", "readmissions");
  moves_started_ = reg.counter("core", "rebalance", "moves_started");
  moves_failed_ = reg.counter("core", "rebalance", "moves_failed");
  backoff_defers_ = reg.counter("core", "rebalance", "backoff_defers");
  sub_id_ = sys_->health().Subscribe(
      [this](int32_t dom, const std::string& device, HealthState old_state,
             HealthState new_state) { OnTransition(dom, device, old_state, new_state); });
}

Rebalancer::~Rebalancer() {
  *alive_ = false;
  sys_->health().Unsubscribe(sub_id_);
}

void Rebalancer::OnTransition(int32_t dom, const std::string& device,
                              HealthState old_state, HealthState new_state) {
  (void)old_state;
  // Transitions for backends that aren't pool shards (a topology can mix
  // pooled and standalone domains) are not ours to manage.
  const bool net = device.rfind("vif", 0) == 0;
  if (net ? !pool_->HasNetworkShard(dom) : !pool_->HasStorageShard(dom)) {
    return;
  }
  // The callback runs inside the monitor's probe: defer every reaction, and
  // re-verify state at fire time (it may have changed again by then).
  sys_->executor().Post(KITE_POST_SITE("rebalance/health-react"),
                        [this, alive = alive_, dom, net, new_state] {
    if (!*alive) {
      return;
    }
    switch (new_state) {
      case HealthState::kDegraded:
        HandleDegraded(dom, net);
        return;
      case HealthState::kStalled:
        HandleStalled(dom);
        return;
      case HealthState::kHealthy:
        HandleHealthy(dom);
        return;
    }
  });
}

HealthState Rebalancer::WorstState(DomId dom) const {
  HealthState worst = HealthState::kHealthy;
  for (const auto& inst : sys_->health().Instances()) {
    if (inst.dom == dom && static_cast<int>(inst.state) > static_cast<int>(worst)) {
      worst = inst.state;
    }
  }
  return worst;
}

void Rebalancer::HandleDegraded(DomId dom, bool net) {
  ShardCtl& ctl = shards_[dom];
  ctl.net = net;
  if (ctl.hysteresis_armed || ctl.draining) {
    return;
  }
  ctl.hysteresis_armed = true;
  sys_->executor().PostAfter(params_.degraded_hysteresis,
                             KITE_POST_SITE("rebalance/hysteresis"),
                             [this, alive = alive_, dom] {
                               if (*alive) {
                                 ConfirmDegraded(dom);
                               }
                             });
}

void Rebalancer::ConfirmDegraded(DomId dom) {
  auto it = shards_.find(dom);
  if (it == shards_.end()) {
    return;  // Shard replaced (evacuated) while the timer was pending.
  }
  ShardCtl& ctl = it->second;
  ctl.hysteresis_armed = false;
  if (ctl.draining) {
    return;
  }
  switch (WorstState(dom)) {
    case HealthState::kHealthy:
      return;  // Blip: recovered within the hysteresis window.
    case HealthState::kStalled:
      return;  // The stalled path (forced evacuation) owns this shard now.
    case HealthState::kDegraded:
      StartDrain(dom);
      return;
  }
}

void Rebalancer::StartDrain(DomId dom) {
  ShardCtl& ctl = shards_[dom];
  ctl.draining = true;
  drains_->Inc();
  if (ctl.net) {
    pool_->SetNetworkShardOpen(dom, false);
  } else {
    pool_->SetStorageShardOpen(dom, false);
  }
  KITE_LOG(Info) << StrFormat("rebalance: draining %s shard dom%d",
                              ctl.net ? "network" : "storage", dom);
  for (const auto& g : sys_->guests()) {
    if (ctl.net && g->netfront() != nullptr &&
        LinkedBackend(sys_, g.get(), true) == dom) {
      pending_.push_back(PendingMove{g->domain()->id(), true, dom});
      ++ctl.outstanding;
    } else if (!ctl.net && g->blkfront() != nullptr &&
               LinkedBackend(sys_, g.get(), false) == dom) {
      pending_.push_back(PendingMove{g->domain()->id(), false, dom});
      ++ctl.outstanding;
    }
  }
  if (ctl.outstanding == 0) {
    TryReadmit(dom);
    return;
  }
  PumpMoves();
}

void Rebalancer::PumpMoves() {
  while (active_moves_ < params_.max_concurrent_migrations && !pending_.empty()) {
    PendingMove m = pending_.front();
    pending_.pop_front();
    GuestVm* guest = sys_->FindGuest(m.gid);
    const bool gone = guest == nullptr ||
                      (m.vif ? guest->netfront() == nullptr
                             : guest->blkfront() == nullptr);
    if (gone || LinkedBackend(sys_, guest, m.vif) != m.from) {
      // Destroyed, or already moved (an evacuation beat the drain to it).
      OnMoveDone(m.from);
      continue;
    }
    if (m.vif) {
      NetworkDomain* target = pool_->LeastLoadedNetworkShard(m.from);
      if (target == nullptr) {
        moves_failed_->Inc();
        OnMoveDone(m.from);
        continue;
      }
      ++active_moves_;
      moves_started_->Inc();
      sys_->MigrateVif(guest, sys_->FindNetworkDomain(m.from), target,
                       [this, alive = alive_, from = m.from](bool ok) {
                         if (*alive) {
                           --active_moves_;
                           if (!ok) {
                             moves_failed_->Inc();
                           }
                           OnMoveDone(from);
                         }
                       });
    } else {
      StorageDomain* target = pool_->LeastLoadedStorageShard(m.from);
      if (target == nullptr) {
        moves_failed_->Inc();
        OnMoveDone(m.from);
        continue;
      }
      ++active_moves_;
      moves_started_->Inc();
      sys_->MigrateVbd(guest, sys_->FindStorageDomain(m.from), target,
                       [this, alive = alive_, from = m.from](bool ok) {
                         if (*alive) {
                           --active_moves_;
                           if (!ok) {
                             moves_failed_->Inc();
                           }
                           OnMoveDone(from);
                         }
                       });
    }
  }
}

void Rebalancer::OnMoveDone(DomId from) {
  auto it = shards_.find(from);
  if (it != shards_.end() && it->second.outstanding > 0) {
    --it->second.outstanding;
    if (it->second.outstanding == 0) {
      TryReadmit(from);
    }
  }
  PumpMoves();
}

void Rebalancer::TryReadmit(DomId dom) {
  auto it = shards_.find(dom);
  if (it == shards_.end()) {
    return;
  }
  ShardCtl& ctl = it->second;
  if (!ctl.draining || ctl.outstanding > 0) {
    return;
  }
  if (WorstState(dom) != HealthState::kHealthy) {
    return;  // Stay closed; a later healthy transition re-admits.
  }
  ctl.draining = false;
  if (ctl.net) {
    pool_->SetNetworkShardOpen(dom, true);
  } else {
    pool_->SetStorageShardOpen(dom, true);
  }
  readmissions_->Inc();
  KITE_LOG(Info) << StrFormat("rebalance: re-admitted shard dom%d", dom);
}

void Rebalancer::HandleHealthy(DomId dom) {
  auto it = shards_.find(dom);
  if (it == shards_.end()) {
    return;
  }
  it->second.fail_count = 0;
  TryReadmit(dom);
}

void Rebalancer::HandleStalled(DomId dom) {
  auto it = shards_.find(dom);
  if (it == shards_.end()) {
    // First signal from this shard is already a stall (hard wedge).
    const bool net = pool_->HasNetworkShard(dom);
    shards_[dom].net = net;
    it = shards_.find(dom);
  }
  ShardCtl& ctl = it->second;
  const SimTime now = sys_->executor().Now();
  if (now < ctl.next_allowed) {
    backoff_defers_->Inc();
    sys_->executor().PostAfter(ctl.next_allowed - now,
                               KITE_POST_SITE("rebalance/backoff-retry"),
                               [this, alive = alive_, dom] {
      if (!*alive) {
        return;
      }
      // Only evacuate if the shard is still wedged when the backoff expires.
      if (shards_.count(dom) != 0 && WorstState(dom) == HealthState::kStalled) {
        Evacuate(dom);
      }
    });
    return;
  }
  Evacuate(dom);
}

void Rebalancer::Evacuate(DomId dom) {
  auto it = shards_.find(dom);
  if (it == shards_.end()) {
    return;
  }
  ShardCtl ctl = it->second;
  const SimTime now = sys_->executor().Now();
  ++ctl.fail_count;
  const int exp = std::min(ctl.fail_count - 1, params_.backoff_max_exp);
  ctl.next_allowed = now + params_.backoff_base * (int64_t{1} << exp);
  evacuations_->Inc();
  KITE_LOG(Info) << StrFormat("rebalance: evacuating stalled %s shard dom%d",
                              ctl.net ? "network" : "storage", dom);

  // Pending graceful drain moves off this shard are obsolete: the forced
  // restart below migrates every attached guest itself.
  for (auto pit = pending_.begin(); pit != pending_.end();) {
    if (pit->from == dom) {
      pit = pending_.erase(pit);
    } else {
      ++pit;
    }
  }
  ctl.outstanding = 0;
  ctl.draining = false;
  ctl.hysteresis_armed = false;

  DomId fresh_id = 0;
  if (ctl.net) {
    NetworkDomain* nd = sys_->FindNetworkDomain(dom);
    if (nd == nullptr) {
      return;  // Already gone (e.g. the scenario restarted it by hand).
    }
    NetworkDomain* fresh = sys_->RestartNetworkDomain(
        nd, [this, dom](GuestVm*) { return pool_->LeastLoadedNetworkShard(dom); });
    fresh_id = fresh->domain()->id();
    pool_->ReplaceNetworkShard(dom, fresh_id);
    pool_->SetNetworkShardOpen(fresh_id, params_.readmit_evacuated);
  } else {
    StorageDomain* sd = sys_->FindStorageDomain(dom);
    if (sd == nullptr) {
      return;
    }
    StorageDomain* fresh = sys_->RestartStorageDomain(
        sd, [this, dom](GuestVm*) { return pool_->LeastLoadedStorageShard(dom); });
    fresh_id = fresh->domain()->id();
    pool_->ReplaceStorageShard(dom, fresh_id);
    pool_->SetStorageShardOpen(fresh_id, params_.readmit_evacuated);
  }
  // The replacement inherits the slot's failure streak (backoff survives the
  // restart: a domain that wedges on every boot slows down, not speeds up).
  shards_.erase(dom);
  shards_[fresh_id] = ctl;
  if (params_.readmit_evacuated) {
    readmissions_->Inc();
  }
}

}  // namespace kite
