#include "src/fault/fault.h"

#include "src/base/log.h"

namespace kite {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kGrantMap:
      return "grant-map";
    case FaultSite::kEventNotify:
      return "event-notify";
    case FaultSite::kXenstoreRead:
      return "xenstore-read";
    case FaultSite::kDiskIo:
      return "disk-io";
    case FaultSite::kNicLoss:
      return "nic-loss";
    case FaultSite::kNicCorrupt:
      return "nic-corrupt";
    case FaultSite::kDiskHang:
      return "disk-hang";
    case FaultSite::kCount:
      break;
  }
  return "?";
}

FaultInjector::FaultInjector(uint64_t seed, MetricRegistry* registry) : rng_(seed) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<MetricRegistry>();
    registry = owned_registry_.get();
  }
  for (int i = 0; i < kSites; ++i) {
    const char* site = FaultSiteName(static_cast<FaultSite>(i));
    trips_[i] = registry->counter("fault", site, "trips");
    rolls_[i] = registry->counter("fault", site, "rolls");
  }
}

void FaultInjector::set_rate(FaultSite site, double p) {
  KITE_CHECK(p >= 0.0 && p <= 1.0) << "fault rate must be a probability";
  rates_[static_cast<int>(site)] = p;
}

double FaultInjector::rate(FaultSite site) const {
  return rates_[static_cast<int>(site)];
}

void FaultInjector::ClearRates() { rates_.fill(0.0); }

bool FaultInjector::ShouldFail(FaultSite site) {
  const int i = static_cast<int>(site);
  if (rates_[i] <= 0.0) {
    return false;  // No RNG consumption: fault-free runs stay byte-identical.
  }
  rolls_[i]->Inc();
  if (!rng_.NextBool(rates_[i])) {
    return false;
  }
  trips_[i]->Inc();
  if (recorder_ != nullptr) {
    recorder_->Record(0, FlightKind::kFaultTripped, i, trips_[i]->value());
  }
  return true;
}

uint64_t FaultInjector::trips(FaultSite site) const {
  return trips_[static_cast<int>(site)]->value();
}

uint64_t FaultInjector::rolls(FaultSite site) const {
  return rolls_[static_cast<int>(site)]->value();
}

uint64_t FaultInjector::total_trips() const {
  uint64_t n = 0;
  for (Counter* t : trips_) {
    n += t->value();
  }
  return n;
}

void FaultInjector::ResetCounters() {
  for (int i = 0; i < kSites; ++i) {
    trips_[i]->Set(0);
    rolls_[i]->Set(0);
  }
}

void FaultInjector::Reseed(uint64_t seed) { rng_ = Rng(seed); }

}  // namespace kite
