// Fault injection: deterministic, RNG-seeded failure hooks that the
// hypervisor and device models consult on their hot paths.
//
// Kite's robustness story (paper §6, experiment E1) is restart-based
// recovery: a crashed driver domain is destroyed and rebooted while guests
// reconnect. To test that path continuously — not just when a bug happens to
// strike — every failure-prone operation asks the injector whether it should
// fail this time: grant-map hypercalls, event-channel notifications,
// xenstore reads, disk I/O completions, and NIC frame delivery.
//
// Rates are per-site probabilities rolled on a deterministic xoshiro RNG, so
// a seeded test reproduces the exact same failure schedule every run.
// Per-site trip counters let tests assert that faults actually fired (a
// recovery test that never saw a fault proves nothing).
#ifndef SRC_FAULT_FAULT_H_
#define SRC_FAULT_FAULT_H_

#include <array>
#include <cstdint>
#include <memory>

#include "src/base/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"

namespace kite {

enum class FaultSite : int {
  kGrantMap = 0,    // Hypervisor::GrantMap returns an invalid mapping.
  kEventNotify,     // EVTCHNOP_send accepted but the interrupt never arrives.
  kXenstoreRead,    // A domain's xenstore read round trip fails.
  kDiskIo,          // Device-level block I/O error (media/controller).
  kNicLoss,         // Frame lost on the wire (receive side never sees it).
  kNicCorrupt,      // Frame corrupted on the wire (dropped as an FCS error).
  kDiskHang,        // Disk completion parked (hung controller) until
                    // BlockDevice::ReleaseHungIo — the watchdog wedge site.
  kCount,
};

const char* FaultSiteName(FaultSite site);

class FaultInjector {
 public:
  // Trip/roll counters live in `registry` under ("fault", <site>, ...); when
  // none is supplied (standalone tests) the injector owns a private one.
  explicit FaultInjector(uint64_t seed = 0xfa0170ULL /* "fault" */,
                         MetricRegistry* registry = nullptr);

  // Probability in [0, 1] that an operation at `site` fails. Zero (the
  // default for every site) short-circuits without consuming randomness, so
  // enabling one site does not perturb the schedule of the others... nor of
  // a fault-free run.
  void set_rate(FaultSite site, double p);
  double rate(FaultSite site) const;
  // Zeroes every site's rate — ends a fault window so the system can drain
  // and quiesce cleanly (the explore harness closes each schedule this way).
  void ClearRates();

  // Rolls the dice for one operation at `site`. Returns true if the
  // operation must fail; every true return is counted as a trip.
  bool ShouldFail(FaultSite site);

  // --- Introspection for tests. ---
  uint64_t trips(FaultSite site) const;   // Failures injected.
  uint64_t rolls(FaultSite site) const;   // Operations that consulted us.
  uint64_t total_trips() const;
  void ResetCounters();

  // Reseeds the RNG (counters are kept; use ResetCounters separately).
  void Reseed(uint64_t seed);

  // When set, every trip is also recorded in Dom0's flight-recorder ring
  // (kFaultTripped, dev=site) so a failure dump shows which injected faults
  // preceded the wedge.
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

 private:
  static constexpr int kSites = static_cast<int>(FaultSite::kCount);

  Rng rng_;
  FlightRecorder* recorder_ = nullptr;
  std::array<double, kSites> rates_{};
  // Registry-backed counters (one pointer-chase per roll, same cost as the
  // plain uint64_t members they replaced).
  std::unique_ptr<MetricRegistry> owned_registry_;
  std::array<Counter*, kSites> trips_{};
  std::array<Counter*, kSites> rolls_{};
};

}  // namespace kite

#endif  // SRC_FAULT_FAULT_H_
