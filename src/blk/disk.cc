#include "src/blk/disk.h"

#include <algorithm>

#include "src/base/log.h"

namespace kite {

BlockDevice::BlockDevice(Executor* executor, std::string bdf, DiskParams params,
                         bool store_data)
    : BlockDevice(executor, std::move(bdf), params, store_data,
                  std::make_shared<DiskMedia>()) {}

BlockDevice::BlockDevice(Executor* executor, std::string bdf, DiskParams params,
                         bool store_data, std::shared_ptr<DiskMedia> media)
    : PciDevice(std::move(bdf), "NVMe SSD"),
      executor_(executor),
      params_(params),
      store_data_(store_data),
      media_(std::move(media)) {
  KITE_CHECK(media_ != nullptr);
}

void BlockDevice::Submit(DiskRequest request) {
  KITE_CHECK(request.done != nullptr);
  KITE_CHECK(request.offset >= 0 &&
             request.offset + static_cast<int64_t>(request.length) <= params_.capacity_bytes)
      << "I/O beyond device capacity";
  queue_.push_back(std::move(request));
  TryStart();
}

void BlockDevice::TryStart() {
  while (active_ < params_.queue_depth && !queue_.empty()) {
    DiskRequest req = std::move(queue_.front());
    queue_.pop_front();
    ++active_;

    SimDuration latency;
    double gbps = params_.read_gbps;
    switch (req.op) {
      case DiskOp::kRead:
        latency = params_.read_latency;
        gbps = params_.read_gbps;
        break;
      case DiskOp::kWrite:
        latency = params_.write_latency;
        gbps = params_.write_gbps;
        break;
      case DiskOp::kFlush:
        latency = params_.flush_latency;
        break;
    }
    SimDuration transfer;
    if (req.op != DiskOp::kFlush && req.length > 0) {
      transfer = Nanos(static_cast<int64_t>(static_cast<double>(req.length) / gbps));
    }
    // Transfers serialize on the device's internal bandwidth; access latency
    // overlaps across the queue (parallel flash channels).
    const SimTime now = executor_->Now();
    SimTime transfer_start = bw_free_at_ > now ? bw_free_at_ : now;
    bw_free_at_ = transfer_start + transfer;
    const SimTime completion = bw_free_at_ + latency;
    executor_->PostAt(completion, KITE_POST_SITE("disk/io-complete"),
                      [this, req = std::move(req)]() mutable { Complete(std::move(req)); });
  }
}

void BlockDevice::Complete(DiskRequest request) {
  if (faults_ != nullptr && faults_->ShouldFail(FaultSite::kDiskHang)) {
    // Hung controller: park the completion without releasing the queue-depth
    // slot, so a saturated queue wedges exactly like real stuck hardware.
    hung_.push_back(std::move(request));
    return;
  }
  --active_;
  if (faults_ != nullptr && faults_->ShouldFail(FaultSite::kDiskIo)) {
    ++io_errors_;
    auto done = std::move(request.done);
    done(false, Buffer{});  // Media/controller error: no content effect.
    TryStart();
    return;
  }
  Buffer data;
  switch (request.op) {
    case DiskOp::kRead:
      ++reads_;
      bytes_read_ += request.length;
      if (store_data_) {
        data = ReadRaw(request.offset, request.length);
      }
      break;
    case DiskOp::kWrite:
      ++writes_;
      bytes_written_ += request.length;
      if (store_data_ && !request.data.empty()) {
        WriteRaw(request.offset, request.data);
      }
      break;
    case DiskOp::kFlush:
      ++flushes_;
      break;
  }
  auto done = std::move(request.done);
  done(true, std::move(data));
  TryStart();
}

void BlockDevice::ReleaseHungIo() {
  std::deque<DiskRequest> revived = std::move(hung_);
  hung_.clear();
  for (DiskRequest& req : revived) {
    executor_->Post(KITE_POST_SITE("disk/hung-io-release"),
                    [this, req = std::move(req)]() mutable { Complete(std::move(req)); });
  }
}

void BlockDevice::WriteRaw(int64_t offset, std::span<const uint8_t> data) {
  media_->Write(offset, data);
}

Buffer BlockDevice::ReadRaw(int64_t offset, size_t length) const {
  return media_->Read(offset, length);
}

void DiskMedia::Write(int64_t offset, std::span<const uint8_t> data) {
  int64_t pos = offset;
  size_t idx = 0;
  while (idx < data.size()) {
    const int64_t page_no = pos / 4096;
    const size_t in_page = static_cast<size_t>(pos % 4096);
    const size_t n = std::min<size_t>(4096 - in_page, data.size() - idx);
    auto& page = pages_[page_no];
    if (page == nullptr) {
      page = std::make_unique<std::array<uint8_t, 4096>>();
      page->fill(0);
    }
    std::copy_n(data.begin() + idx, n, page->begin() + in_page);
    pos += static_cast<int64_t>(n);
    idx += n;
  }
}

Buffer DiskMedia::Read(int64_t offset, size_t length) const {
  Buffer out(length, 0);
  int64_t pos = offset;
  size_t idx = 0;
  while (idx < length) {
    const int64_t page_no = pos / 4096;
    const size_t in_page = static_cast<size_t>(pos % 4096);
    const size_t n = std::min<size_t>(4096 - in_page, length - idx);
    auto it = pages_.find(page_no);
    if (it != pages_.end()) {
      std::copy_n(it->second->begin() + in_page, n, out.begin() + idx);
    }
    pos += static_cast<int64_t>(n);
    idx += n;
  }
  return out;
}

}  // namespace kite
