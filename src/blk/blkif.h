// Xen blkif ring message formats (public/io/blkif.h analogue).
//
// One shared ring carries both requests and responses. A direct request
// holds at most 11 segments (the ring-slot size limit the paper cites —
// 44 KB per request); an *indirect* request instead references grant pages
// each holding up to 512 segment descriptors, raising the per-request limit
// (Kite, like Linux, negotiates 32 indirect segments = 128 KB).
#ifndef SRC_BLK_BLKIF_H_
#define SRC_BLK_BLKIF_H_

#include <array>
#include <memory>
#include <vector>

#include "src/hv/grant_table.h"
#include "src/hv/ring.h"

namespace kite {

inline constexpr uint32_t kBlkRingSize = 32;
inline constexpr size_t kSectorSize = 512;
inline constexpr size_t kSectorsPerPage = kPageSize / kSectorSize;
inline constexpr int kBlkMaxDirectSegments = 11;    // 44 KB.
inline constexpr int kBlkSegsPerIndirectPage = 512;
inline constexpr int kBlkMaxIndirectSegments = 32;  // Linux-compatible cap (paper §4.4).

enum class BlkOp : uint8_t {
  kRead = 0,
  kWrite = 1,
  kFlush = 2,
  kIndirect = 6,
};

enum class BlkStatus : int8_t {
  kOkay = 0,
  kError = -1,
  kNotSupported = -2,
};

// One data segment: a granted page and the sector range used within it.
struct BlkSegment {
  GrantRef gref = kInvalidGrantRef;
  uint8_t first_sect = 0;
  uint8_t last_sect = 7;  // Inclusive; 7 = full 4 KiB page.

  size_t bytes() const { return (static_cast<size_t>(last_sect) - first_sect + 1) * kSectorSize; }
};

// Contents of an indirect descriptor page (attached via Page::object).
using IndirectSegmentPage = std::vector<BlkSegment>;

struct BlkRequest {
  BlkOp op = BlkOp::kRead;
  uint64_t id = 0;
  uint64_t sector_number = 0;
  // Direct segments.
  uint8_t nr_segments = 0;
  std::array<BlkSegment, kBlkMaxDirectSegments> segments{};
  // Indirect extension (op == kIndirect).
  BlkOp indirect_op = BlkOp::kRead;
  uint16_t nr_indirect_segments = 0;
  GrantRef indirect_gref = kInvalidGrantRef;
};

struct BlkResponse {
  uint64_t id = 0;
  BlkOp op = BlkOp::kRead;
  BlkStatus status = BlkStatus::kOkay;
};

using BlkSharedRing = SharedRing<BlkRequest, BlkResponse>;
using BlkFrontRing = FrontRing<BlkRequest, BlkResponse>;
using BlkBackRing = BackRing<BlkRequest, BlkResponse>;

}  // namespace kite

#endif  // SRC_BLK_BLKIF_H_
