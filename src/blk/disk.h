// NVMe SSD model (Samsung 970 EVO Plus 500GB class, paper Table 2).
//
// Service model: requests queue up to a queue depth; each request pays a
// fixed flash access latency plus data transfer serialized at the device
// bandwidth (separate read/write rates). Optional content storage (sparse,
// page-granular) lets integrity tests verify end-to-end data while benches
// run metadata-free.
#ifndef SRC_BLK_DISK_H_
#define SRC_BLK_DISK_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "src/base/bytes.h"
#include "src/fault/fault.h"
#include "src/hv/pci.h"
#include "src/sim/executor.h"
#include "src/sim/time.h"

namespace kite {

struct DiskParams {
  int64_t capacity_bytes = 500LL * 1000 * 1000 * 1000;
  double read_gbps = 2.9;          // GB/s sustained read.
  double write_gbps = 2.5;         // GB/s sustained write.
  SimDuration read_latency = Micros(85);   // Flash read access time.
  SimDuration write_latency = Micros(35);  // Program (SLC-cached).
  SimDuration flush_latency = Micros(400);
  int queue_depth = 32;
};

enum class DiskOp { kRead, kWrite, kFlush };

// The persistent content behind one or more BlockDevice ports: a sparse,
// page-granular store. Sharing one DiskMedia between several BlockDevices
// models dual-ported / fabric-attached storage — every port sees the same
// bytes, so a VBD migrated from one storage domain to another finds all its
// acknowledged writes on the new domain's port. Timing stays per-port (each
// BlockDevice keeps its own queue and bandwidth serialization), so a
// single-port system behaves exactly as before.
class DiskMedia {
 public:
  void Write(int64_t offset, std::span<const uint8_t> data);
  Buffer Read(int64_t offset, size_t length) const;

 private:
  std::map<int64_t, std::unique_ptr<std::array<uint8_t, 4096>>> pages_;
};

struct DiskRequest {
  DiskOp op = DiskOp::kRead;
  int64_t offset = 0;  // Bytes; sector-aligned.
  size_t length = 0;   // Bytes.
  // Write payload (may be empty if the device stores no data).
  Buffer data;
  // On read completion, filled with stored data when storage is enabled.
  std::function<void(bool ok, Buffer data)> done;
};

class BlockDevice : public PciDevice {
 public:
  BlockDevice(Executor* executor, std::string bdf, DiskParams params, bool store_data);
  // Port onto shared media (media must be non-null). Content written through
  // any port is visible to every port.
  BlockDevice(Executor* executor, std::string bdf, DiskParams params, bool store_data,
              std::shared_ptr<DiskMedia> media);

  const std::shared_ptr<DiskMedia>& media() const { return media_; }

  const DiskParams& params() const { return params_; }
  int64_t capacity_bytes() const { return params_.capacity_bytes; }
  bool store_data() const { return store_data_; }

  void Submit(DiskRequest request);

  // Optional fault injection: completions roll FaultSite::kDiskIo; a trip
  // completes the request with ok=false and no data/content effect. A
  // FaultSite::kDiskHang trip instead parks the completion — the op neither
  // completes nor errors and its queue-depth slot stays busy (a hung
  // controller) — until ReleaseHungIo re-posts it.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  // Revives every parked completion (each re-rolls the fault sites, so clear
  // the kDiskHang rate first unless re-parking is intended).
  void ReleaseHungIo();
  int hung_io_count() const { return static_cast<int>(hung_.size()); }

  // Direct (out-of-band) access for tests and for pre-populating content.
  void WriteRaw(int64_t offset, std::span<const uint8_t> data);
  Buffer ReadRaw(int64_t offset, size_t length) const;

  uint64_t reads_completed() const { return reads_; }
  uint64_t writes_completed() const { return writes_; }
  uint64_t flushes_completed() const { return flushes_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t io_errors() const { return io_errors_; }
  int queue_length() const { return static_cast<int>(queue_.size()); }

 private:
  void TryStart();
  void Complete(DiskRequest request);

  Executor* executor_;
  DiskParams params_;
  bool store_data_;
  FaultInjector* faults_ = nullptr;

  std::deque<DiskRequest> queue_;
  std::deque<DiskRequest> hung_;  // Completions parked by kDiskHang.
  int active_ = 0;
  SimTime bw_free_at_;

  // Content store (owned solo by default, shared across ports on request).
  std::shared_ptr<DiskMedia> media_;

  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t flushes_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t io_errors_ = 0;
};

}  // namespace kite

#endif  // SRC_BLK_DISK_H_
