#include "src/bmk/sched.h"

namespace kite {

BmkSched::~BmkSched() {
  // Destroy frames of threads suspended on timers; their executor events
  // observe `cancelled` and become no-ops.
  for (const auto& slot : slots_) {
    slot->cancelled = true;
    if (slot->handle) {
      slot->handle.destroy();
    }
  }
}

void BmkSched::Spawn(const std::string& name, const std::function<Task()>& body) {
  thread_names_.push_back(name);
  body();  // Eager task: runs until first suspension.
}

void BmkSched::Park(std::coroutine_handle<> handle, SimTime at) {
  auto slot = std::make_shared<TimerSlot>();
  slot->handle = handle;
  slots_.insert(slot);
  executor_->PostAt(at, KITE_POST_SITE("bmk/timer-wake"), [this, slot] {
    if (slot->cancelled) {
      return;  // Scheduler destroyed; frame already reclaimed.
    }
    slots_.erase(slot);
    auto h = slot->handle;
    slot->handle = nullptr;
    h.resume();
  });
}

}  // namespace kite
