// Bare Metal Kernel (BMK) runtime facade: rumprun's thread environment.
//
// Rumprun's BMK layer provides cooperative, non-preemptive threads with wait
// channels and no work queues (paper §2.4, §3.1). In this reproduction a BMK
// "thread" is a coroutine Task scheduled on the domain's single executor and
// serialized through the domain's Vcpu.
//
// Every timed suspension (Sleep/Run/Yield) goes through a *cancellable timer
// slot* owned by this scheduler: destroying the scheduler (e.g. when a
// driver domain is destroyed for restart) destroys all parked coroutine
// frames instead of leaving dangling resumptions in the executor.
#ifndef SRC_BMK_SCHED_H_
#define SRC_BMK_SCHED_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/executor.h"
#include "src/sim/task.h"
#include "src/sim/wait.h"

namespace kite {

class BmkSched {
 public:
  BmkSched(Executor* executor, Vcpu* vcpu) : executor_(executor), vcpu_(vcpu) {}
  ~BmkSched();

  BmkSched(const BmkSched&) = delete;
  BmkSched& operator=(const BmkSched&) = delete;

  Executor* executor() const { return executor_; }
  Vcpu* vcpu() const { return vcpu_; }

  // Registers a named thread. The body is a coroutine factory; it starts
  // immediately (eager task) and runs cooperatively forever or until return.
  void Spawn(const std::string& name, const std::function<Task()>& body);

  struct TimerSlot {
    std::coroutine_handle<> handle;
    bool cancelled = false;
  };

  // Awaitable that resumes at an absolute time, cancellable by scheduler
  // destruction.
  class TimedAwaiter {
   public:
    TimedAwaiter(BmkSched* sched, SimTime at) : sched_(sched), at_(at) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) { sched_->Park(handle, at_); }
    void await_resume() const noexcept {}

   private:
    BmkSched* sched_;
    SimTime at_;
  };

  // Consume CPU work: resumes once `cost` has executed on the vCPU.
  TimedAwaiter Run(SimDuration cost) { return TimedAwaiter(this, vcpu_->Charge(cost)); }

  // Same, crediting the work to `category` in the vCPU's CPU-attribution
  // ledger. The scope must wrap the synchronous Charge and must NOT span the
  // co_await suspension (a CpuScope living across a suspension would leak the
  // category onto unrelated events), which is why the overload exists: the
  // scope dies at the end of this full expression, after Charge ran.
  TimedAwaiter Run(SimDuration cost, const CpuCategory* category) {
    CpuScope scope(category);
    return TimedAwaiter(this, vcpu_->Charge(cost));
  }

  // Cooperative yield, as used by Kite's configuration applications to avoid
  // CPU monopolization (paper §4.3). Charged (at zero cost) to the scheduler
  // category so run-queue wait behind pending work is attributed to yielding.
  TimedAwaiter Yield() {
    ++yields_;
    return Run(SimDuration(0), KITE_CPU_CATEGORY("sched/yield"));
  }

  // Sleep without consuming CPU.
  TimedAwaiter Sleep(SimDuration d) { return TimedAwaiter(this, executor_->Now() + d); }

  const std::vector<std::string>& thread_names() const { return thread_names_; }
  int thread_count() const { return static_cast<int>(thread_names_.size()); }
  uint64_t yield_count() const { return yields_; }
  size_t parked_timers() const { return slots_.size(); }

 private:
  void Park(std::coroutine_handle<> handle, SimTime at);

  Executor* executor_;
  Vcpu* vcpu_;
  std::vector<std::string> thread_names_;
  std::set<std::shared_ptr<TimerSlot>> slots_;
  uint64_t yields_ = 0;
};

}  // namespace kite

#endif  // SRC_BMK_SCHED_H_
